(* Tests for the magnetic-disk cost model. *)

module Disk = Disk_sim.Disk
module Config = Disk_sim.Disk_config

let mk () = Disk.create ()

let test_sequential_is_transfer_bound () =
  let d = mk () in
  (* First request positions the head; subsequent contiguous ones don't. *)
  Disk.read d ~offset:0 ~bytes:8192;
  let after_first = Disk.elapsed d in
  Disk.read d ~offset:8192 ~bytes:8192;
  let seq_cost = Disk.elapsed d -. after_first in
  let transfer = 8192.0 /. (Disk.config d).Config.read_rate in
  Alcotest.(check (float 1e-9)) "contiguous read = transfer only" transfer seq_cost

let test_random_pays_positioning () =
  let d = mk () in
  Disk.read d ~offset:0 ~bytes:8192;
  let t0 = Disk.elapsed d in
  Disk.read d ~offset:(1 lsl 30) ~bytes:8192;
  let cost = Disk.elapsed d -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "long-seek read %.2f ms > 10 ms" (cost *. 1e3))
    true (cost > 10e-3)

let test_positioning_monotone_in_distance () =
  let curve = Config.default.Config.read_positioning in
  let p128k = Config.positioning curve (128 * 1024) in
  let p1m = Config.positioning curve (1024 * 1024) in
  let pbig = Config.positioning curve (1 lsl 30) in
  Alcotest.(check bool) "128K < 1M" true (p128k < p1m);
  Alcotest.(check bool) "1M < full stroke" true (p1m < pbig);
  Alcotest.(check (float 1e-12)) "distance 0 free" 0.0 (Config.positioning curve 0)

let test_positioning_interpolates () =
  let curve = [| (1024, 1e-3); (1024 * 1024, 3e-3) |] in
  let mid = Config.positioning curve 32768 in
  Alcotest.(check (float 1e-6)) "log-midpoint" 2e-3 mid;
  (* Beyond the last point: clamped. *)
  Alcotest.(check (float 1e-12)) "clamp high" 3e-3 (Config.positioning curve (1 lsl 40));
  Alcotest.(check (float 1e-12)) "clamp low" 1e-3 (Config.positioning curve 1)

let test_write_slower_than_read () =
  let dr = mk () and dw = mk () in
  for i = 0 to 99 do
    Disk.read dr ~offset:(i * 8192) ~bytes:8192;
    Disk.write dw ~offset:(i * 8192) ~bytes:8192
  done;
  Alcotest.(check bool) "sequential write slower" true (Disk.elapsed dw > Disk.elapsed dr)

let test_stats () =
  let d = mk () in
  Disk.read d ~offset:0 ~bytes:4096;
  Disk.read d ~offset:4096 ~bytes:4096;
  Disk.write d ~offset:(1 lsl 20) ~bytes:8192;
  let s = Disk.stats d in
  Alcotest.(check int) "reads" 2 s.Disk.reads;
  Alcotest.(check int) "writes" 1 s.Disk.writes;
  (* The head starts at offset 0, so the first request is also "sequential". *)
  Alcotest.(check int) "sequential" 2 s.Disk.sequential_requests;
  Alcotest.(check int) "random" 1 s.Disk.random_requests;
  Alcotest.(check int) "bytes read" 8192 s.Disk.bytes_read;
  Alcotest.(check int) "bytes written" 8192 s.Disk.bytes_written

let test_out_of_range () =
  let d = mk () in
  Alcotest.check_raises "oob" (Invalid_argument "Disk: request out of range") (fun () ->
      Disk.read d ~offset:(Config.default.Config.capacity) ~bytes:1);
  Alcotest.check_raises "bad size" (Invalid_argument "Disk: request size must be positive")
    (fun () -> Disk.read d ~offset:0 ~bytes:0)

(* The ratios that motivate the paper (Table 2, disk row): random reads and
   writes are several times slower than sequential ones. *)
let test_random_to_sequential_ratio () =
  let seq = mk () in
  for i = 0 to 999 do
    Disk.read seq ~offset:(i * 8192) ~bytes:8192
  done;
  let rnd = mk () in
  let rng = Ipl_util.Rng.of_int 11 in
  for _ = 0 to 999 do
    Disk.read rnd ~offset:(Ipl_util.Rng.int rng 10_000_000 * 8192) ~bytes:8192
  done;
  let ratio = Disk.elapsed rnd /. Disk.elapsed seq in
  Alcotest.(check bool)
    (Printf.sprintf "random/sequential read ratio %.1f in [4, 200]" ratio)
    true
    (ratio > 4.0 && ratio < 200.0)

let prop_elapsed_monotone =
  QCheck.Test.make ~name:"elapsed time is monotone" ~count:100
    QCheck.(small_list (pair (int_bound 1_000_000) (int_range 1 64)))
    (fun reqs ->
      let d = mk () in
      List.for_all
        (fun (page, npages) ->
          let before = Disk.elapsed d in
          Disk.read d ~offset:(page * 8192) ~bytes:(npages * 512);
          Disk.elapsed d >= before)
        reqs)

let () =
  Alcotest.run "disk_sim"
    [
      ( "cost model",
        [
          Alcotest.test_case "sequential transfer-bound" `Quick test_sequential_is_transfer_bound;
          Alcotest.test_case "random pays positioning" `Quick test_random_pays_positioning;
          Alcotest.test_case "positioning monotone" `Quick test_positioning_monotone_in_distance;
          Alcotest.test_case "curve interpolation" `Quick test_positioning_interpolates;
          Alcotest.test_case "write slower than read" `Quick test_write_slower_than_read;
          Alcotest.test_case "random/seq ratio (Table 2)" `Quick test_random_to_sequential_ratio;
          QCheck_alcotest.to_alcotest prop_elapsed_monotone;
        ] );
      ( "bookkeeping",
        [
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "bounds checking" `Quick test_out_of_range;
        ] );
    ]
