(* Tests for the Algorithm 2 simulator, the cost model, and the sweeps. *)

module Trace = Reftrace.Trace
module Sim = Iplsim.Ipl_simulator
module Cost = Iplsim.Cost_model
module Sweep = Iplsim.Sweep

let mk_trace ?(db_pages = 150) events =
  let b = Trace.builder ~name:"t" ~db_pages in
  List.iter
    (fun ev ->
      match ev with
      | `L (page, length) -> Trace.add_log b ~op:Trace.Update ~page ~length
      | `W page -> Trace.add_page_write b ~page)
    events;
  Trace.build b

let test_geometry () =
  let p = Sim.default_params in
  Alcotest.(check int) "15 data pages per EU" 15 (Sim.pages_per_eu p);
  Alcotest.(check int) "16 log sectors per EU" 16 (Sim.log_sectors_per_eu p);
  let p64 = { p with Sim.log_region = 64 * 1024 } in
  Alcotest.(check int) "8 data pages at 64KB region" 8 (Sim.pages_per_eu p64);
  Alcotest.(check int) "128 log sectors" 128 (Sim.log_sectors_per_eu p64)

let test_sector_write_on_fill () =
  (* 508-byte payload: ten 50-byte records fit, the 11th forces a flush. *)
  let events = List.init 11 (fun _ -> `L (0, 50)) in
  let r = Sim.run (mk_trace events) in
  Alcotest.(check int) "one sector write" 1 r.Sim.sector_writes;
  Alcotest.(check int) "no merges" 0 r.Sim.merges;
  Alcotest.(check int) "log records" 11 r.Sim.log_records

let test_flush_on_eviction () =
  let events = [ `L (0, 50); `W 0; `L (0, 50); `W 0 ] in
  let r = Sim.run (mk_trace events) in
  Alcotest.(check int) "two sector writes" 2 r.Sim.sector_writes;
  Alcotest.(check int) "page write events" 2 r.Sim.page_write_events

let test_empty_eviction_policy () =
  let events = [ `W 0; `W 0 ] in
  let r = Sim.run (mk_trace events) in
  Alcotest.(check int) "suppressed empty flushes" 0 r.Sim.sector_writes;
  let params = { Sim.default_params with Sim.flush_empty_on_evict = true } in
  let r' = Sim.run ~params (mk_trace events) in
  Alcotest.(check int) "paper pseudo-code flushes anyway" 2 r'.Sim.sector_writes

let test_merge_when_log_region_full () =
  (* Page 0 lives in EU 0 (15 pages/EU). 16 sectors fit; the 17th flush
     triggers a merge. Force one flush per record via eviction. *)
  let events = List.concat (List.init 17 (fun _ -> [ `L (0, 50); `W 0 ])) in
  let r = Sim.run (mk_trace events) in
  Alcotest.(check int) "sector writes" 17 r.Sim.sector_writes;
  Alcotest.(check int) "one merge" 1 r.Sim.merges

let test_merges_drop_with_bigger_log_region () =
  (* Hot page hammered: more log sectors per EU means fewer merges —
     the Figure 5 effect. *)
  let events = List.concat (List.init 200 (fun _ -> [ `L (0, 50); `W 0 ])) in
  let t = mk_trace events in
  let merges region =
    (Sim.run ~params:{ Sim.default_params with Sim.log_region = region } t).Sim.merges
  in
  let m8 = merges 8192 and m32 = merges (32 * 1024) and m64 = merges (64 * 1024) in
  Alcotest.(check bool) (Printf.sprintf "%d > %d > %d" m8 m32 m64) true (m8 > m32 && m32 > m64);
  (* Sector writes are independent of the log-region size. *)
  let sw region =
    (Sim.run ~params:{ Sim.default_params with Sim.log_region = region } t).Sim.sector_writes
  in
  Alcotest.(check int) "sector writes invariant" (sw 8192) (sw (64 * 1024))

let test_count_policy_matches_paper_pseudocode () =
  (* tau_s = 3: a flush happens when a 4th record arrives. *)
  let params = { Sim.default_params with Sim.fill_policy = `Count 3 } in
  let events = List.init 10 (fun _ -> `L (0, 500)) in
  let r = Sim.run ~params (mk_trace events) in
  (* records 1,2,3 accumulate; 4th triggers flush (3 flushed) ... -> 3 full
     flushes at records 4, 7, 10. *)
  Alcotest.(check int) "flushes" 3 r.Sim.sector_writes

let test_pages_map_to_eus () =
  (* Updates to pages 0 and 14 share EU 0; page 15 is in EU 1. Filling 16
     sectors from both EU-0 pages triggers exactly one merge. *)
  let events =
    List.concat
      (List.init 9 (fun _ -> [ `L (0, 50); `W 0; `L (14, 50); `W 14 ]))
  in
  let r = Sim.run (mk_trace events) in
  Alcotest.(check int) "sector writes" 18 r.Sim.sector_writes;
  Alcotest.(check int) "merge in shared EU" 1 r.Sim.merges;
  let events' = List.concat (List.init 9 (fun _ -> [ `L (0, 50); `W 0; `L (15, 50); `W 15 ])) in
  let r' = Sim.run (mk_trace events') in
  Alcotest.(check int) "no merge across EUs" 0 r'.Sim.merges

let test_cost_model_formulas () =
  Alcotest.(check (float 1e-9)) "t_ipl" (100.0 *. 200e-6 +. 2.0 *. 20e-3)
    (Cost.t_ipl ~sector_writes:100 ~merges:2 ());
  Alcotest.(check (float 1e-9)) "t_conv" (0.9 *. 1000.0 *. 20e-3)
    (Cost.t_conv ~page_writes:1000 ~alpha:0.9 ());
  (* Derived from chip timing: 64 x (80+200)us + 1.5ms = 19.42 ms. *)
  let m = Cost.of_flash (Flash_sim.Flash_config.default ()) in
  Alcotest.(check (float 1e-6)) "merge from chip" 19.42e-3 m.Cost.merge;
  Alcotest.(check (float 1e-12)) "sector write from chip" 200e-6 m.Cost.sector_write

let test_db_size () =
  (* Figure 6(b): 1 GB of pages at 8KB log region -> 128K pages / 15 per EU. *)
  let sz =
    Cost.db_size_bytes ~db_pages:131072 ~page_size:8192 ~eu_size:(128 * 1024) ~log_region:8192
  in
  Alcotest.(check int) "eus" (((131072 + 14) / 15) * 128 * 1024) sz;
  let sz64 =
    Cost.db_size_bytes ~db_pages:131072 ~page_size:8192 ~eu_size:(128 * 1024)
      ~log_region:(64 * 1024)
  in
  Alcotest.(check bool) "bigger region costs space" true (sz64 > sz)

let test_sweep () =
  let events = List.concat (List.init 100 (fun _ -> [ `L (0, 50); `W 0 ])) in
  let t = mk_trace events in
  let points = Sweep.log_region_sweep t in
  Alcotest.(check int) "8 points" 8 (List.length points);
  let merges = List.map (fun (p : Sweep.point) -> p.Sweep.result.Sim.merges) points in
  let sorted_desc = List.sort (fun a b -> compare b a) merges in
  Alcotest.(check (list int)) "merges non-increasing" sorted_desc merges;
  let sizes = List.map (fun (p : Sweep.point) -> p.Sweep.db_size) points in
  Alcotest.(check bool) "sizes non-decreasing" true
    (List.for_all2 ( <= ) (List.filteri (fun i _ -> i < 7) sizes) (List.tl sizes))

let test_buffer_series () =
  let mk n =
    mk_trace (List.concat (List.init n (fun i -> [ `L (i mod 10, 50); `W (i mod 10) ])))
  in
  let series = Sweep.buffer_series [ ("20MB", mk 200); ("40MB", mk 100) ] in
  (match series with
  | [ p20; p40 ] ->
      Alcotest.(check string) "label" "20MB" p20.Sweep.label;
      Alcotest.(check bool) "smaller buffer writes more" true (p20.Sweep.t_ipl > p40.Sweep.t_ipl);
      List.iter
        (fun (alpha, t) ->
          Alcotest.(check bool) "t_conv positive" true (t > 0.0);
          Alcotest.(check bool) "alpha recorded" true (alpha = 0.9 || alpha = 0.5))
        p20.Sweep.t_conv_by_alpha
  | _ -> Alcotest.fail "expected two points")

let () =
  Alcotest.run "iplsim"
    [
      ( "simulator",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "sector write on fill" `Quick test_sector_write_on_fill;
          Alcotest.test_case "flush on eviction" `Quick test_flush_on_eviction;
          Alcotest.test_case "empty-eviction policy" `Quick test_empty_eviction_policy;
          Alcotest.test_case "merge on full log region" `Quick test_merge_when_log_region_full;
          Alcotest.test_case "Figure 5 effect" `Quick test_merges_drop_with_bigger_log_region;
          Alcotest.test_case "count policy (tau_s)" `Quick test_count_policy_matches_paper_pseudocode;
          Alcotest.test_case "page-to-EU mapping" `Quick test_pages_map_to_eus;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "formulas" `Quick test_cost_model_formulas;
          Alcotest.test_case "db size (Fig 6b)" `Quick test_db_size;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "log-region sweep" `Quick test_sweep;
          Alcotest.test_case "buffer series" `Quick test_buffer_series;
        ] );
    ]
