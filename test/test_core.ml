(* Tests for the IPL core building blocks: physiological log records,
   log sectors, the sequential system logs, and the storage manager. *)

module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module Page = Storage.Page
module LR = Ipl_core.Log_record
module LS = Ipl_core.Log_sector
module Seq_log = Ipl_core.Seq_log
module Trx_log = Ipl_core.Trx_log
module Meta_log = Ipl_core.Meta_log
module Store = Ipl_core.Ipl_storage
module Config = Ipl_core.Ipl_config

(* The system logs and the bad-block manager now sit on the device
   layer; a raw chip is wrapped as a single-channel device (bit-for-bit
   the old serial behaviour). *)
let dev_of = Device.Flash_device.of_chip

let b = Bytes.of_string

(* ------------------------------------------------------------------ *)
(* Log records                                                         *)

let roundtrip r =
  let buf = Buffer.create 64 in
  LR.encode buf r;
  let r', pos = LR.decode (Buffer.to_bytes buf) ~pos:0 in
  Alcotest.(check int) "consumed all" (Buffer.length buf) pos;
  Alcotest.(check int) "encoded_size" (LR.encoded_size r) pos;
  Alcotest.(check bool) "roundtrip" true (r = r')

let test_record_roundtrips () =
  roundtrip { LR.txid = 7; page = 3; op = LR.Insert { slot = 2; record = b "data" } };
  roundtrip { LR.txid = 0; page = 1000; op = LR.Delete { slot = 0; before = b "gone" } };
  roundtrip
    {
      LR.txid = 9;
      page = 5;
      op = LR.Update_range { slot = 1; offset = 4; before = b "ab"; after = b "cd" };
    };
  roundtrip
    { LR.txid = 1; page = 2; op = LR.Update_full { slot = 3; before = b "x"; after = b "yz" } }

let test_record_apply_unapply () =
  let p = Page.create 512 in
  let r1 = { LR.txid = 1; page = 0; op = LR.Insert { slot = 0; record = b "hello" } } in
  Alcotest.(check (result unit string)) "apply insert" (Ok ()) (LR.apply p r1);
  Alcotest.(check (option bytes)) "inserted" (Some (b "hello")) (Page.read p 0);
  let r2 =
    { LR.txid = 1; page = 0; op = LR.Update_range { slot = 0; offset = 0; before = b "he"; after = b "HE" } }
  in
  Alcotest.(check (result unit string)) "apply update" (Ok ()) (LR.apply p r2);
  Alcotest.(check (option bytes)) "updated" (Some (b "HEllo")) (Page.read p 0);
  Alcotest.(check (result unit string)) "unapply update" (Ok ()) (LR.unapply p r2);
  Alcotest.(check (option bytes)) "reverted" (Some (b "hello")) (Page.read p 0);
  Alcotest.(check (result unit string)) "unapply insert" (Ok ()) (LR.unapply p r1);
  Alcotest.(check (option bytes)) "gone" None (Page.read p 0)

let test_record_delete_cycle () =
  let p = Page.create 512 in
  ignore (Page.insert p (b "victim"));
  let r = { LR.txid = 2; page = 0; op = LR.Delete { slot = 0; before = b "victim" } } in
  Alcotest.(check (result unit string)) "apply delete" (Ok ()) (LR.apply p r);
  Alcotest.(check (option bytes)) "deleted" None (Page.read p 0);
  Alcotest.(check (result unit string)) "unapply delete" (Ok ()) (LR.unapply p r);
  Alcotest.(check (option bytes)) "restored" (Some (b "victim")) (Page.read p 0)

let prop_record_roundtrip =
  let gen =
    QCheck.Gen.(
      let bytes_gen = map Bytes.of_string (string_size (int_range 0 60)) in
      let op =
        frequency
          [
            (2, map2 (fun slot r -> LR.Insert { slot; record = r }) (int_bound 100) bytes_gen);
            (1, map2 (fun slot r -> LR.Delete { slot; before = r }) (int_bound 100) bytes_gen);
            ( 3,
              map3
                (fun slot offset img ->
                  LR.Update_range { slot; offset; before = img; after = Bytes.map (fun c -> Char.chr (Char.code c lxor 1)) img })
                (int_bound 100) (int_bound 500) bytes_gen );
            ( 1,
              map3
                (fun slot before after -> LR.Update_full { slot; before; after })
                (int_bound 100) bytes_gen bytes_gen );
          ]
      in
      map3 (fun txid page op -> { LR.txid; page; op }) (int_bound 10000) (int_bound 100000) op)
  in
  QCheck.Test.make ~name:"log record codec roundtrips" ~count:500 (QCheck.make gen)
    (fun r ->
      let buf = Buffer.create 64 in
      LR.encode buf r;
      let r', pos = LR.decode (Buffer.to_bytes buf) ~pos:0 in
      r = r' && pos = Buffer.length buf)

(* ------------------------------------------------------------------ *)
(* Log sectors                                                         *)

let mk_update txid page n =
  {
    LR.txid;
    page;
    op = LR.Update_range { slot = n; offset = 0; before = b "aaaa"; after = b "bbbb" };
  }

let test_sector_fill_and_serialize () =
  let ls = LS.create ~capacity:512 in
  Alcotest.(check bool) "empty" true (LS.is_empty ls);
  let rec fill n =
    match LS.add ls (mk_update 1 0 n) with `Added -> fill (n + 1) | `Full -> n
  in
  let n = fill 0 in
  (* Each record: 11 header + 2 off + 2 len + 8 = 23 bytes; (512-8)/23 = 21. *)
  Alcotest.(check int) "records until full" 21 n;
  let img = LS.serialize ls in
  Alcotest.(check int) "sector-sized" 512 (Bytes.length img);
  let records = LS.deserialize img in
  Alcotest.(check int) "deserialized count" n (List.length records);
  Alcotest.(check bool) "same records" true (records = LS.records ls)

let test_sector_order_preserved () =
  let ls = LS.create ~capacity:512 in
  for i = 0 to 9 do
    match LS.add ls (mk_update 1 0 i) with `Added -> () | `Full -> Alcotest.fail "full"
  done;
  let slots =
    List.map
      (fun r -> match r.LR.op with LR.Update_range { slot; _ } -> slot | _ -> -1)
      (LS.records ls)
  in
  Alcotest.(check (list int)) "arrival order" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] slots

let test_sector_remove_txn () =
  let ls = LS.create ~capacity:512 in
  List.iter
    (fun (tx, n) -> ignore (LS.add ls (mk_update tx 0 n)))
    [ (1, 0); (2, 1); (1, 2); (3, 3) ];
  Alcotest.(check (list int)) "txids" [ 1; 2; 3 ] (LS.txids ls);
  let removed = LS.remove_txn ls 1 in
  Alcotest.(check int) "removed" 2 (List.length removed);
  Alcotest.(check int) "remaining" 2 (LS.count ls);
  Alcotest.(check (list int)) "txids after" [ 2; 3 ] (LS.txids ls);
  let used = LS.bytes_used ls in
  LS.clear ls;
  Alcotest.(check bool) "cleared" true (LS.is_empty ls && LS.bytes_used ls < used)

let test_sector_checksum_detects_corruption () =
  let ls = LS.create ~capacity:512 in
  for i = 0 to 4 do
    ignore (LS.add ls (mk_update 1 0 i))
  done;
  let img = LS.serialize ls in
  Alcotest.(check int) "clean roundtrip" 5 (List.length (LS.deserialize img));
  (* Flip one payload byte: the CRC must catch it. *)
  let broken = Bytes.copy img in
  Bytes.set broken 20 (Char.chr (Char.code (Bytes.get broken 20) lxor 1));
  (try
     ignore (LS.deserialize broken);
     Alcotest.fail "expected Corrupt"
   with LS.Corrupt -> ());
  (* A header with an insane used field is rejected too. *)
  let bad_used = Bytes.copy img in
  Bytes.set_uint16_le bad_used 2 3;
  try
    ignore (LS.deserialize bad_used);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ | LS.Corrupt -> ()

let test_sector_oversized_record () =
  let ls = LS.create ~capacity:128 in
  let big = { LR.txid = 1; page = 0; op = LR.Insert { slot = 0; record = Bytes.make 200 'x' } } in
  try
    ignore (LS.add ls big);
    Alcotest.fail "expected Record_too_large"
  with LS.Record_too_large _ -> ()

(* ------------------------------------------------------------------ *)
(* Sequential log                                                      *)

let small_chip () = Chip.create (FConfig.default ~num_blocks:16 ())

let test_seq_log_roundtrip () =
  let chip = small_chip () in
  let log = Seq_log.create (dev_of chip) ~first_block:0 ~num_blocks:2 in
  List.iter
    (fun s -> match Seq_log.append log (b s) with `Ok -> () | `Full -> Alcotest.fail "full")
    [ "one"; "two"; "three" ];
  (* Unforced records are not durable. *)
  Alcotest.(check int) "nothing durable yet" 0 (List.length (Seq_log.records log));
  Seq_log.force log;
  Alcotest.(check (list string)) "durable after force" [ "one"; "two"; "three" ]
    (List.map Bytes.to_string (Seq_log.records log))

let test_seq_log_recover_position () =
  let chip = small_chip () in
  let log = Seq_log.create (dev_of chip) ~first_block:0 ~num_blocks:2 in
  ignore (Seq_log.append log (b "alpha"));
  Seq_log.force log;
  ignore (Seq_log.append log (b "buffered-lost"));
  (* Crash: recover from the chip alone. *)
  let log' = Seq_log.recover (dev_of chip) ~first_block:0 ~num_blocks:2 in
  Alcotest.(check (list string)) "only forced survives" [ "alpha" ]
    (List.map Bytes.to_string (Seq_log.records log'));
  (* Appending continues in fresh sectors. *)
  ignore (Seq_log.append log' (b "beta"));
  Seq_log.force log';
  Alcotest.(check (list string)) "continued" [ "alpha"; "beta" ]
    (List.map Bytes.to_string (Seq_log.records log'))

let test_seq_log_fills_up () =
  let chip = small_chip () in
  let log = Seq_log.create (dev_of chip) ~first_block:0 ~num_blocks:1 in
  (* Each record takes a whole sector when forced individually: 256 sectors. *)
  let rec spam n =
    match Seq_log.append log (Bytes.make 400 'r') with
    | `Ok ->
        Seq_log.force log;
        spam (n + 1)
    | `Full -> n
  in
  let n = spam 0 in
  Alcotest.(check int) "capacity reached" (Seq_log.sector_capacity log) n;
  Seq_log.reset log;
  Alcotest.(check int) "reset" 0 (Seq_log.sectors_written log);
  (match Seq_log.append log (b "again") with `Ok -> () | `Full -> Alcotest.fail "reset full");
  Seq_log.force log;
  Alcotest.(check int) "usable after reset" 1 (List.length (Seq_log.records log))

(* ------------------------------------------------------------------ *)
(* Transaction log                                                     *)

let test_trx_log_statuses () =
  let chip = small_chip () in
  let log = Trx_log.create (dev_of chip) ~first_block:0 ~num_blocks:2 in
  Trx_log.log_begin log 1;
  Trx_log.log_begin log 2;
  Trx_log.log_commit log 1;
  Alcotest.(check bool) "committed" true (Trx_log.status log 1 = Trx_log.Committed);
  Alcotest.(check bool) "active" true (Trx_log.status log 2 = Trx_log.Active);
  Alcotest.(check bool) "txid 0" true (Trx_log.status log 0 = Trx_log.Committed);
  Alcotest.(check bool) "unknown = committed" true (Trx_log.status log 99 = Trx_log.Committed);
  Alcotest.(check (list int)) "active list" [ 2 ] (Trx_log.active log);
  Alcotest.(check int) "max txid" 2 (Trx_log.max_txid log)

let test_trx_log_recovery_aborts_incomplete () =
  let chip = small_chip () in
  let log = Trx_log.create (dev_of chip) ~first_block:0 ~num_blocks:2 in
  Trx_log.log_begin log 1;
  Trx_log.log_commit log 1;
  Trx_log.log_begin log 2;
  Trx_log.log_begin log 3;
  Trx_log.log_abort log 3;
  (* txid 2's begin rode along with txid 3's forced records. Crash now. *)
  let log', aborted = Trx_log.recover (dev_of chip) ~first_block:0 ~num_blocks:2 in
  Alcotest.(check (list int)) "incomplete aborted" [ 2 ] aborted;
  Alcotest.(check bool) "1 committed" true (Trx_log.status log' 1 = Trx_log.Committed);
  Alcotest.(check bool) "2 aborted" true (Trx_log.status log' 2 = Trx_log.Aborted);
  Alcotest.(check bool) "3 aborted" true (Trx_log.status log' 3 = Trx_log.Aborted)

let test_trx_log_compaction () =
  let chip = small_chip () in
  let log = Trx_log.create (dev_of chip) ~first_block:0 ~num_blocks:1 in
  (* Burn through far more commit cycles than raw sectors (256): compaction
     must kick in transparently. *)
  for txid = 1 to 2000 do
    Trx_log.log_begin log txid;
    Trx_log.log_commit log txid
  done;
  Trx_log.log_begin log 2001;
  Trx_log.log_abort log 2001;
  Alcotest.(check bool) "late abort" true (Trx_log.status log 2001 = Trx_log.Aborted);
  Alcotest.(check bool) "old commit" true (Trx_log.status log 1500 = Trx_log.Committed);
  (* Aborted ids survive crash + compaction. *)
  let log', _ = Trx_log.recover (dev_of chip) ~first_block:0 ~num_blocks:1 in
  Alcotest.(check bool) "abort durable" true (Trx_log.status log' 2001 = Trx_log.Aborted)

(* ------------------------------------------------------------------ *)
(* Meta log                                                            *)

let test_meta_log_roundtrip () =
  let events =
    [
      Meta_log.Page_alloc { page = 1; eu = 2; idx = 3 };
      Meta_log.Merge { old_eu = 2; new_eu = 7 };
      Meta_log.Overflow_alloc { eu = 9 };
      Meta_log.Overflow_assign { data_eu = 7; sector = 12345 };
      Meta_log.Overflow_release { data_eu = 7 };
      Meta_log.Overflow_free { eu = 9 };
    ]
  in
  List.iter
    (fun e -> Alcotest.(check bool) "codec" true (Meta_log.decode (Meta_log.encode e) = e))
    events;
  let chip = small_chip () in
  let log = Meta_log.create (dev_of chip) ~first_block:0 ~num_blocks:2 in
  List.iter (Meta_log.log log) events;
  Meta_log.force log;
  let _, recovered = Meta_log.recover (dev_of chip) ~first_block:0 ~num_blocks:2 in
  Alcotest.(check bool) "recovered in order" true (recovered = events)

let test_meta_log_compaction_via_snapshot () =
  let chip = small_chip () in
  let log = Meta_log.create (dev_of chip) ~first_block:0 ~num_blocks:1 in
  Meta_log.set_snapshot log (fun () -> [ Meta_log.Page_alloc { page = 0; eu = 1; idx = 0 } ]);
  for i = 0 to 20_000 do
    Meta_log.log log (Meta_log.Merge { old_eu = i; new_eu = i + 1 })
  done;
  Meta_log.force log;
  let _, recovered = Meta_log.recover (dev_of chip) ~first_block:0 ~num_blocks:1 in
  (* Whatever survives must start with the snapshot. *)
  (match recovered with
  | Meta_log.Page_alloc { page = 0; eu = 1; idx = 0 } :: _ -> ()
  | _ -> Alcotest.fail "snapshot not at head");
  Alcotest.(check bool) "bounded" true (List.length recovered < 25_000)

(* ------------------------------------------------------------------ *)
(* Storage manager                                                     *)

(* A small chip: 128 KB erase units, 8 KB pages, 8 KB log region ->
   15 data pages and 16 log sectors per erase unit. *)
let mk_store ?(config = Config.default) ?(blocks = 32) ?(txn_status = fun _ -> Trx_log.Committed) () =
  let chip = Chip.create (FConfig.default ~num_blocks:blocks ()) in
  let meta = Meta_log.create (dev_of chip) ~first_block:0 ~num_blocks:2 in
  let store =
    Store.create ~config (dev_of chip) ~first_block:2 ~num_blocks:(blocks - 2) ~txn_status ~meta ()
  in
  (chip, meta, store)

let fresh_page () = Page.create 8192

let page_with strs =
  let p = fresh_page () in
  List.iter (fun s -> ignore (Page.insert p (b s))) strs;
  p

let test_store_allocate_and_read () =
  let _, _, store = mk_store () in
  let pid = Store.allocate_page store (page_with [ "r0"; "r1" ]) in
  Alcotest.(check int) "first page id" 0 pid;
  Alcotest.(check bool) "exists" true (Store.page_exists store pid);
  Alcotest.(check int) "count" 1 (Store.num_pages store);
  let p = Store.read_page store pid in
  Alcotest.(check (option bytes)) "content" (Some (b "r1")) (Page.read p 1)

let test_store_pages_share_eu () =
  let _, _, store = mk_store () in
  let pids = List.init 20 (fun _ -> Store.allocate_page store (fresh_page ())) in
  (* 15 data pages per erase unit: pages 0-14 in one, 15-19 in the next. *)
  let eu0 = Store.eu_of_page store (List.nth pids 0) in
  Alcotest.(check int) "page 14 same eu" eu0 (Store.eu_of_page store (List.nth pids 14));
  Alcotest.(check bool) "page 15 next eu" true
    (Store.eu_of_page store (List.nth pids 15) <> eu0)

let test_store_log_flush_and_read_applies () =
  let _, _, store = mk_store () in
  let pid = Store.allocate_page store (page_with [ "hello" ]) in
  Store.flush_log store ~page:pid
    [ { LR.txid = 0; page = pid; op = LR.Update_range { slot = 0; offset = 0; before = b "he"; after = b "HE" } } ];
  let eu = Store.eu_of_page store pid in
  Alcotest.(check int) "one log sector used" 1 (Store.used_log_sectors store ~eu);
  let p = Store.read_page store pid in
  Alcotest.(check (option bytes)) "log applied on read" (Some (b "HEllo")) (Page.read p 0);
  Alcotest.(check int) "live records" 1 (List.length (Store.live_log_records store ~page:pid))

let test_store_merge_when_log_full () =
  let _, _, store = mk_store () in
  let pid = Store.allocate_page store (page_with [ "hello" ]) in
  let eu_before = Store.eu_of_page store pid in
  (* 16 log sectors per erase unit: the 17th flush triggers a merge. *)
  for i = 1 to 17 do
    Store.flush_log store ~page:pid
      [
        {
          LR.txid = 0;
          page = pid;
          op =
            LR.Update_range
              { slot = 0; offset = 0; before = b (Printf.sprintf "%02d" (i - 1)); after = b (Printf.sprintf "%02d" i) };
        };
      ]
  done;
  let s = Store.stats store in
  Alcotest.(check int) "one merge" 1 s.Store.merges;
  let eu_after = Store.eu_of_page store pid in
  Alcotest.(check bool) "relocated" true (eu_after <> eu_before);
  Alcotest.(check int) "log region reset + 1 pending-after-merge" 0
    (Store.used_log_sectors store ~eu:eu_after);
  (* Updates numbered 01..17 applied in order: record now reads "17llo"...
     the before-images were sized 2, so the visible prefix is "17". *)
  let p = Store.read_page store pid in
  Alcotest.(check (option bytes)) "all updates survived the merge" (Some (b "17llo"))
    (Page.read p 0);
  Alcotest.(check int) "no live log records left" 0
    (List.length (Store.live_log_records store ~page:pid))

let test_store_merge_reclaims_eu () =
  let _, _, store = mk_store () in
  let pid = Store.allocate_page store (page_with [ "x" ]) in
  let free_before = Store.free_eus store in
  for i = 0 to 16 do
    ignore i;
    Store.flush_log store ~page:pid
      [ { LR.txid = 0; page = pid; op = LR.Update_range { slot = 0; offset = 0; before = b "x"; after = b "y" } } ]
  done;
  Alcotest.(check int) "free count unchanged (swap)" free_before (Store.free_eus store)

let test_store_aborted_records_skipped () =
  let statuses = Hashtbl.create 4 in
  let txn_status txid =
    if txid = 0 then Trx_log.Committed
    else Option.value ~default:Trx_log.Committed (Hashtbl.find_opt statuses txid)
  in
  let config = { Config.default with Config.recovery_enabled = true } in
  let _, _, store = mk_store ~config ~txn_status () in
  let pid = Store.allocate_page store (page_with [ "base" ]) in
  Hashtbl.replace statuses 1 Trx_log.Aborted;
  Hashtbl.replace statuses 2 Trx_log.Committed;
  Store.flush_log store ~page:pid
    [
      { LR.txid = 1; page = pid; op = LR.Update_range { slot = 0; offset = 0; before = b "b"; after = b "X" } };
      { LR.txid = 2; page = pid; op = LR.Update_range { slot = 0; offset = 1; before = b "a"; after = b "A" } };
    ];
  let p = Store.read_page store pid in
  Alcotest.(check (option bytes)) "only committed applied" (Some (b "bAse")) (Page.read p 0)

let test_store_selective_merge_diverts_to_overflow () =
  let statuses = Hashtbl.create 4 in
  let txn_status txid =
    if txid = 0 then Trx_log.Committed
    else Option.value ~default:Trx_log.Active (Hashtbl.find_opt statuses txid)
  in
  let config =
    { Config.default with Config.recovery_enabled = true; selective_merge_threshold = 0.5 }
  in
  let _, _, store = mk_store ~config ~txn_status () in
  let pid = Store.allocate_page store (page_with [ "base" ]) in
  let eu0 = Store.eu_of_page store pid in
  (* Fill all 16 log sectors with records of an active transaction, then
     flush one more: carry fraction 1.0 > 0.5, so no merge — overflow. *)
  for _ = 1 to 17 do
    Store.flush_log store ~page:pid
      [ { LR.txid = 5; page = pid; op = LR.Update_range { slot = 0; offset = 0; before = b "b"; after = b "b" } } ]
  done;
  let s = Store.stats store in
  Alcotest.(check int) "no merge" 0 s.Store.merges;
  Alcotest.(check int) "one diversion" 1 s.Store.overflow_diversions;
  Alcotest.(check int) "eu unchanged" eu0 (Store.eu_of_page store pid);
  Alcotest.(check int) "overflow sector assigned" 1 (Store.overflow_sectors store ~eu:eu0);
  (* Reads still see all 17 active records. *)
  Alcotest.(check int) "records visible" 17
    (List.length (Store.live_log_records store ~page:pid));
  (* Now commit the transaction; the next flush merges everything and the
     overflow area is reclaimed. *)
  Hashtbl.replace statuses 5 Trx_log.Committed;
  Store.flush_log store ~page:pid
    [ { LR.txid = 0; page = pid; op = LR.Update_range { slot = 0; offset = 0; before = b "b"; after = b "B" } } ];
  let s = Store.stats store in
  Alcotest.(check int) "merged after commit" 1 s.Store.merges;
  Alcotest.(check int) "overflow reclaimed" 1 s.Store.erase_units_reclaimed;
  let eu1 = Store.eu_of_page store pid in
  Alcotest.(check int) "no overflow left" 0 (Store.overflow_sectors store ~eu:eu1);
  let p = Store.read_page store pid in
  Alcotest.(check (option bytes)) "final content" (Some (b "Base")) (Page.read p 0)

let test_store_carry_over_active_records () =
  let statuses = Hashtbl.create 4 in
  let txn_status txid =
    if txid = 0 then Trx_log.Committed
    else Option.value ~default:Trx_log.Committed (Hashtbl.find_opt statuses txid)
  in
  let config =
    (* tau = 1.0: a merge always proceeds, carrying active records over. *)
    { Config.default with Config.recovery_enabled = true; selective_merge_threshold = 1.0 }
  in
  let _, _, store = mk_store ~config ~txn_status () in
  let pid = Store.allocate_page store (page_with [ "base" ]) in
  Hashtbl.replace statuses 9 Trx_log.Active;
  (* One active record among committed filler. *)
  Store.flush_log store ~page:pid
    [ { LR.txid = 9; page = pid; op = LR.Update_range { slot = 0; offset = 0; before = b "b"; after = b "Z" } } ];
  for _ = 1 to 16 do
    Store.flush_log store ~page:pid
      [ { LR.txid = 0; page = pid; op = LR.Update_range { slot = 0; offset = 1; before = b "a"; after = b "a" } } ]
  done;
  let s = Store.stats store in
  Alcotest.(check int) "merged" 1 s.Store.merges;
  Alcotest.(check int) "carried" 1 s.Store.records_carried_over;
  let eu = Store.eu_of_page store pid in
  Alcotest.(check int) "carried record compacted into new log region" 1
    (Store.used_log_sectors store ~eu);
  (* The active record is still applied on read (it is not aborted). *)
  let p = Store.read_page store pid in
  Alcotest.(check (option bytes)) "active change visible" (Some (b "Zase")) (Page.read p 0);
  (* Abort it: it disappears without any further I/O. *)
  Hashtbl.replace statuses 9 Trx_log.Aborted;
  let p = Store.read_page store pid in
  Alcotest.(check (option bytes)) "aborted change gone" (Some (b "base")) (Page.read p 0)

let test_store_wear_aware_allocation () =
  let _, _, store = mk_store () in
  let pid = Store.allocate_page store (page_with [ "w" ]) in
  (* Drive many merge cycles; wear-aware allocation must keep the spread of
     erase counts tight across the free pool. *)
  for _ = 0 to 400 do
    Store.flush_log store ~page:pid
      [ { LR.txid = 0; page = pid; op = LR.Update_range { slot = 0; offset = 0; before = b "w"; after = b "w" } } ]
  done;
  let s = Store.stats store in
  Alcotest.(check bool) "many merges happened" true (s.Store.merges > 10)

let test_store_recover_after_clean_shutdown () =
  let chip, meta, store = mk_store () in
  let pid0 = Store.allocate_page store (page_with [ "persisted" ]) in
  let pid1 = Store.allocate_page store (page_with [ "other" ]) in
  Store.flush_log store ~page:pid0
    [ { LR.txid = 0; page = pid0; op = LR.Update_range { slot = 0; offset = 0; before = b "p"; after = b "P" } } ];
  Store.force_meta store;
  ignore meta;
  (* Crash: rebuild everything from the chip. *)
  let meta', events = Meta_log.recover (dev_of chip) ~first_block:0 ~num_blocks:2 in
  let store' =
    Store.recover (dev_of chip) ~first_block:2 ~num_blocks:30
      ~txn_status:(fun _ -> Trx_log.Committed)
      ~meta:meta' ~meta_events:events ()
  in
  Alcotest.(check int) "pages recovered" 2 (Store.num_pages store');
  let p = Store.read_page store' pid0 in
  Alcotest.(check (option bytes)) "log records recovered" (Some (b "Persisted")) (Page.read p 0);
  let q = Store.read_page store' pid1 in
  Alcotest.(check (option bytes)) "other page" (Some (b "other")) (Page.read q 0);
  (* Allocation continues with fresh ids. *)
  let pid2 = Store.allocate_page store' (fresh_page ()) in
  Alcotest.(check int) "next id" 2 pid2

let test_store_recover_after_merges () =
  let chip, _, store = mk_store () in
  let pid = Store.allocate_page store (page_with [ "00" ]) in
  for i = 1 to 40 do
    Store.flush_log store ~page:pid
      [
        {
          LR.txid = 0;
          page = pid;
          op =
            LR.Update_range
              {
                slot = 0;
                offset = 0;
                before = b (Printf.sprintf "%02d" (i - 1));
                after = b (Printf.sprintf "%02d" i);
              };
        };
      ]
  done;
  Store.force_meta store;
  let merges = (Store.stats store).Store.merges in
  Alcotest.(check bool) "merged at least twice" true (merges >= 2);
  let meta', events = Meta_log.recover (dev_of chip) ~first_block:0 ~num_blocks:2 in
  let store' =
    Store.recover (dev_of chip) ~first_block:2 ~num_blocks:30
      ~txn_status:(fun _ -> Trx_log.Committed)
      ~meta:meta' ~meta_events:events ()
  in
  let p = Store.read_page store' pid in
  Alcotest.(check (option bytes)) "content after recovery" (Some (b "40")) (Page.read p 0)

let test_store_recovery_gc_unreferenced_unit () =
  (* A crash in the middle of a merge leaves a half-written erase unit that
     no metadata references. Recovery must erase it and return it to the
     free pool. *)
  let chip, _, store = mk_store () in
  ignore (Store.allocate_page store (page_with [ "live" ]));
  Store.force_meta store;
  (* Fake the torn merge: scribble into a free unit behind the manager's
     back. *)
  let victim = 20 in
  Chip.write_sectors chip ~sector:(Chip.sector_of_block chip victim) (Bytes.make 512 'g');
  Alcotest.(check bool) "scribbled" true
    (Chip.free_sectors_in_block chip victim < 256);
  let meta', events = Meta_log.recover (dev_of chip) ~first_block:0 ~num_blocks:2 in
  let store' =
    Store.recover (dev_of chip) ~first_block:2 ~num_blocks:30
      ~txn_status:(fun _ -> Trx_log.Committed)
      ~meta:meta' ~meta_events:events ()
  in
  Alcotest.(check int) "unit erased by GC" 256 (Chip.free_sectors_in_block chip victim);
  (* And it is allocatable again: fill pages until it gets used. *)
  Alcotest.(check bool) "free pool intact" true (Store.free_eus store' >= 28)

let test_store_detects_corrupt_log_sector () =
  (* Corrupt a written in-page log sector on the chip: the read path must
     refuse to replay it rather than apply garbage. *)
  let chip, _, store = mk_store () in
  let pid = Store.allocate_page store (page_with [ "safe" ]) in
  Store.flush_log store ~page:pid
    [ { LR.txid = 0; page = pid; op = LR.Update_range { slot = 0; offset = 0; before = b "s"; after = b "S" } } ];
  let eu = Store.eu_of_page store pid in
  (* The unit's first log sector sits right after 15 data pages. *)
  let log_sector = Chip.sector_of_block chip eu + (15 * 16) in
  (* Flip a byte inside the sector's record payload. *)
  (match Chip.corrupt_sector ~offset:12 chip log_sector with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Chip.corrupt_error_to_string e));
  (try
     ignore (Store.read_page store pid);
     Alcotest.fail "expected Corrupt"
   with Ipl_core.Log_sector.Corrupt -> ())

let test_store_out_of_space () =
  (* Tiny store: reserve leaves very few units. *)
  let chip = Chip.create (FConfig.default ~num_blocks:4 ()) in
  let meta = Meta_log.create (dev_of chip) ~first_block:0 ~num_blocks:1 in
  let store =
    Store.create (dev_of chip) ~first_block:1 ~num_blocks:3
      ~txn_status:(fun _ -> Trx_log.Committed)
      ~meta ()
  in
  (* 3 units x 15 pages: the 46th allocation must fail. *)
  for _ = 1 to 45 do
    ignore (Store.allocate_page store (fresh_page ()))
  done;
  (try
     ignore (Store.allocate_page store (fresh_page ()));
     Alcotest.fail "expected out of space"
   with Failure _ -> ());
  (* And merges now have no free unit either. *)
  try
    for _ = 0 to 16 do
      Store.flush_log store ~page:0
        [ { LR.txid = 0; page = 0; op = LR.Update_range { slot = 0; offset = 0; before = b "x"; after = b "x" } } ]
    done;
    Alcotest.fail "expected out of space on merge"
  with Failure _ | Invalid_argument _ -> ()

(* Property: interleaved updates to several pages, with random merge
   pressure, never lose a committed update. *)
let prop_store_durability =
  QCheck.Test.make ~name:"storage never loses applied updates" ~count:30
    QCheck.(small_list (pair (int_bound 4) (int_bound 200)))
    (fun ops ->
      let _, _, store = mk_store () in
      let n_pages = 5 in
      let pids =
        Array.init n_pages (fun i ->
            Store.allocate_page store (page_with [ Printf.sprintf "%06d" i ]))
      in
      let model = Array.init n_pages (fun i -> Printf.sprintf "%06d" i) in
      List.iter
        (fun (pi, v) ->
          let pid = pids.(pi) in
          let after = Printf.sprintf "%06d" v in
          Store.flush_log store ~page:pid
            [
              {
                LR.txid = 0;
                page = pid;
                op =
                  LR.Update_range
                    { slot = 0; offset = 0; before = b model.(pi); after = b after };
              };
            ];
          model.(pi) <- after)
        ops;
      Array.for_all2
        (fun pid expected ->
          match Page.read (Store.read_page store pid) 0 with
          | Some got -> Bytes.to_string got = expected
          | None -> false)
        pids model)

let () =
  Alcotest.run "ipl_core"
    [
      ( "log_record",
        [
          Alcotest.test_case "codec roundtrips" `Quick test_record_roundtrips;
          Alcotest.test_case "apply/unapply" `Quick test_record_apply_unapply;
          Alcotest.test_case "delete cycle" `Quick test_record_delete_cycle;
          QCheck_alcotest.to_alcotest prop_record_roundtrip;
        ] );
      ( "log_sector",
        [
          Alcotest.test_case "fill & serialize" `Quick test_sector_fill_and_serialize;
          Alcotest.test_case "order preserved" `Quick test_sector_order_preserved;
          Alcotest.test_case "remove txn" `Quick test_sector_remove_txn;
          Alcotest.test_case "oversized record" `Quick test_sector_oversized_record;
          Alcotest.test_case "checksum detects corruption" `Quick test_sector_checksum_detects_corruption;
        ] );
      ( "seq_log",
        [
          Alcotest.test_case "roundtrip" `Quick test_seq_log_roundtrip;
          Alcotest.test_case "recover position" `Quick test_seq_log_recover_position;
          Alcotest.test_case "fills up & reset" `Quick test_seq_log_fills_up;
        ] );
      ( "trx_log",
        [
          Alcotest.test_case "statuses" `Quick test_trx_log_statuses;
          Alcotest.test_case "recovery aborts incomplete" `Quick test_trx_log_recovery_aborts_incomplete;
          Alcotest.test_case "compaction" `Quick test_trx_log_compaction;
        ] );
      ( "meta_log",
        [
          Alcotest.test_case "roundtrip" `Quick test_meta_log_roundtrip;
          Alcotest.test_case "snapshot compaction" `Quick test_meta_log_compaction_via_snapshot;
        ] );
      ( "ipl_storage",
        [
          Alcotest.test_case "allocate & read" `Quick test_store_allocate_and_read;
          Alcotest.test_case "pages share erase units" `Quick test_store_pages_share_eu;
          Alcotest.test_case "flush & read applies" `Quick test_store_log_flush_and_read_applies;
          Alcotest.test_case "merge when log full" `Quick test_store_merge_when_log_full;
          Alcotest.test_case "merge swaps free unit" `Quick test_store_merge_reclaims_eu;
          Alcotest.test_case "aborted records skipped" `Quick test_store_aborted_records_skipped;
          Alcotest.test_case "selective merge diverts" `Quick test_store_selective_merge_diverts_to_overflow;
          Alcotest.test_case "active records carried" `Quick test_store_carry_over_active_records;
          Alcotest.test_case "wear-aware allocation" `Quick test_store_wear_aware_allocation;
          Alcotest.test_case "recovery (clean)" `Quick test_store_recover_after_clean_shutdown;
          Alcotest.test_case "recovery (after merges)" `Quick test_store_recover_after_merges;
          Alcotest.test_case "recovery GCs torn merges" `Quick test_store_recovery_gc_unreferenced_unit;
          Alcotest.test_case "detects corrupt log sector" `Quick test_store_detects_corrupt_log_sector;
          Alcotest.test_case "out of space" `Quick test_store_out_of_space;
          QCheck_alcotest.to_alcotest prop_store_durability;
        ] );
    ]
