(* Tests for the TPC-C substrate: schema, both store implementations, the
   five transactions, and trace generation. *)

module Schema = Tpcc.Tpcc_schema
module Txn = Tpcc.Tpcc_txn
module Layout = Tpcc.Tpcc_layout_store
module Estore = Tpcc.Tpcc_engine_store
module Driver = Tpcc.Tpcc_driver
module Trace = Reftrace.Trace
module Record = Storage.Record
module Rng = Ipl_util.Rng

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)

let test_key_packing_unique () =
  (* Keys must be injective across the ranges transactions use. *)
  let seen = Hashtbl.create 1024 in
  let add k =
    if Hashtbl.mem seen k then Alcotest.failf "key collision at %d" k;
    Hashtbl.replace seen k ()
  in
  for w = 1 to 3 do
    for d = 1 to 10 do
      add (Schema.district_key ~w ~d);
      for c = 1 to 30 do
        add (Schema.customer_key ~w ~d ~c)
      done;
      for o = 1 to 20 do
        add (Schema.orders_key ~w ~d ~o);
        for ol = 1 to 15 do
          add (Schema.order_line_key ~w ~d ~o ~ol)
        done
      done
    done
  done

let test_orders_key_roundtrip () =
  let k = Schema.orders_key ~w:7 ~d:3 ~o:123456 in
  Alcotest.(check int) "o extracted" 123456 (Schema.orders_key_o k)

let test_rows_encode_within_log_sector () =
  (* Every row a runtime transaction can insert must produce an insert log
     record that fits a 512-byte flash log sector (payload 508, header 13). *)
  let rng = Rng.of_int 1 in
  let check name row =
    let size = Bytes.length (Record.encode row) in
    Alcotest.(check bool) (Printf.sprintf "%s insertable (%dB)" name size) true (size <= 490)
  in
  for _ = 1 to 50 do
    check "history" (Schema.history_row rng ~w:1 ~d:1 ~c:1 ~amount:42.0);
    check "new_order" (Schema.new_order_row ~w:1 ~d:1 ~o:1);
    check "orders" (Schema.orders_row rng ~w:1 ~d:1 ~o:1 ~c:1 ~ol_cnt:10);
    check "order_line" (Schema.order_line_row rng ~w:1 ~d:1 ~o:1 ~ol:1 ~i:1 ~qty:5);
    (* Bulk-loaded rows are logged too when loading on the real engine. *)
    check "customer" (Schema.customer_row rng ~w:1 ~d:1 ~c:1);
    check "stock" (Schema.stock_row rng ~w:1 ~i:1);
    check "item" (Schema.item_row rng ~i:1);
    check "warehouse" (Schema.warehouse_row rng ~w:1);
    check "district" (Schema.district_row rng ~w:1 ~d:1)
  done

let test_row_field_indexes () =
  let rng = Rng.of_int 2 in
  let d = Schema.district_row rng ~w:1 ~d:3 in
  Alcotest.(check int) "d_next_o_id" (Schema.initial_orders_per_district + 1)
    (Record.get_int d Schema.F.d_next_o_id);
  let c = Schema.customer_row rng ~w:1 ~d:1 ~c:5 in
  let credit = Record.get_string c Schema.F.c_credit in
  Alcotest.(check bool) "credit GC/BC" true (credit = "GC" || credit = "BC");
  Alcotest.(check (float 1e-9)) "balance" (-10.0) (Record.get_float c Schema.F.c_balance);
  let s = Schema.stock_row rng ~w:1 ~i:9 in
  let q = Record.get_int s Schema.F.s_quantity in
  Alcotest.(check bool) "quantity in [10,100]" true (q >= 10 && q <= 100)

(* ------------------------------------------------------------------ *)
(* Layout store                                                        *)

let mk_layout () = Layout.create ~buffer_bytes:(64 * 1024) ~name:"test" ()

let test_layout_crud () =
  let st = mk_layout () in
  let row = Record.[ I 1; S "hello" ] in
  Layout.insert st ~tx:Layout.no_txn Schema.Warehouse ~key:1 row;
  Alcotest.(check bool) "lookup" true (Layout.lookup st Schema.Warehouse ~key:1 = Some row);
  Alcotest.(check bool) "missing" true (Layout.lookup st Schema.Warehouse ~key:2 = None);
  let updated =
    Layout.update st ~tx:Layout.no_txn Schema.Warehouse ~key:1 (fun r -> Record.set r 1 (Record.S "bye"))
  in
  Alcotest.(check bool) "update" true updated;
  Alcotest.(check bool) "updated value" true
    (Layout.lookup st Schema.Warehouse ~key:1 = Some Record.[ I 1; S "bye" ]);
  Alcotest.(check bool) "delete" true (Layout.delete st ~tx:Layout.no_txn Schema.Warehouse ~key:1);
  Alcotest.(check bool) "gone" true (Layout.lookup st Schema.Warehouse ~key:1 = None);
  Alcotest.(check bool) "delete missing" false (Layout.delete st ~tx:Layout.no_txn Schema.Warehouse ~key:1)

let test_layout_tables_disjoint () =
  let st = mk_layout () in
  Layout.insert st ~tx:Layout.no_txn Schema.Warehouse ~key:7 Record.[ I 1 ];
  Layout.insert st ~tx:Layout.no_txn Schema.District ~key:7 Record.[ I 2 ];
  Alcotest.(check bool) "warehouse 7" true
    (Layout.lookup st Schema.Warehouse ~key:7 = Some Record.[ I 1 ]);
  Alcotest.(check bool) "district 7" true
    (Layout.lookup st Schema.District ~key:7 = Some Record.[ I 2 ])

let test_layout_new_order_ordering () =
  let st = mk_layout () in
  List.iter
    (fun o ->
      Layout.insert st ~tx:Layout.no_txn Schema.New_order
        ~key:(Schema.new_order_key ~w:1 ~d:1 ~o)
        (Schema.new_order_row ~w:1 ~d:1 ~o))
    [ 5; 3; 9 ];
  let lo = Schema.new_order_key ~w:1 ~d:1 ~o:0 in
  Alcotest.(check (option int)) "oldest first" (Some (Schema.new_order_key ~w:1 ~d:1 ~o:3))
    (Layout.next_key_ge st Schema.New_order ~key:lo);
  ignore (Layout.delete st ~tx:Layout.no_txn Schema.New_order ~key:(Schema.new_order_key ~w:1 ~d:1 ~o:3));
  Alcotest.(check (option int)) "then next" (Some (Schema.new_order_key ~w:1 ~d:1 ~o:5))
    (Layout.next_key_ge st Schema.New_order ~key:lo)

let test_layout_emits_trace () =
  let st = mk_layout () in
  for k = 1 to 50 do
    Layout.insert st ~tx:Layout.no_txn Schema.Stock ~key:k Record.[ I k; S (String.make 100 's') ]
  done;
  for k = 1 to 50 do
    ignore (Layout.update st ~tx:Layout.no_txn Schema.Stock ~key:k (fun r -> Record.set r 0 (Record.I (-k))))
  done;
  let trace = Layout.finish st in
  let s = Trace.stats trace in
  (* Row inserts log as inserts; index-entry maintenance and row updates
     log as updates. *)
  Alcotest.(check int) "inserts" 50 s.Trace.insert.Trace.occurrences;
  Alcotest.(check int) "updates" 100 s.Trace.update.Trace.occurrences;
  Alcotest.(check bool) "page writes happened (tiny pool)" true (s.Trace.page_writes > 0);
  Alcotest.(check bool) "db pages allocated" true (Trace.db_pages trace > 0);
  (* Row updates: 8-byte delta -> 31 bytes; index entries -> 29 bytes. *)
  Alcotest.(check (float 0.6)) "update length" 30.0 s.Trace.update.Trace.avg_length

let test_layout_abort_undoes () =
  let st = mk_layout () in
  Layout.insert st ~tx:Layout.no_txn Schema.District ~key:7 Record.[ I 7; I 100 ];
  let tx = Layout.begin_txn st in
  ignore (Layout.update st ~tx Schema.District ~key:7 (fun r -> Record.set r 1 (Record.I 101)));
  Layout.insert st ~tx Schema.Orders ~key:55 Record.[ I 55 ];
  ignore (Layout.delete st ~tx Schema.District ~key:7);
  Layout.abort st tx;
  Alcotest.(check bool) "update + delete rolled back" true
    (Layout.lookup st Schema.District ~key:7 = Some Record.[ I 7; I 100 ]);
  Alcotest.(check bool) "insert rolled back" true (Layout.lookup st Schema.Orders ~key:55 = None);
  (* Committed work is untouched by other aborts. *)
  let tx2 = Layout.begin_txn st in
  ignore (Layout.update st ~tx:tx2 Schema.District ~key:7 (fun r -> Record.set r 1 (Record.I 200)));
  Layout.commit st tx2;
  Layout.abort st tx;
  Alcotest.(check bool) "commit stands" true
    (Layout.lookup st Schema.District ~key:7 = Some Record.[ I 7; I 200 ])

let test_layout_by_last_name () =
  let st = mk_layout () in
  let rng = Rng.of_int 3 in
  (* Customers 1..5 of district (1,1): names are last_name (c-1). *)
  for c = 1 to 5 do
    Layout.insert st ~tx:Layout.no_txn Schema.Customer
      ~key:(Schema.customer_key ~w:1 ~d:1 ~c)
      (Schema.customer_row rng ~w:1 ~d:1 ~c)
  done;
  (* All five share no name (numbers 0..4 distinct): each lookup returns
     that single customer. *)
  (match Layout.customer_by_last_name st ~w:1 ~d:1 ~last:(Rng.last_name 2) with
  | Some (c, _) -> Alcotest.(check int) "single match" 3 c
  | None -> Alcotest.fail "expected match");
  Alcotest.(check bool) "no match" true
    (Layout.customer_by_last_name st ~w:1 ~d:1 ~last:(Rng.last_name 900) = None);
  Alcotest.(check bool) "garbage name" true
    (Layout.customer_by_last_name st ~w:1 ~d:1 ~last:"NOTANAME" = None)

(* ------------------------------------------------------------------ *)
(* Transactions on the layout store                                    *)

module L = Txn.Make (Layout)

let loaded_ctx ?(sizing = Txn.mini_sizing) ?(buffer_kb = 256) () =
  let st = Layout.create ~buffer_bytes:(buffer_kb * 1024) ~name:"txn-test" () in
  let ctx = L.make_ctx st ~seed:11 sizing in
  L.load ctx;
  (st, ctx)

let test_load_populates () =
  let st, _ = loaded_ctx () in
  let s = Txn.mini_sizing in
  Alcotest.(check bool) "warehouse" true (Layout.lookup st Schema.Warehouse ~key:1 <> None);
  Alcotest.(check bool) "last customer" true
    (Layout.lookup st Schema.Customer
       ~key:(Schema.customer_key ~w:1 ~d:s.Txn.districts ~c:s.Txn.customers)
    <> None);
  Alcotest.(check bool) "item" true
    (Layout.lookup st Schema.Item ~key:(Schema.item_key ~i:s.Txn.items) <> None);
  Alcotest.(check bool) "stock" true
    (Layout.lookup st Schema.Stock ~key:(Schema.stock_key ~w:1 ~i:1) <> None);
  (* District next order id reflects the initial orders. *)
  match Layout.lookup st Schema.District ~key:(Schema.district_key ~w:1 ~d:1) with
  | Some row ->
      Alcotest.(check int) "d_next_o_id" (s.Txn.orders + 1)
        (Record.get_int row Schema.F.d_next_o_id)
  | None -> Alcotest.fail "district missing"

let test_new_order_advances_district () =
  let st, ctx = loaded_ctx () in
  let before =
    Record.get_int
      (Option.get (Layout.lookup st Schema.District ~key:(Schema.district_key ~w:1 ~d:1)))
      Schema.F.d_next_o_id
  in
  (* Run enough New-Orders that district (1,1) certainly receives one. *)
  for _ = 1 to 40 do
    L.new_order ctx
  done;
  let after =
    Record.get_int
      (Option.get (Layout.lookup st Schema.District ~key:(Schema.district_key ~w:1 ~d:1)))
      Schema.F.d_next_o_id
  in
  Alcotest.(check bool) "district order counter advanced" true (after > before);
  Alcotest.(check bool) "transactions counted" true ((L.counts ctx).Txn.new_order > 0)

let test_payment_moves_money () =
  let st, ctx = loaded_ctx () in
  let ytd () =
    Record.get_float
      (Option.get (Layout.lookup st Schema.Warehouse ~key:1))
      Schema.F.w_ytd
  in
  let before = ytd () in
  for _ = 1 to 10 do
    L.payment ctx
  done;
  Alcotest.(check bool) "warehouse ytd grew" true (ytd () > before);
  Alcotest.(check int) "payments counted" 10 (L.counts ctx).Txn.payment

let test_delivery_consumes_new_orders () =
  let st, ctx = loaded_ctx () in
  let pending () =
    let rec count d acc =
      if d > Txn.mini_sizing.Txn.districts then acc
      else
        let rec go key acc =
          match Layout.next_key_ge st Schema.New_order ~key with
          | Some k when k < Schema.new_order_key ~w:1 ~d ~o:0 + 100_000_000 ->
              go (k + 1) (acc + 1)
          | _ -> acc
        in
        count (d + 1) (go (Schema.new_order_key ~w:1 ~d ~o:0) acc)
    in
    count 1 0
  in
  let before = pending () in
  Alcotest.(check bool) "initial undelivered orders" true (before > 0);
  L.delivery ctx;
  let after = pending () in
  Alcotest.(check bool)
    (Printf.sprintf "delivery consumed (%d -> %d)" before after)
    true (after < before)

let test_read_only_transactions_run () =
  let _, ctx = loaded_ctx () in
  L.order_status ctx;
  L.stock_level ctx;
  Alcotest.(check int) "order status" 1 (L.counts ctx).Txn.order_status;
  Alcotest.(check int) "stock level" 1 (L.counts ctx).Txn.stock_level

let test_mix_distribution () =
  let _, ctx = loaded_ctx ~buffer_kb:1024 () in
  L.run ctx ~n:2000;
  let c = L.counts ctx in
  let total =
    c.Txn.new_order + c.Txn.payment + c.Txn.order_status + c.Txn.delivery + c.Txn.stock_level
    + c.Txn.rollbacks
  in
  Alcotest.(check int) "all transactions accounted" 2000 total;
  let frac n = float_of_int n /. 2000.0 in
  Alcotest.(check bool) "new-order ~45%" true (frac (c.Txn.new_order + c.Txn.rollbacks) > 0.38);
  Alcotest.(check bool) "payment ~43%" true (frac c.Txn.payment > 0.36);
  Alcotest.(check bool) "rollbacks ~1% of new orders" true
    (c.Txn.rollbacks > 0 && frac c.Txn.rollbacks < 0.03)

(* ------------------------------------------------------------------ *)
(* Transactions on the real engine                                     *)

let test_engine_store_end_to_end () =
  let run = Driver.Engine_run.run ~chip_blocks:512 ~transactions:300 () in
  let c = run.Driver.Engine_run.counts in
  Alcotest.(check bool) "new orders committed" true (c.Txn.new_order > 50);
  (* The data survives: warehouse and customers still readable, and the
     indexes are intact. *)
  let store = run.Driver.Engine_run.store in
  Alcotest.(check bool) "warehouse readable" true
    (Estore.lookup store Schema.Warehouse ~key:1 <> None);
  Alcotest.(check int) "customers intact"
    (Txn.mini_sizing.Txn.districts * Txn.mini_sizing.Txn.customers)
    (Estore.row_count store Schema.Customer);
  (* Orders grew beyond the initial load. *)
  let initial_orders = Txn.mini_sizing.Txn.districts * Txn.mini_sizing.Txn.orders in
  Alcotest.(check bool) "orders grew" true
    (Estore.row_count store Schema.Orders > initial_orders);
  (* The engine actually exercised the IPL machinery. *)
  let stats = Ipl_core.Ipl_engine.stats run.Driver.Engine_run.engine in
  Alcotest.(check bool) "log sectors written" true
    (stats.Ipl_core.Ipl_engine.storage.Ipl_core.Ipl_storage.log_sector_writes > 0)

let test_engine_store_by_last_name_middle_match () =
  (* Several customers share a last name: the ceil(n/2) one (by customer
     number) must be returned — exercised against the real B+-tree. *)
  let chip = Flash_sim.Flash_chip.create (Flash_sim.Flash_config.default ~num_blocks:256 ()) in
  let engine = Ipl_core.Ipl_engine.create chip in
  let store = Estore.create engine in
  let rng = Rng.of_int 9 in
  (* Give customers 10, 20, 30 the same last name by crafting rows. *)
  let with_name c name =
    let row = Schema.customer_row rng ~w:1 ~d:1 ~c in
    Record.set row 5 (Record.S name)
  in
  let shared = Rng.last_name 77 in
  List.iter
    (fun c ->
      Estore.insert store ~tx:Estore.no_txn Schema.Customer
        ~key:(Schema.customer_key ~w:1 ~d:1 ~c)
        (with_name c shared))
    [ 10; 20; 30 ];
  (match Estore.customer_by_last_name store ~w:1 ~d:1 ~last:shared with
  | Some (c, row) ->
      Alcotest.(check int) "middle of three" 20 c;
      Alcotest.(check string) "row has the name" shared (Record.get_string row 5)
  | None -> Alcotest.fail "expected match");
  (* Different district: no match. *)
  Alcotest.(check bool) "district isolation" true
    (Estore.customer_by_last_name store ~w:1 ~d:2 ~last:shared = None)

let test_engine_vs_layout_agree () =
  (* The same seed and sizing must leave both stores with the same logical
     district state (they share the transaction logic and RNG stream). *)
  let sizing = Txn.mini_sizing in
  let module E = Txn.Make (Estore) in
  let chip = Flash_sim.Flash_chip.create (Flash_sim.Flash_config.default ~num_blocks:512 ()) in
  let config =
    { Ipl_core.Ipl_config.default with Ipl_core.Ipl_config.recovery_enabled = true }
  in
  let engine = Ipl_core.Ipl_engine.create ~config chip in
  let estore = Estore.create engine in
  let ectx = E.make_ctx estore ~seed:21 sizing in
  E.load ectx;
  E.run ectx ~n:100;
  let lstore = Layout.create ~buffer_bytes:(1024 * 1024) ~name:"agree" () in
  let lctx = L.make_ctx lstore ~seed:21 sizing in
  L.load lctx;
  L.run lctx ~n:100;
  for d = 1 to sizing.Txn.districts do
    let key = Schema.district_key ~w:1 ~d in
    let e = Option.get (Estore.lookup estore Schema.District ~key) in
    let l = Option.get (Layout.lookup lstore Schema.District ~key) in
    Alcotest.(check int)
      (Printf.sprintf "district %d next_o_id agrees" d)
      (Record.get_int e Schema.F.d_next_o_id)
      (Record.get_int l Schema.F.d_next_o_id)
  done

(* ------------------------------------------------------------------ *)
(* Trace generation                                                    *)

let test_generate_trace_shape () =
  let sizing = { Txn.mini_sizing with Txn.customers = 120; items = 400; orders = 60 } in
  let r =
    Driver.generate_trace ~sizing ~warehouses:1 ~buffer_mb:1 ~users:10 ~transactions:1500 ()
  in
  let s = Trace.stats r.Driver.trace in
  Alcotest.(check string) "name" "100M.1M.10u" (Trace.name r.Driver.trace);
  Alcotest.(check bool) "updates dominate" true
    (s.Trace.update.Trace.occurrences > s.Trace.insert.Trace.occurrences);
  Alcotest.(check bool) "few deletes" true
    (s.Trace.delete.Trace.occurrences < s.Trace.update.Trace.occurrences / 10);
  Alcotest.(check bool) "avg length < 80B" true
    (s.Trace.avg_log_length > 20.0 && s.Trace.avg_log_length < 80.0);
  Alcotest.(check bool) "page writes present" true (s.Trace.page_writes > 0);
  Alcotest.(check bool) "db pages recorded" true (Trace.db_pages r.Driver.trace > 0);
  (* Determinism: same seed, same trace. *)
  let r2 =
    Driver.generate_trace ~sizing ~warehouses:1 ~buffer_mb:1 ~users:10 ~transactions:1500 ()
  in
  Alcotest.(check int) "deterministic length" (Trace.length r.Driver.trace)
    (Trace.length r2.Driver.trace)

let test_trace_name () =
  Alcotest.(check string) "1G" "1G.20M.100u" (Driver.trace_name ~warehouses:10 ~buffer_mb:20 ~users:100);
  Alcotest.(check string) "100M" "100M.20M.10u" (Driver.trace_name ~warehouses:1 ~buffer_mb:20 ~users:10)

let () =
  Alcotest.run "tpcc"
    [
      ( "schema",
        [
          Alcotest.test_case "key packing unique" `Quick test_key_packing_unique;
          Alcotest.test_case "orders key roundtrip" `Quick test_orders_key_roundtrip;
          Alcotest.test_case "runtime rows fit log sector" `Quick test_rows_encode_within_log_sector;
          Alcotest.test_case "field indexes" `Quick test_row_field_indexes;
        ] );
      ( "layout store",
        [
          Alcotest.test_case "crud" `Quick test_layout_crud;
          Alcotest.test_case "tables disjoint" `Quick test_layout_tables_disjoint;
          Alcotest.test_case "new-order ordering" `Quick test_layout_new_order_ordering;
          Alcotest.test_case "emits trace" `Quick test_layout_emits_trace;
          Alcotest.test_case "abort undoes" `Quick test_layout_abort_undoes;
          Alcotest.test_case "by last name" `Quick test_layout_by_last_name;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "load populates" `Quick test_load_populates;
          Alcotest.test_case "new-order advances district" `Quick test_new_order_advances_district;
          Alcotest.test_case "payment moves money" `Quick test_payment_moves_money;
          Alcotest.test_case "delivery consumes queue" `Quick test_delivery_consumes_new_orders;
          Alcotest.test_case "read-only txns" `Quick test_read_only_transactions_run;
          Alcotest.test_case "mix distribution" `Quick test_mix_distribution;
        ] );
      ( "engine",
        [
          Alcotest.test_case "end-to-end on IPL engine" `Slow test_engine_store_end_to_end;
          Alcotest.test_case "by-name middle match" `Quick test_engine_store_by_last_name_middle_match;
          Alcotest.test_case "engine vs layout agree" `Slow test_engine_vs_layout_agree;
        ] );
      ( "driver",
        [
          Alcotest.test_case "trace generation" `Slow test_generate_trace_shape;
          Alcotest.test_case "trace naming" `Quick test_trace_name;
        ] );
    ]
