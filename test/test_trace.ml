(* Tests for traces, their statistics, locality analyses and file I/O. *)

module Trace = Reftrace.Trace
module Trace_io = Reftrace.Trace_io
module Locality = Reftrace.Locality

let mk_trace events =
  let b = Trace.builder ~name:"test" ~db_pages:100 in
  List.iter
    (fun ev ->
      match ev with
      | `L (op, page, length) -> Trace.add_log b ~op ~page ~length
      | `W page -> Trace.add_page_write b ~page)
    events;
  Trace.build b

let test_build_and_iter () =
  let t =
    mk_trace [ `L (Trace.Insert, 1, 40); `W 1; `L (Trace.Update, 2, 30); `L (Trace.Delete, 1, 20) ]
  in
  Alcotest.(check int) "length" 4 (Trace.length t);
  Alcotest.(check string) "name" "test" (Trace.name t);
  Alcotest.(check int) "db pages" 100 (Trace.db_pages t);
  (match Trace.get t 0 with
  | Trace.Log { op = Trace.Insert; page = 1; length = 40 } -> ()
  | _ -> Alcotest.fail "event 0 mismatch");
  match Trace.get t 1 with
  | Trace.Page_write { page = 1 } -> ()
  | _ -> Alcotest.fail "event 1 mismatch"

let test_builder_growth () =
  let b = Trace.builder ~name:"big" ~db_pages:10 in
  for i = 0 to 9_999 do
    Trace.add_log b ~op:Trace.Update ~page:(i mod 10) ~length:i
  done;
  let t = Trace.build b in
  Alcotest.(check int) "length" 10_000 (Trace.length t);
  match Trace.get t 9_999 with
  | Trace.Log { length = 9_999; _ } -> ()
  | _ -> Alcotest.fail "last event mismatch"

let test_stats_table4_shape () =
  let t =
    mk_trace
      [
        `L (Trace.Insert, 0, 40);
        `L (Trace.Update, 1, 50);
        `L (Trace.Update, 2, 60);
        `L (Trace.Delete, 3, 20);
        `W 0;
        `W 1;
      ]
  in
  let s = Trace.stats t in
  Alcotest.(check int) "inserts" 1 s.Trace.insert.Trace.occurrences;
  Alcotest.(check int) "updates" 2 s.Trace.update.Trace.occurrences;
  Alcotest.(check int) "deletes" 1 s.Trace.delete.Trace.occurrences;
  Alcotest.(check int) "total" 4 s.Trace.total_logs;
  Alcotest.(check (float 1e-9)) "update avg" 55.0 s.Trace.update.Trace.avg_length;
  Alcotest.(check (float 1e-9)) "overall avg" 42.5 s.Trace.avg_log_length;
  Alcotest.(check int) "page writes" 2 s.Trace.page_writes

let test_io_roundtrip () =
  let t =
    mk_trace
      [ `L (Trace.Insert, 5, 33); `W 5; `L (Trace.Delete, 7, 21); `L (Trace.Update, 5, 48) ]
  in
  let path = Filename.temp_file "ipl" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save t path;
      let t' = Trace_io.load path in
      Alcotest.(check string) "name" (Trace.name t) (Trace.name t');
      Alcotest.(check int) "db pages" (Trace.db_pages t) (Trace.db_pages t');
      Alcotest.(check int) "length" (Trace.length t) (Trace.length t');
      for i = 0 to Trace.length t - 1 do
        if Trace.get t i <> Trace.get t' i then Alcotest.failf "event %d differs" i
      done)

let test_io_rejects_garbage () =
  let path = Filename.temp_file "ipl" ".notatrace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "garbage!";
      close_out oc;
      try
        ignore (Trace_io.load path);
        Alcotest.fail "expected rejection"
      with Invalid_argument _ | End_of_file -> ())

let test_locality_skew () =
  (* Page 0 gets 90 updates, pages 1..9 one each: heavy skew. *)
  let events =
    List.init 90 (fun _ -> `L (Trace.Update, 0, 50))
    @ List.init 9 (fun i -> `L (Trace.Update, i + 1, 50))
  in
  let t = mk_trace events in
  let s = Locality.log_reference_skew t ~top:1 in
  Alcotest.(check int) "distinct" 10 s.Locality.distinct;
  Alcotest.(check int) "total" 99 s.Locality.total;
  Alcotest.(check (float 1e-6)) "top share" (90.0 /. 99.0) s.Locality.top_share;
  Alcotest.(check bool) "gini high" true (s.Locality.gini > 0.7);
  (* Uniform references: near-zero gini. *)
  let u = mk_trace (List.init 100 (fun i -> `L (Trace.Update, i mod 10, 50))) in
  let su = Locality.log_reference_skew u ~top:5 in
  Alcotest.(check (float 1e-9)) "uniform gini" 0.0 su.Locality.gini

let test_erase_skew_folding () =
  (* Writes to pages 0..14 all fold onto erase unit 0 with 15 pages/EU. *)
  let t = mk_trace (List.init 15 (fun i -> `W i) @ [ `W 15 ]) in
  let s = Locality.erase_skew t ~top:2 ~pages_per_eu:15 in
  Alcotest.(check int) "distinct EUs" 2 s.Locality.distinct;
  Alcotest.(check (array int)) "counts" [| 15; 1 |] s.Locality.top_counts

let test_sliding_window () =
  (* All-distinct stream: every window holds [window] distinct pages. *)
  let t = mk_trace (List.init 64 (fun i -> `W i)) in
  Alcotest.(check (float 1e-9)) "distinct" 16.0
    (Locality.sliding_window_distinct t ~window:16 `Pages);
  (* Constant stream: 1 distinct page. *)
  let c = mk_trace (List.init 64 (fun _ -> `W 3)) in
  Alcotest.(check (float 1e-9)) "constant" 1.0
    (Locality.sliding_window_distinct c ~window:16 `Pages);
  (* Erase-unit folding halves distinctness when pages pair up. *)
  let t2 = mk_trace (List.init 64 (fun i -> `W i)) in
  (* Windows at even offsets cover 8 whole page-pairs; odd offsets span 9
     erase units: (25*8 + 24*9) / 49. *)
  Alcotest.(check (float 1e-4)) "eu folding" (416.0 /. 49.0)
    (Locality.sliding_window_distinct t2 ~window:16 (`Erase_units 2))

let test_sliding_window_short_stream () =
  let t = mk_trace [ `W 0; `W 1 ] in
  Alcotest.(check (float 1e-9)) "too short" 0.0
    (Locality.sliding_window_distinct t ~window:16 `Pages)

let prop_io_roundtrip =
  let gen_event =
    QCheck.Gen.(
      frequency
        [
          ( 3,
            map3
              (fun op page length -> `L ((match op with 0 -> Trace.Insert | 1 -> Trace.Delete | _ -> Trace.Update), page, length))
              (int_bound 2) (int_bound 1000) (int_bound 600) );
          (1, map (fun p -> `W p) (int_bound 1000));
        ])
  in
  QCheck.Test.make ~name:"trace file roundtrip" ~count:30
    (QCheck.make QCheck.Gen.(list_size (int_range 0 200) gen_event))
    (fun events ->
      let t = mk_trace events in
      let path = Filename.temp_file "iplq" ".trace" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Trace_io.save t path;
          let t' = Trace_io.load path in
          Trace.length t = Trace.length t'
          && List.for_all
               (fun i -> Trace.get t i = Trace.get t' i)
               (List.init (Trace.length t) Fun.id)))

let () =
  Alcotest.run "reftrace"
    [
      ( "trace",
        [
          Alcotest.test_case "build & iter" `Quick test_build_and_iter;
          Alcotest.test_case "builder growth" `Quick test_builder_growth;
          Alcotest.test_case "stats (Table 4 shape)" `Quick test_stats_table4_shape;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_io_roundtrip;
        ] );
      ( "locality",
        [
          Alcotest.test_case "reference skew" `Quick test_locality_skew;
          Alcotest.test_case "erase-unit folding" `Quick test_erase_skew_folding;
          Alcotest.test_case "sliding window" `Quick test_sliding_window;
          Alcotest.test_case "short stream" `Quick test_sliding_window_short_stream;
        ] );
    ]
