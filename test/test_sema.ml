(* ipl_sema: the typed checker run over the deliberately broken fixture
   library in test/fixtures/sema. The fixtures link against mock
   Flash_device / Flash_chip / Ipl_engine modules whose canonical paths
   match the contract tables, so every rule family can be exercised
   without the real storage stack.

   The test binary runs from _build/default/test, so both the cmt tree
   and the copied sources live one level up. *)

module Driver = Sema.Sema_driver
module Finding = Lint.Lint_finding

let fixture_dir = "test/fixtures/sema"

let findings =
  lazy (Driver.run ~build_root:".." ~source_root:".." [ fixture_dir ])

let in_file ?rule file =
  List.filter
    (fun (f : Finding.t) ->
      f.Finding.file = fixture_dir ^ "/" ^ file
      && match rule with None -> true | Some r -> f.Finding.rule = r)
    (Lazy.force findings)

let lines fs = List.map (fun (f : Finding.t) -> f.Finding.line) fs

let check_lines msg expected fs =
  Alcotest.(check (list int)) msg expected (List.sort compare (lines fs))

(* ---- sema-tag-leak ----------------------------------------------------- *)

let test_tag_leak () =
  (* drop_tag (let _), branch_leak (then-only await), ignored_tag (ignore);
     the clean await / barrier / escape / publish variants stay silent. *)
  check_lines "three seeded leaks, clean variants silent" [ 9; 14; 19 ]
    (in_file ~rule:"sema-tag-leak" "fix_tag_leak.ml");
  Alcotest.(check int)
    "no other rule fires on the tag fixture" 3
    (List.length (in_file "fix_tag_leak.ml"))

let test_tag_cross_module () =
  (* ok_cross hands its tag to a helper the summary table knows awaits;
     bad_cross hands it to one that provably does not. *)
  check_lines "only the non-settling callee leaks" [ 14 ]
    (in_file ~rule:"sema-tag-leak" "fix_cross_tag.ml");
  Alcotest.(check int)
    "the settling helper itself is clean" 0
    (List.length (in_file "fix_settle_helper.ml"))

(* ---- sema-unchecked-result --------------------------------------------- *)

let test_unchecked_result () =
  check_lines "let _ and ignore both flagged, match is clean" [ 7; 11 ]
    (in_file ~rule:"sema-unchecked-result" "fix_unchecked.ml")

(* ---- sema-exception-escape --------------------------------------------- *)

let test_exception_escape () =
  (* boom raises a contract exception and is mli-public; contained catches
     it; hidden raises but is not exported. *)
  check_lines "only the public raiser escapes" [ 5 ]
    (in_file ~rule:"sema-exception-escape" "fix_exn_escape.ml")

let test_exception_cross_module () =
  (* kaboom's raise set crosses the unit boundary through the summary
     table: safe subtracts it with a handler, leaky does not. *)
  check_lines "the cross-module raiser is flagged at home" [ 5 ]
    (in_file ~rule:"sema-exception-escape" "fix_raiser.ml");
  check_lines "bare transitive call escapes, handled call is clean" [ 7 ]
    (in_file ~rule:"sema-exception-escape" "fix_cross_catch.ml")

(* ---- sema-determinism --------------------------------------------------- *)

let test_determinism () =
  (* gettimeofday, Sys.time, self_init, Hashtbl ~random:true; the
     fixed-seed Hashtbl.create is clean. *)
  check_lines "all four nondeterminism sources flagged" [ 4; 7; 10; 13 ]
    (in_file ~rule:"sema-determinism" "fix_determinism.ml")

(* ---- suppressions ------------------------------------------------------- *)

let test_suppression () =
  (* Identical violations; only the one without [@@lint.allow] surfaces. *)
  check_lines "lint.allow silences the typed checker too" [ 12 ]
    (in_file ~rule:"sema-tag-leak" "fix_suppressed.ml")

(* ---- reporting ----------------------------------------------------------- *)

let test_json_report () =
  let fs = Lazy.force findings in
  let json = Finding.to_json_string ~tool:"ipl_sema" fs in
  Alcotest.(check string)
    "byte-stable for identical inputs" json
    (Finding.to_json_string ~tool:"ipl_sema" fs);
  (match Ipl_util.Json.of_string json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "report is not valid JSON: %s" e);
  let prefix = {|{"schema":"ipl-findings/1","tool":"ipl_sema"|} in
  Alcotest.(check string)
    "schema header" prefix
    (String.sub json 0 (String.length prefix))

let test_rule_filter () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let rc =
    Driver.main ~ppf ~rules:[ "sema-determinism" ] ~build_root:".."
      ~source_root:".." [ fixture_dir ]
  in
  Format.pp_print_flush ppf ();
  Alcotest.(check int) "seeded errors gate the exit code" 1 rc;
  let report = Buffer.contents buf in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  String.split_on_char '\n' report
  |> List.iter (fun line ->
         let mentions id = contains line id in
         if String.length line > 0 && mentions "fix_" then
           Alcotest.(check bool)
             ("filtered report line mentions only the requested rule: " ^ line)
             true (mentions "sema-determinism"))

let () =
  Alcotest.run "sema"
    [
      ( "tag-leak",
        [
          Alcotest.test_case "intra-procedural" `Quick test_tag_leak;
          Alcotest.test_case "cross-module settle" `Quick test_tag_cross_module;
        ] );
      ( "unchecked-result",
        [ Alcotest.test_case "dropped results" `Quick test_unchecked_result ] );
      ( "exception-escape",
        [
          Alcotest.test_case "public surface" `Quick test_exception_escape;
          Alcotest.test_case "cross-module summary" `Quick test_exception_cross_module;
        ] );
      ( "determinism",
        [ Alcotest.test_case "banned idents" `Quick test_determinism ] );
      ( "suppressions",
        [ Alcotest.test_case "lint.allow parity" `Quick test_suppression ] );
      ( "reporting",
        [
          Alcotest.test_case "json report" `Quick test_json_report;
          Alcotest.test_case "rule filter" `Quick test_rule_filter;
        ] );
    ]
