(* Tests of the concurrent-serving layer (lib/txn): snapshot-isolation
   MVCC over the engine, group commit, and the deterministic session
   scheduler. The anomaly tests pin the SI contract — lost updates are
   rejected, write skew is allowed — and the QCheck property checks that
   any interleaving of random plans is a pure function of
   (plans, sessions, group_window). *)

module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module Engine = Ipl_core.Ipl_engine
module Config = Ipl_core.Ipl_config
module Mvcc = Ipl_txn.Mvcc
module Session = Ipl_txn.Session

let b = Bytes.of_string

let ok_e = function
  | Ok x -> x
  | Error e -> Alcotest.failf "engine error: %s" (Engine.error_to_string e)

let ok_m = function
  | Ok x -> x
  | Error e -> Alcotest.failf "mvcc error: %s" (Mvcc.error_to_string e)

let mk ?(window = 1) ?(blocks = 64) () =
  let chip = Chip.create (FConfig.default ~num_blocks:blocks ()) in
  let config = { Config.default with Config.recovery_enabled = true; buffer_pages = 8 } in
  let engine = Engine.create ~config chip in
  (engine, Mvcc.create ~group_window:window engine)

(* Allocate [pages] pages and commit [slots] records in each, so the
   tests start from a durable, conflict-free base. *)
let seed m ~pages ~slots =
  let pids = Array.init pages (fun _ -> ok_e (Engine.allocate_page (Mvcc.engine m))) in
  let tx = ok_m (Mvcc.begin_txn m) in
  Array.iter
    (fun page ->
      for s = 0 to slots - 1 do
        let slot = ok_m (Mvcc.insert m tx ~page (b (Printf.sprintf "seed-%d-%d" page s))) in
        Alcotest.(check int) "seed slot" s slot
      done)
    pids;
  ok_m (Mvcc.commit m tx);
  ok_m (Mvcc.flush m);
  pids

let read_c m ~page ~slot = ok_m (Mvcc.read_committed m ~page ~slot)

(* ---------------- snapshot isolation ---------------- *)

let test_snapshot_read () =
  let _, m = mk () in
  let pids = seed m ~pages:1 ~slots:2 in
  let page = pids.(0) in
  let reader = ok_m (Mvcc.begin_txn m) in
  Alcotest.(check (option bytes)) "before" (Some (b "seed-0-0"))
    (ok_m (Mvcc.read m reader ~page ~slot:0));
  let writer = ok_m (Mvcc.begin_txn m) in
  ok_m (Mvcc.update m writer ~page ~slot:0 (b "overwritten"));
  (* In-flight writes are invisible to both the snapshot and fresh reads. *)
  Alcotest.(check (option bytes)) "in-flight hidden from snapshot" (Some (b "seed-0-0"))
    (ok_m (Mvcc.read m reader ~page ~slot:0));
  Alcotest.(check (option bytes)) "in-flight hidden from read_committed"
    (Some (b "seed-0-0")) (read_c m ~page ~slot:0);
  ok_m (Mvcc.commit m writer);
  ok_m (Mvcc.flush m);
  (* The old snapshot still reads its version; a fresh view sees the new. *)
  Alcotest.(check (option bytes)) "snapshot stable" (Some (b "seed-0-0"))
    (ok_m (Mvcc.read m reader ~page ~slot:0));
  Alcotest.(check (option bytes)) "committed visible" (Some (b "overwritten"))
    (read_c m ~page ~slot:0);
  ok_m (Mvcc.commit m reader)

let test_own_writes_visible () =
  let _, m = mk () in
  let pids = seed m ~pages:1 ~slots:1 in
  let page = pids.(0) in
  let tx = ok_m (Mvcc.begin_txn m) in
  ok_m (Mvcc.update m tx ~page ~slot:0 (b "mine"));
  Alcotest.(check (option bytes)) "own write" (Some (b "mine"))
    (ok_m (Mvcc.read m tx ~page ~slot:0));
  ok_m (Mvcc.delete m tx ~page ~slot:0);
  Alcotest.(check (option bytes)) "own delete" None (ok_m (Mvcc.read m tx ~page ~slot:0));
  ok_m (Mvcc.abort m tx);
  Alcotest.(check (option bytes)) "rolled back" (Some (b "seed-0-0")) (read_c m ~page ~slot:0)

let test_lost_update_rejected () =
  let _, m = mk () in
  let pids = seed m ~pages:1 ~slots:1 in
  let page = pids.(0) in
  (* First-updater-wins: B writes a slot A has written while still live. *)
  let a = ok_m (Mvcc.begin_txn m) in
  let b_ = ok_m (Mvcc.begin_txn m) in
  ok_m (Mvcc.update m a ~page ~slot:0 (b "from A"));
  (match Mvcc.update m b_ ~page ~slot:0 (b "from B") with
  | Error (Mvcc.Conflict { page = p; slot = 0 }) when p = page -> ()
  | Ok () -> Alcotest.fail "lost update must be rejected"
  | Error e -> Alcotest.failf "expected conflict, got %s" (Mvcc.error_to_string e));
  (* The loser is doomed: every further operation refuses, commit refuses,
     only abort works. *)
  (match Mvcc.read m b_ ~page ~slot:0 with
  | Error Mvcc.Doomed -> ()
  | _ -> Alcotest.fail "doomed transaction must refuse reads");
  (match Mvcc.commit m b_ with
  | Error Mvcc.Doomed -> ()
  | _ -> Alcotest.fail "doomed transaction must refuse commit");
  ok_m (Mvcc.abort m b_);
  ok_m (Mvcc.commit m a);
  ok_m (Mvcc.flush m);
  Alcotest.(check (option bytes)) "winner's value" (Some (b "from A")) (read_c m ~page ~slot:0);
  (* First-committer-wins: C's snapshot predates D's commit of the slot. *)
  let c = ok_m (Mvcc.begin_txn m) in
  let d = ok_m (Mvcc.begin_txn m) in
  ok_m (Mvcc.update m d ~page ~slot:0 (b "from D"));
  ok_m (Mvcc.commit m d);
  ok_m (Mvcc.flush m);
  (match Mvcc.update m c ~page ~slot:0 (b "from C") with
  | Error (Mvcc.Conflict _) -> ()
  | Ok () -> Alcotest.fail "write after a newer commit must conflict"
  | Error e -> Alcotest.failf "expected conflict, got %s" (Mvcc.error_to_string e));
  ok_m (Mvcc.abort m c);
  let s = Mvcc.stats m in
  Alcotest.(check int) "two conflicts detected" 2 s.Mvcc.conflicts;
  Alcotest.(check int) "two aborts" 2 s.Mvcc.aborts

let test_write_skew_allowed () =
  (* Under SI, disjoint write sets never conflict even when each
     transaction's write depends on a read of the other's slot. *)
  let _, m = mk () in
  let pids = seed m ~pages:1 ~slots:2 in
  let page = pids.(0) in
  let a = ok_m (Mvcc.begin_txn m) in
  let b_ = ok_m (Mvcc.begin_txn m) in
  ignore (ok_m (Mvcc.read m a ~page ~slot:1) : bytes option);
  ignore (ok_m (Mvcc.read m b_ ~page ~slot:0) : bytes option);
  ok_m (Mvcc.update m a ~page ~slot:0 (b "A saw slot 1"));
  ok_m (Mvcc.update m b_ ~page ~slot:1 (b "B saw slot 0"));
  ok_m (Mvcc.commit m a);
  ok_m (Mvcc.commit m b_);
  ok_m (Mvcc.flush m);
  Alcotest.(check (option bytes)) "A's write" (Some (b "A saw slot 1")) (read_c m ~page ~slot:0);
  Alcotest.(check (option bytes)) "B's write" (Some (b "B saw slot 0")) (read_c m ~page ~slot:1);
  Alcotest.(check int) "no conflicts" 0 (Mvcc.stats m).Mvcc.conflicts

(* ---------------- group commit ---------------- *)

let test_group_commit_batching () =
  let _, m = mk ~window:4 () in
  let pids = seed m ~pages:1 ~slots:8 in
  let page = pids.(0) in
  (* Three commits stay pending; the fourth fills the window and one
     barrier settles all four. *)
  for i = 0 to 2 do
    let tx = ok_m (Mvcc.begin_txn m) in
    ok_m (Mvcc.update m tx ~page ~slot:i (b "batched"));
    ok_m (Mvcc.commit m tx)
  done;
  let before = Mvcc.stats m in
  Alcotest.(check int) "pending below window" 3 (Mvcc.pending m);
  (* seed's own flush contributed the first barrier *)
  Alcotest.(check int) "no new barrier yet" 1 before.Mvcc.barriers;
  let tx = ok_m (Mvcc.begin_txn m) in
  ok_m (Mvcc.update m tx ~page ~slot:3 (b "batched"));
  ok_m (Mvcc.commit m tx);
  let s = Mvcc.stats m in
  Alcotest.(check int) "window flushes" 0 (Mvcc.pending m);
  Alcotest.(check int) "one more barrier" 2 s.Mvcc.barriers;
  Alcotest.(check int) "batch of four" 4 s.Mvcc.max_batch;
  Alcotest.(check int) "flushed counter" 5 (Mvcc.flushed_commits m);
  (* An explicit flush settles a partial batch. *)
  let tx = ok_m (Mvcc.begin_txn m) in
  ok_m (Mvcc.update m tx ~page ~slot:4 (b "partial"));
  ok_m (Mvcc.commit m tx);
  Alcotest.(check int) "partial pending" 1 (Mvcc.pending m);
  ok_m (Mvcc.flush m);
  Alcotest.(check int) "partial settled" 0 (Mvcc.pending m);
  Alcotest.(check int) "all commits flushed" 6 (Mvcc.flushed_commits m)

let test_version_gc () =
  let _, m = mk () in
  let pids = seed m ~pages:1 ~slots:1 in
  let page = pids.(0) in
  (* With no live snapshot, each flush GCs the versions it settled. *)
  for i = 0 to 4 do
    let tx = ok_m (Mvcc.begin_txn m) in
    ok_m (Mvcc.update m tx ~page ~slot:0 (b (Printf.sprintf "v%d" i)));
    ok_m (Mvcc.commit m tx)
  done;
  Alcotest.(check int) "chains empty after flushes" 0 (Mvcc.stats m).Mvcc.versions_live;
  (* A live reader pins its snapshot: versions committed past it survive. *)
  let reader = ok_m (Mvcc.begin_txn m) in
  let tx = ok_m (Mvcc.begin_txn m) in
  ok_m (Mvcc.update m tx ~page ~slot:0 (b "pinned"));
  ok_m (Mvcc.commit m tx);
  Alcotest.(check bool) "pinned version survives" true ((Mvcc.stats m).Mvcc.versions_live > 0);
  Alcotest.(check (option bytes)) "reader unaffected" (Some (b "v4"))
    (ok_m (Mvcc.read m reader ~page ~slot:0));
  ok_m (Mvcc.commit m reader);
  ignore (Mvcc.gc m : int);
  Alcotest.(check int) "released after reader ends" 0 (Mvcc.stats m).Mvcc.versions_live

(* ---------------- session scheduler ---------------- *)

(* A tiny deterministic LCG so plan generation never depends on global
   state; the QCheck property below explores the space more broadly. *)
let lcg seed =
  let s = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod bound

let make_plans rand ~plans ~pages ~slots =
  Array.init plans (fun i ->
      let n_ops = 1 + rand 3 in
      let ops =
        List.init n_ops (fun j ->
            let page = pages.(rand (Array.length pages)) in
            match rand 4 with
            | 0 -> Session.Insert { page; data = b (Printf.sprintf "ins-%d-%d" i j) }
            | 1 -> Session.Delete { page; slot = rand slots }
            | _ -> Session.Update { page; slot = rand slots; data = b (Printf.sprintf "upd-%d-%d" i j) })
      in
      let reads = List.init 2 (fun _ -> (pages.(rand (Array.length pages)), rand slots)) in
      { Session.ops; aborting = rand 10 = 0; reads })

(* Run one configuration from scratch: fresh chip, engine, seeded pages.
   Returns the outcome plus the full read trace and final committed state
   — everything an identical run must reproduce bit-for-bit. *)
let run_config ~sessions ~seed:s ~plans:n_plans =
  let _, m = mk () in
  let pids = seed m ~pages:2 ~slots:4 in
  let plans = make_plans (lcg s) ~plans:n_plans ~pages:pids ~slots:6 in
  let trace = Buffer.create 256 in
  let note_read v =
    Buffer.add_string trace (match v with None -> "-;" | Some bs -> Bytes.to_string bs ^ ";")
  in
  let outcome = Session.run ~note_read ~sessions ~plans (Mvcc.engine m) in
  let state =
    Array.to_list pids
    |> List.concat_map (fun page ->
           List.init 8 (fun slot ->
               match ok_m (Mvcc.read_committed m ~page ~slot) with
               | None -> "-"
               | Some bs -> Bytes.to_string bs))
  in
  (outcome, Buffer.contents trace, String.concat "|" state)

let test_session_determinism () =
  let (o1, t1, s1) = run_config ~sessions:4 ~seed:42 ~plans:24 in
  let (o2, t2, s2) = run_config ~sessions:4 ~seed:42 ~plans:24 in
  Alcotest.(check int) "committed" o1.Session.committed o2.Session.committed;
  Alcotest.(check int) "aborted" o1.Session.aborted o2.Session.aborted;
  Alcotest.(check int) "conflict aborts" o1.Session.conflict_aborts o2.Session.conflict_aborts;
  Alcotest.(check string) "read trace" t1 t2;
  Alcotest.(check string) "final state" s1 s2;
  Alcotest.(check int) "all plans accounted" 24
    (o1.Session.committed + o1.Session.aborted + o1.Session.conflict_aborts)

let test_single_session_is_serial () =
  (* One session replays the serial order: no conflicts, and the outcome
     matches executing the same plans back-to-back through bare Mvcc. *)
  let (o1, t1, s1) = run_config ~sessions:1 ~seed:7 ~plans:16 in
  Alcotest.(check int) "serial order cannot conflict" 0 o1.Session.conflict_aborts;
  let _, m = mk () in
  let pids = seed m ~pages:2 ~slots:4 in
  let plans = make_plans (lcg 7) ~plans:16 ~pages:pids ~slots:6 in
  let trace = Buffer.create 256 in
  let committed = ref 0 and aborted = ref 0 in
  Array.iter
    (fun { Session.ops; aborting; reads } ->
      let tx = ok_m (Mvcc.begin_txn m) in
      List.iter
        (fun op ->
          let r =
            match op with
            | Session.Update { page; slot; data } ->
                Result.map ignore (Mvcc.update m tx ~page ~slot data)
            | Session.Insert { page; data } -> Result.map ignore (Mvcc.insert m tx ~page data)
            | Session.Delete { page; slot } -> Result.map ignore (Mvcc.delete m tx ~page ~slot)
          in
          match r with
          | Ok () -> ()
          | Error (Mvcc.Engine_error (Engine.No_such_slot | Engine.Page_full)) -> ()
          | Error e -> Alcotest.failf "serial replay: %s" (Mvcc.error_to_string e))
        ops;
      if aborting then begin ok_m (Mvcc.abort m tx); incr aborted end
      else begin ok_m (Mvcc.commit m tx); ok_m (Mvcc.flush m); incr committed end;
      List.iter
        (fun (page, slot) ->
          Buffer.add_string trace
            (match ok_m (Mvcc.read_committed m ~page ~slot) with
            | None -> "-;"
            | Some bs -> Bytes.to_string bs ^ ";"))
        reads)
    plans;
  let state =
    Array.to_list pids
    |> List.concat_map (fun page ->
           List.init 8 (fun slot ->
               match ok_m (Mvcc.read_committed m ~page ~slot) with
               | None -> "-"
               | Some bs -> Bytes.to_string bs))
  in
  Alcotest.(check int) "committed" !committed o1.Session.committed;
  Alcotest.(check int) "aborted" !aborted o1.Session.aborted;
  Alcotest.(check string) "read trace" (Buffer.contents trace) t1;
  Alcotest.(check string) "final state" (String.concat "|" state) s1

let test_session_batching () =
  (* Many sessions, group window = sessions: commits batch, and the
     all-parked rotation settles partial batches, so every commit is
     flushed by the end. *)
  let _, m = mk () in
  let pids = seed m ~pages:2 ~slots:4 in
  let plans = make_plans (lcg 3) ~plans:32 ~pages:pids ~slots:6 in
  let outcome = Session.run ~sessions:8 ~plans (Mvcc.engine m) in
  let s = outcome.Session.mvcc in
  Alcotest.(check bool) "commits batched" true (s.Mvcc.max_batch > 1);
  Alcotest.(check bool) "fewer barriers than commits" true
    (s.Mvcc.barriers < s.Mvcc.commits);
  Alcotest.(check int) "every commit settled" s.Mvcc.commits s.Mvcc.batched_commits

(* ---------------- QCheck: interleavings ---------------- *)

(* Encoded plan: (kind, page-index, slot, payload) per op, plus the abort
   flag. Integers keep QCheck's shrinker effective: a failing interleaving
   shrinks towards fewer plans, fewer ops, smaller slots. *)
let decode_plan pages (ops, aborting) =
  let ops =
    List.map
      (fun (kind, pi, slot, payload) ->
        let page = pages.(pi mod Array.length pages) in
        match kind mod 4 with
        | 0 -> Session.Insert { page; data = Bytes.make 8 (Char.chr (65 + (payload mod 26))) }
        | 1 -> Session.Delete { page; slot = slot mod 6 }
        | _ ->
            Session.Update
              { page; slot = slot mod 6; data = Bytes.make 8 (Char.chr (97 + (payload mod 26))) })
      ops
  in
  { Session.ops; aborting; reads = [ (pages.(0), 0); (pages.(0), 1) ] }

let run_encoded ~sessions encoded =
  let _, m = mk () in
  let pids = seed m ~pages:2 ~slots:4 in
  let plans = Array.of_list (List.map (decode_plan pids) encoded) in
  let trace = Buffer.create 256 in
  let note_read v =
    Buffer.add_string trace (match v with None -> "-;" | Some bs -> Bytes.to_string bs ^ ";")
  in
  let outcome = Session.run ~note_read ~sessions ~plans (Mvcc.engine m) in
  (outcome, Buffer.contents trace)

let prop_interleaving_deterministic =
  QCheck.Test.make ~name:"any interleaving is deterministic and accounts for every plan"
    ~count:15
    QCheck.(
      pair (int_range 1 5)
        (small_list
           (pair
              (small_list (quad (int_bound 3) (int_bound 1) (int_bound 7) (int_bound 25)))
              bool)))
    (fun (sessions, encoded) ->
      QCheck.assume (List.length encoded <= 16);
      let o1, t1 = run_encoded ~sessions encoded in
      let o2, t2 = run_encoded ~sessions encoded in
      o1.Session.committed = o2.Session.committed
      && o1.Session.aborted = o2.Session.aborted
      && o1.Session.conflict_aborts = o2.Session.conflict_aborts
      && t1 = t2
      && o1.Session.committed + o1.Session.aborted + o1.Session.conflict_aborts
         = List.length encoded
      && o1.Session.mvcc.Mvcc.batched_commits = o1.Session.committed)

let () =
  Alcotest.run "txn"
    [
      ( "snapshot isolation",
        [
          Alcotest.test_case "snapshot reads" `Quick test_snapshot_read;
          Alcotest.test_case "own writes visible" `Quick test_own_writes_visible;
          Alcotest.test_case "lost update rejected" `Quick test_lost_update_rejected;
          Alcotest.test_case "write skew allowed" `Quick test_write_skew_allowed;
        ] );
      ( "group commit",
        [
          Alcotest.test_case "batching counters" `Quick test_group_commit_batching;
          Alcotest.test_case "version GC" `Quick test_version_gc;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "determinism" `Quick test_session_determinism;
          Alcotest.test_case "one session = serial" `Quick test_single_session_is_serial;
          Alcotest.test_case "batching" `Quick test_session_batching;
          QCheck_alcotest.to_alcotest prop_interleaving_deterministic;
        ] );
    ]
