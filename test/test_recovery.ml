(* Tests of the lazy-restart path: fuzzy checkpoints on the metadata
   log, the page-indexed repair plan a restart builds from them, and
   on-demand page repair. The recurring shape is a deterministic
   populate run executed twice onto two bit-identical chips, one
   reopened eagerly and one lazily — the recovered logical content must
   match slot for slot. *)

module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module Engine = Ipl_core.Ipl_engine
module Config = Ipl_core.Ipl_config
module Store = Ipl_core.Ipl_storage
module Plan = Fault.Fault_plan

let b = Bytes.of_string

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %s" (Engine.error_to_string e)

let base_config =
  {
    Config.default with
    Config.recovery_enabled = true;
    buffer_pages = 8;
    checkpoint_every = 4;
  }

let mk_chip ?(blocks = 32) () = Chip.create (FConfig.default ~num_blocks:blocks ())

(* Deterministic populate: [pages] pages seeded with one record each,
   then [txns] single-update transactions round-robining over them, each
   update writing a value derived from its index. Stops abruptly — no
   checkpoint call, no quiesce. Returns the page handles. *)
let populate ?(pages = 8) ?(txns = 40) config chip =
  let e = Engine.create ~config chip in
  let ps = Array.init pages (fun _ -> Engine.Unsafe.allocate_page e) in
  let tx = Engine.Unsafe.begin_txn e in
  Array.iteri
    (fun i p -> ignore (ok (Engine.Unsafe.insert e ~tx ~page:p (b (Printf.sprintf "seed-%d" i))) : int))
    ps;
  Engine.Unsafe.commit e tx;
  for i = 0 to txns - 1 do
    let tx = Engine.Unsafe.begin_txn e in
    let p = ps.(i mod pages) in
    ok (Engine.Unsafe.update e ~tx ~page:p ~slot:0 (b (Printf.sprintf "txn-%d" i)));
    Engine.Unsafe.commit e tx
  done;
  ps

let slot0 e page = Engine.Unsafe.read e ~page ~slot:0

(* Every page's slot-0 value, in page order — the logical content the
   eager and lazy twins must agree on. *)
let contents e pages = Array.to_list (Array.map (fun p -> slot0 e p) pages)

let check_twins ?pages:(np = 8) ?txns config =
  let chip_e = mk_chip () and chip_l = mk_chip () in
  let pages = populate ~pages:np ?txns config chip_e in
  let (_ : int array) = populate ~pages:np ?txns config chip_l in
  let eager, _ = Engine.restart ~config:{ config with Config.lazy_recovery = false } chip_e in
  let lzy, _ = Engine.restart ~config:{ config with Config.lazy_recovery = true } chip_l in
  (* Compare once right after restart (first-touch repair on the read
     path) and once after the background drainer has settled the rest. *)
  Alcotest.(check (list (option bytes)))
    "lazy == eager at first touch" (contents eager pages) (contents lzy pages);
  let (_ : int) = Engine.Unsafe.drain_repairs lzy ~max_eus:max_int in
  Alcotest.(check int) "repair table drained" 0 (Engine.repair_pending lzy);
  Alcotest.(check (list (option bytes)))
    "lazy == eager after drain" (contents eager pages) (contents lzy pages);
  (eager, lzy, pages)

let test_lazy_matches_eager () =
  let _, lzy, _ = check_twins base_config in
  let s = (Engine.stats lzy).Engine.storage in
  Alcotest.(check bool) "some units repaired lazily" true (s.Store.eus_repaired_lazily > 0)

(* Group-commit windows defer transaction-log forcing, so a fuzzy
   checkpoint can be emitted while commit records it covers are still
   volatile. Its footer then carries a trx_watermark ahead of the
   durable watermark and a crash must make recovery discard it (promote
   only checkpoints whose watermark is durable) — silently falling back
   to the eager scan, never replaying unforced records as committed. *)
let test_ckpt_spanning_deferred_commits () =
  let config = { base_config with Config.group_commit = 6; checkpoint_every = 2 } in
  (* 43 txns: the last group-commit window is only partially filled, so
     the tail commits are non-durable when the crash hits. *)
  let eager, lzy, pages = check_twins ~txns:43 config in
  (* The populate stream is fully deterministic, so whatever prefix
     survived must be the same prefix on both engines — already checked —
     and the seeded values must never be lost (they precede the last
     durable point by several windows). *)
  Array.iteri
    (fun i p ->
      match (slot0 eager p, slot0 lzy p) with
      | Some _, Some _ -> ()
      | a, bb ->
          Alcotest.failf "page %d lost after restart (eager %b, lazy %b)" i (a <> None)
            (bb <> None))
    pages

(* A restart on a degraded device (spare pool exhausted) must still
   come up read-only: lazy recovery and repair are pure reads, so the
   repair plan drains fine while mutations keep answering
   [Device_degraded]. *)
let test_restart_while_degraded () =
  let config = { base_config with Config.spare_blocks = 1; lazy_recovery = true } in
  let chip = mk_chip () in
  let pages = populate config chip in
  (* Exhaust the 1-block spare pool: force every data-area program to
     fail, each failure costing a remap — the second remap finds the
     pool empty and degrades the device. The system logs (blocks 0-7)
     sit outside the bad-block manager, so the plan must spare them. *)
  let data_start = 8 * FConfig.sectors_per_block (FConfig.default ()) in
  Plan.install chip (Plan.program_failures ~seed:7 ~rate:1.0 ~min_sector:data_start ());
  let e', _ = Engine.restart ~config:{ config with Config.lazy_recovery = false } chip in
  (* Committed updates force log-sector programs; each forced program
     fails under the plan and costs a remap until the pool is gone. *)
  let rec hammer i =
    if i < 64 && not (Engine.degraded e') then begin
      (match Engine.begin_txn e' with
      | Error _ -> ()
      | Ok tx -> (
          (match
             Engine.Unsafe.update e'
               ~tx:(Engine.txn_id tx)
               ~page:pages.(i mod Array.length pages)
               ~slot:0 (b "x")
           with
          | Ok () | Error _ -> ());
          match Engine.commit e' tx with Ok () | Error _ -> ()));
      hammer (i + 1)
    end
  in
  hammer 0;
  Plan.clear chip;
  Alcotest.(check bool) "device degraded" true (Engine.degraded e');
  (* Crash and reopen lazily on the degraded device. *)
  let e'', _ = Engine.restart ~config chip in
  Alcotest.(check bool) "still degraded after restart" true (Engine.degraded e'');
  Array.iteri
    (fun i p ->
      Alcotest.(check bool) (Printf.sprintf "page %d readable" i) true (slot0 e'' p <> None))
    pages;
  let (_ : int) = Engine.Unsafe.drain_repairs e'' ~max_eus:max_int in
  Alcotest.(check int) "repairs drain on a degraded device" 0 (Engine.repair_pending e'');
  let tx = Engine.Unsafe.begin_txn e'' in
  match Engine.Unsafe.update e'' ~tx ~page:pages.(0) ~slot:0 (b "y") with
  | Error Engine.Device_degraded -> ()
  | Ok () -> Alcotest.fail "mutation accepted on a degraded device"
  | Error e -> Alcotest.failf "wrong error: %s" (Engine.error_to_string e)

(* Crash again while the first lazy restart still owes repairs: the
   repair table is volatile, so the second restart rebuilds its plan
   from flash alone and must reach the same committed content. *)
let test_double_crash_during_repair () =
  let config = { base_config with Config.lazy_recovery = true } in
  let chip = mk_chip () in
  let pages = populate ~pages:8 ~txns:40 config chip in
  (* Every populate transaction committed with group_commit = 0, so the
     expected content is exact: page i's slot 0 holds the last txn that
     touched it. *)
  let expected =
    Array.to_list
      (Array.mapi
         (fun i _ ->
           let last = 40 - 8 + i in
           Some (b (Printf.sprintf "txn-%d" last)))
         pages)
  in
  let e1, _ = Engine.restart ~config chip in
  let pending1 = Engine.repair_pending e1 in
  (* Repair strictly less than everything, then crash mid-debt. *)
  let (_ : int) = Engine.Unsafe.drain_repairs e1 ~max_eus:1 in
  if pending1 > 1 then
    Alcotest.(check bool) "still owes repairs" true (Engine.repair_pending e1 > 0);
  let e2, _ = Engine.restart ~config chip in
  let (_ : int) = Engine.Unsafe.drain_repairs e2 ~max_eus:max_int in
  Alcotest.(check int) "second restart drains clean" 0 (Engine.repair_pending e2);
  Alcotest.(check (list (option bytes))) "content exact after double crash" expected
    (contents e2 pages)

(* The repair path's cache warming is observable: entries installed by
   repair (not by demand misses) are counted, and with the cache
   disabled repair still settles the debt without warming anything. *)
let test_warm_entries_counted () =
  let config = { base_config with Config.lazy_recovery = true } in
  let chip = mk_chip () in
  let pages = populate config chip in
  let e, _ = Engine.restart ~config chip in
  let pending = Engine.repair_pending e in
  Alcotest.(check bool) "restart left repairs pending" true (pending > 0);
  let (_ : int) = Engine.Unsafe.drain_repairs e ~max_eus:max_int in
  let s = (Engine.stats e).Engine.storage in
  Alcotest.(check int) "every repair warmed one cache entry" s.Store.eus_repaired_lazily
    s.Store.log_cache_warm_entries;
  Alcotest.(check bool) "warm entries counted" true (s.Store.log_cache_warm_entries > 0);
  Array.iter (fun p -> Alcotest.(check bool) "readable" true (slot0 e p <> None)) pages

let test_cache_disabled_repair () =
  let config = { base_config with Config.lazy_recovery = true; log_cache_bytes = 0 } in
  let chip_l = mk_chip () and chip_e = mk_chip () in
  let pages = populate config chip_l in
  let (_ : int array) = populate config chip_e in
  let lzy, _ = Engine.restart ~config chip_l in
  let eager, _ =
    Engine.restart ~config:{ config with Config.lazy_recovery = false } chip_e
  in
  let (_ : int) = Engine.Unsafe.drain_repairs lzy ~max_eus:max_int in
  let s = (Engine.stats lzy).Engine.storage in
  Alcotest.(check bool) "units still counted as repaired" true (s.Store.eus_repaired_lazily > 0);
  Alcotest.(check int) "nothing warmed without a cache" 0 s.Store.log_cache_warm_entries;
  Alcotest.(check (list (option bytes)))
    "cache-off lazy == eager" (contents eager pages) (contents lzy pages)

let () =
  Alcotest.run "recovery"
    [
      ( "lazy-restart",
        [
          Alcotest.test_case "lazy matches eager" `Quick test_lazy_matches_eager;
          Alcotest.test_case "checkpoint spanning deferred commits" `Quick
            test_ckpt_spanning_deferred_commits;
          Alcotest.test_case "restart while degraded" `Quick test_restart_while_degraded;
          Alcotest.test_case "double crash during repair" `Quick
            test_double_crash_during_repair;
          Alcotest.test_case "warm entries counted" `Quick test_warm_entries_counted;
          Alcotest.test_case "cache-disabled repair" `Quick test_cache_disabled_repair;
        ] );
    ]
