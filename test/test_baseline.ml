(* Tests for the baseline stores (LFS, in-place) and the DRAM-buffered
   block FTL, plus the Q1-Q6 workload harness. *)

module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module FStats = Flash_sim.Flash_stats
module Lfs = Baseline.Lfs_store
module Inplace = Baseline.Inplace_store
module Bftl = Ftl.Block_ftl
module Dev = Ftl.Device
module Q = Workload.Queries

let mk_chip ?(blocks = 64) () =
  Chip.create (FConfig.default ~num_blocks:blocks ~materialize:false ())

(* ------------------------------------------------------------------ *)
(* LFS store                                                           *)

let test_lfs_sequential_writes_no_gc () =
  let chip = mk_chip () in
  let lfs = Lfs.create chip ~page_size:8192 in
  (* Write fewer pages than capacity once: pure appends, no GC. *)
  for p = 0 to (Lfs.num_pages lfs / 2) - 1 do
    Lfs.write_page lfs p
  done;
  let s = Lfs.stats lfs in
  Alcotest.(check int) "no gc" 0 s.Lfs.gc_runs;
  Alcotest.(check int) "no erases" 0 s.Lfs.erases

let test_lfs_overwrites_trigger_gc () =
  let chip = mk_chip () in
  let lfs = Lfs.create chip ~page_size:8192 in
  Lfs.format lfs;
  (* Hammer one page far beyond the free-block budget. *)
  for _ = 1 to 10 * Lfs.num_pages lfs do
    Lfs.write_page lfs 0
  done;
  let s = Lfs.stats lfs in
  Alcotest.(check bool) "gc ran" true (s.Lfs.gc_runs > 0);
  Alcotest.(check bool) "erases happened" true (s.Lfs.erases > 0)

let test_lfs_gc_copies_live_data () =
  let chip = mk_chip () in
  let lfs = Lfs.create chip ~page_size:8192 in
  Lfs.format lfs;
  (* Random overwrites: victims contain live pages, which must be moved. *)
  let rng = Ipl_util.Rng.of_int 3 in
  for _ = 1 to 5 * Lfs.num_pages lfs do
    Lfs.write_page lfs (Ipl_util.Rng.int rng (Lfs.num_pages lfs))
  done;
  let s = Lfs.stats lfs in
  Alcotest.(check bool) "live pages moved" true (s.Lfs.gc_page_moves > 0);
  (* Every logical page still readable (mapping consistent). *)
  for p = 0 to Lfs.num_pages lfs - 1 do
    Lfs.read_page lfs p
  done

let test_lfs_write_cost_uniform () =
  (* The LFS selling point: sequential and random writes cost the same
     until GC kicks in. *)
  let cost pattern =
    let chip = mk_chip () in
    let lfs = Lfs.create chip ~page_size:8192 in
    let n = Lfs.num_pages lfs / 2 in
    List.iter (Lfs.write_page lfs) (pattern n);
    Lfs.elapsed lfs
  in
  let seq = cost (fun n -> List.init n Fun.id) in
  let rnd =
    cost (fun n ->
        let a = Array.init n Fun.id in
        Ipl_util.Rng.shuffle (Ipl_util.Rng.of_int 9) a;
        Array.to_list a)
  in
  Alcotest.(check (float 1e-9)) "identical cost" seq rnd

(* ------------------------------------------------------------------ *)
(* In-place store                                                      *)

let test_inplace_every_write_erases () =
  let chip = mk_chip () in
  let store = Inplace.create chip ~page_size:8192 in
  Inplace.format store;
  for i = 0 to 9 do
    Inplace.write_page store (i * 16)
  done;
  let s = Inplace.stats store in
  Alcotest.(check int) "one erase per write" 10 s.Inplace.erases;
  (* Each write costs roughly one full-unit merge (~20 ms). *)
  let per_write = Inplace.elapsed store /. 10.0 in
  Alcotest.(check bool)
    (Printf.sprintf "write cost %.1f ms" (per_write *. 1e3))
    true
    (per_write > 0.015 && per_write < 0.025)

(* ------------------------------------------------------------------ *)
(* DRAM-buffered block FTL                                             *)

let test_ftl_sequential_fills_segments () =
  let chip = mk_chip ~blocks:64 () in
  let ftl = Bftl.create chip ~page_size:8192 in
  Bftl.format ftl;
  let device = Bftl.device ftl in
  (* Fill 32 blocks sequentially = 4 segments. *)
  for p = 0 to (32 * 16) - 1 do
    device.Dev.write_page p
  done
  [@warning "-26"];
  device.Dev.flush ();
  let s = Bftl.stats ftl in
  Alcotest.(check int) "evictions = segments" 4 s.Bftl.segment_evictions;
  Alcotest.(check int) "rmws = blocks" 32 s.Bftl.block_rmws;
  (* Fully-dirty blocks need no copy-back reads. *)
  Alcotest.(check int) "no copyback" 0 s.Bftl.copyback_page_reads

let test_ftl_scattered_writes_cost_copyback () =
  let chip = mk_chip ~blocks:256 () in
  let ftl = Bftl.create chip ~page_size:8192 in
  Bftl.format ftl;
  let device = Bftl.device ftl in
  (* One page per segment, spread over many segments: every flush is a
     1-dirty-page RMW. *)
  for seg = 0 to 20 do
    device.Dev.write_page (seg * 128)
  done;
  device.Dev.flush ();
  let s = Bftl.stats ftl in
  Alcotest.(check bool) "copyback reads" true (s.Bftl.copyback_page_reads > 0);
  Alcotest.(check int) "one rmw per write" 21 s.Bftl.block_rmws

let test_device_read_range () =
  let chip = mk_chip () in
  let ftl = Bftl.create chip ~page_size:8192 in
  Bftl.format ftl;
  let device = Bftl.device ftl in
  Dev.read_range device ~first:0 ~count:16;
  let s = Bftl.stats ftl in
  Alcotest.(check int) "sixteen reads" 16 s.Bftl.host_reads

let test_ftl_dram_read_hit () =
  let chip = mk_chip () in
  let ftl = Bftl.create chip ~page_size:8192 in
  Bftl.format ftl;
  let device = Bftl.device ftl in
  device.Dev.write_page 5;
  device.Dev.read_page 5;
  let s = Bftl.stats ftl in
  Alcotest.(check int) "dram hit" 1 s.Bftl.dram_read_hits

let test_ftl_erase_state_machine_clean () =
  (* Mixed workload: the FTL must never violate erase-before-write (the
     chip would raise). *)
  let chip = mk_chip () in
  let ftl = Bftl.create chip ~page_size:8192 in
  Bftl.format ftl;
  let device = Bftl.device ftl in
  let rng = Ipl_util.Rng.of_int 4 in
  for _ = 1 to 5000 do
    let p = Ipl_util.Rng.int rng device.Dev.num_pages in
    if Ipl_util.Rng.bool rng then device.Dev.write_page p
    else device.Dev.read_page p
  done;
  device.Dev.flush ()

(* ------------------------------------------------------------------ *)
(* Q1-Q6 workload (Table 3 / Table 2 shape)                            *)

let test_patterns_cover_table () =
  List.iter
    (fun q ->
      let seen = Array.make Q.table_pages false in
      Seq.iter
        (fun (first, count) ->
          for p = first to first + count - 1 do
            if seen.(p) then Alcotest.failf "%s touches page %d twice" (Q.name q) p;
            seen.(p) <- true
          done)
        (Q.pattern q);
      if not (Array.for_all Fun.id seen) then Alcotest.failf "%s misses pages" (Q.name q))
    Q.all

let test_table3_shape () =
  let results = Q.table3 () in
  let get q =
    let _, d, f = List.find (fun (q', _, _) -> q' = q) results in
    (d.Q.elapsed, f.Q.elapsed)
  in
  let d1, f1 = get Q.Q1 and d2, f2 = get Q.Q2 and d3, f3 = get Q.Q3 in
  let d4, f4 = get Q.Q4 and d5, f5 = get Q.Q5 and d6, f6 = get Q.Q6 in
  (* Disk: random much slower than sequential, for reads and writes. *)
  Alcotest.(check bool) "disk reads degrade" true (d1 < d2 && d2 < d3);
  Alcotest.(check bool) "disk writes degrade" true (d4 < d5 && d5 < d6);
  (* Flash reads are insensitive to access pattern. *)
  Alcotest.(check bool) "flash reads flat" true (f3 /. f1 < 1.3 && f2 /. f1 < 1.3);
  (* Flash writes degrade sharply with scatter... *)
  Alcotest.(check bool) "flash writes degrade" true (f4 < f5 && f5 < f6);
  (* ...to the point of losing to the disk on Q6 (the paper's headline). *)
  Alcotest.(check bool) "flash worse than disk on Q6" true (f6 > d6);
  (* But flash wins the other write patterns. *)
  Alcotest.(check bool) "flash wins Q4/Q5" true (f4 < d4 && f5 < d5)

let test_table2_ratios () =
  let results = Q.table3 () in
  let lo, hi = Q.random_to_sequential_ratios results `Read `Disk in
  Alcotest.(check bool) "disk read ratio high" true (lo > 3.0 && hi > 8.0);
  let lo, hi = Q.random_to_sequential_ratios results `Read `Flash in
  Alcotest.(check bool) "flash read ratio ~1" true (lo < 1.3 && hi < 1.3);
  let lo, hi = Q.random_to_sequential_ratios results `Write `Flash in
  Alcotest.(check bool)
    (Printf.sprintf "flash write ratio spread (%.1f-%.1f)" lo hi)
    true
    (lo > 1.5 && hi > 8.0)

let test_q_erase_counts_match_paper_analysis () =
  (* Section 4.1.3: Q4 erases each of the 4000 units once; Q5 evicts a
     segment every 8 updates (8000); Q6 every update (64000). *)
  let flash q = let _, _, f = List.find (fun (q', _, _) -> q' = q) (Q.table3 ()) in f in
  let m4 = Q.run_on_flash Q.Q4 and m5 = Q.run_on_flash Q.Q5 and m6 = Q.run_on_flash Q.Q6 in
  ignore flash;
  Alcotest.(check int) "Q4 erases" 4000 m4.Q.erases;
  Alcotest.(check int) "Q4 evictions" 500 m4.Q.segment_evictions;
  Alcotest.(check int) "Q5 evictions" 8000 m5.Q.segment_evictions;
  Alcotest.(check int) "Q6 evictions" 64000 m6.Q.segment_evictions

let () =
  Alcotest.run "baseline+workload"
    [
      ( "lfs",
        [
          Alcotest.test_case "sequential no gc" `Quick test_lfs_sequential_writes_no_gc;
          Alcotest.test_case "overwrites trigger gc" `Quick test_lfs_overwrites_trigger_gc;
          Alcotest.test_case "gc preserves live data" `Quick test_lfs_gc_copies_live_data;
          Alcotest.test_case "uniform write cost" `Quick test_lfs_write_cost_uniform;
        ] );
      ( "inplace",
        [ Alcotest.test_case "every write erases" `Quick test_inplace_every_write_erases ] );
      ( "block ftl",
        [
          Alcotest.test_case "sequential fills segments" `Quick test_ftl_sequential_fills_segments;
          Alcotest.test_case "scattered copyback" `Quick test_ftl_scattered_writes_cost_copyback;
          Alcotest.test_case "dram read hit" `Quick test_ftl_dram_read_hit;
          Alcotest.test_case "device read_range" `Quick test_device_read_range;
          Alcotest.test_case "state machine clean" `Quick test_ftl_erase_state_machine_clean;
        ] );
      ( "queries",
        [
          Alcotest.test_case "patterns cover table" `Slow test_patterns_cover_table;
          Alcotest.test_case "Table 3 shape" `Slow test_table3_shape;
          Alcotest.test_case "Table 2 ratios" `Slow test_table2_ratios;
          Alcotest.test_case "Section 4.1.3 erase analysis" `Slow test_q_erase_counts_match_paper_analysis;
        ] );
    ]
