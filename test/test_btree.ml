(* Tests for the B+-tree built on IPL-managed pages. *)

module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module Engine = Ipl_core.Ipl_engine
module Config = Ipl_core.Ipl_config
module B = Btree.Bptree

let mk ?(blocks = 256) ?(buffer_pages = 64) () =
  let chip = Chip.create (FConfig.default ~num_blocks:blocks ()) in
  let config = { Config.default with Config.buffer_pages } in
  let e = Engine.create ~config chip in
  (chip, config, e, B.create e)

let ok = function Ok () -> () | Error e -> Alcotest.failf "unexpected error: %s" e

let test_empty () =
  let _, _, _, t = mk () in
  Alcotest.(check (option int)) "find" None (B.find t 42);
  Alcotest.(check int) "cardinal" 0 (B.cardinal t);
  Alcotest.(check int) "height" 1 (B.height t);
  Alcotest.(check (option int)) "min" None (B.min_key t);
  Alcotest.(check (option int)) "max" None (B.max_key t);
  Alcotest.(check (result unit string)) "invariants" (Ok ()) (B.check_invariants t)

let test_insert_find () =
  let _, _, _, t = mk () in
  ok (B.insert t ~tx:Engine.no_txn ~key:5 ~value:50);
  ok (B.insert t ~tx:Engine.no_txn ~key:1 ~value:10);
  ok (B.insert t ~tx:Engine.no_txn ~key:9 ~value:90);
  Alcotest.(check (option int)) "find 5" (Some 50) (B.find t 5);
  Alcotest.(check (option int)) "find 1" (Some 10) (B.find t 1);
  Alcotest.(check (option int)) "find 9" (Some 90) (B.find t 9);
  Alcotest.(check (option int)) "absent" None (B.find t 7);
  Alcotest.(check bool) "mem" true (B.mem t 5);
  Alcotest.(check int) "cardinal" 3 (B.cardinal t)

let test_duplicate_and_set () =
  let _, _, _, t = mk () in
  ok (B.insert t ~tx:Engine.no_txn ~key:3 ~value:30);
  (match B.insert t ~tx:Engine.no_txn ~key:3 ~value:31 with
  | Error "duplicate key" -> ()
  | _ -> Alcotest.fail "expected duplicate error");
  ok (B.set t ~tx:Engine.no_txn ~key:3 ~value:33);
  Alcotest.(check (option int)) "overwritten" (Some 33) (B.find t 3);
  ok (B.set t ~tx:Engine.no_txn ~key:4 ~value:44);
  Alcotest.(check (option int)) "upserted" (Some 44) (B.find t 4)

let test_delete () =
  let _, _, _, t = mk () in
  for k = 1 to 20 do
    ok (B.insert t ~tx:Engine.no_txn ~key:k ~value:(k * 10))
  done;
  ok (B.delete t ~tx:Engine.no_txn ~key:10);
  Alcotest.(check (option int)) "deleted" None (B.find t 10);
  Alcotest.(check int) "cardinal" 19 (B.cardinal t);
  (match B.delete t ~tx:Engine.no_txn ~key:10 with
  | Error "not found" -> ()
  | _ -> Alcotest.fail "expected not found");
  Alcotest.(check (result unit string)) "invariants" (Ok ()) (B.check_invariants t)

let test_splits_and_growth () =
  let _, _, _, t = mk () in
  let n = 5_000 in
  for k = 1 to n do
    ok (B.insert t ~tx:Engine.no_txn ~key:k ~value:(k * 2))
  done;
  Alcotest.(check int) "cardinal" n (B.cardinal t);
  Alcotest.(check bool) "tree grew" true (B.height t >= 2);
  Alcotest.(check (result unit string)) "invariants" (Ok ()) (B.check_invariants t);
  for k = 1 to n do
    if B.find t k <> Some (k * 2) then Alcotest.failf "lost key %d" k
  done

let test_reverse_and_random_orders () =
  let _, _, _, t = mk () in
  let keys = Array.init 2000 (fun i -> i * 7) in
  Ipl_util.Rng.shuffle (Ipl_util.Rng.of_int 5) keys;
  Array.iter (fun k -> ok (B.insert t ~tx:Engine.no_txn ~key:k ~value:(k + 1))) keys;
  Alcotest.(check (result unit string)) "invariants" (Ok ()) (B.check_invariants t);
  Alcotest.(check (option int)) "min" (Some 0) (B.min_key t);
  Alcotest.(check (option int)) "max" (Some (1999 * 7)) (B.max_key t);
  Array.iter
    (fun k -> if B.find t k <> Some (k + 1) then Alcotest.failf "lost key %d" k)
    keys

let test_range () =
  let _, _, _, t = mk () in
  for k = 0 to 999 do
    ok (B.insert t ~tx:Engine.no_txn ~key:(k * 2) ~value:k)
  done;
  let r = B.range t ~lo:10 ~hi:20 in
  Alcotest.(check (list (pair int int))) "range" [ (10, 5); (12, 6); (14, 7); (16, 8); (18, 9); (20, 10) ] r;
  Alcotest.(check int) "full range" 1000 (List.length (B.range t ~lo:min_int ~hi:max_int));
  Alcotest.(check (list (pair int int))) "empty range" [] (B.range t ~lo:11 ~hi:11)

let test_iter_sorted () =
  let _, _, _, t = mk () in
  let keys = Array.init 3000 (fun i -> i) in
  Ipl_util.Rng.shuffle (Ipl_util.Rng.of_int 17) keys;
  Array.iter (fun k -> ok (B.insert t ~tx:Engine.no_txn ~key:k ~value:k)) keys;
  let prev = ref (-1) and count = ref 0 in
  B.iter t (fun ~key ~value ->
      Alcotest.(check int) "value" key value;
      if key <= !prev then Alcotest.failf "out of order at %d" key;
      prev := key;
      incr count);
  Alcotest.(check int) "count" 3000 !count

let test_negative_keys () =
  let _, _, _, t = mk () in
  List.iter (fun k -> ok (B.insert t ~tx:Engine.no_txn ~key:k ~value:(k * 3))) [ -5; -1; 0; 3; -100 ];
  Alcotest.(check (option int)) "find -5" (Some (-15)) (B.find t (-5));
  Alcotest.(check (option int)) "find -100" (Some (-300)) (B.find t (-100));
  Alcotest.(check (option int)) "min" (Some (-100)) (B.min_key t)

let test_survives_restart () =
  let chip = Chip.create (FConfig.default ~num_blocks:256 ()) in
  let config = { Config.default with Config.buffer_pages = 32 } in
  let e = Engine.create ~config chip in
  let t = B.create e in
  for k = 1 to 1500 do
    ok (B.insert t ~tx:Engine.no_txn ~key:k ~value:(k * 5))
  done;
  Engine.Unsafe.checkpoint e;
  let header = B.header_page t in
  let e', _ = Engine.restart ~config chip in
  let t' = B.attach e' ~header in
  Alcotest.(check (result unit string)) "invariants" (Ok ()) (B.check_invariants t');
  Alcotest.(check int) "cardinal" 1500 (B.cardinal t');
  for k = 1 to 1500 do
    if B.find t' k <> Some (k * 5) then Alcotest.failf "lost key %d after restart" k
  done

let test_transactional_abort_rolls_back_index () =
  let chip = Chip.create (FConfig.default ~num_blocks:256 ()) in
  let config = { Config.default with Config.recovery_enabled = true; buffer_pages = 32 } in
  let e = Engine.create ~config chip in
  let t = B.create e in
  for k = 1 to 100 do
    ok (B.insert t ~tx:Engine.no_txn ~key:k ~value:k)
  done;
  let txi = Engine.Unsafe.begin_txn e in
  let tx = Engine.Unsafe.txn txi in
  ok (B.insert t ~tx ~key:1000 ~value:1);
  ok (B.delete t ~tx ~key:50);
  Engine.Unsafe.abort e txi;
  Alcotest.(check (option int)) "insert rolled back" None (B.find t 1000);
  Alcotest.(check (option int)) "delete rolled back" (Some 50) (B.find t 50);
  Alcotest.(check (result unit string)) "invariants" (Ok ()) (B.check_invariants t)

(* Property: tree matches a model map under random insert/set/delete. *)
let prop_tree_vs_model =
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (5, map2 (fun k v -> `Insert (k, v)) (int_bound 500) (int_bound 10_000));
          (2, map2 (fun k v -> `Set (k, v)) (int_bound 500) (int_bound 10_000));
          (2, map (fun k -> `Delete k) (int_bound 500));
        ])
  in
  QCheck.Test.make ~name:"btree matches model map" ~count:30
    (QCheck.make QCheck.Gen.(list_size (int_range 0 300) gen_op))
    (fun ops ->
      let _, _, _, t = mk ~blocks:128 ~buffer_pages:32 () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun op ->
          match op with
          | `Insert (k, v) -> (
              match B.insert t ~tx:Engine.no_txn ~key:k ~value:v with
              | Ok () ->
                  assert (not (Hashtbl.mem model k));
                  Hashtbl.replace model k v
              | Error _ -> assert (Hashtbl.mem model k))
          | `Set (k, v) -> (
              match B.set t ~tx:Engine.no_txn ~key:k ~value:v with
              | Ok () -> Hashtbl.replace model k v
              | Error _ -> assert false)
          | `Delete k -> (
              match B.delete t ~tx:Engine.no_txn ~key:k with
              | Ok () ->
                  assert (Hashtbl.mem model k);
                  Hashtbl.remove model k
              | Error _ -> assert (not (Hashtbl.mem model k))))
        ops;
      B.check_invariants t = Ok ()
      && Hashtbl.fold (fun k v acc -> acc && B.find t k = Some v) model true
      && B.cardinal t = Hashtbl.length model)

let () =
  Alcotest.run "btree"
    [
      ( "bptree",
        [
          Alcotest.test_case "empty tree" `Quick test_empty;
          Alcotest.test_case "insert & find" `Quick test_insert_find;
          Alcotest.test_case "duplicates & set" `Quick test_duplicate_and_set;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "splits & growth" `Slow test_splits_and_growth;
          Alcotest.test_case "random insert order" `Quick test_reverse_and_random_orders;
          Alcotest.test_case "range scan" `Quick test_range;
          Alcotest.test_case "iter sorted" `Quick test_iter_sorted;
          Alcotest.test_case "negative keys" `Quick test_negative_keys;
          Alcotest.test_case "survives restart" `Slow test_survives_restart;
          Alcotest.test_case "abort rolls back" `Quick test_transactional_abort_rolls_back_index;
          QCheck_alcotest.to_alcotest prop_tree_vs_model;
        ] );
    ]
