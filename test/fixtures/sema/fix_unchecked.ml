(* Seeded sema-unchecked-result violations plus a clean control. *)

let engine : Ipl_engine.t = ()

(* FINDING: result dropped with 'let _'. *)
let drop () =
  let _ = Ipl_engine.commit_result engine 0 in
  ()

(* FINDING: result swallowed by ignore. *)
let swallow () = ignore (Ipl_engine.commit_result engine 1)

(* clean: matched. *)
let checked () =
  match Ipl_engine.commit_result engine 2 with
  | Ok () -> ()
  | Error e -> failwith (Ipl_engine.error_to_string e)
