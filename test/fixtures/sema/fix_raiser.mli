val kaboom : unit -> unit
