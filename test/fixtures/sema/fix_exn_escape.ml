(* Seeded sema-exception-escape violation plus clean controls. The .mli
   exports [boom] and [contained] only; [hidden] raises too but is
   private, so it must not be flagged. *)

let boom () = raise (Flash_chip.Read_error 3)

let contained () = try boom () with Flash_chip.Read_error _ -> ()

let hidden () = raise (Flash_chip.Program_error 1)
