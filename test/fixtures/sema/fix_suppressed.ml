(* The same violation twice: once suppressed with [@@lint.allow] (shared
   with the syntactic linter), once live. Only the live one may surface. *)

let dev : Flash_device.t = ()

let quiet () =
  ignore (Flash_device.submit_write dev ~cls:Flash_device.Foreground ~sector:0 (Bytes.create 1))
[@@lint.allow "sema-tag-leak"]

(* FINDING: identical shape, no allow attribute. *)
let loud () =
  ignore (Flash_device.submit_write dev ~cls:Flash_device.Foreground ~sector:1 (Bytes.create 1))
