(* Cross-module non-settler: takes a tag but neither awaits nor
   barriers, so the obligation stays with the caller. *)

let touch (_ : Flash_device.tag) = ()
