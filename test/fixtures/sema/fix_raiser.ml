(* Cross-module raiser: [kaboom]'s inferred raise set must propagate to
   callers in other units (and be subtractable by their handlers). Its
   own escape finding is expected — see test_sema. *)

let kaboom () = raise (Flash_chip.Erase_error 9)
