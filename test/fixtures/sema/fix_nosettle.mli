val touch : Flash_device.tag -> unit
