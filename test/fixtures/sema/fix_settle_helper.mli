val settle : Flash_device.t -> Flash_device.tag -> unit
