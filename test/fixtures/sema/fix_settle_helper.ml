(* Cross-module settler: callers passing a tag here are settled. *)

let settle dev t = Flash_device.await dev t
