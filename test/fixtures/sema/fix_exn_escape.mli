val boom : unit -> unit
val contained : unit -> unit
