(* Cross-module exception summaries: [safe] calls another unit's raiser
   but catches exactly what it raises, so it must NOT be flagged. [leaky]
   calls it bare, so the raise set flows through and it must be. *)

let safe () = try Fix_raiser.kaboom () with Flash_chip.Erase_error _ -> ()

let leaky () = Fix_raiser.kaboom ()
