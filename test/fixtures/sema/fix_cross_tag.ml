(* Cross-module tag settling through the summary table. *)

let dev : Flash_device.t = ()
let payload = Bytes.create 8

(* clean: the helper transitively awaits. *)
let ok_cross () =
  let t = Flash_device.submit_write dev ~cls:Flash_device.Foreground ~sector:0 payload in
  Fix_settle_helper.settle dev t

(* FINDING: the callee is known NOT to settle, so passing the tag to it
   does not discharge the obligation. *)
let bad_cross () =
  let t = Flash_device.submit_write dev ~cls:Flash_device.Foreground ~sector:1 payload in
  Fix_nosettle.touch t
