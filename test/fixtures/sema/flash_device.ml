(* Mock of the device submission surface (same names and shapes as
   lib/device/flash_device.mli), so the analyzer's matchers treat these
   exactly like the real API. *)

type t = unit
type tag = int
type op_class = Foreground | Merge_io

let submit_write (_ : t) ~cls:(_ : op_class) ~sector:(_ : int) (_ : bytes) : tag = 0
let submit_erase (_ : t) ~cls:(_ : op_class) (_ : int) : tag = 0
let publish_write (_ : t) ~cls:(_ : op_class) ~sector:(_ : int) (_ : bytes) = ()
let publish_erase (_ : t) ~cls:(_ : op_class) (_ : int) = ()
let await (_ : t) (_ : tag) = ()
let barrier (_ : t) = ()
let drain (_ : t) = ()
