(* Mock carrying the contract exceptions' names. *)

exception Read_error of int
exception Program_error of int
exception Erase_error of int
exception Worn_out of int
