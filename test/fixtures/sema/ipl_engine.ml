(* Mock of the engine's typed-error surface. *)

type t = unit
type error = Device_degraded | Read_failed

let error_to_string = function
  | Device_degraded -> "device degraded"
  | Read_failed -> "read failed"

let commit_result (_ : t) (_ : int) : (unit, error) result = Ok ()
