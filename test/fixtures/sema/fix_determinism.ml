(* Seeded sema-determinism violations plus a clean control. *)

(* FINDING: wall clock. *)
let now () = Unix.gettimeofday ()

(* FINDING: cpu clock. *)
let cpu () = Sys.time ()

(* FINDING: self-seeded randomness. *)
let reseed () = Random.self_init ()

(* FINDING: randomized hash order. *)
let hash () = Hashtbl.create ~random:true 8

(* clean: fixed-seed table (the common spelling everywhere in the repo). *)
let stable () = Hashtbl.create 8
