(* Seeded sema-tag-leak violations, plus clean controls that must NOT be
   flagged. Line numbers matter to test_sema — add new cases at the end. *)

let dev : Flash_device.t = ()
let payload = Bytes.create 8

(* FINDING: tag discarded with 'let _'. *)
let drop_tag () =
  let _ = Flash_device.submit_write dev ~cls:Flash_device.Foreground ~sector:0 payload in
  ()

(* FINDING: settled on the then-branch only. *)
let branch_leak cond =
  let t = Flash_device.submit_erase dev ~cls:Flash_device.Foreground 3 in
  if cond then Flash_device.await dev t

(* FINDING: tag swallowed by ignore. *)
let ignored_tag () =
  ignore (Flash_device.submit_write dev ~cls:Flash_device.Foreground ~sector:1 payload)

(* clean: awaited on every path. *)
let clean_await cond =
  let t = Flash_device.submit_write dev ~cls:Flash_device.Foreground ~sector:2 payload in
  if cond then Flash_device.await dev t else Flash_device.await dev t

(* clean: settled by a class-covering barrier in the continuation. *)
let clean_barrier () =
  let t = Flash_device.submit_erase dev ~cls:Flash_device.Merge_io 9 in
  Flash_device.barrier dev

(* clean: the tag escapes to the caller, who inherits the obligation. *)
let clean_escape () = Flash_device.submit_write dev ~cls:Flash_device.Foreground ~sector:4 payload

(* clean: the sanctioned fire-and-forget spelling. *)
let clean_publish () = Flash_device.publish_write dev ~cls:Flash_device.Foreground ~sector:5 payload
