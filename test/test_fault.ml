(* Tests for the fault-injection & crash-recovery validation subsystem:
   fault plans, torn-tail log handling, exception safety of the merge
   path, the model-based oracle, and the crash-point campaign itself. *)

module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module Seq_log = Ipl_core.Seq_log
module Trx_log = Ipl_core.Trx_log
module Meta_log = Ipl_core.Meta_log
module Engine = Ipl_core.Ipl_engine
module Config = Ipl_core.Ipl_config

(* The system logs and the bad-block manager now sit on the device
   layer; a raw chip is wrapped as a single-channel device (bit-for-bit
   the old serial behaviour). *)
let dev_of = Device.Flash_device.of_chip
module Plan = Fault.Fault_plan
module Oracle = Fault.Oracle
module Workload = Fault.Workload
module Campaign = Fault.Campaign

let mk_chip () = Chip.create (FConfig.default ~num_blocks:32 ())

let corrupt ?offset chip s =
  match Chip.corrupt_sector ?offset chip s with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Chip.corrupt_error_to_string e)

(* ---------------- fault plans ---------------- *)

let test_plan_crash_at () =
  let p = Plan.crash_at ~tear:true 5 in
  Alcotest.(check bool) "before: proceed" true
    (p 4 (Chip.Op_read { sector = 0; count = 1 }) = Chip.Proceed);
  Alcotest.(check bool) "at point: fail-stop" true
    (p 5 (Chip.Op_read { sector = 0; count = 1 }) = Chip.Fail_stop);
  Alcotest.(check bool) "multi-sector program torn" true
    (p 5 (Chip.Op_program { sector = 0; count = 16 }) = Chip.Tear 8);
  Alcotest.(check bool) "single-sector program fail-stops" true
    (p 5 (Chip.Op_program { sector = 0; count = 1 }) = Chip.Fail_stop)

let test_plan_seq () =
  let p = Plan.seq [ Plan.transient_read ~point:3; Plan.crash_at 7 ] in
  Alcotest.(check bool) "first plan wins" true
    (p 3 (Chip.Op_read { sector = 0; count = 1 }) = Chip.Read_fault);
  Alcotest.(check bool) "falls through" true
    (p 8 (Chip.Op_read { sector = 0; count = 1 }) = Chip.Fail_stop);
  Alcotest.(check bool) "neither fires" true
    (p 5 (Chip.Op_read { sector = 0; count = 1 }) = Chip.Proceed)

(* ---------------- torn-tail handling in the system logs ---------------- *)

let test_seq_log_bitflip_tail () =
  let chip = mk_chip () in
  let log = Seq_log.create (dev_of chip) ~first_block:0 ~num_blocks:1 in
  ignore (Seq_log.append log (Bytes.of_string "alpha"));
  ignore (Seq_log.append log (Bytes.of_string "beta"));
  Seq_log.force log;
  ignore (Seq_log.append log (Bytes.of_string "gamma"));
  Seq_log.force log;
  (* Rot a bit in the final sector: its records must be discarded, not
     decoded as garbage and not crash recovery. *)
  corrupt chip 1 ~offset:9;
  let log' = Seq_log.recover (dev_of chip) ~first_block:0 ~num_blocks:1 in
  Alcotest.(check (list string)) "tail discarded"
    [ "alpha"; "beta" ]
    (List.map Bytes.to_string (Seq_log.records log'));
  (* The log stays usable: recovery appends after the corrupt sector. *)
  ignore (Seq_log.append log' (Bytes.of_string "delta"));
  Seq_log.force log';
  Alcotest.(check (list string)) "appends continue past the rot"
    [ "alpha"; "beta"; "delta" ]
    (List.map Bytes.to_string (Seq_log.records log'))

let test_seq_log_mid_corruption_skipped () =
  let chip = mk_chip () in
  let log = Seq_log.create (dev_of chip) ~first_block:0 ~num_blocks:1 in
  List.iter
    (fun s ->
      ignore (Seq_log.append log (Bytes.of_string s));
      Seq_log.force log)
    [ "one"; "two"; "three" ];
  corrupt chip 0 ~offset:7;
  Alcotest.(check (list string)) "corrupt sector skipped, later ones kept"
    [ "two"; "three" ]
    (List.map Bytes.to_string (Seq_log.records log))

let test_seq_log_torn_garbage_sector () =
  let chip = mk_chip () in
  let log = Seq_log.create (dev_of chip) ~first_block:0 ~num_blocks:1 in
  ignore (Seq_log.append log (Bytes.of_string "good"));
  Seq_log.force log;
  (* Fabricate a torn append: a sector whose header claims 20 payload
     bytes but whose checksum never matched (the program was cut short). *)
  let garbage = Bytes.make 512 '\xff' in
  Bytes.set_uint16_le garbage 0 20;
  Bytes.set_int32_le garbage 2 0l;
  Chip.write_sectors chip ~sector:1 garbage;
  let log' = Seq_log.recover (dev_of chip) ~first_block:0 ~num_blocks:1 in
  Alcotest.(check (list string)) "torn sector contributes nothing" [ "good" ]
    (List.map Bytes.to_string (Seq_log.records log'))

let test_trx_log_lost_commit_record () =
  let chip = mk_chip () in
  let trx = Trx_log.create (dev_of chip) ~first_block:0 ~num_blocks:1 in
  Trx_log.log_begin trx 1;
  Trx_log.force trx;
  Trx_log.log_commit trx 1;
  (* The commit record's sector rots: the implicit-UNDO contract is that
     the transaction reverts to its pre-crash (un-committed) status. *)
  corrupt chip 1 ~offset:3;
  let trx', aborted = Trx_log.recover (dev_of chip) ~first_block:0 ~num_blocks:1 in
  Alcotest.(check (list int)) "closed by abort" [ 1 ] aborted;
  Alcotest.(check bool) "status reverts to aborted" true (Trx_log.status trx' 1 = Trx_log.Aborted)

let test_meta_log_torn_tail () =
  let chip = mk_chip () in
  let meta = Meta_log.create (dev_of chip) ~first_block:0 ~num_blocks:1 in
  Meta_log.log meta (Meta_log.Page_alloc { page = 1; eu = 2; idx = 3 });
  Meta_log.force meta;
  Meta_log.log meta (Meta_log.Merge { old_eu = 2; new_eu = 4 });
  Meta_log.force meta;
  corrupt chip 1 ~offset:2;
  let _, events = Meta_log.recover (dev_of chip) ~first_block:0 ~num_blocks:1 in
  Alcotest.(check bool) "only the intact sector's events survive" true
    (events = [ Meta_log.Page_alloc { page = 1; eu = 2; idx = 3 } ])

let test_meta_log_rollback () =
  let chip = mk_chip () in
  let meta = Meta_log.create (dev_of chip) ~first_block:0 ~num_blocks:1 in
  Meta_log.log meta (Meta_log.Page_alloc { page = 1; eu = 2; idx = 0 });
  Meta_log.force meta;
  let mark = Meta_log.mark meta in
  Meta_log.log meta (Meta_log.Merge { old_eu = 2; new_eu = 9 });
  Alcotest.(check bool) "buffered events discarded" true (Meta_log.rollback meta mark);
  Meta_log.force meta;
  let _, events = Meta_log.recover (dev_of chip) ~first_block:0 ~num_blocks:1 in
  Alcotest.(check bool) "rolled-back merge never published" true
    (events = [ Meta_log.Page_alloc { page = 1; eu = 2; idx = 0 } ])

(* ---------------- exception safety of the merge path ---------------- *)

let base_config = { Config.default with Config.recovery_enabled = true; buffer_pages = 4 }

let payload c = Bytes.make 48 c

exception Injected

(* Run committed single-slot updates until the erase unit's log region
   forces a merge and [fail] fires inside it. Returns the last durably
   committed character and the still-open transaction, if any. *)
let update_until_boom e ~page ~slot =
  let committed = ref 'a' in
  let active = ref None in
  (try
     for i = 1 to 64 do
       let c = Char.chr (Char.code 'A' + (i mod 26)) in
       let tx = Engine.Unsafe.begin_txn e in
       active := Some tx;
       (match Engine.Unsafe.update e ~tx ~page ~slot (payload c) with
       | Ok () -> ()
       | Error m -> failwith (Engine.error_to_string m));
       Engine.Unsafe.commit e tx;
       active := None;
       committed := c
     done
   with Injected | Chip.Power_loss _ -> ());
  (!committed, !active)

let merge_bomb = function
  | Chip.Op_program { count; _ } when count > 1 -> true
  | _ -> false (* data-page rewrites are the only multi-sector programs *)

let test_merge_transient_exception_rolls_back () =
  let chip = mk_chip () in
  let e = Engine.create ~config:base_config chip in
  let page = Engine.Unsafe.allocate_page e in
  let tx = Engine.Unsafe.begin_txn e in
  let slot =
    match Engine.Unsafe.insert e ~tx ~page (payload 'a') with Ok s -> s | Error m -> failwith (Engine.error_to_string m)
  in
  Engine.Unsafe.commit e tx;
  (* A transient failure (not a power loss: the chip stays alive) in the
     middle of the merge must leave the engine fully usable. *)
  Plan.install chip (fun _ op -> if merge_bomb op then raise Injected else Chip.Proceed);
  let committed, active = update_until_boom e ~page ~slot in
  Plan.clear chip;
  (match active with
  | Some tx -> Engine.Unsafe.abort e tx
  | None -> Alcotest.fail "expected an injected merge failure");
  Alcotest.(check (option bytes)) "committed value readable after rollback"
    (Some (payload committed))
    (Engine.Unsafe.read e ~page ~slot);
  (* The retried merge succeeds against the restored state. *)
  let tx = Engine.Unsafe.begin_txn e in
  (match Engine.Unsafe.update e ~tx ~page ~slot (payload 'z') with
  | Ok () -> ()
  | Error m -> failwith (Engine.error_to_string m));
  Engine.Unsafe.commit e tx;
  Alcotest.(check (option bytes)) "engine keeps working" (Some (payload 'z'))
    (Engine.Unsafe.read e ~page ~slot);
  let e2, _ = Engine.restart ~config:base_config chip in
  Alcotest.(check (option bytes)) "state survives restart" (Some (payload 'z'))
    (Engine.Unsafe.read e2 ~page ~slot)

let test_merge_power_loss_recovers () =
  let chip = mk_chip () in
  let e = Engine.create ~config:base_config chip in
  let page = Engine.Unsafe.allocate_page e in
  let tx = Engine.Unsafe.begin_txn e in
  let slot =
    match Engine.Unsafe.insert e ~tx ~page (payload 'a') with Ok s -> s | Error m -> failwith (Engine.error_to_string m)
  in
  Engine.Unsafe.commit e tx;
  Plan.install chip (fun _ op -> if merge_bomb op then Chip.Fail_stop else Chip.Proceed);
  let committed, active = update_until_boom e ~page ~slot in
  Alcotest.(check bool) "power loss hit mid-merge" true (active <> None && Chip.is_dead chip);
  Plan.clear chip;
  let e2, _ = Engine.restart ~config:base_config chip in
  (* The merge never reached its durability point, and the in-flight
     commit never wrote its commit record: the last fully committed value
     must be the one recovered. *)
  Alcotest.(check (option bytes)) "committed value survives mid-merge crash"
    (Some (payload committed))
    (Engine.Unsafe.read e2 ~page ~slot)

(* ---------------- the oracle ---------------- *)

let read_of tbl ~page ~slot = Hashtbl.find_opt tbl (page, slot)

let db vals =
  let h = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace h k (Bytes.of_string v)) vals;
  h

let test_oracle_catches_lost_commit () =
  let o = Oracle.create () in
  Oracle.seed o ~page:0 ~slot:0 (Bytes.of_string "keep");
  Oracle.begin_txn o;
  Oracle.note o ~page:0 ~slot:1 (Some (Bytes.of_string "new"));
  Oracle.start_commit o;
  Oracle.end_commit o;
  Alcotest.(check bool) "intact state passes" true
    (Oracle.check o ~read:(read_of (db [ ((0, 0), "keep"); ((0, 1), "new") ])) ~pages:[ 0 ]
       ~slots:4
    = []);
  Alcotest.(check bool) "lost committed insert flagged" true
    (Oracle.check o ~read:(read_of (db [ ((0, 0), "keep") ])) ~pages:[ 0 ] ~slots:4 <> [])

let test_oracle_catches_surviving_uncommitted () =
  let o = Oracle.create () in
  Oracle.seed o ~page:0 ~slot:0 (Bytes.of_string "base");
  Oracle.begin_txn o;
  Oracle.note o ~page:0 ~slot:0 (Some (Bytes.of_string "dirty"));
  Alcotest.(check bool) "not in doubt" true (Oracle.crash o = Oracle.Rolled_back);
  Alcotest.(check bool) "rolled-back state passes" true
    (Oracle.check o ~read:(read_of (db [ ((0, 0), "base") ])) ~pages:[ 0 ] ~slots:2 = []);
  Alcotest.(check bool) "surviving uncommitted write flagged" true
    (Oracle.check o ~read:(read_of (db [ ((0, 0), "dirty") ])) ~pages:[ 0 ] ~slots:2 <> [])

let test_oracle_in_doubt_atomicity () =
  let o = Oracle.create () in
  Oracle.seed o ~page:0 ~slot:0 (Bytes.of_string "old0");
  Oracle.seed o ~page:0 ~slot:1 (Bytes.of_string "old1");
  Oracle.begin_txn o;
  Oracle.note o ~page:0 ~slot:0 (Some (Bytes.of_string "new0"));
  Oracle.note o ~page:0 ~slot:1 (Some (Bytes.of_string "new1"));
  Oracle.start_commit o;
  Alcotest.(check bool) "in doubt" true (Oracle.crash o = Oracle.In_doubt);
  let check vals = Oracle.check o ~read:(read_of (db vals)) ~pages:[ 0 ] ~slots:2 in
  Alcotest.(check bool) "pre-commit state legal" true
    (check [ ((0, 0), "old0"); ((0, 1), "old1") ] = []);
  Alcotest.(check bool) "post-commit state legal" true
    (check [ ((0, 0), "new0"); ((0, 1), "new1") ] = []);
  Alcotest.(check bool) "half-applied commit flagged" true
    (check [ ((0, 0), "new0"); ((0, 1), "old1") ] <> [])

(* ---------------- the campaign ---------------- *)

let small_spec = { Workload.default with Workload.transactions = 25 }

let test_campaign_zero_violations () =
  let r = Campaign.run ~sample:40 small_spec in
  Alcotest.(check bool) "crash points tested" true (r.Campaign.crash_points > 0);
  Alcotest.(check int) "every restart recovered" r.Campaign.crash_points r.Campaign.recovered;
  Alcotest.(check int) "zero violations" 0 (List.length r.Campaign.violations)

let test_campaign_zero_violations_no_tear () =
  let r = Campaign.run ~tear:false ~sample:15 small_spec in
  Alcotest.(check int) "zero violations" 0 (List.length r.Campaign.violations)

let test_campaign_catches_broken_commit () =
  (* With commit-time log forcing effectively disabled, committed
     transactions are not durable — every sampled crash point must show
     lost-commit violations. This validates the checker itself. *)
  let r = Campaign.run ~broken:true ~sample:8 small_spec in
  Alcotest.(check bool) "unsound configuration caught" true (r.Campaign.violations <> [])

let () =
  Alcotest.run "fault"
    [
      ( "plans",
        [
          Alcotest.test_case "crash_at" `Quick test_plan_crash_at;
          Alcotest.test_case "seq composition" `Quick test_plan_seq;
        ] );
      ( "torn tails",
        [
          Alcotest.test_case "seq log: bit-flipped tail" `Quick test_seq_log_bitflip_tail;
          Alcotest.test_case "seq log: mid-log rot skipped" `Quick
            test_seq_log_mid_corruption_skipped;
          Alcotest.test_case "seq log: torn garbage sector" `Quick
            test_seq_log_torn_garbage_sector;
          Alcotest.test_case "trx log: lost commit record" `Quick
            test_trx_log_lost_commit_record;
          Alcotest.test_case "meta log: torn tail" `Quick test_meta_log_torn_tail;
          Alcotest.test_case "meta log: mark/rollback" `Quick test_meta_log_rollback;
        ] );
      ( "merge exception safety",
        [
          Alcotest.test_case "transient failure rolls back" `Quick
            test_merge_transient_exception_rolls_back;
          Alcotest.test_case "power loss mid-merge recovers" `Quick
            test_merge_power_loss_recovers;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "catches lost commit" `Quick test_oracle_catches_lost_commit;
          Alcotest.test_case "catches surviving uncommitted" `Quick
            test_oracle_catches_surviving_uncommitted;
          Alcotest.test_case "in-doubt atomicity" `Quick test_oracle_in_doubt_atomicity;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "zero violations (torn)" `Quick test_campaign_zero_violations;
          Alcotest.test_case "zero violations (clean fail-stop)" `Quick
            test_campaign_zero_violations_no_tear;
          Alcotest.test_case "broken commit caught" `Quick test_campaign_catches_broken_commit;
        ] );
    ]
