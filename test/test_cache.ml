(* Tests for the DRAM log-record cache: unit tests of Cache.Log_cache
   (indexing, LRU eviction, invalidation, the disabled mode) plus the
   load-bearing equivalence property — an engine with the cache on
   answers every read exactly as one with the cache off, before and
   after restart, without changing a single flash write. *)

module LC = Cache.Log_cache
module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module Engine = Ipl_core.Ipl_engine
module Config = Ipl_core.Ipl_config
module Store = Ipl_core.Ipl_storage
module Rng = Ipl_util.Rng

(* Unit tests use (page, payload) pairs as records; a record costs its
   payload length, so byte budgets are easy to reason about. *)
let mk ?(budget = 1000) ?on_evict () =
  LC.create ~budget_bytes:budget
    ~record_bytes:(fun (_, s) -> String.length s)
    ~page_of:fst ?on_evict ()

let rec_list = Alcotest.(list (pair int string))

let test_indexing () =
  let c = mk () in
  let records = [ (1, "a"); (2, "bb"); (1, "ccc"); (3, "d"); (1, "ee") ] in
  LC.install c 7 records;
  Alcotest.(check bool) "mem" true (LC.mem c 7);
  Alcotest.(check (option rec_list)) "application order" (Some records) (LC.records c 7);
  Alcotest.(check (option rec_list))
    "per-page order"
    (Some [ (1, "a"); (1, "ccc"); (1, "ee") ])
    (LC.records_of_page c 7 ~page:1);
  (* Cached unit, no records for the page: Some [], not None. *)
  Alcotest.(check (option rec_list)) "cached, empty page" (Some [])
    (LC.records_of_page c 7 ~page:9);
  Alcotest.(check (option rec_list)) "uncached unit" None (LC.records_of_page c 8 ~page:1);
  let s = LC.stats c in
  Alcotest.(check int) "entries" 1 s.LC.entries;
  Alcotest.(check int) "bytes" 9 s.LC.bytes

let test_append () =
  let c = mk () in
  (* Append to an uncached unit is a no-op, not an install: the cache
     cannot know the unit's earlier records. *)
  LC.append c 5 [ (1, "x") ];
  Alcotest.(check bool) "append absent: still absent" false (LC.mem c 5);
  LC.install c 5 [ (1, "a") ];
  LC.append c 5 [ (2, "b"); (1, "c") ];
  Alcotest.(check (option rec_list))
    "extended in order"
    (Some [ (1, "a"); (2, "b"); (1, "c") ])
    (LC.records c 5);
  Alcotest.(check (option rec_list)) "page index extended" (Some [ (1, "a"); (1, "c") ])
    (LC.records_of_page c 5 ~page:1)

let test_lru_eviction () =
  let evicted = ref [] in
  let c = mk ~budget:8 ~on_evict:(fun ~key ~bytes -> evicted := (key, bytes) :: !evicted) () in
  LC.install c 1 [ (0, "aaa") ];
  LC.install c 2 [ (0, "bbb") ];
  (* Touch 1 so 2 becomes LRU, then overflow the budget. *)
  ignore (LC.records c 1);
  LC.install c 3 [ (0, "ccc") ];
  Alcotest.(check (list (pair int int))) "LRU evicted" [ (2, 3) ] !evicted;
  Alcotest.(check bool) "1 survives" true (LC.mem c 1);
  Alcotest.(check bool) "3 cached" true (LC.mem c 3);
  Alcotest.(check int) "bytes within budget" 6 (LC.stats c).LC.bytes;
  (* An entry alone bigger than the whole budget evicts everything,
     itself included. *)
  LC.install c 9 [ (0, String.make 50 'x') ];
  Alcotest.(check int) "nothing cached" 0 (LC.stats c).LC.entries;
  Alcotest.(check int) "no bytes leak" 0 (LC.stats c).LC.bytes;
  Alcotest.(check bool) "oversized entry itself evicted" true
    (List.mem_assoc 9 !evicted)

let test_invalidate_and_clear () =
  let evicted = ref 0 in
  let c = mk ~on_evict:(fun ~key:_ ~bytes:_ -> incr evicted) () in
  LC.install c 1 [ (0, "aa") ];
  LC.install c 2 [ (0, "bb") ];
  (* Replacing an entry accounts bytes exactly once. *)
  LC.install c 1 [ (0, "cccc") ];
  Alcotest.(check int) "replace re-accounts" 6 (LC.stats c).LC.bytes;
  LC.invalidate c 1;
  Alcotest.(check bool) "invalidated" false (LC.mem c 1);
  Alcotest.(check int) "bytes released" 2 (LC.stats c).LC.bytes;
  LC.invalidate c 42;
  (* absent: no-op *)
  LC.clear c;
  Alcotest.(check int) "cleared" 0 (LC.stats c).LC.entries;
  Alcotest.(check int) "invalidate/clear are not evictions" 0 !evicted

let test_disabled () =
  let c = mk ~budget:0 () in
  Alcotest.(check bool) "disabled" false (LC.enabled c);
  LC.install c 1 [ (0, "a") ];
  LC.append c 1 [ (0, "b") ];
  Alcotest.(check bool) "install is a no-op" false (LC.mem c 1);
  Alcotest.(check (option rec_list)) "every lookup misses" None (LC.records c 1)

(* ---------------- engine-level equivalence ---------------- *)

let engine_with ~cache_bytes ~blocks =
  let chip = Chip.create (FConfig.default ~num_blocks:blocks ()) in
  let config =
    { Config.default with Config.recovery_enabled = true; log_cache_bytes = cache_bytes }
  in
  (chip, config, Engine.create ~config chip)

(* One deterministic OLTP-ish workload (same mix as Obs_bench), applied
   identically to both engines; every mutation's result and every read
   along the way must agree. *)
let run_twin_workload ~seed ~txns (ea, eb) =
  let rng = Rng.of_int seed in
  let pages = Array.init 6 (fun _ ->
      let p = Engine.Unsafe.allocate_page ea in
      let p' = Engine.Unsafe.allocate_page eb in
      Alcotest.(check int) "same page ids" p p';
      p)
  in
  let payload () = Bytes.of_string (Rng.alpha_string rng ~min:8 ~max:40) in
  let both f =
    let ra = f ea and rb = f eb in
    if ra <> rb then Alcotest.fail "cache-on and cache-off engines diverged";
    ra
  in
  for i = 1 to txns do
    let tx = both Engine.Unsafe.begin_txn in
    let ops = 1 + Rng.int rng 4 in
    for _ = 1 to ops do
      let page = pages.(Rng.int rng (Array.length pages)) in
      let slot = Rng.int rng 16 in
      match Rng.int rng 10 with
      | 0 | 1 | 2 ->
          let p = payload () in
          ignore (both (fun e -> Engine.Unsafe.insert e ~tx ~page p))
      | 3 -> ignore (both (fun e -> Engine.Unsafe.delete e ~tx ~page ~slot))
      | _ ->
          let p = payload () in
          ignore (both (fun e -> Engine.Unsafe.update e ~tx ~page ~slot p))
    done;
    if Rng.int rng 100 < 15 then both (fun e -> Engine.Unsafe.abort e tx)
    else both (fun e -> Engine.Unsafe.commit e tx);
    (* Interleave reads so the cache is exercised while logs grow. *)
    for _ = 1 to 4 do
      let page = pages.(Rng.int rng (Array.length pages)) in
      let slot = Rng.int rng 16 in
      ignore (both (fun e -> Engine.Unsafe.read e ~page ~slot))
    done;
    if i mod 25 = 0 then both (fun e -> Engine.Unsafe.checkpoint e);
    if i mod 40 = 0 then ignore (both (fun e -> Engine.Unsafe.compact e ~max_merges:2))
  done;
  pages

let check_all_reads label (ea, eb) pages =
  Array.iter
    (fun page ->
      for slot = 0 to 31 do
        Alcotest.(check (option bytes))
          (Printf.sprintf "%s: page %d slot %d" label page slot)
          (Engine.Unsafe.read eb ~page ~slot)
          (Engine.Unsafe.read ea ~page ~slot)
      done)
    pages

let equivalence ?(expect_hits = true) ~seed ~cache_bytes () =
  let chip_a, config_a, ea = engine_with ~cache_bytes ~blocks:64 in
  let chip_b, config_b, eb = engine_with ~cache_bytes:0 ~blocks:64 in
  let pages = run_twin_workload ~seed ~txns:60 (ea, eb) in
  check_all_reads "live" (ea, eb) pages;
  (* The cache must never change what reaches flash. *)
  let sa = (Engine.stats ea).Engine.storage and sb = (Engine.stats eb).Engine.storage in
  Alcotest.(check int) "log writes equal" sb.Store.log_sector_writes sa.Store.log_sector_writes;
  Alcotest.(check int) "overflow writes equal" sb.Store.overflow_sector_writes
    sa.Store.overflow_sector_writes;
  Alcotest.(check int) "merges equal" sb.Store.merges sa.Store.merges;
  if expect_hits then
    Alcotest.(check bool) "cache-on run actually hit the cache" true
      (sa.Store.log_cache_hits > 0);
  Alcotest.(check int) "cache-off run never touches the cache" 0 sb.Store.log_cache_hits;
  (* Crash at a durability point: both come back identical (the cache is
     DRAM-only, so the cache-on engine restarts cold). *)
  Engine.Unsafe.checkpoint ea;
  Engine.Unsafe.checkpoint eb;
  let ea', _ = Engine.restart ~config:config_a chip_a in
  let eb', _ = Engine.restart ~config:config_b chip_b in
  check_all_reads "after restart" (ea', eb') pages

let test_equivalence_default () = equivalence ~seed:7 ~cache_bytes:(256 * 1024) ()

let test_equivalence_tiny_budget () =
  (* A budget small enough that eviction churns constantly; hits are not
     guaranteed (entries can self-evict), equivalence still is. *)
  equivalence ~expect_hits:false ~seed:11 ~cache_bytes:600 ()

let prop_equivalence =
  QCheck.Test.make ~name:"cache on/off engines are read-equivalent" ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      equivalence ~expect_hits:false ~seed ~cache_bytes:(1 lsl (6 + (seed mod 10))) ();
      true)

let () =
  Alcotest.run "cache"
    [
      ( "log cache",
        [
          Alcotest.test_case "per-page indexing" `Quick test_indexing;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "invalidate and clear" `Quick test_invalidate_and_clear;
          Alcotest.test_case "disabled at budget 0" `Quick test_disabled;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "default budget" `Quick test_equivalence_default;
          Alcotest.test_case "tiny budget (eviction churn)" `Quick test_equivalence_tiny_budget;
          QCheck_alcotest.to_alcotest prop_equivalence;
        ] );
    ]
