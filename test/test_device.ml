(* Tests for the multi-channel flash device: block striping, single-chip
   bit-for-bit equivalence, deterministic virtual-time scheduling,
   op-class priorities with deadline promotion, queue-depth backpressure,
   barrier vs drain semantics, and 1-channel vs 4-channel logical
   equivalence of a full engine workload. *)

module Config = Flash_sim.Flash_config
module Chip = Flash_sim.Flash_chip
module Dev = Device.Flash_device
module Json = Ipl_util.Json
module Bench = Workload.Obs_bench

let cfg ?(num_blocks = 8) () = Config.default ~num_blocks ()

let mk ?queue_depth ?(channels = 4) ?(ways = 1) ?num_blocks () =
  Dev.create ?queue_depth ~channels ~ways (cfg ?num_blocks ())

let sector_bytes dev n = Bytes.make ((Dev.config dev).Config.sector_size * n) 'x'

(* --- striping ----------------------------------------------------- *)

let test_striping () =
  let dev = mk () in
  Alcotest.(check int) "chips" 4 (Dev.num_chips dev);
  for b = 0 to (Dev.config dev).Config.num_blocks - 1 do
    Alcotest.(check int)
      (Printf.sprintf "block %d channel" b)
      (b mod 4) (Dev.channel_of_block dev b)
  done;
  (* Device sector addresses round-trip through block arithmetic. *)
  let spb = Config.sectors_per_block (Dev.config dev) in
  Alcotest.(check int) "sector of block 3" (3 * spb) (Dev.sector_of_block dev 3);
  Alcotest.(check int) "block of sector" 3 (Dev.block_of_sector dev ((3 * spb) + 1))

(* --- single-chip equivalence -------------------------------------- *)

(* The same operation sequence, against a bare chip and against devices
   in both single-chip modes; state, data, timing and stats must be
   bit-for-bit identical. *)
let drive_ops read write erase num_sectors =
  let acc = Buffer.create 256 in
  let data i = Bytes.init 512 (fun j -> Char.chr ((i + j) mod 256)) in
  for i = 0 to 19 do
    write ((i * 7) mod num_sectors) (data i)
  done;
  erase 2;
  write 5 (data 99);
  for i = 0 to 19 do
    Buffer.add_bytes acc (read ((i * 3) mod num_sectors))
  done;
  Buffer.contents acc

let test_single_chip_equivalence () =
  let chip = Chip.create (cfg ()) in
  let wrapped = Dev.of_chip (Chip.create (cfg ())) in
  let created = Dev.create ~channels:1 ~ways:1 (cfg ()) in
  let on_chip =
    drive_ops
      (fun s -> Chip.read_sectors chip ~sector:s ~count:1)
      (fun s d -> Chip.write_sectors chip ~sector:s d)
      (fun b -> Chip.erase_block chip b)
      (Chip.num_sectors chip)
  in
  let on_dev dev =
    drive_ops
      (fun s -> Dev.read_sectors dev ~sector:s ~count:1)
      (fun s d -> Dev.write_sectors dev ~sector:s d)
      (fun b -> Dev.erase_block dev b)
      (Dev.num_sectors dev)
  in
  let w = on_dev wrapped and c = on_dev created in
  Alcotest.(check string) "of_chip data" on_chip w;
  Alcotest.(check string) "create 1x1 data" on_chip c;
  Alcotest.(check (float 0.0)) "of_chip clock" (Chip.elapsed chip) (Dev.elapsed wrapped);
  Alcotest.(check (float 0.0)) "create 1x1 clock" (Chip.elapsed chip) (Dev.elapsed created);
  Alcotest.(check bool) "of_chip stats" true (Chip.stats chip = Dev.stats wrapped);
  Alcotest.(check bool) "create 1x1 stats" true (Chip.stats chip = Dev.stats created);
  for s = 0 to Chip.num_sectors chip - 1 do
    assert (Chip.sector_state chip s = Dev.sector_state wrapped s);
    assert (Chip.sector_state chip s = Dev.sector_state created s)
  done

(* --- determinism --------------------------------------------------- *)

let test_determinism () =
  let run () =
    let dev = mk () in
    let tags = ref [] in
    for i = 0 to 30 do
      let sector = Dev.sector_of_block dev (i mod 8) in
      if Dev.sector_state dev sector = Chip.Free then
        tags := Dev.submit_write dev ~cls:Dev.Log_flush ~sector (sector_bytes dev 1) :: !tags;
      ignore (Dev.submit_read dev ~cls:Dev.Foreground ~sector ~count:1)
    done;
    List.iter (fun tag -> Dev.await dev tag) !tags;
    Dev.drain dev;
    (Dev.elapsed dev, Dev.stats dev, Json.to_string (Dev.to_json dev))
  in
  let e1, s1, j1 = run () in
  let e2, s2, j2 = run () in
  Alcotest.(check (float 0.0)) "elapsed" e1 e2;
  Alcotest.(check bool) "stats" true (s1 = s2);
  Alcotest.(check string) "report" j1 j2

(* --- scheduler: priority + deadline promotion ---------------------- *)

(* Fill one chip with a long erase, queue a second erase behind it, then
   submit a foreground read on the same chip. The read both outranks the
   queued erase (class priority) and is promoted when awaited, so the
   host clock passes the read's completion while the second erase is
   still outstanding. *)
let test_priority_overtakes_queued () =
  let dev = mk () in
  Dev.write_sectors dev ~sector:0 (sector_bytes dev 1);
  let t1 = Dev.submit_erase dev ~cls:Dev.Merge_io 0 in
  let t2 = Dev.submit_erase dev ~cls:Dev.Merge_io 0 in
  ignore t1;
  let _data, rt = Dev.submit_read dev ~sector:0 ~count:1 ~cls:Dev.Foreground in
  Dev.await dev rt;
  Alcotest.(check int) "second erase still in flight" 1 (Dev.in_flight dev);
  Dev.await dev t2;
  Alcotest.(check int) "drained" 0 (Dev.in_flight dev)

(* --- barrier vs drain ---------------------------------------------- *)

let test_barrier_vs_drain () =
  let dev = mk () in
  (* A long background erase, a stack of foreground reads, and one
     durable log-flush program, all on different chips. The durability
     barrier waits only for the log flush — a short program — so the
     erase and the deeper read completions are still outstanding after
     it; drain waits for everything. *)
  Dev.write_sectors dev ~sector:0 (sector_bytes dev 1);
  ignore (Dev.submit_erase dev ~cls:Dev.Merge_io 0);
  let rsector = Dev.sector_of_block dev 2 in
  for _ = 1 to 10 do
    ignore (Dev.submit_read dev ~cls:Dev.Foreground ~sector:rsector ~count:1)
  done;
  ignore
    (Dev.submit_write dev ~cls:Dev.Log_flush
       ~sector:(Dev.sector_of_block dev 1)
       (sector_bytes dev 1));
  Dev.barrier dev;
  Alcotest.(check bool)
    "erase and reads survive the durability barrier" true (Dev.in_flight dev >= 2);
  Dev.drain dev;
  Alcotest.(check int) "drain settles everything" 0 (Dev.in_flight dev)

(* --- queue-depth backpressure -------------------------------------- *)

let test_queue_depth_backpressure () =
  let dev = mk ~queue_depth:2 () in
  let sector = 0 in
  for _ = 1 to 5 do
    ignore (Dev.submit_read dev ~cls:Dev.Foreground ~sector ~count:1)
  done;
  (* A full queue stalls the host to the earliest completion before
     accepting the next submission, so at most [queue_depth] operations
     are ever outstanding per chip. *)
  Alcotest.(check bool) "bounded queue" true (Dev.in_flight dev <= 2);
  Dev.drain dev

(* --- 1ch vs 4ch logical equivalence -------------------------------- *)

let digest_of json =
  match Json.member "logical_digest" json with
  | Some (Json.String s) -> s
  | _ -> Alcotest.fail "no logical_digest in bench json"

let test_geometry_equivalence () =
  let spec = { Bench.quick with Bench.transactions = 40 } in
  let one = Bench.run ~spec () in
  let four = Bench.run ~spec:{ spec with Bench.channels = 4 } () in
  Alcotest.(check string) "identical logical results" (digest_of one.Bench.json)
    (digest_of four.Bench.json)

let () =
  Alcotest.run "device"
    [
      ( "device",
        [
          Alcotest.test_case "striping" `Quick test_striping;
          Alcotest.test_case "single-chip equivalence" `Quick test_single_chip_equivalence;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "priority overtakes queued" `Quick test_priority_overtakes_queued;
          Alcotest.test_case "barrier vs drain" `Quick test_barrier_vs_drain;
          Alcotest.test_case "queue-depth backpressure" `Quick test_queue_depth_backpressure;
          Alcotest.test_case "1ch vs 4ch digest" `Quick test_geometry_equivalence;
        ] );
    ]
