(* Unit and property tests for the utility library. *)

module Rng = Ipl_util.Rng
module Stats = Ipl_util.Stats
module Histogram = Ipl_util.Histogram
module Size = Ipl_util.Size

let test_rng_determinism () =
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.of_int 1 and b = Rng.of_int 2 in
  Alcotest.(check bool) "different streams" false (Rng.next_int64 a = Rng.next_int64 b)

let test_rng_copy_independent () =
  let a = Rng.of_int 7 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b)

let test_rng_int_bounds () =
  let r = Rng.of_int 3 in
  for _ = 1 to 10_000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (x >= 0 && x < 17)
  done

let test_rng_int_in_bounds () =
  let r = Rng.of_int 4 in
  for _ = 1 to 10_000 do
    let x = Rng.int_in r 5 9 in
    Alcotest.(check bool) "in [5,9]" true (x >= 5 && x <= 9)
  done

let test_rng_int_covers () =
  let r = Rng.of_int 5 in
  let seen = Array.make 4 false in
  for _ = 1 to 1000 do
    seen.(Rng.int r 4) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_nurand_range () =
  let r = Rng.of_int 6 in
  for _ = 1 to 10_000 do
    let x = Rng.nurand r ~a:255 ~x:0 ~y:999 ~c:123 in
    Alcotest.(check bool) "in [0,999]" true (x >= 0 && x <= 999)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.of_int 8 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_last_name () =
  Alcotest.(check string) "0" "BARBARBAR" (Rng.last_name 0);
  Alcotest.(check string) "371" "PRICALLYOUGHT" (Rng.last_name 371);
  Alcotest.(check string) "999" "EINGEINGEING" (Rng.last_name 999)

let test_rng_strings () =
  let r = Rng.of_int 9 in
  let s = Rng.alpha_string r ~min:5 ~max:10 in
  Alcotest.(check bool) "length" true (String.length s >= 5 && String.length s <= 10);
  let n = Rng.numeric_string r ~len:8 in
  Alcotest.(check int) "numeric length" 8 (String.length n);
  String.iter (fun c -> Alcotest.(check bool) "digit" true (c >= '0' && c <= '9')) n

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "total" 10.0 s.Stats.total

let test_stats_percentile () =
  let xs = Array.init 101 float_of_int in
  Alcotest.(check (float 1e-9)) "median" 50.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile xs 100.0)

let test_stats_gini () =
  Alcotest.(check (float 1e-9)) "uniform" 0.0 (Stats.gini [| 5.0; 5.0; 5.0; 5.0 |]);
  let skewed = Stats.gini [| 0.0; 0.0; 0.0; 100.0 |] in
  Alcotest.(check bool) "skewed high" true (skewed > 0.7)

let test_stats_empty () =
  Alcotest.check_raises "empty summarize" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Stats.summarize [||]))

let test_histogram_basic () =
  let h = Histogram.create () in
  Histogram.incr h 1;
  Histogram.incr h 1;
  Histogram.add h 2 5;
  Alcotest.(check int) "count 1" 2 (Histogram.count h 1);
  Alcotest.(check int) "count 2" 5 (Histogram.count h 2);
  Alcotest.(check int) "count missing" 0 (Histogram.count h 3);
  Alcotest.(check int) "distinct" 2 (Histogram.distinct h);
  Alcotest.(check int) "total" 7 (Histogram.total h)

let test_histogram_top () =
  let h = Histogram.create () in
  List.iter (fun (k, n) -> Histogram.add h k n) [ (10, 3); (20, 9); (30, 1); (40, 9) ];
  let top = Histogram.top h 2 in
  Alcotest.(check (list (pair int int)))
    "top 2 (ties by key)"
    [ (20, 9); (40, 9) ]
    (Array.to_list top)

let test_histogram_counts_desc () =
  let h = Histogram.create () in
  List.iter (Histogram.incr h) [ 1; 1; 1; 2; 2; 3 ];
  Alcotest.(check (array int)) "desc" [| 3; 2; 1 |] (Histogram.counts_desc h)

let test_diff_minimal_range () =
  let module D = Ipl_util.Diff in
  let b = Bytes.of_string in
  Alcotest.(check (option (pair int int))) "equal" None (D.minimal_range (b "abc") (b "abc"));
  Alcotest.(check (option (pair int int))) "one byte" (Some (2, 1))
    (D.minimal_range (b "abcd") (b "abXd"));
  Alcotest.(check (option (pair int int))) "covering" (Some (1, 5))
    (D.minimal_range (b "abcdefg") (b "aXcdeYg"));
  Alcotest.check_raises "length mismatch" (Invalid_argument "Diff.minimal_range: length mismatch")
    (fun () -> ignore (D.minimal_range (b "a") (b "ab")))

let test_diff_ranges () =
  let module D = Ipl_util.Diff in
  let b = Bytes.of_string in
  Alcotest.(check (list (pair int int))) "equal" [] (D.ranges (b "same") (b "same"));
  (* Two far-apart changes split with a small gap. *)
  let before = Bytes.make 100 'a' and after = Bytes.make 100 'a' in
  Bytes.set after 5 'X';
  Bytes.set after 80 'Y';
  Alcotest.(check (list (pair int int))) "split" [ (5, 1); (80, 1) ] (D.ranges before after);
  (* Changes within the gap get coalesced. *)
  let after2 = Bytes.copy before in
  Bytes.set after2 5 'X';
  Bytes.set after2 15 'Y';
  Alcotest.(check (list (pair int int))) "coalesced" [ (5, 11) ] (D.ranges ~gap:16 before after2);
  Alcotest.(check (list (pair int int))) "not coalesced at gap 5" [ (5, 1); (15, 1) ]
    (D.ranges ~gap:5 before after2)

let prop_diff_ranges_reconstruct =
  QCheck.Test.make ~name:"applying ranges to before yields after" ~count:300
    QCheck.(pair (string_of_size (Gen.int_range 0 200)) small_int)
    (fun (s, seed) ->
      let before = Bytes.of_string s in
      let after = Bytes.copy before in
      (* Flip a few random bytes. *)
      let rng = Ipl_util.Rng.of_int seed in
      let n = Bytes.length after in
      if n > 0 then
        for _ = 1 to Ipl_util.Rng.int_in rng 0 8 do
          let i = Ipl_util.Rng.int rng n in
          Bytes.set after i (Char.chr (Ipl_util.Rng.int rng 256))
        done;
      let patched = Bytes.copy before in
      List.iter
        (fun (off, len) -> Bytes.blit after off patched off len)
        (Ipl_util.Diff.ranges ~gap:3 before after);
      patched = after)

let test_arena_roundtrip () =
  let module A = Ipl_util.Byte_arena in
  let a = A.create ~chunk_size:4096 () in
  let h1 = A.add a (Bytes.of_string "hello") in
  let h2 = A.add a (Bytes.of_string "world!") in
  Alcotest.(check bytes) "get 1" (Bytes.of_string "hello") (A.get a h1);
  Alcotest.(check bytes) "get 2" (Bytes.of_string "world!") (A.get a h2);
  Alcotest.(check int) "length" 6 (A.length a h2)

let test_arena_set_in_place_and_grow () =
  let module A = Ipl_util.Byte_arena in
  let a = A.create ~chunk_size:4096 () in
  let h = A.add a (Bytes.of_string "aaaa") in
  let stored = A.stored_bytes a in
  let h' = A.set a h (Bytes.of_string "bbbb") in
  Alcotest.(check int) "in place" h h';
  Alcotest.(check int) "no growth" stored (A.stored_bytes a);
  Alcotest.(check bytes) "overwritten" (Bytes.of_string "bbbb") (A.get a h');
  let h'' = A.set a h' (Bytes.of_string "longer-now") in
  Alcotest.(check bool) "relocated" true (h'' <> h');
  Alcotest.(check bytes) "new value" (Bytes.of_string "longer-now") (A.get a h'')

let test_arena_chunk_boundaries () =
  let module A = Ipl_util.Byte_arena in
  let a = A.create ~chunk_size:1000 () in
  (* Values never straddle chunks: fill with 300-byte values. *)
  let values = List.init 50 (fun i -> Bytes.make 300 (Char.chr (33 + i))) in
  let handles = List.map (A.add a) values in
  List.iter2
    (fun h v -> Alcotest.(check bytes) "intact across chunks" v (A.get a h))
    handles values

let test_arena_limits () =
  let module A = Ipl_util.Byte_arena in
  let a = A.create ~chunk_size:512 () in
  Alcotest.check_raises "too long" (Invalid_argument "Byte_arena.add: value too long")
    (fun () -> ignore (A.add a (Bytes.make 2000 'x')))

let prop_arena_model =
  QCheck.Test.make ~name:"arena matches model under add/set" ~count:100
    QCheck.(small_list (pair (string_of_size (Gen.int_range 1 50)) bool))
    (fun ops ->
      let module A = Ipl_util.Byte_arena in
      let a = A.create ~chunk_size:256 () in
      let model = ref [] in
      List.iter
        (fun (s, replace) ->
          let data = Bytes.of_string s in
          match (replace, !model) with
          | true, (h, _) :: rest ->
              let h' = A.set a h data in
              model := (h', data) :: rest
          | _ -> model := (A.add a data, data) :: !model)
        ops;
      List.for_all (fun (h, v) -> A.get a h = v) !model)

let test_size () =
  Alcotest.(check int) "kib" 8192 (Size.kib 8);
  Alcotest.(check int) "mib" (1024 * 1024) (Size.mib 1);
  Alcotest.(check string) "pp KB" "128.0 KB" (Format.asprintf "%a" Size.pp_bytes (Size.kib 128))

(* Property tests *)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile stays within sample bounds" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      QCheck.assume (Array.length xs > 0);
      let v = Stats.percentile xs p in
      let s = Stats.summarize xs in
      v >= s.Stats.min -. 1e-9 && v <= s.Stats.max +. 1e-9)

let prop_gini_range =
  QCheck.Test.make ~name:"gini in [0,1)" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let g = Stats.gini xs in
      g >= -1e-9 && g < 1.0)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves elements" ~count:100
    QCheck.(pair small_int (array small_int))
    (fun (seed, a) ->
      let b = Array.copy a in
      Rng.shuffle (Rng.of_int seed) b;
      let sa = Array.copy a and sb = Array.copy b in
      Array.sort compare sa;
      Array.sort compare sb;
      sa = sb)

let () =
  Alcotest.run "ipl_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers;
          Alcotest.test_case "nurand range" `Quick test_rng_nurand_range;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "tpcc last name" `Quick test_rng_last_name;
          Alcotest.test_case "random strings" `Quick test_rng_strings;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "gini" `Quick test_stats_gini;
          Alcotest.test_case "empty raises" `Quick test_stats_empty;
          QCheck_alcotest.to_alcotest prop_percentile_bounds;
          QCheck_alcotest.to_alcotest prop_gini_range;
          QCheck_alcotest.to_alcotest prop_shuffle_preserves_multiset;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic counts" `Quick test_histogram_basic;
          Alcotest.test_case "top-k" `Quick test_histogram_top;
          Alcotest.test_case "counts desc" `Quick test_histogram_counts_desc;
        ] );
      ( "diff",
        [
          Alcotest.test_case "minimal range" `Quick test_diff_minimal_range;
          Alcotest.test_case "multi ranges" `Quick test_diff_ranges;
          QCheck_alcotest.to_alcotest prop_diff_ranges_reconstruct;
        ] );
      ( "byte arena",
        [
          Alcotest.test_case "roundtrip" `Quick test_arena_roundtrip;
          Alcotest.test_case "set in place / grow" `Quick test_arena_set_in_place_and_grow;
          Alcotest.test_case "chunk boundaries" `Quick test_arena_chunk_boundaries;
          Alcotest.test_case "limits" `Quick test_arena_limits;
          QCheck_alcotest.to_alcotest prop_arena_model;
        ] );
      ("size", [ Alcotest.test_case "constants and pp" `Quick test_size ]);
    ]
