(* Tests of the observability layer (lib/obs): JSON round-trips, the
   trace ring buffer, latency histograms, the Stats_intf retrofit, the
   typed engine errors, and a deterministic traced workload whose event
   counts must agree with the storage-manager counters. *)

module Json = Ipl_util.Json
module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module Engine = Ipl_core.Ipl_engine
module Config = Ipl_core.Ipl_config
module Store = Ipl_core.Ipl_storage
module Bench = Workload.Obs_bench

(* Compile-time satellite check: all four stats records implement the
   common signature. *)
module _ : Ipl_util.Stats_intf.S with type t = Flash_sim.Flash_stats.t = Flash_sim.Flash_stats
module _ : Ipl_util.Stats_intf.S with type t = Store.stats = Store.Stats
module _ : Ipl_util.Stats_intf.S with type t = Bufmgr.Buffer_pool.stats = Bufmgr.Buffer_pool.Stats
module _ : Ipl_util.Stats_intf.S with type t = Engine.combined_stats = Engine.Stats

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let roundtrip v =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "reparse failed: %s (input %s)" e (Json.to_string v)

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 0.25;
      Json.Float 1e-9;
      Json.Float 6.4e-4;
      Json.Float (-3.5);
      Json.Float 1.0;
      Json.String "";
      Json.String "plain";
      Json.String "quote \" backslash \\ newline \n tab \t";
      Json.List [];
      Json.List [ Json.Int 1; Json.String "two"; Json.Null ];
      Json.Obj [];
      Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool false ]) ];
    ]
  in
  List.iter
    (fun v ->
      let v' = roundtrip v in
      if v <> v' then
        Alcotest.failf "round-trip changed %s into %s" (Json.to_string v) (Json.to_string v'))
    samples;
  (* Nested structure through the pretty-printer too. *)
  let v = Json.Obj [ ("xs", Json.List [ Json.Float 0.5; Json.Int 3 ]) ] in
  (match Json.of_string (Format.asprintf "%a" Json.pp v) with
  | Ok v' -> Alcotest.(check bool) "pp round-trip" true (v = v')
  | Error e -> Alcotest.failf "pp reparse failed: %s" e);
  (* Parser rejects garbage. *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ]

let test_json_accessors () =
  let v = Json.Obj [ ("n", Json.Int 3); ("f", Json.Float 0.5); ("l", Json.List [ Json.Int 1 ]) ] in
  Alcotest.(check (option int)) "member int" (Some 3) (Option.bind (Json.member "n" v) Json.to_int);
  Alcotest.(check bool) "missing member" true (Json.member "zzz" v = None);
  Alcotest.(check (option (float 1e-9)))
    "float" (Some 0.5)
    (Option.bind (Json.member "f" v) Json.to_float)

(* ------------------------------------------------------------------ *)
(* Tracer ring buffer                                                  *)

let test_tracer_ring () =
  let tr = Obs.Tracer.create ~capacity:4 () in
  Alcotest.(check int) "empty length" 0 (Obs.Tracer.length tr);
  for i = 0 to 9 do
    Obs.Tracer.emit tr ~time:(float_of_int i) (Obs.Event.Evict { page = i })
  done;
  Alcotest.(check int) "emitted" 10 (Obs.Tracer.emitted tr);
  Alcotest.(check int) "length capped" 4 (Obs.Tracer.length tr);
  Alcotest.(check int) "dropped" 6 (Obs.Tracer.dropped tr);
  (* Oldest-first iteration over the survivors (6,7,8,9). *)
  let seqs = List.map (fun (e : Obs.Tracer.entry) -> e.Obs.Tracer.seq) (Obs.Tracer.to_list tr) in
  Alcotest.(check (list int)) "survivors in order" [ 6; 7; 8; 9 ] seqs;
  Alcotest.(check int) "count_kind" 4 (Obs.Tracer.count_kind tr "evict");
  Obs.Tracer.clear tr;
  Alcotest.(check int) "cleared" 0 (Obs.Tracer.length tr);
  Alcotest.(check int) "clear resets emitted" 0 (Obs.Tracer.emitted tr)

let test_event_json () =
  let ev = Obs.Event.Merge { eu = 3; new_eu = 7; applied = 10; carried = 2; dropped = 1 } in
  let j = Obs.Event.to_json ev in
  Alcotest.(check (option string))
    "kind field" (Some "merge")
    (Option.bind (Json.member "kind" j) (function Json.String s -> Some s | _ -> None));
  Alcotest.(check (option int)) "payload" (Some 7) (Option.bind (Json.member "new_eu" j) Json.to_int);
  (* Every declared kind tag is distinct and covered by [kinds]. *)
  Alcotest.(check int) "kinds distinct" (List.length Obs.Event.kinds)
    (List.length (List.sort_uniq compare Obs.Event.kinds));
  Alcotest.(check bool) "kind listed" true (List.mem (Obs.Event.kind ev) Obs.Event.kinds)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_metrics () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "ops" in
  Obs.Metrics.Counter.incr c;
  Obs.Metrics.Counter.add c 4;
  Alcotest.(check int) "counter" 5 (Obs.Metrics.Counter.value c);
  let h = Obs.Metrics.latency m "lat" in
  List.iter (Obs.Metrics.Latency.observe h) [ 1e-6; 2e-6; 4e-6; 1e-3 ];
  Alcotest.(check int) "histogram count" 4 (Obs.Metrics.Latency.count h);
  Alcotest.(check (float 1e-12)) "sum" 1.007e-3 (Obs.Metrics.Latency.sum h);
  Alcotest.(check (float 1e-12)) "min" 1e-6 (Obs.Metrics.Latency.min_seconds h);
  Alcotest.(check (float 1e-12)) "max" 1e-3 (Obs.Metrics.Latency.max_seconds h);
  let p50 = Obs.Metrics.Latency.percentile h 0.50 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 %g within the low microseconds" p50)
    true
    (p50 >= 1e-6 && p50 <= 8e-6);
  let p99 = Obs.Metrics.Latency.percentile h 0.99 in
  Alcotest.(check bool) "p99 reaches the top observation" true (p99 >= 1e-3);
  (* Same name returns the same instrument; kind clash rejected. *)
  Alcotest.(check bool) "get-or-create" true (Obs.Metrics.latency m "lat" == h);
  (match Obs.Metrics.counter m "lat" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash not rejected");
  (* Registry JSON reparses and holds both instruments. *)
  let j = roundtrip (Obs.Metrics.to_json m) in
  Alcotest.(check (option int))
    "counter in json" (Some 5)
    (Option.bind (Json.member "counters" j) (fun o -> Option.bind (Json.member "ops" o) Json.to_int));
  Alcotest.(check bool)
    "histogram in json" true
    (Option.bind (Json.member "histograms" j) (Json.member "lat") <> None)

(* ------------------------------------------------------------------ *)
(* Traced engine workload                                              *)

let test_traced_workload () =
  let chip = Chip.create (FConfig.default ~num_blocks:64 ()) in
  let config = { Config.default with Config.recovery_enabled = true; buffer_pages = 8 } in
  let engine = Engine.create ~config chip in
  let tracer = Obs.Tracer.create ~capacity:65536 () in
  Engine.set_tracer engine (Some tracer);
  (* Engine.create already erased blocks while laying out the log regions,
     before the tracer existed — compare deltas from here on. *)
  let erases0 = (Chip.stats chip).Flash_sim.Flash_stats.block_erases in
  let pages = Array.init 4 (fun _ -> Engine.Unsafe.allocate_page engine) in
  let payload = Bytes.make 100 'x' in
  for round = 1 to 40 do
    let tx = Engine.Unsafe.begin_txn engine in
    Array.iter
      (fun p ->
        match Engine.Unsafe.insert engine ~tx ~page:p payload with Ok _ | Error _ -> ())
      pages;
    if round mod 5 = 0 then Engine.Unsafe.abort engine tx else Engine.Unsafe.commit engine tx
  done;
  Engine.Unsafe.checkpoint engine;
  let s = (Engine.stats engine).Engine.storage in
  let count = Obs.Tracer.count_kind tracer in
  Alcotest.(check int) "nothing dropped" 0 (Obs.Tracer.dropped tracer);
  Alcotest.(check int) "page_alloc events" s.Store.pages_allocated (count "page_alloc");
  (* The stats counter also covers the raw data-page reads a merge does
     internally, so the logical Page_read events are a lower bound. *)
  Alcotest.(check bool)
    "page_read events bounded by the stats counter" true
    (count "page_read" > 0 && count "page_read" <= s.Store.page_reads);
  Alcotest.(check int) "log_flush events" s.Store.log_sector_writes (count "log_flush");
  Alcotest.(check int) "merge events" s.Store.merges (count "merge");
  Alcotest.(check int) "overflow events" s.Store.overflow_diversions (count "overflow_diversion");
  Alcotest.(check int) "commit events" 32 (count "commit");
  Alcotest.(check int) "abort events" 8 (count "abort");
  let fl = Chip.stats chip in
  Alcotest.(check int)
    "erase events" (fl.Flash_sim.Flash_stats.block_erases - erases0) (count "erase_block");
  (* Timestamps never decrease (simulated clock). *)
  let last = ref neg_infinity in
  Obs.Tracer.iter
    (fun (e : Obs.Tracer.entry) ->
      if e.Obs.Tracer.time < !last then Alcotest.fail "timestamps went backwards";
      last := e.Obs.Tracer.time)
    tracer;
  (* Detaching stops emission. *)
  let before = Obs.Tracer.emitted tracer in
  Engine.set_tracer engine None;
  ignore (Engine.Unsafe.allocate_page engine);
  Engine.Unsafe.checkpoint engine;
  Alcotest.(check int) "detached" before (Obs.Tracer.emitted tracer)

(* Same spec twice → identical trace (simulated time, seeded Rng). *)
let test_workload_deterministic () =
  let spec = { Bench.quick with Bench.transactions = 30 } in
  let fingerprint () =
    let r = Bench.run ~spec () in
    Obs.Tracer.fold
      (fun acc (e : Obs.Tracer.entry) ->
        Format.asprintf "%s;%d@%f:%a" acc e.Obs.Tracer.seq e.Obs.Tracer.time Obs.Event.pp
          e.Obs.Tracer.event)
      r.Bench.tracer ""
  in
  Alcotest.(check string) "identical traces" (fingerprint ()) (fingerprint ())

(* ------------------------------------------------------------------ *)
(* BENCH_ipl.json schema                                               *)

let test_bench_json_schema () =
  let r = Bench.run ~spec:{ Bench.quick with Bench.transactions = 25 } () in
  let j = roundtrip r.Bench.json in
  Alcotest.(check (option string))
    "schema tag" (Some Bench.schema_version)
    (Option.bind (Json.member "schema" j) (function Json.String s -> Some s | _ -> None));
  let backends =
    match Json.member "backends" j with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "backends missing"
  in
  let name b =
    match Json.member "name" b with Some (Json.String s) -> s | _ -> Alcotest.fail "unnamed"
  in
  Alcotest.(check (list string)) "backend order" [ "ipl"; "lfs"; "inplace" ]
    (List.map name backends);
  let ipl = List.hd backends in
  List.iter
    (fun op ->
      let h = Option.bind (Json.member "ops" ipl) (Json.member op) in
      match Option.bind h (fun h -> Option.bind (Json.member "count" h) Json.to_int) with
      | Some n when n >= 0 -> ()
      | _ -> Alcotest.failf "ipl ops.%s.count missing" op)
    [ "insert"; "update"; "delete"; "commit" ];
  List.iter
    (fun key ->
      if Json.member key ipl = None then Alcotest.failf "ipl %s summary missing" key)
    [ "storage"; "pool"; "flash" ];
  List.iter
    (fun b ->
      match Option.bind (Json.member "ops" b) (Json.member "write_page") with
      | Some _ -> ()
      | None -> Alcotest.failf "%s write_page histogram missing" (name b))
    (List.tl backends);
  (* Merge/overflow/wear summaries present with sane values. *)
  let int_at path obj =
    match Option.bind path (fun o -> Option.bind (Json.member obj o) Json.to_int) with
    | Some n -> n
    | None -> Alcotest.failf "missing %s" obj
  in
  let storage = Json.member "storage" ipl in
  Alcotest.(check bool) "merges >= 0" true (int_at storage "merges" >= 0);
  Alcotest.(check bool) "overflow >= 0" true (int_at storage "overflow_diversions" >= 0);
  (match Option.bind (Json.member "flash" ipl) (Json.member "max_wear") with
  | Some _ -> ()
  | None -> Alcotest.fail "flash max_wear missing");
  match Option.bind (Json.member "trace" j) (Json.member "dropped") with
  | Some (Json.Int 0) -> ()
  | _ -> Alcotest.fail "trace dropped events (capacity too small)"

(* ------------------------------------------------------------------ *)
(* Stats_intf retrofit                                                 *)

let test_stats_interval () =
  let chip = Chip.create (FConfig.default ~num_blocks:64 ()) in
  let config = { Config.default with Config.buffer_pages = 8 } in
  let engine = Engine.create ~config chip in
  let page = Engine.Unsafe.allocate_page engine in
  let before = Engine.stats engine in
  for _ = 1 to 200 do
    match Engine.Unsafe.insert engine ~tx:0 ~page (Bytes.make 40 'y') with Ok _ | Error _ -> ()
  done;
  Engine.Unsafe.checkpoint engine;
  let interval = Engine.Stats.diff (Engine.stats engine) before in
  Alcotest.(check bool)
    "interval counts only new work" true
    (interval.Engine.storage.Store.log_sector_writes > 0
    && interval.Engine.storage.Store.pages_allocated = 0);
  (* add(diff(b,a), a) = b on a few load-bearing fields. *)
  let back = Engine.Stats.add before interval in
  let now = Engine.stats engine in
  Alcotest.(check int) "add inverts diff (flash writes)"
    now.Engine.flash.Flash_sim.Flash_stats.page_writes
    back.Engine.flash.Flash_sim.Flash_stats.page_writes;
  Alcotest.(check int) "add inverts diff (pool misses)"
    now.Engine.pool.Bufmgr.Buffer_pool.misses back.Engine.pool.Bufmgr.Buffer_pool.misses;
  (* zero is the identity; JSON renders all three layers and reparses. *)
  let z = Engine.Stats.add Engine.Stats.zero Engine.Stats.zero in
  Alcotest.(check int) "zero" 0 z.Engine.storage.Store.merges;
  let j = roundtrip (Engine.Stats.to_json now) in
  List.iter
    (fun k -> if Json.member k j = None then Alcotest.failf "combined json misses %s" k)
    [ "storage"; "pool"; "flash" ];
  ignore (Format.asprintf "%a" Engine.Stats.pp now)

(* ------------------------------------------------------------------ *)
(* Typed errors                                                        *)

let test_typed_errors () =
  let chip = Chip.create (FConfig.default ~num_blocks:64 ()) in
  let engine = Engine.create chip in
  let page = Engine.Unsafe.allocate_page engine in
  (match Engine.Unsafe.delete engine ~tx:0 ~page ~slot:5 with
  | Error Engine.No_such_slot -> ()
  | _ -> Alcotest.fail "expected No_such_slot");
  (match Engine.Unsafe.insert engine ~tx:0 ~page (Bytes.make (Engine.max_record_payload engine + 1) 'z') with
  | Error Engine.Record_too_large -> ()
  | _ -> Alcotest.fail "expected Record_too_large");
  (match Engine.Unsafe.insert engine ~tx:0 ~page (Bytes.make 10 'a') with
  | Ok slot -> (
      match Engine.Unsafe.update_range engine ~tx:0 ~page ~slot ~offset:8 (Bytes.make 10 'b') with
      | Error Engine.Range_out_of_bounds -> ()
      | _ -> Alcotest.fail "expected Range_out_of_bounds")
  | Error e -> Alcotest.failf "setup insert failed: %s" (Engine.error_to_string e));
  (* The legacy strings are preserved verbatim. *)
  Alcotest.(check string) "page full" "page full" (Engine.error_to_string Engine.Page_full);
  Alcotest.(check string) "slot not live" "slot not live"
    (Engine.error_to_string Engine.No_such_slot);
  Alcotest.(check string) "pp agrees" (Engine.error_to_string Engine.Range_too_large)
    (Format.asprintf "%a" Engine.pp_error Engine.Range_too_large)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "ring buffer" `Quick test_tracer_ring;
          Alcotest.test_case "event json" `Quick test_event_json;
        ] );
      ("metrics", [ Alcotest.test_case "counters and histograms" `Quick test_metrics ]);
      ( "engine",
        [
          Alcotest.test_case "traced workload" `Quick test_traced_workload;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "stats interval" `Quick test_stats_interval;
          Alcotest.test_case "typed errors" `Quick test_typed_errors;
        ] );
      ("bench", [ Alcotest.test_case "json schema" `Quick test_bench_json_schema ]);
    ]
