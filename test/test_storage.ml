(* Tests for slotted pages and the record codec. *)

module Page = Storage.Page
module Record = Storage.Record

let mk () = Page.create 8192

let bytes_of_string = Bytes.of_string

let test_empty_page () =
  let p = mk () in
  Alcotest.(check int) "size" 8192 (Page.size p);
  Alcotest.(check int) "slots" 0 (Page.slot_count p);
  Alcotest.(check int) "live" 0 (Page.live_records p);
  Alcotest.(check bool) "slot 0 not live" false (Page.is_live p 0)

let test_insert_read () =
  let p = mk () in
  let s1 = Option.get (Page.insert p (bytes_of_string "hello")) in
  let s2 = Option.get (Page.insert p (bytes_of_string "world!")) in
  Alcotest.(check int) "first slot" 0 s1;
  Alcotest.(check int) "second slot" 1 s2;
  Alcotest.(check (option bytes)) "read 0" (Some (bytes_of_string "hello")) (Page.read p 0);
  Alcotest.(check (option bytes)) "read 1" (Some (bytes_of_string "world!")) (Page.read p 1);
  Alcotest.(check int) "live" 2 (Page.live_records p)

let test_delete_and_slot_reuse () =
  let p = mk () in
  ignore (Page.insert p (bytes_of_string "a"));
  ignore (Page.insert p (bytes_of_string "b"));
  Alcotest.(check (result unit string)) "delete ok" (Ok ()) (Page.delete p 0);
  Alcotest.(check (option bytes)) "deleted" None (Page.read p 0);
  Alcotest.(check int) "live" 1 (Page.live_records p);
  (* The freed slot is reused. *)
  let s = Option.get (Page.insert p (bytes_of_string "c")) in
  Alcotest.(check int) "slot reused" 0 s;
  Alcotest.(check (result unit string)) "double delete fails" (Error "slot not live")
    (Page.delete p 5)

let test_update_in_place_and_relocating () =
  let p = mk () in
  ignore (Page.insert p (bytes_of_string "abcdef"));
  (* Shrinking update stays in place. *)
  Alcotest.(check (result unit string)) "shrink" (Ok ()) (Page.update p 0 (bytes_of_string "xy"));
  Alcotest.(check (option bytes)) "shrunk" (Some (bytes_of_string "xy")) (Page.read p 0);
  (* Growing update relocates. *)
  Alcotest.(check (result unit string)) "grow" (Ok ())
    (Page.update p 0 (bytes_of_string "0123456789"));
  Alcotest.(check (option bytes)) "grown" (Some (bytes_of_string "0123456789")) (Page.read p 0);
  Alcotest.(check (result unit string)) "update dead slot" (Error "slot not live")
    (Page.update p 3 (bytes_of_string "z"))

let test_update_bytes () =
  let p = mk () in
  ignore (Page.insert p (bytes_of_string "abcdefgh"));
  Alcotest.(check (result unit string)) "patch" (Ok ())
    (Page.update_bytes p ~slot:0 ~offset:2 (bytes_of_string "XY"));
  Alcotest.(check (option bytes)) "patched" (Some (bytes_of_string "abXYefgh")) (Page.read p 0);
  Alcotest.(check (result unit string)) "out of range" (Error "range outside record")
    (Page.update_bytes p ~slot:0 ~offset:7 (bytes_of_string "XY"))

let test_insert_at () =
  let p = mk () in
  Alcotest.(check (result unit string)) "insert at 3" (Ok ())
    (Page.insert_at p 3 (bytes_of_string "three"));
  Alcotest.(check int) "slot count extended" 4 (Page.slot_count p);
  Alcotest.(check (option bytes)) "read back" (Some (bytes_of_string "three")) (Page.read p 3);
  Alcotest.(check bool) "intermediate empty" false (Page.is_live p 1);
  Alcotest.(check (result unit string)) "occupied" (Error "slot already live")
    (Page.insert_at p 3 (bytes_of_string "x"));
  (* Replay-style: fill an intermediate slot later. *)
  Alcotest.(check (result unit string)) "fill hole" (Ok ())
    (Page.insert_at p 1 (bytes_of_string "one"))

let test_fill_until_full () =
  let p = Page.create 512 in
  let payload = Bytes.make 60 'r' in
  let rec fill n = match Page.insert p payload with Some _ -> fill (n + 1) | None -> n in
  let n = fill 0 in
  (* 512 bytes: 8 header + n*(60+4) <= 512 -> n = 7 *)
  Alcotest.(check int) "records fitted" 7 n;
  Alcotest.(check bool) "free space too small" true (Page.free_space p < 60)

let test_compaction_reclaims () =
  let p = Page.create 512 in
  let payload = Bytes.make 60 'r' in
  for _ = 1 to 7 do
    ignore (Page.insert p payload)
  done;
  (* Delete every other record, then a 100-byte record must fit via
     compaction. *)
  List.iter (fun i -> ignore (Page.delete p i)) [ 0; 2; 4 ];
  let big = Bytes.make 100 'B' in
  (match Page.insert p big with
  | Some _ -> ()
  | None -> Alcotest.fail "insert after compaction should fit");
  Alcotest.(check (option bytes)) "old record intact" (Some payload) (Page.read p 1)

let test_compact_preserves_content () =
  let p = mk () in
  for i = 0 to 19 do
    ignore (Page.insert p (Bytes.make (10 + i) (Char.chr (65 + i))))
  done;
  List.iter (fun i -> ignore (Page.delete p i)) [ 1; 5; 9; 13 ];
  let before = Page.copy p in
  Page.compact p;
  Alcotest.(check bool) "content equal" true (Page.equal_content before p)

let test_serialization_roundtrip () =
  let p = mk () in
  ignore (Page.insert p (bytes_of_string "persist me"));
  let q = Page.of_bytes (Bytes.copy (Page.to_bytes p)) in
  Alcotest.(check bool) "roundtrip equal" true (Page.equal_content p q)

let test_bad_magic () =
  Alcotest.check_raises "bad magic" (Invalid_argument "Page.of_bytes: bad magic") (fun () ->
      ignore (Page.of_bytes (Bytes.make 512 '\000')))

let test_iter () =
  let p = mk () in
  ignore (Page.insert p (bytes_of_string "a"));
  ignore (Page.insert p (bytes_of_string "b"));
  ignore (Page.delete p 0);
  let seen = ref [] in
  Page.iter (fun slot data -> seen := (slot, Bytes.to_string data) :: !seen) p;
  Alcotest.(check (list (pair int string))) "live only" [ (1, "b") ] !seen

(* Property: a random sequence of inserts/updates/deletes tracked against a
   model Hashtbl always matches the page contents. *)
let prop_page_vs_model =
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (4, map (fun s -> `Insert s) (string_size (int_range 1 40)));
          (2, map2 (fun i s -> `Update (i, s)) (int_bound 30) (string_size (int_range 1 40)));
          (2, map (fun i -> `Delete i) (int_bound 30));
        ])
  in
  QCheck.Test.make ~name:"page matches model under random ops" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 60) gen_op))
    (fun ops ->
      let p = Page.create 4096 in
      let model : (int, string) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun op ->
          match op with
          | `Insert s -> (
              match Page.insert p (bytes_of_string s) with
              | Some slot -> Hashtbl.replace model slot s
              | None -> ())
          | `Update (slot, s) -> (
              match Page.update p slot (bytes_of_string s) with
              | Ok () ->
                  assert (Hashtbl.mem model slot);
                  Hashtbl.replace model slot s
              | Error _ -> assert (not (Hashtbl.mem model slot)))
          | `Delete slot -> (
              match Page.delete p slot with
              | Ok () ->
                  assert (Hashtbl.mem model slot);
                  Hashtbl.remove model slot
              | Error _ -> assert (not (Hashtbl.mem model slot))))
        ops;
      (* Compare. *)
      Hashtbl.iter
        (fun slot s ->
          match Page.read p slot with
          | Some data -> assert (Bytes.to_string data = s)
          | None -> assert false)
        model;
      Page.live_records p = Hashtbl.length model)

let test_record_roundtrip () =
  let row = Record.[ I 42; S "hello"; F 3.25; I (-7); S "" ] in
  let b = Record.encode row in
  Alcotest.(check int) "size" (Record.encoded_size row) (Bytes.length b);
  let row' = Record.decode b in
  Alcotest.(check bool) "roundtrip" true (row = row')

let test_record_accessors () =
  let row = Record.[ I 1; S "two"; F 3.0 ] in
  Alcotest.(check int) "int" 1 (Record.get_int row 0);
  Alcotest.(check string) "string" "two" (Record.get_string row 1);
  Alcotest.(check (float 0.0)) "float" 3.0 (Record.get_float row 2);
  let row' = Record.set row 0 (Record.I 9) in
  Alcotest.(check int) "set" 9 (Record.get_int row' 0);
  Alcotest.check_raises "type error" (Invalid_argument "Record.get_int: not an int")
    (fun () -> ignore (Record.get_int row 1))

let test_record_malformed () =
  Alcotest.check_raises "unknown tag" (Invalid_argument "Record.decode: unknown tag")
    (fun () -> ignore (Record.decode (Bytes.make 3 '\009')));
  Alcotest.check_raises "truncated" (Invalid_argument "Record.decode: truncated int")
    (fun () -> ignore (Record.decode (Bytes.make 4 '\000')))

let prop_record_roundtrip =
  let gen_field =
    QCheck.Gen.(
      frequency
        [
          (3, map (fun n -> Record.I n) int);
          (1, map (fun f -> Record.F f) (float_bound_exclusive 1e12));
          (3, map (fun s -> Record.S s) (string_size (int_range 0 100)));
        ])
  in
  QCheck.Test.make ~name:"record codec roundtrips" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 20) gen_field))
    (fun row -> Record.decode (Record.encode row) = row)

let () =
  Alcotest.run "storage"
    [
      ( "page",
        [
          Alcotest.test_case "empty page" `Quick test_empty_page;
          Alcotest.test_case "insert/read" `Quick test_insert_read;
          Alcotest.test_case "delete & slot reuse" `Quick test_delete_and_slot_reuse;
          Alcotest.test_case "update in place & relocate" `Quick test_update_in_place_and_relocating;
          Alcotest.test_case "byte-range update" `Quick test_update_bytes;
          Alcotest.test_case "insert_at (replay)" `Quick test_insert_at;
          Alcotest.test_case "fill until full" `Quick test_fill_until_full;
          Alcotest.test_case "compaction reclaims" `Quick test_compaction_reclaims;
          Alcotest.test_case "compact preserves content" `Quick test_compact_preserves_content;
          Alcotest.test_case "serialization roundtrip" `Quick test_serialization_roundtrip;
          Alcotest.test_case "bad magic rejected" `Quick test_bad_magic;
          Alcotest.test_case "iter over live" `Quick test_iter;
          QCheck_alcotest.to_alcotest prop_page_vs_model;
        ] );
      ( "record",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "accessors" `Quick test_record_accessors;
          Alcotest.test_case "malformed input" `Quick test_record_malformed;
          QCheck_alcotest.to_alcotest prop_record_roundtrip;
        ] );
    ]
