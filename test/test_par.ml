(* lib/par: the domain pool's ordering/failure semantics, the jobs
   knob, and — the contract everything else leans on — that every
   parallel consumer (crash campaign, bench, restart sweep) produces
   output identical to its serial run for any job count. *)

module Pool = Par.Domain_pool
module Json = Ipl_util.Json

let sq i = (i * i) + 1

(* ---------------- Domain_pool ---------------- *)

let test_map_order () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let src = Array.init 100 Fun.id in
  Alcotest.(check (array int))
    "results in submission order" (Array.map sq src)
    (Pool.parallel_map pool sq src)

let test_jobs1_identity () =
  Pool.with_pool ~jobs:1 @@ fun pool ->
  Alcotest.(check int) "jobs accessor" 1 (Pool.jobs pool);
  let src = Array.init 17 Fun.id in
  Alcotest.(check (array int))
    "jobs=1 equals Array.map" (Array.map sq src)
    (Pool.parallel_map pool sq src)

let test_edge_sizes () =
  Pool.with_pool ~jobs:3 @@ fun pool ->
  Alcotest.(check (array int)) "empty" [||] (Pool.parallel_map pool sq [||]);
  Alcotest.(check (array int)) "singleton" [| sq 9 |] (Pool.parallel_map pool sq [| 9 |])

let test_parallel_for () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let cells = Array.make 64 0 in
  (* Each index is written by exactly one task and read only after the
     batch completes — the same publication argument as the result
     cells inside the pool. *)
  Pool.parallel_for pool ~lo:0 ~hi:64 (fun i -> cells.(i) <- sq i);
  Alcotest.(check (array int)) "every index ran once" (Array.init 64 sq) cells

let test_exception_lowest_index () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let f i = if i mod 5 = 3 then failwith (string_of_int i) else i in
  (match Pool.parallel_map pool f (Array.init 32 Fun.id) with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
      Alcotest.(check string) "lowest failing index wins, as in Array.map" "3" msg);
  (* A failed batch must leave the pool serviceable. *)
  Alcotest.(check (array int))
    "pool reusable after failure" [| 2; 3; 4 |]
    (Pool.parallel_map pool succ [| 1; 2; 3 |])

let test_nested_refused () =
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let refused =
    Pool.parallel_map pool
      (fun _ ->
        match Pool.parallel_map pool Fun.id [| 0; 1 |] with
        | _ -> false
        | exception Pool.Nested_parallelism -> true)
      (Array.init 6 Fun.id)
  in
  Alcotest.(check bool)
    "a task may not drive a pool, whichever domain runs it" true
    (Array.for_all Fun.id refused)

let test_create_invalid () =
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Domain_pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0 : Pool.t))

let test_with_pool_result () =
  Alcotest.(check int) "with_pool returns f's value" 42 (Pool.with_pool ~jobs:2 (fun _ -> 42));
  (* shutdown is idempotent: with_pool already shut it down. *)
  let p = Pool.create ~jobs:2 in
  Pool.shutdown p;
  Pool.shutdown p

(* ---------------- Par_config ---------------- *)

let test_config () =
  Alcotest.(check int) "clamp floor" 1 (Par.Par_config.clamp 0);
  Alcotest.(check int) "clamp identity at 1" 1 (Par.Par_config.clamp 1);
  Alcotest.(check int) "clamp ceiling"
    (Par.Par_config.recommended ())
    (Par.Par_config.clamp max_int);
  Alcotest.(check int) "cli wins over env/default"
    (Par.Par_config.clamp 3)
    (Par.Par_config.resolve ~cli:3 ());
  Alcotest.(check bool) "resolve is always >= 1" true (Par.Par_config.resolve () >= 1)

(* ---------------- determinism: crash campaigns ---------------- *)

let campaign_spec = { Fault.Workload.default with transactions = 30; pages = 4 }

let test_campaign_jobs_equal () =
  let serial = Fault.Campaign.run ~sample:10 ~jobs:1 campaign_spec in
  let par = Fault.Campaign.run ~sample:10 ~jobs:4 campaign_spec in
  Alcotest.(check bool) "sweep found crash points" true (serial.Fault.Campaign.crash_points > 0);
  Alcotest.(check bool) "report identical at jobs=4" true (serial = par)

let test_campaign_concurrent_jobs_equal () =
  let serial = Fault.Campaign.run_concurrent ~sample:8 ~sessions:4 ~jobs:1 campaign_spec in
  let par = Fault.Campaign.run_concurrent ~sample:8 ~sessions:4 ~jobs:4 campaign_spec in
  Alcotest.(check bool) "sweep found crash points" true (serial.Fault.Campaign.crash_points > 0);
  Alcotest.(check bool) "concurrent report identical at jobs=4" true (serial = par)

(* ---------------- determinism: bench JSON ---------------- *)

(* Everything machine-dependent lives under wall_clock; the rest of the
   document — including the logical digest and the concurrency section
   with its latency percentiles — must be byte-stable across job
   counts. *)
let strip_wall_clock = function
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "wall_clock") fields)
  | j -> j

let bench_spec = { Workload.Obs_bench.quick with transactions = 60; sessions = 4 }

let bench_doc ~jobs spec =
  Json.to_string (strip_wall_clock (Workload.Obs_bench.run ~spec ~jobs ()).Workload.Obs_bench.json)

let test_bench_jobs_equal () =
  Alcotest.(check string)
    "bench JSON (minus wall_clock) identical at jobs=4" (bench_doc ~jobs:1 bench_spec)
    (bench_doc ~jobs:4 bench_spec)

let test_bench_concurrency_modes () =
  let conc ~sessions =
    let spec = { Workload.Obs_bench.quick with transactions = 40; sessions } in
    let t = Workload.Obs_bench.run ~spec ~jobs:2 () in
    match Json.member "concurrency" t.Workload.Obs_bench.json with
    | Some (Json.Obj fields) -> fields
    | _ -> Alcotest.fail "concurrency section missing"
  in
  let serial = conc ~sessions:0 in
  Alcotest.(check (list string))
    "serial mode reports only what is meaningful"
    [ "mode"; "sessions"; "committed"; "aborted" ]
    (List.map fst serial);
  Alcotest.(check bool) "serial mode tag" true
    (List.assoc "mode" serial = Json.String "serial");
  let sessions = conc ~sessions:4 in
  Alcotest.(check bool) "sessions mode tag" true
    (List.assoc "mode" sessions = Json.String "sessions");
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present in sessions mode") true (List.mem_assoc k sessions))
    [ "commit_batches"; "commit_latency"; "per_session" ];
  match List.assoc "commit_latency" sessions with
  | Json.Obj lat ->
      List.iter
        (fun k ->
          Alcotest.(check bool) ("latency field " ^ k) true (List.mem_assoc k lat))
        [ "count"; "mean_s"; "p50_s"; "p90_s"; "p99_s" ]
  | _ -> Alcotest.fail "commit_latency is not an object"

let test_restart_bench_jobs_equal () =
  Alcotest.(check bool) "restart sweep identical at jobs=3" true
    (Workload.Restart_bench.run ~jobs:1 () = Workload.Restart_bench.run ~jobs:3 ())

(* ---------------- QCheck: job-count independence ---------------- *)

let prop_campaign_job_independent =
  QCheck.Test.make ~name:"campaign report does not depend on job count or seed" ~count:4
    QCheck.(pair (int_range 2 4) (int_range 0 1000))
    (fun (jobs, seed) ->
      let spec = { Fault.Workload.default with seed; transactions = 16; pages = 3 } in
      Fault.Campaign.run ~sample:6 ~jobs spec = Fault.Campaign.run ~sample:6 ~jobs:1 spec)

let prop_pool_matches_array_map =
  QCheck.Test.make ~name:"parallel_map equals Array.map for any jobs and input" ~count:30
    QCheck.(pair (int_range 1 5) (small_list small_int))
    (fun (jobs, xs) ->
      let src = Array.of_list xs in
      Pool.with_pool ~jobs (fun pool ->
          Pool.parallel_map pool sq src = Array.map sq src))

let () =
  Alcotest.run "par"
    [
      ( "domain pool",
        [
          Alcotest.test_case "submission-order results" `Quick test_map_order;
          Alcotest.test_case "jobs=1 identity" `Quick test_jobs1_identity;
          Alcotest.test_case "empty and singleton" `Quick test_edge_sizes;
          Alcotest.test_case "parallel_for covers the range" `Quick test_parallel_for;
          Alcotest.test_case "lowest-index exception, pool reusable" `Quick
            test_exception_lowest_index;
          Alcotest.test_case "nested use refused" `Quick test_nested_refused;
          Alcotest.test_case "jobs=0 rejected" `Quick test_create_invalid;
          Alcotest.test_case "with_pool result and idempotent shutdown" `Quick
            test_with_pool_result;
          QCheck_alcotest.to_alcotest prop_pool_matches_array_map;
        ] );
      ("config", [ Alcotest.test_case "clamp and resolve" `Quick test_config ]);
      ( "determinism",
        [
          Alcotest.test_case "campaign report jobs=4 == jobs=1" `Quick test_campaign_jobs_equal;
          Alcotest.test_case "concurrent campaign jobs=4 == jobs=1" `Quick
            test_campaign_concurrent_jobs_equal;
          Alcotest.test_case "bench JSON jobs=4 == jobs=1" `Quick test_bench_jobs_equal;
          Alcotest.test_case "concurrency JSON modes" `Quick test_bench_concurrency_modes;
          Alcotest.test_case "restart sweep jobs=3 == jobs=1" `Quick
            test_restart_bench_jobs_equal;
          QCheck_alcotest.to_alcotest prop_campaign_job_independent;
        ] );
    ]
