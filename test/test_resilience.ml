(* Tests for the device-resilience layer: grown bad blocks at the chip
   level, the bad-block manager (remap on program/erase failure, bounded
   read retry, scrub-on-correctable, wear-aware spare allocation,
   recovery replay, read-only degradation), its wiring into the engine,
   and the device-failure campaign profiles. *)

module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module Bbm = Resilience.Bbm
module Engine = Ipl_core.Ipl_engine
module Config = Ipl_core.Ipl_config

(* The system logs and the bad-block manager now sit on the device
   layer; a raw chip is wrapped as a single-channel device (bit-for-bit
   the old serial behaviour). *)
let dev_of = Device.Flash_device.of_chip
module Plan = Fault.Fault_plan
module Campaign = Fault.Campaign

let spb = 256 (* 128 KB erase unit / 512 B sectors *)
let mk_chip () = Chip.create (FConfig.default ~num_blocks:32 ())
let sec b i = (b * spb) + i
let payload c = Bytes.make 512 c
let bytes_t = Alcotest.testable (fun ppf b -> Fmt.pf ppf "%S" (Bytes.to_string b)) Bytes.equal

(* A bad-block manager over a list-backed "metadata log": [forced] holds
   the durably persisted events, in log order. *)
let mk_bbm ?(spares = [ 28; 29; 30; 31 ]) ?read_retries ?scrub_on_correctable chip =
  let forced = ref [] and buf = ref [] in
  let persist e = buf := e :: !buf in
  let force () =
    forced := !forced @ List.rev !buf;
    buf := []
  in
  let bbm = Bbm.create (dev_of chip) ~spares ?read_retries ?scrub_on_correctable ~persist ~force () in
  (bbm, forced)

let hook chip f = Chip.set_fault_hook chip (Some (fun _ op -> f op))
let unhook chip = Chip.set_fault_hook chip None

(* Fail the next program (optionally only in the data area, sparing the
   raw-chip metadata / transaction log regions below block 8). *)
let fail_next_program ?(min_sector = 0) chip =
  let armed = ref true in
  hook chip (function
    | Chip.Op_program { sector; _ } when !armed && sector >= min_sector ->
        armed := false;
        Chip.Program_fail
    | _ -> Chip.Proceed)

let fail_next_erase chip =
  let armed = ref true in
  hook chip (function
    | Chip.Op_erase _ when !armed ->
        armed := false;
        Chip.Erase_fail
    | _ -> Chip.Proceed)

(* ---------------- chip: grown bad blocks ---------------- *)

let test_grown_bad_block () =
  let cfg =
    { (FConfig.default ~num_blocks:8 ~grow_bad_on_wear_out:true ()) with
      FConfig.max_erase_cycles = 2 }
  in
  let chip = Chip.create cfg in
  Chip.write_sectors chip ~sector:0 (payload 'w');
  Chip.erase_block chip 0;
  Chip.erase_block chip 0;
  Chip.write_sectors chip ~sector:0 (payload 'y');
  (* The third erase would exceed the endurance: it must fail BEFORE
     erasing — the block grows bad with its data still readable. *)
  Alcotest.check_raises "erase past endurance" (Chip.Erase_error 0) (fun () ->
      Chip.erase_block chip 0);
  Alcotest.(check bool) "block is bad" true (Chip.is_bad chip 0);
  Alcotest.(check (list int)) "bad list" [ 0 ] (Chip.bad_blocks chip);
  Alcotest.check bytes_t "data survives the failed erase" (payload 'y')
    (Chip.read_sectors chip ~sector:0 ~count:1);
  Alcotest.check_raises "programs to a bad block fail" (Chip.Program_error 1) (fun () ->
      Chip.write_sectors chip ~sector:1 (payload 'z'));
  let s = Chip.stats chip in
  Alcotest.(check int) "grown bad counted" 1 s.Flash_sim.Flash_stats.grown_bad_blocks;
  Alcotest.(check bool) "failures counted" true
    (s.Flash_sim.Flash_stats.erase_failures >= 1
    && s.Flash_sim.Flash_stats.program_failures >= 1)

let test_corrupt_sector_non_materializing () =
  let chip = Chip.create (FConfig.default ~num_blocks:8 ~materialize:false ()) in
  Chip.write_sectors chip ~sector:0 (payload 'a');
  match Chip.corrupt_sector chip 0 with
  | Error Chip.Not_materialized -> ()
  | Ok () -> Alcotest.fail "corrupt_sector succeeded on a non-materializing chip"
  | Error e -> Alcotest.fail (Chip.corrupt_error_to_string e)

(* ---------------- bbm: relocation ---------------- *)

let test_remap_on_program_failure () =
  let chip = mk_chip () in
  let bbm, forced = mk_bbm chip in
  Bbm.write_sectors bbm ~sector:(sec 0 0) (payload 'a');
  Bbm.write_sectors bbm ~sector:(sec 0 1) (payload 'b');
  fail_next_program chip;
  Bbm.write_sectors bbm ~sector:(sec 0 2) (payload 'c');
  unhook chip;
  (* The whole unit moved; all three sectors read back at their virtual
     addresses, including the program the chip refused. *)
  List.iteri
    (fun i c ->
      Alcotest.check bytes_t
        (Printf.sprintf "sector %d" i)
        (payload c)
        (Bbm.read_sectors bbm ~sector:(sec 0 i) ~count:1))
    [ 'a'; 'b'; 'c' ];
  (match Bbm.remap_table bbm with
  | [ (0, p) ] ->
      Alcotest.(check bool) "remapped to a spare" true (List.mem p [ 28; 29; 30; 31 ])
  | l -> Alcotest.failf "unexpected remap table (%d entries)" (List.length l));
  Alcotest.(check (list int)) "old block retired" [ 0 ] (Bbm.retired_list bbm);
  Alcotest.(check bool) "old block marked bad" true (Chip.is_bad chip 0);
  Alcotest.(check int) "spare consumed" 3 (Bbm.spares_left bbm);
  let s = Bbm.stats bbm in
  Alcotest.(check int) "one remap" 1 s.Bbm.remaps;
  Alcotest.(check int) "one retirement" 1 s.Bbm.retired_blocks;
  Alcotest.(check bool) "remap persisted" true
    (List.exists (function Bbm.P_remap { virt = 0; _ } -> true | _ -> false) !forced);
  Alcotest.(check bool) "retirement persisted" true
    (List.mem (Bbm.P_retire { block = 0 }) !forced)

let test_wear_aware_spare_allocation () =
  let chip = mk_chip () in
  let bbm, _ = mk_bbm chip in
  (* Wear the spares unevenly behind the manager's back; 29 stays
     pristine and must be the one chosen. *)
  Chip.erase_block chip 28;
  Chip.erase_block chip 28;
  Chip.erase_block chip 30;
  Chip.erase_block chip 31;
  Chip.erase_block chip 31;
  Chip.erase_block chip 31;
  fail_next_program chip;
  Bbm.write_sectors bbm ~sector:(sec 5 0) (payload 'z');
  unhook chip;
  Alcotest.(check (list (pair int int))) "least-worn spare chosen" [ (5, 29) ]
    (Bbm.remap_table bbm)

let test_remap_on_erase_failure () =
  let chip = mk_chip () in
  let bbm, _ = mk_bbm chip in
  Bbm.write_sectors bbm ~sector:(sec 3 0) (payload 'd');
  fail_next_erase chip;
  Bbm.erase_block bbm 3;
  unhook chip;
  (* No copy on an erase: the unit points at a fresh (erased) spare. *)
  Alcotest.(check bool) "unit reads as erased" true
    (Bbm.sector_state bbm (sec 3 0) = Chip.Free);
  Alcotest.(check (list int)) "failed block retired" [ 3 ] (Bbm.retired_list bbm);
  Alcotest.(check int) "spare consumed" 3 (Bbm.spares_left bbm);
  Bbm.write_sectors bbm ~sector:(sec 3 0) (payload 'e');
  Alcotest.check bytes_t "unit writable again" (payload 'e')
    (Bbm.read_sectors bbm ~sector:(sec 3 0) ~count:1)

(* ---------------- bbm: reads ---------------- *)

let test_read_retry () =
  let chip = mk_chip () in
  let bbm, _ = mk_bbm ~read_retries:3 ~scrub_on_correctable:false chip in
  Bbm.write_sectors bbm ~sector:(sec 1 0) (payload 'r');
  let left = ref 2 in
  hook chip (function
    | Chip.Op_read _ when !left > 0 ->
        decr left;
        Chip.Read_fault
    | _ -> Chip.Proceed);
  Alcotest.check bytes_t "retries mask transient faults" (payload 'r')
    (Bbm.read_sectors bbm ~sector:(sec 1 0) ~count:1);
  Alcotest.(check int) "two retries counted" 2 (Bbm.stats bbm).Bbm.read_retries;
  (* A persistent failure exhausts the retry budget. *)
  hook chip (function Chip.Op_read _ -> Chip.Read_fault | _ -> Chip.Proceed);
  Alcotest.check_raises "uncorrectable"
    (Bbm.Uncorrectable (sec 1 0))
    (fun () -> ignore (Bbm.read_sectors bbm ~sector:(sec 1 0) ~count:1));
  unhook chip;
  Alcotest.(check int) "uncorrectable counted" 1
    (Bbm.stats bbm).Bbm.uncorrectable_reads

let test_scrub_on_correctable () =
  let chip = mk_chip () in
  let bbm, _ = mk_bbm chip in
  Bbm.write_sectors bbm ~sector:(sec 2 0) (payload 's');
  Bbm.write_sectors bbm ~sector:(sec 2 5) (payload 't');
  let armed = ref true in
  hook chip (function
    | Chip.Op_read _ when !armed ->
        armed := false;
        Chip.Read_correctable
    | _ -> Chip.Proceed);
  Alcotest.check bytes_t "corrected read returns data" (payload 's')
    (Bbm.read_sectors bbm ~sector:(sec 2 0) ~count:1);
  unhook chip;
  Alcotest.(check int) "scrub happened" 1 (Bbm.stats bbm).Bbm.scrubs;
  (* The suspect block returned to the pool: scrubs cost no spares. *)
  Alcotest.(check int) "no spare consumed" 4 (Bbm.spares_left bbm);
  Alcotest.(check (list int)) "nothing retired" [] (Bbm.retired_list bbm);
  Alcotest.(check int) "unit relocated" 1 (List.length (Bbm.remap_table bbm));
  Alcotest.check bytes_t "data follows the unit" (payload 't')
    (Bbm.read_sectors bbm ~sector:(sec 2 5) ~count:1)

(* ---------------- bbm: degradation and recovery ---------------- *)

let test_degradation () =
  let chip = mk_chip () in
  let bbm, forced = mk_bbm ~spares:[ 30; 31 ] chip in
  Bbm.write_sectors bbm ~sector:(sec 0 0) (payload 'k');
  hook chip (function Chip.Op_program _ -> Chip.Program_fail | _ -> Chip.Proceed);
  Alcotest.check_raises "spares exhausted" Bbm.Degraded (fun () ->
      Bbm.write_sectors bbm ~sector:(sec 0 1) (payload 'l'));
  unhook chip;
  Alcotest.(check bool) "degraded" true (Bbm.degraded bbm);
  Alcotest.(check int) "pool empty" 0 (Bbm.spares_left bbm);
  Alcotest.check_raises "writes refused from now on" Bbm.Degraded (fun () ->
      Bbm.write_sectors bbm ~sector:(sec 5 0) (payload 'm'));
  Alcotest.check_raises "erases refused too" Bbm.Degraded (fun () ->
      Bbm.erase_block bbm 5);
  (* Reads keep serving the committed data. *)
  Alcotest.check bytes_t "reads survive degradation" (payload 'k')
    (Bbm.read_sectors bbm ~sector:(sec 0 0) ~count:1);
  Alcotest.(check int) "one degradation" 1 (Bbm.stats bbm).Bbm.degradations;
  Alcotest.(check bool) "degradation persisted and forced" true
    (List.mem Bbm.P_degraded !forced)

let test_recover_replay () =
  let chip = mk_chip () in
  let bbm, forced = mk_bbm chip in
  Bbm.write_sectors bbm ~sector:(sec 0 0) (payload 'a');
  fail_next_program chip;
  Bbm.write_sectors bbm ~sector:(sec 0 1) (payload 'b');
  unhook chip;
  (* "Restart": replay the persisted events into a fresh manager over the
     same chip. *)
  let bbm', _ =
    let forced' = ref [] in
    let persist e = forced' := e :: !forced' in
    ( Bbm.recover (dev_of chip) ~spares:[ 28; 29; 30; 31 ] ~persist ~force:(fun () -> ())
        ~events:!forced (),
      forced' )
  in
  Alcotest.(check (list (pair int int))) "remap table survives"
    (Bbm.remap_table bbm) (Bbm.remap_table bbm');
  Alcotest.(check (list int)) "retired set survives" (Bbm.retired_list bbm)
    (Bbm.retired_list bbm');
  Alcotest.(check int) "pool size survives" (Bbm.spares_left bbm)
    (Bbm.spares_left bbm');
  Alcotest.(check bool) "not degraded" false (Bbm.degraded bbm');
  List.iteri
    (fun i c ->
      Alcotest.check bytes_t
        (Printf.sprintf "sector %d readable" i)
        (payload c)
        (Bbm.read_sectors bbm' ~sector:(sec 0 i) ~count:1))
    [ 'a'; 'b' ];
  (* The same tables must come out of a snapshot replay (metadata-log
     compaction path). *)
  let bbm'' =
    Bbm.recover (dev_of chip) ~spares:[ 28; 29; 30; 31 ]
      ~persist:(fun _ -> ())
      ~force:(fun () -> ())
      ~events:(Bbm.snapshot_events bbm) ()
  in
  Alcotest.(check (list (pair int int))) "snapshot replay: remap table"
    (Bbm.remap_table bbm) (Bbm.remap_table bbm'');
  Alcotest.(check (list int)) "snapshot replay: retired" (Bbm.retired_list bbm)
    (Bbm.retired_list bbm'')

(* ---------------- engine integration ---------------- *)

let resilient_config ?(spares = 4) () =
  {
    Config.default with
    Config.recovery_enabled = true;
    buffer_pages = 4;
    spare_blocks = spares;
  }

let test_engine_relocation_and_restart () =
  let config = resilient_config () in
  let chip = mk_chip () in
  let eng = Engine.create ~config chip in
  let page = Engine.Unsafe.allocate_page eng in
  let tx = Engine.Unsafe.begin_txn eng in
  let slot0 =
    match Engine.Unsafe.insert eng ~tx ~page (Bytes.of_string "hello") with
    | Ok s -> s
    | Error e -> Alcotest.fail (Engine.error_to_string e)
  in
  Engine.Unsafe.commit eng tx;
  (* Fail the next data-area program: the log-sector flush of the second
     commit relocates its erase unit. *)
  fail_next_program ~min_sector:(8 * spb) chip;
  let tx = Engine.Unsafe.begin_txn eng in
  let slot1 =
    match Engine.Unsafe.insert eng ~tx ~page (Bytes.of_string "world") with
    | Ok s -> s
    | Error e -> Alcotest.fail (Engine.error_to_string e)
  in
  (match Engine.commit eng (Engine.Unsafe.txn tx) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Engine.error_to_string e));
  unhook chip;
  Alcotest.(check (option string)) "first record" (Some "hello")
    (Option.map Bytes.to_string (Engine.Unsafe.read eng ~page ~slot:slot0));
  Alcotest.(check (option string)) "second record" (Some "world")
    (Option.map Bytes.to_string (Engine.Unsafe.read eng ~page ~slot:slot1));
  let rs = (Engine.stats eng).Engine.resilience in
  Alcotest.(check int) "one remap" 1 rs.Bbm.remaps;
  Alcotest.(check int) "spare consumed" 3 (Engine.spares_left eng);
  Alcotest.(check bool) "not degraded" false (Engine.degraded eng);
  (* The remap table must survive a restart. *)
  let eng', aborted = Engine.restart ~config chip in
  Alcotest.(check (list int)) "no aborted transactions" [] aborted;
  Alcotest.(check int) "spare still consumed after restart" 3
    (Engine.spares_left eng');
  Alcotest.(check (option string)) "first record after restart" (Some "hello")
    (Option.map Bytes.to_string (Engine.Unsafe.read eng' ~page ~slot:slot0));
  Alcotest.(check (option string)) "second record after restart" (Some "world")
    (Option.map Bytes.to_string (Engine.Unsafe.read eng' ~page ~slot:slot1))

let test_engine_degradation () =
  let config = resilient_config ~spares:2 () in
  let chip = mk_chip () in
  let eng = Engine.create ~config chip in
  let page = Engine.Unsafe.allocate_page eng in
  let tx = Engine.Unsafe.begin_txn eng in
  (match Engine.Unsafe.insert eng ~tx ~page (Bytes.of_string "durable") with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.error_to_string e));
  Engine.Unsafe.commit eng tx;
  (* Every data-area program fails from here on: the first flush must
     burn through both spares and degrade the device. *)
  hook chip (function
    | Chip.Op_program { sector; _ } when sector >= 8 * spb -> Chip.Program_fail
    | _ -> Chip.Proceed);
  let tx = Engine.Unsafe.begin_txn eng in
  (match Engine.Unsafe.insert eng ~tx ~page (Bytes.of_string "doomed") with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Engine.error_to_string e));
  (match Engine.commit eng (Engine.Unsafe.txn tx) with
  | Error Engine.Device_degraded -> ()
  | Ok () -> Alcotest.fail "commit succeeded on a dying device"
  | Error e -> Alcotest.fail (Engine.error_to_string e));
  Alcotest.(check bool) "engine degraded" true (Engine.degraded eng);
  Engine.Unsafe.abort eng tx;
  Alcotest.(check bool) "mutations refused" true
    (Engine.Unsafe.insert eng ~tx:0 ~page (Bytes.of_string "no") = Error Engine.Device_degraded);
  Alcotest.(check bool) "allocation refused" true
    (Engine.allocate_page eng = Error Engine.Device_degraded);
  Alcotest.(check (option string)) "committed data still readable" (Some "durable")
    (Option.map Bytes.to_string (Engine.Unsafe.read eng ~page ~slot:0));
  Alcotest.(check int) "degradation counted" 1
    (Engine.stats eng).Engine.resilience.Bbm.degradations;
  unhook chip;
  (* Read-only state must survive a restart. *)
  let eng', _ = Engine.restart ~config chip in
  Alcotest.(check bool) "degraded after restart" true (Engine.degraded eng');
  Alcotest.(check (option string)) "data readable after restart" (Some "durable")
    (Option.map Bytes.to_string (Engine.Unsafe.read eng' ~page ~slot:0));
  Alcotest.(check bool) "mutations refused after restart" true
    (Engine.Unsafe.insert eng' ~tx:0 ~page (Bytes.of_string "no")
    = Error Engine.Device_degraded)

(* ---------------- campaign profiles ---------------- *)

let check_campaign r =
  if not (Campaign.resilience_ok r) then
    Alcotest.failf "campaign failed:@\n%a" Campaign.pp_resilience_report r

let test_campaign_flaky () =
  check_campaign (Campaign.run_resilience ~transactions:40 Campaign.Flaky)

let test_campaign_program_faults () =
  check_campaign (Campaign.run_resilience ~transactions:60 Campaign.Program_faults)

let test_campaign_erase_faults () =
  check_campaign (Campaign.run_resilience ~transactions:60 Campaign.Erase_faults)

let test_campaign_wear_out () =
  let r = Campaign.run_resilience Campaign.Wear_out in
  check_campaign r;
  (* The whole point of the profile: the pool must actually run dry. *)
  Alcotest.(check bool) "reached degradation" true
    (r.Campaign.outcome.Fault.Workload.degraded_at <> None)

let test_campaign_remap_crash () =
  match Campaign.run_remap_crash () with
  | [] -> ()
  | (delta, vs) :: _ ->
      Alcotest.failf "crash %d ops after remap trigger: %s" delta
        (String.concat "; " vs)

let () =
  Alcotest.run "resilience"
    [
      ( "chip",
        [
          Alcotest.test_case "grown bad block" `Quick test_grown_bad_block;
          Alcotest.test_case "corrupt_sector typed error" `Quick
            test_corrupt_sector_non_materializing;
        ] );
      ( "bbm",
        [
          Alcotest.test_case "remap on program failure" `Quick
            test_remap_on_program_failure;
          Alcotest.test_case "wear-aware spare allocation" `Quick
            test_wear_aware_spare_allocation;
          Alcotest.test_case "remap on erase failure" `Quick
            test_remap_on_erase_failure;
          Alcotest.test_case "read retry" `Quick test_read_retry;
          Alcotest.test_case "scrub on correctable" `Quick test_scrub_on_correctable;
          Alcotest.test_case "degradation" `Quick test_degradation;
          Alcotest.test_case "recovery replay" `Quick test_recover_replay;
        ] );
      ( "engine",
        [
          Alcotest.test_case "relocation and restart" `Quick
            test_engine_relocation_and_restart;
          Alcotest.test_case "degradation" `Quick test_engine_degradation;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "flaky reads" `Quick test_campaign_flaky;
          Alcotest.test_case "program failures" `Quick test_campaign_program_faults;
          Alcotest.test_case "erase failures" `Quick test_campaign_erase_faults;
          Alcotest.test_case "wear out to exhaustion" `Slow test_campaign_wear_out;
          Alcotest.test_case "crash during remap" `Quick test_campaign_remap_crash;
        ] );
    ]
