(* Tests for the NAND flash chip simulator: erase-before-write discipline,
   timing accounting, wear tracking, data round-trips. *)

module Config = Flash_sim.Flash_config
module Chip = Flash_sim.Flash_chip
module Stats = Flash_sim.Flash_stats

let small_config ?(materialize = true) () = Config.default ~num_blocks:8 ~materialize ()

let mk ?materialize () = Chip.create (small_config ?materialize ())

let sector_bytes chip n =
  Bytes.make ((Chip.config chip).Config.sector_size * n) 'x'

let test_geometry () =
  let c = small_config () in
  Alcotest.(check int) "sectors/page" 4 (Config.sectors_per_page c);
  Alcotest.(check int) "sectors/block" 256 (Config.sectors_per_block c);
  Alcotest.(check int) "pages/block" 64 (Config.pages_per_block c);
  Alcotest.(check int) "capacity" (8 * 128 * 1024) (Config.capacity_bytes c)

let test_fresh_state () =
  let chip = mk () in
  Alcotest.(check int) "num sectors" (8 * 256) (Chip.num_sectors chip);
  for s = 0 to Chip.num_sectors chip - 1 do
    assert (Chip.sector_state chip s = Chip.Free)
  done;
  Alcotest.(check int) "no live sectors" 0 (Chip.live_sectors chip)

let test_write_read_roundtrip () =
  let chip = mk () in
  let data = Bytes.init 512 (fun i -> Char.chr (i mod 256)) in
  Chip.write_sectors chip ~sector:10 data;
  let got = Chip.read_sectors chip ~sector:10 ~count:1 in
  Alcotest.(check bytes) "roundtrip" data got;
  Alcotest.(check bool) "state valid" true (Chip.sector_state chip 10 = Chip.Valid)

let test_read_erased_is_ff () =
  let chip = mk () in
  let got = Chip.read_sectors chip ~sector:0 ~count:2 in
  Bytes.iter (fun c -> assert (c = '\xff')) got;
  Alcotest.(check int) "length" 1024 (Bytes.length got)

let test_erase_before_write_enforced () =
  let chip = mk () in
  Chip.write_sectors chip ~sector:5 (sector_bytes chip 1);
  (try
     Chip.write_sectors chip ~sector:5 (sector_bytes chip 1);
     Alcotest.fail "expected Write_to_unerased"
   with Chip.Write_to_unerased s -> Alcotest.(check int) "offending sector" 5 s);
  (* After erasing the block the sector is programmable again. *)
  Chip.erase_block chip 0;
  Chip.write_sectors chip ~sector:5 (sector_bytes chip 1)

let test_overwrite_detected_mid_range () =
  let chip = mk () in
  Chip.write_sectors chip ~sector:7 (sector_bytes chip 1);
  try
    Chip.write_sectors chip ~sector:6 (sector_bytes chip 3);
    Alcotest.fail "expected Write_to_unerased"
  with Chip.Write_to_unerased s -> Alcotest.(check int) "offending sector" 7 s

let test_erase_resets_block () =
  let chip = mk () in
  Chip.write_sectors chip ~sector:0 (sector_bytes chip 8);
  Chip.erase_block chip 0;
  for s = 0 to 255 do
    assert (Chip.sector_state chip s = Chip.Free)
  done;
  let got = Chip.read_sectors chip ~sector:0 ~count:1 in
  Bytes.iter (fun c -> assert (c = '\xff')) got

let test_invalidate () =
  let chip = mk () in
  Chip.write_sectors chip ~sector:3 (sector_bytes chip 2);
  Chip.invalidate_sectors chip ~sector:3 ~count:1;
  Alcotest.(check bool) "invalid" true (Chip.sector_state chip 3 = Chip.Invalid);
  Alcotest.(check bool) "other still valid" true (Chip.sector_state chip 4 = Chip.Valid);
  (* Invalidating a free sector is a no-op. *)
  Chip.invalidate_sectors chip ~sector:100 ~count:1;
  Alcotest.(check bool) "free unchanged" true (Chip.sector_state chip 100 = Chip.Free)

let test_timing_read_write_erase () =
  let chip = mk () in
  let c = Chip.config chip in
  (* One sector write costs a full physical-page program (footnote 5). *)
  Chip.write_sectors chip ~sector:0 (sector_bytes chip 1);
  Alcotest.(check (float 1e-12)) "sector write = page program" c.Config.t_write_page
    (Chip.elapsed chip);
  Chip.reset_stats chip;
  (* Reading 4 sectors within one physical page costs one page read. *)
  ignore (Chip.read_sectors chip ~sector:0 ~count:4);
  Alcotest.(check (float 1e-12)) "aligned 2K read" c.Config.t_read_page (Chip.elapsed chip);
  Chip.reset_stats chip;
  (* A misaligned 4-sector read spans two physical pages. *)
  ignore (Chip.read_sectors chip ~sector:2 ~count:4);
  Alcotest.(check (float 1e-12)) "straddling read" (2.0 *. c.Config.t_read_page)
    (Chip.elapsed chip);
  Chip.reset_stats chip;
  Chip.erase_block chip 1;
  Alcotest.(check (float 1e-12)) "erase" c.Config.t_erase_block (Chip.elapsed chip)

let test_merge_cost_is_about_20ms () =
  (* The paper (Section 4.2.3) estimates a full erase-unit merge at ~20 ms:
     read 128 KB + write 128 KB + erase. Verify our chip reproduces it. *)
  let chip = mk () in
  Chip.reset_stats chip;
  ignore (Chip.read_sectors chip ~sector:0 ~count:256);
  Chip.write_sectors chip ~sector:256 (Bytes.make (128 * 1024) 'm');
  Chip.erase_block chip 0;
  let t = Chip.elapsed chip in
  Alcotest.(check bool)
    (Printf.sprintf "merge cost %.1f ms in [18,21]" (t *. 1e3))
    true
    (t > 0.018 && t < 0.021)

let test_stats_counters () =
  let chip = mk () in
  ignore (Chip.read_sectors chip ~sector:0 ~count:8);
  Chip.write_sectors chip ~sector:16 (sector_bytes chip 4);
  Chip.erase_block chip 2;
  let s = Chip.stats chip in
  Alcotest.(check int) "page reads" 2 s.Stats.page_reads;
  Alcotest.(check int) "page writes" 1 s.Stats.page_writes;
  Alcotest.(check int) "erases" 1 s.Stats.block_erases;
  Alcotest.(check int) "sectors read" 8 s.Stats.sectors_read;
  Alcotest.(check int) "sectors written" 4 s.Stats.sectors_written

let test_wear_tracking () =
  let chip = mk () in
  for _ = 1 to 5 do
    Chip.erase_block chip 3
  done;
  Chip.erase_block chip 4;
  Alcotest.(check int) "block 3 wear" 5 (Chip.erase_count chip 3);
  Alcotest.(check int) "block 4 wear" 1 (Chip.erase_count chip 4);
  Alcotest.(check int) "block 0 wear" 0 (Chip.erase_count chip 0)

let test_wear_out_raises () =
  let config =
    { (small_config ()) with Config.max_erase_cycles = 3; fail_on_wear_out = true }
  in
  let chip = Chip.create config in
  for _ = 1 to 3 do
    Chip.erase_block chip 0
  done;
  try
    Chip.erase_block chip 0;
    Alcotest.fail "expected Worn_out"
  with Chip.Worn_out b -> Alcotest.(check int) "block" 0 b

let test_out_of_range () =
  let chip = mk () in
  Alcotest.check_raises "read oob" (Chip.Out_of_range 4096) (fun () ->
      ignore (Chip.read_sectors chip ~sector:4096 ~count:1));
  Alcotest.check_raises "erase oob" (Chip.Out_of_range 8) (fun () -> Chip.erase_block chip 8)

let test_counter_mode_no_data () =
  let chip = mk ~materialize:false () in
  Chip.write_sectors chip ~sector:0 (sector_bytes chip 1);
  (* Counter-only chips still enforce the state machine... *)
  (try
     Chip.write_sectors chip ~sector:0 (sector_bytes chip 1);
     Alcotest.fail "expected Write_to_unerased"
   with Chip.Write_to_unerased _ -> ());
  (* ...but return erased-looking data. *)
  let got = Chip.read_sectors chip ~sector:0 ~count:1 in
  Bytes.iter (fun c -> assert (c = '\xff')) got

let test_free_sectors_in_block () =
  let chip = mk () in
  Alcotest.(check int) "all free" 256 (Chip.free_sectors_in_block chip 0);
  Chip.write_sectors chip ~sector:0 (sector_bytes chip 10);
  Alcotest.(check int) "ten used" 246 (Chip.free_sectors_in_block chip 0)

(* Property: any interleaving of valid writes and erases keeps the
   state machine consistent (writes only into Free, erases reset). *)
let prop_state_machine =
  QCheck.Test.make ~name:"random ops keep state machine consistent" ~count:50
    QCheck.(small_list (pair (int_bound 7) bool))
    (fun ops ->
      let chip = mk () in
      List.iter
        (fun (block, do_erase) ->
          if do_erase then Chip.erase_block chip block
          else begin
            (* Write the first free sector of the block, if any. *)
            let base = Chip.sector_of_block chip block in
            let rec find s =
              if s >= base + 256 then None
              else if Chip.sector_state chip s = Chip.Free then Some s
              else find (s + 1)
            in
            match find base with
            | Some s -> Chip.write_sectors chip ~sector:s (sector_bytes chip 1)
            | None -> ()
          end)
        ops;
      (* Invariant: live + free + invalid = total, and data in valid
         sectors is readable. *)
      let live = Chip.live_sectors chip in
      live >= 0 && live <= Chip.num_sectors chip)

let () =
  Alcotest.run "flash_sim"
    [
      ( "geometry",
        [
          Alcotest.test_case "derived sizes" `Quick test_geometry;
          Alcotest.test_case "fresh state" `Quick test_fresh_state;
        ] );
      ( "data",
        [
          Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
          Alcotest.test_case "erased reads 0xff" `Quick test_read_erased_is_ff;
          Alcotest.test_case "counter mode" `Quick test_counter_mode_no_data;
        ] );
      ( "state machine",
        [
          Alcotest.test_case "erase-before-write" `Quick test_erase_before_write_enforced;
          Alcotest.test_case "overwrite mid-range" `Quick test_overwrite_detected_mid_range;
          Alcotest.test_case "erase resets block" `Quick test_erase_resets_block;
          Alcotest.test_case "invalidate" `Quick test_invalidate;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "free sector count" `Quick test_free_sectors_in_block;
          QCheck_alcotest.to_alcotest prop_state_machine;
        ] );
      ( "timing & wear",
        [
          Alcotest.test_case "operation timing" `Quick test_timing_read_write_erase;
          Alcotest.test_case "merge ~20ms (paper)" `Quick test_merge_cost_is_about_20ms;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
          Alcotest.test_case "wear tracking" `Quick test_wear_tracking;
          Alcotest.test_case "wear-out raises" `Quick test_wear_out_raises;
        ] );
    ]
