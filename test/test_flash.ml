(* Tests for the NAND flash chip simulator: erase-before-write discipline,
   timing accounting, wear tracking, data round-trips. *)

module Config = Flash_sim.Flash_config
module Chip = Flash_sim.Flash_chip
module Stats = Flash_sim.Flash_stats

let small_config ?(materialize = true) () = Config.default ~num_blocks:8 ~materialize ()

let mk ?materialize () = Chip.create (small_config ?materialize ())

let sector_bytes chip n =
  Bytes.make ((Chip.config chip).Config.sector_size * n) 'x'

let test_geometry () =
  let c = small_config () in
  Alcotest.(check int) "sectors/page" 4 (Config.sectors_per_page c);
  Alcotest.(check int) "sectors/block" 256 (Config.sectors_per_block c);
  Alcotest.(check int) "pages/block" 64 (Config.pages_per_block c);
  Alcotest.(check int) "capacity" (8 * 128 * 1024) (Config.capacity_bytes c)

let test_fresh_state () =
  let chip = mk () in
  Alcotest.(check int) "num sectors" (8 * 256) (Chip.num_sectors chip);
  for s = 0 to Chip.num_sectors chip - 1 do
    assert (Chip.sector_state chip s = Chip.Free)
  done;
  Alcotest.(check int) "no live sectors" 0 (Chip.live_sectors chip)

let test_write_read_roundtrip () =
  let chip = mk () in
  let data = Bytes.init 512 (fun i -> Char.chr (i mod 256)) in
  Chip.write_sectors chip ~sector:10 data;
  let got = Chip.read_sectors chip ~sector:10 ~count:1 in
  Alcotest.(check bytes) "roundtrip" data got;
  Alcotest.(check bool) "state valid" true (Chip.sector_state chip 10 = Chip.Valid)

let test_read_erased_is_ff () =
  let chip = mk () in
  let got = Chip.read_sectors chip ~sector:0 ~count:2 in
  Bytes.iter (fun c -> assert (c = '\xff')) got;
  Alcotest.(check int) "length" 1024 (Bytes.length got)

let test_erase_before_write_enforced () =
  let chip = mk () in
  Chip.write_sectors chip ~sector:5 (sector_bytes chip 1);
  (try
     Chip.write_sectors chip ~sector:5 (sector_bytes chip 1);
     Alcotest.fail "expected Write_to_unerased"
   with Chip.Write_to_unerased s -> Alcotest.(check int) "offending sector" 5 s);
  (* After erasing the block the sector is programmable again. *)
  Chip.erase_block chip 0;
  Chip.write_sectors chip ~sector:5 (sector_bytes chip 1)

let test_overwrite_detected_mid_range () =
  let chip = mk () in
  Chip.write_sectors chip ~sector:7 (sector_bytes chip 1);
  try
    Chip.write_sectors chip ~sector:6 (sector_bytes chip 3);
    Alcotest.fail "expected Write_to_unerased"
  with Chip.Write_to_unerased s -> Alcotest.(check int) "offending sector" 7 s

let test_erase_resets_block () =
  let chip = mk () in
  Chip.write_sectors chip ~sector:0 (sector_bytes chip 8);
  Chip.erase_block chip 0;
  for s = 0 to 255 do
    assert (Chip.sector_state chip s = Chip.Free)
  done;
  let got = Chip.read_sectors chip ~sector:0 ~count:1 in
  Bytes.iter (fun c -> assert (c = '\xff')) got

let test_invalidate () =
  let chip = mk () in
  Chip.write_sectors chip ~sector:3 (sector_bytes chip 2);
  Chip.invalidate_sectors chip ~sector:3 ~count:1;
  Alcotest.(check bool) "invalid" true (Chip.sector_state chip 3 = Chip.Invalid);
  Alcotest.(check bool) "other still valid" true (Chip.sector_state chip 4 = Chip.Valid);
  (* Invalidating a free sector is a no-op. *)
  Chip.invalidate_sectors chip ~sector:100 ~count:1;
  Alcotest.(check bool) "free unchanged" true (Chip.sector_state chip 100 = Chip.Free)

let test_timing_read_write_erase () =
  let chip = mk () in
  let c = Chip.config chip in
  (* One sector write costs a full physical-page program (footnote 5). *)
  Chip.write_sectors chip ~sector:0 (sector_bytes chip 1);
  Alcotest.(check (float 1e-12)) "sector write = page program" c.Config.t_write_page
    (Chip.elapsed chip);
  Chip.reset_stats chip;
  (* Reading 4 sectors within one physical page costs one page read. *)
  ignore (Chip.read_sectors chip ~sector:0 ~count:4);
  Alcotest.(check (float 1e-12)) "aligned 2K read" c.Config.t_read_page (Chip.elapsed chip);
  Chip.reset_stats chip;
  (* A misaligned 4-sector read spans two physical pages. *)
  ignore (Chip.read_sectors chip ~sector:2 ~count:4);
  Alcotest.(check (float 1e-12)) "straddling read" (2.0 *. c.Config.t_read_page)
    (Chip.elapsed chip);
  Chip.reset_stats chip;
  Chip.erase_block chip 1;
  Alcotest.(check (float 1e-12)) "erase" c.Config.t_erase_block (Chip.elapsed chip)

let test_merge_cost_is_about_20ms () =
  (* The paper (Section 4.2.3) estimates a full erase-unit merge at ~20 ms:
     read 128 KB + write 128 KB + erase. Verify our chip reproduces it. *)
  let chip = mk () in
  Chip.reset_stats chip;
  ignore (Chip.read_sectors chip ~sector:0 ~count:256);
  Chip.write_sectors chip ~sector:256 (Bytes.make (128 * 1024) 'm');
  Chip.erase_block chip 0;
  let t = Chip.elapsed chip in
  Alcotest.(check bool)
    (Printf.sprintf "merge cost %.1f ms in [18,21]" (t *. 1e3))
    true
    (t > 0.018 && t < 0.021)

let test_stats_counters () =
  let chip = mk () in
  ignore (Chip.read_sectors chip ~sector:0 ~count:8);
  Chip.write_sectors chip ~sector:16 (sector_bytes chip 4);
  Chip.erase_block chip 2;
  let s = Chip.stats chip in
  Alcotest.(check int) "page reads" 2 s.Stats.page_reads;
  Alcotest.(check int) "page writes" 1 s.Stats.page_writes;
  Alcotest.(check int) "erases" 1 s.Stats.block_erases;
  Alcotest.(check int) "sectors read" 8 s.Stats.sectors_read;
  Alcotest.(check int) "sectors written" 4 s.Stats.sectors_written

let test_wear_tracking () =
  let chip = mk () in
  for _ = 1 to 5 do
    Chip.erase_block chip 3
  done;
  Chip.erase_block chip 4;
  Alcotest.(check int) "block 3 wear" 5 (Chip.erase_count chip 3);
  Alcotest.(check int) "block 4 wear" 1 (Chip.erase_count chip 4);
  Alcotest.(check int) "block 0 wear" 0 (Chip.erase_count chip 0)

let test_wear_out_raises () =
  let config =
    { (small_config ()) with Config.max_erase_cycles = 3; fail_on_wear_out = true }
  in
  let chip = Chip.create config in
  for _ = 1 to 3 do
    Chip.erase_block chip 0
  done;
  try
    Chip.erase_block chip 0;
    Alcotest.fail "expected Worn_out"
  with Chip.Worn_out b -> Alcotest.(check int) "block" 0 b

let test_out_of_range () =
  let chip = mk () in
  Alcotest.check_raises "read oob" (Chip.Out_of_range 4096) (fun () ->
      ignore (Chip.read_sectors chip ~sector:4096 ~count:1));
  Alcotest.check_raises "erase oob" (Chip.Out_of_range 8) (fun () -> Chip.erase_block chip 8)

let test_counter_mode_no_data () =
  let chip = mk ~materialize:false () in
  Chip.write_sectors chip ~sector:0 (sector_bytes chip 1);
  (* Counter-only chips still enforce the state machine... *)
  (try
     Chip.write_sectors chip ~sector:0 (sector_bytes chip 1);
     Alcotest.fail "expected Write_to_unerased"
   with Chip.Write_to_unerased _ -> ());
  (* ...but return erased-looking data. *)
  let got = Chip.read_sectors chip ~sector:0 ~count:1 in
  Bytes.iter (fun c -> assert (c = '\xff')) got

let test_free_sectors_in_block () =
  let chip = mk () in
  Alcotest.(check int) "all free" 256 (Chip.free_sectors_in_block chip 0);
  Chip.write_sectors chip ~sector:0 (sector_bytes chip 10);
  Alcotest.(check int) "ten used" 246 (Chip.free_sectors_in_block chip 0)

(* Property: any interleaving of valid writes and erases keeps the
   state machine consistent (writes only into Free, erases reset). *)
let prop_state_machine =
  QCheck.Test.make ~name:"random ops keep state machine consistent" ~count:50
    QCheck.(small_list (pair (int_bound 7) bool))
    (fun ops ->
      let chip = mk () in
      List.iter
        (fun (block, do_erase) ->
          if do_erase then Chip.erase_block chip block
          else begin
            (* Write the first free sector of the block, if any. *)
            let base = Chip.sector_of_block chip block in
            let rec find s =
              if s >= base + 256 then None
              else if Chip.sector_state chip s = Chip.Free then Some s
              else find (s + 1)
            in
            match find base with
            | Some s -> Chip.write_sectors chip ~sector:s (sector_bytes chip 1)
            | None -> ()
          end)
        ops;
      (* Invariant: live + free + invalid = total, and data in valid
         sectors is readable. *)
      let live = Chip.live_sectors chip in
      live >= 0 && live <= Chip.num_sectors chip)

(* ---------------- fault injection ---------------- *)

let test_invalid_read_stale () =
  let chip = mk () in
  let data = Bytes.init 512 (fun i -> Char.chr (i mod 256)) in
  Chip.write_sectors chip ~sector:3 data;
  Chip.invalidate_sectors chip ~sector:3 ~count:1;
  Alcotest.(check bool) "state invalid" true (Chip.sector_state chip 3 = Chip.Invalid);
  (* Documented contract: Invalid sectors return their stale programmed
     data (merge rollback and the overflow read path depend on it). *)
  Alcotest.(check bytes) "stale data readable" data (Chip.read_sectors chip ~sector:3 ~count:1)

let test_fault_fail_stop () =
  let chip = mk () in
  let data = Bytes.init 512 (fun i -> Char.chr (i mod 7)) in
  Chip.write_sectors chip ~sector:0 data;
  Chip.set_fault_hook chip
    (Some (fun idx _ -> if idx = 2 then Chip.Fail_stop else Chip.Proceed));
  ignore (Chip.read_sectors chip ~sector:0 ~count:1);
  (* op 1 *)
  (try
     ignore (Chip.read_sectors chip ~sector:0 ~count:1);
     Alcotest.fail "expected Power_loss"
   with Chip.Power_loss n -> Alcotest.(check int) "op index" 2 n);
  Alcotest.(check bool) "dead" true (Chip.is_dead chip);
  (try
     ignore (Chip.read_sectors chip ~sector:0 ~count:1);
     Alcotest.fail "dead chip must refuse all operations"
   with Chip.Power_loss _ -> ());
  (* Clearing the hook models power coming back on. *)
  Chip.set_fault_hook chip None;
  Alcotest.(check bool) "revived" false (Chip.is_dead chip);
  Alcotest.(check bytes) "data intact" data (Chip.read_sectors chip ~sector:0 ~count:1)

let test_fault_torn_program () =
  let chip = mk () in
  Chip.set_fault_hook chip
    (Some
       (fun _ op ->
         match op with
         | Chip.Op_program { count; _ } when count = 4 -> Chip.Tear 2
         | _ -> Chip.Proceed));
  (try
     Chip.write_sectors chip ~sector:8 (sector_bytes chip 4);
     Alcotest.fail "expected Power_loss"
   with Chip.Power_loss _ -> ());
  Chip.set_fault_hook chip None;
  Alcotest.(check bool) "first half programmed" true
    (Chip.sector_state chip 8 = Chip.Valid && Chip.sector_state chip 9 = Chip.Valid);
  Alcotest.(check bool) "second half still erased" true
    (Chip.sector_state chip 10 = Chip.Free && Chip.sector_state chip 11 = Chip.Free)

let test_fault_flip_bit () =
  let chip = mk () in
  let data = Bytes.make 512 'a' in
  Chip.set_fault_hook chip
    (Some
       (fun _ op ->
         match op with Chip.Op_program _ -> Chip.Flip_bit 100 | _ -> Chip.Proceed));
  (* Silent: the program itself succeeds. *)
  Chip.write_sectors chip ~sector:0 data;
  Chip.set_fault_hook chip None;
  let got = Chip.read_sectors chip ~sector:0 ~count:1 in
  let differing = ref 0 in
  Bytes.iteri (fun i c -> if c <> Bytes.get data i then incr differing) got;
  Alcotest.(check int) "exactly one byte corrupted" 1 !differing

let test_fault_transient_read () =
  let chip = mk () in
  let data = Bytes.init 512 (fun i -> Char.chr (i mod 11)) in
  Chip.write_sectors chip ~sector:5 data;
  Chip.set_fault_hook chip
    (Some
       (fun idx op ->
         match op with Chip.Op_read _ when idx = 1 -> Chip.Read_fault | _ -> Chip.Proceed));
  (try
     ignore (Chip.read_sectors chip ~sector:5 ~count:1);
     Alcotest.fail "expected Read_error"
   with Chip.Read_error s -> Alcotest.(check int) "failing sector" 5 s);
  Alcotest.(check bool) "transient: chip still alive" false (Chip.is_dead chip);
  Alcotest.(check bytes) "retry succeeds" data (Chip.read_sectors chip ~sector:5 ~count:1);
  Chip.set_fault_hook chip None

let test_wear_histogram () =
  let chip = mk () in
  Chip.erase_block chip 0;
  Chip.erase_block chip 0;
  Chip.erase_block chip 3;
  let h = Chip.wear_histogram chip in
  Alcotest.(check int) "block 0 wear" 2 (Ipl_util.Histogram.count h 0);
  Alcotest.(check int) "block 3 wear" 1 (Ipl_util.Histogram.count h 3);
  Alcotest.(check int) "total erases" 3 (Ipl_util.Histogram.total h);
  let s = Chip.stats chip in
  Alcotest.(check int) "max wear in stats" 2 s.Stats.max_wear;
  Alcotest.(check (float 0.001)) "mean wear in stats" (3.0 /. 8.0) s.Stats.mean_wear

let () =
  Alcotest.run "flash_sim"
    [
      ( "geometry",
        [
          Alcotest.test_case "derived sizes" `Quick test_geometry;
          Alcotest.test_case "fresh state" `Quick test_fresh_state;
        ] );
      ( "data",
        [
          Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
          Alcotest.test_case "erased reads 0xff" `Quick test_read_erased_is_ff;
          Alcotest.test_case "counter mode" `Quick test_counter_mode_no_data;
        ] );
      ( "state machine",
        [
          Alcotest.test_case "erase-before-write" `Quick test_erase_before_write_enforced;
          Alcotest.test_case "overwrite mid-range" `Quick test_overwrite_detected_mid_range;
          Alcotest.test_case "erase resets block" `Quick test_erase_resets_block;
          Alcotest.test_case "invalidate" `Quick test_invalidate;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "free sector count" `Quick test_free_sectors_in_block;
          QCheck_alcotest.to_alcotest prop_state_machine;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "invalid sector reads stale data" `Quick test_invalid_read_stale;
          Alcotest.test_case "fail-stop kills and revives" `Quick test_fault_fail_stop;
          Alcotest.test_case "torn multi-sector program" `Quick test_fault_torn_program;
          Alcotest.test_case "silent bit flip" `Quick test_fault_flip_bit;
          Alcotest.test_case "transient read error" `Quick test_fault_transient_read;
          Alcotest.test_case "wear histogram" `Quick test_wear_histogram;
        ] );
      ( "timing & wear",
        [
          Alcotest.test_case "operation timing" `Quick test_timing_read_write_erase;
          Alcotest.test_case "merge ~20ms (paper)" `Quick test_merge_cost_is_about_20ms;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
          Alcotest.test_case "wear tracking" `Quick test_wear_tracking;
          Alcotest.test_case "wear-out raises" `Quick test_wear_out_raises;
        ] );
    ]
