(* Tests for the relational layer: heap files and tables over the IPL
   engine, including re-attachment after crash-restart. *)

module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module Engine = Ipl_core.Ipl_engine
module Config = Ipl_core.Ipl_config
module Heap = Relation.Heap
module Table = Relation.Table
module Record = Storage.Record

let b = Bytes.of_string
let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let mk ?(blocks = 128) ?(buffer_pages = 32) () =
  let chip = Chip.create (FConfig.default ~num_blocks:blocks ()) in
  let config = { Config.default with Config.buffer_pages } in
  (chip, config, Engine.create ~config chip)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)

let test_heap_crud () =
  let _, _, e = mk () in
  let h = Heap.create e in
  let r1 = ok (Heap.insert h ~tx:Engine.no_txn (b "one")) in
  let r2 = ok (Heap.insert h ~tx:Engine.no_txn (b "two")) in
  Alcotest.(check (option bytes)) "read 1" (Some (b "one")) (Heap.read h r1);
  Alcotest.(check (option bytes)) "read 2" (Some (b "two")) (Heap.read h r2);
  ok (Heap.update h ~tx:Engine.no_txn r1 (b "ONE"));
  Alcotest.(check (option bytes)) "updated" (Some (b "ONE")) (Heap.read h r1);
  ok (Heap.delete h ~tx:Engine.no_txn r2);
  Alcotest.(check (option bytes)) "deleted" None (Heap.read h r2);
  Alcotest.(check int) "count" 1 (Heap.record_count h)

let test_heap_spills_to_new_pages () =
  let _, _, e = mk () in
  let h = Heap.create e in
  (* ~400-byte records: an 8 KB page takes ~20; 100 records need >= 5 pages. *)
  for i = 1 to 100 do
    ignore (ok (Heap.insert h ~tx:Engine.no_txn (Bytes.make 400 (Char.chr (65 + (i mod 26))))))
  done;
  Alcotest.(check bool) "several member pages" true (Heap.page_count h >= 5);
  Alcotest.(check int) "all live" 100 (Heap.record_count h)

let test_heap_iter_order_and_fold () =
  let _, _, e = mk () in
  let h = Heap.create e in
  let rids = List.init 50 (fun i -> ok (Heap.insert h ~tx:Engine.no_txn (b (Printf.sprintf "%03d" i)))) in
  ignore rids;
  let seen = ref [] in
  Heap.iter h (fun _ data -> seen := Bytes.to_string data :: !seen);
  Alcotest.(check int) "all seen" 50 (List.length !seen);
  let total = Heap.fold h ~init:0 ~f:(fun acc _ data -> acc + int_of_string (Bytes.to_string data)) in
  Alcotest.(check int) "fold" (49 * 50 / 2) total

let test_heap_attach_after_restart () =
  let chip, config, e = mk () in
  let h = Heap.create e in
  let rids =
    List.init 120 (fun i -> (i, ok (Heap.insert h ~tx:Engine.no_txn (b (Printf.sprintf "row-%04d" i)))))
  in
  Engine.Unsafe.checkpoint e;
  let header = Heap.header h in
  let e', _ = Engine.restart ~config chip in
  let h' = Heap.attach e' ~header in
  Alcotest.(check int) "pages recovered" (Heap.page_count h) (Heap.page_count h');
  List.iter
    (fun (i, rid) ->
      Alcotest.(check (option bytes))
        (Printf.sprintf "row %d" i)
        (Some (b (Printf.sprintf "row-%04d" i)))
        (Heap.read h' rid))
    rids;
  (* And it keeps working: the fill page is recovered. *)
  let rid = ok (Heap.insert h' ~tx:Engine.no_txn (b "post-restart")) in
  Alcotest.(check (option bytes)) "new insert" (Some (b "post-restart")) (Heap.read h' rid)

let test_heap_directory_chain_growth () =
  (* Small (2 KB) pages make directory pages overflow quickly: one holds
     ~169 member-page entries; 700 records at 4 per page need ~175 member
     pages, forcing a second directory page. *)
  let chip = Chip.create (FConfig.default ~num_blocks:64 ()) in
  let config =
    { Config.default with Config.page_size = 2048; log_region_bytes = 8192; buffer_pages = 64 }
  in
  let e = Engine.create ~config chip in
  let h = Heap.create e in
  for i = 1 to 700 do
    ignore (ok (Heap.insert h ~tx:Engine.no_txn (Bytes.make 490 (Char.chr (33 + (i mod 90))))))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "many member pages (%d)" (Heap.page_count h))
    true
    (Heap.page_count h > 169);
  Engine.Unsafe.checkpoint e;
  (* The chained directory survives re-attachment. *)
  let e', _ = Engine.restart ~config chip in
  let h' = Heap.attach e' ~header:(Heap.header h) in
  Alcotest.(check int) "pages after restart" (Heap.page_count h) (Heap.page_count h');
  Alcotest.(check int) "records after restart" 700 (Heap.record_count h')

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let test_table_crud () =
  let _, _, e = mk () in
  let t = Table.create e in
  ok (Table.insert t ~tx:Engine.no_txn ~key:5 Record.[ I 5; S "five" ]);
  ok (Table.insert t ~tx:Engine.no_txn ~key:2 Record.[ I 2; S "two" ]);
  Alcotest.(check bool) "find" true (Table.find t 5 = Some Record.[ I 5; S "five" ]);
  Alcotest.(check bool) "absent" true (Table.find t 9 = None);
  (match Table.insert t ~tx:Engine.no_txn ~key:5 Record.[ I 5 ] with
  | Error "duplicate key" -> ()
  | _ -> Alcotest.fail "duplicate must fail");
  Alcotest.(check bool) "update" true
    (ok (Table.update t ~tx:Engine.no_txn ~key:2 (fun r -> Record.set r 1 (Record.S "TWO"))));
  Alcotest.(check bool) "updated" true (Table.find t 2 = Some Record.[ I 2; S "TWO" ]);
  Alcotest.(check bool) "update absent" false
    (ok (Table.update t ~tx:Engine.no_txn ~key:9 (fun r -> r)));
  Alcotest.(check bool) "delete" true (ok (Table.delete t ~tx:Engine.no_txn ~key:2));
  Alcotest.(check bool) "delete absent" false (ok (Table.delete t ~tx:Engine.no_txn ~key:2));
  Alcotest.(check int) "count" 1 (Table.count t)

let test_table_range_and_scan () =
  let _, _, e = mk () in
  let t = Table.create e in
  for k = 1 to 200 do
    ok (Table.insert t ~tx:Engine.no_txn ~key:(k * 3) Record.[ I k ])
  done;
  let r = Table.range t ~lo:10 ~hi:21 in
  Alcotest.(check (list int)) "range keys" [ 12; 15; 18; 21 ] (List.map fst r);
  Alcotest.(check (option int)) "next_ge" (Some 12) (Table.next_key_ge t 10);
  let n = ref 0 in
  Table.scan t (fun _ -> incr n);
  Alcotest.(check int) "scan sees all" 200 !n

let test_table_attach_after_restart () =
  let chip, config, e = mk () in
  let t = Table.create e in
  for k = 1 to 300 do
    ok (Table.insert t ~tx:Engine.no_txn ~key:k Record.[ I k; S (Printf.sprintf "val-%d" k) ])
  done;
  Engine.Unsafe.checkpoint e;
  let hh = Table.heap_header t and ih = Table.index_header t in
  let e', _ = Engine.restart ~config chip in
  let t' = Table.attach e' ~heap_header:hh ~index_header:ih in
  Alcotest.(check int) "count" 300 (Table.count t');
  Alcotest.(check bool) "spot check" true
    (Table.find t' 123 = Some Record.[ I 123; S "val-123" ])

let test_table_transactional () =
  let chip = Chip.create (FConfig.default ~num_blocks:128 ()) in
  let config = { Config.default with Config.recovery_enabled = true; buffer_pages = 16 } in
  let e = Engine.create ~config chip in
  let t = Table.create e in
  ok (Table.insert t ~tx:Engine.no_txn ~key:1 Record.[ I 1; F 10.0 ]);
  Engine.Unsafe.checkpoint e;
  let txi = Engine.Unsafe.begin_txn e in
  let tx = Engine.Unsafe.txn txi in
  Alcotest.(check bool) "tx update" true
    (ok (Table.update t ~tx ~key:1 (fun r -> Record.set r 1 (Record.F 99.0))));
  ok (Table.insert t ~tx ~key:2 Record.[ I 2; F 0.0 ]);
  Engine.Unsafe.abort e txi;
  Alcotest.(check bool) "update rolled back" true (Table.find t 1 = Some Record.[ I 1; F 10.0 ]);
  Alcotest.(check bool) "insert rolled back" true (Table.find t 2 = None)

(* Property: table matches a model map under random mutations, and
   re-attaching after checkpoint+restart preserves the state. *)
let prop_table_vs_model_with_restart =
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (4, map2 (fun k v -> `Insert (k, v)) (int_bound 100) (int_bound 100_000));
          (2, map2 (fun k v -> `Update (k, v)) (int_bound 100) (int_bound 100_000));
          (1, map (fun k -> `Delete k) (int_bound 100));
        ])
  in
  QCheck.Test.make ~name:"table matches model, survives restart" ~count:20
    (QCheck.make QCheck.Gen.(list_size (int_range 0 150) gen_op))
    (fun ops ->
      let chip, config, e = mk ~blocks:128 ~buffer_pages:16 () in
      let t = Table.create e in
      let model = Hashtbl.create 32 in
      List.iter
        (fun op ->
          match op with
          | `Insert (k, v) -> (
              match Table.insert t ~tx:Engine.no_txn ~key:k Record.[ I v ] with
              | Ok () -> Hashtbl.replace model k v
              | Error _ -> assert (Hashtbl.mem model k))
          | `Update (k, v) ->
              if ok (Table.update t ~tx:Engine.no_txn ~key:k (fun _ -> Record.[ I v ])) then
                Hashtbl.replace model k v
          | `Delete k -> if ok (Table.delete t ~tx:Engine.no_txn ~key:k) then Hashtbl.remove model k)
        ops;
      Engine.Unsafe.checkpoint e;
      let e', _ = Engine.restart ~config chip in
      let t' =
        Table.attach e' ~heap_header:(Table.heap_header t) ~index_header:(Table.index_header t)
      in
      Table.count t' = Hashtbl.length model
      && Hashtbl.fold (fun k v acc -> acc && Table.find t' k = Some Record.[ I v ]) model true)

let () =
  Alcotest.run "relation"
    [
      ( "heap",
        [
          Alcotest.test_case "crud" `Quick test_heap_crud;
          Alcotest.test_case "spills to new pages" `Quick test_heap_spills_to_new_pages;
          Alcotest.test_case "iter & fold" `Quick test_heap_iter_order_and_fold;
          Alcotest.test_case "attach after restart" `Quick test_heap_attach_after_restart;
          Alcotest.test_case "directory chain growth" `Slow test_heap_directory_chain_growth;
        ] );
      ( "table",
        [
          Alcotest.test_case "crud" `Quick test_table_crud;
          Alcotest.test_case "range & scan" `Quick test_table_range_and_scan;
          Alcotest.test_case "attach after restart" `Quick test_table_attach_after_restart;
          Alcotest.test_case "transactional" `Quick test_table_transactional;
          QCheck_alcotest.to_alcotest prop_table_vs_model_with_restart;
        ] );
    ]
