(* Tests for the LRU buffer pool. *)

module Pool = Bufmgr.Buffer_pool

let mk ?(capacity = 3) () =
  let fetched = ref [] and written = ref [] in
  let pool =
    Pool.create ~capacity
      ~fetch:(fun k ->
        fetched := k :: !fetched;
        ref (k * 10))
      ~write_back:(fun k v -> written := (k, !v) :: !written)
      ()
  in
  (pool, fetched, written)

let test_fetch_on_miss_then_hit () =
  let pool, fetched, _ = mk () in
  let v = Pool.with_page pool 1 (fun v -> !v) in
  Alcotest.(check int) "value" 10 v;
  ignore (Pool.with_page pool 1 (fun v -> !v));
  Alcotest.(check (list int)) "fetched once" [ 1 ] !fetched;
  let s = Pool.stats pool in
  Alcotest.(check int) "hits" 1 s.Pool.hits;
  Alcotest.(check int) "misses" 1 s.Pool.misses

let test_lru_eviction_order () =
  let pool, fetched, _ = mk ~capacity:2 () in
  ignore (Pool.with_page pool 1 (fun _ -> ()));
  ignore (Pool.with_page pool 2 (fun _ -> ()));
  ignore (Pool.with_page pool 1 (fun _ -> ()));
  (* touch 1: now 2 is LRU *)
  ignore (Pool.with_page pool 3 (fun _ -> ()));
  (* evicts 2 *)
  Alcotest.(check bool) "1 cached" true (Pool.contains pool 1);
  Alcotest.(check bool) "2 evicted" false (Pool.contains pool 2);
  Alcotest.(check bool) "3 cached" true (Pool.contains pool 3);
  ignore (Pool.with_page pool 2 (fun _ -> ()));
  Alcotest.(check (list int)) "refetch order" [ 2; 3; 2; 1 ] !fetched

let test_dirty_write_back_on_eviction () =
  let pool, _, written = mk ~capacity:1 () in
  ignore (Pool.with_page pool 5 ~dirty:true (fun v -> v := 99));
  ignore (Pool.with_page pool 6 (fun _ -> ()));
  Alcotest.(check (list (pair int int))) "written on evict" [ (5, 99) ] !written

let test_clean_eviction_no_write_back () =
  let pool, _, written = mk ~capacity:1 () in
  ignore (Pool.with_page pool 5 (fun _ -> ()));
  ignore (Pool.with_page pool 6 (fun _ -> ()));
  Alcotest.(check (list (pair int int))) "no write back" [] !written

let test_flush_all () =
  let pool, _, written = mk () in
  ignore (Pool.with_page pool 1 ~dirty:true (fun _ -> ()));
  ignore (Pool.with_page pool 2 ~dirty:true (fun _ -> ()));
  ignore (Pool.with_page pool 3 (fun _ -> ()));
  Pool.flush_all pool;
  Alcotest.(check int) "two write backs" 2 (List.length !written);
  Alcotest.(check int) "none dirty" 0 (Pool.dirty_count pool);
  Alcotest.(check int) "still cached" 3 (Pool.cached pool);
  (* Flushing again writes nothing. *)
  Pool.flush_all pool;
  Alcotest.(check int) "idempotent" 2 (List.length !written)

let test_drop_all () =
  let pool, _, written = mk () in
  ignore (Pool.with_page pool 1 ~dirty:true (fun _ -> ()));
  Pool.drop_all pool;
  Alcotest.(check int) "flushed" 1 (List.length !written);
  Alcotest.(check int) "empty" 0 (Pool.cached pool)

let test_pinned_not_evicted () =
  let pool, _, _ = mk ~capacity:2 () in
  Pool.with_page pool 1 (fun _ ->
      (* 1 is pinned during this nested work; filling the pool must evict 2,
         not 1. *)
      ignore (Pool.with_page pool 2 (fun _ -> ()));
      ignore (Pool.with_page pool 3 (fun _ -> ()));
      Alcotest.(check bool) "pinned stays" true (Pool.contains pool 1);
      Alcotest.(check bool) "unpinned evicted" false (Pool.contains pool 2))

let test_all_pinned_fails () =
  let pool, _, _ = mk ~capacity:1 () in
  Pool.with_page pool 1 (fun _ ->
      match Pool.with_page pool 2 (fun _ -> ()) with
      | () -> Alcotest.fail "expected failure"
      | exception Failure _ -> ())

let test_mark_dirty_and_clean () =
  let pool, _, written = mk () in
  ignore (Pool.with_page pool 1 (fun _ -> ()));
  Pool.mark_dirty pool 1;
  Alcotest.(check bool) "dirty" true (Pool.is_dirty pool 1);
  Alcotest.(check int) "dirty counted" 1 (Pool.dirty_count pool);
  (* Re-marking an already-dirty frame must not double-count. *)
  Pool.mark_dirty pool 1;
  Alcotest.(check int) "idempotent mark" 1 (Pool.dirty_count pool);
  Pool.clean pool 1;
  Alcotest.(check bool) "cleaned" false (Pool.is_dirty pool 1);
  Alcotest.(check int) "dirty uncounted" 0 (Pool.dirty_count pool);
  Pool.flush_all pool;
  Alcotest.(check int) "clean suppressed write back" 0 (List.length !written);
  Alcotest.check_raises "mark absent"
    (Invalid_argument "Buffer_pool.mark_dirty: page 99 is not cached") (fun () ->
      Pool.mark_dirty pool 99)

(* The incremental dirty counter must agree with a scan at every
   transition: mark, clean, write-back on eviction, flush_all. *)
let test_dirty_count_incremental () =
  let pool, _, _ = mk ~capacity:4 () in
  let scan_dirty () =
    let n = ref 0 in
    Pool.iter (fun _ _ ~dirty -> if dirty then incr n) pool;
    !n
  in
  let check_agree label =
    Alcotest.(check int) label (scan_dirty ()) (Pool.dirty_count pool)
  in
  ignore (Pool.with_page pool 1 ~dirty:true (fun _ -> ()));
  ignore (Pool.with_page pool 2 ~dirty:true (fun _ -> ()));
  ignore (Pool.with_page pool 3 (fun _ -> ()));
  check_agree "after writes";
  Alcotest.(check int) "two dirty" 2 (Pool.dirty_count pool);
  (* Fill past capacity: the LRU dirty frame is written back on eviction. *)
  ignore (Pool.with_page pool 4 (fun _ -> ()));
  ignore (Pool.with_page pool 5 (fun _ -> ()));
  check_agree "after eviction";
  Pool.flush_all pool;
  check_agree "after flush_all";
  Alcotest.(check int) "all clean" 0 (Pool.dirty_count pool)

let test_find_does_not_touch () =
  let pool, _, _ = mk ~capacity:2 () in
  ignore (Pool.with_page pool 1 (fun _ -> ()));
  ignore (Pool.with_page pool 2 (fun _ -> ()));
  (* Peek at 1: must NOT make it MRU. *)
  Alcotest.(check bool) "peek" true (Pool.find pool 1 <> None);
  ignore (Pool.with_page pool 3 (fun _ -> ()));
  Alcotest.(check bool) "1 still evicted first" false (Pool.contains pool 1)

let test_write_back_once_per_cleaning () =
  let pool, _, written = mk ~capacity:2 () in
  ignore (Pool.with_page pool 1 ~dirty:true (fun _ -> ()));
  Pool.flush_all pool;
  (* Evicting the now-clean frame must not write again. *)
  ignore (Pool.with_page pool 2 (fun _ -> ()));
  ignore (Pool.with_page pool 3 (fun _ -> ()));
  Alcotest.(check int) "single write back" 1 (List.length !written)

(* Property: hit+miss accounting and capacity invariant under random access. *)
let prop_capacity_invariant =
  QCheck.Test.make ~name:"never exceeds capacity; stats consistent" ~count:100
    QCheck.(pair (int_range 1 8) (small_list (pair (int_bound 20) bool)))
    (fun (cap, accesses) ->
      let pool =
        Pool.create ~capacity:cap ~fetch:(fun k -> k) ~write_back:(fun _ _ -> ()) ()
      in
      List.iter
        (fun (k, dirty) -> ignore (Pool.with_page pool k ~dirty (fun v -> v)))
        accesses;
      let s = Pool.stats pool in
      Pool.cached pool <= cap
      && s.Pool.hits + s.Pool.misses = List.length accesses
      && s.Pool.misses >= Pool.cached pool)

let () =
  Alcotest.run "bufmgr"
    [
      ( "buffer pool",
        [
          Alcotest.test_case "fetch then hit" `Quick test_fetch_on_miss_then_hit;
          Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "dirty write back" `Quick test_dirty_write_back_on_eviction;
          Alcotest.test_case "clean no write back" `Quick test_clean_eviction_no_write_back;
          Alcotest.test_case "flush_all" `Quick test_flush_all;
          Alcotest.test_case "drop_all" `Quick test_drop_all;
          Alcotest.test_case "pinned not evicted" `Quick test_pinned_not_evicted;
          Alcotest.test_case "all pinned fails" `Quick test_all_pinned_fails;
          Alcotest.test_case "mark dirty / clean" `Quick test_mark_dirty_and_clean;
          Alcotest.test_case "dirty count incremental" `Quick test_dirty_count_incremental;
          Alcotest.test_case "find does not touch" `Quick test_find_does_not_touch;
          Alcotest.test_case "write back once" `Quick test_write_back_once_per_cleaning;
          QCheck_alcotest.to_alcotest prop_capacity_invariant;
        ] );
    ]
