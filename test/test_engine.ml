(* End-to-end tests of the IPL engine: buffered reads and updates,
   transactional commit/abort, and crash recovery (Section 5). *)

module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module Page = Storage.Page
module Engine = Ipl_core.Ipl_engine
module Config = Ipl_core.Ipl_config
module Store = Ipl_core.Ipl_storage
module Trx_log = Ipl_core.Trx_log

let b = Bytes.of_string

let base_config ?(recovery = false) ?(buffer_pages = 8) () =
  { Config.default with Config.recovery_enabled = recovery; buffer_pages }

let mk ?recovery ?buffer_pages ?(blocks = 64) () =
  let chip = Chip.create (FConfig.default ~num_blocks:blocks ()) in
  let config = base_config ?recovery ?buffer_pages () in
  (chip, config, Engine.create ~config chip)

let ok = function Ok x -> x | Error e -> Alcotest.failf "unexpected error: %s" (Engine.error_to_string e)

let test_insert_read () =
  let _, _, e = mk () in
  let page = Engine.Unsafe.allocate_page e in
  let s0 = ok (Engine.Unsafe.insert e ~tx:0 ~page (b "alpha")) in
  let s1 = ok (Engine.Unsafe.insert e ~tx:0 ~page (b "beta")) in
  Alcotest.(check int) "slot 0" 0 s0;
  Alcotest.(check int) "slot 1" 1 s1;
  Alcotest.(check (option bytes)) "read 0" (Some (b "alpha")) (Engine.Unsafe.read e ~page ~slot:0);
  Alcotest.(check (option bytes)) "read 1" (Some (b "beta")) (Engine.Unsafe.read e ~page ~slot:1)

let test_update_delete () =
  let _, _, e = mk () in
  let page = Engine.Unsafe.allocate_page e in
  let slot = ok (Engine.Unsafe.insert e ~tx:0 ~page (b "original")) in
  ok (Engine.Unsafe.update e ~tx:0 ~page ~slot (b "Original"));
  Alcotest.(check (option bytes)) "updated" (Some (b "Original")) (Engine.Unsafe.read e ~page ~slot);
  ok (Engine.Unsafe.update e ~tx:0 ~page ~slot (b "longer than before"));
  Alcotest.(check (option bytes)) "resized" (Some (b "longer than before"))
    (Engine.Unsafe.read e ~page ~slot);
  ok (Engine.Unsafe.delete e ~tx:0 ~page ~slot);
  Alcotest.(check (option bytes)) "deleted" None (Engine.Unsafe.read e ~page ~slot);
  (match Engine.Unsafe.delete e ~tx:0 ~page ~slot with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double delete must fail")

let test_update_range () =
  let _, _, e = mk () in
  let page = Engine.Unsafe.allocate_page e in
  let slot = ok (Engine.Unsafe.insert e ~tx:0 ~page (b "0123456789")) in
  ok (Engine.Unsafe.update_range e ~tx:0 ~page ~slot ~offset:3 (b "XYZ"));
  Alcotest.(check (option bytes)) "patched" (Some (b "012XYZ6789")) (Engine.Unsafe.read e ~page ~slot);
  match Engine.Unsafe.update_range e ~tx:0 ~page ~slot ~offset:9 (b "AB") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range patch must fail"

let test_survives_eviction () =
  (* A tiny pool forces constant eviction; updates must persist through the
     in-page logs without any page write-back. *)
  let _, _, e = mk ~buffer_pages:2 () in
  let pages = List.init 10 (fun _ -> Engine.Unsafe.allocate_page e) in
  List.iteri (fun i page -> ignore (ok (Engine.Unsafe.insert e ~tx:0 ~page (b (string_of_int i))))) pages;
  List.iteri
    (fun i page ->
      Alcotest.(check (option bytes))
        (Printf.sprintf "page %d" i)
        (Some (b (string_of_int i)))
        (Engine.Unsafe.read e ~page ~slot:0))
    pages

let test_dirty_page_never_written_back () =
  (* Core IPL claim: evicting a dirty page writes its log sector, never the
     8 KB page image. We verify no data-page sectors are written after
     allocation. *)
  let chip, _, e = mk ~buffer_pages:2 () in
  let pages = List.init 6 (fun _ -> Engine.Unsafe.allocate_page e) in
  let written_before = (Chip.stats chip).Flash_sim.Flash_stats.sectors_written in
  List.iter (fun page -> ignore (ok (Engine.Unsafe.insert e ~tx:0 ~page (b "payload")))) pages;
  List.iter (fun page -> ignore (Engine.Unsafe.read e ~page ~slot:0)) pages;
  let written = (Chip.stats chip).Flash_sim.Flash_stats.sectors_written - written_before in
  (* 6 log-sector flushes = 6 sectors; a page write-back would be 16. *)
  Alcotest.(check bool)
    (Printf.sprintf "only log sectors written (%d)" written)
    true (written <= 6)

let test_many_updates_trigger_merges () =
  let _, _, e = mk ~buffer_pages:2 () in
  let page = Engine.Unsafe.allocate_page e in
  let slot = ok (Engine.Unsafe.insert e ~tx:0 ~page (b "counter=000000")) in
  for i = 1 to 2000 do
    ok (Engine.Unsafe.update e ~tx:0 ~page ~slot (b (Printf.sprintf "counter=%06d" i)))
  done;
  Engine.Unsafe.checkpoint e;
  Alcotest.(check (option bytes)) "final value" (Some (b "counter=002000"))
    (Engine.Unsafe.read e ~page ~slot);
  let s = Engine.stats e in
  Alcotest.(check bool) "merges happened" true (s.Engine.storage.Store.merges > 0)

let test_checkpoint_then_restart () =
  let chip, config, e = mk () in
  let page = Engine.Unsafe.allocate_page e in
  let slot = ok (Engine.Unsafe.insert e ~tx:0 ~page (b "durable")) in
  ok (Engine.Unsafe.update e ~tx:0 ~page ~slot (b "DURABLE"));
  Engine.Unsafe.checkpoint e;
  (* Crash: throw the engine away, restart from the chip. *)
  let e', aborted = Engine.restart ~config chip in
  Alcotest.(check (list int)) "no transactions aborted" [] aborted;
  Alcotest.(check (option bytes)) "survives restart" (Some (b "DURABLE"))
    (Engine.Unsafe.read e' ~page ~slot)

let test_unflushed_work_lost_without_checkpoint () =
  let chip, config, e = mk () in
  let page = Engine.Unsafe.allocate_page e in
  ignore (ok (Engine.Unsafe.insert e ~tx:0 ~page (b "volatile")));
  Engine.Unsafe.checkpoint e;
  ignore (ok (Engine.Unsafe.insert e ~tx:0 ~page (b "after-checkpoint")));
  (* No checkpoint for the second insert: it lives only in the in-memory
     log sector, so a crash loses it. *)
  let e', _ = Engine.restart ~config chip in
  Alcotest.(check (option bytes)) "first survives" (Some (b "volatile"))
    (Engine.Unsafe.read e' ~page ~slot:0);
  Alcotest.(check (option bytes)) "second lost" None (Engine.Unsafe.read e' ~page ~slot:1)

let test_noop_update_logs_nothing () =
  let _, _, e = mk () in
  let page = Engine.Unsafe.allocate_page e in
  let slot = ok (Engine.Unsafe.insert e ~tx:0 ~page (b "same value")) in
  Engine.Unsafe.checkpoint e;
  let writes_before =
    (Engine.stats e).Engine.storage.Store.log_sector_writes
  in
  ok (Engine.Unsafe.update e ~tx:0 ~page ~slot (b "same value"));
  Engine.Unsafe.checkpoint e;
  Alcotest.(check int) "no log sector written" writes_before
    (Engine.stats e).Engine.storage.Store.log_sector_writes;
  Alcotest.(check (option bytes)) "value unchanged" (Some (b "same value"))
    (Engine.Unsafe.read e ~page ~slot)

let test_multi_range_update () =
  (* Two far-apart changes in one record become two small delta records,
     both replayed correctly from flash. *)
  let chip, config, e = mk () in
  let page = Engine.Unsafe.allocate_page e in
  let payload = Bytes.make 400 'a' in
  let slot = ok (Engine.Unsafe.insert e ~tx:0 ~page payload) in
  let changed = Bytes.copy payload in
  Bytes.set changed 3 'X';
  Bytes.set changed 390 'Y';
  ok (Engine.Unsafe.update e ~tx:0 ~page ~slot changed);
  Engine.Unsafe.checkpoint e;
  let e', _ = Engine.restart ~config chip in
  Alcotest.(check (option bytes)) "both deltas replayed" (Some changed)
    (Engine.Unsafe.read e' ~page ~slot)

let test_large_equal_length_update_chunks () =
  (* A record whose entire 450-byte payload changes: the delta no longer
     fits one log sector and must be chunked into several records. *)
  let chip, config, e = mk () in
  let page = Engine.Unsafe.allocate_page e in
  let before = Bytes.make 450 'o' in
  let slot = ok (Engine.Unsafe.insert e ~tx:0 ~page before) in
  let after = Bytes.make 450 'n' in
  ok (Engine.Unsafe.update e ~tx:0 ~page ~slot after);
  Engine.Unsafe.checkpoint e;
  let e', _ = Engine.restart ~config chip in
  Alcotest.(check (option bytes)) "chunked update replayed" (Some after)
    (Engine.Unsafe.read e' ~page ~slot)

let test_large_resize_update_as_delete_insert () =
  (* Growing a 300-byte record to 400 bytes: before+after exceeds a log
     sector, so the engine logs delete + insert instead. *)
  let chip, config, e = mk () in
  let page = Engine.Unsafe.allocate_page e in
  let slot = ok (Engine.Unsafe.insert e ~tx:0 ~page (Bytes.make 300 'b')) in
  let after = Bytes.make 400 'A' in
  ok (Engine.Unsafe.update e ~tx:0 ~page ~slot after);
  Alcotest.(check (option bytes)) "in memory" (Some after) (Engine.Unsafe.read e ~page ~slot);
  Engine.Unsafe.checkpoint e;
  let e', _ = Engine.restart ~config chip in
  Alcotest.(check (option bytes)) "replayed" (Some after) (Engine.Unsafe.read e' ~page ~slot)

let test_oversized_records_rejected_cleanly () =
  let _, _, e = mk () in
  let page = Engine.Unsafe.allocate_page e in
  let max = Engine.max_record_payload e in
  (match Engine.Unsafe.insert e ~tx:0 ~page (Bytes.make (max + 1) 'x') with
  | Error Engine.Record_too_large -> ()
  | _ -> Alcotest.fail "oversized insert must be rejected");
  let slot = ok (Engine.Unsafe.insert e ~tx:0 ~page (Bytes.make 10 'x')) in
  (match Engine.Unsafe.update e ~tx:0 ~page ~slot (Bytes.make (max + 1) 'y') with
  | Error Engine.Record_too_large -> ()
  | _ -> Alcotest.fail "oversized update must be rejected");
  (* A maximal-size record still works end to end. *)
  let slot2 = ok (Engine.Unsafe.insert e ~tx:0 ~page (Bytes.make max 'm')) in
  Engine.Unsafe.checkpoint e;
  Alcotest.(check (option bytes)) "max record" (Some (Bytes.make max 'm'))
    (Engine.Unsafe.read e ~page ~slot:slot2)

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)

let test_commit_durable_without_checkpoint () =
  let chip, _, e = mk ~recovery:true () in
  let config = base_config ~recovery:true () in
  let page = Engine.Unsafe.allocate_page e in
  let tx = Engine.Unsafe.begin_txn e in
  let slot = ok (Engine.Unsafe.insert e ~tx ~page (b "committed-data")) in
  Engine.Unsafe.commit e tx;
  (* Crash immediately after commit: the forced log sectors + commit record
     must be enough (no-force of data pages, Section 5.2). *)
  let e', _ = Engine.restart ~config chip in
  Alcotest.(check (option bytes)) "committed data survives" (Some (b "committed-data"))
    (Engine.Unsafe.read e' ~page ~slot)

let test_abort_rolls_back_in_memory () =
  let _, _, e = mk ~recovery:true () in
  let page = Engine.Unsafe.allocate_page e in
  let slot = ok (Engine.Unsafe.insert e ~tx:0 ~page (b "stable")) in
  Engine.Unsafe.commit e (let tx = Engine.Unsafe.begin_txn e in ignore tx; tx);
  let tx = Engine.Unsafe.begin_txn e in
  ok (Engine.Unsafe.update e ~tx ~page ~slot (b "doomed"));
  let s2 = ok (Engine.Unsafe.insert e ~tx ~page (b "also doomed")) in
  Alcotest.(check (option bytes)) "visible before abort" (Some (b "doomed"))
    (Engine.Unsafe.read e ~page ~slot);
  Engine.Unsafe.abort e tx;
  Alcotest.(check (option bytes)) "update rolled back" (Some (b "stable"))
    (Engine.Unsafe.read e ~page ~slot);
  Alcotest.(check (option bytes)) "insert rolled back" None (Engine.Unsafe.read e ~page ~slot:s2)

let test_abort_after_flush_filtered_by_status () =
  (* Force the aborting transaction's records all the way to flash (tiny
     buffer pool -> eviction flushes), then abort: the read path must
     filter them out. *)
  let _, _, e = mk ~recovery:true ~buffer_pages:2 () in
  let page = Engine.Unsafe.allocate_page e in
  let slot = ok (Engine.Unsafe.insert e ~tx:0 ~page (b "stable")) in
  Engine.Unsafe.checkpoint e;
  let tx = Engine.Unsafe.begin_txn e in
  ok (Engine.Unsafe.update e ~tx ~page ~slot (b "doomed"));
  (* Evict the page by touching others. *)
  let others = List.init 4 (fun _ -> Engine.Unsafe.allocate_page e) in
  List.iter (fun p -> ignore (ok (Engine.Unsafe.insert e ~tx:0 ~page:p (b "filler")))) others;
  Engine.Unsafe.abort e tx;
  Alcotest.(check (option bytes)) "flashed records filtered" (Some (b "stable"))
    (Engine.Unsafe.read e ~page ~slot)

let test_active_txn_aborted_on_restart () =
  let chip, _, e = mk ~recovery:true ~buffer_pages:2 () in
  let config = base_config ~recovery:true () in
  let page = Engine.Unsafe.allocate_page e in
  let slot = ok (Engine.Unsafe.insert e ~tx:0 ~page (b "stable")) in
  Engine.Unsafe.checkpoint e;
  let tx = Engine.Unsafe.begin_txn e in
  ok (Engine.Unsafe.update e ~tx ~page ~slot (b "zombie"));
  (* Push the records to flash via eviction, then crash without outcome. *)
  let others = List.init 4 (fun _ -> Engine.Unsafe.allocate_page e) in
  List.iter (fun p -> ignore (ok (Engine.Unsafe.insert e ~tx:0 ~page:p (b "filler")))) others;
  Ipl_core.Ipl_storage.force_meta (Engine.storage e);
  let e', aborted = Engine.restart ~config chip in
  Alcotest.(check (list int)) "incomplete tx aborted" [ tx ] aborted;
  Alcotest.(check bool) "status aborted" true (Engine.txn_status e' tx = Trx_log.Aborted);
  Alcotest.(check (option bytes)) "zombie change invisible" (Some (b "stable"))
    (Engine.Unsafe.read e' ~page ~slot)

let test_committed_and_aborted_interleaved () =
  let _, _, e = mk ~recovery:true () in
  let page = Engine.Unsafe.allocate_page e in
  let keep = Engine.Unsafe.begin_txn e in
  let drop = Engine.Unsafe.begin_txn e in
  let s_keep = ok (Engine.Unsafe.insert e ~tx:keep ~page (b "keep")) in
  let s_drop = ok (Engine.Unsafe.insert e ~tx:drop ~page (b "drop")) in
  Engine.Unsafe.commit e keep;
  Engine.Unsafe.abort e drop;
  Alcotest.(check (option bytes)) "kept" (Some (b "keep")) (Engine.Unsafe.read e ~page ~slot:s_keep);
  Alcotest.(check (option bytes)) "dropped" None (Engine.Unsafe.read e ~page ~slot:s_drop)

let test_abort_requires_recovery_mode () =
  let _, _, e = mk () in
  let tx = Engine.Unsafe.begin_txn e in
  try
    Engine.Unsafe.abort e tx;
    Alcotest.fail "abort must fail without recovery"
  with Failure _ -> ()

let test_txn_ids_resume_after_restart () =
  let chip, _, e = mk ~recovery:true () in
  let config = base_config ~recovery:true () in
  let tx1 = Engine.Unsafe.begin_txn e in
  Engine.Unsafe.commit e tx1;
  let tx2 = Engine.Unsafe.begin_txn e in
  Engine.Unsafe.commit e tx2;
  let e', _ = Engine.restart ~config chip in
  let tx3 = Engine.Unsafe.begin_txn e' in
  Alcotest.(check bool) (Printf.sprintf "fresh id %d > %d" tx3 tx2) true (tx3 > tx2)

let test_selective_merge_under_long_txn () =
  (* A long-running transaction hammers one page while its unit runs out of
     log sectors: the engine must divert to overflow, keep the data
     readable, and merge once the transaction commits. *)
  let _, _, e = mk ~recovery:true ~buffer_pages:2 () in
  let page = Engine.Unsafe.allocate_page e in
  let slot = ok (Engine.Unsafe.insert e ~tx:0 ~page (b "v0000")) in
  Engine.Unsafe.checkpoint e;
  let tx = Engine.Unsafe.begin_txn e in
  for i = 1 to 1000 do
    ok (Engine.Unsafe.update e ~tx ~page ~slot (b (Printf.sprintf "v%04d" i)))
  done;
  Engine.Unsafe.commit e tx;
  let s = Engine.stats e in
  Alcotest.(check bool) "diversions happened" true
    (s.Engine.storage.Store.overflow_diversions > 0);
  Alcotest.(check (option bytes)) "final state" (Some (b "v1000")) (Engine.Unsafe.read e ~page ~slot);
  (* Follow-up work merges the backlog away. *)
  for i = 1001 to 1800 do
    ok (Engine.Unsafe.update e ~tx:0 ~page ~slot (b (Printf.sprintf "v%04d" i)))
  done;
  Engine.Unsafe.checkpoint e;
  Alcotest.(check (option bytes)) "after merge" (Some (b "v1800")) (Engine.Unsafe.read e ~page ~slot)

let test_restart_mid_merge_consistency () =
  (* Run a workload with plenty of merges, checkpoint, crash, restart, and
     verify every record. *)
  let chip, config, e = mk ~buffer_pages:4 () in
  let pages = Array.init 20 (fun _ -> Engine.Unsafe.allocate_page e) in
  let model = Array.make 20 "" in
  let rng = Ipl_util.Rng.of_int 99 in
  Array.iteri
    (fun i page ->
      let v = Printf.sprintf "init-%04d" i in
      ignore (ok (Engine.Unsafe.insert e ~tx:0 ~page (b v)));
      model.(i) <- v)
    pages;
  for round = 1 to 500 do
    let i = Ipl_util.Rng.int rng 20 in
    let v = Printf.sprintf "r%03d-%04d" (round mod 1000) i in
    ok (Engine.Unsafe.update e ~tx:0 ~page:pages.(i) ~slot:0 (b v));
    model.(i) <- v
  done;
  Engine.Unsafe.checkpoint e;
  let e', _ = Engine.restart ~config chip in
  Array.iteri
    (fun i page ->
      Alcotest.(check (option bytes))
        (Printf.sprintf "page %d" i)
        (Some (b model.(i)))
        (Engine.Unsafe.read e' ~page ~slot:0))
    pages

(* Property: a random batch of committed transactions is always fully
   visible after crash-restart; aborted ones never are. *)
let prop_transactional_crash_consistency =
  QCheck.Test.make ~name:"crash keeps committed, drops aborted" ~count:20
    QCheck.(small_list (pair bool (int_bound 999)))
    (fun txs ->
      let chip = Chip.create (FConfig.default ~num_blocks:64 ()) in
      let config = base_config ~recovery:true ~buffer_pages:4 () in
      let e = Engine.create ~config chip in
      let page = Engine.Unsafe.allocate_page e in
      Engine.Unsafe.checkpoint e;
      let expected = ref [] in
      List.iter
        (fun (commit, v) ->
          let tx = Engine.Unsafe.begin_txn e in
          let data = b (Printf.sprintf "tx-%03d" v) in
          match Engine.Unsafe.insert e ~tx ~page data with
          | Error _ -> Engine.Unsafe.abort e tx
          | Ok slot ->
              if commit then begin
                Engine.Unsafe.commit e tx;
                expected := (slot, Printf.sprintf "tx-%03d" v) :: !expected
              end
              else Engine.Unsafe.abort e tx)
        txs;
      let e', _ = Engine.restart ~config chip in
      List.for_all
        (fun (slot, v) ->
          match Engine.Unsafe.read e' ~page ~slot with
          | Some got -> Bytes.to_string got = v
          | None -> false)
        !expected)

let test_group_commit_batches () =
  (* Many tiny transactions: per-commit forcing writes one (mostly empty)
     log sector each; group commit packs several transactions' records
     into shared sectors. *)
  let run group =
    let chip = Chip.create (FConfig.default ~num_blocks:64 ()) in
    let config = { (base_config ~recovery:true ()) with Config.group_commit = group } in
    let e = Engine.create ~config chip in
    let page = Engine.Unsafe.allocate_page e in
    Engine.Unsafe.checkpoint e;
    for i = 0 to 99 do
      let tx = Engine.Unsafe.begin_txn e in
      ignore (ok (Engine.Unsafe.insert e ~tx ~page:(if i < 50 then page else page) (b (Printf.sprintf "r%03d" i))));
      Engine.Unsafe.commit e tx
    done;
    Engine.Unsafe.flush_commits e;
    (Engine.stats e).Engine.storage.Store.log_sector_writes
  in
  let per_commit = run 0 and grouped = run 10 in
  Alcotest.(check bool)
    (Printf.sprintf "grouped writes fewer sectors (%d < %d)" grouped per_commit)
    true
    (grouped * 3 < per_commit)

let test_group_commit_durability_boundary () =
  let chip = Chip.create (FConfig.default ~num_blocks:64 ()) in
  let config = { (base_config ~recovery:true ()) with Config.group_commit = 100 } in
  let e = Engine.create ~config chip in
  let page = Engine.Unsafe.allocate_page e in
  Engine.Unsafe.checkpoint e;
  let t1 = Engine.Unsafe.begin_txn e in
  let s1 = ok (Engine.Unsafe.insert e ~tx:t1 ~page (b "batched-1")) in
  Engine.Unsafe.commit e t1;
  (* Crash before the batch is flushed: the commit is lost (documented
     group-commit trade-off). *)
  let e', _ = Engine.restart ~config chip in
  Alcotest.(check (option bytes)) "unflushed commit lost" None (Engine.Unsafe.read e' ~page ~slot:s1);
  (* Same scenario, but flush_commits makes it durable. *)
  let t2 = Engine.Unsafe.begin_txn e' in
  let s2 = ok (Engine.Unsafe.insert e' ~tx:t2 ~page (b "batched-2")) in
  Engine.Unsafe.commit e' t2;
  Engine.Unsafe.flush_commits e';
  let e'', _ = Engine.restart ~config chip in
  Alcotest.(check (option bytes)) "flushed commit survives" (Some (b "batched-2"))
    (Engine.Unsafe.read e'' ~page ~slot:s2)

let test_compact_moves_merges_off_path () =
  let _, _, e = mk ~buffer_pages:4 () in
  let page = Engine.Unsafe.allocate_page e in
  let slot = ok (Engine.Unsafe.insert e ~tx:0 ~page (b "v00000")) in
  (* Fill most of the unit's log region. *)
  for i = 1 to 300 do
    ok (Engine.Unsafe.update e ~tx:0 ~page ~slot (b (Printf.sprintf "v%05d" i)))
  done;
  Engine.Unsafe.checkpoint e;
  let merged = Engine.Unsafe.compact e ~max_merges:4 in
  Alcotest.(check bool) "compacted something" true (merged >= 1);
  let merges_before = (Engine.stats e).Engine.storage.Store.merges in
  (* The next burst of updates now has a fresh log region: no merge on the
     write path until it fills again. *)
  for i = 301 to 400 do
    ok (Engine.Unsafe.update e ~tx:0 ~page ~slot (b (Printf.sprintf "v%05d" i)))
  done;
  Engine.Unsafe.checkpoint e;
  Alcotest.(check int) "no merge on the write path" merges_before
    (Engine.stats e).Engine.storage.Store.merges;
  Alcotest.(check (option bytes)) "data intact" (Some (b "v00400")) (Engine.Unsafe.read e ~page ~slot);
  (* Compacting an already-clean store is a no-op. *)
  Alcotest.(check int) "idempotent when clean"
    0
    (let _ = Engine.Unsafe.compact e ~max_merges:4 in
     Engine.Unsafe.compact e ~max_merges:4)

(* Property: crash at an arbitrary point in a transactional workload.
   Whatever was committed before the crash point is visible afterwards;
   whatever was not committed is invisible. *)
let prop_crash_anywhere =
  QCheck.Test.make ~name:"crash at any point preserves exactly the committed prefix" ~count:25
    QCheck.(pair small_int (int_bound 30))
    (fun (seed, crash_after) ->
      let chip = Chip.create (FConfig.default ~num_blocks:64 ()) in
      let config = base_config ~recovery:true ~buffer_pages:3 () in
      let e = Engine.create ~config chip in
      let page = Engine.Unsafe.allocate_page e in
      Engine.Unsafe.checkpoint e;
      let rng = Ipl_util.Rng.of_int seed in
      let committed = Hashtbl.create 8 in
      (* Run transactions until the crash point; each inserts one record
         and updates it once. *)
      (try
         for i = 0 to 60 do
           if i >= crash_after then raise Exit;
           let tx = Engine.Unsafe.begin_txn e in
           let v = Printf.sprintf "txn-%03d-%03d" i (Ipl_util.Rng.int rng 1000) in
           match Engine.Unsafe.insert e ~tx ~page (b v) with
           | Error _ -> Engine.Unsafe.abort e tx
           | Ok slot -> (
               let v' = v ^ "!" in
               match Engine.Unsafe.update e ~tx ~page ~slot (b (String.sub v' 0 (String.length v))) with
               | Error _ -> Engine.Unsafe.abort e tx
               | Ok () ->
                   if Ipl_util.Rng.chance rng 0.8 then begin
                     Engine.Unsafe.commit e tx;
                     Hashtbl.replace committed slot (String.sub v' 0 (String.length v))
                   end
                   else Engine.Unsafe.abort e tx)
         done
       with Exit -> ());
      (* Crash: no checkpoint, just restart from the chip. *)
      let e', _ = Engine.restart ~config chip in
      Hashtbl.fold
        (fun slot v acc ->
          acc
          && match Engine.Unsafe.read e' ~page ~slot with Some got -> Bytes.to_string got = v | None -> false)
        committed true)

let () =
  Alcotest.run "ipl_engine"
    [
      ( "basic",
        [
          Alcotest.test_case "insert & read" `Quick test_insert_read;
          Alcotest.test_case "update & delete" `Quick test_update_delete;
          Alcotest.test_case "update_range" `Quick test_update_range;
          Alcotest.test_case "survives eviction" `Quick test_survives_eviction;
          Alcotest.test_case "no page write-back" `Quick test_dirty_page_never_written_back;
          Alcotest.test_case "merges under pressure" `Quick test_many_updates_trigger_merges;
          Alcotest.test_case "no-op update logs nothing" `Quick test_noop_update_logs_nothing;
          Alcotest.test_case "multi-range update" `Quick test_multi_range_update;
          Alcotest.test_case "chunked large update" `Quick test_large_equal_length_update_chunks;
          Alcotest.test_case "resize as delete+insert" `Quick test_large_resize_update_as_delete_insert;
          Alcotest.test_case "oversized records rejected" `Quick test_oversized_records_rejected_cleanly;
        ] );
      ( "restart",
        [
          Alcotest.test_case "checkpoint + restart" `Quick test_checkpoint_then_restart;
          Alcotest.test_case "unflushed lost" `Quick test_unflushed_work_lost_without_checkpoint;
          Alcotest.test_case "restart after merges" `Quick test_restart_mid_merge_consistency;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "commit durable" `Quick test_commit_durable_without_checkpoint;
          Alcotest.test_case "abort rolls back" `Quick test_abort_rolls_back_in_memory;
          Alcotest.test_case "abort after flush" `Quick test_abort_after_flush_filtered_by_status;
          Alcotest.test_case "active aborted on restart" `Quick test_active_txn_aborted_on_restart;
          Alcotest.test_case "commit + abort interleaved" `Quick test_committed_and_aborted_interleaved;
          Alcotest.test_case "abort needs recovery mode" `Quick test_abort_requires_recovery_mode;
          Alcotest.test_case "txn ids resume" `Quick test_txn_ids_resume_after_restart;
          Alcotest.test_case "selective merge under long txn" `Quick test_selective_merge_under_long_txn;
          Alcotest.test_case "group commit batches" `Quick test_group_commit_batches;
          Alcotest.test_case "group commit durability boundary" `Quick test_group_commit_durability_boundary;
          Alcotest.test_case "background compact" `Quick test_compact_moves_merges_off_path;
          QCheck_alcotest.to_alcotest prop_transactional_crash_consistency;
          QCheck_alcotest.to_alcotest prop_crash_anywhere;
        ] );
    ]
