(* ipl_lint: one fixture per rule family (a violating snippet and a clean
   one), the [@lint.allow] suppression mechanism, and the dependency-graph
   checker fed fabricated cross-layer edges. *)

module Walker = Lint.Lint_walker
module Deps = Lint.Lint_deps
module Source = Lint.Lint_source
module Finding = Lint.Lint_finding

(* Walk an in-memory snippet as if it lived at [file], suppressions applied
   — exactly what the driver does minus the dependency pass. *)
let walk ~file src =
  let r = Walker.walk ~file src in
  Walker.apply_suppressions r.Walker.suppressions r.Walker.findings

let ids findings =
  List.sort compare (List.map (fun f -> (f.Finding.rule, f.Finding.line)) findings)

let check_findings msg expected findings =
  Alcotest.(check (list (pair string int))) msg (List.sort compare expected) (ids findings)

(* ---- no-silent-swallow ---------------------------------------------- *)

let test_swallow () =
  check_findings "wildcard handler"
    [ ("no-silent-swallow", 1) ]
    (walk ~file:"lib/core/fake.ml" "let f g = try g () with _ -> ()\n");
  check_findings "named-but-unused exception"
    [ ("no-silent-swallow", 2) ]
    (walk ~file:"lib/core/fake.ml" "let f g =\n  try g () with e -> ()\n");
  check_findings "specific exception is fine" []
    (walk ~file:"lib/core/fake.ml" "let f g = try g () with Not_found -> ()\n");
  check_findings "re-raised exception is fine" []
    (walk ~file:"lib/core/fake.ml" "let f g = try g () with e -> raise e\n");
  check_findings "or-pattern ending in wildcard"
    [ ("no-silent-swallow", 1) ]
    (walk ~file:"lib/core/fake.ml" "let f g = try g () with Not_found | _ -> ()\n")

(* ---- no-ignored-flash-result ---------------------------------------- *)

let test_ignored_flash () =
  check_findings "ignore (Chip.read_sectors ...)"
    [ ("no-ignored-flash-result", 1) ]
    (walk ~file:"lib/core/fake.ml" "let f chip = ignore (Chip.read_sectors chip ~sector:0 8)\n");
  check_findings "let _ = Chip.read_sectors ..."
    [ ("no-ignored-flash-result", 1) ]
    (walk ~file:"lib/core/fake.ml"
       "let f chip = let _ = Chip.read_sectors chip ~sector:0 8 in ()\n");
  check_findings "bound and checked result is fine" []
    (walk ~file:"lib/core/fake.ml"
       "let f chip =\n\
        \  let data = Chip.read_sectors chip ~sector:0 8 in\n\
        \  Bytes.length data\n");
  check_findings "ignore of a non-flash call is fine" []
    (walk ~file:"lib/core/fake.ml" "let f x = ignore (List.length x)\n")

(* ---- no-magic-geometry ----------------------------------------------- *)

let test_geometry () =
  check_findings "page and sector literals"
    [ ("no-magic-geometry", 1); ("no-magic-geometry", 2) ]
    (walk ~file:"lib/core/fake.ml" "let page_size = 8192\nlet sector = 512\n");
  check_findings "block-size literal"
    [ ("no-magic-geometry", 1) ]
    (walk ~file:"lib/sim/fake.ml" "let eu = 131072\n");
  check_findings "config modules may define geometry" []
    (walk ~file:"lib/core/ipl_config.ml" "let page_size = 8192\n");
  check_findings "non-geometry literals are fine" []
    (walk ~file:"lib/core/fake.ml" "let a = 4096\nlet b = 100\n")

(* ---- flash-call ------------------------------------------------------- *)

let test_flash_call () =
  check_findings "write outside the storage layers"
    [ ("flash-call", 1) ]
    (walk ~file:"lib/workload/fake.ml" "let f chip s = Chip.write_sectors chip ~sector:0 s\n");
  check_findings "erase outside the storage layers"
    [ ("flash-call", 1) ]
    (walk ~file:"lib/tpcc/fake.ml" "let f chip = Flash_chip.erase_block chip 0\n");
  check_findings "the device layer may program the chip" []
    (walk ~file:"lib/device/fake.ml" "let f chip s = Chip.write_sectors chip ~sector:0 s\n");
  check_findings "lib/core now goes through the device, not the chip"
    [ ("flash-call", 1) ]
    (walk ~file:"lib/core/fake.ml" "let f chip s = Chip.write_sectors chip ~sector:0 s\n");
  check_findings "reads are allowed anywhere" []
    (walk ~file:"lib/workload/fake.ml"
       "let f chip = Bytes.length (Chip.read_sectors chip ~sector:0 1)\n")

(* ---- banned-construct ------------------------------------------------- *)

let test_banned () =
  check_findings "Obj.magic"
    [ ("banned-construct", 1) ]
    (walk ~file:"lib/util/fake.ml" "let f x = Obj.magic x\n");
  check_findings "Bytes.unsafe_get outside the arena"
    [ ("banned-construct", 1) ]
    (walk ~file:"lib/storage/fake.ml" "let f b = Bytes.unsafe_get b 0\n");
  check_findings "Bytes.unsafe_* inside byte_arena.ml" []
    (walk ~file:"lib/util/byte_arena.ml" "let f b = Bytes.unsafe_get b 0\n");
  check_findings "polymorphic compare on a bytes value"
    [ ("banned-construct", 1) ]
    (walk ~file:"lib/core/fake.ml" "let f a b = Bytes.sub a 0 4 = b\n");
  check_findings "scalar bytes accessors compare fine" []
    (walk ~file:"lib/core/fake.ml" "let f a n = Bytes.length a = n\n");
  check_findings "Bytes.equal is the blessed form" []
    (walk ~file:"lib/core/fake.ml" "let f a b = Bytes.equal (Bytes.sub a 0 4) b\n")

(* ---- suppressions ----------------------------------------------------- *)

let test_suppression () =
  check_findings "[@lint.allow rule] silences that rule" []
    (walk ~file:"lib/core/fake.ml"
       "let cap = 8192 [@lint.allow \"no-magic-geometry\"]\n");
  check_findings "a different rule id does not silence it"
    [ ("no-magic-geometry", 1) ]
    (walk ~file:"lib/core/fake.ml" "let cap = 8192 [@lint.allow \"flash-call\"]\n");
  check_findings "bare [@lint.allow] silences everything on the node" []
    (walk ~file:"lib/core/fake.ml" "let f g = (try g () with _ -> ()) [@lint.allow]\n");
  check_findings "suppression is scoped to the attributed node's lines"
    [ ("no-magic-geometry", 2) ]
    (walk ~file:"lib/core/fake.ml"
       "let a = 8192 [@lint.allow \"no-magic-geometry\"]\nlet b = 8192\n");
  check_findings "[@@@lint.allow] covers the whole file" []
    (walk ~file:"lib/core/fake.ml"
       "[@@@lint.allow \"no-magic-geometry\"]\nlet a = 8192\nlet b = 131072\n")

(* ---- layering (dependency graph) -------------------------------------- *)

let dep_findings ?(siblings = []) ~dir ~file src =
  let r = Walker.walk ~file src in
  Deps.check_file ~siblings ~dir ~file r.Walker.refs

let test_layering () =
  check_findings "fabricated util -> core edge is rejected"
    [ ("layering", 1) ]
    (dep_findings ~dir:"lib/util" ~file:"lib/util/fake.ml"
       "let x = Ipl_core.Ipl_config.default\n");
  check_findings "flash may not reach back into the engine"
    [ ("layering", 2) ]
    (dep_findings ~dir:"lib/flash" ~file:"lib/flash/fake.ml"
       "let a = 1\nlet x = Ipl_core.Ipl_config.default\n");
  check_findings "core -> flash is a whitelisted edge" []
    (dep_findings ~dir:"lib/core" ~file:"lib/core/fake.ml"
       "let mk () = Flash_sim.Flash_chip.create (Flash_sim.Flash_config.default ())\n");
  check_findings "unregistered lib directory must be added to the table"
    [ ("layering", 1) ]
    (dep_findings ~dir:"lib/zzz" ~file:"lib/zzz/fake.ml" "let x = 1\n");
  check_findings "bin may use every library" []
    (dep_findings ~dir:"bin" ~file:"bin/fake.ml" "let x = Ipl_core.Ipl_config.default\n");
  check_findings "a sibling module shadows a like-named wrapper"
    [] (* Fault.Workload, not the workload library *)
    (dep_findings ~siblings:[ "Workload" ] ~dir:"lib/fault" ~file:"lib/fault/fake.ml"
       "let x = Workload.step ()\n");
  check_findings "without the sibling the same reference is an edge"
    [ ("layering", 1) ]
    (dep_findings ~dir:"lib/fault" ~file:"lib/fault/fake.ml" "let x = Workload.step ()\n")

(* ---- mli-coverage ------------------------------------------------------ *)

let file path kind dir = { Source.path; kind; dir }

let test_mli_coverage () =
  check_findings "lib implementation without an interface"
    [ ("mli-coverage", 1) ]
    (Source.mli_coverage [ file "lib/x/a.ml" Source.Impl "lib/x" ]);
  check_findings "matching .mli satisfies the rule" []
    (Source.mli_coverage
       [ file "lib/x/a.ml" Source.Impl "lib/x"; file "lib/x/a.mli" Source.Intf "lib/x" ]);
  check_findings "executables are exempt" []
    (Source.mli_coverage [ file "bin/a.ml" Source.Impl "bin" ])

(* ---- parse errors ------------------------------------------------------ *)

let test_parse_error () =
  match walk ~file:"lib/core/fake.ml" "let = = =\n" with
  | [ f ] -> Alcotest.(check string) "rule id" "parse-error" f.Finding.rule
  | fs -> Alcotest.failf "expected one parse-error finding, got %d" (List.length fs)

(* ---- reporter ---------------------------------------------------------- *)

let test_report_format () =
  let f =
    Finding.make ~rule:"no-magic-geometry" ~severity:Finding.Error ~file:"lib/core/fake.ml"
      ~line:7 "raw geometry literal 8192"
  in
  Alcotest.(check string)
    "file:line rule-id message" "lib/core/fake.ml:7 no-magic-geometry raw geometry literal 8192 [error]"
    (Format.asprintf "%a" Finding.pp f);
  Alcotest.(check bool) "error findings gate the exit code" true (Finding.has_errors [ f ])

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "no-silent-swallow" `Quick test_swallow;
          Alcotest.test_case "no-ignored-flash-result" `Quick test_ignored_flash;
          Alcotest.test_case "no-magic-geometry" `Quick test_geometry;
          Alcotest.test_case "flash-call" `Quick test_flash_call;
          Alcotest.test_case "banned-construct" `Quick test_banned;
          Alcotest.test_case "parse-error" `Quick test_parse_error;
        ] );
      ( "suppressions",
        [ Alcotest.test_case "lint.allow attribute" `Quick test_suppression ] );
      ( "layering",
        [
          Alcotest.test_case "dependency graph" `Quick test_layering;
          Alcotest.test_case "mli coverage" `Quick test_mli_coverage;
        ] );
      ( "reporting", [ Alcotest.test_case "finding format" `Quick test_report_format ] );
    ]
