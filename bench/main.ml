(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sections 2.2.1, 4.1 and 4.2), prints paper-reported values
   next to the measured ones, runs the ablation studies called out in
   DESIGN.md, and finishes with Bechamel micro-benchmarks of the core
   operations.

   Usage: dune exec bench/main.exe [-- --quick] [-- --skip-micro]

   --quick scales the TPC-C study down (1 warehouse, small pools) for a
   fast smoke run; the default reproduces the paper's 1 GB configuration
   and takes a few minutes. *)

module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module FStats = Flash_sim.Flash_stats
module Q = Workload.Queries
module Trace = Reftrace.Trace
module Locality = Reftrace.Locality
module Driver = Tpcc.Tpcc_driver
module Txn = Tpcc.Tpcc_txn
module Sim = Iplsim.Ipl_simulator
module Cost = Iplsim.Cost_model
module Sweep = Iplsim.Sweep
module Engine = Ipl_core.Ipl_engine
module Store = Ipl_core.Ipl_storage

(* The harness runs on healthy simulated devices: any typed engine error
   here is a bench bug, so unwrap loudly. *)
let eok = function
  | Ok v -> v
  | Error e -> failwith ("bench: " ^ Engine.error_to_string e)

(* Database page size shared by every storage design under test. *)
let db_page_size = Ipl_core.Ipl_config.default.Ipl_core.Ipl_config.page_size

let quick = Array.exists (( = ) "--quick") Sys.argv
let skip_micro = Array.exists (( = ) "--skip-micro") Sys.argv

(* --csv-dir DIR: also dump plot-ready data files for each figure. *)
let csv_dir =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = "--csv-dir" then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* --channels N / --ways N: device geometry for the instrumented IPL
   backend of the BENCH_ipl.json export (the baseline replays always run
   serial). *)
let int_arg name default =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then default
    else if Sys.argv.(i) = name then int_of_string Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let channels = int_arg "--channels" 1
let ways = int_arg "--ways" 1

let with_csv name f =
  match csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let oc = open_out (Filename.concat dir name) in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let note fmt = Printf.printf ("  " ^^ fmt ^^ "\n")

let elapsed_timer () =
  let t0 = Ipl_util.Clock.now_s () in
  fun () -> Ipl_util.Clock.now_s () -. t0

(* ------------------------------------------------------------------ *)
(* Table 1: device access speeds                                       *)

let table1 () =
  section "Table 1: Access speed, magnetic disk vs NAND flash";
  let f = FConfig.default () in
  Printf.printf "  %-22s %12s %12s %12s\n" "Media" "Read" "Write" "Erase";
  Printf.printf "  %-22s %9.1f ms %9.1f ms %12s   (2 KB)\n" "Magnetic disk (model)" 12.7 13.7
    "N/A";
  Printf.printf "  %-22s %9.0f us %9.0f us %9.1f ms   (2 KB / 128 KB)\n" "NAND flash (model)"
    (f.FConfig.t_read_page *. 1e6)
    (f.FConfig.t_write_page *. 1e6)
    (f.FConfig.t_erase_block *. 1e3);
  note "paper: disk 12.7/13.7 ms; flash 80 us / 200 us / 1.5 ms (by construction)"

(* ------------------------------------------------------------------ *)
(* Tables 3 and 2: Q1-Q6 on both devices                               *)

let paper_table3 = function
  | Q.Q1 -> (14.04, 11.02)
  | Q.Q2 -> (61.07, 12.05)
  | Q.Q3 -> (172.01, 13.05)
  | Q.Q4 -> (34.03, 26.01)
  | Q.Q5 -> (151.92, 61.76)
  | Q.Q6 -> (340.72, 369.88)

let tables_3_and_2 () =
  section "Table 3: read and write query performance (seconds)";
  let results = Q.table3 () in
  let flash_of q =
    let _, _, f = List.find (fun (q', _, _) -> q' = q) results in
    f
  in
  Printf.printf "  %-28s %10s %10s   %10s %10s\n" "" "disk" "(paper)" "flash" "(paper)";
  List.iter
    (fun (q, (d : Q.measurement), (f : Q.measurement)) ->
      let pd, pf = paper_table3 q in
      Printf.printf "  %-28s %10.2f %10.2f   %10.2f %10.2f\n" (Q.name q) d.Q.elapsed pd
        f.Q.elapsed pf)
    results;
  note "flash Q4/Q5/Q6 erase-unit RMW cycles: %d / %d / %d (paper's per-unit analysis: 4000 for Q4, 64000 for Q6)"
    (flash_of Q.Q4).Q.erases (flash_of Q.Q5).Q.erases (flash_of Q.Q6).Q.erases;
  note "flash Q4/Q5/Q6 DRAM-segment evictions: %d / %d / %d (paper counts Q5 as 8000 'erases')"
    (flash_of Q.Q4).Q.segment_evictions (flash_of Q.Q5).Q.segment_evictions
    (flash_of Q.Q6).Q.segment_evictions;
  section "Table 2: random-to-sequential performance ratios";
  let pp kind medium label paper =
    let lo, hi = Q.random_to_sequential_ratios results kind medium in
    Printf.printf "  %-24s %6.1f ~ %6.1f   (paper: %s)\n" label lo hi paper
  in
  pp `Read `Disk "disk, read workload" "4.3 ~ 12.3";
  pp `Write `Disk "disk, write workload" "4.5 ~ 10.0";
  pp `Read `Flash "flash, read workload" "1.1 ~ 1.2";
  pp `Write `Flash "flash, write workload" "2.4 ~ 14.2";
  with_csv "table3.csv" (fun oc ->
      output_string oc "query,disk_s,disk_paper_s,flash_s,flash_paper_s\n";
      List.iter
        (fun (q, (d : Q.measurement), (f : Q.measurement)) ->
          let pd, pf = paper_table3 q in
          Printf.fprintf oc "%s,%.2f,%.2f,%.2f,%.2f\n" (Q.name q) d.Q.elapsed pd f.Q.elapsed pf)
        results)

(* ------------------------------------------------------------------ *)
(* TPC-C trace generation                                              *)

type study = {
  trace_100m : Trace.t;
  series_1g : (int * Trace.t) list;  (* buffer MB -> trace *)
  buf_small : int;  (* the "20MB" point of this run *)
  buf_medium : int;  (* the "40MB" point *)
}

let generate_study () =
  section "TPC-C trace generation (stand-in for Hammerora, Section 4.2.1)";
  let warehouses, buffer_100m, buffer_mbs, tx_1g, tx_100m, users =
    if quick then (1, 2, [ 2; 4; 6; 8; 10 ], 3_000, 1_500, 10)
    else (10, 20, [ 20; 40; 60; 80; 100 ], 33_000, 3_400, 100)
  in
  let t = elapsed_timer () in
  let r100 =
    Driver.generate_trace ~warehouses:1 ~buffer_mb:buffer_100m ~users:10
      ~transactions:tx_100m ()
  in
  let s100 = Trace.stats r100.Driver.trace in
  note "%-14s %8d txns -> %7d log records, %6d page writes (%.0fs)"
    (Trace.name r100.Driver.trace) tx_100m s100.Trace.total_logs s100.Trace.page_writes
    (t ());
  let t = elapsed_timer () in
  let series =
    Driver.generate_trace_series ~warehouses ~users ~transactions:tx_1g ~buffer_mbs ()
  in
  List.iter
    (fun (_, trace) ->
      let s = Trace.stats trace in
      note "%-14s %8d txns -> %7d log records, %6d page writes" (Trace.name trace) tx_1g
        s.Trace.total_logs s.Trace.page_writes)
    series;
  note "1G series generated in %.0fs (database loaded once, %d pages)" (t ())
    (Trace.db_pages (snd (List.hd series)));
  {
    trace_100m = r100.Driver.trace;
    series_1g = series;
    buf_small = List.nth buffer_mbs 0;
    buf_medium = List.nth buffer_mbs 1;
  }

let trace_1g_20m study = List.assoc study.buf_small study.series_1g
let trace_1g_40m study = List.assoc study.buf_medium study.series_1g

(* ------------------------------------------------------------------ *)
(* Table 4: update log statistics                                      *)

let table4 study =
  section "Table 4: update log statistics of the 1G.20M.100u trace";
  let s = Trace.stats (trace_1g_20m study) in
  let row name (os : Trace.op_stats) total paper =
    Printf.printf "  %-8s %9d (%5.2f%%)  avg %6.1f   (paper: %s)\n" name os.Trace.occurrences
      (100.0 *. float_of_int os.Trace.occurrences /. float_of_int (max 1 total))
      os.Trace.avg_length paper
  in
  row "Insert" s.Trace.insert s.Trace.total_logs "86902 (11.08%) avg 43.5";
  row "Delete" s.Trace.delete s.Trace.total_logs "284 (0.06%) avg 20.0";
  row "Update" s.Trace.update s.Trace.total_logs "697092 (88.88%) avg 49.4";
  Printf.printf "  %-8s %9d (100.0%%)  avg %6.1f   (paper: 784278, avg 48.7)\n" "Total"
    s.Trace.total_logs s.Trace.avg_log_length;
  Printf.printf "  physical page writes: %d   (paper: 625527)\n" s.Trace.page_writes

(* ------------------------------------------------------------------ *)
(* Figure 4: update locality                                           *)

let pp_skew_series label (s : Locality.skew) paper_note =
  Printf.printf "  %-34s top-%d share %5.1f%%, gini %.3f, %d distinct keys\n" label
    (Array.length s.Locality.top_counts)
    (100.0 *. s.Locality.top_share)
    s.Locality.gini s.Locality.distinct;
  let pick i = if i < Array.length s.Locality.top_counts then s.Locality.top_counts.(i) else 0 in
  Printf.printf "    hottest keys: #1=%d #10=%d #100=%d #500=%d #2000=%d  %s\n" (pick 0)
    (pick 9) (pick 99) (pick 499) (pick 1999) paper_note

let figure4 study =
  section "Figure 4: TPC-C update locality (1G.20M.100u trace)";
  let trace = trace_1g_20m study in
  pp_skew_series "(a) log references by page"
    (Locality.log_reference_skew trace ~top:2000)
    "(paper: heavily skewed)";
  pp_skew_series "(b) physical page writes"
    (Locality.page_write_skew trace ~top:2000)
    "(paper: top 2000 pages take 29% of 625527 writes)";
  pp_skew_series "(c) erases by erase unit"
    (Locality.erase_skew trace ~top:100 ~pages_per_eu:15)
    "(paper: clearly skewed across units)";
  with_csv "fig4.csv" (fun oc ->
      output_string oc "rank,log_refs,page_writes\n";
      let a = (Locality.log_reference_skew trace ~top:2000).Locality.top_counts in
      let b = (Locality.page_write_skew trace ~top:2000).Locality.top_counts in
      for i = 0 to 1999 do
        Printf.fprintf oc "%d,%d,%d\n" (i + 1)
          (if i < Array.length a then a.(i) else 0)
          (if i < Array.length b then b.(i) else 0)
      done);
  let pages = Locality.sliding_window_distinct trace ~window:16 `Pages in
  let eus = Locality.sliding_window_distinct trace ~window:16 (`Erase_units 15) in
  Printf.printf
    "  sliding window of 16 physical writes: %.2f/16 distinct pages (%.1f%%), %.2f/16 \
     distinct erase units (%.1f%%)\n"
    pages
    (100.0 *. pages /. 16.0)
    eus
    (100.0 *. eus /. 16.0);
  note "paper: 99.9%% distinct pages, 93.1%% (14.89/16) distinct erase units"

(* ------------------------------------------------------------------ *)
(* Table 5: log records vs sector writes                               *)

let table5 study =
  section "Table 5: update log records vs flash sector writes (8 KB log region)";
  let row trace paper =
    let r = Sim.run trace in
    Printf.printf "  %-14s %9d logs -> %8d sector writes   (paper: %s)\n" (Trace.name trace)
      r.Sim.log_records r.Sim.sector_writes paper
  in
  row study.trace_100m "79136 -> 46893";
  row (trace_1g_40m study) "784278 -> 594694";
  row (trace_1g_20m study) "785535 -> 559391"

(* ------------------------------------------------------------------ *)
(* Figures 5 and 6: log-region sweep                                   *)

let figures_5_and_6 study =
  section "Figure 5: merges vs log-region size / Figure 6: estimated write time and space";
  let traces = [ trace_1g_20m study; trace_1g_40m study; study.trace_100m ] in
  List.iter
    (fun trace ->
      Printf.printf "  %s\n" (Trace.name trace);
      Printf.printf "    %-10s %10s %12s %12s %10s\n" "log region" "merges" "sector wr"
        "t_IPL (s)" "DB size";
      List.iter
        (fun (p : Sweep.point) ->
          Printf.printf "    %6d KB %10d %12d %12.1f %7d MB\n" (p.Sweep.log_region / 1024)
            p.Sweep.result.Sim.merges p.Sweep.result.Sim.sector_writes p.Sweep.t_ipl
            (p.Sweep.db_size / 1024 / 1024))
        (Sweep.log_region_sweep trace))
    traces;
  with_csv "fig5_6.csv" (fun oc ->
      output_string oc "trace,log_region_kb,merges,sector_writes,t_ipl_s,db_size_mb\n";
      List.iter
        (fun trace ->
          List.iter
            (fun (p : Sweep.point) ->
              Printf.fprintf oc "%s,%d,%d,%d,%.2f,%d\n" (Trace.name trace)
                (p.Sweep.log_region / 1024) p.Sweep.result.Sim.merges
                p.Sweep.result.Sim.sector_writes p.Sweep.t_ipl (p.Sweep.db_size / 1024 / 1024))
            (Sweep.log_region_sweep trace))
        traces);
  note "paper: merges drop steeply as the log region grows; t_IPL follows (Fig 6a)";
  note "while the database's flash footprint grows towards 2x (Fig 6b)"

(* ------------------------------------------------------------------ *)
(* Figure 7: varying buffer sizes                                      *)

let figure7 study =
  section "Figure 7: IPL vs conventional server across buffer-pool sizes (1GB DB)";
  let series =
    List.map (fun (mb, trace) -> (Printf.sprintf "%dMB" mb, trace)) study.series_1g
  in
  let points = Sweep.buffer_series series in
  Printf.printf "  %-8s %12s %10s %12s %14s %14s\n" "buffer" "sector wr" "merges" "t_IPL (s)"
    "t_Conv a=0.9" "t_Conv a=0.5";
  List.iter
    (fun (p : Sweep.buffer_point) ->
      let conv a = List.assoc a p.Sweep.t_conv_by_alpha in
      Printf.printf "  %-8s %12d %10d %12.1f %14.1f %14.1f\n" p.Sweep.label
        p.Sweep.result.Sim.sector_writes p.Sweep.result.Sim.merges p.Sweep.t_ipl (conv 0.9)
        (conv 0.5))
    points;
  with_csv "fig7.csv" (fun oc ->
      output_string oc "buffer,sector_writes,merges,t_ipl_s,t_conv_09_s,t_conv_05_s\n";
      List.iter
        (fun (p : Sweep.buffer_point) ->
          Printf.fprintf oc "%s,%d,%d,%.2f,%.2f,%.2f\n" p.Sweep.label
            p.Sweep.result.Sim.sector_writes p.Sweep.result.Sim.merges p.Sweep.t_ipl
            (List.assoc 0.9 p.Sweep.t_conv_by_alpha)
            (List.assoc 0.5 p.Sweep.t_conv_by_alpha))
        points);
  (match points with
  | p :: _ ->
      let conv = List.assoc 0.5 p.Sweep.t_conv_by_alpha in
      note "IPL advantage at the smallest pool: %.0fx vs alpha=0.5 conventional"
        (conv /. p.Sweep.t_ipl)
  | [] -> ());
  note "paper: IPL an order of magnitude faster than conventional even at alpha=0.5"

(* ------------------------------------------------------------------ *)
(* Table 6: taxonomy                                                   *)

let table6 () =
  section "Table 6: classification of database storage techniques";
  Printf.printf "  %-24s | %-30s | %-30s\n" "" "in-place update" "no in-place update";
  Printf.printf "  %s-+-%s-+-%s\n" (String.make 24 '-') (String.make 30 '-')
    (String.make 30 '-');
  Printf.printf "  %-24s | %-30s | %-30s\n" "mechanical latency" "traditional DBMS"
    "Postgres no-overwrite (disk)";
  Printf.printf "  %-24s | %-30s | %-30s\n" "" "  (disk_sim + baseline replay)" "";
  Printf.printf "  %-24s | %-30s | %-30s\n" "no mechanical latency" "PicoDBMS (EEPROM)"
    "in-page logging (ipl_core)";
  note "this repository implements the bottom-right cell plus the baselines around it"

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablation_baseline_replay study =
  section "Ablation: one TPC-C write stream on four flash designs";
  let trace = trace_1g_20m study in
  let db_pages = Trace.db_pages trace in
  let stats = Trace.stats trace in
  let blocks = (db_pages / 16 * 115 / 100) + 32 in
  let chip_ftl = Chip.create (FConfig.default ~num_blocks:blocks ~materialize:false ()) in
  let ftl = Ftl.Block_ftl.create chip_ftl ~page_size:db_page_size in
  Ftl.Block_ftl.format ftl;
  let t_ftl = Baseline.Replay.run trace (Ftl.Block_ftl.device ftl) in
  let chip_lfs = Chip.create (FConfig.default ~num_blocks:blocks ~materialize:false ()) in
  let lfs = Baseline.Lfs_store.create chip_lfs ~page_size:db_page_size in
  Baseline.Lfs_store.format lfs;
  let t_lfs = Baseline.Replay.run trace (Baseline.Lfs_store.device lfs) in
  let chip_ip = Chip.create (FConfig.default ~num_blocks:blocks ~materialize:false ()) in
  let ip = Baseline.Inplace_store.create chip_ip ~page_size:db_page_size in
  Baseline.Inplace_store.format ip;
  let t_ip = Baseline.Replay.run trace (Baseline.Inplace_store.device ip) in
  let r = Sim.run trace in
  let t_ipl = Cost.t_ipl ~sector_writes:r.Sim.sector_writes ~merges:r.Sim.merges () in
  Printf.printf "  %-34s %10s %10s\n" "design" "time (s)" "erases";
  Printf.printf "  %-34s %10.1f %10d\n" "in-place update on raw flash" t_ip
    (Baseline.Inplace_store.stats ip).Baseline.Inplace_store.erases;
  Printf.printf "  %-34s %10.1f %10d\n" "conventional behind DRAM-FTL SSD" t_ftl
    (Chip.stats chip_ftl).FStats.block_erases;
  Printf.printf "  %-34s %10.1f %10d   (+%d GC page moves)\n" "log-structured page store"
    t_lfs
    (Baseline.Lfs_store.stats lfs).Baseline.Lfs_store.erases
    (Baseline.Lfs_store.stats lfs).Baseline.Lfs_store.gc_page_moves;
  Printf.printf "  %-34s %10.1f %10d\n" "in-page logging (t_IPL)" t_ipl r.Sim.merges;
  note "%d physical page writes replayed onto a %d-page database" stats.Trace.page_writes
    db_pages

let ablation_fill_policy study =
  section "Ablation: in-memory log sector fill policy (byte-accurate vs tau_s record count)";
  let trace = trace_1g_20m study in
  let run policy label =
    let params = { Sim.default_params with Sim.fill_policy = policy } in
    let r = Sim.run ~params trace in
    let t = Cost.t_ipl ~sector_writes:r.Sim.sector_writes ~merges:r.Sim.merges () in
    Printf.printf "  %-26s %10d sector writes %8d merges  t_IPL %8.1f s\n" label
      r.Sim.sector_writes r.Sim.merges t
  in
  run `Bytes "byte-accurate (engine)";
  run (`Count 10) "tau_s = 10 (paper's average)";
  run (`Count 5) "tau_s = 5";
  run (`Count 20) "tau_s = 20"

let ablation_wear () =
  section "Ablation: wear-aware vs naive free-unit allocation (IPL engine)";
  let run wear_aware =
    let chip = Chip.create (FConfig.default ~num_blocks:96 ()) in
    let config =
      {
        Ipl_core.Ipl_config.default with
        Ipl_core.Ipl_config.wear_aware_allocation = wear_aware;
        buffer_pages = 8;
      }
    in
    let engine = Engine.create ~config chip in
    let page = eok (Engine.allocate_page engine) in
    (match Engine.insert engine ~tx:Engine.no_txn ~page (Bytes.make 64 'x') with
    | Ok _ -> ()
    | Error e -> failwith (Engine.error_to_string e));
    for i = 1 to 30_000 do
      match
        Engine.update engine ~tx:Engine.no_txn ~page ~slot:0 (Bytes.of_string (Printf.sprintf "%064d" i))
      with
      | Ok () -> ()
      | Error e -> failwith (Engine.error_to_string e)
    done;
    eok (Engine.checkpoint engine);
    let wear = Chip.erase_counts chip in
    (* Skip the reserved system-log blocks at the front. *)
    let data_wear = Array.to_list (Array.sub wear 8 88) in
    let maxw = List.fold_left max 0 data_wear in
    let minw = List.fold_left min max_int data_wear in
    let total = List.fold_left ( + ) 0 data_wear in
    (* Endurance projection: the device dies when its hottest unit hits
       the 100k-cycle endurance (Section 2.2 of the paper). *)
    let endurance = (FConfig.default ()).FConfig.max_erase_cycles in
    let lifetime_workloads = if maxw = 0 then infinity else float_of_int endurance /. float_of_int maxw in
    Printf.printf
      "  %-12s erases total %6d, per-unit min %4d max %4d (spread %.2fx) -> endurance lasts %.0fx this workload\n"
      (if wear_aware then "wear-aware" else "naive")
      total minw maxw
      (float_of_int maxw /. float_of_int (max 1 minw))
      lifetime_workloads
  in
  run true;
  run false

let ablation_recovery_overhead () =
  section "Ablation: cost of the Section 5 recovery extensions (TPC-C on the engine)";
  let run recovery =
    let config =
      {
        Ipl_core.Ipl_config.default with
        Ipl_core.Ipl_config.recovery_enabled = recovery;
        buffer_pages = 256;
      }
    in
    let t = elapsed_timer () in
    let sizing = { Txn.mini_sizing with Txn.customers = 120; items = 500; orders = 60 } in
    let rollback_txn_config = if recovery then None else Some config in
    ignore rollback_txn_config;
    let r = Driver.Engine_run.run ~config ~chip_blocks:768 ~transactions:2_000 ~sizing () in
    let s = Engine.stats r.Driver.Engine_run.engine in
    let st = s.Engine.storage in
    Printf.printf
      "  recovery %-3s: %6d log-sector writes, %5d merges, %4d overflow sectors, flash time \
       %6.2fs (wall %.1fs)\n"
      (if recovery then "on" else "off")
      st.Store.log_sector_writes st.Store.merges st.Store.overflow_sector_writes
      s.Engine.flash.FStats.elapsed (t ())
  in
  run false;
  run true

let ablation_read_amplification () =
  section "Ablation: IPL read amplification vs log fill (the Section 3.1 trade-off)";
  (* Reading a page costs the data page plus every log sector in its erase
     unit. Measure the read cost as the log region fills. *)
  let chip = Chip.create (FConfig.default ~num_blocks:64 ()) in
  let config = { Ipl_core.Ipl_config.default with Ipl_core.Ipl_config.buffer_pages = 4 } in
  let engine = Engine.create ~config chip in
  let page = eok (Engine.allocate_page engine) in
  (match Engine.insert engine ~tx:Engine.no_txn ~page (Bytes.make 64 'r') with
  | Ok _ -> ()
  | Error e -> failwith (Engine.error_to_string e));
  eok (Engine.checkpoint engine);
  let store = Engine.storage engine in
  Printf.printf "  %-18s %14s %16s\n" "log sectors used" "read cost" "vs clean page";
  let clean_cost = ref 0.0 in
  List.iter
    (fun target ->
      (* Fill the unit's log region up to [target] sectors. *)
      let eu = Store.eu_of_page store page in
      let have = Store.used_log_sectors store ~eu in
      for _ = have + 1 to target do
        Store.flush_log store ~page
          [
            {
              Ipl_core.Log_record.txid = 0;
              page;
              op =
                Ipl_core.Log_record.Update_range
                  { slot = 0; offset = 0; before = Bytes.make 8 'r'; after = Bytes.make 8 'r' };
            };
          ]
      done;
      let eu = Store.eu_of_page store page in
      let used = Store.used_log_sectors store ~eu in
      let before = Chip.elapsed chip in
      ignore (Store.read_page store page);
      let cost = Chip.elapsed chip -. before in
      if !clean_cost = 0.0 then clean_cost := cost;
      Printf.printf "  %18d %11.2f us %15.1fx\n" used (cost *. 1e6) (cost /. !clean_cost))
    [ 0; 4; 8; 16 ];
  note "the paper accepts this read overhead because flash reads are ~2.5x";
  note "cheaper than writes and far cheaper than the avoided erases"

let ablation_group_commit () =
  section "Ablation: group commit (batched durability, beyond the paper)";
  let run group =
    let config =
      {
        Ipl_core.Ipl_config.default with
        Ipl_core.Ipl_config.recovery_enabled = true;
        buffer_pages = 256;
        group_commit = group;
      }
    in
    let r =
      Driver.Engine_run.run ~config ~chip_blocks:768 ~transactions:2_000
        ~sizing:{ Txn.mini_sizing with Txn.customers = 120; items = 500; orders = 60 }
        ()
    in
    eok (Engine.flush_commits r.Driver.Engine_run.engine);
    let s = Engine.stats r.Driver.Engine_run.engine in
    Printf.printf
      "  group=%-3d %6d log-sector writes, %5d merges, flash time %6.2fs\n" group
      s.Engine.storage.Store.log_sector_writes s.Engine.storage.Store.merges
      s.Engine.flash.FStats.elapsed
  in
  List.iter run [ 0; 10; 50 ];
  note "batching lets several transactions' records share flash log sectors"

let ablation_background_merge () =
  section "Ablation: background merging (compaction off the write path)";
  let run ~compact_every =
    let chip = Chip.create (FConfig.default ~num_blocks:128 ()) in
    let config = { Ipl_core.Ipl_config.default with Ipl_core.Ipl_config.buffer_pages = 8 } in
    let engine = Engine.create ~config chip in
    let pages = Array.init 8 (fun _ -> eok (Engine.allocate_page engine)) in
    Array.iter
      (fun page ->
        match Engine.insert engine ~tx:Engine.no_txn ~page (Bytes.make 32 'x') with
        | Ok _ -> ()
        | Error e -> failwith (Engine.error_to_string e))
      pages;
    eok (Engine.checkpoint engine);
    let worst = ref 0.0 and total0 = ref (Chip.elapsed chip) in
    let rng = Ipl_util.Rng.of_int 31 in
    for i = 1 to 10_000 do
      let page = pages.(Ipl_util.Rng.int rng 8) in
      let before = Chip.elapsed chip in
      (match
         Engine.update engine ~tx:Engine.no_txn ~page ~slot:0 (Bytes.of_string (Printf.sprintf "%032d" i))
       with
      | Ok () -> ()
      | Error e -> failwith (Engine.error_to_string e));
      worst := Float.max !worst (Chip.elapsed chip -. before);
      (* An idle moment every [compact_every] operations. *)
      if compact_every > 0 && i mod compact_every = 0 then
        ignore (eok (Engine.compact engine ~max_merges:2) : int)
    done;
    eok (Engine.checkpoint engine);
    let total = Chip.elapsed chip -. !total0 in
    (!worst, total, (Engine.stats engine).Engine.storage.Store.merges)
  in
  let w0, t0, m0 = run ~compact_every:0 in
  let w1, t1, m1 = run ~compact_every:100 in
  Printf.printf "  %-22s worst op %6.2f ms, total flash %6.2f s, merges %4d\n" "no compaction"
    (w0 *. 1e3) t0 m0;
  Printf.printf "  %-22s worst op %6.2f ms, total flash %6.2f s, merges %4d\n"
    "compact every 100 ops" (w1 *. 1e3) t1 m1;
  note "the ~20ms merges leave the update path entirely, at the price of more";
  note "total (background) work - eager compaction merges underfull log regions"

let ablation_selective_merge_threshold () =
  section "Ablation: selective-merge threshold tau under a long-running transaction";
  List.iter
    (fun tau ->
      let chip = Chip.create (FConfig.default ~num_blocks:96 ()) in
      let config =
        {
          Ipl_core.Ipl_config.default with
          Ipl_core.Ipl_config.recovery_enabled = true;
          selective_merge_threshold = tau;
          buffer_pages = 4;
        }
      in
      let engine = Engine.create ~config chip in
      let page = eok (Engine.allocate_page engine) in
      (match Engine.insert engine ~tx:Engine.no_txn ~page (Bytes.make 16 'v') with
      | Ok _ -> ()
      | Error e -> failwith (Engine.error_to_string e));
      eok (Engine.checkpoint engine);
      let tx = eok (Engine.begin_txn engine) in
      for i = 1 to 2_000 do
        match
          Engine.update engine ~tx ~page ~slot:0 (Bytes.of_string (Printf.sprintf "%016d" i))
        with
        | Ok () -> ()
        | Error e -> failwith (Engine.error_to_string e)
      done;
      eok (Engine.commit engine tx);
      let s = (Engine.stats engine).Engine.storage in
      Printf.printf
        "  tau %4.2f: %5d merges, %5d diversions to overflow, %6d records carried over\n" tau
        s.Store.merges s.Store.overflow_diversions s.Store.records_carried_over)
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ]

(* ------------------------------------------------------------------ *)
(* Instrumented backend comparison → BENCH_ipl.json                    *)

let obs_bench_export () =
  section "Instrumented backend comparison (lib/obs)";
  let spec = if quick then Workload.Obs_bench.quick else Workload.Obs_bench.default in
  let spec = { spec with Workload.Obs_bench.channels; ways } in
  let r = Workload.Obs_bench.run ~spec () in
  let tracer = r.Workload.Obs_bench.tracer in
  note "workload: %d transactions; trace: %d events (%d dropped)"
    spec.Workload.Obs_bench.transactions
    (Obs.Tracer.emitted tracer) (Obs.Tracer.dropped tracer);
  note "device: %d channel(s) x %d way(s)" channels ways;
  note "storage: %d log flushes, %d merges, %d overflow diversions"
    (Obs.Tracer.count_kind tracer "log_flush")
    (Obs.Tracer.count_kind tracer "merge")
    (Obs.Tracer.count_kind tracer "overflow_diversion");
  (match Ipl_util.Json.member "backends" r.Workload.Obs_bench.json with
  | Some (Ipl_util.Json.List backends) ->
      List.iter
        (fun b ->
          let name =
            match Ipl_util.Json.member "name" b with
            | Some (Ipl_util.Json.String s) -> s
            | _ -> "?"
          in
          let elapsed =
            match Option.bind (Ipl_util.Json.member "flash" b) (Ipl_util.Json.member "elapsed_s") with
            | Some (Ipl_util.Json.Float f) -> f
            | Some (Ipl_util.Json.Int n) -> float_of_int n
            | _ -> Float.nan
          in
          note "%-8s flash time %.4f s" name elapsed)
        backends
  | _ -> ());
  Workload.Obs_bench.write_json "BENCH_ipl.json" r;
  note "wrote BENCH_ipl.json (schema %s)" Workload.Obs_bench.schema_version

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let micro () =
  section "Micro-benchmarks (Bechamel, ns/op)";
  let open Bechamel in
  let mk_engine () =
    let chip = Chip.create (FConfig.default ~num_blocks:64 ()) in
    Engine.create
      ~config:{ Ipl_core.Ipl_config.default with Ipl_core.Ipl_config.buffer_pages = 16 }
      chip
  in
  let page_bench =
    let p = Storage.Page.create db_page_size in
    let payload = Bytes.make 64 'r' in
    Test.make ~name:"page/insert+delete"
      (Staged.stage (fun () ->
           match Storage.Page.insert p payload with
           | Some slot -> ignore (Storage.Page.delete p slot)
           | None -> Storage.Page.compact p))
  in
  let record_bench =
    let buf = Buffer.create 256 in
    let r =
      {
        Ipl_core.Log_record.txid = 1;
        page = 42;
        op =
          Ipl_core.Log_record.Update_range
            { slot = 3; offset = 8; before = Bytes.make 8 'a'; after = Bytes.make 8 'b' };
      }
    in
    Test.make ~name:"log_record/encode"
      (Staged.stage (fun () ->
           Buffer.clear buf;
           Ipl_core.Log_record.encode buf r))
  in
  (* Raw-chip microbench: measures the device itself, so it bypasses the
     storage managers and drives the chip directly. *)
  let chip_bench =
    let config = FConfig.default ~num_blocks:8 ~materialize:false () in
    let chip = Chip.create config in
    let sector = Bytes.make config.FConfig.sector_size 's' in
    let sectors_per_block = config.FConfig.block_size / config.FConfig.sector_size in
    let i = ref 0 in
    Test.make ~name:"flash/sector-write (table 1)"
      (Staged.stage (fun () ->
           let s = !i mod sectors_per_block in
           if s = 0 && !i > 0 then Chip.erase_block chip 0;
           Chip.write_sectors chip ~sector:s sector;
           incr i))
    [@lint.allow "flash-call"]
  in
  let engine_bench =
    let engine = mk_engine () in
    let page = eok (Engine.allocate_page engine) in
    (match Engine.insert engine ~tx:Engine.no_txn ~page (Bytes.make 64 'x') with
    | Ok _ -> ()
    | Error e -> failwith (Engine.error_to_string e));
    let i = ref 0 in
    Test.make ~name:"engine/update (tables 4-5)"
      (Staged.stage (fun () ->
           incr i;
           match
             Engine.update engine ~tx:Engine.no_txn ~page ~slot:0
               (Bytes.of_string (Printf.sprintf "%064d" !i))
           with
           | Ok () -> ()
           | Error e -> failwith (Engine.error_to_string e)))
  in
  let btree_bench =
    let engine = mk_engine () in
    let tree = Btree.Bptree.create engine in
    let i = ref 0 in
    Test.make ~name:"btree/set+find"
      (Staged.stage (fun () ->
           incr i;
           let key = !i mod 2000 in
           (match Btree.Bptree.set tree ~tx:Engine.no_txn ~key ~value:!i with
           | Ok () -> ()
           | Error e -> failwith e);
           ignore (Btree.Bptree.find tree key)))
  in
  let sim_bench =
    let b = Trace.builder ~name:"micro" ~db_pages:64 in
    let rng = Ipl_util.Rng.of_int 5 in
    for _ = 1 to 5_000 do
      let page = Ipl_util.Rng.int rng 64 in
      Trace.add_log b ~op:Trace.Update ~page ~length:50;
      if Ipl_util.Rng.chance rng 0.3 then Trace.add_page_write b ~page
    done;
    let trace = Trace.build b in
    Test.make ~name:"simulator/5k-event trace (figs 5-7)"
      (Staged.stage (fun () -> ignore (Sim.run trace)))
  in
  let locality_bench =
    let b = Trace.builder ~name:"micro" ~db_pages:64 in
    let rng = Ipl_util.Rng.of_int 6 in
    for _ = 1 to 5_000 do
      Trace.add_page_write b ~page:(Ipl_util.Rng.int rng 64)
    done;
    let trace = Trace.build b in
    Test.make ~name:"locality/window-scan (fig 4)"
      (Staged.stage (fun () ->
           ignore (Locality.sliding_window_distinct trace ~window:16 `Pages)))
  in
  let tests =
    [ page_bench; record_bench; chip_bench; engine_bench; btree_bench; sim_bench; locality_bench ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ ns ] -> Printf.printf "  %-42s %12.0f ns/op\n" name ns
          | _ -> Printf.printf "  %-42s (no estimate)\n" name)
        ols)
    tests

(* ------------------------------------------------------------------ *)

let () =
  (* Large retained heaps (the 1 GB logical database) behave much better
     with a roomier GC on this machine. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024; space_overhead = 200 };
  Printf.printf "In-Page Logging reproduction benchmark%s\n" (if quick then " (--quick)" else "");
  table1 ();
  tables_3_and_2 ();
  let study = generate_study () in
  table4 study;
  figure4 study;
  table5 study;
  figures_5_and_6 study;
  figure7 study;
  table6 ();
  ablation_baseline_replay study;
  ablation_fill_policy study;
  ablation_wear ();
  ablation_recovery_overhead ();
  ablation_read_amplification ();
  ablation_group_commit ();
  ablation_background_merge ();
  ablation_selective_merge_threshold ();
  obs_bench_export ();
  if not skip_micro then micro ();
  Printf.printf "\nDone.\n"
