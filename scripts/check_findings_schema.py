#!/usr/bin/env python3
"""Validate an ipl_lint / ipl_sema --json report against
schema/findings.schema.json.

Hand-rolled validator covering exactly the subset of JSON Schema the
checked-in schema uses (type, const, enum, minimum, minLength, required,
additionalProperties, items) so CI needs nothing beyond the stdlib.

Usage: check_findings_schema.py REPORT.json [SCHEMA.json]
Also re-checks the report's errors/warnings counters against the
findings array, and that the findings are sorted and deduplicated on
(file, line, rule) — the byte-stability contract CI relies on.
"""

import json
import os
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "boolean": bool,
}


def fail(path, msg):
    sys.exit(f"schema violation at {path or '$'}: {msg}")


def validate(value, schema, path=""):
    t = schema.get("type")
    if t is not None:
        py = TYPES[t]
        ok = isinstance(value, py)
        if py is int:  # bool is an int subclass in Python
            ok = ok and not isinstance(value, bool)
        if not ok:
            fail(path, f"expected {t}, got {type(value).__name__}")
    if "const" in schema and value != schema["const"]:
        fail(path, f"expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        fail(path, f"{value!r} not in {schema['enum']}")
    if "minimum" in schema and value < schema["minimum"]:
        fail(path, f"{value} < minimum {schema['minimum']}")
    if "minLength" in schema and len(value) < schema["minLength"]:
        fail(path, f"length {len(value)} < minLength {schema['minLength']}")
    if t == "object":
        for key in schema.get("required", []):
            if key not in value:
                fail(path, f"missing required key {key!r}")
        props = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            extra = set(value) - set(props)
            if extra:
                fail(path, f"unexpected keys {sorted(extra)}")
        for key, sub in props.items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}")
    if t == "array" and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]")


def check_report_invariants(report):
    findings = report["findings"]
    errors = sum(1 for f in findings if f["severity"] == "error")
    warnings = len(findings) - errors
    if report["errors"] != errors or report["warnings"] != warnings:
        sys.exit(
            f"counter mismatch: header says {report['errors']} errors / "
            f"{report['warnings']} warnings, findings hold {errors} / {warnings}"
        )
    keys = [(f["file"], f["line"], f["rule"]) for f in findings]
    if keys != sorted(keys):
        sys.exit("findings are not sorted by (file, line, rule)")
    if len(keys) != len(set(keys)):
        sys.exit("findings contain (file, line, rule) duplicates")


def main(argv):
    if len(argv) not in (2, 3):
        sys.exit(__doc__.strip())
    report_path = argv[1]
    schema_path = (
        argv[2]
        if len(argv) == 3
        else os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "schema",
            "findings.schema.json",
        )
    )
    with open(schema_path) as fh:
        schema = json.load(fh)
    with open(report_path) as fh:
        report = json.load(fh)
    validate(report, schema)
    check_report_invariants(report)
    print(
        f"{report_path}: valid ipl-findings/1 report from {report['tool']} "
        f"({report['errors']} errors, {report['warnings']} warnings)"
    )


if __name__ == "__main__":
    main(sys.argv)
