#!/usr/bin/env python3
"""Validate the shape of BENCH_ipl.json (ipl_cli bench --json).

Structural check, stdlib only: the top-level sections CI depends on must
be present with the right types, every backend must carry flash stats,
the IPL backend's storage stats must include the full counter set
(including the recovery counters log_cache_warm_entries and
eus_repaired_lazily), and — when the document was produced with
--restart — the restart section must carry per-spec points and the
time_to_first_txn headline with both eager_s and lazy_s.

Usage: check_bench_schema.py BENCH_ipl.json
Exits non-zero on the first violation.
"""

import json
import sys


def fail(msg):
    sys.exit(f"bench schema violation: {msg}")


def need(obj, key, ty, where):
    if not isinstance(obj, dict) or key not in obj:
        fail(f"{where}: missing key {key!r}")
    v = obj[key]
    ok = isinstance(v, ty)
    if ty is int:
        ok = ok and not isinstance(v, bool)
    if not ok:
        fail(f"{where}.{key}: expected {ty.__name__}, got {type(v).__name__}")
    return v


NUMBER = (int, float)

STORAGE_COUNTERS = [
    "pages_allocated",
    "page_reads",
    "log_sector_writes",
    "overflow_sector_writes",
    "log_sector_reads",
    "merges",
    "overflow_diversions",
    "records_applied_at_merge",
    "records_dropped_aborted",
    "records_carried_over",
    "erase_units_reclaimed",
    "log_cache_hits",
    "log_cache_misses",
    "log_cache_evictions",
    "log_cache_warm_entries",
    "eus_repaired_lazily",
]

RESTART_POINT_KEYS = {
    "name": str,
    "pages": int,
    "transactions": int,
    "eager_s": NUMBER,
    "lazy_s": NUMBER,
    "eager_restart_log_reads": int,
    "lazy_restart_log_reads": int,
    "repair_pending_after_restart": int,
    "warm_entries_after_drain": int,
    "digest_match": bool,
}


def check_restart(restart):
    specs = need(restart, "specs", list, "restart")
    if not specs:
        fail("restart.specs: empty")
    for i, p in enumerate(specs):
        where = f"restart.specs[{i}]"
        for key, ty in RESTART_POINT_KEYS.items():
            need(p, key, ty, where)
        if not p["digest_match"]:
            fail(f"{where}: digest_match is false — lazy recovery diverged")
    ttft = need(restart, "time_to_first_txn", dict, "restart")
    need(ttft, "eager_s", NUMBER, "restart.time_to_first_txn")
    need(ttft, "lazy_s", NUMBER, "restart.time_to_first_txn")


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    need(doc, "schema", str, "$")
    need(doc, "workload", dict, "$")
    need(doc, "logical_digest", str, "$")
    need(doc, "device", dict, "$")
    need(doc, "wall_clock", dict, "$")
    backends = need(doc, "backends", list, "$")

    ipl = None
    for i, b in enumerate(backends):
        name = need(b, "name", str, f"backends[{i}]")
        need(b, "flash", dict, f"backends[{i}]")
        if name == "ipl":
            ipl = b
    if ipl is None:
        fail("backends: no entry named 'ipl'")
    storage = need(ipl, "storage", dict, "backends[ipl]")
    for key in STORAGE_COUNTERS:
        need(storage, key, int, "backends[ipl].storage")

    if "restart" in doc:
        check_restart(need(doc, "restart", dict, "$"))

    print(f"{sys.argv[1]}: bench schema OK"
          + (" (with restart section)" if "restart" in doc else ""))


if __name__ == "__main__":
    main()
