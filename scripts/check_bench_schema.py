#!/usr/bin/env python3
"""Validate the shape of BENCH_ipl.json (ipl_cli bench --json).

Structural check, stdlib only: the top-level sections CI depends on must
be present with the right types, every backend must carry flash stats,
the IPL backend's storage stats must include the full counter set
(including the recovery counters log_cache_warm_entries and
eus_repaired_lazily), the concurrency section must be mode-tagged
("serial" carries only the fields that are meaningful without sessions;
"sessions" carries the batch accounting plus commit_latency percentiles
and a per_session breakdown), wall_clock must record the jobs the run
used, and — when the document was produced with --restart — the restart
section must carry per-spec points and the time_to_first_txn headline
with both eager_s and lazy_s.

Usage: check_bench_schema.py BENCH_ipl.json
Exits non-zero on the first violation.
"""

import json
import sys


def fail(msg):
    sys.exit(f"bench schema violation: {msg}")


def need(obj, key, ty, where):
    if not isinstance(obj, dict) or key not in obj:
        fail(f"{where}: missing key {key!r}")
    v = obj[key]
    ok = isinstance(v, ty)
    if ty is int:
        ok = ok and not isinstance(v, bool)
    if not ok:
        fail(f"{where}.{key}: expected {ty.__name__}, got {type(v).__name__}")
    return v


NUMBER = (int, float)

STORAGE_COUNTERS = [
    "pages_allocated",
    "page_reads",
    "log_sector_writes",
    "overflow_sector_writes",
    "log_sector_reads",
    "merges",
    "overflow_diversions",
    "records_applied_at_merge",
    "records_dropped_aborted",
    "records_carried_over",
    "erase_units_reclaimed",
    "log_cache_hits",
    "log_cache_misses",
    "log_cache_evictions",
    "log_cache_warm_entries",
    "eus_repaired_lazily",
]

RESTART_POINT_KEYS = {
    "name": str,
    "pages": int,
    "transactions": int,
    "eager_s": NUMBER,
    "lazy_s": NUMBER,
    "eager_restart_log_reads": int,
    "lazy_restart_log_reads": int,
    "repair_pending_after_restart": int,
    "warm_entries_after_drain": int,
    "digest_match": bool,
}


LATENCY_KEYS = ["count", "mean_s", "p50_s", "p90_s", "p99_s"]


def check_latency(obj, where):
    need(obj, "count", int, where)
    for key in LATENCY_KEYS[1:]:
        need(obj, key, NUMBER, where)


def check_concurrency(conc):
    mode = need(conc, "mode", str, "concurrency")
    need(conc, "sessions", int, "concurrency")
    need(conc, "committed", int, "concurrency")
    need(conc, "aborted", int, "concurrency")
    if mode == "serial":
        if conc["sessions"] != 0:
            fail("concurrency: mode 'serial' with sessions != 0")
        # Batch/throughput fields would be bookkeeping artifacts on the
        # serial path; their presence means the mode tag is lying.
        for key in ("commit_batches", "throughput_tps", "commit_latency", "per_session"):
            if key in conc:
                fail(f"concurrency.{key}: present in serial mode")
    elif mode == "sessions":
        if conc["sessions"] <= 0:
            fail("concurrency: mode 'sessions' with sessions <= 0")
        for key in ("conflict_aborts", "conflicts", "commit_batches",
                    "batched_commits", "max_commit_batch"):
            need(conc, key, int, "concurrency")
        need(conc, "throughput_tps", NUMBER, "concurrency")
        check_latency(need(conc, "commit_latency", dict, "concurrency"),
                      "concurrency.commit_latency")
        per_session = need(conc, "per_session", list, "concurrency")
        if len(per_session) != conc["sessions"]:
            fail(f"concurrency.per_session: {len(per_session)} entries "
                 f"for {conc['sessions']} sessions")
        for i, s in enumerate(per_session):
            where = f"concurrency.per_session[{i}]"
            need(s, "session", int, where)
            need(s, "commits", int, where)
            check_latency(s, where)
    else:
        fail(f"concurrency.mode: unknown mode {mode!r}")


def check_restart(restart):
    specs = need(restart, "specs", list, "restart")
    if not specs:
        fail("restart.specs: empty")
    for i, p in enumerate(specs):
        where = f"restart.specs[{i}]"
        for key, ty in RESTART_POINT_KEYS.items():
            need(p, key, ty, where)
        if not p["digest_match"]:
            fail(f"{where}: digest_match is false — lazy recovery diverged")
    ttft = need(restart, "time_to_first_txn", dict, "restart")
    need(ttft, "eager_s", NUMBER, "restart.time_to_first_txn")
    need(ttft, "lazy_s", NUMBER, "restart.time_to_first_txn")


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    need(doc, "schema", str, "$")
    need(doc, "workload", dict, "$")
    need(doc, "logical_digest", str, "$")
    need(doc, "device", dict, "$")
    wall_clock = need(doc, "wall_clock", dict, "$")
    jobs = need(wall_clock, "jobs", int, "wall_clock")
    if jobs < 1:
        fail(f"wall_clock.jobs: {jobs} < 1")
    check_concurrency(need(doc, "concurrency", dict, "$"))
    backends = need(doc, "backends", list, "$")

    ipl = None
    for i, b in enumerate(backends):
        name = need(b, "name", str, f"backends[{i}]")
        need(b, "flash", dict, f"backends[{i}]")
        if name == "ipl":
            ipl = b
    if ipl is None:
        fail("backends: no entry named 'ipl'")
    storage = need(ipl, "storage", dict, "backends[ipl]")
    for key in STORAGE_COUNTERS:
        need(storage, key, int, "backends[ipl].storage")

    if "restart" in doc:
        check_restart(need(doc, "restart", dict, "$"))

    print(f"{sys.argv[1]}: bench schema OK"
          + (" (with restart section)" if "restart" in doc else ""))


if __name__ == "__main__":
    main()
