(* Command-line front end for the reproduction: generate TPC-C traces,
   analyse them, run the Algorithm 2 simulator and sweeps, and reproduce
   the Q1-Q6 device comparison.

     ipl_cli gen --warehouses 1 --buffer-mb 4 --transactions 5000 -o t.trace
     ipl_cli stats t.trace
     ipl_cli simulate t.trace --log-region-kb 16
     ipl_cli sweep t.trace
     ipl_cli queries *)

open Cmdliner

module Trace = Reftrace.Trace
module Trace_io = Reftrace.Trace_io
module Locality = Reftrace.Locality
module Sim = Iplsim.Ipl_simulator
module Sweep = Iplsim.Sweep
module Cost = Iplsim.Cost_model
module Driver = Tpcc.Tpcc_driver
module Q = Workload.Queries

(* ---------------- gen ---------------- *)

let gen warehouses buffer_mb users transactions seed out =
  let r = Driver.generate_trace ~seed ~warehouses ~buffer_mb ~users ~transactions () in
  Trace_io.save r.Driver.trace out;
  Printf.printf "wrote %s: %d events (%d log records, %d page writes), %d-page database\n" out
    (Trace.length r.Driver.trace)
    (Trace.stats r.Driver.trace).Trace.total_logs
    (Trace.stats r.Driver.trace).Trace.page_writes
    r.Driver.db_pages

let warehouses_t =
  Arg.(value & opt int 1 & info [ "w"; "warehouses" ] ~doc:"TPC-C warehouses (10 = ~1GB).")

let buffer_mb_t = Arg.(value & opt int 20 & info [ "buffer-mb" ] ~doc:"Buffer pool size, MB.")
let users_t = Arg.(value & opt int 10 & info [ "users" ] ~doc:"Simulated users (names the trace).")

let transactions_t =
  Arg.(value & opt int 5000 & info [ "n"; "transactions" ] ~doc:"Transactions to run.")

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let out_t =
  Arg.(value & opt string "tpcc.trace" & info [ "o"; "output" ] ~doc:"Output trace file.")

let gen_cmd =
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a TPC-C update-reference trace (Section 4.2.1).")
    Term.(const gen $ warehouses_t $ buffer_mb_t $ users_t $ transactions_t $ seed_t $ out_t)

(* ---------------- stats ---------------- *)

let trace_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")

let stats file =
  let trace = Trace_io.load file in
  Printf.printf "%s: %d events over a %d-page database\n" (Trace.name trace)
    (Trace.length trace) (Trace.db_pages trace);
  Format.printf "%a@." Trace.pp_stats (Trace.stats trace);
  let show label s = Format.printf "  %-26s %a@." label Locality.pp_skew s in
  show "log references" (Locality.log_reference_skew trace ~top:2000);
  show "physical page writes" (Locality.page_write_skew trace ~top:2000);
  show "erases (15 pages/unit)" (Locality.erase_skew trace ~top:100 ~pages_per_eu:15);
  Printf.printf "  window-16 distinct pages: %.2f, erase units: %.2f\n"
    (Locality.sliding_window_distinct trace ~window:16 `Pages)
    (Locality.sliding_window_distinct trace ~window:16 (`Erase_units 15))

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Table 4 / Figure 4 style analysis of a trace.")
    Term.(const stats $ trace_arg)

(* ---------------- simulate ---------------- *)

let simulate file log_region_kb tau_s flush_empty =
  let trace = Trace_io.load file in
  let params =
    {
      Sim.default_params with
      Sim.log_region = log_region_kb * 1024;
      fill_policy = (match tau_s with None -> `Bytes | Some n -> `Count n);
      flush_empty_on_evict = flush_empty;
    }
  in
  let r = Sim.run ~params trace in
  Format.printf "%a@." Sim.pp_result r;
  let t_ipl = Cost.t_ipl ~sector_writes:r.Sim.sector_writes ~merges:r.Sim.merges () in
  Printf.printf "t_IPL = %.1f s;  t_Conv(0.9) = %.1f s;  t_Conv(0.5) = %.1f s\n" t_ipl
    (Cost.t_conv ~page_writes:r.Sim.page_write_events ~alpha:0.9 ())
    (Cost.t_conv ~page_writes:r.Sim.page_write_events ~alpha:0.5 ())

let log_region_t =
  Arg.(value & opt int 8 & info [ "log-region-kb" ] ~doc:"Log region per 128KB erase unit, KB.")

let tau_s_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "tau-s" ] ~doc:"Flush after a fixed record count (paper's pseudo-code) instead of byte-accurate fill.")

let flush_empty_t =
  Arg.(value & flag & info [ "flush-empty" ] ~doc:"Emit a sector write on every eviction, even with no pending records.")

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the Algorithm 2 IPL simulator over a trace.")
    Term.(const simulate $ trace_arg $ log_region_t $ tau_s_t $ flush_empty_t)

(* ---------------- sweep ---------------- *)

let sweep file csv =
  let trace = Trace_io.load file in
  let points = Sweep.log_region_sweep trace in
  if csv then begin
    Printf.printf "log_region_kb,merges,sector_writes,t_ipl_s,db_size_mb\n";
    List.iter
      (fun (p : Sweep.point) ->
        Printf.printf "%d,%d,%d,%.2f,%d\n" (p.Sweep.log_region / 1024)
          p.Sweep.result.Sim.merges p.Sweep.result.Sim.sector_writes p.Sweep.t_ipl
          (p.Sweep.db_size / 1024 / 1024))
      points
  end
  else begin
    Printf.printf "%-10s %10s %12s %12s %10s\n" "log region" "merges" "sector wr" "t_IPL (s)"
      "DB size";
    List.iter
      (fun (p : Sweep.point) ->
        Printf.printf "%6d KB %12d %12d %12.1f %7d MB\n" (p.Sweep.log_region / 1024)
          p.Sweep.result.Sim.merges p.Sweep.result.Sim.sector_writes p.Sweep.t_ipl
          (p.Sweep.db_size / 1024 / 1024))
      points
  end

let csv_t = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV (plot-ready) output.")

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep" ~doc:"Figures 5/6: sweep the log-region size over a trace.")
    Term.(const sweep $ trace_arg $ csv_t)

(* ---------------- replay ---------------- *)

let replay file design =
  let trace = Trace_io.load file in
  let db_pages = Trace.db_pages trace in
  let db_page_size = Ipl_core.Ipl_config.default.Ipl_core.Ipl_config.page_size in
  let blocks = (db_pages / 16 * 115 / 100) + 32 in
  let chip =
    Flash_sim.Flash_chip.create
      (Flash_sim.Flash_config.default ~num_blocks:blocks ~materialize:false ())
  in
  let time, erases =
    match design with
    | "ftl" ->
        let ftl = Ftl.Block_ftl.create chip ~page_size:db_page_size in
        Ftl.Block_ftl.format ftl;
        ( Baseline.Replay.run trace (Ftl.Block_ftl.device ftl),
          (Flash_sim.Flash_chip.stats chip).Flash_sim.Flash_stats.block_erases )
    | "lfs" ->
        let lfs = Baseline.Lfs_store.create chip ~page_size:db_page_size in
        Baseline.Lfs_store.format lfs;
        ( Baseline.Replay.run trace (Baseline.Lfs_store.device lfs),
          (Flash_sim.Flash_chip.stats chip).Flash_sim.Flash_stats.block_erases )
    | "inplace" ->
        let ip = Baseline.Inplace_store.create chip ~page_size:db_page_size in
        Baseline.Inplace_store.format ip;
        ( Baseline.Replay.run trace (Baseline.Inplace_store.device ip),
          (Flash_sim.Flash_chip.stats chip).Flash_sim.Flash_stats.block_erases )
    | "ipl" ->
        let r = Sim.run trace in
        (Cost.t_ipl ~sector_writes:r.Sim.sector_writes ~merges:r.Sim.merges (), r.Sim.merges)
    | other -> failwith (Printf.sprintf "unknown design %S (ftl|lfs|inplace|ipl)" other)
  in
  Printf.printf "%s on %s: %.1f s, %d erases/merges
" design (Trace.name trace) time erases

let design_t =
  Arg.(
    value
    & opt string "ipl"
    & info [ "design" ] ~doc:"Storage design: ipl, ftl (DRAM-buffered SSD), lfs, or inplace.")

let replay_cmd =
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a trace's write stream on a storage design.")
    Term.(const replay $ trace_arg $ design_t)

(* ---------------- faultcheck ---------------- *)

(* [--jobs 0] (the default) defers to IPL_JOBS, then to 1; any request is
   clamped to the machine's recommended domain count. Reports, digests
   and JSON (outside wall_clock) are byte-identical for every value. *)
let resolve_jobs cli = Par.Par_config.resolve ~cli ()

let jobs_t =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains for the parallel paths (crash-point campaigns, baseline \
           replays, session read resolution, restart sweep). 0 (default): use the \
           $(b,IPL_JOBS) environment variable if set, else 1 — fully serial, no \
           domains. Clamped to the machine's recommended domain count. The results \
           are byte-identical for every value; only wall-clock time changes.")

let crash_campaign ops sample stride lazy_mode seed transactions pages no_tear broken jobs =
  let transactions = Option.value ~default:200 transactions in
  let spec = { Fault.Workload.default with Fault.Workload.seed; transactions; pages } in
  let report =
    Fault.Campaign.run ~tear:(not no_tear) ~broken ~max_ops:ops ~sample ~stride ~lazy_mode
      ~jobs spec
  in
  if lazy_mode then
    Printf.printf "lazy-recovery mode: every crash point checked lazy == eager\n";
  Format.printf "%a@." Fault.Campaign.pp_report report;
  let nviol = List.length report.Fault.Campaign.violations in
  if broken then
    if nviol > 0 then begin
      Printf.printf "broken-commit mode: checker caught the unsound configuration, as expected\n";
      exit 0
    end
    else begin
      Printf.printf "broken-commit mode: checker FAILED to catch the unsound configuration\n";
      exit 1
    end
  else if nviol > 0 then exit 1

let resilience_campaign profile spares seed transactions =
  if profile = "remap-crash" then begin
    match Fault.Campaign.run_remap_crash ~spares ~seed () with
    | [] -> Printf.printf "remap-crash: every crash point recovered cleanly\n"
    | l ->
        List.iter
          (fun (delta, vs) ->
            Printf.printf "crash %d ops after remap trigger:\n" delta;
            List.iter (fun v -> Printf.printf "- %s\n" v) vs)
          l;
        exit 1
  end
  else
    match Fault.Campaign.profile_of_string profile with
    | None ->
        Printf.eprintf
          "unknown profile %S (expected flaky, program, erase, wearout, remap-crash or \
           concurrent)\n"
          profile;
        exit 2
    | Some p ->
        let transactions = Option.value ~default:0 transactions in
        let r = Fault.Campaign.run_resilience ~spares ~transactions ~seed p in
        Format.printf "%a@." Fault.Campaign.pp_resilience_report r;
        if not (Fault.Campaign.resilience_ok r) then exit 1

let concurrent_campaign ops sample stride lazy_mode seed transactions pages no_tear sessions
    jobs =
  let transactions = Option.value ~default:60 transactions in
  let spec = { Fault.Workload.default with Fault.Workload.seed; transactions; pages } in
  let report =
    Fault.Campaign.run_concurrent ~tear:(not no_tear) ~max_ops:ops ~sample ~stride
      ~lazy_mode ~sessions ~jobs spec
  in
  Printf.printf "concurrent campaign: %d sessions%s\n" sessions
    (if lazy_mode then " (lazy == eager checked)" else "");
  Format.printf "%a@." Fault.Campaign.pp_report report;
  if report.Fault.Campaign.violations <> [] then exit 1

let faultcheck ops sample stride lazy_mode seed transactions pages no_tear broken profile
    spares sessions jobs =
  let jobs = resolve_jobs jobs in
  match profile with
  | None ->
      crash_campaign ops sample stride lazy_mode seed transactions pages no_tear broken jobs
  | Some "concurrent" ->
      concurrent_campaign ops sample stride lazy_mode seed transactions pages no_tear
        sessions jobs
  | Some profile -> resilience_campaign profile spares seed transactions

let ops_t =
  Arg.(
    value
    & opt int 0
    & info [ "ops" ]
        ~doc:"Consider only the first $(docv) flash operations after setup as crash points (0 = all).")

let sample_t =
  Arg.(
    value
    & opt int 0
    & info [ "sample" ] ~doc:"Test only $(docv) crash points, spread evenly (0 = every point).")

let stride_t =
  Arg.(
    value
    & opt int 1
    & info [ "stride" ]
        ~doc:"Keep only every $(docv)-th crash point after sampling (cheap CI thinning).")

let lazy_t =
  Arg.(
    value & flag
    & info [ "lazy" ]
        ~doc:
          "Lazy-recovery equivalence mode: restart every crashed chip with on-demand page \
           repair (fuzzy checkpoints enabled) and require its logical digest to match an \
           eagerly recovered twin, before and after the repair drain.")

let fc_transactions_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "n"; "transactions" ]
        ~doc:"Transactions in the workload (default: 200, or the profile's own length).")

let fc_pages_t = Arg.(value & opt int 6 & info [ "pages" ] ~doc:"Data pages in the workload.")

let no_tear_t =
  Arg.(
    value & flag
    & info [ "no-tear" ] ~doc:"Fail cleanly before the fatal program instead of tearing it.")

let broken_t =
  Arg.(
    value & flag
    & info [ "broken" ]
        ~doc:"Self-test: disable commit-time log forcing and verify the checker flags the lost transactions (exits 0 only if it does).")

let profile_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ]
        ~doc:
          "Run a device-resilience campaign instead of the crash-point one: $(b,flaky) \
           (correctable/transient reads), $(b,program), $(b,erase) (random failures), \
           $(b,wearout) (to spare-pool exhaustion), $(b,remap-crash) (power loss \
           mid-remap) or $(b,concurrent) (crash points over MVCC sessions with group \
           commit, checked against the commit-order-prefix oracle).")

let fc_sessions_t =
  Arg.(
    value & opt int 8
    & info [ "sessions" ]
        ~doc:"Concurrent MVCC sessions for $(b,--profile concurrent).")

let spares_t =
  Arg.(
    value & opt int 4
    & info [ "spares" ] ~doc:"Spare-pool size for $(b,--profile) campaigns.")

let faultcheck_cmd =
  Cmd.v
    (Cmd.info "faultcheck"
       ~doc:
         "Fault campaigns: crash at every flash operation and verify recovery against a \
          model oracle, or ($(b,--profile)) inject device failures against the bad-block \
          manager and verify zero data loss up to read-only degradation.")
    Term.(
      const faultcheck $ ops_t $ sample_t $ stride_t $ lazy_t $ seed_t $ fc_transactions_t
      $ fc_pages_t $ no_tear_t $ broken_t $ profile_t $ spares_t $ fc_sessions_t $ jobs_t)

(* ---------------- observe ---------------- *)

let obs_spec transactions seed quick =
  let base = if quick then Workload.Obs_bench.quick else Workload.Obs_bench.default in
  let base = match transactions with None -> base | Some n -> { base with Workload.Obs_bench.transactions = n } in
  { base with Workload.Obs_bench.seed }

let observe transactions seed quick tail json_out csv_out =
  let spec = obs_spec transactions seed quick in
  let r = Workload.Obs_bench.run ~spec () in
  let tracer = r.Workload.Obs_bench.tracer and metrics = r.Workload.Obs_bench.metrics in
  Printf.printf "workload: %d transactions, seed %d\n" spec.Workload.Obs_bench.transactions
    spec.Workload.Obs_bench.seed;
  Printf.printf "trace: %d events emitted, %d retained, %d dropped\n"
    (Obs.Tracer.emitted tracer) (Obs.Tracer.length tracer) (Obs.Tracer.dropped tracer);
  List.iter
    (fun kind ->
      let n = Obs.Tracer.count_kind tracer kind in
      if n > 0 then Printf.printf "  %-20s %8d\n" kind n)
    Obs.Event.kinds;
  if tail > 0 then begin
    let keep = ref [] and len = ref 0 in
    Obs.Tracer.iter
      (fun e ->
        keep := e :: !keep;
        incr len;
        if !len > tail then keep := List.filteri (fun i _ -> i < tail) !keep)
      tracer;
    Printf.printf "last %d events:\n" (min tail !len);
    List.iter
      (fun (e : Obs.Tracer.entry) ->
        Format.printf "  %6d %.6f %a@." e.Obs.Tracer.seq e.Obs.Tracer.time Obs.Event.pp
          e.Obs.Tracer.event)
      (List.rev !keep)
  end;
  print_string (Obs.Export.metrics_csv metrics);
  (match json_out with
  | None -> ()
  | Some path ->
      let doc =
        Ipl_util.Json.Obj
          [
            ("metrics", Obs.Export.metrics_json metrics);
            ("trace", Obs.Export.trace_json tracer);
          ]
      in
      Obs.Export.to_file path (Ipl_util.Json.to_string doc ^ "\n");
      Printf.printf "wrote %s\n" path);
  match csv_out with
  | None -> ()
  | Some path ->
      Obs.Export.to_file path (Obs.Export.trace_csv tracer);
      Printf.printf "wrote %s\n" path

let obs_transactions_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "n"; "transactions" ] ~doc:"Transactions in the instrumented workload.")

let obs_quick_t = Arg.(value & flag & info [ "quick" ] ~doc:"Smaller workload for smoke runs.")

let tail_t =
  Arg.(value & opt int 0 & info [ "tail" ] ~doc:"Print the last $(docv) trace events.")

let obs_json_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~doc:"Write the full trace and metrics as JSON to $(docv).")

let obs_csv_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~doc:"Write the trace as CSV to $(docv).")

let observe_cmd =
  Cmd.v
    (Cmd.info "observe"
       ~doc:
         "Run the instrumented engine workload and dump its event trace and latency metrics \
          (lib/obs).")
    Term.(
      const observe $ obs_transactions_t $ seed_t $ obs_quick_t $ tail_t $ obs_json_t $ obs_csv_t)

(* ---------------- bench ---------------- *)

let bench transactions seed quick spares cache_bytes channels ways sessions restart json
    out jobs =
  let jobs = resolve_jobs jobs in
  let spec = obs_spec transactions seed quick in
  let spec = { spec with Workload.Obs_bench.spare_blocks = spares; channels; ways; sessions } in
  let spec =
    match cache_bytes with
    | None -> spec
    | Some b -> { spec with Workload.Obs_bench.log_cache_bytes = b }
  in
  let r = Workload.Obs_bench.run ~spec ~jobs () in
  let member = Ipl_util.Json.member in
  let backends =
    match member "backends" r.Workload.Obs_bench.json with
    | Some (Ipl_util.Json.List l) -> l
    | _ -> []
  in
  Printf.printf "%-10s %14s %14s %12s\n" "backend" "flash time (s)" "erases" "writes";
  List.iter
    (fun b ->
      let str k = match member k b with Some (Ipl_util.Json.String s) -> s | _ -> "?" in
      let flash = Option.value ~default:Ipl_util.Json.Null (member "flash" b) in
      let num k =
        match member k flash with
        | Some (Ipl_util.Json.Int n) -> float_of_int n
        | Some (Ipl_util.Json.Float f) -> f
        | _ -> Float.nan
      in
      Printf.printf "%-10s %14.4f %14.0f %12.0f\n" (str "name") (num "elapsed_s")
        (num "block_erases") (num "page_writes"))
    backends;
  (let c = r.Workload.Obs_bench.concurrency in
   if c.Workload.Obs_bench.sessions > 0 then
     Printf.printf
       "sessions %d: %d committed, %d aborted (%d conflicts), %d commit batches \
        (mean %.2f, max %d), %.0f txn/s simulated\n"
       c.Workload.Obs_bench.sessions c.Workload.Obs_bench.committed
       (c.Workload.Obs_bench.aborted + c.Workload.Obs_bench.conflict_aborts)
       c.Workload.Obs_bench.conflict_aborts c.Workload.Obs_bench.commit_batches
       (if c.Workload.Obs_bench.commit_batches > 0 then
          float_of_int c.Workload.Obs_bench.batched_commits
          /. float_of_int c.Workload.Obs_bench.commit_batches
        else 0.0)
       c.Workload.Obs_bench.max_commit_batch c.Workload.Obs_bench.throughput_tps);
  let restart_points =
    if restart then begin
      let pts = Workload.Restart_bench.run ~jobs () in
      Format.printf "%a@." Workload.Restart_bench.pp pts;
      Some pts
    end
    else None
  in
  if json then begin
    let extra =
      match restart_points with
      | None -> []
      | Some pts -> [ ("restart", Workload.Restart_bench.to_json pts) ]
    in
    Workload.Obs_bench.write_json ~extra out r;
    Printf.printf "wrote %s\n" out
  end

let bench_json_t =
  Arg.(value & flag & info [ "json" ] ~doc:"Also write the full benchmark document as JSON.")

let bench_restart_t =
  Arg.(
    value & flag
    & info [ "restart" ]
        ~doc:
          "Also run the restart-availability benchmark: simulated time to the first \
           committed transaction after a crash, eager full-scan recovery versus lazy \
           (fuzzy-checkpoint) recovery, over three database sizes. With $(b,--json) the \
           results are appended to the document under $(i,restart).")

let bench_spares_t =
  Arg.(
    value & opt int 0
    & info [ "spares" ]
        ~doc:
          "Run the IPL engine with an $(docv)-block spare pool (bad-block manager); its \
           resilience counters appear in the JSON backend stats.")

let bench_cache_bytes_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-bytes" ]
        ~doc:
          "DRAM log-record cache budget in bytes for the IPL engine (0 disables the \
           cache); defaults to the engine's configured budget.")

let bench_channels_t =
  Arg.(
    value & opt int 1
    & info [ "channels" ]
        ~doc:
          "Flash channels of the IPL engine's device; the logical results \
           (and the JSON document's logical_digest) are identical for every \
           value, only the simulated flash time changes.")

let bench_ways_t =
  Arg.(value & opt int 1 & info [ "ways" ] ~doc:"Chips per channel (total chips = channels x ways).")

let bench_sessions_t =
  Arg.(
    value & opt int 0
    & info [ "sessions" ]
        ~doc:
          "Run the workload through $(docv) concurrent MVCC client sessions with group \
           commit (0: the serial engine loop). One session reproduces the serial \
           logical_digest bit-for-bit; more sessions batch commits into fewer device \
           barriers and report conflict/abort rates in the JSON concurrency section.")

let bench_out_t =
  Arg.(
    value
    & opt string "BENCH_ipl.json"
    & info [ "o"; "output" ] ~doc:"Where $(b,--json) writes the document.")

let bench_cmd =
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Instrumented three-backend benchmark (IPL vs sequential-logging vs in-place); \
          $(b,--json) writes the schema-stable BENCH_ipl.json.")
    Term.(
      const bench $ obs_transactions_t $ seed_t $ obs_quick_t $ bench_spares_t
      $ bench_cache_bytes_t $ bench_channels_t $ bench_ways_t $ bench_sessions_t
      $ bench_restart_t $ bench_json_t $ bench_out_t $ jobs_t)

(* ---------------- chansweep ---------------- *)

let chansweep transactions seed quick counts csv jobs =
  let jobs = resolve_jobs jobs in
  let spec = obs_spec transactions seed quick in
  (* Each sweep point runs sequentially with the parallelism {e inside}
     the point (replays, session reads): nesting a pool of points over
     the bench's own pool would deadlock-by-design (Nested_parallelism). *)
  let run ~channels =
    (Workload.Obs_bench.run ~spec:{ spec with Workload.Obs_bench.channels } ~jobs ())
      .Workload.Obs_bench.json
  in
  let points = Sweep.channel_sweep ~channel_counts:counts ~run () in
  let digests =
    List.sort_uniq compare (List.map (fun p -> p.Sweep.logical_digest) points)
  in
  if List.length digests > 1 then
    failwith "chansweep: logical digest differs across channel counts";
  let q cls f p =
    match List.assoc_opt cls p.Sweep.class_latency with
    | Some (p50, p99) -> f (p50, p99)
    | None -> Float.nan
  in
  if csv then begin
    Printf.printf
      "channels,elapsed_s,speedup,fg_p50_ms,fg_p99_ms,log_p50_ms,log_p99_ms,merge_p50_ms,merge_p99_ms
";
    List.iter
      (fun (p : Sweep.channel_point) ->
        Printf.printf "%d,%.4f,%.2f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f
" p.Sweep.channels
          p.Sweep.elapsed_s p.Sweep.speedup
          (1e3 *. q "foreground" fst p)
          (1e3 *. q "foreground" snd p)
          (1e3 *. q "log_flush" fst p)
          (1e3 *. q "log_flush" snd p)
          (1e3 *. q "merge" fst p)
          (1e3 *. q "merge" snd p))
      points
  end
  else begin
    Printf.printf "%-9s %11s %8s %18s %18s %18s
" "channels" "elapsed (s)" "speedup"
      "fg p50/p99 (ms)" "log p50/p99 (ms)" "merge p50/p99 (ms)";
    List.iter
      (fun (p : Sweep.channel_point) ->
        Printf.printf "%-9d %11.4f %7.2fx %9.2f /%6.2f %9.2f /%6.2f %9.2f /%6.2f
"
          p.Sweep.channels p.Sweep.elapsed_s p.Sweep.speedup
          (1e3 *. q "foreground" fst p)
          (1e3 *. q "foreground" snd p)
          (1e3 *. q "log_flush" fst p)
          (1e3 *. q "log_flush" snd p)
          (1e3 *. q "merge" fst p)
          (1e3 *. q "merge" snd p))
      points;
    Printf.printf "logical digest: %s (identical at every channel count)
"
      (match digests with d :: _ -> d | [] -> "?")
  end

let chansweep_counts_t =
  Arg.(
    value
    & opt (list int) [ 1; 2; 4; 8 ]
    & info [ "counts" ] ~doc:"Comma-separated channel counts to sweep.")

let chansweep_cmd =
  Cmd.v
    (Cmd.info "chansweep"
       ~doc:
         "Channel-scaling sweep: run the bench workload at several channel counts,           report makespan, speedup and per-op-class latency quantiles, and verify the           logical digest is geometry-independent.")
    Term.(
      const chansweep $ obs_transactions_t $ seed_t $ obs_quick_t $ chansweep_counts_t
      $ csv_t $ jobs_t)

(* ---------------- queries ---------------- *)

let queries () =
  Printf.printf "%-28s %10s %10s\n" "" "disk (s)" "flash (s)";
  List.iter
    (fun (q, (d : Q.measurement), (f : Q.measurement)) ->
      Printf.printf "%-28s %10.2f %10.2f\n" (Q.name q) d.Q.elapsed f.Q.elapsed)
    (Q.table3 ())

let queries_cmd =
  Cmd.v
    (Cmd.info "queries" ~doc:"Tables 2/3: run Q1-Q6 on the disk and flash-SSD models.")
    Term.(const queries $ const ())

(* ---------------- lint / sema ---------------- *)

let lint json_out rules roots = exit (Lint.Lint_driver.main ?json_out ~rules roots)

let lint_roots_t =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"DIR"
        ~doc:"Directories (or files) to lint; defaults to lib, bin and bench.")

let json_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the findings as machine-readable JSON to $(docv) (- for stdout).")

let rules_t =
  Arg.(
    value & opt_all string []
    & info [ "rule" ] ~docv:"ID" ~doc:"Only report findings of rule $(docv) (repeatable).")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static-analysis gate: flash-safety and layering invariants (layering, flash-call, \
          no-silent-swallow, no-ignored-flash-result, no-magic-geometry, banned-construct, \
          mli-coverage). Exits 1 on any error-severity finding.")
    Term.(const lint $ json_out_t $ rules_t $ lint_roots_t)

let sema json_out rules roots = exit (Sema.Sema_driver.main ?json_out ~rules roots)

let sema_cmd =
  Cmd.v
    (Cmd.info "sema"
       ~doc:
         "Typed dataflow gate over the dune-emitted .cmt files: tag-leak, unchecked-result, \
          exception-escape and determinism checking (sema-tag-leak, sema-unchecked-result, \
          sema-exception-escape, sema-determinism). Run after `dune build` so the build \
          context is populated. Exits 1 on any error-severity finding.")
    Term.(const sema $ json_out_t $ rules_t $ lint_roots_t)

(* ---------------- main ---------------- *)

let main_cmd =
  Cmd.group
    (Cmd.info "ipl_cli" ~version:"1.0"
       ~doc:"In-page logging (SIGMOD 2007) reproduction toolkit.")
    [
      gen_cmd;
      stats_cmd;
      simulate_cmd;
      sweep_cmd;
      replay_cmd;
      faultcheck_cmd;
      observe_cmd;
      bench_cmd;
      chansweep_cmd;
      queries_cmd;
      lint_cmd;
      sema_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
