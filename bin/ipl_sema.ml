(* Typed dataflow gate over dune-emitted .cmt files: tag-leak,
   unchecked-result, exception-escape and determinism.

     ipl_sema [--json FILE] [--rule ID]... [DIR]...
     (default roots: lib bin bench)

   Analyzes the build context next to the sources (_build/default when
   present, "." inside a build context / dune rule). Exits 1 when any
   error-severity finding remains unsuppressed. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | "--dump" :: roots ->
      let roots = if roots = [] then [ "lib"; "bin"; "bench" ] else roots in
      Sema.Sema_driver.dump_summaries Format.std_formatter roots
  | _ ->
      let json_out, rules, roots = Lint.Lint_driver.parse_args args in
      exit (Sema.Sema_driver.main ?json_out ~rules roots)
