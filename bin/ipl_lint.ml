(* Repo static-analysis gate: flash-safety and layering invariants.

     ipl_lint [--json FILE] [--rule ID]... [DIR|FILE]...
     (default roots: lib bin bench)

   Prints findings as "file:line rule-id message" and exits 1 when any
   error-severity finding remains unsuppressed. [--json FILE] mirrors the
   report as ipl-findings/1 JSON ("-" for stdout); [--rule ID] filters. *)

let () =
  let json_out, rules, roots =
    Lint.Lint_driver.parse_args (List.tl (Array.to_list Sys.argv))
  in
  exit (Lint.Lint_driver.main ?json_out ~rules roots)
