(* Repo static-analysis gate: flash-safety and layering invariants.

     ipl_lint [DIR|FILE]...     (default: lib bin bench)

   Prints findings as "file:line rule-id message" and exits 1 when any
   error-severity finding remains unsuppressed. *)

let () =
  let roots = List.tl (Array.to_list Sys.argv) in
  exit (Lint.Lint_driver.main roots)
