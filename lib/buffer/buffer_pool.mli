(** Fixed-capacity LRU buffer pool.

    The pool caches values of any type keyed by page number; the IPL
    engine stores page images plus their in-memory log sectors in it, and
    the trace generators store placeholder frames. Replacement is strict
    LRU over unpinned frames (constant-time via an intrusive list).

    [fetch] is called on a miss; [write_back] is called exactly once each
    time a dirty frame is cleaned — on eviction, on {!flush_all}, or on
    {!drop_all}. This mirrors the paper's buffer manager contract: evicting
    a dirty page triggers the flush of its in-memory log sector (not a
    write of the whole page). *)

type 'a t

type stats = { hits : int; misses : int; evictions : int; dirty_write_backs : int }

val create :
  capacity:int -> fetch:(int -> 'a) -> write_back:(int -> 'a -> unit) -> unit -> 'a t
(** [capacity] must be positive. *)

val with_page : 'a t -> int -> ?dirty:bool -> ('a -> 'b) -> 'b
(** [with_page t key f] pins the frame for [key] (fetching it on a miss,
    evicting the LRU unpinned frame if full), applies [f], and unpins.
    [~dirty:true] marks the frame dirty. Nested calls are allowed; raises
    [Failure] if every frame is pinned. *)

val mark_dirty : 'a t -> int -> unit
(** Mark a cached frame dirty; raises [Invalid_argument] (naming the
    page) if it is not cached — marking an absent frame is a caller
    bug, not a lookup that may legitimately fail. *)

val clean : 'a t -> int -> unit
(** Clear the dirty flag of a cached frame without writing it back (used
    when the caller has persisted the changes through another path).
    No-op if absent. *)

val preload : 'a t -> int -> 'a -> unit
(** [preload t key value] inserts an externally fetched [value] as a
    clean resident frame (evicting if full), so a later access is a hit
    that does not call [fetch]. Counted as a miss — the value did come
    from below. No-op when [key] is already resident. The batched
    multi-channel prefetch path installs pages read with
    {!Ipl_storage.read_pages} through this. *)

val contains : 'a t -> int -> bool

val promote : 'a t -> int -> unit
(** Bump a resident page to most-recently-used without fetching (no-op
    when absent) — protects a batch's resident members from being
    evicted by its own preloads. *)

val find : 'a t -> int -> 'a option
(** Peek without affecting recency or pinning. *)

val is_dirty : 'a t -> int -> bool
val capacity : 'a t -> int
val cached : 'a t -> int

val dirty_count : 'a t -> int
(** Number of dirty frames — an O(1) counter maintained at every
    dirty-flag transition, not a scan. *)

val flush_all : 'a t -> unit
(** Write back every dirty frame (keeping them cached and now clean). *)

val drop_all : 'a t -> unit
(** Write back every dirty frame and empty the pool. Raises [Failure] if
    any frame is pinned. *)

val iter : (int -> 'a -> dirty:bool -> unit) -> 'a t -> unit
val stats : 'a t -> stats

val set_trace : 'a t -> (Obs.Event.t -> unit) option -> unit
(** Install or clear a trace sink. The pool emits {!Obs.Event.Write_back}
    each time a dirty frame is cleaned and {!Obs.Event.Evict} on each
    eviction. The pool is clock-agnostic, so the sink (typically installed
    by the engine) supplies the timestamp. With no sink installed each
    hook site is a single option check. *)

module Stats : Ipl_util.Stats_intf.S with type t = stats
