type 'a frame = {
  key : int;
  value : 'a;
  mutable dirty : bool;
  mutable pins : int;
  mutable prev : 'a frame option;  (* towards MRU *)
  mutable next : 'a frame option;  (* towards LRU *)
}

type stats = { hits : int; misses : int; evictions : int; dirty_write_backs : int }

type 'a t = {
  capacity : int;
  fetch : int -> 'a;
  write_back : int -> 'a -> unit;
  table : (int, 'a frame) Hashtbl.t;
  mutable mru : 'a frame option;
  mutable lru : 'a frame option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable dirty_write_backs : int;
  mutable dirty_frames : int;  (* maintained at every dirty-flag transition *)
  mutable trace : (Obs.Event.t -> unit) option;
}

let create ~capacity ~fetch ~write_back () =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  {
    capacity;
    fetch;
    write_back;
    table = Hashtbl.create (2 * capacity);
    mru = None;
    lru = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    dirty_write_backs = 0;
    dirty_frames = 0;
    trace = None;
  }

let set_trace t trace = t.trace <- trace

let set_dirty t f v =
  if f.dirty <> v then begin
    f.dirty <- v;
    t.dirty_frames <- t.dirty_frames + (if v then 1 else -1)
  end

let unlink t f =
  (match f.prev with Some p -> p.next <- f.next | None -> t.mru <- f.next);
  (match f.next with Some n -> n.prev <- f.prev | None -> t.lru <- f.prev);
  f.prev <- None;
  f.next <- None

let push_front t f =
  f.next <- t.mru;
  f.prev <- None;
  (match t.mru with Some m -> m.prev <- Some f | None -> t.lru <- Some f);
  t.mru <- Some f

let touch t f =
  if t.mru != Some f then begin
    unlink t f;
    push_front t f
  end

let write_back_frame t f =
  if f.dirty then begin
    t.write_back f.key f.value;
    t.dirty_write_backs <- t.dirty_write_backs + 1;
    set_dirty t f false;
    match t.trace with
    | None -> ()
    | Some emit -> emit (Obs.Event.Write_back { page = f.key })
  end

(* Evict the least-recently-used unpinned frame. *)
let evict_one t =
  let rec find = function
    | None -> failwith "Buffer_pool: all frames are pinned"
    | Some f -> if f.pins = 0 then f else find f.prev
  in
  let victim = find t.lru in
  write_back_frame t victim;
  unlink t victim;
  Hashtbl.remove t.table victim.key;
  t.evictions <- t.evictions + 1;
  match t.trace with
  | None -> ()
  | Some emit -> emit (Obs.Event.Evict { page = victim.key })

let get_frame t key =
  match Hashtbl.find_opt t.table key with
  | Some f ->
      t.hits <- t.hits + 1;
      touch t f;
      f
  | None ->
      t.misses <- t.misses + 1;
      if Hashtbl.length t.table >= t.capacity then evict_one t;
      let f = { key; value = t.fetch key; dirty = false; pins = 0; prev = None; next = None } in
      Hashtbl.add t.table key f;
      push_front t f;
      f

let with_page t key ?(dirty = false) f =
  let frame = get_frame t key in
  frame.pins <- frame.pins + 1;
  if dirty then set_dirty t frame true;
  Fun.protect ~finally:(fun () -> frame.pins <- frame.pins - 1) (fun () -> f frame.value)

let mark_dirty t key =
  match Hashtbl.find_opt t.table key with
  | Some f -> set_dirty t f true
  | None ->
      invalid_arg (Printf.sprintf "Buffer_pool.mark_dirty: page %d is not cached" key)

let clean t key =
  match Hashtbl.find_opt t.table key with Some f -> set_dirty t f false | None -> ()

(* Insert an externally fetched value as a clean resident frame — the
   batched-prefetch entry point. A later [with_page] of the key is a hit
   and, crucially, does not call [fetch]. Counts as a miss (the value did
   come from below), keeping hit/miss totals comparable with a
   fetch-on-demand run. No-op when the key is already resident. *)
let preload t key value =
  if not (Hashtbl.mem t.table key) then begin
    t.misses <- t.misses + 1;
    if Hashtbl.length t.table >= t.capacity then evict_one t;
    let f = { key; value; dirty = false; pins = 0; prev = None; next = None } in
    Hashtbl.add t.table key f;
    push_front t f
  end

let contains t key = Hashtbl.mem t.table key

(* Bump a resident page to MRU without fetching — the prefetch path uses
   this so preloading a batch's missing pages cannot evict the batch's
   already-resident ones. *)
let promote t key =
  match Hashtbl.find_opt t.table key with Some f -> touch t f | None -> ()
let find t key = Option.map (fun f -> f.value) (Hashtbl.find_opt t.table key)

let is_dirty t key =
  match Hashtbl.find_opt t.table key with Some f -> f.dirty | None -> false

let capacity t = t.capacity
let cached t = Hashtbl.length t.table
let dirty_count t = t.dirty_frames

let flush_all t = Hashtbl.iter (fun _ f -> write_back_frame t f) t.table

let drop_all t =
  Hashtbl.iter
    (fun _ f -> if f.pins > 0 then failwith "Buffer_pool.drop_all: frame pinned")
    t.table;
  flush_all t;
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None

let iter f t = Hashtbl.iter (fun key fr -> f key fr.value ~dirty:fr.dirty) t.table

let stats t =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; dirty_write_backs = t.dirty_write_backs }

module Stats = struct
  type t = stats

  let zero = { hits = 0; misses = 0; evictions = 0; dirty_write_backs = 0 }

  let add (a : t) (b : t) : t =
    {
      hits = a.hits + b.hits;
      misses = a.misses + b.misses;
      evictions = a.evictions + b.evictions;
      dirty_write_backs = a.dirty_write_backs + b.dirty_write_backs;
    }

  let diff (a : t) (b : t) : t =
    {
      hits = a.hits - b.hits;
      misses = a.misses - b.misses;
      evictions = a.evictions - b.evictions;
      dirty_write_backs = a.dirty_write_backs - b.dirty_write_backs;
    }

  let pp ppf (t : t) =
    Format.fprintf ppf "hits=%d misses=%d evictions=%d dirty_write_backs=%d" t.hits
      t.misses t.evictions t.dirty_write_backs

  let to_json (t : t) =
    Ipl_util.Json.Obj
      [
        ("hits", Ipl_util.Json.Int t.hits);
        ("misses", Ipl_util.Json.Int t.misses);
        ("evictions", Ipl_util.Json.Int t.evictions);
        ("dirty_write_backs", Ipl_util.Json.Int t.dirty_write_backs);
      ]
end
