module Trace = Reftrace.Trace

type params = {
  eu_size : int;
  page_size : int;
  sector_size : int;
  log_region : int;
  fill_policy : [ `Bytes | `Count of int ];
  flush_empty_on_evict : bool;
}

(* The paper's 128 KB / 8 KB / 512 B geometry, taken from the same config
   modules the storage manager runs on so a chip-config change moves the
   simulator with it. *)
let default_params =
  let fc = Flash_sim.Flash_config.default () in
  let ic = Ipl_core.Ipl_config.default in
  {
    eu_size = fc.Flash_sim.Flash_config.block_size;
    page_size = ic.Ipl_core.Ipl_config.page_size;
    sector_size = fc.Flash_sim.Flash_config.sector_size;
    log_region = ic.Ipl_core.Ipl_config.log_region_bytes;
    fill_policy = `Bytes;
    flush_empty_on_evict = false;
  }

type result = {
  params : params;
  log_records : int;
  page_write_events : int;
  sector_writes : int;
  merges : int;
  db_pages : int;
  erase_units : int;
}

let pages_per_eu p = (p.eu_size - p.log_region) / p.page_size
let log_sectors_per_eu p = p.log_region / p.sector_size

(* Usable payload of a flash log sector (the storage manager's sector
   serialisation spends 8 bytes on a header (counts + CRC-32)). *)
let sector_header_size = 8
let sector_payload p = p.sector_size - sector_header_size

let validate p =
  let check cond msg = if not cond then invalid_arg ("Ipl_simulator: " ^ msg) in
  check (p.log_region > 0 && p.log_region < p.eu_size) "log region must fit the erase unit";
  check (p.log_region mod p.sector_size = 0) "log region must be sectors";
  check ((p.eu_size - p.log_region) mod p.page_size = 0) "data region must be pages";
  check (pages_per_eu p >= 1) "need at least one data page per erase unit"

let run ?(params = default_params) trace =
  validate params;
  let p = params in
  let db_pages = Trace.db_pages trace in
  let ppe = pages_per_eu p in
  let tau_e = log_sectors_per_eu p in
  let erase_units = (db_pages + ppe - 1) / ppe in
  (* Per-page in-memory log sector state; per-erase-unit consumed log
     sectors. *)
  let pending_bytes = Array.make db_pages 0 in
  let pending_count = Array.make db_pages 0 in
  let eu_sectors = Array.make erase_units 0 in
  let sector_writes = ref 0 and merges = ref 0 in
  let log_records = ref 0 and page_write_events = ref 0 in
  let sector_write page =
    (* Algorithm 2's SectorWrite handler: consume a log sector in the
       page's erase unit; merge when the region is exhausted. *)
    let eid = page / ppe in
    if eu_sectors.(eid) >= tau_e then begin
      incr merges;
      eu_sectors.(eid) <- 0
    end;
    eu_sectors.(eid) <- eu_sectors.(eid) + 1;
    incr sector_writes
  in
  let flush page =
    if pending_count.(page) > 0 || p.flush_empty_on_evict then sector_write page;
    pending_bytes.(page) <- 0;
    pending_count.(page) <- 0
  in
  Trace.iter
    (fun ev ->
      match ev with
      | Trace.Log { page; length; _ } ->
          incr log_records;
          if page < db_pages then begin
            (match p.fill_policy with
            | `Bytes ->
                if pending_bytes.(page) + length > sector_payload p then flush page;
                pending_bytes.(page) <- pending_bytes.(page) + length;
                pending_count.(page) <- pending_count.(page) + 1
            | `Count tau_s ->
                if pending_count.(page) >= tau_s then flush page;
                pending_count.(page) <- pending_count.(page) + 1;
                pending_bytes.(page) <- pending_bytes.(page) + length)
          end
      | Trace.Page_write { page } ->
          incr page_write_events;
          if page < db_pages then flush page)
    trace;
  {
    params = p;
    log_records = !log_records;
    page_write_events = !page_write_events;
    sector_writes = !sector_writes;
    merges = !merges;
    db_pages;
    erase_units;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "log_region=%dKB logs=%d page_writes=%d sector_writes=%d merges=%d (db %d pages / %d EUs)"
    (r.params.log_region / 1024) r.log_records r.page_write_events r.sector_writes r.merges
    r.db_pages r.erase_units
