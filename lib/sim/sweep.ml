type point = {
  log_region : int;
  result : Ipl_simulator.result;
  t_ipl : float;
  db_size : int;
}

(* 8KB..64KB in one-log-region steps (Figure 5's x-axis). *)
let region_step = Ipl_core.Ipl_config.default.Ipl_core.Ipl_config.log_region_bytes
let default_regions = List.init 8 (fun i -> (i + 1) * region_step)

let log_region_sweep ?model ?(regions = default_regions) trace =
  List.map
    (fun log_region ->
      let params = { Ipl_simulator.default_params with Ipl_simulator.log_region } in
      let result = Ipl_simulator.run ~params trace in
      let t_ipl =
        Cost_model.t_ipl ?model ~sector_writes:result.Ipl_simulator.sector_writes
          ~merges:result.Ipl_simulator.merges ()
      in
      let db_size =
        Cost_model.db_size_bytes
          ~db_pages:result.Ipl_simulator.db_pages
          ~page_size:params.Ipl_simulator.page_size ~eu_size:params.Ipl_simulator.eu_size
          ~log_region
      in
      { log_region; result; t_ipl; db_size })
    regions

type buffer_point = {
  label : string;
  result : Ipl_simulator.result;
  t_ipl : float;
  t_conv_by_alpha : (float * float) list;
}

let buffer_series ?model ?(log_region = region_step) ?(alphas = [ 0.9; 0.5 ]) traces =
  List.map
    (fun (label, trace) ->
      let params = { Ipl_simulator.default_params with Ipl_simulator.log_region } in
      let result = Ipl_simulator.run ~params trace in
      let t_ipl =
        Cost_model.t_ipl ?model ~sector_writes:result.Ipl_simulator.sector_writes
          ~merges:result.Ipl_simulator.merges ()
      in
      let t_conv_by_alpha =
        List.map
          (fun alpha ->
            ( alpha,
              Cost_model.t_conv ?model ~page_writes:result.Ipl_simulator.page_write_events
                ~alpha () ))
          alphas
      in
      { label; result; t_ipl; t_conv_by_alpha })
    traces
