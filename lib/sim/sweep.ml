type point = {
  log_region : int;
  result : Ipl_simulator.result;
  t_ipl : float;
  db_size : int;
}

(* 8KB..64KB in one-log-region steps (Figure 5's x-axis). *)
let region_step = Ipl_core.Ipl_config.default.Ipl_core.Ipl_config.log_region_bytes
let default_regions = List.init 8 (fun i -> (i + 1) * region_step)

let log_region_sweep ?model ?(regions = default_regions) trace =
  List.map
    (fun log_region ->
      let params = { Ipl_simulator.default_params with Ipl_simulator.log_region } in
      let result = Ipl_simulator.run ~params trace in
      let t_ipl =
        Cost_model.t_ipl ?model ~sector_writes:result.Ipl_simulator.sector_writes
          ~merges:result.Ipl_simulator.merges ()
      in
      let db_size =
        Cost_model.db_size_bytes
          ~db_pages:result.Ipl_simulator.db_pages
          ~page_size:params.Ipl_simulator.page_size ~eu_size:params.Ipl_simulator.eu_size
          ~log_region
      in
      { log_region; result; t_ipl; db_size })
    regions

type buffer_point = {
  label : string;
  result : Ipl_simulator.result;
  t_ipl : float;
  t_conv_by_alpha : (float * float) list;
}

let buffer_series ?model ?(log_region = region_step) ?(alphas = [ 0.9; 0.5 ]) traces =
  List.map
    (fun (label, trace) ->
      let params = { Ipl_simulator.default_params with Ipl_simulator.log_region } in
      let result = Ipl_simulator.run ~params trace in
      let t_ipl =
        Cost_model.t_ipl ?model ~sector_writes:result.Ipl_simulator.sector_writes
          ~merges:result.Ipl_simulator.merges ()
      in
      let t_conv_by_alpha =
        List.map
          (fun alpha ->
            ( alpha,
              Cost_model.t_conv ?model ~page_writes:result.Ipl_simulator.page_write_events
                ~alpha () ))
          alphas
      in
      { label; result; t_ipl; t_conv_by_alpha })
    traces

(* ------------------------------------------------------------------ *)
(* Channel-scaling sweep (multi-channel device, EXPERIMENTS E11)       *)

type channel_point = {
  channels : int;
  elapsed_s : float;  (* simulated device makespan of the IPL run *)
  speedup : float;  (* vs the first (1-channel) point *)
  logical_digest : string;
  class_latency : (string * (float * float)) list;  (* class -> p50_s, p99_s *)
}

let default_channel_counts = [ 1; 2; 4; 8 ]

(* [run ~channels] produces a BENCH_ipl.json-shaped document (the sweep
   takes the runner as an argument because the workload library sits
   above this one in the dependency order). *)
let channel_sweep ?(channel_counts = default_channel_counts) ~run () =
  let module Json = Ipl_util.Json in
  let member path json =
    List.fold_left
      (fun acc key -> match acc with Some j -> Json.member key j | None -> None)
      (Some json) path
  in
  let flt path json = Option.bind (member path json) Json.to_float in
  let points =
    List.map
      (fun channels ->
        let json = run ~channels in
        let elapsed_s =
          Option.value ~default:0.0 (flt [ "device"; "elapsed_s" ] json)
        in
        let logical_digest =
          match member [ "logical_digest" ] json with
          | Some (Json.String s) -> s
          | _ -> ""
        in
        let class_latency =
          List.filter_map
            (fun cls ->
              let name = Device.Flash_device.class_name cls in
              match
                ( flt [ "device"; "op_class_latency"; name; "p50_s" ] json,
                  flt [ "device"; "op_class_latency"; name; "p99_s" ] json )
              with
              | Some p50, Some p99 -> Some (name, (p50, p99))
              | _ -> None)
            Device.Flash_device.all_classes
        in
        (channels, elapsed_s, logical_digest, class_latency))
      channel_counts
  in
  let base =
    match points with (_, e, _, _) :: _ -> e | [] -> invalid_arg "channel_sweep: no counts"
  in
  List.map
    (fun (channels, elapsed_s, logical_digest, class_latency) ->
      let speedup = if elapsed_s > 0.0 then base /. elapsed_s else 0.0 in
      { channels; elapsed_s; speedup; logical_digest; class_latency })
    points
