(** Parameter sweeps for the simulation study (Figures 5, 6 and 7). *)

type point = {
  log_region : int;  (** bytes *)
  result : Ipl_simulator.result;
  t_ipl : float;  (** estimated write time, seconds *)
  db_size : int;  (** flash footprint, bytes *)
}

val log_region_sweep :
  ?model:Cost_model.t -> ?regions:int list -> Reftrace.Trace.t -> point list
(** Run the simulator over a set of log-region sizes (default: the paper's
    8 KB to 64 KB in 8 KB steps). *)

type buffer_point = {
  label : string;  (** e.g. "20MB" *)
  result : Ipl_simulator.result;
  t_ipl : float;
  t_conv_by_alpha : (float * float) list;  (** (alpha, estimated seconds) *)
}

val buffer_series :
  ?model:Cost_model.t ->
  ?log_region:int ->
  ?alphas:float list ->
  (string * Reftrace.Trace.t) list ->
  buffer_point list
(** Figure 7: one trace per buffer-pool size; IPL estimated write time
    against the conventional server's [t_conv] for each alpha (the paper
    uses 0.9 and 0.5). *)
