(** Parameter sweeps for the simulation study (Figures 5, 6 and 7). *)

type point = {
  log_region : int;  (** bytes *)
  result : Ipl_simulator.result;
  t_ipl : float;  (** estimated write time, seconds *)
  db_size : int;  (** flash footprint, bytes *)
}

val log_region_sweep :
  ?model:Cost_model.t -> ?regions:int list -> Reftrace.Trace.t -> point list
(** Run the simulator over a set of log-region sizes (default: the paper's
    8 KB to 64 KB in 8 KB steps). *)

type buffer_point = {
  label : string;  (** e.g. "20MB" *)
  result : Ipl_simulator.result;
  t_ipl : float;
  t_conv_by_alpha : (float * float) list;  (** (alpha, estimated seconds) *)
}

val buffer_series :
  ?model:Cost_model.t ->
  ?log_region:int ->
  ?alphas:float list ->
  (string * Reftrace.Trace.t) list ->
  buffer_point list
(** Figure 7: one trace per buffer-pool size; IPL estimated write time
    against the conventional server's [t_conv] for each alpha (the paper
    uses 0.9 and 0.5). *)

type channel_point = {
  channels : int;
  elapsed_s : float;  (** simulated device makespan of the IPL engine run *)
  speedup : float;  (** makespan of the first point / this point's *)
  logical_digest : string;
      (** CRC-32 chain over the run's query results — must be identical
          at every channel count *)
  class_latency : (string * (float * float)) list;
      (** per op class: (p50, p99) submit-to-completion seconds *)
}

val channel_sweep :
  ?channel_counts:int list ->
  run:(channels:int -> Ipl_util.Json.t) ->
  unit ->
  channel_point list
(** Run a benchmark producing a BENCH_ipl.json-shaped document (e.g.
    {!Workload.Obs_bench} — passed as a function since the workload
    library sits above this one) at each channel count (default 1, 2, 4,
    8) and report the simulated makespan, the speedup over the first
    point and per-op-class latency quantiles — the channel-scaling
    experiment (EXPERIMENTS E11). The logical digest is carried so
    callers can assert geometry-independence of the query results. *)
