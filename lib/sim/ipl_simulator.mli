(** Event-driven IPL simulator — a faithful re-implementation of the
    paper's Algorithm 2.

    The simulator consumes a TPC-C-style update trace and counts, for a
    given erase-unit log-region size, how many flash log-sector writes and
    how many erase-unit merges the IPL buffer and storage managers would
    perform. Combined with {!Cost_model.t_ipl} this reproduces Figures 5,
    6 and 7. *)

type params = {
  eu_size : int;  (** 128 KB *)
  page_size : int;  (** 8 KB *)
  sector_size : int;  (** 512 B *)
  log_region : int;  (** bytes of each erase unit devoted to log sectors *)
  fill_policy : [ `Bytes | `Count of int ];
      (** [`Bytes]: an in-memory log sector fills when the encoded records
          exceed one flash sector (the real engine's behaviour).
          [`Count tau_s]: the paper's pseudo-code, which flushes after a
          fixed number of records. *)
  flush_empty_on_evict : bool;
      (** Algorithm 2 emits a sector write for every physical-page-write
          trace record even if no log records are pending; the default
          [false] suppresses those empty flushes. *)
}

val default_params : params
(** 128 KB / 8 KB / 512 B geometry, 8 KB log region, byte-accurate fill,
    no empty flushes. *)

type result = {
  params : params;
  log_records : int;
  page_write_events : int;
  sector_writes : int;  (** total log sectors flushed to flash *)
  merges : int;
  db_pages : int;
  erase_units : int;  (** erase units the database occupies *)
}

val run : ?params:params -> Reftrace.Trace.t -> result

val pages_per_eu : params -> int
val log_sectors_per_eu : params -> int

val pp_result : Format.formatter -> result -> unit
