(** The write-time estimation formulas of Section 4.2.3.

    t_IPL  = sector_writes * 200 us + merges * 20 ms
    t_Conv = alpha * page_writes * 20 ms

    where 200 us is the flash sector-program time (Table 1), 20 ms is the
    cost of copying-and-erasing one 128 KB erase unit, and alpha is the
    probability that a conventional server's page write causes its erase
    unit to be copied and erased. *)

type t = {
  sector_write : float;  (** seconds per flash log-sector write *)
  merge : float;  (** seconds per erase-unit merge *)
}

val default : t
(** 200 us and 20 ms, as in the paper. *)

val of_flash : Flash_sim.Flash_config.t -> t
(** Derive the same quantities from a chip's timing parameters: a merge
    reads and re-programs a whole erase unit and erases the old one. *)

val t_ipl : ?model:t -> sector_writes:int -> merges:int -> unit -> float
val t_conv : ?model:t -> page_writes:int -> alpha:float -> unit -> float

val db_size_bytes : db_pages:int -> page_size:int -> eu_size:int -> log_region:int -> int
(** Flash footprint of a database under IPL (Figure 6(b)): the data pages
    spread over erase units that each sacrifice [log_region] bytes. *)
