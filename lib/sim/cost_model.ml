module FConfig = Flash_sim.Flash_config

type t = { sector_write : float; merge : float }

let default = { sector_write = 200e-6; merge = 20e-3 }

let of_flash (c : FConfig.t) =
  let pages = FConfig.pages_per_block c in
  {
    sector_write = c.FConfig.t_write_page;
    merge =
      (float_of_int pages *. (c.FConfig.t_read_page +. c.FConfig.t_write_page))
      +. c.FConfig.t_erase_block;
  }

let t_ipl ?(model = default) ~sector_writes ~merges () =
  (float_of_int sector_writes *. model.sector_write) +. (float_of_int merges *. model.merge)

let t_conv ?(model = default) ~page_writes ~alpha () =
  alpha *. float_of_int page_writes *. model.merge

let db_size_bytes ~db_pages ~page_size ~eu_size ~log_region =
  if log_region >= eu_size then invalid_arg "Cost_model.db_size_bytes: log region too large";
  let pages_per_eu = (eu_size - log_region) / page_size in
  if pages_per_eu <= 0 then invalid_arg "Cost_model.db_size_bytes: no data pages per erase unit";
  let eus = (db_pages + pages_per_eu - 1) / pages_per_eu in
  eus * eu_size
