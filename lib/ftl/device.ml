type t = {
  name : string;
  page_size : int;
  num_pages : int;
  read_page : int -> unit;
  write_page : int -> unit;
  flush : unit -> unit;
  elapsed : unit -> float;
}

let check_page t p =
  if p < 0 || p >= t.num_pages then invalid_arg (t.name ^ ": page out of range")

let of_disk disk ~page_size ~num_pages =
  let rec t =
    {
      name = "disk";
      page_size;
      num_pages;
      read_page =
        (fun p ->
          check_page t p;
          Disk_sim.Disk.read disk ~offset:(p * page_size) ~bytes:page_size);
      write_page =
        (fun p ->
          check_page t p;
          Disk_sim.Disk.write disk ~offset:(p * page_size) ~bytes:page_size);
      flush = (fun () -> ());
      elapsed = (fun () -> Disk_sim.Disk.elapsed disk);
    }
  in
  t

let null ~page_size ~num_pages =
  let rec t =
    {
      name = "null";
      page_size;
      num_pages;
      read_page = (fun p -> check_page t p);
      write_page = (fun p -> check_page t p);
      flush = (fun () -> ());
      elapsed = (fun () -> 0.0);
    }
  in
  t

let read_range t ~first ~count =
  for p = first to first + count - 1 do
    t.read_page p
  done
