(** A disk-like block device exposing fixed-size logical pages.

    This is the interface a {e conventional} database server sees: the
    paper's Section 2 argument is that running an unmodified page-writing
    server through such a device (disk, or flash behind an FTL) leaves
    performance on the table, which IPL then recovers by talking to flash
    natively. Devices here are timing models: they charge simulated time
    and count operations but do not carry payload data. *)

type t = {
  name : string;
  page_size : int;
  num_pages : int;
  read_page : int -> unit;  (** charge a read of one logical page *)
  write_page : int -> unit;  (** charge a write of one logical page *)
  flush : unit -> unit;  (** drain any write-back caching *)
  elapsed : unit -> float;  (** simulated seconds so far *)
}

val of_disk : Disk_sim.Disk.t -> page_size:int -> num_pages:int -> t
(** Pages laid out contiguously from byte offset 0 of the disk. *)

val null : page_size:int -> num_pages:int -> t
(** A free device: every operation succeeds instantly. Used when generating
    logical traces where only the reference stream matters. *)

val read_range : t -> first:int -> count:int -> unit
(** Convenience: read [count] consecutive pages. *)
