module Chip = Flash_sim.Flash_chip
module Config = Flash_sim.Flash_config

type config = {
  dram_segments : int;
  segment_blocks : int;
  channel_ways : int;
  pipeline_depth : int;
  host_read_overhead : float;
  host_write_overhead : float;
  host_rate : float;
}

let default_config =
  {
    dram_segments = 16;
    segment_blocks = 8;
    channel_ways = 4;
    pipeline_depth = 8;
    host_read_overhead = 20e-6;
    host_write_overhead = 200e-6;
    host_rate = 100.0e6;
  }

type stats = {
  host_reads : int;
  host_writes : int;
  dram_read_hits : int;
  segment_evictions : int;
  block_rmws : int;
  copyback_page_reads : int;
}

type segment = { dirty : bool array; mutable last_use : int }

type t = {
  config : config;
  chip : Chip.t;
  page_size : int;
  pages_per_block : int;
  num_logical_blocks : int;
  map : int array;  (* logical block -> physical block *)
  spares : int Queue.t;
  live : Bytes.t;  (* one byte per logical page *)
  segments : (int, segment) Hashtbl.t;
  scratch : Bytes.t;  (* page-sized dummy payload *)
  mutable tick : int;
  mutable device_time : float;
  mutable host_time : float;
  mutable host_reads : int;
  mutable host_writes : int;
  mutable dram_read_hits : int;
  mutable segment_evictions : int;
  mutable block_rmws : int;
  mutable copyback_page_reads : int;
}

let create ?(config = default_config) chip ~page_size =
  let c = Chip.config chip in
  if c.Config.block_size mod page_size <> 0 then
    invalid_arg "Block_ftl: page size must divide the erase-unit size";
  if page_size mod c.Config.sector_size <> 0 then
    invalid_arg "Block_ftl: page size must be a multiple of the sector size";
  let spare_count = config.segment_blocks in
  if c.Config.num_blocks <= spare_count then
    invalid_arg "Block_ftl: chip too small to leave spare blocks";
  let num_logical_blocks = c.Config.num_blocks - spare_count in
  let spares = Queue.create () in
  for b = num_logical_blocks to c.Config.num_blocks - 1 do
    Queue.add b spares
  done;
  let pages_per_block = c.Config.block_size / page_size in
  {
    config;
    chip;
    page_size;
    pages_per_block;
    num_logical_blocks;
    map = Array.init num_logical_blocks Fun.id;
    spares;
    live = Bytes.make (num_logical_blocks * pages_per_block) '\000';
    segments = Hashtbl.create 64;
    scratch = Bytes.make page_size '\xff';
    tick = 0;
    device_time = 0.0;
    host_time = 0.0;
    host_reads = 0;
    host_writes = 0;
    dram_read_hits = 0;
    segment_evictions = 0;
    block_rmws = 0;
    copyback_page_reads = 0;
  }

let chip t = t.chip
let num_pages t = t.num_logical_blocks * t.pages_per_block
let pages_per_segment t = t.config.segment_blocks * t.pages_per_block
let elapsed t = t.device_time +. t.host_time

let phys_pages_per_db_page t =
  let c = Chip.config t.chip in
  (t.page_size + c.Config.phys_page_size - 1) / c.Config.phys_page_size

let is_live t p = Bytes.get t.live p = '\001'
let set_live t p = Bytes.set t.live p '\001'

(* Read-merge-write one logical block into a spare physical block.
   [dirty_in_block i] tells whether logical page [i] of the block has fresh
   content sitting in DRAM (no copy-back read needed for it).
   Returns (phys_pages_read, phys_pages_written). *)
let rmw_block t ~lblock ~dirty_in_block =
  let c = Chip.config t.chip in
  let old_phys = t.map.(lblock) in
  let spare = Queue.take t.spares in
  let sectors_per_db_page = t.page_size / c.Config.sector_size in
  let ppdb = phys_pages_per_db_page t in
  let reads = ref 0 and writes = ref 0 in
  let old_base = Chip.sector_of_block t.chip old_phys in
  let new_base = Chip.sector_of_block t.chip spare in
  for i = 0 to t.pages_per_block - 1 do
    let p = (lblock * t.pages_per_block) + i in
    if is_live t p then begin
      if not (dirty_in_block i) then begin
        let data =
          Chip.read_sectors t.chip
            ~sector:(old_base + (i * sectors_per_db_page))
            ~count:sectors_per_db_page
        in
        assert (Bytes.length data = t.page_size);
        reads := !reads + ppdb
      end;
      Chip.write_sectors t.chip ~sector:(new_base + (i * sectors_per_db_page)) t.scratch;
      writes := !writes + ppdb
    end
  done;
  Chip.erase_block t.chip old_phys;
  Queue.add old_phys t.spares;
  t.map.(lblock) <- spare;
  t.block_rmws <- t.block_rmws + 1;
  t.copyback_page_reads <- t.copyback_page_reads + !reads;
  (!reads, !writes)

(* Flush a segment: rewrite each dirty erase unit. Contiguous units flushed
   in one batch are pipelined: transfer time divides by
   channel_ways * min(k, pipeline_depth); the k erases overlap up to
   [pipeline_depth] ways. *)
let flush_segment t seg_id seg =
  let ppb = t.pages_per_block in
  let first_block = seg_id * t.config.segment_blocks in
  let dirty_blocks = ref [] in
  for b = 0 to t.config.segment_blocks - 1 do
    let lblock = first_block + b in
    if lblock < t.num_logical_blocks then begin
      let any = ref false in
      for i = 0 to ppb - 1 do
        if seg.dirty.((b * ppb) + i) then any := true
      done;
      if !any then dirty_blocks := (lblock, b) :: !dirty_blocks
    end
  done;
  let k = List.length !dirty_blocks in
  if k > 0 then begin
    let c = Chip.config t.chip in
    let total_reads = ref 0 and total_writes = ref 0 in
    List.iter
      (fun (lblock, b) ->
        let dirty_in_block i = seg.dirty.((b * ppb) + i) in
        let r, w = rmw_block t ~lblock ~dirty_in_block in
        total_reads := !total_reads + r;
        total_writes := !total_writes + w)
      !dirty_blocks;
    let batch = float_of_int (t.config.channel_ways * min k t.config.pipeline_depth) in
    let erase_ways = float_of_int (min k t.config.pipeline_depth) in
    t.device_time <-
      t.device_time
      +. ((float_of_int !total_reads *. c.Config.t_read_page) /. batch)
      +. ((float_of_int !total_writes *. c.Config.t_write_page) /. batch)
      +. (float_of_int k *. c.Config.t_erase_block /. erase_ways);
    t.segment_evictions <- t.segment_evictions + 1
  end;
  Hashtbl.remove t.segments seg_id

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun id seg acc ->
        match acc with
        | Some (_, best) when best.last_use <= seg.last_use -> acc
        | _ -> Some (id, seg))
      t.segments None
  in
  match victim with
  | Some (id, seg) -> flush_segment t id seg
  | None -> ()

let find_segment t seg_id =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.segments seg_id with
  | Some seg ->
      seg.last_use <- t.tick;
      seg
  | None ->
      if Hashtbl.length t.segments >= t.config.dram_segments then evict_lru t;
      let seg = { dirty = Array.make (pages_per_segment t) false; last_use = t.tick } in
      Hashtbl.add t.segments seg_id seg;
      seg

let write_page t p =
  if p < 0 || p >= num_pages t then invalid_arg "Block_ftl: page out of range";
  t.host_time <-
    t.host_time +. t.config.host_write_overhead
    +. (float_of_int t.page_size /. t.config.host_rate);
  t.host_writes <- t.host_writes + 1;
  let pps = pages_per_segment t in
  let seg = find_segment t (p / pps) in
  seg.dirty.(p mod pps) <- true;
  set_live t p

let read_page t p =
  if p < 0 || p >= num_pages t then invalid_arg "Block_ftl: page out of range";
  t.host_time <-
    t.host_time +. t.config.host_read_overhead
    +. (float_of_int t.page_size /. t.config.host_rate);
  t.host_reads <- t.host_reads + 1;
  let pps = pages_per_segment t in
  let in_dram =
    match Hashtbl.find_opt t.segments (p / pps) with
    | Some seg -> seg.dirty.(p mod pps)
    | None -> false
  in
  if in_dram then t.dram_read_hits <- t.dram_read_hits + 1
  else begin
    let c = Chip.config t.chip in
    let lblock = p / t.pages_per_block in
    let base = Chip.sector_of_block t.chip t.map.(lblock) in
    let sectors_per_db_page = t.page_size / c.Config.sector_size in
    let data =
      Chip.read_sectors t.chip
        ~sector:(base + (p mod t.pages_per_block * sectors_per_db_page))
        ~count:sectors_per_db_page
    in
    assert (Bytes.length data = t.page_size);
    t.device_time <-
      t.device_time
      +. (float_of_int (phys_pages_per_db_page t)
         *. c.Config.t_read_page
         /. float_of_int t.config.channel_ways)
  end

let flush t =
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.segments [] in
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.segments id with
      | Some seg -> flush_segment t id seg
      | None -> ())
    ids

let format t =
  Bytes.fill t.live 0 (Bytes.length t.live) '\001';
  Hashtbl.reset t.segments;
  Chip.reset_stats t.chip;
  t.device_time <- 0.0;
  t.host_time <- 0.0;
  t.host_reads <- 0;
  t.host_writes <- 0;
  t.dram_read_hits <- 0;
  t.segment_evictions <- 0;
  t.block_rmws <- 0;
  t.copyback_page_reads <- 0

let stats t =
  {
    host_reads = t.host_reads;
    host_writes = t.host_writes;
    dram_read_hits = t.dram_read_hits;
    segment_evictions = t.segment_evictions;
    block_rmws = t.block_rmws;
    copyback_page_reads = t.copyback_page_reads;
  }

let device t : Device.t =
  {
    Device.name = "flash-ssd";
    page_size = t.page_size;
    num_pages = num_pages t;
    read_page = (fun p -> read_page t p);
    write_page = (fun p -> write_page t p);
    flush = (fun () -> flush t);
    elapsed = (fun () -> elapsed t);
  }
