(** DRAM-buffered block-mapping FTL, modelling the M-Tron MSD-P35 SSD the
    paper measured (Section 4.1).

    The device exposes fixed-size logical pages (the DBMS page, 8 KB in the
    paper). A DRAM write buffer of [dram_segments] segments, each covering
    [segment_blocks] {e contiguous, aligned} erase units, absorbs writes;
    a segment is flushed when evicted (LRU) or on [flush]. Flushing a
    segment rewrites each dirty erase unit: the still-clean pages of the
    unit are copied back, the unit is erased (via a spare-block swap), and
    the merged content is programmed. Contiguous units flushed in one batch
    are pipelined across channels/planes, which is what makes bulk
    sequential writes (paper's Q4) and modest strides (Q5) so much cheaper
    than scattered writes (Q6). *)

type config = {
  dram_segments : int;  (** 16 in the MSD-P35 *)
  segment_blocks : int;  (** 8 erase units = 1 MB per segment *)
  channel_ways : int;  (** baseline device parallelism on any transfer *)
  pipeline_depth : int;
      (** extra pipelining factor across blocks flushed in one batch,
          capped at this many blocks *)
  host_read_overhead : float;  (** per host read request, seconds *)
  host_write_overhead : float;
  host_rate : float;  (** host interface bandwidth, bytes/s *)
}

val default_config : config

type stats = {
  host_reads : int;
  host_writes : int;
  dram_read_hits : int;
  segment_evictions : int;
  block_rmws : int;  (** erase-unit read-merge-write cycles *)
  copyback_page_reads : int;  (** physical pages copied back during RMW *)
}

type t

val create : ?config:config -> Flash_sim.Flash_chip.t -> page_size:int -> t
(** The chip must leave at least one block spare: the addressable logical
    space is [(num_blocks - spare) * block_size]. *)

val device : t -> Device.t
val stats : t -> stats
val chip : t -> Flash_sim.Flash_chip.t

val format : t -> unit
(** Mark every addressable logical page as live (as after bulk-loading a
    table) without charging time, and reset all statistics. *)

val elapsed : t -> float
(** Simulated device time (parallelism-adjusted) plus host transfer time.
    This is intentionally different from the chip's own [elapsed], which
    accounts every operation serially. *)
