(* The restart-time repair plan: one entry per erase unit whose log
   state is vouched for by the last fuzzy checkpoint. The entry splits
   the unit's log into the checkpointed prefix (still on flash, counted
   but unread) and the post-checkpoint delta (already decoded by the
   recovery scan). Repairing the unit reads the prefix sectors, splices
   the delta behind them and installs the result wherever the caller
   keeps warm log records; until then the table is the only memory of
   what restart still owes. *)

type 'r entry = {
  pre_in : int;  (* in-region log sectors durable at the checkpoint *)
  pre_over : int;  (* overflow sectors durable at the checkpoint *)
  delta_in : 'r list;  (* decoded records of post-checkpoint in-region sectors *)
  delta_over : 'r list;  (* decoded records of post-checkpoint overflow sectors *)
  pages : int list;  (* distinct pages the delta touches, for repair events *)
}

type 'r t = { table : (int, 'r entry) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let add t ~eu entry = Hashtbl.replace t.table eu entry
let find t ~eu = Hashtbl.find_opt t.table eu
let remove t ~eu = Hashtbl.remove t.table eu
let mem t ~eu = Hashtbl.mem t.table eu
let pending t = Hashtbl.length t.table

(* Any entry will do for the background drainer; the iteration order of
   a hash table is arbitrary but, for a fixed insertion history, fixed —
   the drain schedule stays deterministic across identical runs. *)
let choose t =
  let best = ref None in
  Hashtbl.iter
    (fun eu e ->
      match !best with Some (eu', _) when eu' <= eu -> () | _ -> best := Some (eu, e))
    t.table;
  !best

let iter t f = Hashtbl.iter (fun eu e -> f ~eu e) t.table
let clear t = Hashtbl.reset t.table
