(** Per-erase-unit repair plan for lazy (REDO-only) restart.

    Built by the checkpoint-bounded recovery scan: each entry records
    how much of an erase unit's in-page log the last fuzzy checkpoint
    vouches for (a durable prefix that need not be re-read to know the
    unit's record counts) plus the decoded records of the sectors
    written after the checkpoint. The storage layer repairs a unit on
    first touch — read the prefix, splice the delta behind it, warm the
    log-record cache — and removes the entry; a background drainer
    empties whatever reads never touch. Generic in the record type for
    the same reason {!Cache.Log_cache} is: this library sits below
    lib/core and cannot name its record type. *)

type 'r entry = {
  pre_in : int;  (** in-region log sectors durable at the checkpoint *)
  pre_over : int;  (** overflow sectors durable at the checkpoint *)
  delta_in : 'r list;  (** decoded post-checkpoint in-region records *)
  delta_over : 'r list;  (** decoded post-checkpoint overflow records *)
  pages : int list;  (** distinct pages the delta touches *)
}

type 'r t

val create : unit -> 'r t

val add : 'r t -> eu:int -> 'r entry -> unit
(** Register (or replace) the plan for one erase unit. *)

val find : 'r t -> eu:int -> 'r entry option
val remove : 'r t -> eu:int -> unit
val mem : 'r t -> eu:int -> bool

val pending : 'r t -> int
(** Erase units still awaiting repair. *)

val choose : 'r t -> (int * 'r entry) option
(** Lowest-numbered pending unit, for the background drainer —
    deterministic for a fixed table content. *)

val iter : 'r t -> (eu:int -> 'r entry -> unit) -> unit
val clear : 'r t -> unit
