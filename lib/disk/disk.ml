type stats = {
  reads : int;
  writes : int;
  sequential_requests : int;
  random_requests : int;
  bytes_read : int;
  bytes_written : int;
  elapsed : float;
}

type t = {
  config : Disk_config.t;
  mutable head : int;  (* byte position just past the last request *)
  mutable reads : int;
  mutable writes : int;
  mutable sequential_requests : int;
  mutable random_requests : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable elapsed : float;
}

let create ?(config = Disk_config.default) () =
  Disk_config.validate config;
  {
    config;
    head = 0;
    reads = 0;
    writes = 0;
    sequential_requests = 0;
    random_requests = 0;
    bytes_read = 0;
    bytes_written = 0;
    elapsed = 0.0;
  }

let config t = t.config

let access t ~offset ~bytes ~curve ~rate =
  if bytes <= 0 then invalid_arg "Disk: request size must be positive";
  if offset < 0 || offset + bytes > t.config.capacity then
    invalid_arg "Disk: request out of range";
  let distance = abs (offset - t.head) in
  if distance = 0 then t.sequential_requests <- t.sequential_requests + 1
  else t.random_requests <- t.random_requests + 1;
  let positioning = Disk_config.positioning curve distance in
  let transfer = float_of_int bytes /. rate in
  t.elapsed <- t.elapsed +. positioning +. transfer;
  t.head <- offset + bytes

let read t ~offset ~bytes =
  access t ~offset ~bytes ~curve:t.config.read_positioning ~rate:t.config.read_rate;
  t.reads <- t.reads + 1;
  t.bytes_read <- t.bytes_read + bytes

let write t ~offset ~bytes =
  access t ~offset ~bytes ~curve:t.config.write_positioning ~rate:t.config.write_rate;
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + bytes

let elapsed t = t.elapsed

let stats t =
  {
    reads = t.reads;
    writes = t.writes;
    sequential_requests = t.sequential_requests;
    random_requests = t.random_requests;
    bytes_read = t.bytes_read;
    bytes_written = t.bytes_written;
    elapsed = t.elapsed;
  }

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.sequential_requests <- 0;
  t.random_requests <- 0;
  t.bytes_read <- 0;
  t.bytes_written <- 0;
  t.elapsed <- 0.0
