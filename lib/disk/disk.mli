(** Magnetic-disk simulator (cost model).

    Tracks the head position and charges positioning + transfer time per
    request. Data contents are not stored: the disk is only ever used as a
    timing baseline in this reproduction. *)

type t

type stats = {
  reads : int;
  writes : int;
  sequential_requests : int;  (** requests that continued at the head *)
  random_requests : int;
  bytes_read : int;
  bytes_written : int;
  elapsed : float;
}

val create : ?config:Disk_config.t -> unit -> t
val config : t -> Disk_config.t

val read : t -> offset:int -> bytes:int -> unit
(** Charge a read of [bytes] at byte [offset]. *)

val write : t -> offset:int -> bytes:int -> unit

val elapsed : t -> float
val stats : t -> stats
val reset_stats : t -> unit
(** Resets counters and the clock; head position is kept. *)
