type curve = (int * float) array

type t = {
  capacity : int;
  read_rate : float;
  write_rate : float;
  read_positioning : curve;
  write_positioning : curve;
}

(* Calibration targets (Table 3 of the paper, 8 KB pages, 64 000-page table):
   - Q1 seq read 14.04 s        -> read_rate ~ 38 MB/s effective
   - Q2 random 128 KB chunks    -> ~12 ms positioning at large distance
   - Q3 stride 128 KB reads     -> ~2.5 ms positioning at 128 KB distance
   - Q4 seq write 34.03 s       -> write_rate ~ 15.7 MB/s effective
   - Q5 stride 128 KB writes    -> ~1.9 ms positioning
   - Q6 stride 1 MB writes      -> ~4.8 ms positioning *)
let mb = 1024 * 1024

let default =
  {
    capacity = 80 * 1024 * mb;
    read_rate = 38.0e6;
    write_rate = 15.7e6;
    read_positioning =
      [| (64 * 1024, 2.0e-3); (128 * 1024, 2.5e-3); (mb, 4.9e-3); (16 * mb, 9.0e-3); (256 * mb, 12.0e-3) |];
    write_positioning =
      [| (64 * 1024, 1.5e-3); (128 * 1024, 1.9e-3); (mb, 4.8e-3); (16 * mb, 9.5e-3); (256 * mb, 13.0e-3) |];
  }

let positioning curve distance =
  if distance <= 0 then 0.0
  else begin
    let n = Array.length curve in
    let d_first, t_first = curve.(0) in
    let d_last, t_last = curve.(n - 1) in
    if distance <= d_first then t_first
    else if distance >= d_last then t_last
    else begin
      (* Find the surrounding pair and interpolate in log(distance). *)
      let rec find i = if fst curve.(i + 1) >= distance then i else find (i + 1) in
      let i = find 0 in
      let d0, t0 = curve.(i) and d1, t1 = curve.(i + 1) in
      let frac =
        (log (float_of_int distance) -. log (float_of_int d0))
        /. (log (float_of_int d1) -. log (float_of_int d0))
      in
      t0 +. (frac *. (t1 -. t0))
    end
  end

let validate t =
  let check cond msg = if not cond then invalid_arg ("Disk_config: " ^ msg) in
  check (t.capacity > 0) "capacity must be positive";
  check (t.read_rate > 0.0 && t.write_rate > 0.0) "rates must be positive";
  let check_curve c =
    check (Array.length c > 0) "positioning curve must be non-empty";
    Array.iteri
      (fun i (d, s) ->
        check (d > 0 && s >= 0.0) "curve entries must be positive";
        if i > 0 then check (d > fst c.(i - 1)) "curve distances must increase")
      c
  in
  check_curve t.read_positioning;
  check_curve t.write_positioning
