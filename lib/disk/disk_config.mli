(** Parameters of the magnetic-disk cost model.

    The model follows the structure used by trace-driven disk simulators:
    a request that continues exactly where the head stopped pays transfer
    time only; any other request pays a positioning time (seek + rotational
    latency) taken from a piecewise-log-linear curve over the byte distance
    between the previous and the new position, plus transfer time.

    Defaults are calibrated against the paper's Seagate Barracuda 7200.7
    ST380011A measurements: 12.7 ms average random read of 2 KB and
    13.7 ms average random write (Table 1), and the Q1–Q6 query times of
    Table 3 (see EXPERIMENTS.md for the calibration). *)

type curve = (int * float) array
(** [(distance_bytes, positioning_seconds)] pairs, strictly increasing in
    distance. Positioning for other distances is interpolated linearly in
    [log distance]; distances beyond the last point use the last value. *)

type t = {
  capacity : int;  (** bytes *)
  read_rate : float;  (** sequential read bandwidth, bytes/s *)
  write_rate : float;  (** sequential write bandwidth, bytes/s *)
  read_positioning : curve;
  write_positioning : curve;
}

val default : t
(** Barracuda 7200.7-style 80 GB drive. *)

val positioning : curve -> int -> float
(** [positioning curve distance] interpolates the curve; distance 0 is
    free. *)

val validate : t -> unit
