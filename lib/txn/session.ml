module Engine = Ipl_core.Ipl_engine

type op =
  | Update of { page : int; slot : int; data : bytes }
  | Insert of { page : int; data : bytes }
  | Delete of { page : int; slot : int }

type plan = { ops : op list; aborting : bool; reads : (int * int) list }

type session_stats = {
  session : int;
  commits : int;
  sim_latencies : float list;
  host_latency_s : float;
}

type outcome = {
  committed : int;
  aborted : int;
  conflict_aborts : int;
  mvcc : Mvcc.stats;
  per_session : session_stats list;
}

(* One client session's position in its transaction stream. [Await_flush]
   parks the session between its commit and the group barrier that makes
   it durable — the wait that lets commits pile into one batch. *)
type state =
  | Idle
  | In_txn of { tx : Mvcc.txn; plan : plan; remaining : op list; conflicted : bool }
  | Await_flush of { seq : int; reads : (int * int) list }
  | Reading of (int * int) list
  | Finished

type session = {
  sid : int;
  mutable next_plan : int;
  mutable state : state;
  (* Commit latency, begin -> observed durable. The simulated side is a
     pure function of the schedule (the device clock only advances on
     flash operations); the host side is wall time and only ever feeds
     the machine-dependent report section. *)
  mutable begin_sim : float;
  mutable begin_host : float;
  mutable commits : int;
  mutable sim_latencies : float list;  (* newest first *)
  mutable host_latency_s : float;
}

let fail ctx = function
  | Ok v -> v
  | Error e -> failwith ("Session." ^ ctx ^ ": " ^ Mvcc.error_to_string e)

(* Treated like the serial benchmark loop treats its engine errors: a
   page-full insert or an update of a dead slot is part of the workload,
   not a failure. Conflicts doom the transaction and are handled at the
   end of its op list; anything engine-fatal escalates. *)
let tolerate ctx = function
  | Ok _
  | Error
      (Mvcc.Conflict _ | Mvcc.Doomed
      | Mvcc.Engine_error
          (Engine.Page_full | Engine.No_such_slot | Engine.Record_too_large)) ->
      ()
  | Error e -> failwith ("Session." ^ ctx ^ ": " ^ Mvcc.error_to_string e)

(* Deferred reads drain in chunks of this many: large enough to amortise
   a pool batch, small enough to bound the thunk backlog. *)
let defer_chunk = 128

let run ?(group_window = 0) ?(compact_every = 0) ?(note_read = fun _ -> ()) ?pool
    ~sessions ~plans engine =
  if sessions < 1 then invalid_arg "Session.run: sessions < 1";
  let window = if group_window > 0 then group_window else sessions in
  let m = Mvcc.create ~group_window:window engine in
  let committed = ref 0 and aborted = ref 0 and conflict_aborts = ref 0 in
  let finished_txns = ref 0 in
  let clients =
    Array.init sessions (fun sid ->
        {
          sid;
          next_plan = sid;
          state = Idle;
          begin_sim = 0.;
          begin_host = 0.;
          commits = 0;
          sim_latencies = [];
          host_latency_s = 0.;
        })
  in
  (* A transaction's post-commit reads run against the latest committed
     state, exactly where the serial loop reads after its commit. With a
     pool, the read's answer is still pinned at its schedule step (the
     engine read and chain-visibility snapshot happen here, on this
     domain) but the pure resolution is deferred; [note_read] then sees
     the values in defer order — the same order, and the same values,
     the serial path produces. *)
  let deferred : (unit -> bytes option) Queue.t = Queue.create () in
  let resolve_deferred () =
    if not (Queue.is_empty deferred) then begin
      let thunks = Array.of_seq (Queue.to_seq deferred) in
      Queue.clear deferred;
      let values =
        match pool with
        | Some p -> Par.Domain_pool.parallel_map p (fun f -> f ()) thunks
        | None -> Array.map (fun f -> f ()) thunks
      in
      Array.iter note_read values
    end
  in
  let do_read (page, slot) =
    match pool with
    | None -> note_read (fail "read" (Mvcc.read_committed m ~page ~slot))
    | Some _ ->
        Queue.add (fail "read" (Mvcc.read_committed_deferred m ~page ~slot)) deferred;
        if Queue.length deferred >= defer_chunk then resolve_deferred ()
  in
  let finish_txn () =
    incr finished_txns;
    if compact_every > 0 && !finished_txns mod compact_every = 0 then
      ignore (fail "compact" (Mvcc.compact m ~max_merges:1) : int)
  in
  (* Advance one session by one step. Returns [true] if the step made
     progress (a parked session waiting for the group barrier does not). *)
  let step s =
    match s.state with
    | Finished -> false
    | Idle ->
        if s.next_plan >= Array.length plans then begin
          s.state <- Finished;
          false
        end
        else begin
          let plan = plans.(s.next_plan) in
          s.next_plan <- s.next_plan + sessions;
          s.begin_sim <- Engine.elapsed engine;
          s.begin_host <- Ipl_util.Clock.now_s ();
          let tx = fail "begin" (Mvcc.begin_txn m) in
          s.state <- In_txn { tx; plan; remaining = plan.ops; conflicted = false };
          true
        end
    | In_txn { tx; plan; remaining = op :: rest; conflicted } ->
        let r =
          match op with
          | Update { page; slot; data } -> Mvcc.update m tx ~page ~slot data
          | Insert { page; data } -> Result.map ignore (Mvcc.insert m tx ~page data)
          | Delete { page; slot } -> Mvcc.delete m tx ~page ~slot
        in
        tolerate "op" r;
        let conflicted =
          conflicted
          || (match r with Error (Mvcc.Conflict _ | Mvcc.Doomed) -> true | _ -> false)
        in
        (* A doomed transaction cannot commit; skip the rest of its ops. *)
        let remaining = if conflicted then [] else rest in
        s.state <- In_txn { tx; plan; remaining; conflicted };
        true
    | In_txn { tx; plan; remaining = []; conflicted } ->
        (if conflicted then begin
           fail "abort" (Mvcc.abort m tx);
           incr conflict_aborts;
           s.state <- Reading plan.reads
         end
         else if plan.aborting then begin
           fail "abort" (Mvcc.abort m tx);
           incr aborted;
           s.state <- Reading plan.reads
         end
         else begin
           fail "commit" (Mvcc.commit m tx);
           incr committed;
           (* Resume once the group barrier has settled this commit. *)
           s.state <- Await_flush { seq = !committed; reads = plan.reads }
         end);
        true
    | Await_flush { seq; reads } ->
        if Mvcc.flushed_commits m >= seq then begin
          (* Begin -> durable, observed at the step where the session
             notices its batch settled — the latency a client of this
             group-commit scheduler actually experiences. *)
          s.commits <- s.commits + 1;
          s.sim_latencies <- (Engine.elapsed engine -. s.begin_sim) :: s.sim_latencies;
          s.host_latency_s <- s.host_latency_s +. (Ipl_util.Clock.now_s () -. s.begin_host);
          s.state <- Reading reads;
          true
        end
        else false
    | Reading (r :: rest) ->
        do_read r;
        s.state <- (match rest with [] -> Idle | _ -> Reading rest);
        if rest = [] then finish_txn ();
        true
    | Reading [] ->
        s.state <- Idle;
        finish_txn ();
        true
  in
  let all_done () = Array.for_all (fun s -> s.state = Finished) clients in
  while not (all_done ()) do
    let progressed = ref false in
    Array.iter (fun s -> if step s then progressed := true) clients;
    (* Every runnable session is parked at the barrier: the batch cannot
       grow any further this round, so settle it now even though the
       window isn't full. *)
    if (not !progressed) && not (all_done ()) then
      if Mvcc.pending m > 0 then fail "flush" (Mvcc.flush m)
      else
        (* Cannot happen: a non-finished session either progresses or
           waits on a pending commit. Guard against a scheduler bug
           turning into a spin. *)
        failwith "Session.run: deadlock with no pending commits"
  done;
  resolve_deferred ();
  fail "flush" (Mvcc.flush m);
  {
    committed = !committed;
    aborted = !aborted;
    conflict_aborts = !conflict_aborts;
    mvcc = Mvcc.stats m;
    per_session =
      Array.to_list
        (Array.map
           (fun s ->
             {
               session = s.sid;
               commits = s.commits;
               sim_latencies = List.rev s.sim_latencies;
               host_latency_s = s.host_latency_s;
             })
           clients);
  }
