module Engine = Ipl_core.Ipl_engine

type error =
  | Conflict of { page : int; slot : int }
  | Doomed
  | Engine_error of Engine.error

let error_to_string = function
  | Conflict { page; slot } ->
      Printf.sprintf "write-write conflict on page %d slot %d" page slot
  | Doomed -> "transaction doomed by an earlier conflict"
  | Engine_error e -> Engine.error_to_string e

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

(* One write of one record: the undo side of the eager-apply design. The
   engine already holds the AFTER image (writes are applied as they
   happen); the chain node remembers what the write replaced, so readers
   whose snapshot predates the write can reconstruct their version by
   walking befores newest-to-oldest. *)
type version = {
  writer : int;
  mutable commit_ts : int option;  (* None while the writer is active *)
  before : bytes option;  (* None: the slot was empty before this write *)
}

type txn = {
  id : int;
  etx : Engine.txn;
  snapshot : int;  (* highest commit_ts visible to this transaction *)
  mutable writes : (int * int) list;  (* slots with a chain node of ours *)
  mutable doomed : bool;
  mutable rolled_back : bool;  (* engine-side writes already undone *)
}

type stats = {
  commits : int;
  aborts : int;
  conflicts : int;
  barriers : int;
  batched_commits : int;
  max_batch : int;
  versions_created : int;
  versions_gced : int;
  versions_live : int;
}

type t = {
  engine : Engine.t;
  chains : (int * int, version list ref) Hashtbl.t;
  active : (int, txn) Hashtbl.t;
  group_window : int;
  mutable commit_ts : int;
  mutable next_id : int;
  mutable pending : int;  (* commits recorded but not yet durable *)
  mutable flushed : int;  (* commits made durable by a batch barrier *)
  mutable commits : int;
  mutable aborts : int;
  mutable conflicts : int;
  mutable barriers : int;
  mutable batched : int;
  mutable max_batch : int;
  mutable created : int;
  mutable gced : int;
}

let create ?(group_window = 1) engine =
  (* The MVCC layer owns the flush policy: park the engine's own commit
     batching where its counter never triggers, so the only durability
     barriers are the ones [flush] issues. *)
  Engine.set_group_commit engine max_int;
  {
    engine;
    chains = Hashtbl.create 1024;
    active = Hashtbl.create 64;
    group_window = max 1 group_window;
    commit_ts = 0;
    next_id = 0;
    pending = 0;
    flushed = 0;
    commits = 0;
    aborts = 0;
    conflicts = 0;
    barriers = 0;
    batched = 0;
    max_batch = 0;
    created = 0;
    gced = 0;
  }

let engine t = t.engine
let txn_id tx = tx.id
let pending t = t.pending
let flushed_commits t = t.flushed

let stats t =
  {
    commits = t.commits;
    aborts = t.aborts;
    conflicts = t.conflicts;
    barriers = t.barriers;
    batched_commits = t.batched;
    max_batch = t.max_batch;
    versions_created = t.created;
    versions_gced = t.gced;
    versions_live = Hashtbl.fold (fun _ c acc -> acc + List.length !c) t.chains 0;
  }

(* ---------------- version chains ---------------- *)

let chain t key =
  match Hashtbl.find_opt t.chains key with
  | Some c -> c
  | None ->
      let c = ref [] in
      Hashtbl.replace t.chains key c;
      c

let push_version t tx ~page ~slot before =
  let c = chain t (page, slot) in
  c := { writer = tx.id; commit_ts = None; before } :: !c;
  t.created <- t.created + 1;
  tx.writes <- (page, slot) :: tx.writes

(* First-updater-wins / first-committer-wins, checked eagerly: a slot
   whose newest version belongs to another live transaction, or was
   committed after our snapshot, cannot be written. The eager check also
   preserves the engine invariant that no two ACTIVE transactions touch
   the same record (its delta replay depends on it). *)
let write_conflict t tx ~page ~slot =
  match Hashtbl.find_opt t.chains (page, slot) with
  | None | Some { contents = [] } -> false
  | Some { contents = v :: _ } ->
      v.writer <> tx.id
      && (match v.commit_ts with None -> true | Some ts -> ts > tx.snapshot)

(* Undo a transaction's engine-side writes and pop its chain nodes. Our
   nodes are uncommitted, and the single-active-writer invariant makes
   them the newest entries of their chains. *)
let rollback t tx =
  if tx.rolled_back then Ok ()
  else begin
    tx.rolled_back <- true;
    let r = Engine.abort t.engine tx.etx in
    List.iter
      (fun key ->
        match Hashtbl.find_opt t.chains key with
        | None -> ()
        | Some c ->
            c := List.filter (fun (v : version) -> v.writer <> tx.id) !c;
            if !c = [] then Hashtbl.remove t.chains key)
      tx.writes;
    tx.writes <- [];
    r
  end

(* Dooming a transaction rolls its engine writes back {e eagerly}, not at
   the client's [abort]: an insert may have landed on a slot freed by a
   concurrent uncommitted delete, and the engine's per-transaction abort
   replay only works while no two live transactions hold records on one
   slot. The zombie transaction keeps its snapshot (pinning the GC
   watermark) until the client aborts it. *)
let conflict t tx ~page ~slot =
  t.conflicts <- t.conflicts + 1;
  tx.doomed <- true;
  match rollback t tx with
  | Ok () -> Error (Conflict { page; slot })
  | Error e -> Error (Engine_error e)

(* ---------------- transactions ---------------- *)

let begin_txn t =
  match Engine.begin_txn t.engine with
  | Error e -> Error (Engine_error e)
  | Ok etx ->
      t.next_id <- t.next_id + 1;
      let tx =
        {
          id = t.next_id;
          etx;
          snapshot = t.commit_ts;
          writes = [];
          doomed = false;
          rolled_back = false;
        }
      in
      Hashtbl.replace t.active tx.id tx;
      Ok tx

let raw_read t ~page ~slot =
  match Engine.read t.engine ~page ~slot with
  | Ok v -> Ok v
  | Error e -> Error (Engine_error e)

let update t tx ~page ~slot data =
  if tx.doomed then Error Doomed
  else if write_conflict t tx ~page ~slot then conflict t tx ~page ~slot
  else
    match raw_read t ~page ~slot with
    | Error _ as e -> e
    | Ok before -> (
        match Engine.update t.engine ~tx:tx.etx ~page ~slot data with
        | Ok () ->
            push_version t tx ~page ~slot before;
            Ok ()
        | Error e -> Error (Engine_error e))

let insert t tx ~page data =
  if tx.doomed then Error Doomed
  else
    match Engine.insert t.engine ~tx:tx.etx ~page data with
    | Error e -> Error (Engine_error e)
    | Ok slot ->
        (* The engine may hand out a slot freed by a concurrent, still
           uncommitted delete (or one committed past our snapshot). The
           write already happened, so record it in the chain either way —
           the caller aborts the doomed transaction and the rollback pops
           it — but report the collision as the conflict it is. *)
        if write_conflict t tx ~page ~slot then begin
          push_version t tx ~page ~slot None;
          conflict t tx ~page ~slot
        end
        else begin
          push_version t tx ~page ~slot None;
          Ok slot
        end

let delete t tx ~page ~slot =
  if tx.doomed then Error Doomed
  else if write_conflict t tx ~page ~slot then conflict t tx ~page ~slot
  else
    match raw_read t ~page ~slot with
    | Error _ as e -> e
    | Ok before -> (
        match Engine.delete t.engine ~tx:tx.etx ~page ~slot with
        | Ok () ->
            push_version t tx ~page ~slot before;
            Ok ()
        | Error e -> Error (Engine_error e))

(* Snapshot read: start from the engine's current image (every write is
   eagerly applied) and walk the chain newest-to-oldest, substituting the
   before-image of every version this snapshot must not see. Stop at the
   first visible version: its effect is already part of the accumulated
   value. *)
let visible_value ~visible current versions =
  let rec walk value = function
    | [] -> value
    | v :: older -> if visible v then value else walk v.before older
  in
  walk current versions

let read t tx ~page ~slot =
  if tx.doomed then Error Doomed
  else
    match raw_read t ~page ~slot with
  | Error _ as e -> e
  | Ok current -> (
      match Hashtbl.find_opt t.chains (page, slot) with
      | None -> Ok current
      | Some c ->
          let visible v =
            v.writer = tx.id
            || match v.commit_ts with Some ts -> ts <= tx.snapshot | None -> false
          in
          Ok (visible_value ~visible current !c))

(* Latest-committed view, no transaction: what a snapshot taken right now
   would see. Hides every live transaction's in-flight writes. *)
let read_committed t ~page ~slot =
  match raw_read t ~page ~slot with
  | Error _ as e -> e
  | Ok current -> (
      match Hashtbl.find_opt t.chains (page, slot) with
      | None -> Ok current
      | Some c ->
          let visible (v : version) = v.commit_ts <> None in
          Ok (visible_value ~visible current !c))

(* Deferred {!read_committed}: the engine read and a snapshot of the
   chain's visibility bits happen NOW, on the caller's domain — the
   returned thunk is a pure walk over that snapshot, safe to evaluate on
   another domain while the chains keep mutating. Forcing the thunk
   yields exactly what [read_committed] would have returned at the call
   site. *)
let read_committed_deferred t ~page ~slot =
  match raw_read t ~page ~slot with
  | Error _ as e -> e
  | Ok current -> (
      match Hashtbl.find_opt t.chains (page, slot) with
      | None -> Ok (fun () -> current)
      | Some c ->
          let frozen =
            List.map (fun (v : version) -> (v.commit_ts <> None, v.before)) !c
          in
          Ok
            (fun () ->
              let rec walk value = function
                | [] -> value
                | (visible, before) :: older ->
                    if visible then value else walk before older
              in
              walk current frozen))

(* ---------------- version GC ---------------- *)

(* Every version at or below the watermark (the oldest snapshot any live
   transaction can still read from) is visible to every present and
   future reader, so its before-image can never be needed again. Chain
   walks don't need the dropped node as a stop marker either: a walk that
   substituted a newer before-image ends with exactly that value when the
   list runs out. *)
let watermark t =
  Hashtbl.fold (fun _ tx acc -> min acc tx.snapshot) t.active t.commit_ts

let gc t =
  let wm = watermark t in
  let dropped = ref 0 in
  let stale = ref [] in
  Hashtbl.iter
    (fun key c ->
      let keep =
        List.filter
          (fun (v : version) -> match v.commit_ts with Some ts when ts <= wm -> false | _ -> true)
          !c
      in
      let d = List.length !c - List.length keep in
      if d > 0 then begin
        dropped := !dropped + d;
        c := keep
      end;
      if keep = [] then stale := key :: !stale)
    t.chains;
  List.iter (Hashtbl.remove t.chains) !stale;
  t.gced <- t.gced + !dropped;
  !dropped

(* ---------------- group commit ---------------- *)

let flush t =
  if t.pending = 0 then Ok ()
  else
    match Engine.flush_commits t.engine with
    | Error e -> Error (Engine_error e)
    | Ok () ->
        let batch = t.pending in
        t.barriers <- t.barriers + 1;
        t.batched <- t.batched + batch;
        t.max_batch <- max t.max_batch batch;
        t.flushed <- t.flushed + batch;
        t.pending <- 0;
        ignore (gc t : int);
        Ok ()

let commit t tx =
  if tx.doomed then Error Doomed
  else begin
    Hashtbl.remove t.active tx.id;
    t.commit_ts <- t.commit_ts + 1;
    let ts = t.commit_ts in
    List.iter
      (fun key ->
        match Hashtbl.find_opt t.chains key with
        | None -> ()
        | Some c ->
            List.iter
              (fun v -> if v.writer = tx.id && v.commit_ts = None then v.commit_ts <- Some ts)
              !c)
      tx.writes;
    match Engine.commit t.engine tx.etx with
    | Error e -> Error (Engine_error e)
    | Ok () ->
        t.commits <- t.commits + 1;
        t.pending <- t.pending + 1;
        if t.pending >= t.group_window then flush t else Ok ()
  end

let abort t tx =
  Hashtbl.remove t.active tx.id;
  tx.doomed <- true;
  let rolled_back = rollback t tx in
  t.aborts <- t.aborts + 1;
  match rolled_back with Ok () -> Ok () | Error e -> Error (Engine_error e)

(* Fold version GC into maintenance merging: trim the chains first (a
   merge is the natural idle moment, and the watermark only moves at
   commit/abort boundaries anyway), then let the storage layer merge the
   fullest erase units. *)
let compact t ~max_merges =
  ignore (gc t : int);
  match Engine.compact t.engine ~max_merges with
  | Ok n -> Ok n
  | Error e -> Error (Engine_error e)

let checkpoint t =
  match flush t with
  | Error _ as e -> e
  | Ok () -> (
      match Engine.checkpoint t.engine with
      | Ok () -> Ok ()
      | Error e -> Error (Engine_error e))
