(** A multi-client session front-end over one engine.

    Simulated client sessions execute pre-drawn transaction plans through
    the {!Mvcc} layer on a deterministic round-robin scheduler: every
    rotation advances each session by exactly one step (begin, one record
    operation, commit/abort, or one read), so the interleaving — and with
    it every conflict, batch boundary and read result — is a pure
    function of [(plans, sessions, group_window)]. One session degrades
    to the serial loop: same operation order, same logical outcome.

    Sessions park between their commit and the group barrier that makes
    it durable. When a rotation makes no progress (every live session is
    parked), the pending batch is settled even if the window isn't full —
    that is what turns N concurrent commits into one device barrier. *)

type op =
  | Update of { page : int; slot : int; data : bytes }
  | Insert of { page : int; data : bytes }
  | Delete of { page : int; slot : int }

type plan = {
  ops : op list;
  aborting : bool;  (** voluntarily abort instead of committing *)
  reads : (int * int) list;  (** post-commit read phase: (page, slot) *)
}

type session_stats = {
  session : int;  (** session index, [0 .. sessions-1] *)
  commits : int;  (** transactions this session saw through to durable *)
  sim_latencies : float list;
      (** begin->durable commit latency in {e simulated} device seconds,
          one per commit in completion order — a pure function of the
          schedule, identical across job counts *)
  host_latency_s : float;
      (** total begin->durable {e host} time — wall clock, machine
          dependent, reported only in machine-dependent sections *)
}

type outcome = {
  committed : int;
  aborted : int;  (** voluntary aborts (the plan said so) *)
  conflict_aborts : int;  (** transactions doomed by write-write conflicts *)
  mvcc : Mvcc.stats;
  per_session : session_stats list;  (** one entry per session, in order *)
}

val run :
  ?group_window:int ->
  ?compact_every:int ->
  ?note_read:(bytes option -> unit) ->
  ?pool:Par.Domain_pool.t ->
  sessions:int ->
  plans:plan array ->
  Ipl_core.Ipl_engine.t ->
  outcome
(** Multiplex [plans] over [sessions] clients (plan [i] goes to session
    [i mod sessions], preserving per-session order). [group_window]
    defaults to [sessions]. [compact_every] > 0 runs a {!Mvcc.compact}
    with one merge after every that-many finished transactions, like the
    serial benchmark loop. [note_read] sees every read result in
    deterministic schedule order. The final batch is flushed before
    returning; the engine is left checkpoint-ready.

    [pool] moves the post-commit read phase's {e resolution} onto a
    {!Par.Domain_pool}: each read is pinned at its original schedule
    step with {!Mvcc.read_committed_deferred} (so the answer is defined
    by exactly the same state as the serial path) and the pure snapshot
    walks are evaluated in chunks on the pool, with [note_read] invoked
    in the original order. Outcome and read values are identical with
    and without a pool, for any job count. *)
