(** Snapshot-isolation MVCC over the IPL engine, with group commit.

    The design is {e eager-apply}: record writes go straight to the
    engine (so its physiological logging, buffer management and merges
    see exactly the serial workload), while an in-DRAM undo chain per
    record remembers each write's before-image. A transaction reads the
    engine's current image and walks the chain newest-to-oldest,
    substituting the before-image of every version committed after its
    snapshot (or not committed at all) — per-record version
    reconstruction in the spirit of the paper's on-demand log replay,
    pointed backwards.

    Write-write conflicts are detected {e eagerly}, first-updater-wins:
    writing a record whose newest version belongs to a live transaction,
    or was committed after the writer's snapshot (first-committer-wins),
    dooms the transaction — it can only abort. The eager check doubles as
    the engine's own safety invariant: no two active transactions ever
    touch the same record, which its delta replay requires. Write skew is
    allowed, as under any snapshot isolation.

    Commits are {e grouped}: [commit] records the transaction's commit
    with the engine but defers durability; once [group_window] commits
    have accumulated (or on an explicit {!flush} / {!checkpoint}) a
    single device barrier settles the whole batch. Version chains are
    garbage-collected at every batch boundary against the watermark (the
    oldest live snapshot), and {!compact} folds a GC pass into
    maintenance merging. *)

type t

type txn
(** A live snapshot-isolation transaction. Single-use: dead after
    {!commit} or {!abort}. *)

type error =
  | Conflict of { page : int; slot : int }
      (** first-updater/first-committer-wins write-write conflict; the
          transaction is doomed and must be aborted *)
  | Doomed  (** operation on a transaction already doomed by a conflict *)
  | Engine_error of Ipl_core.Ipl_engine.error

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

val create : ?group_window:int -> Ipl_core.Ipl_engine.t -> t
(** Wrap an engine (built with [recovery_enabled = true]). Takes over the
    engine's commit batching: the engine-side window is parked out of
    reach and this layer's [group_window] (default 1: every commit
    flushes, serial behaviour) decides when the batch barrier runs. *)

val engine : t -> Ipl_core.Ipl_engine.t
val txn_id : txn -> int

val begin_txn : t -> (txn, error) result
(** Open a transaction on a snapshot of the latest committed state. *)

val read : t -> txn -> page:int -> slot:int -> (bytes option, error) result
(** The record as of the transaction's snapshot, plus its own writes. *)

val read_committed : t -> page:int -> slot:int -> (bytes option, error) result
(** The latest committed version — a fresh snapshot's view, hiding every
    live transaction's in-flight writes. *)

val read_committed_deferred :
  t -> page:int -> slot:int -> (unit -> bytes option, error) result
(** {!read_committed} split in two: the engine read and a frozen copy of
    the chain's visibility happen at the call (on the calling domain, at
    the schedule point that defines the answer); the returned thunk is
    pure and may be forced later — including on a {!Par.Domain_pool}
    worker — yielding exactly the value [read_committed] would have
    returned at the call site. *)

val insert : t -> txn -> page:int -> bytes -> (int, error) result
val update : t -> txn -> page:int -> slot:int -> bytes -> (unit, error) result
val delete : t -> txn -> page:int -> slot:int -> (unit, error) result

val commit : t -> txn -> (unit, error) result
(** Record the commit (first-committer-wins is already guaranteed by the
    eager write checks). Durability is deferred to the group barrier; the
    commit is batched until {!flushed_commits} passes it. *)

val abort : t -> txn -> (unit, error) result
(** Roll back: the engine de-applies the writes and the transaction's
    chain nodes are popped. Also the only way out of a doomed
    transaction. *)

val flush : t -> (unit, error) result
(** Make every batched commit durable with one device barrier, then GC
    version chains against the watermark. No-op when nothing is pending. *)

val pending : t -> int
(** Commits recorded but not yet settled by a batch barrier. *)

val flushed_commits : t -> int
(** Total commits made durable so far — a session scheduler compares this
    against its own commit's sequence number to know when to resume. *)

val gc : t -> int
(** Drop every version at or below the watermark (the oldest snapshot a
    live transaction still reads from); returns how many were dropped. *)

val compact : t -> max_merges:int -> (int, error) result
(** Version-chain GC folded into maintenance merging: {!gc}, then the
    engine's background merge of the fullest erase units. *)

val checkpoint : t -> (unit, error) result
(** {!flush}, then a full engine checkpoint. *)

type stats = {
  commits : int;
  aborts : int;  (** includes conflict-doomed transactions *)
  conflicts : int;  (** write-write conflicts detected (dooming events) *)
  barriers : int;  (** group-commit device barriers issued *)
  batched_commits : int;  (** commits settled by those barriers *)
  max_batch : int;
  versions_created : int;
  versions_gced : int;
  versions_live : int;
}

val stats : t -> stats
