type t =
  | Read_sector of { sector : int; count : int }
  | Program_sector of { sector : int; count : int }
  | Erase_block of { block : int }
  | Page_alloc of { page : int; eu : int }
  | Page_read of { page : int; eu : int }
  | Log_flush of { page : int; eu : int; records : int }
  | Overflow_diversion of { page : int; eu : int; records : int }
  | Merge of { eu : int; new_eu : int; applied : int; carried : int; dropped : int }
  | Cache_hit of { eu : int }
  | Cache_miss of { eu : int }
  | Cache_evict of { eu : int; bytes : int }
  | Evict of { page : int }
  | Write_back of { page : int }
  | Commit of { tx : int }
  | Abort of { tx : int }
  | Checkpoint
  | Page_repaired of { page : int; eu : int }
  | Read_retry of { sector : int; attempt : int }
  | Remap of { virt : int; from_phys : int; to_phys : int }
  | Retire of { block : int }
  | Scrub of { virt : int; to_phys : int }
  | Degraded

let kind = function
  | Read_sector _ -> "read_sector"
  | Program_sector _ -> "program_sector"
  | Erase_block _ -> "erase_block"
  | Page_alloc _ -> "page_alloc"
  | Page_read _ -> "page_read"
  | Log_flush _ -> "log_flush"
  | Overflow_diversion _ -> "overflow_diversion"
  | Merge _ -> "merge"
  | Cache_hit _ -> "cache_hit"
  | Cache_miss _ -> "cache_miss"
  | Cache_evict _ -> "cache_evict"
  | Evict _ -> "evict"
  | Write_back _ -> "write_back"
  | Commit _ -> "commit"
  | Abort _ -> "abort"
  | Checkpoint -> "checkpoint"
  | Page_repaired _ -> "page_repaired"
  | Read_retry _ -> "read_retry"
  | Remap _ -> "remap"
  | Retire _ -> "retire"
  | Scrub _ -> "scrub"
  | Degraded -> "degraded"

(* Every kind tag, in declaration order — the stable key order for
   aggregated per-kind reports. *)
let kinds =
  [
    "read_sector";
    "program_sector";
    "erase_block";
    "page_alloc";
    "page_read";
    "log_flush";
    "overflow_diversion";
    "merge";
    "cache_hit";
    "cache_miss";
    "cache_evict";
    "evict";
    "write_back";
    "commit";
    "abort";
    "checkpoint";
    "page_repaired";
    "read_retry";
    "remap";
    "retire";
    "scrub";
    "degraded";
  ]

(* Payload as ordered (field, value) pairs — single source for JSON, CSV
   and pretty-printing. *)
let fields = function
  | Read_sector { sector; count } | Program_sector { sector; count } ->
      [ ("sector", sector); ("count", count) ]
  | Erase_block { block } -> [ ("block", block) ]
  | Page_alloc { page; eu } | Page_read { page; eu } -> [ ("page", page); ("eu", eu) ]
  | Log_flush { page; eu; records } | Overflow_diversion { page; eu; records } ->
      [ ("page", page); ("eu", eu); ("records", records) ]
  | Merge { eu; new_eu; applied; carried; dropped } ->
      [
        ("eu", eu);
        ("new_eu", new_eu);
        ("applied", applied);
        ("carried", carried);
        ("dropped", dropped);
      ]
  | Cache_hit { eu } | Cache_miss { eu } -> [ ("eu", eu) ]
  | Cache_evict { eu; bytes } -> [ ("eu", eu); ("bytes", bytes) ]
  | Evict { page } | Write_back { page } -> [ ("page", page) ]
  | Commit { tx } | Abort { tx } -> [ ("tx", tx) ]
  | Checkpoint -> []
  | Page_repaired { page; eu } -> [ ("page", page); ("eu", eu) ]
  | Read_retry { sector; attempt } -> [ ("sector", sector); ("attempt", attempt) ]
  | Remap { virt; from_phys; to_phys } ->
      [ ("virt", virt); ("from_phys", from_phys); ("to_phys", to_phys) ]
  | Retire { block } -> [ ("block", block) ]
  | Scrub { virt; to_phys } -> [ ("virt", virt); ("to_phys", to_phys) ]
  | Degraded -> []

let to_json ev =
  Ipl_util.Json.Obj
    (("kind", Ipl_util.Json.String (kind ev))
    :: List.map (fun (k, v) -> (k, Ipl_util.Json.Int v)) (fields ev))

let pp ppf ev =
  Format.pp_print_string ppf (kind ev);
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) (fields ev)
