type entry = { seq : int; time : float; event : Event.t }

type t = {
  capacity : int;
  buf : entry array;
  mutable count : int;  (* entries currently held, <= capacity *)
  mutable next : int;  (* write cursor into [buf] *)
  mutable emitted : int;  (* total events ever emitted *)
}

let dummy = { seq = -1; time = 0.0; event = Event.Checkpoint }

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Obs.Tracer.create: capacity must be positive";
  { capacity; buf = Array.make capacity dummy; count = 0; next = 0; emitted = 0 }

let capacity t = t.capacity
let length t = t.count
let emitted t = t.emitted
let dropped t = t.emitted - t.count

let emit t ~time event =
  t.buf.(t.next) <- { seq = t.emitted; time; event };
  t.next <- (t.next + 1) mod t.capacity;
  if t.count < t.capacity then t.count <- t.count + 1;
  t.emitted <- t.emitted + 1

let clear t =
  Array.fill t.buf 0 t.capacity dummy;
  t.count <- 0;
  t.next <- 0;
  t.emitted <- 0

let iter f t =
  let start = (t.next - t.count + t.capacity) mod t.capacity in
  for i = 0 to t.count - 1 do
    f t.buf.((start + i) mod t.capacity)
  done

let fold f t init =
  let acc = ref init in
  iter (fun e -> acc := f !acc e) t;
  !acc

let to_list t = List.rev (fold (fun acc e -> e :: acc) t [])

let count_kind t kind =
  fold (fun acc e -> if Event.kind e.event = kind then acc + 1 else acc) t 0
