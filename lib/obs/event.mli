(** Typed trace events emitted by the hook points across the stack.

    The three layers each contribute their own vocabulary: the flash chip
    emits physical operations ([Read_sector], [Program_sector],
    [Erase_block]); the IPL storage manager emits logical ones
    ([Log_flush], [Overflow_diversion], [Merge], …); the buffer pool and
    engine emit cache and transaction lifecycle events. All payload fields
    are plain integers so that constructing an event allocates nothing but
    the event itself. *)

type t =
  | Read_sector of { sector : int; count : int }
      (** physical read of [count] sectors at flat address [sector] *)
  | Program_sector of { sector : int; count : int }
      (** physical program; [count] is the number actually programmed *)
  | Erase_block of { block : int }
  | Page_alloc of { page : int; eu : int }
      (** logical page placed into erase unit [eu] *)
  | Page_read of { page : int; eu : int }
      (** logical page read: stored image + log replay *)
  | Log_flush of { page : int; eu : int; records : int }
      (** in-page log sector programmed for [page] *)
  | Overflow_diversion of { page : int; eu : int; records : int }
      (** log sector diverted to the overflow area (carry > tau) *)
  | Merge of { eu : int; new_eu : int; applied : int; carried : int; dropped : int }
      (** erase unit rewritten; counts are records applied / carried over /
          dropped as aborted *)
  | Cache_hit of { eu : int }
      (** log-record cache served the unit's records; no flash read *)
  | Cache_miss of { eu : int }
      (** unit's log region read and decoded from flash, entry installed *)
  | Cache_evict of { eu : int; bytes : int }
      (** LRU entry dropped to fit the cache's byte budget *)
  | Evict of { page : int }  (** buffer pool evicted a frame *)
  | Write_back of { page : int }  (** dirty frame cleaned (log flushed) *)
  | Commit of { tx : int }
  | Abort of { tx : int }
  | Checkpoint
  | Page_repaired of { page : int; eu : int }
      (** lazy restart replayed the page's log records on first touch
          after a crash (or via the background repair drainer) *)
  | Read_retry of { sector : int; attempt : int }
      (** bad-block manager retrying a failed physical read *)
  | Remap of { virt : int; from_phys : int; to_phys : int }
      (** virtual erase unit relocated to a spare after a program/erase
          failure *)
  | Retire of { block : int }  (** physical block permanently retired *)
  | Scrub of { virt : int; to_phys : int }
      (** preventive relocation after a correctable (ECC) read *)
  | Degraded  (** spare pool exhausted: device now read-only *)

val kind : t -> string
(** Stable snake_case tag, e.g. ["log_flush"] — the [kind] field of the
    JSON rendering and the event column of CSV exports. *)

val kinds : string list
(** Every {!kind} tag, in declaration order — a stable key order for
    per-kind aggregations. *)

val fields : t -> (string * int) list
(** Payload as ordered field/value pairs (empty for [Checkpoint]). *)

val to_json : t -> Ipl_util.Json.t
(** [Obj] with ["kind"] first, then {!fields}. *)

val pp : Format.formatter -> t -> unit
