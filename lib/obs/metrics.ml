module Json = Ipl_util.Json

module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let value t = t.n
end

module Latency = struct
  (* Exact count/sum/min/max plus a power-of-two nanosecond bucket
     frequency table: bucket [k] holds observations in [2^k, 2^(k+1)) ns.
     Percentiles are read off the cumulative bucket counts, so they are
     upper bounds with at most 2x relative error — plenty for latency
     profiles, and the representation is a handful of ints no matter how
     many observations arrive. *)
  type t = {
    buckets : Ipl_util.Histogram.t;
    mutable count : int;
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    {
      buckets = Ipl_util.Histogram.create ~initial_size:64 ();
      count = 0;
      sum = 0.0;
      min_v = Float.infinity;
      max_v = Float.neg_infinity;
    }

  (* floor(log2 ns) computed on the truncated integer — exact, no float
     log rounding at bucket boundaries. *)
  let bucket_of_seconds v =
    let ns = v *. 1e9 in
    if ns < 1.0 then 0
    else
      let n = int_of_float ns in
      let rec bits acc n = if n <= 1 then acc else bits (acc + 1) (n lsr 1) in
      bits 0 n

  let observe t v =
    let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
    Ipl_util.Histogram.incr t.buckets (bucket_of_seconds v);
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v

  let count t = t.count
  let sum t = t.sum
  let min_seconds t = if t.count = 0 then 0.0 else t.min_v
  let max_seconds t = if t.count = 0 then 0.0 else t.max_v
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

  let sorted_buckets t =
    List.sort compare
      (Ipl_util.Histogram.fold (fun k n acc -> (k, n) :: acc) t.buckets [])

  let percentile t q =
    if t.count = 0 then 0.0
    else begin
      let q = Float.min 1.0 (Float.max 0.0 q) in
      let rank =
        Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.count)))
      in
      let rec walk cum = function
        | [] -> t.max_v
        | (k, n) :: rest ->
            if cum + n >= rank then
              (* Upper bound of the bucket, clamped to the observed range. *)
              let upper_ns = Float.of_int (1 lsl (k + 1)) in
              Float.max t.min_v (Float.min t.max_v (upper_ns /. 1e9))
            else walk (cum + n) rest
      in
      walk 0 (sorted_buckets t)
    end

  let to_json t =
    Json.Obj
      [
        ("count", Json.Int t.count);
        ("sum_s", Json.Float t.sum);
        ("min_s", Json.Float (min_seconds t));
        ("max_s", Json.Float (max_seconds t));
        ("mean_s", Json.Float (mean t));
        ("p50_s", Json.Float (percentile t 0.50));
        ("p90_s", Json.Float (percentile t 0.90));
        ("p99_s", Json.Float (percentile t 0.99));
        ( "buckets",
          Json.List
            (List.map
               (fun (k, n) -> Json.List [ Json.Int (1 lsl k); Json.Int n ])
               (sorted_buckets t)) );
      ]
end

type item = C of Counter.t | H of Latency.t

type t = {
  tbl : (string, item) Hashtbl.t;
  mutable order_rev : string list;  (* registration order, newest first *)
}

let create () = { tbl = Hashtbl.create 32; order_rev = [] }

let register t name item =
  Hashtbl.replace t.tbl name item;
  t.order_rev <- name :: t.order_rev

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (C c) -> c
  | Some (H _) -> invalid_arg ("Obs.Metrics.counter: " ^ name ^ " is a histogram")
  | None ->
      let c = Counter.create () in
      register t name (C c);
      c

let latency t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (H h) -> h
  | Some (C _) -> invalid_arg ("Obs.Metrics.latency: " ^ name ^ " is a counter")
  | None ->
      let h = Latency.create () in
      register t name (H h);
      h

let names t = List.rev t.order_rev

let find t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (C c) -> Some (`Counter (Counter.value c))
  | Some (H h) -> Some (`Histogram h)
  | None -> None

let to_json t =
  let counters = ref [] and histos = ref [] in
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | C c -> counters := (name, Json.Int (Counter.value c)) :: !counters
      | H h -> histos := (name, Latency.to_json h) :: !histos)
    t.order_rev;
  Json.Obj [ ("counters", Json.Obj !counters); ("histograms", Json.Obj !histos) ]
