module Json = Ipl_util.Json

let metrics_json = Metrics.to_json

let trace_json tracer =
  Json.List
    (List.rev
       (Tracer.fold
          (fun acc (e : Tracer.entry) ->
            Json.Obj
              (("seq", Json.Int e.seq)
              :: ("time_s", Json.Float e.time)
              :: ("kind", Json.String (Event.kind e.event))
              :: List.map (fun (k, v) -> (k, Json.Int v)) (Event.fields e.event))
            :: acc)
          tracer []))

let trace_csv tracer =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "seq,time_s,kind,args\n";
  Tracer.iter
    (fun (e : Tracer.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%.9f,%s,%s\n" e.seq e.time (Event.kind e.event)
           (String.concat ";"
              (List.map
                 (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                 (Event.fields e.event)))))
    tracer;
  Buffer.contents buf

let metrics_csv metrics =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "name,type,count,sum_s,min_s,max_s,mean_s,p50_s,p90_s,p99_s\n";
  List.iter
    (fun name ->
      match Metrics.find metrics name with
      | None -> ()
      | Some (`Counter n) ->
          Buffer.add_string buf (Printf.sprintf "%s,counter,%d,,,,,,,\n" name n)
      | Some (`Histogram h) ->
          Buffer.add_string buf
            (Printf.sprintf "%s,histogram,%d,%.9f,%.9f,%.9f,%.9f,%.9f,%.9f,%.9f\n" name
               (Metrics.Latency.count h) (Metrics.Latency.sum h)
               (Metrics.Latency.min_seconds h) (Metrics.Latency.max_seconds h)
               (Metrics.Latency.mean h)
               (Metrics.Latency.percentile h 0.50)
               (Metrics.Latency.percentile h 0.90)
               (Metrics.Latency.percentile h 0.99)))
    (Metrics.names metrics);
  Buffer.contents buf

let to_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
