(** Fixed-capacity ring buffer of timestamped trace events.

    Hook points across the stack call {!emit} with the simulated clock;
    once the ring is full the oldest entries are overwritten (the
    {!dropped} counter records how many). Emission is allocation-light —
    one entry record per event — and O(1), so tracing a long run costs a
    bounded amount of memory no matter how many events fire. *)

type entry = { seq : int;  (** 0-based global emission index *)
               time : float;  (** simulated seconds at emission *)
               event : Event.t }

type t

val create : capacity:int -> unit -> t
(** [capacity] must be positive. *)

val emit : t -> time:float -> Event.t -> unit

val capacity : t -> int

val length : t -> int
(** Entries currently retained (≤ capacity). *)

val emitted : t -> int
(** Total events ever emitted, including overwritten ones. *)

val dropped : t -> int
(** [emitted - length]: events lost to ring overwrite. *)

val clear : t -> unit
(** Empty the ring and reset all counters. *)

val iter : (entry -> unit) -> t -> unit
(** Oldest retained entry first. *)

val fold : ('a -> entry -> 'a) -> t -> 'a -> 'a
val to_list : t -> entry list

val count_kind : t -> string -> int
(** Retained entries whose {!Event.kind} equals the tag. *)
