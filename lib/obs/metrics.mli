(** Named counters and latency histograms.

    A registry maps names to metrics created on first use ([counter] /
    [latency] are get-or-create). Latency histograms keep exact
    count/sum/min/max plus power-of-two nanosecond buckets (built on
    {!Ipl_util.Histogram}), so percentile queries cost O(buckets) and the
    memory footprint is independent of the number of observations. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Latency : sig
  type t

  val create : unit -> t

  val observe : t -> float -> unit
  (** Record one observation in seconds. Negative and NaN observations are
      clamped to zero. *)

  val count : t -> int
  val sum : t -> float
  val min_seconds : t -> float
  val max_seconds : t -> float
  val mean : t -> float
  (** All 0.0 when no observations were made. *)

  val percentile : t -> float -> float
  (** [percentile t q] for q in [0,1]: an upper bound on the q-quantile
      (bucket upper edge, clamped to the observed min/max — at most 2x
      relative error). *)

  val to_json : t -> Ipl_util.Json.t
  (** [{count, sum_s, min_s, max_s, mean_s, p50_s, p90_s, p99_s,
      buckets: [[lo_ns, count], …]}] with buckets sorted ascending. *)
end

type t
(** A metrics registry. *)

val create : unit -> t

val counter : t -> string -> Counter.t
(** Get or create. Raises [Invalid_argument] if the name is registered as
    a histogram. *)

val latency : t -> string -> Latency.t
(** Get or create. Raises [Invalid_argument] if the name is registered as
    a counter. *)

val names : t -> string list
(** All registered names in registration order. *)

val find : t -> string -> [ `Counter of int | `Histogram of Latency.t ] option
(** Look up a metric without creating it. *)

val to_json : t -> Ipl_util.Json.t
(** [{counters: {...}, histograms: {...}}] in registration order. *)
