(** JSON and CSV exporters for metrics snapshots and traces. *)

val metrics_json : Metrics.t -> Ipl_util.Json.t
(** Same as {!Metrics.to_json}. *)

val metrics_csv : Metrics.t -> string
(** One row per metric:
    [name,type,count,sum_s,min_s,max_s,mean_s,p50_s,p90_s,p99_s] (the
    latency columns are empty for counters). *)

val trace_json : Tracer.t -> Ipl_util.Json.t
(** [List] of entry objects [{seq, time_s, kind, <event fields>}],
    oldest retained entry first. *)

val trace_csv : Tracer.t -> string
(** Rows [seq,time_s,kind,args] with the event payload as
    semicolon-separated [field=value] pairs. *)

val to_file : string -> string -> unit
(** [to_file path contents] writes (or overwrites) a file. *)
