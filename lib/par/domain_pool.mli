(** A fixed pool of worker domains with deterministic result ordering.

    The pool exists for embarrassingly parallel work whose tasks are
    independent by construction — crash-point restarts on private chips,
    replay backends on private stores, pure snapshot resolution. Results
    are committed in submission-index order, so the output of
    {!parallel_map} is a pure function of its inputs regardless of how
    the operating system schedules the domains.

    [jobs = 1] is the serial identity: no domain is ever spawned and
    {!parallel_map} degrades to [Array.map], bit for bit. Every consumer
    in the repository keeps that as its default, which is what lets the
    parallel paths claim digest equality with the serial ones.

    One batch runs at a time per pool, and pools must not be used from
    inside a pool task ({!Nested_parallelism}) — the engine stack is not
    re-entrant across domains and nested fan-out would deadlock a pool
    against itself. *)

type t

exception Nested_parallelism
(** Raised when {!parallel_map} or {!parallel_for} is invoked from
    inside a pool task (any pool's — worker status is domain-local). *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains (the submitting
    domain participates in every batch, so total parallelism is [jobs]).
    [jobs < 1] is an [Invalid_argument]; [jobs = 1] spawns nothing. *)

val jobs : t -> int
(** The parallelism the pool was created with. *)

val shutdown : t -> unit
(** Stop and join every worker. Idempotent. A pool that is never shut
    down leaks its domains until exit. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, exception or not. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map t f src] is [Array.map f src], computed by up to
    [jobs t] domains. Results land at their submission index. If any
    task raises, the exception of the {e lowest} index that failed is
    re-raised on the calling domain (with its original backtrace) once
    the batch has drained — the same exception a serial [Array.map]
    would have surfaced first. Tasks must not touch shared mutable
    state; the pool guarantees ordering, not isolation. *)

val parallel_for : t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi f] runs [f i] for [lo <= i < hi] on the
    pool. Like {!parallel_map}, the lowest-index exception wins. *)
