(* Fixed worker domains around a Mutex/Condition work queue. A batch is
   an array of index-addressed thunks; workers (and the submitting
   domain, which always participates) pull the next index under the
   lock, run the thunk unlocked, and count completions. Results are
   written to per-index cells, so the output order is the submission
   order no matter which domain ran what.

   Memory-safety argument for the result cells: each index is written by
   exactly one domain, and the submitting domain only reads the cells
   after observing [completed = n] under the batch mutex — the unlock in
   the finishing worker happens-before that observation, so every write
   is visible. *)

type batch = {
  tasks : (unit -> unit) array;
  mutable next : int;  (* first index not yet claimed *)
  mutable completed : int;
}

type t = {
  jobs : int;
  m : Mutex.t;
  work : Condition.t;  (* a batch was submitted, or stop was set *)
  finished : Condition.t;  (* the current batch completed *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

exception Nested_parallelism

(* Worker status is domain-local, not pool-local: a task must not drive
   ANY pool, including a different one — the outer batch would be stalled
   on a domain that is itself waiting for pool capacity. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let refuse_nested () = if Domain.DLS.get in_worker then raise Nested_parallelism

(* Claim the next task index, or wait for one; [None] means stop. Caller
   holds the mutex. *)
let rec claim t =
  if t.stop then None
  else
    match t.batch with
    | Some b when b.next < Array.length b.tasks ->
        let i = b.next in
        b.next <- b.next + 1;
        Some (b, i)
    | _ ->
        Condition.wait t.work t.m;
        claim t

(* Caller holds the mutex. *)
let finish t b =
  b.completed <- b.completed + 1;
  if b.completed = Array.length b.tasks then Condition.broadcast t.finished

let worker_loop t =
  Domain.DLS.set in_worker true;
  let rec go () =
    Mutex.lock t.m;
    match claim t with
    | None -> Mutex.unlock t.m
    | Some (b, i) ->
        Mutex.unlock t.m;
        b.tasks.(i) ();
        Mutex.lock t.m;
        finish t b;
        Mutex.unlock t.m;
        go ()
  in
  go ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Domain_pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      stop = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run one batch to completion, with the calling domain pulling tasks
   alongside the workers and waiting out the stragglers. *)
let run_batch t tasks =
  let n = Array.length tasks in
  if n > 0 then begin
    let b = { tasks; next = 0; completed = 0 } in
    Mutex.lock t.m;
    if t.batch <> None then begin
      Mutex.unlock t.m;
      invalid_arg "Domain_pool: a batch is already running on this pool"
    end;
    t.batch <- Some b;
    Condition.broadcast t.work;
    (* Tasks the submitting domain runs itself must trip the nested-use
       refusal exactly like tasks on a spawned worker, so the domain
       counts as a worker while it drives. The task wrappers catch every
       exception ([parallel_map] re-raises after the drain), so the flag
       reset below is not skipped. *)
    Domain.DLS.set in_worker true;
    let rec drive () =
      if b.next < n then begin
        let i = b.next in
        b.next <- b.next + 1;
        Mutex.unlock t.m;
        tasks.(i) ();
        Mutex.lock t.m;
        finish t b;
        drive ()
      end
      else if b.completed < n then begin
        Condition.wait t.finished t.m;
        drive ()
      end
    in
    drive ();
    Domain.DLS.set in_worker false;
    t.batch <- None;
    Mutex.unlock t.m
  end

let parallel_map t f src =
  refuse_nested ();
  let n = Array.length src in
  if t.jobs <= 1 || n <= 1 then Array.map f src
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let tasks =
      Array.init n (fun i () ->
          match f src.(i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()))
    in
    run_batch t tasks;
    (* Serial semantics for failures: the lowest failing index is the one
       a sequential Array.map would have raised first. *)
    let rec first_error i =
      if i >= n then None else match errors.(i) with Some _ as e -> e | None -> first_error (i + 1)
    in
    (match first_error 0 with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_for t ~lo ~hi f =
  if hi > lo then
    ignore (parallel_map t f (Array.init (hi - lo) (fun k -> lo + k)) : unit array)
  else refuse_nested ()
