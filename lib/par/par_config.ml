let env_var = "IPL_JOBS"

let recommended () = Domain.recommended_domain_count ()

let clamp j = if j < 1 then 1 else min j (recommended ())

let env_jobs () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | Some _ | None -> None)

let resolve ?(cli = 0) () =
  let requested = if cli >= 1 then cli else Option.value ~default:1 (env_jobs ()) in
  clamp requested
