(** The one knob of the parallel execution layer: how many domains.

    Resolution order for the CLI tools: an explicit [--jobs N] wins,
    otherwise the [IPL_JOBS] environment variable, otherwise 1 — and the
    result is clamped to [Domain.recommended_domain_count ()], so a
    caller cannot oversubscribe the runtime from the command line.
    [jobs = 1] (the default everywhere) is the bit-for-bit serial path:
    no pool, no domains, no scheduling. *)

val env_var : string
(** ["IPL_JOBS"]. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val clamp : int -> int
(** [clamp j] is [j] forced into [\[1, recommended ()\]]. *)

val resolve : ?cli:int -> unit -> int
(** [resolve ~cli ()] picks the job count: [cli] if positive, else a
    positive integer [IPL_JOBS], else 1; clamped with {!clamp}. A [cli]
    of 0 or below means "not given on the command line". *)
