(** Lint findings and the [file:line rule-id message] reporter, shared by
    the syntactic linter (ipl_lint) and the typed checker (ipl_sema). *)

type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  message : string;
}

val make : rule:string -> severity:severity -> file:string -> line:int -> string -> t

val compare : t -> t -> int
(** Order by file, then line, then rule id. *)

val dedup : t list -> t list
(** Deterministic order (path, line, rule, message) with one finding per
    (file, line, rule) — stable input for CI diffs. *)

val pp : Format.formatter -> t -> unit

val print_report : ?tool:string -> Format.formatter -> t list -> unit
(** Sorted findings, one per line, followed by a one-line summary tagged
    with [tool] (default ["ipl_lint"]). *)

val has_errors : t list -> bool

val to_json_string : tool:string -> t list -> string
(** Machine-readable report: [{"schema":"ipl-findings/1","tool":...,
    "errors":N,"warnings":N,"findings":[{rule,severity,file,line,message}]}].
    Deduplicated, sorted, byte-stable for identical inputs. *)
