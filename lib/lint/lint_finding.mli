(** Lint findings and the [file:line rule-id message] reporter. *)

type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  message : string;
}

val make : rule:string -> severity:severity -> file:string -> line:int -> string -> t

val compare : t -> t -> int
(** Order by file, then line, then rule id. *)

val pp : Format.formatter -> t -> unit

val print_report : Format.formatter -> t list -> unit
(** Sorted findings, one per line, followed by a one-line summary. *)

val has_errors : t list -> bool
