type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  message : string;
}

let make ~rule ~severity ~file ~line message = { rule; severity; file; line; message }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> String.compare a.rule b.rule | c -> c)
  | c -> c

let severity_tag = function Error -> "error" | Warning -> "warning"

let pp ppf t =
  Format.fprintf ppf "%s:%d %s %s [%s]" t.file t.line t.rule t.message (severity_tag t.severity)

let print_report ppf findings =
  let findings = List.sort compare findings in
  List.iter (fun f -> Format.fprintf ppf "%a@." pp f) findings;
  let errors = List.length (List.filter (fun f -> f.severity = Error) findings) in
  let warnings = List.length findings - errors in
  if findings = [] then Format.fprintf ppf "ipl_lint: no findings@."
  else Format.fprintf ppf "ipl_lint: %d error(s), %d warning(s)@." errors warnings

let has_errors findings = List.exists (fun f -> f.severity = Error) findings
