type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  message : string;
}

let make ~rule ~severity ~file ~line message = { rule; severity; file; line; message }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> String.compare a.rule b.rule | c -> c)
  | c -> c

let severity_tag = function Error -> "error" | Warning -> "warning"

let dedup findings =
  (* Deterministic order (path, line, rule, then message), then one finding
     per (file, line, rule) so repeated detections cannot wobble CI diffs. *)
  let sorted =
    List.sort
      (fun a b ->
        match compare a b with 0 -> String.compare a.message b.message | c -> c)
      findings
  in
  let rec uniq = function
    | a :: b :: rest when compare a b = 0 -> uniq (a :: rest)
    | a :: rest -> a :: uniq rest
    | [] -> []
  in
  uniq sorted

let pp ppf t =
  Format.fprintf ppf "%s:%d %s %s [%s]" t.file t.line t.rule t.message (severity_tag t.severity)

let print_report ?(tool = "ipl_lint") ppf findings =
  let findings = List.sort compare findings in
  List.iter (fun f -> Format.fprintf ppf "%a@." pp f) findings;
  let errors = List.length (List.filter (fun f -> f.severity = Error) findings) in
  let warnings = List.length findings - errors in
  if findings = [] then Format.fprintf ppf "%s: no findings@." tool
  else Format.fprintf ppf "%s: %d error(s), %d warning(s)@." tool errors warnings

let has_errors findings = List.exists (fun f -> f.severity = Error) findings

(* Hand-rolled JSON: the lint library must stay dependency-free (the CI
   lint job builds it without the full dev switch), so no Ipl_util.Json. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json_string ~tool findings =
  let findings = dedup findings in
  let errors = List.length (List.filter (fun f -> f.severity = Error) findings) in
  let warnings = List.length findings - errors in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\":\"ipl-findings/1\",\"tool\":\"%s\",\"errors\":%d,\"warnings\":%d,\"findings\":["
       (json_escape tool) errors warnings);
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n  {\"rule\":\"%s\",\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"message\":\"%s\"}"
           (json_escape f.rule) (severity_tag f.severity) (json_escape f.file)
           f.line (json_escape f.message)))
    findings;
  if findings <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf "]}";
  Buffer.contents buf
