let lint_file ?(siblings = []) (f : Lint_source.file) =
  let source = Lint_source.read_file f.Lint_source.path in
  let r = Lint_walker.walk ~file:f.Lint_source.path source in
  let layering =
    Lint_deps.check_file ~siblings ~dir:f.Lint_source.dir ~file:f.Lint_source.path
      r.Lint_walker.refs
  in
  Lint_walker.apply_suppressions r.Lint_walker.suppressions
    (r.Lint_walker.findings @ layering)

let run roots =
  let files = Lint_source.scan roots in
  let per_file =
    List.concat_map (fun f -> lint_file ~siblings:(Lint_source.siblings files f.Lint_source.dir) f) files
  in
  Lint_finding.dedup (per_file @ Lint_source.mli_coverage files)

(* Minimal flag parsing shared by the two thin executables:
   [--json FILE] mirrors the report as JSON, [--rule ID] (repeatable)
   filters to the given rules, everything else is a root. *)
let parse_args args =
  let rec go json rules roots = function
    | "--json" :: path :: rest -> go (Some path) rules roots rest
    | "--rule" :: id :: rest -> go json (id :: rules) roots rest
    | arg :: rest -> go json rules (arg :: roots) rest
    | [] -> (json, List.rev rules, List.rev roots)
  in
  go None [] [] args

let main ?(ppf = Format.std_formatter) ?json_out ?(rules = []) roots =
  let roots = if roots = [] then [ "lib"; "bin"; "bench" ] else roots in
  let findings = run roots in
  let findings =
    if rules = [] then findings
    else List.filter (fun f -> List.mem f.Lint_finding.rule rules) findings
  in
  Lint_finding.print_report ppf findings;
  (match json_out with
  | Some path ->
      let json = Lint_finding.to_json_string ~tool:"ipl_lint" findings in
      if path = "-" then Format.fprintf ppf "%s@." json
      else (
        let oc = open_out path in
        output_string oc json;
        output_char oc '\n';
        close_out oc)
  | None -> ());
  if Lint_finding.has_errors findings then 1 else 0
