let lint_file ?(siblings = []) (f : Lint_source.file) =
  let source = Lint_source.read_file f.Lint_source.path in
  let r = Lint_walker.walk ~file:f.Lint_source.path source in
  let layering =
    Lint_deps.check_file ~siblings ~dir:f.Lint_source.dir ~file:f.Lint_source.path
      r.Lint_walker.refs
  in
  Lint_walker.apply_suppressions r.Lint_walker.suppressions
    (r.Lint_walker.findings @ layering)

let run roots =
  let files = Lint_source.scan roots in
  let per_file =
    List.concat_map (fun f -> lint_file ~siblings:(Lint_source.siblings files f.Lint_source.dir) f) files
  in
  List.sort_uniq
    (fun a b ->
      match Lint_finding.compare a b with
      | 0 -> String.compare a.Lint_finding.message b.Lint_finding.message
      | c -> c)
    (per_file @ Lint_source.mli_coverage files)

let main ?(ppf = Format.std_formatter) roots =
  let roots = if roots = [] then [ "lib"; "bin"; "bench" ] else roots in
  let findings = run roots in
  Lint_finding.print_report ppf findings;
  if Lint_finding.has_errors findings then 1 else 0
