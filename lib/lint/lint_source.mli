(** Source discovery: walk the given roots for .ml/.mli files and classify
    them by directory (which keys the layering tables). *)

type kind = Impl | Intf

type file = { path : string; kind : kind; dir : string }

val scan : string list -> file list
(** Recursively collect .ml/.mli files under the given roots (files may be
    passed directly). Dot-directories are skipped; results are sorted. *)

val read_file : string -> string

val module_name : file -> string
(** Capitalized basename: the OCaml module the file defines. *)

val siblings : file list -> string -> string list
(** Module names defined in the given directory. *)

val in_lib : file -> bool
(** True when the file lives under lib/. *)

val mli_coverage : file list -> Lint_finding.t list
(** mli-coverage rule: every lib implementation needs a matching .mli. *)
