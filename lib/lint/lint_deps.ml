(* The dependency edges are recomputed from the parsetrees (the qualified
   module references Lint_walker collects), so they track what the code
   actually touches — the same information ocamldep extracts — rather than
   what the dune files declare. *)

let check_file ?(siblings = []) ~dir ~file (refs : Lint_walker.ref_site list) =
  match Lint_config.library_of_dir dir with
  | None ->
      if Lint_source.in_lib { Lint_source.path = file; kind = Lint_source.Impl; dir } then
        [
          Lint_finding.make ~rule:"layering" ~severity:(Lint_config.severity_of "layering")
            ~file ~line:1
            (Printf.sprintf
               "library directory %s is not registered in the layering table (Lint_config.libraries)"
               dir);
        ]
      else [] (* bin/ and bench/ may use every library *)
  | Some lib ->
      List.filter_map
        (fun (r : Lint_walker.ref_site) ->
          if
            List.mem r.Lint_walker.head Lint_config.wrapper_names
            && r.Lint_walker.head <> lib.Lint_config.wrapper
            && (not (List.mem r.Lint_walker.head lib.Lint_config.allowed))
            (* A sibling module shadows a like-named library wrapper inside
               its own library (e.g. Workload inside lib/fault), so such a
               reference is not a cross-library edge. *)
            && not (List.mem r.Lint_walker.head siblings)
          then
            Some
              (Lint_finding.make ~rule:"layering"
                 ~severity:(Lint_config.severity_of "layering") ~file ~line:r.Lint_walker.line
                 (Printf.sprintf "%s (library %s) may not depend on %s"
                    lib.Lint_config.wrapper lib.Lint_config.dir r.Lint_walker.head))
          else None)
        refs
