(** Orchestration: scan the roots, run the parsetree walker and the
    dependency checker on every file, apply suppressions, and report. *)

val lint_file : ?siblings:string list -> Lint_source.file -> Lint_finding.t list
(** All per-file rules (AST rules + layering) with suppressions applied.
    [siblings] are the module names of the file's own library (shadowing). *)

val run : string list -> Lint_finding.t list
(** Lint every .ml/.mli under the given roots, including mli-coverage.
    Deduplicated by (file, line, rule) and sorted deterministically. *)

val parse_args : string list -> string option * string list * string list
(** [(json_out, rules, roots)] from argv-style arguments: [--json FILE],
    repeatable [--rule ID], everything else a root. Shared by the thin
    ipl_lint / ipl_sema executables. *)

val main :
  ?ppf:Format.formatter ->
  ?json_out:string ->
  ?rules:string list ->
  string list ->
  int
(** Lint the roots (default: lib bin bench), print the report, optionally
    filter to the given rule ids and mirror the report to a JSON file
    ([-] for stdout), and return the exit status: 1 when any
    error-severity finding remains, else 0. *)
