(** Orchestration: scan the roots, run the parsetree walker and the
    dependency checker on every file, apply suppressions, and report. *)

val lint_file : ?siblings:string list -> Lint_source.file -> Lint_finding.t list
(** All per-file rules (AST rules + layering) with suppressions applied.
    [siblings] are the module names of the file's own library (shadowing). *)

val run : string list -> Lint_finding.t list
(** Lint every .ml/.mli under the given roots, including mli-coverage. *)

val main : ?ppf:Format.formatter -> string list -> int
(** Lint the roots (default: lib bin bench), print the report, and return
    the exit status: 1 when any error-severity finding remains, else 0. *)
