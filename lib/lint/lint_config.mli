(** Rule registry and repo-specific tables: the layering diagram, geometry
    literals, restricted flash entry points and file allowlists. *)

type rule = { id : string; severity : Lint_finding.severity; doc : string }

val rules : rule list
val find_rule : string -> rule option
val severity_of : string -> Lint_finding.severity

val geometry_literals : int list
val geometry_config_files : string list
(** Basenames allowed to contain raw geometry literals. *)

val flash_mutators : string list
(** Flash_chip operations only the storage layers may call directly. *)

val flash_ops : string list
(** Flash_chip operations whose results must not be discarded. *)

val chip_module_names : string list
(** Module path components identifying the chip ([Chip], [Flash_chip]). *)

val flash_call_allowed_dirs : string list
val bytes_unsafe_allowed_files : string list

type library = { dir : string; wrapper : string; allowed : string list }

val libraries : library list
(** The layering diagram: one entry per internal library with the wrapper
    modules it may reference. *)

val library_of_dir : string -> library option
val wrapper_names : string list

val mli_exempt_files : string list
