open Parsetree

type ref_site = { head : string; line : int }

type suppression = { rule : string; first_line : int; last_line : int }

type result = {
  findings : Lint_finding.t list;
  refs : ref_site list;
  suppressions : suppression list;
}

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum
let last_line_of (loc : Location.t) = loc.loc_end.Lexing.pos_lnum

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (a, _) -> flatten a

(* [@lint.allow "rule-id"] / [@lint.allow "a, b"]; a bare [@lint.allow]
   suppresses every rule over the attributed node. *)
let allow_rules_of_attr (attr : attribute) =
  if attr.attr_name.txt <> "lint.allow" then []
  else
    match attr.attr_payload with
    | PStr
        [
          {
            pstr_desc =
              Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _;
          };
        ] ->
        String.split_on_char ',' s |> List.map String.trim |> List.filter (fun r -> r <> "")
    | _ -> [ "*" ]

let dir_allows_flash_calls dir =
  List.exists
    (fun d -> d = dir || String.length dir > String.length d && String.sub dir 0 (String.length d + 1) = d ^ "/")
    Lint_config.flash_call_allowed_dirs

let walk ~file source =
  let findings = ref [] in
  let refs = ref [] in
  let suppressions = ref [] in
  let add_finding ~rule ~line msg =
    findings :=
      Lint_finding.make ~rule ~severity:(Lint_config.severity_of rule) ~file ~line msg
      :: !findings
  in
  let note_lid lid loc =
    match flatten lid with
    | head :: _ :: _ when head <> "" && head.[0] >= 'A' && head.[0] <= 'Z' ->
        refs := { head; line = line_of loc } :: !refs
    | _ -> ()
  in
  let note_suppress attrs (loc : Location.t) =
    List.iter
      (fun attr ->
        List.iter
          (fun rule ->
            suppressions :=
              { rule; first_line = line_of loc; last_line = last_line_of loc } :: !suppressions)
          (allow_rules_of_attr attr))
      attrs
  in
  let basename = Filename.basename file in
  let dir = Filename.dirname file in

  (* ---- rule helpers ------------------------------------------------ *)
  let check_geometry s loc =
    match int_of_string_opt s with
    | Some n
      when List.mem n Lint_config.geometry_literals
           && not (List.mem basename Lint_config.geometry_config_files) ->
        add_finding ~rule:"no-magic-geometry" ~line:(line_of loc)
          (Printf.sprintf
             "raw geometry literal %d; derive it from Flash_config/Ipl_config/Disk_config" n)
    | _ -> ()
  in
  let check_banned_ident lid loc =
    match flatten lid with
    | [ "Obj"; "magic" ] ->
        add_finding ~rule:"banned-construct" ~line:(line_of loc) "Obj.magic is forbidden"
    | [ "Bytes"; fn ]
      when String.length fn > 7
           && String.sub fn 0 7 = "unsafe_"
           && not (List.mem file Lint_config.bytes_unsafe_allowed_files) ->
        add_finding ~rule:"banned-construct" ~line:(line_of loc)
          (Printf.sprintf "Bytes.%s outside lib/util/byte_arena.ml" fn)
    | _ -> ()
  in
  let fn_lid e = match e.pexp_desc with Pexp_ident l -> Some l.txt | _ -> None in
  let flash_op_app ops e =
    match e.pexp_desc with
    | Pexp_apply (fn, _) -> (
        match fn_lid fn with
        | Some lid -> (
            match List.rev (flatten lid) with
            | op :: m :: _ when List.mem op ops && List.mem m Lint_config.chip_module_names ->
                Some op
            | _ -> None)
        | None -> None)
    | _ -> None
  in
  (* Only Bytes operations that return a fresh bytes value: comparing their
     result polymorphically compares contents structurally. Int/char-returning
     accessors (length, get, get_uint8, ...) compare scalars and are fine. *)
  let bytes_returning =
    [ "sub"; "create"; "make"; "copy"; "cat"; "concat"; "of_string"; "init"; "extend"; "map"; "mapi" ]
  in
  let is_bytes_app e =
    match e.pexp_desc with
    | Pexp_apply (fn, _) -> (
        match fn_lid fn with
        | Some lid -> (
            match flatten lid with
            | [ "Bytes"; op ] -> List.mem op bytes_returning
            | _ -> false)
        | None -> false)
    | _ -> false
  in
  let check_apply e =
    (match e.pexp_desc with
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Longident.Lident "ignore"; _ }; _ }, [ (_, arg) ]) -> (
        match flash_op_app Lint_config.flash_ops arg with
        | Some op ->
            add_finding ~rule:"no-ignored-flash-result" ~line:(line_of e.pexp_loc)
              (Printf.sprintf "result of Chip.%s discarded with ignore; bind and check it" op)
        | None -> ())
    | _ -> ());
    (match flash_op_app Lint_config.flash_mutators e with
    | Some op when not (dir_allows_flash_calls dir) ->
        add_finding ~rule:"flash-call" ~line:(line_of e.pexp_loc)
          (Printf.sprintf
             "direct call to Chip.%s outside the storage layers (lib/core, lib/baseline, lib/ftl)"
             op)
    | _ -> ());
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = cmp; _ }; _ }, args)
      when (match cmp with
           | Longident.Lident ("=" | "<>" | "compare") -> true
           | Longident.Ldot (Longident.Lident "Stdlib", ("=" | "<>" | "compare")) -> true
           | _ -> false)
           && List.exists (fun (_, a) -> is_bytes_app a) args ->
        add_finding ~rule:"banned-construct" ~line:(line_of e.pexp_loc)
          "polymorphic compare on a Bytes value; use Bytes.equal / Bytes.compare"
    | _ -> ()
  in
  let rec catch_all p =
    match p.ppat_desc with
    | Ppat_any -> Some None
    | Ppat_var v -> Some (Some v.txt)
    | Ppat_alias (inner, v) -> (
        match catch_all inner with Some _ -> Some (Some v.txt) | None -> None)
    | Ppat_or (a, b) -> ( match catch_all a with Some r -> Some r | None -> catch_all b)
    | Ppat_constraint (inner, _) -> catch_all inner
    | _ -> None
  in
  let uses_var name e =
    let found = ref false in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self ex ->
            (match ex.pexp_desc with
            | Pexp_ident { txt = Longident.Lident n; _ } when n = name -> found := true
            | _ -> ());
            Ast_iterator.default_iterator.expr self ex);
      }
    in
    it.expr it e;
    !found
  in
  let check_try_case c =
    if c.pc_guard = None then
      match catch_all c.pc_lhs with
      | Some name ->
          let discards =
            match name with None -> true | Some n -> not (uses_var n c.pc_rhs)
          in
          if discards then
            add_finding ~rule:"no-silent-swallow" ~line:(line_of c.pc_lhs.ppat_loc)
              "catch-all exception handler discards the exception; narrow it or report via \
               Logs.warn"
      | None -> ()
  in

  (* ---- iterator ---------------------------------------------------- *)
  let default = Ast_iterator.default_iterator in
  let iterator =
    {
      default with
      expr =
        (fun self e ->
          note_suppress e.pexp_attributes e.pexp_loc;
          (match e.pexp_desc with
          | Pexp_ident lid ->
              note_lid lid.txt lid.loc;
              check_banned_ident lid.txt lid.loc
          | Pexp_construct (lid, _) -> note_lid lid.txt lid.loc
          | Pexp_field (_, lid) -> note_lid lid.txt lid.loc
          | Pexp_setfield (_, lid, _) -> note_lid lid.txt lid.loc
          | Pexp_record (fields, _) ->
              List.iter (fun (lid, _) -> note_lid lid.Location.txt lid.Location.loc) fields
          | Pexp_constant (Pconst_integer (s, None)) -> check_geometry s e.pexp_loc
          | Pexp_try (_, cases) -> List.iter check_try_case cases
          | Pexp_apply _ -> check_apply e
          | _ -> ());
          default.expr self e);
      pat =
        (fun self p ->
          note_suppress p.ppat_attributes p.ppat_loc;
          (match p.ppat_desc with
          | Ppat_construct (lid, _) -> note_lid lid.txt lid.loc
          | Ppat_record (fields, _) ->
              List.iter (fun (lid, _) -> note_lid lid.Location.txt lid.Location.loc) fields
          | _ -> ());
          default.pat self p);
      typ =
        (fun self t ->
          (match t.ptyp_desc with
          | Ptyp_constr (lid, _) | Ptyp_class (lid, _) -> note_lid lid.txt lid.loc
          | _ -> ());
          default.typ self t);
      module_expr =
        (fun self m ->
          note_suppress m.pmod_attributes m.pmod_loc;
          (match m.pmod_desc with Pmod_ident lid -> note_lid lid.txt lid.loc | _ -> ());
          default.module_expr self m);
      module_type =
        (fun self m ->
          (match m.pmty_desc with
          | Pmty_ident lid | Pmty_alias lid -> note_lid lid.txt lid.loc
          | _ -> ());
          default.module_type self m);
      value_binding =
        (fun self vb ->
          note_suppress vb.pvb_attributes vb.pvb_loc;
          (match vb.pvb_pat.ppat_desc with
          | Ppat_any -> (
              match flash_op_app Lint_config.flash_ops vb.pvb_expr with
              | Some op ->
                  add_finding ~rule:"no-ignored-flash-result" ~line:(line_of vb.pvb_loc)
                    (Printf.sprintf "result of Chip.%s discarded with 'let _'; bind and check it"
                       op)
              | None -> ())
          | _ -> ());
          default.value_binding self vb);
      module_binding =
        (fun self mb ->
          note_suppress mb.pmb_attributes mb.pmb_loc;
          default.module_binding self mb);
      structure_item =
        (fun self si ->
          (match si.pstr_desc with
          | Pstr_attribute attr ->
              (* [@@@lint.allow "rule"] suppresses for the whole file. *)
              List.iter
                (fun rule ->
                  suppressions := { rule; first_line = 1; last_line = max_int } :: !suppressions)
                (allow_rules_of_attr attr)
          | _ -> ());
          default.structure_item self si);
      signature_item =
        (fun self si ->
          (match si.psig_desc with
          | Psig_attribute attr ->
              List.iter
                (fun rule ->
                  suppressions := { rule; first_line = 1; last_line = max_int } :: !suppressions)
                (allow_rules_of_attr attr)
          | _ -> ());
          default.signature_item self si);
    }
  in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  (try
     if Filename.check_suffix file ".mli" then
       iterator.signature iterator (Parse.interface lexbuf)
     else iterator.structure iterator (Parse.implementation lexbuf)
   with exn ->
     add_finding ~rule:"parse-error" ~line:(line_of (Location.curr lexbuf))
       (Printexc.to_string exn));
  { findings = !findings; refs = !refs; suppressions = !suppressions }

let suppressed suppressions (f : Lint_finding.t) =
  List.exists
    (fun s ->
      (s.rule = "*" || s.rule = f.Lint_finding.rule)
      && f.Lint_finding.line >= s.first_line
      && f.Lint_finding.line <= s.last_line)
    suppressions

let apply_suppressions suppressions findings =
  List.filter (fun f -> not (suppressed suppressions f)) findings
