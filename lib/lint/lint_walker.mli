(** Parsetree pass: parses one .ml/.mli and runs the per-AST rules
    (no-silent-swallow, no-ignored-flash-result, no-magic-geometry,
    banned-construct, flash-call), while collecting the qualified module
    references the dependency checker consumes and the spans covered by
    [@lint.allow] suppressions. *)

type ref_site = { head : string; line : int }
(** A qualified reference [Head.rest...] at [line]. *)

type suppression = { rule : string; first_line : int; last_line : int }
(** [@lint.allow "rule"] over a node spanning the given lines; rule ["*"]
    (a bare [@lint.allow]) suppresses every rule. *)

type result = {
  findings : Lint_finding.t list;  (** raw, before suppression *)
  refs : ref_site list;
  suppressions : suppression list;
}

val walk : file:string -> string -> result
(** Parse [source] (interface when [file] ends in .mli, implementation
    otherwise) and run the AST rules. Parse failures yield a single
    [parse-error] finding. The geometry, Bytes.unsafe and flash-call
    allowlists are keyed on [file]. *)

val apply_suppressions : suppression list -> Lint_finding.t list -> Lint_finding.t list
