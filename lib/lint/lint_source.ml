type kind = Impl | Intf

type file = { path : string; kind : kind; dir : string }

let normalize path =
  let path =
    if String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  (* Collapse any trailing '/' so "lib/" and "lib" classify alike. *)
  if String.length path > 1 && path.[String.length path - 1] = '/' then
    String.sub path 0 (String.length path - 1)
  else path

let kind_of_path path =
  if Filename.check_suffix path ".ml" then Some Impl
  else if Filename.check_suffix path ".mli" then Some Intf
  else None

let rec scan_dir acc dir =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc entry ->
      if String.length entry > 0 && entry.[0] = '.' then acc (* _build object dirs etc. *)
      else
        let path = Filename.concat dir entry in
        if Sys.is_directory path then scan_dir acc path
        else
          match kind_of_path path with
          | Some kind -> { path; kind; dir } :: acc
          | None -> acc)
    acc entries

let scan roots =
  let roots = List.map normalize roots in
  let files =
    List.fold_left
      (fun acc root ->
        if not (Sys.file_exists root) then acc
        else if Sys.is_directory root then scan_dir acc root
        else
          match kind_of_path root with
          | Some kind -> { path = root; kind; dir = Filename.dirname root } :: acc
          | None -> acc)
      [] roots
  in
  List.sort (fun a b -> String.compare a.path b.path) files

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let module_name f =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename f.path))

let siblings files dir =
  List.filter_map (fun f -> if f.dir = dir then Some (module_name f) else None) files
  |> List.sort_uniq String.compare

let in_lib f =
  String.length f.dir >= 4 && (String.sub f.dir 0 4 = "lib/" || f.dir = "lib")

(* Every lib implementation must come with an interface. *)
let mli_coverage files =
  let intfs = Hashtbl.create 64 in
  List.iter (fun f -> if f.kind = Intf then Hashtbl.replace intfs f.path ()) files;
  List.filter_map
    (fun f ->
      if
        f.kind = Impl && in_lib f
        && (not (Hashtbl.mem intfs (f.path ^ "i")))
        && not (List.mem f.path Lint_config.mli_exempt_files)
      then
        Some
          (Lint_finding.make ~rule:"mli-coverage"
             ~severity:(Lint_config.severity_of "mli-coverage") ~file:f.path ~line:1
             (Printf.sprintf "missing interface %si" f.path))
      else None)
    files
