(** Layering rule: checks the module references of one file against the
    dependency whitelist in {!Lint_config.libraries}. *)

val check_file :
  ?siblings:string list ->
  dir:string ->
  file:string ->
  Lint_walker.ref_site list ->
  Lint_finding.t list
(** [check_file ~siblings ~dir ~file refs] returns a [layering] finding for
    every reference to an internal library wrapper that [dir]'s library is
    not allowed to depend on. [siblings] are the module names of the file's
    own library; they shadow like-named wrappers and are skipped. Files
    under unregistered lib/ directories get a finding demanding
    registration; bin/ and bench/ files are exempt. *)
