type rule = { id : string; severity : Lint_finding.severity; doc : string }

let rules =
  [
    {
      id = "layering";
      severity = Lint_finding.Error;
      doc =
        "library dependency whitelist: ipl_util depends on nothing internal, flash_sim only on \
         ipl_util, and every other library only on the layers below it";
    };
    {
      id = "flash-call";
      severity = Lint_finding.Error;
      doc =
        "only the multi-channel device (lib/device) and the raw-flash storage designs \
         (lib/baseline, lib/ftl) may invoke Flash_chip program/erase operations directly; \
         everything else goes through Device.Flash_device";
    };
    {
      id = "no-silent-swallow";
      severity = Lint_finding.Error;
      doc =
        "a 'try ... with' catch-all that discards the exception hides flash protocol violations; \
         narrow the handler or report via Logs";
    };
    {
      id = "no-ignored-flash-result";
      severity = Lint_finding.Error;
      doc =
        "'ignore (Chip.read_sectors ...)' (or 'let _ = ...') makes flash errors invisible; bind \
         the result and check it";
    };
    {
      id = "no-magic-geometry";
      severity = Lint_finding.Error;
      doc =
        "raw chip-geometry literals (512/2048/8192/16384/131072) outside the config modules \
         silently break when the chip configuration changes";
    };
    {
      id = "banned-construct";
      severity = Lint_finding.Error;
      doc =
        "Obj.magic anywhere, Bytes.unsafe_* outside lib/util/byte_arena.ml, and polymorphic \
         compare applied to Bytes.* results are forbidden";
    };
    {
      id = "mli-coverage";
      severity = Lint_finding.Error;
      doc = "every lib/**.ml must have a matching .mli so the public surface is explicit";
    };
    {
      id = "parse-error";
      severity = Lint_finding.Error;
      doc = "the file could not be parsed; the linter cannot vouch for it";
    };
  ]

let find_rule id = List.find_opt (fun r -> r.id = id) rules

let severity_of id =
  match find_rule id with Some r -> r.severity | None -> Lint_finding.Error

(* Flat chip geometry numbers of the default configuration: sector (512 B),
   physical page (2 KB), database page / log region (8 KB), and erase block
   (128 KB), plus 16384 (block sector count variants seen in earlier
   drafts). Kept as literals only here and in the config modules below. *)
let geometry_literals = [ 512; 2048; 8192; 16384; 131072 ]

(* Basenames allowed to define geometry: the three config modules, and this
   module (the list above). *)
let geometry_config_files =
  [ "flash_config.ml"; "ipl_config.ml"; "disk_config.ml"; "lint_config.ml" ]

(* Flash_chip mutators whose direct call sites are restricted. *)
let flash_mutators = [ "write_sectors"; "program_sectors"; "erase_block" ]

(* Flash_chip operations whose results must not be discarded. *)
let flash_ops =
  [ "read_sectors"; "write_sectors"; "program_sectors"; "erase_block"; "invalidate_sectors" ]

(* Module path components identifying the chip in a call like
   [Chip.read_sectors] or [Flash_sim.Flash_chip.read_sectors]. *)
let chip_module_names = [ "Chip"; "Flash_chip" ]

(* Directories whose code may program/erase the chip directly. lib/flash
   is the chip itself; lib/device is the multi-channel device that now
   owns all chip access for the IPL stack (lib/core and lib/resilience
   talk to Device.Flash_device, not the chip); lib/baseline and lib/ftl
   are storage designs deliberately built on the raw serial chip. *)
let flash_call_allowed_dirs = [ "lib/flash"; "lib/device"; "lib/baseline"; "lib/ftl" ]

(* The only module allowed to use Bytes.unsafe_*. *)
let bytes_unsafe_allowed_files = [ "lib/util/byte_arena.ml" ]

type library = { dir : string; wrapper : string; allowed : string list }

(* The layering diagram (also in DESIGN.md "Static invariants"): [allowed]
   lists the wrapper modules of the internal libraries the library may
   reference. It mirrors the dune files; the linter recomputes the edges
   from the parsetrees, so a reference that sneaks in without a dune change
   (via a re-export) is still caught. *)
let libraries =
  [
    { dir = "lib/util"; wrapper = "Ipl_util"; allowed = [] };
    { dir = "lib/par"; wrapper = "Par"; allowed = [] };
    { dir = "lib/lint"; wrapper = "Lint"; allowed = [] };
    { dir = "lib/sema"; wrapper = "Sema"; allowed = [ "Lint" ] };
    { dir = "lib/obs"; wrapper = "Obs"; allowed = [ "Ipl_util" ] };
    { dir = "lib/cache"; wrapper = "Cache"; allowed = [ "Ipl_util" ] };
    { dir = "lib/recovery"; wrapper = "Recovery"; allowed = [ "Ipl_util" ] };
    { dir = "lib/flash"; wrapper = "Flash_sim"; allowed = [ "Ipl_util"; "Obs" ] };
    { dir = "lib/device"; wrapper = "Device"; allowed = [ "Ipl_util"; "Obs"; "Flash_sim" ] };
    {
      dir = "lib/resilience";
      wrapper = "Resilience";
      allowed = [ "Ipl_util"; "Obs"; "Flash_sim"; "Device" ];
    };
    { dir = "lib/disk"; wrapper = "Disk_sim"; allowed = [ "Ipl_util" ] };
    { dir = "lib/storage"; wrapper = "Storage"; allowed = [ "Ipl_util" ] };
    { dir = "lib/buffer"; wrapper = "Bufmgr"; allowed = [ "Ipl_util"; "Obs" ] };
    { dir = "lib/trace"; wrapper = "Reftrace"; allowed = [ "Ipl_util" ] };
    {
      dir = "lib/core";
      wrapper = "Ipl_core";
      allowed =
        [
          "Ipl_util";
          "Obs";
          "Flash_sim";
          "Device";
          "Resilience";
          "Storage";
          "Bufmgr";
          "Cache";
          "Recovery";
        ];
    };
    { dir = "lib/btree"; wrapper = "Btree"; allowed = [ "Ipl_util"; "Storage"; "Ipl_core" ] };
    { dir = "lib/txn"; wrapper = "Ipl_txn"; allowed = [ "Ipl_util"; "Ipl_core"; "Par" ] };
    { dir = "lib/ftl"; wrapper = "Ftl"; allowed = [ "Ipl_util"; "Flash_sim"; "Disk_sim" ] };
    {
      dir = "lib/sim";
      wrapper = "Iplsim";
      allowed = [ "Ipl_util"; "Reftrace"; "Flash_sim"; "Device"; "Ipl_core" ];
    };
    {
      dir = "lib/relation";
      wrapper = "Relation";
      allowed = [ "Ipl_util"; "Storage"; "Ipl_core"; "Btree" ];
    };
    {
      dir = "lib/tpcc";
      wrapper = "Tpcc";
      allowed =
        [ "Ipl_util"; "Storage"; "Bufmgr"; "Ipl_core"; "Btree"; "Relation"; "Reftrace"; "Flash_sim" ];
    };
    {
      dir = "lib/baseline";
      wrapper = "Baseline";
      allowed = [ "Ipl_util"; "Flash_sim"; "Disk_sim"; "Ftl"; "Reftrace"; "Iplsim" ];
    };
    {
      dir = "lib/workload";
      wrapper = "Workload";
      allowed =
        [
          "Ipl_util";
          "Obs";
          "Flash_sim";
          "Device";
          "Disk_sim";
          "Ftl";
          "Ipl_core";
          "Ipl_txn";
          "Resilience";
          "Baseline";
          "Par";
        ];
    };
    {
      dir = "lib/fault";
      wrapper = "Fault";
      allowed =
        [ "Ipl_util"; "Flash_sim"; "Device"; "Resilience"; "Storage"; "Ipl_core"; "Ipl_txn"; "Par" ];
    };
  ]

let library_of_dir dir = List.find_opt (fun l -> l.dir = dir) libraries
let wrapper_names = List.map (fun l -> l.wrapper) libraries

(* lib/**.ml files exempt from mli-coverage (none today; keep the mechanism
   so future exemptions are a reviewed config change, not a silent hole). *)
let mli_exempt_files : string list = []
