module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config

type query = Q1 | Q2 | Q3 | Q4 | Q5 | Q6

let all = [ Q1; Q2; Q3; Q4; Q5; Q6 ]

let name = function
  | Q1 -> "Q1 (sequential read)"
  | Q2 -> "Q2 (random 16-page chunks)"
  | Q3 -> "Q3 (stride-16 read)"
  | Q4 -> "Q4 (sequential update)"
  | Q5 -> "Q5 (stride-16 update)"
  | Q6 -> "Q6 (stride-128 update)"

let is_write = function Q1 | Q2 | Q3 -> false | Q4 | Q5 | Q6 -> true

let table_pages = 64_000
let page_size = Ipl_core.Ipl_config.default.Ipl_core.Ipl_config.page_size

(* Stride pattern: 0, s, 2s, ..., then 1, s+1, ... — every page once. *)
let stride_pattern s =
  Seq.concat
    (Seq.map
       (fun start ->
         Seq.map (fun i -> ((i * s) + start, 1)) (Seq.init (table_pages / s) Fun.id))
       (Seq.init s Fun.id))

let pattern ?(seed = 7) q =
  match q with
  | Q1 | Q4 -> Seq.init table_pages (fun p -> (p, 1))
  | Q2 ->
      let chunks = Array.init (table_pages / 16) (fun i -> i * 16) in
      Ipl_util.Rng.shuffle (Ipl_util.Rng.of_int seed) chunks;
      Seq.map (fun first -> (first, 16)) (Array.to_seq chunks)
  | Q3 | Q5 -> stride_pattern 16
  | Q6 -> stride_pattern 128

type measurement = {
  query : query;
  elapsed : float;
  erases : int;
  segment_evictions : int;
}

let run ?seed q (device : Ftl.Device.t) ~erases ~segment_evictions =
  Seq.iter
    (fun (first, count) ->
      for p = first to first + count - 1 do
        if is_write q then device.Ftl.Device.write_page p else device.Ftl.Device.read_page p
      done)
    (pattern ?seed q);
  device.Ftl.Device.flush ();
  { query = q; elapsed = device.Ftl.Device.elapsed (); erases = erases (); segment_evictions = segment_evictions () }

let run_on_disk ?config q =
  let disk = Disk_sim.Disk.create ?config () in
  let device = Ftl.Device.of_disk disk ~page_size ~num_pages:table_pages in
  run q device ~erases:(fun () -> 0) ~segment_evictions:(fun () -> 0)

(* A chip fault during a whole-table sweep is fatal to the measurement,
   not recoverable: surface it as a plain failure rather than leaking a
   device exception to the caller. *)
let fatal_faults f =
  try f () with
  | (Chip.Read_error _ | Chip.Program_error _ | Chip.Erase_error _ | Chip.Worn_out _) as e ->
      failwith ("Queries: device fault during sweep: " ^ Printexc.to_string e)

let run_on_flash ?config q =
  fatal_faults (fun () ->
      (* 4 000 blocks hold the table; leave spares for the FTL. *)
      let base = FConfig.default ~materialize:false () in
      let blocks = (table_pages * page_size / base.FConfig.block_size) + 16 in
      let chip = Chip.create { base with FConfig.num_blocks = blocks } in
      let ftl = Ftl.Block_ftl.create ?config chip ~page_size in
      Ftl.Block_ftl.format ftl;
      run q (Ftl.Block_ftl.device ftl)
        ~erases:(fun () -> (Chip.stats chip).Flash_sim.Flash_stats.block_erases)
        ~segment_evictions:(fun () ->
          (Ftl.Block_ftl.stats ftl).Ftl.Block_ftl.segment_evictions))

let table3 ?disk ?flash () =
  List.map (fun q -> (q, run_on_disk ?config:disk q, run_on_flash ?config:flash q)) all

let random_to_sequential_ratios results kind medium =
  let pick q =
    let _, d, f = List.find (fun (q', _, _) -> q' = q) results in
    match medium with `Disk -> d.elapsed | `Flash -> f.elapsed
  in
  let base, randoms =
    match kind with
    | `Read -> (pick Q1, [ pick Q2; pick Q3 ])
    | `Write -> (pick Q4, [ pick Q5; pick Q6 ])
  in
  let ratios = List.map (fun t -> t /. base) randoms in
  (List.fold_left Float.min (List.hd ratios) ratios,
   List.fold_left Float.max (List.hd ratios) ratios)
