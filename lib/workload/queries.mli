(** The Section 4.1 experiment: queries Q1–Q6 over a 640 000-record table
    (64 000 pages of 8 KB; 16 pages — one erase unit — per 128 KB block)
    run against the disk model and the DRAM-buffered flash SSD model.

    Access patterns, from the paper:
    - Q1: read the whole table sequentially.
    - Q2: read random 16-page chunks, each chunk contiguously, every page
          once.
    - Q3: read at stride 16 (0, 16, 32, ..., then 1, 17, 33, ...).
    - Q4: update every page sequentially.
    - Q5: update at stride 16 pages (= one erase unit).
    - Q6: update at stride 128 pages (= one DRAM-buffer segment). *)

type query = Q1 | Q2 | Q3 | Q4 | Q5 | Q6

val all : query list
val name : query -> string
val is_write : query -> bool

val table_pages : int
(** 64 000 *)

val pattern : ?seed:int -> query -> (int * int) Seq.t
(** The access pattern as [(first_page, contiguous_count)] requests. *)

type measurement = {
  query : query;
  elapsed : float;
  erases : int;  (** flash block erases; 0 on disk *)
  segment_evictions : int;  (** FTL write-buffer evictions; 0 on disk *)
}

val run_on_disk : ?config:Disk_sim.Disk_config.t -> query -> measurement
val run_on_flash : ?config:Ftl.Block_ftl.config -> query -> measurement
(** Both build a fresh device holding the populated table, run the
    query's pattern, flush, and report simulated time. *)

val table3 :
  ?disk:Disk_sim.Disk_config.t ->
  ?flash:Ftl.Block_ftl.config ->
  unit ->
  (query * measurement * measurement) list
(** All six queries on both devices: the reproduction of Table 3. *)

val random_to_sequential_ratios :
  (query * measurement * measurement) list ->
  [ `Read | `Write ] -> [ `Disk | `Flash ] -> float * float
(** Table 2: (min, max) ratio of the random queries' times to the
    sequential query's time, per workload class and medium. *)
