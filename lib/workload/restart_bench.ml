(* Availability benchmark: how long after a crash until the engine
   commits its first transaction? An eager restart rescans every erase
   unit's in-page log region before returning; a lazy restart (fuzzy
   checkpoint + on-demand page repair) reads only the post-checkpoint
   deltas and repays the covered prefixes at first touch. Both are
   measured on the simulated device clock over bit-identical crashed
   flash states (the populate run is deterministic), and the recovered
   logical content is digest-compared to prove the shortcut changed the
   read schedule, not the data. *)

module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module Dev = Device.Flash_device
module Engine = Ipl_core.Ipl_engine
module Config = Ipl_core.Ipl_config
module Json = Ipl_util.Json
module Rng = Ipl_util.Rng

type spec = {
  name : string;
  pages : int;
  transactions : int;
  seed : int;
  num_blocks : int;
  checkpoint_every : int;
}

(* Three database sizes. The update stream round-robins over the pages,
   so every erase unit carries a partially filled log region when the
   run stops — the state an eager restart pays to rescan. *)
let specs =
  [
    { name = "small"; pages = 30; transactions = 240; seed = 11; num_blocks = 24; checkpoint_every = 32 };
    { name = "medium"; pages = 90; transactions = 900; seed = 11; num_blocks = 40; checkpoint_every = 32 };
    { name = "large"; pages = 180; transactions = 2400; seed = 11; num_blocks = 64; checkpoint_every = 32 };
  ]

type point = {
  name : string;
  pages : int;
  transactions : int;
  eager_s : float;
  lazy_s : float;
  eager_restart_log_reads : int;
  lazy_restart_log_reads : int;
  repair_pending : int;
  warm_entries : int;
  digest_match : bool;
}

let payload = 64

let config spec ~lazy_recovery =
  {
    Config.default with
    Config.recovery_enabled = true;
    buffer_pages = 32;
    checkpoint_every = spec.checkpoint_every;
    lazy_recovery;
  }

let ok = function
  | Ok v -> v
  | Error e -> failwith ("Restart_bench: engine error: " ^ Engine.error_to_string e)

(* The sweep runs on fault-free chips through the Unsafe shim; a device
   fault here means the fixture is broken, so abort as a plain failure
   instead of leaking a device exception to the caller. *)
let fatal f =
  try f () with
  | ( Chip.Read_error _ | Chip.Program_error _ | Chip.Erase_error _ | Chip.Worn_out _
    | Resilience.Bbm.Degraded | Resilience.Bbm.Uncorrectable _ ) as e ->
      failwith ("Restart_bench: device fault: " ^ Printexc.to_string e)

(* Deterministic pre-crash history: seed one record per page, then a
   stream of small update transactions round-robining over the pages.
   The run simply stops after the last commit — no checkpoint call, no
   quiesce — leaving the flash state a crash would leave. *)
let populate spec chip =
  let engine = Engine.create ~config:(config spec ~lazy_recovery:false) chip in
  let rng = Rng.of_int spec.seed in
  let fresh () = Bytes.of_string (Rng.alpha_string rng ~min:payload ~max:payload) in
  let pages = Array.init spec.pages (fun _ -> Engine.Unsafe.allocate_page engine) in
  let tx = Engine.Unsafe.begin_txn engine in
  Array.iter
    (fun p -> ignore (ok (Engine.Unsafe.insert engine ~tx ~page:p (fresh ())) : int))
    pages;
  Engine.Unsafe.commit engine tx;
  for i = 0 to spec.transactions - 1 do
    let tx = Engine.Unsafe.begin_txn engine in
    let p = pages.(i mod spec.pages) in
    ok (Engine.Unsafe.update engine ~tx ~page:p ~slot:0 (fresh ()));
    Engine.Unsafe.commit engine tx
  done;
  pages

(* The availability probe: one ordinary transaction — read a record,
   update it, commit. Time-to-first-transaction is the simulated-clock
   span from just before [Engine.restart] to this commit's barrier. *)
let first_txn engine page =
  let tx = Engine.Unsafe.begin_txn engine in
  (match Engine.Unsafe.read engine ~page ~slot:0 with
  | Some _ -> ()
  | None -> failwith "Restart_bench: seeded record missing");
  ok (Engine.Unsafe.update engine ~tx ~page ~slot:0 (Bytes.make payload 'z'));
  Engine.Unsafe.commit engine tx

(* Logical digest over every page's slot-0 record — CRC-32 folded in page
   order. Equal digests across the eager and lazy engines mean identical
   recovered content (reading every page also drives the lazy engine's
   remaining first-touch repairs). *)
let digest engine pages =
  Array.fold_left
    (fun acc page ->
      match Engine.Unsafe.read engine ~page ~slot:0 with
      | Some b -> Ipl_util.Checksum.crc32 ~init:acc b ~pos:0 ~len:(Bytes.length b)
      | None -> Ipl_util.Checksum.crc32 ~init:acc (Bytes.of_string "\xff") ~pos:0 ~len:1)
    0 pages

let log_reads engine =
  (Engine.stats engine).Engine.storage.Ipl_core.Ipl_storage.log_sector_reads

let restart_measured spec ~lazy_recovery =
  let chip = Chip.create (FConfig.default ~num_blocks:spec.num_blocks ()) in
  let pages = populate spec chip in
  let t0 = Chip.elapsed chip in
  let engine, _aborted = Engine.restart ~config:(config spec ~lazy_recovery) chip in
  let restart_reads = log_reads engine in
  let pending = Engine.repair_pending engine in
  first_txn engine pages.(0);
  let ttft = Dev.elapsed (Engine.device engine) -. t0 in
  (engine, pages, ttft, restart_reads, pending)

let run_point spec =
  let eng_e, pages_e, eager_s, eager_reads, _ =
    restart_measured spec ~lazy_recovery:false
  in
  let eng_l, pages_l, lazy_s, lazy_reads, pending =
    restart_measured spec ~lazy_recovery:true
  in
  let n = ok (Engine.drain_repairs eng_l ~max_eus:max_int) in
  ignore (n : int);
  let digest_match = digest eng_e pages_e = digest eng_l pages_l in
  let warm =
    (Engine.stats eng_l).Engine.storage.Ipl_core.Ipl_storage.log_cache_warm_entries
  in
  {
    name = spec.name;
    pages = spec.pages;
    transactions = spec.transactions;
    eager_s;
    lazy_s;
    eager_restart_log_reads = eager_reads;
    lazy_restart_log_reads = lazy_reads;
    repair_pending = pending;
    warm_entries = warm;
    digest_match;
  }

(* Each size point builds its own chips and engines from scratch, so the
   sweep fans across the pool; results come back in spec order either
   way, and every measurement is simulated-clock, so the points are
   identical for any job count. *)
let run ?(jobs = 1) () =
  fatal (fun () ->
      Par.Domain_pool.with_pool ~jobs (fun pool ->
          Array.to_list
            (Par.Domain_pool.parallel_map pool run_point (Array.of_list specs))))

let point_json p =
  Json.Obj
    [
      ("name", Json.String p.name);
      ("pages", Json.Int p.pages);
      ("transactions", Json.Int p.transactions);
      ("eager_s", Json.Float p.eager_s);
      ("lazy_s", Json.Float p.lazy_s);
      ("eager_restart_log_reads", Json.Int p.eager_restart_log_reads);
      ("lazy_restart_log_reads", Json.Int p.lazy_restart_log_reads);
      ("repair_pending_after_restart", Json.Int p.repair_pending);
      ("warm_entries_after_drain", Json.Int p.warm_entries);
      ("digest_match", Json.Bool p.digest_match);
    ]

let to_json points =
  let last = List.nth points (List.length points - 1) in
  Json.Obj
    [
      ("specs", Json.List (List.map point_json points));
      ( "time_to_first_txn",
        Json.Obj
          [ ("eager_s", Json.Float last.eager_s); ("lazy_s", Json.Float last.lazy_s) ] );
    ]

let pp ppf points =
  Format.fprintf ppf "@[<v>restart availability (simulated time to first transaction):@,";
  List.iter
    (fun p ->
      Format.fprintf ppf
        "%-6s %4d pages %5d txns: eager %.6fs (%d log reads) | lazy %.6fs (%d log \
         reads, %d units deferred, %d re-warmed) %s@,"
        p.name p.pages p.transactions p.eager_s p.eager_restart_log_reads p.lazy_s
        p.lazy_restart_log_reads p.repair_pending p.warm_entries
        (if p.digest_match then "[digests equal]" else "[DIGEST MISMATCH]"))
    points;
  Format.fprintf ppf "@]"
