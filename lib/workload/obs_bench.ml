(* Instrumented end-to-end benchmark: run one deterministic OLTP-style
   workload on the real IPL engine with the observability layer installed,
   then replay the physical page traffic it generated on the two
   conventional flash designs (sequential-logging and in-place). The
   result is one schema-stable JSON document (BENCH_ipl.json) holding
   per-operation latency histograms and merge/overflow/wear summaries for
   all three backends — the data behind the paper's Figure 8 style
   "where does the time go" discussion. *)

module Chip = Flash_sim.Flash_chip
module Dev = Device.Flash_device
module FConfig = Flash_sim.Flash_config
module FStats = Flash_sim.Flash_stats
module Engine = Ipl_core.Ipl_engine
module Config = Ipl_core.Ipl_config
module Json = Ipl_util.Json
module Rng = Ipl_util.Rng

type spec = {
  seed : int;
  transactions : int;
  pages : int;
  slots_per_page : int;
  payload : int;
  abort_fraction : float;
  reads_per_txn : int;
  buffer_pages : int;
  compact_every : int;
  num_blocks : int;
  spare_blocks : int;
  log_cache_bytes : int;
  channels : int;
  ways : int;
  sessions : int;  (* 0: serial engine loop; N > 0: N MVCC client sessions *)
}

let default =
  {
    seed = 42;
    transactions = 400;
    pages = 96;
    slots_per_page = 8;
    payload = 48;
    abort_fraction = 0.15;
    reads_per_txn = 24;
    buffer_pages = 32;
    compact_every = 50;
    num_blocks = 64;
    spare_blocks = 0;
    log_cache_bytes = Config.default.Config.log_cache_bytes;
    channels = 1;
    ways = 1;
    sessions = 0;
  }

let quick = { default with transactions = 120 }

type concurrency = {
  sessions : int;
  committed : int;
  aborted : int;
  conflict_aborts : int;
  conflicts : int;
  commit_batches : int;
  batched_commits : int;
  max_commit_batch : int;
  throughput_tps : float;
  per_session : Ipl_txn.Session.session_stats list;
}

type t = {
  spec : spec;
  engine : Engine.t;
  tracer : Obs.Tracer.t;
  metrics : Obs.Metrics.t;
  concurrency : concurrency;
  json : Json.t;
}

let schema_version = "ipl-bench/1"

(* Ring sized so a default-spec run keeps every event, including the
   per-sector chip events and the cache hit/miss stream of the read
   phase (the test asserts [dropped = 0]). *)
let tracer_capacity spec = (spec.transactions * 192) + (16 * 1024)

let engine_config spec =
  {
    Config.default with
    Config.recovery_enabled = true;
    buffer_pages = spec.buffer_pages;
    spare_blocks = spec.spare_blocks;
    log_cache_bytes = spec.log_cache_bytes;
    channels = spec.channels;
    ways = spec.ways;
  }

(* [elapsed] is the simulated clock to charge the operation against —
   the device makespan for the IPL engine, the chip clock for the serial
   baselines. *)
let timed elapsed latency f =
  let t0 = elapsed () in
  let r = f () in
  Obs.Metrics.Latency.observe latency (elapsed () -. t0);
  r

(* The benchmark drives the engine through its typed-error surface; any
   engine error here means the fixture is broken (the spec never wears
   the device out), so escalate as a plain failure. *)
let ok = function
  | Ok v -> v
  | Error e -> failwith ("Obs_bench: engine error: " ^ Engine.error_to_string e)

(* The replay backends (and engine construction) drive chips directly; a
   device fault there aborts the benchmark as a plain failure instead of
   leaking a device exception to the caller. *)
let fatal f =
  try f () with
  | ( Chip.Read_error _ | Chip.Program_error _ | Chip.Erase_error _
    | Chip.Worn_out _ | Resilience.Bbm.Degraded | Resilience.Bbm.Uncorrectable _
      ) as e ->
      failwith ("Obs_bench: device fault: " ^ Printexc.to_string e)

(* The same OLTP-ish mix as the fault campaign (55% update / 30% insert /
   15% delete in 1-4-op transactions, a slice of them aborted), plus a
   read phase after every transaction — the read-heavy traffic the
   log-record cache exists for. Seeded so every run of the same spec
   produces the same event stream. Live slots are tracked so
   updates/deletes mostly hit real records.

   Read results (and the commit/abort tally) are folded into a CRC-32
   digest: the workload's logical outcome, which must be identical for
   every device geometry running the same spec.

   Returns wall-clock seconds per phase and the digest. Wall time comes
   from {!Ipl_util.Clock} (monotonic host time — the one measurement
   here that is {e not} simulated and so not machine-independent). *)
let run_workload spec engine tracer metrics ~pool =
  let dev = Engine.device engine in
  let elapsed () = Dev.elapsed dev in
  Engine.set_tracer engine (Some tracer);
  let wall = Ipl_util.Clock.now_s in
  let digest = ref 0 in
  let fold_digest b = digest := Ipl_util.Checksum.crc32 ~init:!digest b ~pos:0 ~len:(Bytes.length b) in
  let note_read = function
    | Some b -> fold_digest b
    | None -> fold_digest (Bytes.of_string "\xff")
  in
  let wall0 = wall () in
  let reads_s = ref 0.0 in
  let lat name = Obs.Metrics.latency metrics ("op." ^ name) in
  let l_insert = lat "insert"
  and l_update = lat "update"
  and l_delete = lat "delete"
  and l_read = lat "read"
  and l_commit = lat "commit" in
  let c_abort = Obs.Metrics.counter metrics "txn.aborts"
  and c_commit = Obs.Metrics.counter metrics "txn.commits" in
  let rng = Rng.of_int spec.seed in
  let bytes_of len = Bytes.of_string (Rng.alpha_string rng ~min:len ~max:len) in
  let pages = Array.init spec.pages (fun _ -> ok (Engine.allocate_page engine)) in
  let live = Hashtbl.create (spec.pages * spec.slots_per_page) in
  (* Seed every page with an initial set of records. *)
  let tx = ok (Engine.begin_txn engine) in
  Array.iter
    (fun p ->
      for _ = 1 to spec.slots_per_page do
        match Engine.insert engine ~tx ~page:p (bytes_of spec.payload) with
        | Ok slot -> Hashtbl.replace live (p, slot) ()
        | Error e -> failwith ("Obs_bench: setup insert: " ^ Engine.error_to_string e)
      done)
    pages;
  ok (Engine.commit engine tx);
  ok (Engine.checkpoint engine);
  let setup_s = wall () -. wall0 in
  (* Draw every transaction's parameters up front — in exactly the order
     the serial loop drew them, so the RNG stream (and hence the logical
     workload and its digest) is unchanged. Having the whole schedule in
     hand lets the loop software-pipeline across transactions: txn
     [n+1]'s write-set prefetch is submitted before txn [n]'s commit, so
     the commit's durability wait and the next transaction's cold misses
     overlap on the channels. *)
  let plans =
    Array.init spec.transactions (fun _ ->
        let nops = 1 + Rng.int rng 4 in
        let ops =
          List.init nops (fun _ ->
              let page = pages.(Rng.int rng (Array.length pages)) in
              let slot = Rng.int rng (spec.slots_per_page * 2) in
              let r = Rng.float rng 1.0 in
              if r < 0.55 then
                let len =
                  if Rng.chance rng 0.25 then 1 + Rng.int rng (2 * spec.payload)
                  else spec.payload
                in
                `Update (page, slot, bytes_of len)
              else if r < 0.85 then `Insert (page, bytes_of spec.payload)
              else `Delete (page, slot))
        in
        let aborting = Rng.chance rng spec.abort_fraction in
        let reads =
          List.init spec.reads_per_txn (fun _ ->
              let page = pages.(Rng.int rng (Array.length pages)) in
              let slot = Rng.int rng (spec.slots_per_page * 2) in
              (page, slot))
        in
        (ops, aborting, reads))
  in
  let run_serial () =
    let write_set ops =
      List.map (function `Update (p, _, _) | `Insert (p, _) | `Delete (p, _) -> p) ops
    in
    let start_ws n =
      if n < spec.transactions then
        let ops, _, _ = plans.(n) in
        Some (ok (Engine.prefetch_start engine (write_set ops)))
      else None
    in
    (* In-flight prefetch of the NEXT transaction's write set. *)
    let next_ws = ref (start_ws 0) in
    for n = 1 to spec.transactions do
      let ops, aborting, reads = plans.(n - 1) in
      let tx = ok (Engine.begin_txn engine) in
      (match !next_ws with
      | Some tok -> ok (Engine.prefetch_finish engine tok)
      | None -> ());
      next_ws := None;
      (* Submit the read phase's fetches now, before the mutations: their
         flash latency overlaps the whole transaction body and the commit
         barrier. Pages in this transaction's write set are excluded — a
         snapshot of a page the transaction is about to modify could go
         stale if the frame were evicted mid-transaction; those pages are
         resident by read time anyway. Untouched pages cannot change
         logical content while the transaction runs (merges preserve it),
         so the early snapshot equals the serial read. *)
      let ws = write_set ops in
      let rd_token =
        ok
          (Engine.prefetch_start engine
             (List.filter (fun p -> not (List.mem p ws)) (List.map fst reads)))
      in
      List.iter
        (function
          | `Update (page, slot, data) -> (
              match
                timed elapsed l_update (fun () -> Engine.update engine ~tx ~page ~slot data)
              with
              | Ok () -> ()
              | Error _ -> ())
          | `Insert (page, data) -> (
              match timed elapsed l_insert (fun () -> Engine.insert engine ~tx ~page data) with
              | Ok slot -> Hashtbl.replace live (page, slot) ()
              | Error _ -> ())
          | `Delete (page, slot) -> (
              match timed elapsed l_delete (fun () -> Engine.delete engine ~tx ~page ~slot) with
              | Ok () -> Hashtbl.remove live (page, slot)
              | Error _ -> ()))
        ops;
      (* On the commit path this transaction's reads and the next
         transaction's write set are submitted {e before} the commit: its
         durability barrier promotes the log programs past the queued
         reads (deadline promotion) and the read latency is absorbed while
         the host sits at the barrier anyway. A non-resident page has no
         unflushed records and prefetch snapshots image + log records
         together, so the captured contents — and the digest — are
         identical to the serial path. An aborting transaction prefetches
         after the abort (its rolled-back records must not be baked into
         frames). *)
      (if aborting then begin
         ok (Engine.abort engine tx);
         Obs.Metrics.Counter.incr c_abort;
         (* The early token only holds untouched pages, whose captured
            snapshots are unaffected by the rollback; the rolled-back
            write-set pages were rebuilt in place by the abort. *)
         ok (Engine.prefetch_finish engine rd_token);
         next_ws := start_ws n
       end
       else begin
         next_ws := start_ws n;
         timed elapsed l_commit (fun () -> ok (Engine.commit engine tx));
         Obs.Metrics.Counter.incr c_commit;
         ok (Engine.prefetch_finish engine rd_token)
       end);
      let r0 = wall () in
      List.iter
        (fun (page, slot) ->
          note_read (timed elapsed l_read (fun () -> ok (Engine.read engine ~page ~slot))))
        reads;
      reads_s := !reads_s +. (wall () -. r0);
      if spec.compact_every > 0 && n mod spec.compact_every = 0 then
        ignore (ok (Engine.compact engine ~max_merges:1) : int)
    done;
    ok (Engine.checkpoint engine)
  in
  let sim0 = Dev.elapsed dev in
  let conc0 =
    if spec.sessions > 0 then begin
      (* Concurrent serving: the identical pre-drawn plans (same RNG
         stream, same logical workload) run through the MVCC session
         front-end instead of the serial loop. One session reproduces the
         serial operation order — and hence the digest — exactly; more
         sessions interleave round-robin, so commits coalesce into group
         batches and write-write conflicts become possible. *)
      let splans =
        Array.map
          (fun (ops, aborting, reads) ->
            {
              Ipl_txn.Session.ops =
                List.map
                  (function
                    | `Update (page, slot, data) ->
                        Ipl_txn.Session.Update { page; slot; data }
                    | `Insert (page, data) -> Ipl_txn.Session.Insert { page; data }
                    | `Delete (page, slot) -> Ipl_txn.Session.Delete { page; slot })
                  ops;
              aborting;
              reads;
            })
          plans
      in
      (* The pool only ever carries the sessions' pure read resolution
         ({!Ipl_txn.Session.run}); with one job the serial code path runs
         untouched. *)
      let o =
        Ipl_txn.Session.run ~compact_every:spec.compact_every ~note_read
          ?pool:(if Par.Domain_pool.jobs pool > 1 then Some pool else None)
          ~sessions:spec.sessions ~plans:splans engine
      in
      ok (Engine.checkpoint engine);
      Obs.Metrics.Counter.add c_commit o.Ipl_txn.Session.committed;
      Obs.Metrics.Counter.add c_abort
        (o.Ipl_txn.Session.aborted + o.Ipl_txn.Session.conflict_aborts);
      let st = o.Ipl_txn.Session.mvcc in
      {
        sessions = spec.sessions;
        committed = o.Ipl_txn.Session.committed;
        aborted = o.Ipl_txn.Session.aborted;
        conflict_aborts = o.Ipl_txn.Session.conflict_aborts;
        conflicts = st.Ipl_txn.Mvcc.conflicts;
        commit_batches = st.Ipl_txn.Mvcc.barriers;
        batched_commits = st.Ipl_txn.Mvcc.batched_commits;
        max_commit_batch = st.Ipl_txn.Mvcc.max_batch;
        throughput_tps = 0.0;
        per_session = o.Ipl_txn.Session.per_session;
      }
    end
    else begin
      run_serial ();
      let commits = Obs.Metrics.Counter.value c_commit in
      {
        sessions = 0;
        committed = commits;
        aborted = Obs.Metrics.Counter.value c_abort;
        conflict_aborts = 0;
        conflicts = 0;
        (* Every serial commit forces its own barrier: batch size 1. *)
        commit_batches = commits;
        batched_commits = commits;
        max_commit_batch = (if commits > 0 then 1 else 0);
        throughput_tps = 0.0;
        per_session = [];
      }
    end
  in
  (* Fold the commit/abort tally into the digest so a geometry that
     changed transaction outcomes (it must not) cannot go unnoticed. *)
  fold_digest
    (Bytes.of_string
       (Printf.sprintf "commits=%d aborts=%d"
          (Obs.Metrics.Counter.value c_commit)
          (Obs.Metrics.Counter.value c_abort)));
  let sim_s = Dev.elapsed dev -. sim0 in
  let conc =
    {
      conc0 with
      throughput_tps =
        (if sim_s > 0.0 then float_of_int conc0.committed /. sim_s else 0.0);
    }
  in
  let total_s = wall () -. wall0 in
  ( [
      ("setup", setup_s);
      ("mutations", total_s -. setup_s -. !reads_s);
      ("reads", !reads_s);
      ("workload_total", total_s);
    ],
    !digest,
    conc )

(* The physical page traffic of the IPL run, as a conventional design
   would see it: every log-sector flush (in-page or diverted) is a page
   the conventional design must rewrite; every storage-level page fetch
   is a page it must read. Replayed in trace order. *)
let page_stream tracer =
  List.rev
    (Obs.Tracer.fold
       (fun acc (e : Obs.Tracer.entry) ->
         match e.event with
         | Obs.Event.Log_flush { page; _ } | Obs.Event.Overflow_diversion { page; _ } ->
             `Write page :: acc
         | Obs.Event.Page_read { page; _ } -> `Read page :: acc
         | _ -> acc)
       tracer [])

let replay_conventional spec stream ~create ~format ~write ~read ~num_pages ~store_json =
  let chip = Chip.create (FConfig.default ~num_blocks:spec.num_blocks ()) in
  let page_size = Config.default.Config.page_size in
  let store = create chip ~page_size in
  format store;
  let metrics = Obs.Metrics.create () in
  let l_write = Obs.Metrics.latency metrics "op.write_page"
  and l_read = Obs.Metrics.latency metrics "op.read_page" in
  let n = num_pages store in
  List.iter
    (fun op ->
      match op with
      | `Write page -> timed (fun () -> Chip.elapsed chip) l_write (fun () -> write store (page mod n))
      | `Read page -> timed (fun () -> Chip.elapsed chip) l_read (fun () -> read store (page mod n)))
    stream;
  let ops =
    Json.Obj
      [
        ("write_page", Obs.Metrics.Latency.to_json l_write);
        ("read_page", Obs.Metrics.Latency.to_json l_read);
      ]
  in
  (ops, store_json store, FStats.to_json (Chip.stats chip))

let lfs_backend spec stream =
  let ops, store, flash =
    replay_conventional spec stream
      ~create:(fun chip ~page_size -> Baseline.Lfs_store.create chip ~page_size)
      ~format:Baseline.Lfs_store.format
      ~write:Baseline.Lfs_store.write_page ~read:Baseline.Lfs_store.read_page
      ~num_pages:Baseline.Lfs_store.num_pages
      ~store_json:(fun s ->
        let st = Baseline.Lfs_store.stats s in
        Json.Obj
          [
            ("page_writes", Json.Int st.Baseline.Lfs_store.page_writes);
            ("page_reads", Json.Int st.Baseline.Lfs_store.page_reads);
            ("gc_runs", Json.Int st.Baseline.Lfs_store.gc_runs);
            ("gc_page_moves", Json.Int st.Baseline.Lfs_store.gc_page_moves);
            ("erases", Json.Int st.Baseline.Lfs_store.erases);
          ])
  in
  Json.Obj [ ("name", Json.String "lfs"); ("ops", ops); ("store", store); ("flash", flash) ]

let inplace_backend spec stream =
  let ops, store, flash =
    replay_conventional spec stream ~create:Baseline.Inplace_store.create
      ~format:Baseline.Inplace_store.format
      ~write:Baseline.Inplace_store.write_page ~read:Baseline.Inplace_store.read_page
      ~num_pages:Baseline.Inplace_store.num_pages
      ~store_json:(fun s ->
        let st = Baseline.Inplace_store.stats s in
        Json.Obj
          [
            ("page_writes", Json.Int st.Baseline.Inplace_store.page_writes);
            ("page_reads", Json.Int st.Baseline.Inplace_store.page_reads);
            ("erases", Json.Int st.Baseline.Inplace_store.erases);
          ])
  in
  Json.Obj [ ("name", Json.String "inplace"); ("ops", ops); ("store", store); ("flash", flash) ]

let event_counts tracer =
  let tbl = Hashtbl.create 16 in
  Obs.Tracer.iter
    (fun (e : Obs.Tracer.entry) ->
      let k = Obs.Event.kind e.event in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    tracer;
  List.filter_map
    (fun k -> Option.map (fun n -> (k, Json.Int n)) (Hashtbl.find_opt tbl k))
    Obs.Event.kinds

let workload_json spec =
  Json.Obj
    [
      ("seed", Json.Int spec.seed);
      ("transactions", Json.Int spec.transactions);
      ("pages", Json.Int spec.pages);
      ("slots_per_page", Json.Int spec.slots_per_page);
      ("payload", Json.Int spec.payload);
      ("abort_fraction", Json.Float spec.abort_fraction);
      ("reads_per_txn", Json.Int spec.reads_per_txn);
      ("buffer_pages", Json.Int spec.buffer_pages);
      ("compact_every", Json.Int spec.compact_every);
      ("num_blocks", Json.Int spec.num_blocks);
      ("spare_blocks", Json.Int spec.spare_blocks);
      ("log_cache_bytes", Json.Int spec.log_cache_bytes);
      ("channels", Json.Int spec.channels);
      ("ways", Json.Int spec.ways);
      ("sessions", Json.Int spec.sessions);
    ]

(* Nearest-rank quantile over an ascending array: the smallest element
   with at least [q] of the mass at or below it. Exact (no
   interpolation), so the reported percentiles are values that actually
   occurred. *)
let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let i = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

let latency_summary_json latencies =
  let a = Array.of_list latencies in
  Array.sort compare a;
  let n = Array.length a in
  let mean = if n > 0 then Array.fold_left ( +. ) 0.0 a /. float_of_int n else 0.0 in
  [
    ("count", Json.Int n);
    ("mean_s", Json.Float mean);
    ("p50_s", Json.Float (quantile a 0.50));
    ("p90_s", Json.Float (quantile a 0.90));
    ("p99_s", Json.Float (quantile a 0.99));
  ]

(* A serial run has no group commit, no conflicts and no per-session
   clients: reporting batch counters or a throughput for it misleads
   (they are artifacts of the one-barrier-per-commit bookkeeping), so
   the serial document says so explicitly and carries only the tallies
   that mean what they say. Session runs keep the full accounting plus
   begin->durable commit-latency percentiles in simulated seconds —
   deterministic, so byte-identical across job counts. *)
let concurrency_json c =
  if c.sessions = 0 then
    Json.Obj
      [
        ("mode", Json.String "serial");
        ("sessions", Json.Int 0);
        ("committed", Json.Int c.committed);
        ("aborted", Json.Int c.aborted);
      ]
  else
    let mean =
      if c.commit_batches > 0 then
        float_of_int c.batched_commits /. float_of_int c.commit_batches
      else 0.0
    in
    let all =
      List.concat_map
        (fun (s : Ipl_txn.Session.session_stats) -> s.Ipl_txn.Session.sim_latencies)
        c.per_session
    in
    Json.Obj
      [
        ("mode", Json.String "sessions");
        ("sessions", Json.Int c.sessions);
        ("committed", Json.Int c.committed);
        ("aborted", Json.Int c.aborted);
        ("conflict_aborts", Json.Int c.conflict_aborts);
        ("conflicts", Json.Int c.conflicts);
        ("commit_batches", Json.Int c.commit_batches);
        ("batched_commits", Json.Int c.batched_commits);
        ("mean_commit_batch", Json.Float mean);
        ("max_commit_batch", Json.Int c.max_commit_batch);
        ("throughput_tps", Json.Float c.throughput_tps);
        ("commit_latency", Json.Obj (latency_summary_json all));
        ( "per_session",
          Json.List
            (List.map
               (fun (s : Ipl_txn.Session.session_stats) ->
                 Json.Obj
                   (("session", Json.Int s.Ipl_txn.Session.session)
                   :: ("commits", Json.Int s.Ipl_txn.Session.commits)
                   :: latency_summary_json s.Ipl_txn.Session.sim_latencies))
               c.per_session) );
      ]

let ipl_backend engine metrics =
  let ops =
    Json.Obj
      (List.filter_map
         (fun name ->
           match Obs.Metrics.find metrics ("op." ^ name) with
           | Some (`Histogram h) -> Some (name, Obs.Metrics.Latency.to_json h)
           | _ -> None)
         [ "insert"; "update"; "delete"; "read"; "commit" ])
  in
  (* The combined Stats module already renders the storage/pool/flash
     summaries; splice them in next to the latency histograms. *)
  let layers =
    match Engine.Stats.to_json (Engine.stats engine) with
    | Json.Obj fields -> fields
    | other -> [ ("stats", other) ]
  in
  Json.Obj (("name", Json.String "ipl") :: ("ops", ops) :: layers)

let run ?(spec = default) ?(jobs = 1) () =
  Par.Domain_pool.with_pool ~jobs @@ fun pool ->
  let dev =
    Dev.create ~queue_depth:(engine_config spec).Config.queue_depth
      ~channels:spec.channels ~ways:spec.ways
      (FConfig.default ~num_blocks:spec.num_blocks ())
  in
  let engine = fatal (fun () -> Engine.create_device ~config:(engine_config spec) dev) in
  let tracer = Obs.Tracer.create ~capacity:(tracer_capacity spec) () in
  let metrics = Obs.Metrics.create () in
  let phases, logical_digest, conc = run_workload spec engine tracer metrics ~pool in
  let replay0 = Ipl_util.Clock.now_s () in
  let stream = page_stream tracer in
  let trace_summary =
    Json.Obj
      [
        ("emitted", Json.Int (Obs.Tracer.emitted tracer));
        ("dropped", Json.Int (Obs.Tracer.dropped tracer));
        ("events", Json.Obj (event_counts tracer));
      ]
  in
  (* The two conventional replays run on the pool — each drives its own
     private chip over the same trace, so they are independent; the IPL
     backend reads the live engine and stays on this domain. *)
  let backends =
    fatal (fun () ->
        let ipl = ipl_backend engine metrics in
        let replays =
          Par.Domain_pool.parallel_map pool
            (fun backend -> backend spec stream)
            [| lfs_backend; inplace_backend |]
        in
        ipl :: Array.to_list replays)
  in
  let replay_s = Ipl_util.Clock.now_s () -. replay0 in
  (* Wall-clock phase timings (host ns — the only machine-dependent
     numbers in the document) next to the cache counters that explain
     them. Everything else in the document is simulated time. *)
  let wall_clock =
    let ns s = Json.Int (int_of_float (s *. 1e9)) in
    let st = (Engine.stats engine).Engine.storage in
    Json.Obj
      (List.map (fun (k, s) -> (k, ns s)) phases
      @ [
          ("replay", ns replay_s);
          ( "cache",
            Json.Obj
              [
                ("hits", Json.Int st.Ipl_core.Ipl_storage.log_cache_hits);
                ("misses", Json.Int st.Ipl_core.Ipl_storage.log_cache_misses);
                ("evictions", Json.Int st.Ipl_core.Ipl_storage.log_cache_evictions);
              ] );
          (* Commit-batch and conflict counters: what the host time above
             was (or was not) spent waiting on — each batch is one
             durability barrier, so fewer batches than commits is the
             group-commit win. *)
          ("commit_batches", Json.Int conc.commit_batches);
          ( "mean_commit_batch",
            Json.Float
              (if conc.commit_batches > 0 then
                 float_of_int conc.batched_commits /. float_of_int conc.commit_batches
               else 0.0) );
          ("max_commit_batch", Json.Int conc.max_commit_batch);
          ("conflict_aborts", Json.Int conc.conflict_aborts);
          (* Host-side parallelism of this run — machine-dependent by
             definition, so it lives here and nowhere else: every other
             section must be byte-identical across job counts. *)
          ("jobs", Json.Int jobs);
          ( "session_commit_wait",
            ns
              (List.fold_left
                 (fun acc (s : Ipl_txn.Session.session_stats) ->
                   acc +. s.Ipl_txn.Session.host_latency_s)
                 0.0 conc.per_session) );
        ])
  in
  let json =
    Json.Obj
      [
        ("schema", Json.String schema_version);
        ("workload", workload_json spec);
        ("logical_digest", Json.String (Printf.sprintf "%08x" logical_digest));
        ("device", Dev.to_json dev);
        ("trace", trace_summary);
        ("wall_clock", wall_clock);
        ("concurrency", concurrency_json conc);
        ("backends", Json.List backends);
      ]
  in
  { spec; engine; tracer; metrics; concurrency = conc; json }

let write_json ?(extra = []) path t =
  let doc =
    match (extra, t.json) with
    | [], j -> j
    | fields, Json.Obj base -> Json.Obj (base @ fields)
    | fields, j -> Json.Obj (("document", j) :: fields)
  in
  Obs.Export.to_file path (Json.to_string doc ^ "\n")
