(** Availability benchmark: time-to-first-transaction after a crash,
    eager versus lazy restart.

    For each database size, a deterministic update stream is stopped
    mid-flight (no checkpoint, no quiesce) — twice, producing two
    bit-identical crashed flash states. One is reopened with the classic
    eager restart (rescan every erase unit's log region), the other with
    [Ipl_config.lazy_recovery] (fuzzy checkpoint + on-demand page
    repair). Both immediately run one ordinary transaction; the span
    from restart to that transaction's commit barrier, on the simulated
    device clock, is the availability metric. The lazy engine is then
    fully drained and its logical content digest-compared against the
    eager one. *)

type spec = {
  name : string;
  pages : int;
  transactions : int;
  seed : int;
  num_blocks : int;
  checkpoint_every : int;
}

val specs : spec list
(** The swept sizes: ["small"], ["medium"], ["large"]. *)

type point = {
  name : string;
  pages : int;
  transactions : int;
  eager_s : float;  (** simulated seconds, restart → first commit, eager *)
  lazy_s : float;  (** same span under [lazy_recovery] *)
  eager_restart_log_reads : int;
      (** log sectors read inside the eager restart scan *)
  lazy_restart_log_reads : int;
      (** log sectors read inside the lazy restart scan (deltas only) *)
  repair_pending : int;  (** units deferred to on-demand repair *)
  warm_entries : int;  (** cache entries installed by repair, after drain *)
  digest_match : bool;
      (** recovered logical content identical eager vs lazy (must hold) *)
}

val run : ?jobs:int -> unit -> point list
(** One {!point} per {!specs} entry, in order. [jobs] (default 1: serial,
    no domains) sweeps the size points on a {!Par.Domain_pool}; every
    measurement is simulated-clock, so the points are identical for any
    job count. *)

val to_json : point list -> Ipl_util.Json.t
(** The [restart] section of BENCH_ipl.json: per-spec points under
    ["specs"], plus ["time_to_first_txn"] with the largest spec's
    [eager_s]/[lazy_s] headline numbers. *)

val pp : Format.formatter -> point list -> unit
