(** Instrumented end-to-end benchmark behind [ipl_cli bench --json],
    [ipl_cli observe] and the BENCH_ipl.json artifact.

    Runs one deterministic OLTP-style workload on the real IPL engine
    with a tracer and latency metrics installed, then replays the
    physical page traffic the run generated (log-sector flushes as page
    writes, storage-level fetches as page reads) on the two conventional
    designs — {!Baseline.Lfs_store} and {!Baseline.Inplace_store} — under
    identical chip geometry. Latency histograms use the chip's simulated
    clock, so they are machine-independent and reproducible from the
    seed; the [wall_clock] section additionally reports real host time
    per phase (monotonic {!Ipl_util.Clock} nanoseconds) together with
    the log-record cache hit/miss/eviction counters that explain it.

    The workload's logical outcome — every point-read result plus the
    commit/abort tally — is folded into a CRC-32 [logical_digest]: runs
    of the same spec on different device geometries (channels/ways) must
    produce the same digest, and only the simulated timing may differ. *)

type spec = {
  seed : int;
  transactions : int;  (** transactions after the setup phase *)
  pages : int;  (** data pages allocated up front *)
  slots_per_page : int;  (** records seeded per page *)
  payload : int;  (** record payload, bytes *)
  abort_fraction : float;
  reads_per_txn : int;
      (** random point reads issued after each transaction — the
          read-heavy traffic the log-record cache serves *)
  buffer_pages : int;  (** pool capacity; small values force evictions *)
  compact_every : int;  (** background-merge period in transactions; 0 = never *)
  num_blocks : int;  (** chip size, erase blocks (same for every backend) *)
  spare_blocks : int;
      (** 0 (default): no bad-block manager. n > 0: the IPL engine runs
          with an n-block spare pool, and the [resilience] section of its
          backend stats reports retries/remaps/scrubs (all zero on a
          fault-free run) *)
  log_cache_bytes : int;
      (** DRAM log-record cache budget for the IPL engine (0 disables);
          defaults to {!Ipl_core.Ipl_config.default}'s budget *)
  channels : int;
      (** flash channels of the IPL engine's device; 1 (default) is the
          serial chip. The baseline replays always run on a serial chip —
          the comparison isolates what parallelism buys the IPL design *)
  ways : int;  (** chips per channel *)
  sessions : int;
      (** 0 (default): the single-threaded serial engine loop. n > 0: the
          same pre-drawn transaction plans are multiplexed over n MVCC
          client sessions ({!Ipl_txn.Session}) with group commit — one
          session reproduces the serial order (and logical digest)
          exactly; more sessions coalesce commits into batches and make
          write-write conflicts possible *)
}

val default : spec
val quick : spec
(** [default] with fewer transactions, for CI smoke runs. *)

type concurrency = {
  sessions : int;  (** as configured; 0 on a serial run *)
  committed : int;
  aborted : int;  (** voluntary aborts (the plan said so) *)
  conflict_aborts : int;  (** transactions doomed by write-write conflicts *)
  conflicts : int;  (** conflicts detected (dooming events) *)
  commit_batches : int;  (** durability barriers issued for commits *)
  batched_commits : int;  (** commits those barriers settled *)
  max_commit_batch : int;
  throughput_tps : float;  (** committed txns per simulated second *)
  per_session : Ipl_txn.Session.session_stats list;
      (** per-client commit counts and begin->durable commit latencies
          (simulated seconds); empty on a serial run *)
}
(** Group-commit and conflict accounting of the workload phase. A serial
    run reports one barrier per commit and no conflicts; a session run
    reports the {!Ipl_txn.Mvcc} batch counters — mean batch size
    [batched_commits / commit_batches] is the group-commit win.

    The JSON [concurrency] section is mode-tagged: a serial run emits
    [{mode = "serial"; sessions = 0; committed; aborted}] only (batch and
    throughput fields would be bookkeeping artifacts there), while a
    session run emits [mode = "sessions"] with the full accounting plus
    [commit_latency] (count/mean/p50/p90/p99, simulated seconds) and a
    [per_session] list of the same shape per client. *)

type t = {
  spec : spec;
  engine : Ipl_core.Ipl_engine.t;  (** the engine after the run, for inspection *)
  tracer : Obs.Tracer.t;  (** full event trace of the IPL run *)
  metrics : Obs.Metrics.t;  (** per-operation latency histograms and counters *)
  concurrency : concurrency;
  json : Ipl_util.Json.t;  (** the BENCH_ipl.json document *)
}

val schema_version : string
(** ["ipl-bench/1"] — the [schema] field of the JSON document. *)

val run : ?spec:spec -> ?jobs:int -> unit -> t
(** Run the workload and both conventional replays; never raises on a
    well-formed spec. The resulting [json] is
    [{schema; workload; trace; wall_clock; concurrency;
    backends = [ipl; lfs; inplace]}] where each backend carries [ops]
    latency histograms plus its layer stats (IPL: storage/pool/flash with
    merge, overflow and wear counters), [wall_clock] holds host-time
    phase timings plus the log-record cache and commit-batch /
    conflict-abort counters, and [concurrency] mirrors {!concurrency}.

    [jobs] (default 1: fully serial, no domains) runs the two baseline
    replays on a {!Par.Domain_pool} while the IPL run holds the main
    domain, and hands the session read phase's pure resolution to the
    pool ({!Ipl_txn.Session.run}'s [pool]). Every section of the
    document except [wall_clock] — which records [jobs] and host times
    by design — is byte-identical for every job count. *)

val write_json : ?extra:(string * Ipl_util.Json.t) list -> string -> t -> unit
(** [write_json path t] writes [t.json] (compact, newline-terminated).
    [extra] fields, if any, are appended to the top-level object — used
    by [ipl_cli bench --restart] to attach the {!Restart_bench} section
    without disturbing the schema-stable core document. *)
