(** Deterministic fault plans for {!Flash_sim.Flash_chip.set_fault_hook}.

    A plan is a pure function from the chip's monotonically increasing
    operation index (and the operation about to run) to a fault action.
    Because the index stream of a deterministic workload is reproducible,
    a plan pins a fault to an exact point in an execution — the basis of
    the crash-point campaign in {!Campaign}. *)

type t = int -> Flash_sim.Flash_chip.op -> Flash_sim.Flash_chip.fault_action

val none : t

val crash_at : ?tear:bool -> int -> t
(** [crash_at n] power-fails the chip at operation index [n] (and keeps it
    dead for every later operation). With [~tear:true], if the fatal
    operation is a multi-sector program it is torn half-way first, so the
    surviving flash state contains a partially programmed page. *)

val flip_bit : point:int -> bit:int -> t
(** Silently corrupt one bit of the data programmed at operation index
    [point] (no exception — the damage is only found by checksums). *)

val transient_read : point:int -> t
(** Fail the read at operation index [point] with
    {!Flash_sim.Flash_chip.Read_error}; the data is intact and later
    reads succeed. *)

val seq : t list -> t
(** First non-[Proceed] answer wins. *)

val install : Flash_sim.Flash_chip.t -> t -> unit
val clear : Flash_sim.Flash_chip.t -> unit
(** [clear] also revives a chip killed by a fail-stop, modelling power
    coming back on before restart recovery. *)
