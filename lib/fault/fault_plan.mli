(** Deterministic fault plans for {!Flash_sim.Flash_chip.set_fault_hook}.

    A plan is a pure function from the chip's monotonically increasing
    operation index (and the operation about to run) to a fault action.
    Because the index stream of a deterministic workload is reproducible,
    a plan pins a fault to an exact point in an execution — the basis of
    the crash-point campaign in {!Campaign}. *)

type t = int -> Flash_sim.Flash_chip.op -> Flash_sim.Flash_chip.fault_action

val none : t

val crash_at : ?tear:bool -> int -> t
(** [crash_at n] power-fails the chip at operation index [n] (and keeps it
    dead for every later operation). With [~tear:true], if the fatal
    operation is a multi-sector program it is torn half-way first, so the
    surviving flash state contains a partially programmed page. *)

val flip_bit : point:int -> bit:int -> t
(** Silently corrupt one bit of the data programmed at operation index
    [point] (no exception — the damage is only found by checksums). *)

val transient_read : point:int -> t
(** Fail the read at operation index [point] with
    {!Flash_sim.Flash_chip.Read_error}; the data is intact and later
    reads succeed. *)

(** {1 Probabilistic device-failure plans}

    Deterministic for a given [seed]: the decision for operation index
    [n] is a hash of [(seed, n)], so a campaign re-runs identically. *)

val flaky_reads :
  seed:int -> ?correctable:float -> ?transient:float -> ?min_sector:int -> unit -> t
(** A flaky device: reads need ECC correction with probability
    [correctable] (default 0.05) and fail outright with probability
    [transient] (default 0.01). Drives the bad-block manager's read-retry
    and scrub-on-correctable paths. [min_sector] (default 0) exempts
    lower addresses — regions like the metadata/transaction logs that sit
    outside the bad-block manager and have no retry path. *)

val program_failures : seed:int -> rate:float -> ?min_sector:int -> unit -> t
(** Each program at or above [min_sector] fails
    ({!Flash_sim.Flash_chip.Program_error}, no state change) with
    probability [rate]. *)

val erase_failures : seed:int -> rate:float -> ?first_block:int -> unit -> t
(** Each erase of a block at or above [first_block] fails
    ({!Flash_sim.Flash_chip.Erase_error}, block left un-erased) with
    probability [rate]. *)

val wear_out :
  seed:int -> first_block:int -> min_cycles:int -> max_cycles:int -> unit -> t
(** Wear-out-to-exhaustion: every block at or above [first_block] gets a
    seeded endurance budget in [min_cycles, max_cycles]; once this plan
    has seen the block erased that many times, all its further erases
    fail — permanently, like a grown bad block. Stateful (counts erases
    internally), so install a fresh instance per run. Blocks below
    [first_block] never wear, keeping regions that sit outside the
    bad-block manager (metadata / transaction logs) alive. *)

val program_fail_then_crash :
  point:int -> crash_after:int -> ?min_sector:int -> unit -> t
(** Fail the first program at index >= [point] (and address >=
    [min_sector]) — forcing the bad-block manager into a relocation —
    then power-fail the chip [crash_after] operations later, landing the
    crash inside or just after the remap. Stateful; install a fresh
    instance per run. *)

val seq : t list -> t
(** First non-[Proceed] answer wins. *)

val install : Flash_sim.Flash_chip.t -> t -> unit
val clear : Flash_sim.Flash_chip.t -> unit
(** [clear] also revives a chip killed by a fail-stop, modelling power
    coming back on before restart recovery. *)
