(** Model-based recovery oracle for {e concurrent} (MVCC) histories.

    Where {!Oracle} models a single active transaction, this oracle
    tracks many: each live transaction's write set, the global commit
    order, and a durable watermark (how many commits a completed group
    barrier has settled). After a crash and restart the database must
    equal the setup state plus some {e prefix} of the commit order — the
    transaction log is sequential, so a later commit record can never be
    durable without every earlier one — and the prefix must reach at
    least the watermark. Conflict-losers and voluntary aborts are absent
    from the commit order, so any surviving effect of theirs fails the
    prefix match. *)

type t

type outcome =
  | Settled  (** no transaction was mid-commit at the crash *)
  | In_doubt
      (** the crash hit inside a commit call: that transaction's record
          may or may not be durable, so it joins the commit order as an
          optional last entry *)

val create : unit -> t

val seed : t -> page:int -> slot:int -> bytes -> unit
(** Record a setup-time value that is already durable (pre-campaign). *)

val begin_txn : t -> txn:int -> unit

val note : t -> txn:int -> page:int -> slot:int -> bytes option -> unit
(** Mirror one successful MVCC write of transaction [txn]: [Some data]
    for insert/update, [None] for delete. *)

val start_commit : t -> txn:int -> unit
(** Call immediately before [Mvcc.commit]: from here until
    {!end_commit} the transaction is in doubt. *)

val end_commit : t -> txn:int -> unit
(** The commit call returned: the transaction takes the next position in
    the commit order (durability still pending the group barrier). *)

val abort : t -> txn:int -> unit
(** Voluntary abort or conflict-doomed rollback: the write set vanishes. *)

val durable : t -> int -> unit
(** Raise the durable watermark: the first [n] commits in commit order
    have been settled by a completed barrier. Monotonic; lower values are
    ignored. *)

val committed_count : t -> int

val crash : t -> outcome
(** Resolve the model after a power loss: live transactions roll back, a
    mid-commit transaction becomes the optional tail of the commit
    order. *)

val check :
  t -> read:(page:int -> slot:int -> bytes option) -> pages:int list -> slots:int -> string list
(** Read back slots [0..slots-1] of every page through [read] (normally
    [Ipl_engine.read] on the restarted engine) and return human-readable
    violations; [[]] means the recovered state equals the setup state
    plus commits [0..k] for some [k] between the durable watermark and
    the full commit order. A [read] that raises is itself a violation. *)
