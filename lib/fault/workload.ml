module Engine = Ipl_core.Ipl_engine
module Rng = Ipl_util.Rng

type spec = {
  seed : int;
  transactions : int;
  pages : int;
  slots_per_page : int;
  payload : int;
  abort_fraction : float;
}

let default =
  { seed = 7; transactions = 60; pages = 6; slots_per_page = 8; payload = 48; abort_fraction = 0.15 }

(* Upper bound on the slot numbers a run can produce: every insert either
   reuses a freed slot or appends one. The oracle sweeps this range. *)
let max_slots spec = spec.slots_per_page + (spec.transactions * 4)

let bytes_of rng len = Bytes.of_string (Rng.alpha_string rng ~min:len ~max:len)

let setup engine oracle spec =
  let pages = Array.init spec.pages (fun _ -> Engine.allocate_page engine) in
  let rng = Rng.of_int (spec.seed lxor 0x5eed) in
  let tx = Engine.begin_txn engine in
  Array.iter
    (fun p ->
      for _ = 1 to spec.slots_per_page do
        let data = bytes_of rng spec.payload in
        match Engine.insert engine ~tx ~page:p data with
        | Ok slot -> Oracle.seed oracle ~page:p ~slot data
        | Error e -> failwith ("Workload.setup: " ^ Engine.error_to_string e)
      done)
    pages;
  Engine.commit engine tx;
  Engine.checkpoint engine;
  pages

(* One OLTP-ish mix, driven purely by the seed: short transactions of 1-4
   record operations (55% update / 30% insert / 15% delete), 15% of them
   aborted. Every successful engine call is mirrored into the oracle, so
   the model tracks the engine exactly up to the crash, wherever it
   falls. Determinism matters: the golden run and every crash re-run draw
   the same stream, so operation index N is the same flash operation in
   each. *)
type resilient_outcome = {
  committed : int;
  aborted : int;
  degraded_at : int option;
  read_failures : int;
}

exception Tx_failed of Engine.error

(* The resilience-campaign variant of {!run}: same transaction mix, but
   driven through the exception-free engine entry points. A transaction
   that hits a device error ([Device_degraded], [Read_failed]) is aborted
   — its effects must vanish, and the oracle mirrors that — and a
   degraded device ends the run: the remaining transactions could only be
   refused. *)
let run_resilient engine oracle spec ~pages =
  let rng = Rng.of_int spec.seed in
  let committed = ref 0 and aborted = ref 0 in
  let degraded_at = ref None and read_failures = ref 0 in
  (try
     for i = 1 to spec.transactions do
       let tx = Engine.begin_txn engine in
       Oracle.begin_txn oracle;
       try
         let nops = 1 + Rng.int rng 4 in
         for _ = 1 to nops do
           let page = pages.(Rng.int rng (Array.length pages)) in
           let slot = Rng.int rng (spec.slots_per_page * 2) in
           let r = Rng.float rng 1.0 in
           if r < 0.55 then (
             match Oracle.current oracle ~page ~slot with
             | None -> ()
             | Some old ->
                 let len =
                   if Rng.chance rng 0.25 then 1 + Rng.int rng (2 * spec.payload)
                   else Bytes.length old
                 in
                 let data = bytes_of rng len in
                 (match Engine.update engine ~tx ~page ~slot data with
                 | Ok () -> Oracle.note oracle ~page ~slot (Some data)
                 | Error ((Engine.Device_degraded | Engine.Read_failed) as e) ->
                     raise (Tx_failed e)
                 | Error _ -> ()))
           else if r < 0.85 then begin
             let data = bytes_of rng spec.payload in
             match Engine.insert engine ~tx ~page data with
             | Ok slot -> Oracle.note oracle ~page ~slot (Some data)
             | Error ((Engine.Device_degraded | Engine.Read_failed) as e) ->
                 raise (Tx_failed e)
             | Error _ -> ()
           end
           else
             match Engine.delete engine ~tx ~page ~slot with
             | Ok () -> Oracle.note oracle ~page ~slot None
             | Error ((Engine.Device_degraded | Engine.Read_failed) as e) ->
                 raise (Tx_failed e)
             | Error _ -> ()
         done;
         if Rng.chance rng spec.abort_fraction then begin
           Engine.abort engine tx;
           Oracle.abort oracle;
           incr aborted
         end
         else begin
           Oracle.start_commit oracle;
           match Engine.commit_result engine tx with
           | Ok () ->
               Oracle.end_commit oracle;
               incr committed
           | Error e -> raise (Tx_failed e)
         end
       with Tx_failed e ->
         (* The abort itself may trip over the same dying device; its
            record-level effect (dropping the transaction) is what the
            oracle models either way. *)
         (try Engine.abort engine tx
          with Resilience.Bbm.Uncorrectable _ | Resilience.Bbm.Degraded -> ());
         Oracle.abort oracle;
         incr aborted;
         (match e with
         | Engine.Device_degraded ->
             degraded_at := Some i;
             raise Exit
         | _ -> incr read_failures)
     done
   with Exit -> ());
  {
    committed = !committed;
    aborted = !aborted;
    degraded_at = !degraded_at;
    read_failures = !read_failures;
  }

let run engine oracle spec ~pages =
  let rng = Rng.of_int spec.seed in
  for _ = 1 to spec.transactions do
    let tx = Engine.begin_txn engine in
    Oracle.begin_txn oracle;
    let nops = 1 + Rng.int rng 4 in
    for _ = 1 to nops do
      let page = pages.(Rng.int rng (Array.length pages)) in
      let slot = Rng.int rng (spec.slots_per_page * 2) in
      let r = Rng.float rng 1.0 in
      if r < 0.55 then (
        match Oracle.current oracle ~page ~slot with
        | None -> () (* nothing there to update *)
        | Some old ->
            (* Mostly equal-length (logged as byte-range deltas); a quarter
               change size to exercise the full-image / delete+insert
               logging paths. *)
            let len =
              if Rng.chance rng 0.25 then 1 + Rng.int rng (2 * spec.payload)
              else Bytes.length old
            in
            let data = bytes_of rng len in
            (match Engine.update engine ~tx ~page ~slot data with
            | Ok () -> Oracle.note oracle ~page ~slot (Some data)
            | Error _ -> ()))
      else if r < 0.85 then begin
        let data = bytes_of rng spec.payload in
        match Engine.insert engine ~tx ~page data with
        | Ok slot -> Oracle.note oracle ~page ~slot (Some data)
        | Error _ -> ()
      end
      else
        match Engine.delete engine ~tx ~page ~slot with
        | Ok () -> Oracle.note oracle ~page ~slot None
        | Error _ -> ()
    done;
    if Rng.chance rng spec.abort_fraction then begin
      Engine.abort engine tx;
      Oracle.abort oracle
    end
    else begin
      Oracle.start_commit oracle;
      Engine.commit engine tx;
      Oracle.end_commit oracle
    end
  done
