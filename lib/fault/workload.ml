module Engine = Ipl_core.Ipl_engine
module Rng = Ipl_util.Rng

type spec = {
  seed : int;
  transactions : int;
  pages : int;
  slots_per_page : int;
  payload : int;
  abort_fraction : float;
}

let default =
  { seed = 7; transactions = 60; pages = 6; slots_per_page = 8; payload = 48; abort_fraction = 0.15 }

(* Upper bound on the slot numbers a run can produce: every insert either
   reuses a freed slot or appends one. The oracle sweeps this range. *)
let max_slots spec = spec.slots_per_page + (spec.transactions * 4)

let bytes_of rng len = Bytes.of_string (Rng.alpha_string rng ~min:len ~max:len)

(* The crash campaigns drive the typed engine API; only
   [Flash_chip.Power_loss] is supposed to unwind through here, so any
   typed error outside the paths that expect one is a harness bug. *)
let ok ctx = function
  | Ok v -> v
  | Error e -> failwith ("Workload." ^ ctx ^ ": " ^ Engine.error_to_string e)

let setup engine oracle spec =
  let pages = Array.init spec.pages (fun _ -> ok "setup" (Engine.allocate_page engine)) in
  let rng = Rng.of_int (spec.seed lxor 0x5eed) in
  let tx = ok "setup" (Engine.begin_txn engine) in
  Array.iter
    (fun p ->
      for _ = 1 to spec.slots_per_page do
        let data = bytes_of rng spec.payload in
        match Engine.insert engine ~tx ~page:p data with
        | Ok slot -> Oracle.seed oracle ~page:p ~slot data
        | Error e -> failwith ("Workload.setup: " ^ Engine.error_to_string e)
      done)
    pages;
  ok "setup" (Engine.commit engine tx);
  ok "setup" (Engine.checkpoint engine);
  pages

(* One OLTP-ish mix, driven purely by the seed: short transactions of 1-4
   record operations (55% update / 30% insert / 15% delete), 15% of them
   aborted. Every successful engine call is mirrored into the oracle, so
   the model tracks the engine exactly up to the crash, wherever it
   falls. Determinism matters: the golden run and every crash re-run draw
   the same stream, so operation index N is the same flash operation in
   each. *)
type resilient_outcome = {
  committed : int;
  aborted : int;
  degraded_at : int option;
  read_failures : int;
}

exception Tx_failed of Engine.error

(* The resilience-campaign variant of {!run}: same transaction mix, but
   driven through the exception-free engine entry points. A transaction
   that hits a device error ([Device_degraded], [Read_failed]) is aborted
   — its effects must vanish, and the oracle mirrors that — and a
   degraded device ends the run: the remaining transactions could only be
   refused. *)
let run_resilient engine oracle spec ~pages =
  let rng = Rng.of_int spec.seed in
  let committed = ref 0 and aborted = ref 0 in
  let degraded_at = ref None and read_failures = ref 0 in
  (try
     for i = 1 to spec.transactions do
       let tx =
         match Engine.begin_txn engine with
         | Ok tx -> tx
         | Error Engine.Device_degraded ->
             degraded_at := Some i;
             raise Exit
         | Error e -> failwith ("Workload.run_resilient: " ^ Engine.error_to_string e)
       in
       Oracle.begin_txn oracle;
       try
         let nops = 1 + Rng.int rng 4 in
         for _ = 1 to nops do
           let page = pages.(Rng.int rng (Array.length pages)) in
           let slot = Rng.int rng (spec.slots_per_page * 2) in
           let r = Rng.float rng 1.0 in
           if r < 0.55 then (
             match Oracle.current oracle ~page ~slot with
             | None -> ()
             | Some old ->
                 let len =
                   if Rng.chance rng 0.25 then 1 + Rng.int rng (2 * spec.payload)
                   else Bytes.length old
                 in
                 let data = bytes_of rng len in
                 (match Engine.update engine ~tx ~page ~slot data with
                 | Ok () -> Oracle.note oracle ~page ~slot (Some data)
                 | Error ((Engine.Device_degraded | Engine.Read_failed) as e) ->
                     raise (Tx_failed e)
                 | Error _ -> ()))
           else if r < 0.85 then begin
             let data = bytes_of rng spec.payload in
             match Engine.insert engine ~tx ~page data with
             | Ok slot -> Oracle.note oracle ~page ~slot (Some data)
             | Error ((Engine.Device_degraded | Engine.Read_failed) as e) ->
                 raise (Tx_failed e)
             | Error _ -> ()
           end
           else
             match Engine.delete engine ~tx ~page ~slot with
             | Ok () -> Oracle.note oracle ~page ~slot None
             | Error ((Engine.Device_degraded | Engine.Read_failed) as e) ->
                 raise (Tx_failed e)
             | Error _ -> ()
         done;
         if Rng.chance rng spec.abort_fraction then begin
           (match Engine.abort engine tx with Ok () | Error _ -> ());
           Oracle.abort oracle;
           incr aborted
         end
         else begin
           Oracle.start_commit oracle;
           match Engine.commit engine tx with
           | Ok () ->
               Oracle.end_commit oracle;
               incr committed
           | Error e -> raise (Tx_failed e)
         end
       with Tx_failed e ->
         (* The abort itself may trip over the same dying device; its
            record-level effect (dropping the transaction) is what the
            oracle models either way. *)
         (match Engine.abort engine tx with Ok () | Error _ -> ());
         Oracle.abort oracle;
         incr aborted;
         (match e with
         | Engine.Device_degraded ->
             degraded_at := Some i;
             raise Exit
         | _ -> incr read_failures)
     done
   with Exit -> ());
  {
    committed = !committed;
    aborted = !aborted;
    degraded_at = !degraded_at;
    read_failures = !read_failures;
  }

(* ------------------------------------------------------------------ *)
(* Concurrent histories: the same mix through MVCC sessions            *)

module Mvcc = Ipl_txn.Mvcc

type concurrent_outcome = { committed_txns : int; aborted_txns : int; conflicts : int }

type cop =
  | CUpdate of int * int * bytes  (* page, slot, data *)
  | CInsert of int * bytes
  | CDelete of int * int

let setup_concurrent engine oracle spec =
  let pages = Array.init spec.pages (fun _ -> ok "setup" (Engine.allocate_page engine)) in
  let rng = Rng.of_int (spec.seed lxor 0x5eed) in
  let tx = ok "setup" (Engine.begin_txn engine) in
  Array.iter
    (fun p ->
      for _ = 1 to spec.slots_per_page do
        let data = bytes_of rng spec.payload in
        match Engine.insert engine ~tx ~page:p data with
        | Ok slot -> Concurrent_oracle.seed oracle ~page:p ~slot data
        | Error e -> failwith ("Workload.setup_concurrent: " ^ Engine.error_to_string e)
      done)
    pages;
  ok "setup" (Engine.commit engine tx);
  ok "setup" (Engine.checkpoint engine);
  pages

(* The serial mix, pre-drawn into per-transaction plans (the concurrent
   oracle has no single "current" view to consult, so update lengths come
   from the payload instead of the live record) and interleaved
   round-robin over [sessions] MVCC transactions: every rotation advances
   each session by one operation, so the interleaving — conflicts, group
   batches, crash points — is a pure function of the spec. Every
   successful MVCC write is mirrored into the oracle, commits take their
   global order there, and the durable watermark follows
   [Mvcc.flushed_commits] after every barrier. Only
   {!Flash_sim.Flash_chip.Power_loss} is supposed to unwind through
   here. *)
let run_concurrent engine oracle spec ~sessions ~pages =
  let sessions = max 1 sessions in
  let m = Mvcc.create ~group_window:sessions engine in
  let rng = Rng.of_int spec.seed in
  let plans =
    Array.init spec.transactions (fun _ ->
        let nops = 1 + Rng.int rng 4 in
        let ops =
          List.init nops (fun _ ->
              let page = pages.(Rng.int rng (Array.length pages)) in
              let slot = Rng.int rng (spec.slots_per_page * 2) in
              let r = Rng.float rng 1.0 in
              if r < 0.55 then
                let len =
                  if Rng.chance rng 0.25 then 1 + Rng.int rng (2 * spec.payload)
                  else spec.payload
                in
                CUpdate (page, slot, bytes_of rng len)
              else if r < 0.85 then CInsert (page, bytes_of rng spec.payload)
              else CDelete (page, slot))
        in
        (ops, Rng.chance rng spec.abort_fraction))
  in
  let mok ctx = function
    | Ok v -> v
    | Error e -> failwith ("Workload." ^ ctx ^ ": " ^ Mvcc.error_to_string e)
  in
  let committed = ref 0 and aborted = ref 0 in
  let next = Array.init sessions (fun i -> i) in
  let st = Array.make sessions `Idle in
  let settle () = Concurrent_oracle.durable oracle (Mvcc.flushed_commits m) in
  let step i =
    match st.(i) with
    | `Done -> ()
    | `Idle ->
        if next.(i) >= spec.transactions then st.(i) <- `Done
        else begin
          let ops, aborting = plans.(next.(i)) in
          next.(i) <- next.(i) + sessions;
          let tx = mok "run_concurrent" (Mvcc.begin_txn m) in
          Concurrent_oracle.begin_txn oracle ~txn:(Mvcc.txn_id tx);
          st.(i) <- `Run (tx, ops, aborting, false)
        end
    | `Run (tx, op :: rest, aborting, doomed) ->
        let txn = Mvcc.txn_id tx in
        let r =
          match op with
          | CUpdate (page, slot, data) -> (
              match Mvcc.update m tx ~page ~slot data with
              | Ok () ->
                  Concurrent_oracle.note oracle ~txn ~page ~slot (Some data);
                  Ok ()
              | Error _ as e -> e)
          | CInsert (page, data) -> (
              match Mvcc.insert m tx ~page data with
              | Ok slot ->
                  Concurrent_oracle.note oracle ~txn ~page ~slot (Some data);
                  Ok ()
              | Error _ as e -> e)
          | CDelete (page, slot) -> (
              match Mvcc.delete m tx ~page ~slot with
              | Ok () ->
                  Concurrent_oracle.note oracle ~txn ~page ~slot None;
                  Ok ()
              | Error _ as e -> e)
        in
        let doomed =
          match r with
          | Ok () -> doomed
          | Error (Mvcc.Conflict _ | Mvcc.Doomed) -> true
          | Error
              (Mvcc.Engine_error
                 (Engine.Page_full | Engine.No_such_slot | Engine.Record_too_large)) ->
              doomed
          | Error e -> failwith ("Workload.run_concurrent: " ^ Mvcc.error_to_string e)
        in
        (* A doomed transaction cannot commit; skip the rest of its ops. *)
        st.(i) <- `Run (tx, (if doomed then [] else rest), aborting, doomed)
    | `Run (tx, [], aborting, doomed) ->
        let txn = Mvcc.txn_id tx in
        if doomed || aborting then begin
          (match Mvcc.abort m tx with Ok () | Error _ -> ());
          Concurrent_oracle.abort oracle ~txn;
          incr aborted
        end
        else begin
          Concurrent_oracle.start_commit oracle ~txn;
          mok "run_concurrent" (Mvcc.commit m tx);
          Concurrent_oracle.end_commit oracle ~txn;
          settle ();
          incr committed
        end;
        st.(i) <- `Idle
  in
  while Array.exists (fun s -> s <> `Done) st do
    for i = 0 to sessions - 1 do
      step i
    done
  done;
  mok "run_concurrent" (Mvcc.flush m);
  settle ();
  {
    committed_txns = !committed;
    aborted_txns = !aborted;
    conflicts = (Mvcc.stats m).Mvcc.conflicts;
  }

let run engine oracle spec ~pages =
  let rng = Rng.of_int spec.seed in
  for _ = 1 to spec.transactions do
    let tx = ok "run" (Engine.begin_txn engine) in
    Oracle.begin_txn oracle;
    let nops = 1 + Rng.int rng 4 in
    for _ = 1 to nops do
      let page = pages.(Rng.int rng (Array.length pages)) in
      let slot = Rng.int rng (spec.slots_per_page * 2) in
      let r = Rng.float rng 1.0 in
      if r < 0.55 then (
        match Oracle.current oracle ~page ~slot with
        | None -> () (* nothing there to update *)
        | Some old ->
            (* Mostly equal-length (logged as byte-range deltas); a quarter
               change size to exercise the full-image / delete+insert
               logging paths. *)
            let len =
              if Rng.chance rng 0.25 then 1 + Rng.int rng (2 * spec.payload)
              else Bytes.length old
            in
            let data = bytes_of rng len in
            (match Engine.update engine ~tx ~page ~slot data with
            | Ok () -> Oracle.note oracle ~page ~slot (Some data)
            | Error _ -> ()))
      else if r < 0.85 then begin
        let data = bytes_of rng spec.payload in
        match Engine.insert engine ~tx ~page data with
        | Ok slot -> Oracle.note oracle ~page ~slot (Some data)
        | Error _ -> ()
      end
      else
        match Engine.delete engine ~tx ~page ~slot with
        | Ok () -> Oracle.note oracle ~page ~slot None
        | Error _ -> ()
    done;
    if Rng.chance rng spec.abort_fraction then begin
      ok "run" (Engine.abort engine tx);
      Oracle.abort oracle
    end
    else begin
      Oracle.start_commit oracle;
      ok "run" (Engine.commit engine tx);
      Oracle.end_commit oracle
    end
  done
