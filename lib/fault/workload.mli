(** Deterministic transactional workload for the crash campaign.

    The same [spec] always produces the same stream of engine calls —
    and therefore the same stream of flash operations — which is what
    lets {!Campaign} count operations once and then crash at each index. *)

type spec = {
  seed : int;
  transactions : int;
  pages : int;
  slots_per_page : int;  (** records pre-loaded per page during setup *)
  payload : int;  (** record size in bytes *)
  abort_fraction : float;
}

val default : spec

val max_slots : spec -> int
(** Upper bound on slot numbers the run can create; the oracle's sweep
    range. *)

val setup : Ipl_core.Ipl_engine.t -> Oracle.t -> spec -> int array
(** Allocate the pages, load the initial records (mirrored into the
    oracle as already-committed), commit and checkpoint. Returns the page
    ids the run will use. *)

val run : Ipl_core.Ipl_engine.t -> Oracle.t -> spec -> pages:int array -> unit
(** Execute the transaction mix, mirroring every successful engine call
    into the oracle. Raises whatever the engine raises — under a fault
    plan, typically {!Flash_sim.Flash_chip.Power_loss}. *)

type resilient_outcome = {
  committed : int;
  aborted : int;  (** includes transactions aborted by device errors *)
  degraded_at : int option;  (** 1-based transaction index, if degraded *)
  read_failures : int;  (** transactions lost to [Read_failed] *)
}

type concurrent_outcome = {
  committed_txns : int;
  aborted_txns : int;  (** voluntary aborts plus conflict-doomed rollbacks *)
  conflicts : int;  (** write-write conflicts detected by the MVCC layer *)
}

val setup_concurrent : Ipl_core.Ipl_engine.t -> Concurrent_oracle.t -> spec -> int array
(** {!setup}, mirroring into the concurrent-history oracle instead. *)

val run_concurrent :
  Ipl_core.Ipl_engine.t ->
  Concurrent_oracle.t ->
  spec ->
  sessions:int ->
  pages:int array ->
  concurrent_outcome
(** The same transaction mix interleaved round-robin over [sessions]
    concurrent {!Ipl_txn.Mvcc} transactions with a group-commit window of
    [sessions]. Deterministic for a fixed [(spec, sessions)], so the
    crash campaign can count flash operations once and crash each re-run
    at a chosen index. Every successful MVCC write is mirrored into the
    oracle; the durable watermark follows the group barriers. Raises
    whatever the engine raises — under a fault plan, typically
    {!Flash_sim.Flash_chip.Power_loss}. *)

val run_resilient :
  Ipl_core.Ipl_engine.t -> Oracle.t -> spec -> pages:int array -> resilient_outcome
(** The same mix through the exception-free entry points
    ([Ipl_engine.commit_result] etc.), for campaigns that inject device
    failures rather than crashes: a transaction hitting
    [Device_degraded]/[Read_failed] is aborted (mirrored into the
    oracle), and degradation ends the run. {!Flash_sim.Flash_chip.Power_loss}
    still escapes, for plans that also crash the chip. *)
