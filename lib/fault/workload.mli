(** Deterministic transactional workload for the crash campaign.

    The same [spec] always produces the same stream of engine calls —
    and therefore the same stream of flash operations — which is what
    lets {!Campaign} count operations once and then crash at each index. *)

type spec = {
  seed : int;
  transactions : int;
  pages : int;
  slots_per_page : int;  (** records pre-loaded per page during setup *)
  payload : int;  (** record size in bytes *)
  abort_fraction : float;
}

val default : spec

val max_slots : spec -> int
(** Upper bound on slot numbers the run can create; the oracle's sweep
    range. *)

val setup : Ipl_core.Ipl_engine.t -> Oracle.t -> spec -> int array
(** Allocate the pages, load the initial records (mirrored into the
    oracle as already-committed), commit and checkpoint. Returns the page
    ids the run will use. *)

val run : Ipl_core.Ipl_engine.t -> Oracle.t -> spec -> pages:int array -> unit
(** Execute the transaction mix, mirroring every successful engine call
    into the oracle. Raises whatever the engine raises — under a fault
    plan, typically {!Flash_sim.Flash_chip.Power_loss}. *)
