type key = int * int (* page, slot *)

type t = {
  base : (key, bytes) Hashtbl.t;  (* durable setup state *)
  active : (int, (key * bytes option) list ref) Hashtbl.t;  (* txn -> writes, newest first *)
  mutable commits : (int * (key * bytes option) list) list;  (* newest first; writes in apply order *)
  mutable committing : int option;
  mutable durable : int;  (* commits settled by a completed barrier *)
}

type outcome = Settled | In_doubt

let create () =
  {
    base = Hashtbl.create 256;
    active = Hashtbl.create 64;
    commits = [];
    committing = None;
    durable = 0;
  }

let seed t ~page ~slot data = Hashtbl.replace t.base (page, slot) data
let begin_txn t ~txn = Hashtbl.replace t.active txn (ref [])

let note t ~txn ~page ~slot value =
  match Hashtbl.find_opt t.active txn with
  | Some ws -> ws := ((page, slot), value) :: !ws
  | None -> invalid_arg "Concurrent_oracle.note: unknown transaction"

let start_commit t ~txn = t.committing <- Some txn

let promote t txn =
  match Hashtbl.find_opt t.active txn with
  | None -> invalid_arg "Concurrent_oracle: commit of unknown transaction"
  | Some ws ->
      Hashtbl.remove t.active txn;
      t.commits <- (txn, List.rev !ws) :: t.commits

let end_commit t ~txn =
  t.committing <- None;
  promote t txn

let abort t ~txn =
  if t.committing = Some txn then t.committing <- None;
  Hashtbl.remove t.active txn

let durable t n = if n > t.durable then t.durable <- n
let committed_count t = List.length t.commits

(* A crash mid-commit: the transaction's record was appended to the
   sequential log after every earlier commit's, so it is exactly the
   optional last entry of the commit order — the prefix sweep in [check]
   may stop before it or include it. Every other live transaction rolls
   back unconditionally. *)
let crash t =
  let outcome =
    match t.committing with
    | Some txn when Hashtbl.mem t.active txn ->
        promote t txn;
        In_doubt
    | _ -> Settled
  in
  t.committing <- None;
  Hashtbl.reset t.active;
  outcome

let show = function
  | None -> "<absent>"
  | Some b -> Printf.sprintf "%d bytes (%08x)" (Bytes.length b) (Hashtbl.hash b)

(* The recovered database must equal base + commits[0..k] for some k in
   [durable, n]: at least everything a completed barrier settled, at most
   everything that ever committed, and nothing in between may be skipped
   (the transaction log is sequential, so durability is prefix-closed).
   The sweep applies one commit at a time and compares after each step. *)
let check t ~read ~pages ~slots =
  let raised = ref [] in
  let actual = Hashtbl.create 256 in
  List.iter
    (fun page ->
      for slot = 0 to slots - 1 do
        match (try Ok (read ~page ~slot) with e -> Error (Printexc.to_string e)) with
        | Ok v -> Option.iter (fun b -> Hashtbl.replace actual (page, slot) b) v
        | Error msg ->
            raised :=
              Printf.sprintf "page %d slot %d: read raised %s" page slot msg :: !raised
      done)
    pages;
  let state = Hashtbl.copy t.base in
  let apply (_, writes) =
    List.iter
      (fun (k, v) ->
        match v with
        | Some b -> Hashtbl.replace state k b
        | None -> Hashtbl.remove state k)
      writes
  in
  let diffs () =
    let ds = ref [] in
    List.iter
      (fun page ->
        for slot = 0 to slots - 1 do
          let expect = Hashtbl.find_opt state (page, slot) in
          let found = Hashtbl.find_opt actual (page, slot) in
          if expect <> found then
            ds :=
              Printf.sprintf "page %d slot %d: expected %s, found %s" page slot
                (show expect) (show found)
              :: !ds
        done)
      pages;
    List.rev !ds
  in
  let commits = List.rev t.commits in
  let rec skip k = function
    | c :: rest when k < t.durable ->
        apply c;
        skip (k + 1) rest
    | rest -> rest
  in
  let rest = skip 0 commits in
  let rec sweep rest =
    match (diffs (), rest) with
    | [], _ -> []
    | ds, [] ->
        Printf.sprintf
          "no commit-prefix state matches (durable watermark %d, %d commits); \
           diffs against the full commit order follow"
          t.durable (List.length commits)
        :: ds
    | _, c :: rest ->
        apply c;
        sweep rest
  in
  match !raised with [] -> sweep rest | rs -> List.rev rs @ sweep rest
