module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module FStats = Flash_sim.Flash_stats
module Engine = Ipl_core.Ipl_engine
module Config = Ipl_core.Ipl_config

type report = {
  total_ops : int;
  setup_ops : int;
  crash_points : int;
  recovered : int;
  in_doubt : int;
  violations : (int * string list) list;
  max_wear : int;
  mean_wear : float;
}

(* Small pool so evictions (and their log-sector flushes) happen mid-run;
   group_commit = huge in broken mode means commits are recorded but never
   forced — the deliberately unsound configuration the checker must catch. *)
let engine_config ~broken =
  {
    Config.default with
    Config.recovery_enabled = true;
    buffer_pages = 8;
    group_commit = (if broken then 1_000_000 else 0);
  }

(* Lazy-recovery variant: same deliberately small pool, plus a fuzzy
   checkpoint every 16 commits so the restart under test actually has
   coverage to lean on. [lazy_recovery] is set only on the engine doing
   the restart — the crashed state itself is produced identically. *)
let recovery_config ~broken ~lazy_recovery =
  { (engine_config ~broken) with Config.checkpoint_every = 16; lazy_recovery }

let chip_config () = FConfig.default ~num_blocks:32 ()

let fresh ~config spec =
  let chip = Chip.create (chip_config ()) in
  let engine = Engine.create ~config chip in
  let oracle = Oracle.create () in
  let pages = Workload.setup engine oracle spec in
  (chip, engine, oracle, pages)

(* [n] indices spread evenly across [lo, hi). *)
let spread ~lo ~hi n =
  let total = hi - lo in
  if n <= 0 || n >= total then List.init total (fun i -> lo + i)
  else List.init n (fun i -> lo + (i * total / n))

(* Keep every [stride]-th point: a cheap thinning knob on top of
   [sample] for CI runs that sweep long workloads. *)
let thin ~stride points =
  if stride <= 1 then points else List.filteri (fun i _ -> i mod stride = 0) points

(* Logical digest of an engine's committed state: every page/slot value
   in a fixed order, hashed. Two engines with identical logical content
   produce equal digests regardless of physical flash layout — the
   lazy-vs-eager equivalence check. Reading every slot also drives the
   lazy engine's first-touch repairs. *)
let digest engine ~pages ~slots =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun page ->
      for slot = 0 to slots - 1 do
        match Engine.read engine ~page ~slot with
        | Ok (Some v) ->
            Buffer.add_string buf (Printf.sprintf "|%d.%d.%d:" page slot (Bytes.length v));
            Buffer.add_bytes buf v
        | Ok None -> Buffer.add_string buf (Printf.sprintf "|%d.%d.x" page slot)
        | Error e -> failwith ("Campaign: digest read: " ^ Engine.error_to_string e)
      done)
    pages;
  Digest.string (Buffer.contents buf)

(* Restart an eager twin from an identically crashed chip and require its
   logical digest to match the lazy engine's — once right after the lazy
   restart (first-touch repairs fire during the digest reads) and again
   after the background drainer has settled every remaining unit. *)
let lazy_vs_eager ~eager_config ~crashed lazy_engine ~pages ~slots =
  let chip_e, _oracle_e, _pages_e = crashed () in
  match Engine.restart ~config:eager_config chip_e with
  | exception e -> [ "eager twin restart raised: " ^ Printexc.to_string e ]
  | eager_engine, _aborted ->
      let de = digest eager_engine ~pages ~slots in
      let dl = digest lazy_engine ~pages ~slots in
      let vs =
        if dl <> de then [ "lazy/eager digest mismatch after restart" ] else []
      in
      let vs =
        match Engine.drain_repairs lazy_engine ~max_eus:max_int with
        | Ok _ -> vs
        | Error e -> vs @ [ "drain_repairs: " ^ Engine.error_to_string e ]
      in
      let vs =
        if Engine.repair_pending lazy_engine <> 0 then
          vs @ [ "repairs still pending after full drain" ]
        else vs
      in
      if digest lazy_engine ~pages ~slots <> de then
        vs @ [ "lazy/eager digest mismatch after repair drain" ]
      else vs

(* The per-point verdict: did the restart complete, did the crash land
   mid-commit, and what (if anything) did the checker flag. Verdicts are
   a pure function of (spec, point) — each one rebuilds its own chip,
   engine and oracle — which is what lets the campaign fan points across
   domains and still merge a report identical to the serial sweep. *)
type verdict = { point : int; ok : bool; doubt : bool; vs : string list }

let merge_verdicts ~total_ops ~setup_ops ~gstats verdicts =
  let recovered = ref 0 in
  let in_doubt = ref 0 in
  let violations = ref [] in
  Array.iter
    (fun v ->
      if v.ok then incr recovered;
      if v.doubt then incr in_doubt;
      if v.vs <> [] then violations := (v.point, v.vs) :: !violations)
    verdicts;
  {
    total_ops;
    setup_ops;
    crash_points = Array.length verdicts;
    recovered = !recovered;
    in_doubt = !in_doubt;
    violations = List.rev !violations;
    max_wear = gstats.FStats.max_wear;
    mean_wear = gstats.FStats.mean_wear;
  }

let run ?(tear = true) ?(broken = false) ?(max_ops = 0) ?(sample = 0) ?(stride = 1)
    ?(lazy_mode = false) ?(jobs = 1) spec =
  let run_config =
    if lazy_mode then recovery_config ~broken ~lazy_recovery:false
    else engine_config ~broken
  in
  (* Golden run: same spec, no faults — just count the flash operations. *)
  let chip, engine, oracle, pages = fresh ~config:run_config spec in
  let setup_ops = Chip.op_count chip in
  Workload.run engine oracle spec ~pages;
  let total_ops = Chip.op_count chip in
  let gstats = Chip.stats chip in
  let hi = if max_ops > 0 then min total_ops (setup_ops + max_ops) else total_ops in
  let points = thin ~stride (spread ~lo:setup_ops ~hi sample) in
  let check_point point =
    (* The crashed state is a deterministic function of (spec, point):
       [crashed] can rebuild a bit-identical chip for the eager twin. *)
    let crashed () =
      let chip, engine, oracle, pages = fresh ~config:run_config spec in
      Fault_plan.install chip (Fault_plan.crash_at ~tear point);
      (try Workload.run engine oracle spec ~pages with Chip.Power_loss _ -> ());
      Fault_plan.clear chip;
      (chip, oracle, pages)
    in
    let chip, oracle, pages = crashed () in
    let doubt =
      match Oracle.crash oracle with
      | Oracle.In_doubt -> true
      | Oracle.Rolled_back -> false
    in
    let restart_config =
      if lazy_mode then recovery_config ~broken ~lazy_recovery:true else run_config
    in
    match Engine.restart ~config:restart_config chip with
    | exception e ->
        { point; ok = false; doubt; vs = [ "restart raised: " ^ Printexc.to_string e ] }
    | engine', _aborted ->
        let vs =
          Oracle.check oracle
            ~read:(fun ~page ~slot ->
              match Engine.read engine' ~page ~slot with
              | Ok v -> v
              | Error e -> failwith ("Campaign: read: " ^ Engine.error_to_string e))
            ~pages:(Array.to_list pages) ~slots:(Workload.max_slots spec)
        in
        let vs =
          if not lazy_mode then vs
          else
            vs
            @ lazy_vs_eager ~eager_config:run_config ~crashed engine' ~pages
                ~slots:(Workload.max_slots spec)
        in
        { point; ok = true; doubt; vs }
  in
  let verdicts =
    Par.Domain_pool.with_pool ~jobs (fun pool ->
        Par.Domain_pool.parallel_map pool check_point (Array.of_list points))
  in
  merge_verdicts ~total_ops ~setup_ops ~gstats verdicts

(* ------------------------------------------------------------------ *)
(* Concurrent crash campaign: MVCC sessions + group commit              *)

let fresh_concurrent ~config spec =
  let chip = Chip.create (chip_config ()) in
  let engine = Engine.create ~config chip in
  let oracle = Concurrent_oracle.create () in
  let pages = Workload.setup_concurrent engine oracle spec in
  (chip, engine, oracle, pages)

(* The crash-point sweep of [run], over concurrent histories: the same
   mix interleaved across [sessions] MVCC transactions with group
   commit. The oracle's prefix check replaces the single-transaction
   model — after every crash the recovered state must equal the setup
   state plus a commit-order prefix reaching at least the durable
   watermark, with conflict-losers and rolled-back transactions absent. *)
let run_concurrent ?(tear = true) ?(max_ops = 0) ?(sample = 0) ?(stride = 1)
    ?(lazy_mode = false) ?(sessions = 8) ?(jobs = 1) spec =
  let run_config =
    if lazy_mode then recovery_config ~broken:false ~lazy_recovery:false
    else engine_config ~broken:false
  in
  let chip, engine, oracle, pages = fresh_concurrent ~config:run_config spec in
  let setup_ops = Chip.op_count chip in
  ignore
    (Workload.run_concurrent engine oracle spec ~sessions ~pages
      : Workload.concurrent_outcome);
  let total_ops = Chip.op_count chip in
  let gstats = Chip.stats chip in
  let hi = if max_ops > 0 then min total_ops (setup_ops + max_ops) else total_ops in
  let points = thin ~stride (spread ~lo:setup_ops ~hi sample) in
  let check_point point =
    let crashed () =
      let chip, engine, oracle, pages = fresh_concurrent ~config:run_config spec in
      Fault_plan.install chip (Fault_plan.crash_at ~tear point);
      (try
         ignore
           (Workload.run_concurrent engine oracle spec ~sessions ~pages
             : Workload.concurrent_outcome)
       with Chip.Power_loss _ -> ());
      Fault_plan.clear chip;
      (chip, oracle, pages)
    in
    let chip, oracle, pages = crashed () in
    let doubt =
      match Concurrent_oracle.crash oracle with
      | Concurrent_oracle.In_doubt -> true
      | Concurrent_oracle.Settled -> false
    in
    let restart_config =
      if lazy_mode then recovery_config ~broken:false ~lazy_recovery:true
      else run_config
    in
    match Engine.restart ~config:restart_config chip with
    | exception e ->
        { point; ok = false; doubt; vs = [ "restart raised: " ^ Printexc.to_string e ] }
    | engine', _aborted ->
        let vs =
          Concurrent_oracle.check oracle
            ~read:(fun ~page ~slot ->
              match Engine.read engine' ~page ~slot with
              | Ok v -> v
              | Error e -> failwith ("Campaign: read: " ^ Engine.error_to_string e))
            ~pages:(Array.to_list pages) ~slots:(Workload.max_slots spec)
        in
        let vs =
          if not lazy_mode then vs
          else
            vs
            @ lazy_vs_eager ~eager_config:run_config ~crashed engine' ~pages
                ~slots:(Workload.max_slots spec)
        in
        { point; ok = true; doubt; vs }
  in
  let verdicts =
    Par.Domain_pool.with_pool ~jobs (fun pool ->
        Par.Domain_pool.parallel_map pool check_point (Array.of_list points))
  in
  merge_verdicts ~total_ops ~setup_ops ~gstats verdicts

(* ------------------------------------------------------------------ *)
(* Resilience campaign: device failures instead of crashes              *)

type profile = Flaky | Program_faults | Erase_faults | Wear_out

let profile_to_string = function
  | Flaky -> "flaky"
  | Program_faults -> "program"
  | Erase_faults -> "erase"
  | Wear_out -> "wearout"

let profile_of_string = function
  | "flaky" -> Some Flaky
  | "program" -> Some Program_faults
  | "erase" -> Some Erase_faults
  | "wearout" -> Some Wear_out
  | _ -> None

type resilience_report = {
  profile : profile;
  outcome : Workload.resilient_outcome;
  writes_refused_after_degrade : bool;
  degradation_persisted : bool;
  resilience : Resilience.Bbm.stats;
  violations : string list;
  restart_violations : string list;
}

let resilience_ok r =
  r.violations = [] && r.restart_violations = [] && r.writes_refused_after_degrade
  && r.degradation_persisted

let resilience_config ~spares =
  {
    Config.default with
    Config.recovery_enabled = true;
    buffer_pages = 8;
    spare_blocks = spares;
  }

(* The engine reserves blocks 0..7 for the metadata and transaction logs
   (4 + 4 with its defaults); the wear-out plan must spare those — they
   sit outside the bad-block manager. *)
let data_first_block = 8

let plan_of_profile ~seed profile =
  let min_sector = data_first_block * FConfig.sectors_per_block (chip_config ()) in
  match profile with
  | Flaky -> Fault_plan.flaky_reads ~seed ~min_sector ()
  | Program_faults -> Fault_plan.program_failures ~seed ~rate:0.02 ~min_sector ()
  | Erase_faults ->
      Fault_plan.erase_failures ~seed ~rate:0.1 ~first_block:data_first_block ()
  | Wear_out ->
      Fault_plan.wear_out ~seed ~first_block:data_first_block ~min_cycles:2
        ~max_cycles:5 ()

(* Run one resilience profile end to end: a fresh resilient engine, the
   fault plan installed for the whole run, the oracle checked against the
   surviving state — once on the live (possibly degraded) engine, once
   after a restart. Zero data loss up to the moment of degradation is the
   invariant; after it, writes must be refused and the read-only state
   must survive the restart. *)
let run_resilience ?(spares = 4) ?(transactions = 0) ?(seed = 7) profile =
  let spec =
    {
      Workload.default with
      Workload.seed;
      transactions =
        (if transactions > 0 then transactions
         else match profile with Wear_out -> 2000 | _ -> 120);
    }
  in
  let config = resilience_config ~spares in
  let chip = Chip.create (chip_config ()) in
  let engine = Engine.create ~config chip in
  let oracle = Oracle.create () in
  let pages = Workload.setup engine oracle spec in
  Fault_plan.install chip (plan_of_profile ~seed profile);
  let outcome = Workload.run_resilient engine oracle spec ~pages in
  let read ~page ~slot =
    match Engine.read engine ~page ~slot with
    | Ok v -> v
    | Error e -> failwith ("Campaign: read: " ^ Engine.error_to_string e)
  in
  let violations =
    Oracle.check oracle ~read ~pages:(Array.to_list pages)
      ~slots:(Workload.max_slots spec)
  in
  let writes_refused_after_degrade =
    match outcome.Workload.degraded_at with
    | None -> true
    | Some _ -> (
        match Engine.insert engine ~tx:Engine.no_txn ~page:pages.(0) (Bytes.make 8 'x') with
        | Error Engine.Device_degraded -> true
        | Ok _ | Error _ -> false)
  in
  let resilience = (Engine.stats engine).Engine.resilience in
  Fault_plan.clear chip;
  let restart_violations, degradation_persisted =
    match Engine.restart ~config chip with
    | exception e -> ([ "restart raised: " ^ Printexc.to_string e ], false)
    | engine', _ ->
        let vs =
          Oracle.check oracle
            ~read:(fun ~page ~slot ->
                match Engine.read engine' ~page ~slot with
                | Ok v -> v
                | Error e -> failwith ("Campaign: read: " ^ Engine.error_to_string e))
            ~pages:(Array.to_list pages) ~slots:(Workload.max_slots spec)
        in
        (vs, Engine.degraded engine' = (outcome.Workload.degraded_at <> None))
  in
  {
    profile;
    outcome;
    writes_refused_after_degrade;
    degradation_persisted;
    resilience;
    violations;
    restart_violations;
  }

(* Crash-during-remap: force a program failure (and so a relocation) at
   the first program after setup, then power-fail a few operations later
   — inside the copy, between the copy and the remap force, or just
   after. Whatever the crash point, restart must land on the old complete
   mapping or the new complete one. Returns per-delta violations. *)
let run_remap_crash ?(spares = 4) ?(seed = 7) ?(deltas = [ 1; 2; 3; 5; 8; 13; 21; 40 ])
    () =
  let config = resilience_config ~spares in
  let spec = { Workload.default with Workload.seed } in
  let violations = ref [] in
  List.iter
    (fun delta ->
      let chip = Chip.create (chip_config ()) in
      let engine = Engine.create ~config chip in
      let oracle = Oracle.create () in
      let pages = Workload.setup engine oracle spec in
      let point = Chip.op_count chip in
      let min_sector = data_first_block * FConfig.sectors_per_block (chip_config ()) in
      Fault_plan.install chip
        (Fault_plan.program_fail_then_crash ~point ~crash_after:delta ~min_sector ());
      (try ignore (Workload.run_resilient engine oracle spec ~pages)
       with Chip.Power_loss _ -> ());
      (match Oracle.crash oracle with Oracle.In_doubt | Oracle.Rolled_back -> ());
      Fault_plan.clear chip;
      match Engine.restart ~config chip with
      | exception e ->
          violations :=
            (delta, [ "restart raised: " ^ Printexc.to_string e ]) :: !violations
      | engine', _ ->
          let vs =
            Oracle.check oracle
              ~read:(fun ~page ~slot ->
                match Engine.read engine' ~page ~slot with
                | Ok v -> v
                | Error e -> failwith ("Campaign: read: " ^ Engine.error_to_string e))
              ~pages:(Array.to_list pages) ~slots:(Workload.max_slots spec)
          in
          if vs <> [] then violations := (delta, vs) :: !violations)
    deltas;
  List.rev !violations

let pp_resilience_report ppf r =
  let o = r.outcome in
  Fmt.pf ppf
    "@[<v>profile: %s@,\
     transactions: %d committed, %d aborted (%d by read failure)@,\
     degraded: %s@,\
     writes refused after degrade: %b; degradation persisted: %b@,\
     %a@,\
     violations: %d live, %d after restart@]"
    (profile_to_string r.profile)
    o.Workload.committed o.Workload.aborted o.Workload.read_failures
    (match o.Workload.degraded_at with
    | None -> "no"
    | Some i -> Printf.sprintf "at transaction %d" i)
    r.writes_refused_after_degrade r.degradation_persisted Resilience.Bbm.Stats.pp
    r.resilience
    (List.length r.violations)
    (List.length r.restart_violations);
  List.iter (fun v -> Fmt.pf ppf "@,- %s" v) r.violations;
  List.iter (fun v -> Fmt.pf ppf "@,- (restart) %s" v) r.restart_violations

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>flash ops: %d (%d setup + %d workload)@,\
     crash points tested: %d (recovered: %d, in-doubt commits: %d)@,\
     violations: %d@,\
     golden-run wear: max=%d mean=%.2f@]"
    r.total_ops r.setup_ops (r.total_ops - r.setup_ops) r.crash_points r.recovered r.in_doubt
    (List.length r.violations) r.max_wear r.mean_wear;
  List.iter
    (fun (point, vs) ->
      Fmt.pf ppf "@,@[<v 2>crash at op %d:%a@]" point
        (fun ppf -> List.iter (fun v -> Fmt.pf ppf "@,- %s" v))
        vs)
    r.violations
