module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module FStats = Flash_sim.Flash_stats
module Engine = Ipl_core.Ipl_engine
module Config = Ipl_core.Ipl_config

type report = {
  total_ops : int;
  setup_ops : int;
  crash_points : int;
  recovered : int;
  in_doubt : int;
  violations : (int * string list) list;
  max_wear : int;
  mean_wear : float;
}

(* Small pool so evictions (and their log-sector flushes) happen mid-run;
   group_commit = huge in broken mode means commits are recorded but never
   forced — the deliberately unsound configuration the checker must catch. *)
let engine_config ~broken =
  {
    Config.default with
    Config.recovery_enabled = true;
    buffer_pages = 8;
    group_commit = (if broken then 1_000_000 else 0);
  }

let chip_config () = FConfig.default ~num_blocks:32 ()

let fresh ~broken spec =
  let chip = Chip.create (chip_config ()) in
  let engine = Engine.create ~config:(engine_config ~broken) chip in
  let oracle = Oracle.create () in
  let pages = Workload.setup engine oracle spec in
  (chip, engine, oracle, pages)

(* [n] indices spread evenly across [lo, hi). *)
let spread ~lo ~hi n =
  let total = hi - lo in
  if n <= 0 || n >= total then List.init total (fun i -> lo + i)
  else List.init n (fun i -> lo + (i * total / n))

let run ?(tear = true) ?(broken = false) ?(max_ops = 0) ?(sample = 0) spec =
  (* Golden run: same spec, no faults — just count the flash operations. *)
  let chip, engine, oracle, pages = fresh ~broken spec in
  let setup_ops = Chip.op_count chip in
  Workload.run engine oracle spec ~pages;
  let total_ops = Chip.op_count chip in
  let gstats = Chip.stats chip in
  let hi = if max_ops > 0 then min total_ops (setup_ops + max_ops) else total_ops in
  let points = spread ~lo:setup_ops ~hi sample in
  let recovered = ref 0 in
  let in_doubt = ref 0 in
  let violations = ref [] in
  List.iter
    (fun point ->
      let chip, engine, oracle, pages = fresh ~broken spec in
      Fault_plan.install chip (Fault_plan.crash_at ~tear point);
      (try Workload.run engine oracle spec ~pages with Chip.Power_loss _ -> ());
      Fault_plan.clear chip;
      (match Oracle.crash oracle with
      | Oracle.In_doubt -> incr in_doubt
      | Oracle.Rolled_back -> ());
      match Engine.restart ~config:(engine_config ~broken) chip with
      | exception e ->
          violations :=
            (point, [ "restart raised: " ^ Printexc.to_string e ]) :: !violations
      | engine', _aborted ->
          incr recovered;
          let vs =
            Oracle.check oracle
              ~read:(fun ~page ~slot -> Engine.read engine' ~page ~slot)
              ~pages:(Array.to_list pages) ~slots:(Workload.max_slots spec)
          in
          if vs <> [] then violations := (point, vs) :: !violations)
    points;
  {
    total_ops;
    setup_ops;
    crash_points = List.length points;
    recovered = !recovered;
    in_doubt = !in_doubt;
    violations = List.rev !violations;
    max_wear = gstats.FStats.max_wear;
    mean_wear = gstats.FStats.mean_wear;
  }

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>flash ops: %d (%d setup + %d workload)@,\
     crash points tested: %d (recovered: %d, in-doubt commits: %d)@,\
     violations: %d@,\
     golden-run wear: max=%d mean=%.2f@]"
    r.total_ops r.setup_ops (r.total_ops - r.setup_ops) r.crash_points r.recovered r.in_doubt
    (List.length r.violations) r.max_wear r.mean_wear;
  List.iter
    (fun (point, vs) ->
      Fmt.pf ppf "@,@[<v 2>crash at op %d:%a@]" point
        (fun ppf -> List.iter (fun v -> Fmt.pf ppf "@,- %s" v))
        vs)
    r.violations
