module Chip = Flash_sim.Flash_chip

type t = int -> Chip.op -> Chip.fault_action

let none : t = fun _ _ -> Chip.Proceed

let crash_at ?(tear = false) point : t =
 fun idx op ->
  if idx < point then Chip.Proceed
  else
    match op with
    | Chip.Op_program { count; _ } when tear && count > 1 ->
        (* Tear the program in half: the first sectors land, the rest stay
           erased, and the chip dies — the worst-case partial page write. *)
        Chip.Tear (count / 2)
    | _ -> Chip.Fail_stop

let flip_bit ~point ~bit : t =
 fun idx op ->
  match op with
  | Chip.Op_program _ when idx = point -> Chip.Flip_bit bit
  | _ -> Chip.Proceed

let transient_read ~point : t =
 fun idx op ->
  match op with
  | Chip.Op_read _ when idx = point -> Chip.Read_fault
  | _ -> Chip.Proceed

(* Deterministic pseudo-randomness for the probabilistic plans: a plan
   must give the same answer for the same (seed, op index) in every run,
   so we hash instead of drawing from a stateful generator. *)
let draw ~seed idx salt =
  float_of_int (Hashtbl.hash (seed, idx, salt) land 0xFFFFFF) /. 16777216.0

let flaky_reads ~seed ?(correctable = 0.05) ?(transient = 0.01) ?(min_sector = 0) () : t
    =
 fun idx op ->
  match op with
  | Chip.Op_read { sector; _ } when sector >= min_sector ->
      if draw ~seed idx 0 < transient then Chip.Read_fault
      else if draw ~seed idx 1 < correctable then Chip.Read_correctable
      else Chip.Proceed
  | _ -> Chip.Proceed

let program_failures ~seed ~rate ?(min_sector = 0) () : t =
 fun idx op ->
  match op with
  | Chip.Op_program { sector; _ } when sector >= min_sector && draw ~seed idx 2 < rate
    ->
      Chip.Program_fail
  | _ -> Chip.Proceed

let erase_failures ~seed ~rate ?(first_block = 0) () : t =
 fun idx op ->
  match op with
  | Chip.Op_erase { block } when block >= first_block && draw ~seed idx 3 < rate ->
      Chip.Erase_fail
  | _ -> Chip.Proceed

let wear_out ~seed ~first_block ~min_cycles ~max_cycles () : t =
  (* Stateful by design: each block past [first_block] gets a seeded
     endurance budget; once its erase count (counted here, not by the
     chip) exceeds the budget every further erase fails — a permanently
     worn-out block. Blocks below [first_block] (the metadata and
     transaction log regions, which sit outside the bad-block manager)
     never wear. *)
  let erases = Hashtbl.create 64 in
  let budget b = min_cycles + (Hashtbl.hash (seed, b) mod (max_cycles - min_cycles + 1)) in
  fun _idx op ->
    match op with
    | Chip.Op_erase { block } when block >= first_block ->
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt erases block) in
        Hashtbl.replace erases block n;
        if n > budget block then Chip.Erase_fail else Chip.Proceed
    | _ -> Chip.Proceed

let program_fail_then_crash ~point ~crash_after ?(min_sector = 0) () : t =
  let failed_at = ref (-1) in
  fun idx op ->
    if !failed_at >= 0 && idx >= !failed_at + crash_after then Chip.Fail_stop
    else
      match op with
      | Chip.Op_program { sector; _ }
        when !failed_at < 0 && idx >= point && sector >= min_sector ->
          failed_at := idx;
          Chip.Program_fail
      | _ -> Chip.Proceed

let seq (plans : t list) : t =
 fun idx op ->
  let rec first = function
    | [] -> Chip.Proceed
    | p :: rest -> ( match p idx op with Chip.Proceed -> first rest | a -> a)
  in
  first plans

let install chip (plan : t) = Chip.set_fault_hook chip (Some plan)
let clear chip = Chip.set_fault_hook chip None
