module Chip = Flash_sim.Flash_chip

type t = int -> Chip.op -> Chip.fault_action

let none : t = fun _ _ -> Chip.Proceed

let crash_at ?(tear = false) point : t =
 fun idx op ->
  if idx < point then Chip.Proceed
  else
    match op with
    | Chip.Op_program { count; _ } when tear && count > 1 ->
        (* Tear the program in half: the first sectors land, the rest stay
           erased, and the chip dies — the worst-case partial page write. *)
        Chip.Tear (count / 2)
    | _ -> Chip.Fail_stop

let flip_bit ~point ~bit : t =
 fun idx op ->
  match op with
  | Chip.Op_program _ when idx = point -> Chip.Flip_bit bit
  | _ -> Chip.Proceed

let transient_read ~point : t =
 fun idx op ->
  match op with
  | Chip.Op_read _ when idx = point -> Chip.Read_fault
  | _ -> Chip.Proceed

let seq (plans : t list) : t =
 fun idx op ->
  let rec first = function
    | [] -> Chip.Proceed
    | p :: rest -> ( match p idx op with Chip.Proceed -> first rest | a -> a)
  in
  first plans

let install chip (plan : t) = Chip.set_fault_hook chip (Some plan)
let clear chip = Chip.set_fault_hook chip None
