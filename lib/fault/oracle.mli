(** Model-based recovery oracle.

    A plain hash table tracks what every (page, slot) must hold after a
    crash and restart: the committed state, plus — for a single active
    transaction — its pending writes, which must vanish on rollback and
    must appear atomically on commit. The workload driver mirrors every
    {e successful} engine call into the oracle; after a crash,
    {!check} compares the reopened engine against the model. *)

type t

type outcome =
  | Rolled_back  (** the active transaction must be gone after recovery *)
  | In_doubt
      (** the crash hit during commit: recovery may keep or drop the
          transaction, but must do so atomically *)

val create : unit -> t

val seed : t -> page:int -> slot:int -> bytes -> unit
(** Record a setup-time value that is already durable (pre-campaign). *)

val begin_txn : t -> unit

val note : t -> page:int -> slot:int -> bytes option -> unit
(** Mirror one successful engine mutation: [Some data] for insert/update,
    [None] for delete. Inside a transaction the write is pending;
    outside, it is applied to the committed state directly. *)

val current : t -> page:int -> slot:int -> bytes option
(** The transaction's own view (pending overlaid on committed) — what a
    read through the engine would return right now. *)

val start_commit : t -> unit
(** Call immediately before [Ipl_engine.commit]: from here until
    {!end_commit} the transaction is in doubt. *)

val end_commit : t -> unit
val abort : t -> unit

val crash : t -> outcome
(** Resolve the model after a power loss. *)

val check :
  t -> read:(page:int -> slot:int -> bytes option) -> pages:int list -> slots:int -> string list
(** Read back slots [0..slots-1] of every page through [read] (normally
    [Ipl_engine.read] on the restarted engine) and return human-readable
    violations; [[]] means the recovered state is exactly the model (or,
    for an in-doubt transaction, exactly one of its two legal states).
    A [read] that raises is itself a violation. *)
