(** Systematic crash-point campaign.

    One golden run of the deterministic {!Workload} counts the chip's
    flash operations. The campaign then re-runs the workload once per
    crash point: a fresh chip and engine, a {!Fault_plan.crash_at} pinned
    to that operation index (tearing multi-sector programs when [tear]),
    the power loss caught, the chip revived, the database reopened with
    [Ipl_engine.restart], and the recovered state compared against the
    {!Oracle} — committed transactions durable, uncommitted ones rolled
    back, in-doubt commits atomic, every page readable. *)

type report = {
  total_ops : int;  (** flash operations in the golden run *)
  setup_ops : int;  (** of which setup (not eligible as crash points) *)
  crash_points : int;  (** crash points actually tested *)
  recovered : int;  (** restarts that completed *)
  in_doubt : int;  (** crash points that hit mid-commit *)
  violations : (int * string list) list;  (** crash point -> violations *)
  max_wear : int;
  mean_wear : float;  (** per-block erase wear of the golden run *)
}

val run : ?tear:bool -> ?broken:bool -> ?max_ops:int -> ?sample:int -> Workload.spec -> report
(** [tear] (default [true]) tears multi-sector programs at the crash
    point instead of failing cleanly before them. [broken] (default
    [false]) runs the engine with commit-time log forcing effectively
    disabled (an enormous group-commit window) — a deliberately unsound
    recovery configuration that the checker must flag, used to validate
    the checker itself. [max_ops] (0 = no cap) bounds how far past setup
    crash points may fall; [sample] (0 = all) tests only that many
    points, spread evenly. *)

val pp_report : Format.formatter -> report -> unit
