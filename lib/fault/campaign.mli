(** Systematic crash-point campaign.

    One golden run of the deterministic {!Workload} counts the chip's
    flash operations. The campaign then re-runs the workload once per
    crash point: a fresh chip and engine, a {!Fault_plan.crash_at} pinned
    to that operation index (tearing multi-sector programs when [tear]),
    the power loss caught, the chip revived, the database reopened with
    [Ipl_engine.restart], and the recovered state compared against the
    {!Oracle} — committed transactions durable, uncommitted ones rolled
    back, in-doubt commits atomic, every page readable. *)

type report = {
  total_ops : int;  (** flash operations in the golden run *)
  setup_ops : int;  (** of which setup (not eligible as crash points) *)
  crash_points : int;  (** crash points actually tested *)
  recovered : int;  (** restarts that completed *)
  in_doubt : int;  (** crash points that hit mid-commit *)
  violations : (int * string list) list;  (** crash point -> violations *)
  max_wear : int;
  mean_wear : float;  (** per-block erase wear of the golden run *)
}

val run :
  ?tear:bool ->
  ?broken:bool ->
  ?max_ops:int ->
  ?sample:int ->
  ?stride:int ->
  ?lazy_mode:bool ->
  ?jobs:int ->
  Workload.spec ->
  report
(** [tear] (default [true]) tears multi-sector programs at the crash
    point instead of failing cleanly before them. [broken] (default
    [false]) runs the engine with commit-time log forcing effectively
    disabled (an enormous group-commit window) — a deliberately unsound
    recovery configuration that the checker must flag, used to validate
    the checker itself. [max_ops] (0 = no cap) bounds how far past setup
    crash points may fall; [sample] (0 = all) tests only that many
    points, spread evenly; [stride] (default 1) then keeps every
    [stride]-th of them.

    [lazy_mode] (default [false]) turns every crash point into a
    lazy-vs-eager equivalence check: the engine runs with fuzzy
    checkpoints enabled, the crashed chip is restarted with
    [lazy_recovery] and oracle-checked as usual, and an {e eager} twin —
    restarted from a bit-identical crashed chip rebuilt by the
    deterministic workload — must produce the same logical digest
    (every page/slot value), both right after the lazy restart and
    again after {!Ipl_core.Ipl_engine.drain_repairs} has settled every
    pending unit. Any mismatch is reported as a violation at that crash
    point.

    [jobs] (default 1) fans the crash points across a
    {!Par.Domain_pool} — each point rebuilds its own chip, engine and
    oracle, so the points are independent by construction, and the
    per-point verdicts are merged back in point order. The report is
    identical to the serial sweep for every job count; [jobs = 1] runs
    the serial path itself with no domains spawned. *)

val pp_report : Format.formatter -> report -> unit

val run_concurrent :
  ?tear:bool ->
  ?max_ops:int ->
  ?sample:int ->
  ?stride:int ->
  ?lazy_mode:bool ->
  ?sessions:int ->
  ?jobs:int ->
  Workload.spec ->
  report
(** The crash-point sweep of {!run} over {e concurrent} histories: the
    workload mix runs through [sessions] (default 8) interleaved
    {!Ipl_txn.Mvcc} transactions with a group-commit window of
    [sessions], checked by {!Concurrent_oracle} — the recovered state
    must equal some commit-order prefix at or past the durable watermark,
    with conflict-losers and rolled-back transactions absent. [in_doubt]
    counts crash points that hit inside a commit call. [stride],
    [lazy_mode] and [jobs] behave as in {!run} — in particular
    [lazy_mode] checks lazy-vs-eager digest equality over the concurrent
    histories too, and [jobs] parallelises the crash points without
    changing the report. *)

(** {1 Resilience campaign}

    Device-failure profiles (as opposed to crash points): the fault plan
    stays installed for a whole run of the workload against an engine
    with a bad-block manager ([spare_blocks > 0]), and the oracle asserts
    zero data loss up to the moment of degradation. *)

type profile =
  | Flaky  (** correctable + transient read faults *)
  | Program_faults  (** random program failures *)
  | Erase_faults  (** random erase failures *)
  | Wear_out  (** per-block endurance budgets, to spare-pool exhaustion *)

val profile_to_string : profile -> string

val profile_of_string : string -> profile option
(** ["flaky" | "program" | "erase" | "wearout"]. *)

type resilience_report = {
  profile : profile;
  outcome : Workload.resilient_outcome;
  writes_refused_after_degrade : bool;
      (** degraded engines must answer mutations with [Device_degraded] *)
  degradation_persisted : bool;
      (** a restart reproduces the (non-)degraded state *)
  resilience : Resilience.Bbm.stats;  (** retries, remaps, scrubs, … *)
  violations : string list;  (** oracle check on the live engine *)
  restart_violations : string list;  (** oracle check after restart *)
}

val resilience_ok : resilience_report -> bool
(** No violations (live or after restart) and both degradation
    assertions hold. *)

val run_resilience :
  ?spares:int -> ?transactions:int -> ?seed:int -> profile -> resilience_report
(** [spares] (default 4) sizes the spare pool; [transactions] overrides
    the profile's default workload length (wear-out runs long enough to
    exhaust the pool). *)

val run_remap_crash :
  ?spares:int -> ?seed:int -> ?deltas:int list -> unit -> (int * string list) list
(** Crash-during-remap sweep: force a program failure (hence a
    relocation) at the first program after setup, then power-fail
    [delta] operations later, restart, and check the oracle. The remap
    persist-before-switch ordering makes every delta recoverable; the
    returned list (delta, violations) is empty when all are. *)

val pp_resilience_report : Format.formatter -> resilience_report -> unit
