type key = int * int (* page, slot *)

type t = {
  committed : (key, bytes) Hashtbl.t;
  mutable pending : (key * bytes option) list; (* newest first; None = deleted *)
  mutable in_txn : bool;
  mutable committing : bool;
}

type outcome = Rolled_back | In_doubt

let create () =
  { committed = Hashtbl.create 256; pending = []; in_txn = false; committing = false }

let seed t ~page ~slot data = Hashtbl.replace t.committed (page, slot) data

let begin_txn t =
  t.pending <- [];
  t.in_txn <- true;
  t.committing <- false

let note t ~page ~slot value =
  if t.in_txn then t.pending <- ((page, slot), value) :: t.pending
  else
    match value with
    | Some b -> Hashtbl.replace t.committed (page, slot) b
    | None -> Hashtbl.remove t.committed (page, slot)

let current t ~page ~slot =
  match List.assoc_opt (page, slot) t.pending with
  | Some v -> v
  | None -> Hashtbl.find_opt t.committed (page, slot)

let apply_pending committed pending =
  List.iter
    (fun (k, v) ->
      match v with
      | Some b -> Hashtbl.replace committed k b
      | None -> Hashtbl.remove committed k)
    (List.rev pending)

let start_commit t = t.committing <- true

let end_commit t =
  apply_pending t.committed t.pending;
  t.pending <- [];
  t.in_txn <- false;
  t.committing <- false

let abort t =
  t.pending <- [];
  t.in_txn <- false;
  t.committing <- false

let crash t =
  t.in_txn <- false;
  if t.committing && t.pending <> [] then In_doubt
  else begin
    t.pending <- [];
    t.committing <- false;
    Rolled_back
  end

(* Compare the reopened database against the model. A transaction caught
   mid-commit is in doubt: recovery may legitimately land on either side of
   the commit, but must land on exactly one side for every record — so the
   database must match the pre-commit state in full OR the post-commit
   state in full. Anything else (a lost committed update, a surviving
   uncommitted one, a half-applied commit) is a violation. *)
let check t ~read ~pages ~slots =
  let post =
    if t.committing && t.pending <> [] then begin
      let h = Hashtbl.copy t.committed in
      apply_pending h t.pending;
      Some h
    end
    else None
  in
  let show = function
    | None -> "<absent>"
    | Some b -> Printf.sprintf "%d bytes (%08x)" (Bytes.length b) (Hashtbl.hash b)
  in
  let v_pre = ref [] and v_post = ref [] in
  List.iter
    (fun page ->
      for slot = 0 to slots - 1 do
        match (try Ok (read ~page ~slot) with e -> Error (Printexc.to_string e)) with
        | Error msg ->
            let v = Printf.sprintf "page %d slot %d: read raised %s" page slot msg in
            v_pre := v :: !v_pre;
            v_post := v :: !v_post
        | Ok actual ->
            let cmp map acc =
              let expect = Hashtbl.find_opt map (page, slot) in
              if actual <> expect then
                acc :=
                  Printf.sprintf "page %d slot %d: expected %s, found %s" page slot
                    (show expect) (show actual)
                  :: !acc
            in
            cmp t.committed v_pre;
            Option.iter (fun m -> cmp m v_post) post
      done)
    pages;
  match (List.rev !v_pre, post) with
  | [], _ -> []
  | _, Some _ when !v_post = [] -> []
  | pre, _ -> pre
