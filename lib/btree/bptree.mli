(** B+-tree indexes stored in IPL-managed pages.

    Keys and values are 63-bit integers (composite TPC-C keys are packed
    into one integer). Every node is one database page; node mutations go
    through the engine's logged record operations, so index maintenance
    produces the same physiological log traffic as table updates — exactly
    the "data pages of a base table and index nodes" I/O mix of the
    paper's traces.

    Deletion does not rebalance (nodes may underflow); this keeps the
    structure simple and matches the needs of the TPC-C workload, where
    deletes are rare (0.06 % of operations, Table 4). *)

type t

val create : Ipl_core.Ipl_engine.t -> t
(** Allocate a new empty tree (a header page plus an empty root leaf). *)

val attach : Ipl_core.Ipl_engine.t -> header:int -> t
(** Re-open a tree by its header page id (e.g. after restart). *)

val header_page : t -> int
(** Stable page id identifying this tree. *)

val insert : t -> tx:Ipl_core.Ipl_engine.txn -> key:int -> value:int -> (unit, string) result
(** Fails with [Error "duplicate key"] if the key exists. *)

val set : t -> tx:Ipl_core.Ipl_engine.txn -> key:int -> value:int -> (unit, string) result
(** Insert or overwrite. *)

val find : t -> int -> int option
val mem : t -> int -> bool

val next_ge : t -> int -> (int * int) option
(** Smallest [(key, value)] with [key >=] the argument, if any. *)

val delete : t -> tx:Ipl_core.Ipl_engine.txn -> key:int -> (unit, string) result
(** [Error "not found"] if absent. *)

val range : t -> lo:int -> hi:int -> (int * int) list
(** All [(key, value)] with [lo <= key <= hi], ascending. *)

val iter : t -> (key:int -> value:int -> unit) -> unit
(** Ascending full scan. *)

val min_key : t -> int option
val max_key : t -> int option
val cardinal : t -> int
(** Number of entries (full scan). *)

val height : t -> int
(** 1 for a lone leaf. *)

val check_invariants : t -> (unit, string) result
(** Validate key ordering, separator consistency and leaf chaining; used
    by tests. *)
