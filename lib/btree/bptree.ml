module Engine = Ipl_core.Ipl_engine
module Page = Storage.Page

(* Node encoding, all within ordinary slotted pages:
     slot 0          : meta record [magic:u8 = 0xB7][is_leaf:u8][next_leaf:u32]
     slots 1..       : entry records [key:i64][value:i64]
   Internal-node entries are (separator, child-page) pairs; the leftmost
   separator is min_int so a child always exists for any key. The header
   page (the tree's identity) holds a single record with the root page id. *)

type t = { engine : Engine.t; header : int }

let no_leaf = 0xFFFFFFFF
let meta_magic = 0xB7

let encode_meta ~is_leaf ~next_leaf =
  let b = Bytes.create 6 in
  Bytes.set_uint8 b 0 meta_magic;
  Bytes.set_uint8 b 1 (if is_leaf then 1 else 0);
  Bytes.set_int32_le b 2 (Int32.of_int next_leaf);
  b

let encode_entry key value =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 (Int64.of_int key);
  Bytes.set_int64_le b 8 (Int64.of_int value);
  b

let decode_entry b = (Int64.to_int (Bytes.get_int64_le b 0), Int64.to_int (Bytes.get_int64_le b 8))

type node = {
  is_leaf : bool;
  next_leaf : int;  (* no_leaf if none *)
  entries : (int * int * int) array;  (* key, value, slot — sorted by key *)
}

let fail_on_error = function
  | Ok x -> x
  | Error e -> failwith ("Bptree: unexpected engine error: " ^ Engine.error_to_string e)

let read_node t pid =
  fail_on_error
  @@ Engine.with_page t.engine pid (fun p ->
      match Page.read p 0 with
      | None -> failwith "Bptree: missing node meta"
      | Some meta ->
          if Bytes.get_uint8 meta 0 <> meta_magic then failwith "Bptree: bad node magic";
          let is_leaf = Bytes.get_uint8 meta 1 = 1 in
          let next_leaf = Int32.to_int (Bytes.get_int32_le meta 2) land 0xFFFFFFFF in
          let entries = ref [] in
          Page.iter
            (fun slot data ->
              if slot <> 0 then begin
                let k, v = decode_entry data in
                entries := (k, v, slot) :: !entries
              end)
            p;
          let entries = Array.of_list !entries in
          Array.sort compare entries;
          { is_leaf; next_leaf; entries })

let new_node t ~tx ~is_leaf ~next_leaf =
  let pid = fail_on_error (Engine.allocate_page t.engine) in
  (match Engine.insert t.engine ~tx ~page:pid (encode_meta ~is_leaf ~next_leaf) with
  | Ok 0 -> ()
  | Ok _ -> failwith "Bptree: meta not at slot 0"
  | Error e -> failwith ("Bptree: " ^ Engine.error_to_string e));
  pid

let set_next_leaf t ~tx pid next =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int next);
  fail_on_error (Engine.update_range t.engine ~tx ~page:pid ~slot:0 ~offset:2 b)

let root t =
  fail_on_error
  @@ Engine.with_page t.engine t.header (fun p ->
      match Page.read p 0 with
      | Some b -> Int64.to_int (Bytes.get_int64_le b 0)
      | None -> failwith "Bptree: missing header record")

let set_root t ~tx pid =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int pid);
  fail_on_error (Engine.update t.engine ~tx ~page:t.header ~slot:0 b)

let create engine =
  let header = fail_on_error (Engine.allocate_page engine) in
  let t = { engine; header } in
  let root = new_node t ~tx:Engine.no_txn ~is_leaf:true ~next_leaf:no_leaf in
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int root);
  (match Engine.insert engine ~tx:Engine.no_txn ~page:header b with
  | Ok 0 -> ()
  | _ -> failwith "Bptree: header init failed");
  t

let attach engine ~header = { engine; header }
let header_page t = t.header

(* Child of an internal node covering [key]: greatest separator <= key. *)
let child_for node key =
  let n = Array.length node.entries in
  let rec go i best =
    if i >= n then best
    else
      let k, v, _ = node.entries.(i) in
      if k <= key then go (i + 1) v else best
  in
  let k0, v0, _ = node.entries.(0) in
  if k0 > key then v0 (* only possible transiently; leftmost separator is min_int *)
  else go 1 v0

let rec descend t pid key path =
  let node = read_node t pid in
  if node.is_leaf then (pid, node, path)
  else descend t (child_for node key) key (pid :: path)

let find_leaf t key = descend t (root t) key []

let find t key =
  let _, node, _ = find_leaf t key in
  let rec go i =
    if i >= Array.length node.entries then None
    else
      let k, v, _ = node.entries.(i) in
      if k = key then Some v else if k > key then None else go (i + 1)
  in
  go 0

let mem t key = find t key <> None

let next_ge t key =
  let rec scan_leaf pid =
    let node = read_node t pid in
    let hit = Array.find_opt (fun (k, _, _) -> k >= key) node.entries in
    match hit with
    | Some (k, v, _) -> Some (k, v)
    | None -> if node.next_leaf = no_leaf then None else scan_leaf node.next_leaf
  in
  let pid, _, _ = find_leaf t key in
  scan_leaf pid

(* Move the upper half of a node's entries into a fresh sibling and return
   (separator, new page id). *)
let split t ~tx pid node =
  let n = Array.length node.entries in
  assert (n >= 2);
  let mid = n / 2 in
  let sep, _, _ = node.entries.(mid) in
  if node.is_leaf then begin
    let right = new_node t ~tx ~is_leaf:true ~next_leaf:node.next_leaf in
    for i = mid to n - 1 do
      let k, v, slot = node.entries.(i) in
      fail_on_error (Result.map (fun (_ : int) -> ()) (Engine.insert t.engine ~tx ~page:right (encode_entry k v)));
      fail_on_error (Engine.delete t.engine ~tx ~page:pid ~slot)
    done;
    set_next_leaf t ~tx pid right;
    (sep, right)
  end
  else begin
    (* The separator moves up: the right node's leftmost child keeps the
       min_int sentinel key. *)
    let right = new_node t ~tx ~is_leaf:false ~next_leaf:no_leaf in
    let _, child_mid, slot_mid = node.entries.(mid) in
    fail_on_error
      (Result.map (fun (_ : int) -> ())
         (Engine.insert t.engine ~tx ~page:right (encode_entry min_int child_mid)));
    fail_on_error (Engine.delete t.engine ~tx ~page:pid ~slot:slot_mid);
    for i = mid + 1 to n - 1 do
      let k, v, slot = node.entries.(i) in
      fail_on_error
        (Result.map (fun (_ : int) -> ()) (Engine.insert t.engine ~tx ~page:right (encode_entry k v)));
      fail_on_error (Engine.delete t.engine ~tx ~page:pid ~slot)
    done;
    (sep, right)
  end

(* Insert a separator entry into the ancestors after a split of [child_pid]
   (whose path to the root is [path], nearest parent first). *)
let rec insert_sep t ~tx ~path ~child_pid sep new_pid =
  match path with
  | [] ->
      (* child_pid was the root: grow the tree. *)
      let new_root = new_node t ~tx ~is_leaf:false ~next_leaf:no_leaf in
      fail_on_error
        (Result.map (fun (_ : int) -> ())
           (Engine.insert t.engine ~tx ~page:new_root (encode_entry min_int child_pid)));
      fail_on_error
        (Result.map (fun (_ : int) -> ())
           (Engine.insert t.engine ~tx ~page:new_root (encode_entry sep new_pid)));
      set_root t ~tx new_root
  | parent :: rest -> (
      match Engine.insert t.engine ~tx ~page:parent (encode_entry sep new_pid) with
      | Ok _ -> ()
      | Error _ ->
          (* Parent full: split it, then retry into the correct half. *)
          let pnode = read_node t parent in
          let psep, pnew = split t ~tx parent pnode in
          insert_sep t ~tx ~path:rest ~child_pid:parent psep pnew;
          let target = if sep >= psep then pnew else parent in
          fail_on_error
            (Result.map (fun (_ : int) -> ())
               (Engine.insert t.engine ~tx ~page:target (encode_entry sep new_pid))))

let rec insert_leafward t ~tx key value ~overwrite =
  let pid, node, path = find_leaf t key in
  let existing = Array.find_opt (fun (k, _, _) -> k = key) node.entries in
  match existing with
  | Some (_, _, slot) ->
      if overwrite then
        Result.map_error Engine.error_to_string
          (Engine.update t.engine ~tx ~page:pid ~slot (encode_entry key value))
      else Error "duplicate key"
  | None -> (
      match Engine.insert t.engine ~tx ~page:pid (encode_entry key value) with
      | Ok _ -> Ok ()
      | Error _ ->
          (* Leaf full: split and retry from the top (ancestor set may have
             changed shape). *)
          let sep, new_pid = split t ~tx pid node in
          insert_sep t ~tx ~path ~child_pid:pid sep new_pid;
          insert_leafward t ~tx key value ~overwrite)

let insert t ~tx ~key ~value = insert_leafward t ~tx key value ~overwrite:false
let set t ~tx ~key ~value = insert_leafward t ~tx key value ~overwrite:true

let delete t ~tx ~key =
  let pid, node, _ = find_leaf t key in
  match Array.find_opt (fun (k, _, _) -> k = key) node.entries with
  | None -> Error "not found"
  | Some (_, _, slot) ->
      Result.map_error Engine.error_to_string (Engine.delete t.engine ~tx ~page:pid ~slot)

let rec leftmost_leaf t pid =
  let node = read_node t pid in
  if node.is_leaf then (pid, node)
  else
    let _, child, _ = node.entries.(0) in
    leftmost_leaf t child

let iter t f =
  let rec walk pid =
    let node = read_node t pid in
    Array.iter (fun (k, v, _) -> f ~key:k ~value:v) node.entries;
    if node.next_leaf <> no_leaf then walk node.next_leaf
  in
  let pid, _ = leftmost_leaf t (root t) in
  walk pid

let range t ~lo ~hi =
  let acc = ref [] in
  let rec walk pid =
    let node = read_node t pid in
    let stop = ref false in
    Array.iter
      (fun (k, v, _) ->
        if k > hi then stop := true else if k >= lo then acc := (k, v) :: !acc)
      node.entries;
    if (not !stop) && node.next_leaf <> no_leaf then walk node.next_leaf
  in
  let pid, _, _ = find_leaf t lo in
  walk pid;
  List.rev !acc

let min_key t =
  let _, node = leftmost_leaf t (root t) in
  if Array.length node.entries = 0 then
    (* The leftmost leaf may have been emptied by deletes; fall back to a
       full walk. *)
    let best = ref None in
    let () = iter t (fun ~key ~value:_ -> if !best = None then best := Some key) in
    !best
  else
    let k, _, _ = node.entries.(0) in
    Some k

let max_key t =
  let best = ref None in
  iter t (fun ~key ~value:_ -> best := Some key);
  !best

let cardinal t =
  let n = ref 0 in
  iter t (fun ~key:_ ~value:_ -> incr n);
  !n

let height t =
  let rec go pid h =
    let node = read_node t pid in
    if node.is_leaf then h
    else
      let _, child, _ = node.entries.(0) in
      go child (h + 1)
  in
  go (root t) 1

let check_invariants t =
  let exception Bad of string in
  let rec check pid lo hi depth =
    let node = read_node t pid in
    let n = Array.length node.entries in
    (* Keys sorted strictly and within (lo, hi]. *)
    for i = 0 to n - 1 do
      let k, _, _ = node.entries.(i) in
      if i > 0 then begin
        let k', _, _ = node.entries.(i - 1) in
        if k' >= k then raise (Bad "keys not strictly increasing")
      end;
      if node.is_leaf && (k < lo || k > hi) then raise (Bad "leaf key outside bounds")
    done;
    if node.is_leaf then depth
    else begin
      if n = 0 then raise (Bad "empty internal node");
      let depths =
        Array.mapi
          (fun i (k, child, _) ->
            let lo' = if i = 0 then lo else k in
            let hi' = if i = n - 1 then hi else (let k', _, _ = node.entries.(i + 1) in k' - 1) in
            check child lo' hi' (depth + 1))
          node.entries
      in
      Array.iter (fun d -> if d <> depths.(0) then raise (Bad "leaves at unequal depth")) depths;
      depths.(0)
    end
  in
  try
    ignore (check (root t) min_int max_int 1);
    (* Leaf chain must produce globally sorted keys. *)
    let last = ref min_int in
    iter t (fun ~key ~value:_ ->
        if key < !last then raise (Bad "leaf chain out of order");
        last := key);
    Ok ()
  with Bad msg -> Error msg
