(* Canonicalization of Typedtree paths into plain component lists.

   Dune-wrapped libraries mangle unit names ("Ipl_core__Ipl_engine"), the
   generated alias module shows up as a "Lib__" head under `-open`, and the
   repo idiom binds local aliases (`module Dev = Device.Flash_device`), so
   the same function is referenced under several spellings. We flatten every
   Path.t to components, expand the head through the per-unit alias
   environment, and split "__"-mangled heads, so `Dev.submit_write`,
   `Device.Flash_device.submit_write` and a Pident inside flash_device.ml
   all canonicalize to lists the matchers and the summary table agree on. *)

type env = {
  unit_prefix : string list;  (* e.g. ["Ipl_core"; "Ipl_engine"] *)
  aliases : (string, string list) Hashtbl.t;  (* local module aliases *)
}

let split_unit_name name =
  (* "Ipl_core__Ipl_engine" -> ["Ipl_core"; "Ipl_engine"]; "Ipl_core__" ->
     ["Ipl_core"]. *)
  let n = String.length name in
  let rec go acc seg_start j =
    if j >= n - 1 then
      let seg = String.sub name seg_start (n - seg_start) in
      List.rev (if seg = "" then acc else seg :: acc)
    else if name.[j] = '_' && name.[j + 1] = '_' then
      let seg = String.sub name seg_start (j - seg_start) in
      go (if seg = "" then acc else seg :: acc) (j + 2) (j + 2)
    else go acc seg_start (j + 1)
  in
  match go [] 0 0 with [] -> [ name ] | comps -> comps

let fresh_env unit_prefix = { unit_prefix; aliases = Hashtbl.create 16 }

let add_alias env name target = Hashtbl.replace env.aliases name target

(* Head ident of a path plus the trailing labels. *)
let rec split_path = function
  | Path.Pident id -> (id, [])
  | Path.Pdot (p, s) ->
      let id, rest = split_path p in
      (id, rest @ [ s ])
  | Path.Papply (p, _) -> split_path p
  | Path.Pextra_ty (p, _) -> split_path p

let canon env path =
  let id, rest = split_path path in
  let name = Ident.name id in
  match Hashtbl.find_opt env.aliases name with
  | Some target -> target @ rest
  | None ->
      if Ident.global id then split_unit_name name @ rest
      else env.unit_prefix @ (name :: rest)

let key comps = String.concat "." comps
let has comp comps = List.mem comp comps

let last comps =
  match List.rev comps with [] -> "" | l :: _ -> l

(* ---- matchers over canonical components ---- *)

let is_submit comps =
  has "Flash_device" comps && List.mem (last comps) Sema_config.submit_fns

let is_await comps = has "Flash_device" comps && last comps = "await"

let is_barrier comps =
  has "Flash_device" comps && (last comps = "barrier" || last comps = "drain")

let is_raise comps =
  match comps with
  | [ "Stdlib"; ("raise" | "raise_notrace") ] -> true
  | [ ("raise" | "raise_notrace") ] -> true
  | _ -> false

let is_ignore comps =
  match comps with [ "Stdlib"; "ignore" ] | [ "ignore" ] -> true | _ -> false

(* [f @@ x] and [x |> f] are re-associated before analysis so the real
   callee's catch set applies to its lambda arguments. *)
let is_apply_op comps =
  match comps with [ "Stdlib"; "@@" ] | [ "@@" ] -> true | _ -> false

let is_pipe_op comps =
  match comps with [ "Stdlib"; "|>" ] | [ "|>" ] -> true | _ -> false

let banned_determinism comps =
  List.exists
    (fun (m, f) -> last comps = f && has m comps)
    Sema_config.banned_idents

let exn_key comps =
  let l = last comps in
  List.fold_left
    (fun acc (m, cs) ->
      match acc with
      | Some _ -> acc
      | None -> if has m comps && List.mem l cs then Some (m ^ "." ^ l) else None)
    None Sema_config.contract_exceptions

(* ---- type matchers ---- *)

let rec type_path ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some p
  | Types.Tpoly (ty, _) -> type_path ty
  | _ -> None

let is_tag_type env ty =
  match type_path ty with
  | Some p ->
      let comps = canon env p in
      has "Flash_device" comps && last comps = "tag"
  | None -> false

let result_comps comps =
  match (comps, last comps) with
  | [ "result" ], _ | [ "Stdlib"; "result" ], _ -> true
  | _, "t" -> has "Result" comps
  | _, "result" -> true
  | _ -> false

let is_result_type env ty =
  match type_path ty with
  | Some p -> result_comps (canon env p)
  | None -> false

let is_engine_result_type env ty =
  (* (_, Ipl_engine.error) result *)
  match Types.get_desc ty with
  | Types.Tconstr (p, [ _; err ], _) when result_comps (canon env p) -> (
      match type_path err with
      | Some ep ->
          let comps = canon env ep in
          has "Ipl_engine" comps && last comps = "error"
      | None -> false)
  | _ -> false
