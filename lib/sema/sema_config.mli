(** Rule registry and per-rule allowlists/contracts of the typed checker. *)

type rule = { id : string; severity : Lint.Lint_finding.severity; doc : string }

val rules : rule list
val find_rule : string -> rule option
val severity_of : string -> Lint.Lint_finding.severity

val tag_leak_exempt_files : string list
(** Files allowed to manufacture/drop tags (the device implementation). *)

val submit_fns : string list
(** Flash_device submission functions whose tag carries a durability
    obligation (submit_read is exempt by design). *)

val determinism_whitelist_files : string list
(** The only sanctioned wall-clock sites. *)

val banned_idents : (string * string) list
(** (some path component, final component) pairs of nondeterministic idents. *)

val contract_exceptions : (string * string list) list
(** Device-fault exception universe as (module component, constructors). *)

val exn_escape_dirs : string list
(** Directories whose mli-exported functions must not leak any contract
    exception. *)
