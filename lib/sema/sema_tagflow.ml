(* Tag-leak rule: every Flash_device.submit_write / submit_erase completion
   tag must be settled on every path.

   A tag bound by `let t = Dev.submit_write ...` is settled when the
   continuation, on all control-flow paths, either awaits it, reaches a
   barrier/drain (directly or through a callee that transitively barriers),
   or lets it escape to a context we cannot see through (returned, stored
   in a structure, passed to an unknown function) — escape is optimistic:
   the obligation moves with the value. Passing the tag to a *known*
   function that neither settles nor barriers keeps the obligation here;
   that is what makes the summary table a cross-module analysis. Dropping
   the tag (`let _`, `ignore`) is always a finding: that is a write whose
   durability nobody can ever wait for — the sanctioned fire-and-forget
   spelling is Flash_device.publish_write/publish_erase, whose durability
   is the next class-covering barrier. *)

module Summary = Sema_summary

let finding ~file ~line msg =
  Lint.Lint_finding.make ~rule:"sema-tag-leak"
    ~severity:(Sema_config.severity_of "sema-tag-leak") ~file ~line msg

let head_comps env (fn : Typedtree.expression) =
  match fn.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some (Sema_path.canon env p)
  | _ -> None

let is_ident_expr id (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_ident (Path.Pident i, _, _) -> Ident.same i id
  | _ -> false

(* Does the application expression [e] produce a fresh durability
   obligation? Either a direct submit_write/submit_erase, or a call into a
   known function that returns a tag without settling it. *)
let obligation_source table env (e : Typedtree.expression) =
  if not (Sema_path.is_tag_type env e.exp_type) then None
  else
    match e.exp_desc with
    | Typedtree.Texp_apply (fn, _) -> (
        match head_comps env fn with
        | Some comps when Sema_path.is_submit comps ->
            Some (Sema_path.last comps)
        | Some comps -> (
            match Hashtbl.find_opt table (Sema_path.key comps) with
            | Some (s : Summary.t)
              when s.returns_tag && (not s.settles) && not s.barriers ->
                Some s.public_name
            | _ -> None)
        | None -> None)
    | _ -> None

(* Is the tag bound to [id] settled on every path of [e]? *)
let rec settles table env id (e : Typedtree.expression) =
  let go = settles table env id in
  match e.exp_desc with
  | Typedtree.Texp_ident (Path.Pident i, _, _) when Ident.same i id ->
      true (* bare use: returned or stored — the obligation escapes *)
  | Typedtree.Texp_apply (fn, args) ->
      let arg_exprs = List.filter_map snd args in
      let comps = head_comps env fn in
      let barrier_here =
        match comps with
        | Some c -> (
            Sema_path.is_barrier c
            ||
            match Hashtbl.find_opt table (Sema_path.key c) with
            | Some (s : Summary.t) -> s.barriers
            | None -> false)
        | None -> false
      in
      let direct = List.exists (is_ident_expr id) arg_exprs in
      let settled_by_call =
        direct
        &&
        match comps with
        | Some c -> (
            Sema_path.is_await c
            ||
            match Hashtbl.find_opt table (Sema_path.key c) with
            | Some (s : Summary.t) -> s.settles || s.barriers
            | None -> true (* unknown callee: obligation escapes *))
        | None -> true (* computed function: cannot see through *)
      in
      let rest = fn :: List.filter (fun a -> not (is_ident_expr id a)) arg_exprs in
      barrier_here || settled_by_call || List.exists go rest
  | Typedtree.Texp_ifthenelse (c, t, Some e2) -> go c || (go t && go e2)
  | Typedtree.Texp_ifthenelse (c, _, None) ->
      go c (* a then-only settle is not guaranteed *)
  | Typedtree.Texp_match (scrut, cases, _) ->
      go scrut
      || cases <> []
         && List.for_all
              (fun (c : Typedtree.computation Typedtree.case) -> go c.c_rhs)
              cases
  | Typedtree.Texp_sequence (a, b) -> go a || go b
  | Typedtree.Texp_let (_, vbs, body) ->
      List.exists (fun (vb : Typedtree.value_binding) -> go vb.vb_expr) vbs
      || go body
  | Typedtree.Texp_try (b, cases) ->
      go b
      || List.exists
           (fun (c : Typedtree.value Typedtree.case) -> go c.c_rhs)
           cases
  | _ ->
      let found = ref false in
      Summary.iter_children (fun sub -> if go sub then found := true) e;
      !found

let var_name (p : Typedtree.pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_var (id, name) -> Some (id, name.txt)
  | Typedtree.Tpat_alias (_, id, name) -> Some (id, name.txt)
  | _ -> None

let check table (u : Sema_cmt.unit_info) =
  if List.mem u.source Sema_config.tag_leak_exempt_files then []
  else
    let env = u.env in
    let findings = ref [] in
    let add line msg = findings := finding ~file:u.source ~line msg :: !findings in
    let line_of (e : Typedtree.expression) =
      e.exp_loc.Location.loc_start.Lexing.pos_lnum
    in
    let check_binding ?continuation (vb : Typedtree.value_binding) =
      match obligation_source table env vb.vb_expr with
      | None -> ()
      | Some origin -> (
          let line = vb.vb_loc.Location.loc_start.Lexing.pos_lnum in
          match vb.vb_pat.pat_desc with
          | Typedtree.Tpat_any ->
              add line
                (Printf.sprintf
                   "tag of %s is discarded with 'let _'; await it or use the \
                    publish_* fire-and-forget API"
                   origin)
          | _ -> (
              match (var_name vb.vb_pat, continuation) with
              | Some (id, name), Some cont ->
                  if not (settles table env id cont) then
                    add line
                      (Printf.sprintf
                         "tag '%s' of %s is not awaited, barriered or passed \
                          on along every path"
                         name origin)
              | _ -> () (* toplevel or destructured binding: escapes *)))
    in
    let visit_expr (e : Typedtree.expression) =
      match e.exp_desc with
      | Typedtree.Texp_let (_, vbs, body) ->
          List.iter (check_binding ~continuation:body) vbs
      | Typedtree.Texp_apply (fn, args) -> (
          match head_comps env fn with
          | Some c when Sema_path.is_ignore c ->
              List.iter
                (fun (_, a) ->
                  match a with
                  | Some (arg : Typedtree.expression)
                    when Sema_path.is_tag_type env arg.exp_type ->
                      add (line_of arg)
                        "tag passed to ignore; await it or use the publish_* \
                         fire-and-forget API"
                  | _ -> ())
                args
          | _ -> ())
      | _ -> ()
    in
    let visit_item (item : Typedtree.structure_item) =
      match item.str_desc with
      | Typedtree.Tstr_value (_, vbs) -> List.iter check_binding vbs
      | _ -> ()
    in
    List.iter
      (fun (item : Typedtree.structure_item) ->
        visit_item item;
        let it =
          {
            Tast_iterator.default_iterator with
            expr =
              (fun it e ->
                visit_expr e;
                Tast_iterator.default_iterator.expr it e);
          }
        in
        it.structure_item it item)
      u.structure.str_items;
    List.rev !findings
