(* Orchestration: load cmts, build summaries, run the four rule families,
   apply [@lint.allow] suppressions (shared with the syntactic linter) and
   report. *)

let tool = "ipl_sema"

let run ?build_root ?(source_root = ".") roots =
  let build_root =
    match build_root with
    | Some r -> r
    | None -> Sema_cmt.default_build_root ()
  in
  let units = Sema_cmt.load ~build_root ~source_root roots in
  let table = Sema_summary.build units in
  let per_unit =
    List.concat_map
      (fun u ->
        Sema_tagflow.check table u
        @ Sema_rules.determinism u
        @ Sema_rules.unchecked_result u)
      units
  in
  let findings = per_unit @ Sema_rules.exception_escape ~source_root table in
  (* Suppressions ride on the parsetree walker so [@lint.allow] covers both
     checkers uniformly. *)
  let by_file = Hashtbl.create 16 in
  List.iter
    (fun (f : Lint.Lint_finding.t) ->
      Hashtbl.replace by_file f.Lint.Lint_finding.file ())
    findings;
  let suppressions =
    Hashtbl.fold
      (fun file () acc ->
        let path = Filename.concat source_root file in
        if Sys.file_exists path then
          let r = Lint.Lint_walker.walk ~file (Lint.Lint_source.read_file path) in
          r.Lint.Lint_walker.suppressions @ acc
        else acc)
      by_file []
  in
  Lint.Lint_finding.dedup (Lint.Lint_walker.apply_suppressions suppressions findings)

let dump_summaries ?build_root ?(source_root = ".") ppf roots =
  let build_root =
    match build_root with
    | Some r -> r
    | None -> Sema_cmt.default_build_root ()
  in
  let units = Sema_cmt.load ~build_root ~source_root roots in
  let table = Sema_summary.build units in
  let keys =
    List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) table [])
  in
  List.iter
    (fun k ->
      let s = Hashtbl.find table k in
      let raises = String.concat "," (Sema_summary.SSet.elements s.raises) in
      if raises <> "" || s.settles || s.barriers || s.returns_tag then
        Format.fprintf ppf "%s raises=[%s]%s%s%s@." k raises
          (if s.settles then " settles" else "")
          (if s.barriers then " barriers" else "")
          (if s.returns_tag then " returns-tag" else ""))
    keys

let main ?(ppf = Format.std_formatter) ?json_out ?(rules = []) ?build_root
    ?source_root roots =
  let roots = if roots = [] then [ "lib"; "bin"; "bench" ] else roots in
  let findings = run ?build_root ?source_root roots in
  let findings =
    if rules = [] then findings
    else
      List.filter
        (fun (f : Lint.Lint_finding.t) -> List.mem f.Lint.Lint_finding.rule rules)
        findings
  in
  Lint.Lint_finding.print_report ~tool ppf findings;
  (match json_out with
  | Some path ->
      let json = Lint.Lint_finding.to_json_string ~tool findings in
      if path = "-" then Format.fprintf ppf "%s@." json
      else (
        let oc = open_out path in
        output_string oc json;
        output_char oc '\n';
        close_out oc)
  | None -> ());
  if Lint.Lint_finding.has_errors findings then 1 else 0
