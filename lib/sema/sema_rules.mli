(** The non-dataflow rule families. Tag-leak lives in {!Sema_tagflow}. *)

val determinism : Sema_cmt.unit_info -> Lint.Lint_finding.t list
(** No wall clock, self-seeding randomness, or randomized hashing outside
    the sanctioned sites. *)

val unchecked_result : Sema_cmt.unit_info -> Lint.Lint_finding.t list
(** Result-typed values must not be dropped through [ignore] or [let _]. *)

val exception_escape :
  source_root:string -> Sema_summary.table -> Lint.Lint_finding.t list
(** Public functions of the contract directories must not leak contract
    exceptions, and result-typed engine APIs must never raise them. *)
