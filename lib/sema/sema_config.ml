type rule = { id : string; severity : Lint.Lint_finding.severity; doc : string }

let rules =
  [
    {
      id = "sema-tag-leak";
      severity = Lint.Lint_finding.Error;
      doc =
        "a Flash_device.submit_write/submit_erase completion tag must reach await, a \
         barrier/drain, or escape to a settling context on every path; a dropped tag is a \
         write whose durability nobody waits for";
    };
    {
      id = "sema-unchecked-result";
      severity = Lint.Lint_finding.Error;
      doc =
        "a result-typed value (engine errors, B+tree outcomes) discarded through ignore or \
         'let _' silently swallows a failure; match it or propagate it";
    };
    {
      id = "sema-exception-escape";
      severity = Lint.Lint_finding.Error;
      doc =
        "device exceptions (Flash_chip read/program/erase faults, Bbm degradation) may not \
         escape the public surface of the upper layers, and result-typed engine APIs must \
         report faults as Error, never raise them";
    };
    {
      id = "sema-determinism";
      severity = Lint.Lint_finding.Error;
      doc =
        "wall-clock and self-seeding randomness (Unix.gettimeofday, Sys.time, \
         Random.self_init, randomized Hashtbl) break simulation determinism; \
         lib/util/clock.ml is the only sanctioned wall-clock site";
    };
  ]

let find_rule id = List.find_opt (fun r -> r.id = id) rules

let severity_of id =
  match find_rule id with Some r -> r.severity | None -> Lint.Lint_finding.Error

(* ---- tag-leak ---- *)

(* The device implementation itself manufactures and stores tags. *)
let tag_leak_exempt_files = [ "lib/device/flash_device.ml" ]

let submit_fns = [ "submit_write"; "submit_erase" ]
(* submit_read tags carry no durability obligation: the data is captured at
   submission and reads are excluded from [barrier] by design. *)

(* ---- determinism ---- *)

let determinism_whitelist_files = [ "lib/util/clock.ml" ]

(* (some path component, final component) pairs naming banned idents. *)
let banned_idents =
  [
    ("Unix", "gettimeofday");
    ("Unix", "time");
    ("Sys", "time");
    ("Random", "self_init");
    ("State", "make_self_init");
    ("Hashtbl", "randomize");
  ]

(* ---- exception escape ---- *)

(* Contract universe: canonical key is "<Module>.<Constructor>".
   Power_loss is excluded (the simulated crash must propagate to the
   crash-point campaign); Out_of_range / Write_to_unerased are programming
   errors on a par with Invalid_argument. *)
let contract_exceptions =
  [
    ("Flash_chip", [ "Read_error"; "Program_error"; "Erase_error"; "Worn_out" ]);
    ("Bbm", [ "Degraded"; "Uncorrectable" ]);
  ]

(* Directories whose public (mli-exported) functions must not leak any
   contract exception: the layers above the engine's typed-error boundary.
   lib/core and below are the fault-aware layers; lib/fault drives crashes
   on purpose. test/fixtures/sema holds the seeded violations. *)
let exn_escape_dirs =
  [ "lib/workload"; "lib/tpcc"; "lib/btree"; "lib/relation"; "lib/txn"; "test/fixtures/sema" ]
