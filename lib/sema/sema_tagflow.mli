(** Tag-leak rule: every [Flash_device.submit_write]/[submit_erase]
    completion tag must, on every path, be awaited, covered by a
    barrier/drain (directly or through a transitively-barriering callee),
    or escape to a context that takes over the obligation. Dropped tags
    ([let _], [ignore]) are always findings — the sanctioned
    fire-and-forget spelling is [publish_write]/[publish_erase]. *)

val check : Sema_summary.table -> Sema_cmt.unit_info -> Lint.Lint_finding.t list
