(* Cross-module function summaries and their fixpoint.

   Every top-level (possibly nested-module) function binding gets a summary:
   which contract exceptions its body can raise, which it catches (so a
   higher-order caller like Ipl_engine.guard subtracts them from thunk
   arguments), whether it transitively awaits a tag or issues a
   barrier/drain, and whether it returns a Flash_device.tag. The raises and
   settles facts are computed to a fixpoint over the whole loaded program,
   so `let t = Helper.submit_and_return () in ...` and `guard t (fun () ->
   ...)` are both seen through. All sets are over the finite contract
   universe, which keeps the lattice trivially finite. *)

module SSet = Set.Make (String)

type t = {
  key : string;
  file : string;
  dir : string;
  line : int;
  public_name : string;
  toplevel : bool;  (* directly under the unit (not in a nested module) *)
  env : Sema_path.env;
  body : Typedtree.expression;  (* the whole bound function expression *)
  catches : SSet.t;
  catch_all : bool;
  returns_tag : bool;
  returns_engine_result : bool;
  mutable raises : SSet.t;
  mutable settles : bool;  (* transitively awaits some tag *)
  mutable barriers : bool;  (* transitively calls barrier/drain *)
}

type table = (string, t) Hashtbl.t

(* ---- generic traversal helpers ---- *)

(* Visit every direct child expression of [e] with [f] (and descend into
   non-expression substructures), using the default iterator with every
   expression hook redirected to [f]. *)
let iter_children f e =
  let it =
    { Tast_iterator.default_iterator with expr = (fun _ sub -> f sub) }
  in
  Tast_iterator.default_iterator.expr it e

let iter_all f e =
  let rec go e =
    f e;
    iter_children go e
  in
  go e

(* ---- handled exception sets of try/match handlers ---- *)

type handled = All | Some_of of SSet.t

let handled_union a b =
  match (a, b) with
  | All, _ | _, All -> All
  | Some_of x, Some_of y -> Some_of (SSet.union x y)

let exn_of_constructor env (cd : Types.constructor_description) =
  match cd.Types.cstr_tag with
  | Types.Cstr_extension (p, _) -> Sema_path.exn_key (Sema_path.canon env p)
  | _ -> None

let rec handled_of_pat env (p : Typedtree.pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_any | Typedtree.Tpat_var _ -> All
  | Typedtree.Tpat_alias (q, _, _) -> handled_of_pat env q
  | Typedtree.Tpat_or (a, b, _) ->
      handled_union (handled_of_pat env a) (handled_of_pat env b)
  | Typedtree.Tpat_construct (_, cd, _, _) -> (
      match exn_of_constructor env cd with
      | Some k -> Some_of (SSet.singleton k)
      | None -> Some_of SSet.empty)
  | _ -> Some_of SSet.empty

(* A catch-all handler that re-raises the caught exception is transparent:
   `try body with e -> cleanup; raise e` subtracts nothing. *)
let reraises id rhs =
  let found = ref false in
  iter_all
    (fun e ->
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_apply (fn, args) -> (
          match fn.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, _, _) ->
              let name =
                match p with
                | Path.Pident i -> Ident.name i
                | Path.Pdot (_, s) -> s
                | _ -> ""
              in
              if name = "raise" || name = "raise_notrace" then
                List.iter
                  (fun (_, a) ->
                    match a with
                    | Some
                        {
                          Typedtree.exp_desc =
                            Typedtree.Texp_ident (Path.Pident i, _, _);
                          _;
                        }
                      when Ident.same i id ->
                        found := true
                    | _ -> ())
                  args
          | _ -> ())
      | _ -> ())
    rhs;
  !found

let rec transparent_pat id_matches (p : Typedtree.pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_var (id, _) -> id_matches id
  | Typedtree.Tpat_alias (q, id, _) -> id_matches id || transparent_pat id_matches q
  | _ -> false

let handled_of_value_case env (c : Typedtree.value Typedtree.case) =
  let h = handled_of_pat env c.c_lhs in
  match h with
  | All when transparent_pat (fun id -> reraises id c.c_rhs) c.c_lhs ->
      Some_of SSet.empty
  | h -> h

let handled_of_value_cases env cases =
  List.fold_left
    (fun acc c -> handled_union acc (handled_of_value_case env c))
    (Some_of SSet.empty) cases

let handled_of_computation_cases env cases =
  List.fold_left
    (fun acc (c : Typedtree.computation Typedtree.case) ->
      match Typedtree.split_pattern c.c_lhs with
      | _, Some exn_pat ->
          let h = handled_of_pat env exn_pat in
          let h =
            match h with
            | All when transparent_pat (fun id -> reraises id c.c_rhs) exn_pat ->
                Some_of SSet.empty
            | h -> h
          in
          handled_union acc h
      | _, None -> acc)
    (Some_of SSet.empty) cases

let subtract raises = function
  | All -> SSet.empty
  | Some_of handled -> SSet.diff raises handled

(* ---- catches of a function body (what its try/with can absorb) ---- *)

let catches_of_body env body =
  let set = ref SSet.empty in
  let all = ref false in
  let note = function
    | All -> all := true
    | Some_of s -> set := SSet.union s !set
  in
  iter_all
    (fun e ->
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_try (_, cases) -> note (handled_of_value_cases env cases)
      | Typedtree.Texp_match (_, cases, _) ->
          note (handled_of_computation_cases env cases)
      | _ -> ())
    body;
  (!set, !all)

(* ---- raises inference ---- *)

let lookup table env p =
  Hashtbl.find_opt table (Sema_path.key (Sema_path.canon env p))

let raises_of_body table env body =
  let rec go e =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_try (b, cases) ->
        let rb = go b in
        let handled = handled_of_value_cases env cases in
        List.fold_left
          (fun acc (c : Typedtree.value Typedtree.case) ->
            let acc =
              match c.c_guard with
              | Some g -> SSet.union acc (go g)
              | None -> acc
            in
            SSet.union acc (go c.c_rhs))
          (subtract rb handled) cases
    | Typedtree.Texp_match (scrut, cases, _) ->
        let rs = go scrut in
        let handled = handled_of_computation_cases env cases in
        List.fold_left
          (fun acc (c : Typedtree.computation Typedtree.case) ->
            let acc =
              match c.c_guard with
              | Some g -> SSet.union acc (go g)
              | None -> acc
            in
            SSet.union acc (go c.c_rhs))
          (subtract rs handled) cases
    | Typedtree.Texp_function { cases; _ } ->
        (* A lambda not consumed by a known catcher: assume it runs. *)
        List.fold_left (fun acc c -> SSet.union acc (go c.Typedtree.c_rhs)) SSet.empty cases
    | Typedtree.Texp_apply (fn, args) -> go_apply fn args
    | _ ->
        let acc = ref SSet.empty in
        iter_children (fun sub -> acc := SSet.union !acc (go sub)) e;
        !acc
  and go_apply fn args =
    let arg_exprs = List.filter_map snd args in
    (* Re-associate [f @@ x] / [x |> f] so the real callee is analyzed —
       [guard t @@ fun () -> ...] must filter the thunk through guard's
       catches, not treat it as an argument of Stdlib.( @@ ). A partial
       application on the left ([guard t]) is flattened into one call. *)
    let reassoc callee extra =
      match callee.Typedtree.exp_desc with
      | Typedtree.Texp_apply (g, gargs) -> go_apply g (gargs @ extra)
      | _ -> go_apply callee extra
    in
    match fn.Typedtree.exp_desc with
    | Typedtree.Texp_apply (g, gargs) ->
        (* Curried chain — [(guard t) @@ lambda] typechecks to a nested
           apply. Flatten so the head callee sees every argument. *)
        go_apply g (gargs @ args)
    | Typedtree.Texp_ident (op, _, _)
      when Sema_path.is_apply_op (Sema_path.canon env op) -> (
        match args with
        | [ (_, Some f); ((_, Some _) as x) ] -> reassoc f [ x ]
        | _ -> List.fold_left (fun acc a -> SSet.union acc (go a)) SSet.empty arg_exprs)
    | Typedtree.Texp_ident (op, _, _)
      when Sema_path.is_pipe_op (Sema_path.canon env op) -> (
        match args with
        | [ ((_, Some _) as x); (_, Some f) ] -> reassoc f [ x ]
        | _ -> List.fold_left (fun acc a -> SSet.union acc (go a)) SSet.empty arg_exprs)
    | Typedtree.Texp_ident (p, _, _) ->
        let comps = Sema_path.canon env p in
        if Sema_path.is_raise comps then
          List.fold_left
            (fun acc (a : Typedtree.expression) ->
              match a.exp_desc with
              | Typedtree.Texp_construct (_, cd, cargs) ->
                  let acc =
                    List.fold_left (fun acc c -> SSet.union acc (go c)) acc cargs
                  in
                  (match exn_of_constructor env cd with
                  | Some k -> SSet.add k acc
                  | None -> acc)
              | _ -> SSet.union acc (go a))
            SSet.empty arg_exprs
        else
          let callee = Hashtbl.find_opt table (Sema_path.key comps) in
          let base =
            match callee with Some s -> s.raises | None -> SSet.empty
          in
          let catches, catch_all =
            match callee with
            | Some s -> (s.catches, s.catch_all)
            | None -> (SSet.empty, false)
          in
          let filter_thunk r =
            if catch_all then SSet.empty else SSet.diff r catches
          in
          List.fold_left
            (fun acc (a : Typedtree.expression) ->
              match a.exp_desc with
              | Typedtree.Texp_function { cases; _ } ->
                  let rl =
                    List.fold_left
                      (fun acc c -> SSet.union acc (go c.Typedtree.c_rhs))
                      SSet.empty cases
                  in
                  SSet.union acc (filter_thunk rl)
              | Typedtree.Texp_ident (ap, _, _) -> (
                  match lookup table env ap with
                  | Some fs -> SSet.union acc (filter_thunk fs.raises)
                  | None -> acc)
              | _ -> SSet.union acc (go a))
            base arg_exprs
    | _ ->
        List.fold_left
          (fun acc a -> SSet.union acc (go a))
          (go fn) arg_exprs
  in
  go body

(* ---- settles / barriers inference ---- *)

let flags_of_body table env body =
  let settles = ref false in
  let barriers = ref false in
  iter_all
    (fun e ->
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_apply (fn, _) -> (
          match fn.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, _, _) -> (
              let comps = Sema_path.canon env p in
              if Sema_path.is_await comps then settles := true;
              if Sema_path.is_barrier comps then barriers := true;
              match Hashtbl.find_opt table (Sema_path.key comps) with
              | Some s ->
                  if s.settles then settles := true;
                  if s.barriers then barriers := true
              | None -> ())
          | _ -> ())
      | _ -> ())
    body;
  (!settles, !barriers)

(* ---- collection ---- *)

let rec return_type ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, _, ret, _) -> return_type ret
  | Types.Tpoly (ty, _) -> return_type ty
  | _ -> ty

let rec collect_structure table env ~file ~dir ~prefix ~toplevel
    (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              match vb.vb_pat.pat_desc with
              | Typedtree.Tpat_var (_, name) -> (
                  match vb.vb_expr.exp_desc with
                  | Typedtree.Texp_function _ ->
                      let key = Sema_path.key (prefix @ [ name.txt ]) in
                      let catches, catch_all =
                        catches_of_body env vb.vb_expr
                      in
                      let ret = return_type vb.vb_expr.exp_type in
                      let s =
                        {
                          key;
                          file;
                          dir;
                          line = vb.vb_loc.Location.loc_start.Lexing.pos_lnum;
                          public_name = name.txt;
                          toplevel;
                          env;
                          body = vb.vb_expr;
                          catches;
                          catch_all;
                          returns_tag = Sema_path.is_tag_type env ret;
                          returns_engine_result =
                            Sema_path.is_engine_result_type env
                              vb.vb_expr.exp_type
                            || Sema_path.is_engine_result_type env ret;
                          raises = SSet.empty;
                          settles = false;
                          barriers = false;
                        }
                      in
                      Hashtbl.replace table key s
                  | _ -> ())
              | _ -> ())
            vbs
      | Typedtree.Tstr_module mb -> (
          match (mb.mb_name.txt, mb.mb_expr.mod_desc) with
          | Some name, Typedtree.Tmod_structure sub ->
              collect_structure table env ~file ~dir ~prefix:(prefix @ [ name ])
                ~toplevel:false sub
          | _ -> ())
      | _ -> ())
    str.str_items

let build (units : Sema_cmt.unit_info list) : table =
  let table = Hashtbl.create 256 in
  List.iter
    (fun (u : Sema_cmt.unit_info) ->
      collect_structure table u.env ~file:u.source ~dir:u.dir
        ~prefix:u.unit_prefix ~toplevel:true u.structure)
    units;
  let keys = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) table []) in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 50 do
    changed := false;
    incr rounds;
    List.iter
      (fun k ->
        let s = Hashtbl.find table k in
        let r = raises_of_body table s.env s.body in
        if not (SSet.subset r s.raises) then begin
          s.raises <- SSet.union s.raises r;
          changed := true
        end;
        let settles, barriers = flags_of_body table s.env s.body in
        if settles && not s.settles then begin
          s.settles <- true;
          changed := true
        end;
        if barriers && not s.barriers then begin
          s.barriers <- true;
          changed := true
        end)
      keys
  done;
  table
