(* The three non-dataflow rule families: determinism, unchecked-result and
   exception-escape. Tag-leak lives in Sema_tagflow. *)

module Summary = Sema_summary
module SSet = Summary.SSet

let mk rule ~file ~line msg =
  Lint.Lint_finding.make ~rule ~severity:(Sema_config.severity_of rule) ~file
    ~line msg

let line_of (e : Typedtree.expression) =
  e.exp_loc.Location.loc_start.Lexing.pos_lnum

let iter_exprs f (str : Typedtree.structure) =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it str

(* ---- sema-determinism ---- *)

let determinism (u : Sema_cmt.unit_info) =
  if List.mem u.source Sema_config.determinism_whitelist_files then []
  else
    let findings = ref [] in
    let add line msg = findings := mk "sema-determinism" ~file:u.source ~line msg :: !findings in
    iter_exprs
      (fun e ->
        match e.exp_desc with
        | Typedtree.Texp_ident (p, _, _) ->
            let comps = Sema_path.canon u.env p in
            if Sema_path.banned_determinism comps then
              add (line_of e)
                (Printf.sprintf
                   "nondeterministic '%s' breaks the simulated clock and the \
                    crash-point oracle; use Ipl_util.Clock or a seeded source"
                   (Sema_path.key comps))
        | Typedtree.Texp_apply (fn, args) -> (
            match fn.exp_desc with
            | Typedtree.Texp_ident (p, _, _)
              when Sema_path.last (Sema_path.canon u.env p) = "create"
                   && Sema_path.has "Hashtbl" (Sema_path.canon u.env p) ->
                if
                  List.exists
                    (fun (lbl, arg) ->
                      (* An omitted optional shows up as (Optional, None) or
                         as an auto-generated None constructor — only an
                         explicitly passed ~random counts. *)
                      match (lbl, arg) with
                      | Asttypes.Labelled "random", Some _ -> true
                      | Asttypes.Optional "random", Some (a : Typedtree.expression)
                        -> (
                          match a.exp_desc with
                          | Typedtree.Texp_construct (_, cd, _) ->
                              cd.Types.cstr_name <> "None"
                          | _ -> true)
                      | _ -> false)
                    args
                then
                  add (line_of e)
                    "randomized Hashtbl iteration order is nondeterministic; \
                     drop ~random"
            | _ -> ())
        | _ -> ())
      u.structure;
    List.rev !findings

(* ---- sema-unchecked-result ---- *)

let unchecked_result (u : Sema_cmt.unit_info) =
  let findings = ref [] in
  let add line msg =
    findings := mk "sema-unchecked-result" ~file:u.source ~line msg :: !findings
  in
  let env = u.env in
  let check_binding (vb : Typedtree.value_binding) =
    match vb.vb_pat.pat_desc with
    | Typedtree.Tpat_any when Sema_path.is_result_type env vb.vb_expr.exp_type
      ->
        add
          (vb.vb_loc.Location.loc_start.Lexing.pos_lnum)
          "result value dropped with 'let _'; match it or propagate it"
    | _ -> ()
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Typedtree.exp_desc with
          | Typedtree.Texp_let (_, vbs, _) -> List.iter check_binding vbs
          | Typedtree.Texp_apply (fn, args) -> (
              match fn.Typedtree.exp_desc with
              | Typedtree.Texp_ident (p, _, _)
                when Sema_path.is_ignore (Sema_path.canon env p) ->
                  List.iter
                    (fun (_, a) ->
                      match a with
                      | Some (arg : Typedtree.expression)
                        when Sema_path.is_result_type env arg.exp_type ->
                          add (line_of arg)
                            "result value swallowed by ignore; match it or \
                             propagate it"
                      | _ -> ())
                    args
              | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
      structure_item =
        (fun it item ->
          (match item.Typedtree.str_desc with
          | Typedtree.Tstr_value (_, vbs) -> List.iter check_binding vbs
          | _ -> ());
          Tast_iterator.default_iterator.structure_item it item);
    }
  in
  it.structure it u.structure;
  List.rev !findings

(* ---- sema-exception-escape ---- *)

(* Public surface of a unit: the val names of its .mli, parsed from source
   (same toolchain), or every toplevel binding when there is no .mli. *)
let mli_publics ~source_root source =
  let mli = Filename.concat source_root (Filename.remove_extension source ^ ".mli") in
  if not (Sys.file_exists mli) then None
  else
    try
      let text = Lint.Lint_source.read_file mli in
      let lexbuf = Lexing.from_string text in
      Location.init lexbuf mli;
      let sg = Parse.interface lexbuf in
      let names =
        List.filter_map
          (fun (item : Parsetree.signature_item) ->
            match item.psig_desc with
            | Parsetree.Psig_value vd -> Some vd.pval_name.txt
            | _ -> None)
          sg
      in
      Some names
    with Sys_error _ | Syntaxerr.Error _ | Lexer.Error _ -> None

let exception_escape ~source_root (table : Summary.table) =
  let publics : (string, string list option) Hashtbl.t = Hashtbl.create 16 in
  let publics_of source =
    match Hashtbl.find_opt publics source with
    | Some v -> v
    | None ->
        let v = mli_publics ~source_root source in
        Hashtbl.add publics source v;
        v
  in
  let is_public (s : Summary.t) =
    match publics_of s.file with
    | Some names -> s.toplevel && List.mem s.public_name names
    | None -> true
  in
  let keys =
    List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) table [])
  in
  List.filter_map
    (fun k ->
      let s = Hashtbl.find table k in
      if SSet.is_empty s.raises || not (is_public s) then None
      else
        let exns = String.concat ", " (SSet.elements s.raises) in
        if List.mem s.dir Sema_config.exn_escape_dirs then
          Some
            (mk "sema-exception-escape" ~file:s.file ~line:s.line
               (Printf.sprintf
                  "public '%s' can leak device exception(s) %s across the \
                   engine boundary; handle them or use the *_result engine \
                   API"
                  s.public_name exns))
        else if s.returns_engine_result then
          Some
            (mk "sema-exception-escape" ~file:s.file ~line:s.line
               (Printf.sprintf
                  "'%s' returns a typed-error result but can still raise %s; \
                   faults must surface as Error"
                  s.public_name exns))
        else None)
    keys
