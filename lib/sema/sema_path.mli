(** Canonicalization of Typedtree paths into plain component lists, plus
    the matchers every rule shares.

    Dune-wrapped libraries mangle unit names ("Ipl_core__Ipl_engine"), and
    the repo idiom binds local aliases ([module Dev = Device.Flash_device]),
    so one function is referenced under several spellings. [canon] expands
    the path head through the per-unit alias environment and splits mangled
    unit names, so every spelling agrees on one component list. *)

type env = {
  unit_prefix : string list;
  aliases : (string, string list) Hashtbl.t;
}

val split_unit_name : string -> string list
(** ["Ipl_core__Ipl_engine"] -> [["Ipl_core"; "Ipl_engine"]]. *)

val fresh_env : string list -> env
val add_alias : env -> string -> string list -> unit

val canon : env -> Path.t -> string list
(** Canonical components of a path: alias-expanded head, mangling split,
    non-global heads prefixed with the unit. *)

val key : string list -> string
(** Components joined with ['.'] — the summary-table key. *)

val has : string -> string list -> bool
val last : string list -> string

val is_submit : string list -> bool
val is_await : string list -> bool
val is_barrier : string list -> bool
val is_raise : string list -> bool
val is_ignore : string list -> bool

val is_apply_op : string list -> bool
(** [Stdlib.( @@ )] — callers re-associate [f @@ x] into [f x]. *)

val is_pipe_op : string list -> bool
(** [Stdlib.( |> )] — callers re-associate [x |> f] into [f x]. *)

val banned_determinism : string list -> bool

val exn_key : string list -> string option
(** Canonical ["Module.Constructor"] key when the components name a
    contract exception. *)

val is_tag_type : env -> Types.type_expr -> bool
val is_result_type : env -> Types.type_expr -> bool

val is_engine_result_type : env -> Types.type_expr -> bool
(** [(_, Ipl_engine.error) result]. *)
