(** Cross-module function summaries computed to a fixpoint: which contract
    exceptions a function can raise and catch, whether it transitively
    settles tags (await) or issues durability barriers, and whether it
    returns a Flash_device tag. The summary table is what turns the
    intra-procedural rules into a whole-program analysis. *)

module SSet : Set.S with type elt = string

type t = {
  key : string;  (** canonical "Unit.Sub.fn" *)
  file : string;
  dir : string;
  line : int;
  public_name : string;
  toplevel : bool;  (** directly under the unit (not in a nested module) *)
  env : Sema_path.env;
  body : Typedtree.expression;
  catches : SSet.t;  (** contract exceptions its try/with can absorb *)
  catch_all : bool;
  returns_tag : bool;
  returns_engine_result : bool;  (** returns [(_, Ipl_engine.error) result] *)
  mutable raises : SSet.t;  (** contract exceptions that can escape *)
  mutable settles : bool;  (** transitively awaits some tag *)
  mutable barriers : bool;  (** transitively calls barrier/drain *)
}

type table = (string, t) Hashtbl.t

val build : Sema_cmt.unit_info list -> table
(** Collect a summary per top-level function binding of every unit and run
    the raises/settles/barriers fixpoint (monotone over a finite lattice). *)

val iter_children : (Typedtree.expression -> unit) -> Typedtree.expression -> unit
(** Visit every direct child expression (shared traversal helper). *)

val raises_of_body :
  table -> Sema_path.env -> Typedtree.expression -> SSet.t
(** Contract exceptions an expression can raise, seeing through known
    callees, try/with subtraction (re-raising catch-alls are transparent)
    and thunks passed to known catchers like [Ipl_engine.guard]. *)
