(** Discovery and loading of dune-emitted .cmt files under a build
    context, mapped back to repo-relative sources. Generated units (the
    wrapped-library alias module, .ml-gen files) are skipped. *)

type unit_info = {
  source : string;  (** repo-relative source, e.g. "lib/core/ipl_engine.ml" *)
  dir : string;  (** "lib/core" — keys the per-layer contracts *)
  unit_prefix : string list;  (** canonical unit, e.g. ["Ipl_core"; "Ipl_engine"] *)
  env : Sema_path.env;  (** unit canonicalization env with local aliases *)
  structure : Typedtree.structure;
}

val default_build_root : unit -> string
(** ["_build/default"] when present (running from the workspace root),
    else ["."] (running inside a build context or dune rule). *)

val load :
  build_root:string -> source_root:string -> string list -> unit_info list
(** Load every implementation cmt under [build_root]/<root> for the given
    roots, sorted by source path. *)
