(** Orchestration: load cmts under the build context, build the summary
    table, run the four rule families, apply [@lint.allow] suppressions
    and report. *)

val run :
  ?build_root:string ->
  ?source_root:string ->
  string list ->
  Lint.Lint_finding.t list
(** Analyze the units under the given roots. [build_root] defaults to
    [_build/default] when present, else ["."] (inside a build context);
    [source_root] defaults to ["."]. Results are suppressed, deduplicated
    and sorted. *)

val dump_summaries :
  ?build_root:string ->
  ?source_root:string ->
  Format.formatter ->
  string list ->
  unit
(** Debug aid: print every function summary with a non-trivial fact
    (raises/settles/barriers/returns-tag). *)

val main :
  ?ppf:Format.formatter ->
  ?json_out:string ->
  ?rules:string list ->
  ?build_root:string ->
  ?source_root:string ->
  string list ->
  int
(** Report on the roots (default: lib bin bench), optionally filtered to
    the given rule ids and mirrored to a JSON file ([-] for stdout).
    Returns 1 when any error-severity finding remains, else 0. *)
