(* Discovery and loading of dune-emitted .cmt files.

   Dune compiles library modules under <dir>/.<lib>.objs/byte/ and
   executable modules under <dir>/.eobjs/byte/, inside the build context
   (_build/default by default). We walk the build context below the
   requested roots, load every implementation cmt, and map it back to its
   repo-relative source file; generated units (the "Lib__" alias module,
   .ml-gen files) have no source and are skipped. *)

type unit_info = {
  source : string;  (* repo-relative, e.g. "lib/core/ipl_engine.ml" *)
  dir : string;  (* "lib/core" *)
  unit_prefix : string list;  (* ["Ipl_core"; "Ipl_engine"] *)
  env : Sema_path.env;
  structure : Typedtree.structure;
}

let default_build_root () =
  if Sys.file_exists "_build/default" && Sys.is_directory "_build/default" then
    "_build/default"
  else "."

let rec find_cmts acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then find_cmts acc path
          else if Filename.check_suffix entry ".cmt" then path :: acc
          else acc)
        acc entries

(* The directory part of the cmt path up to the objs directory is the
   source directory: "lib/core/.ipl_core.objs/byte/x.cmt" -> "lib/core". *)
let source_dir_of_rel rel =
  let comps = String.split_on_char '/' rel in
  let rec take acc = function
    | [] -> None
    | c :: _
      when String.length c > 1
           && c.[0] = '.'
           && (Filename.check_suffix c ".objs" || c = ".eobjs") ->
        Some (List.rev acc)
    | c :: rest -> take (c :: acc) rest
  in
  take [] comps

(* Local module aliases (module Dev = Device.Flash_device) at the top of
   the structure feed the canonicalization environment. *)
let collect_aliases env (str : Typedtree.structure) =
  let rec target (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Typedtree.Tmod_ident (p, _) -> Some (Sema_path.canon env p)
    | Typedtree.Tmod_constraint (me, _, _, _) -> target me
    | _ -> None
  in
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Typedtree.Tstr_module mb -> (
          match (mb.mb_name.txt, target mb.mb_expr) with
          | Some name, Some t -> Sema_path.add_alias env name t
          | _ -> ())
      | _ -> ())
    str.str_items

let strip_prefix ~prefix s =
  let lp = String.length prefix in
  if String.length s > lp && String.sub s 0 lp = prefix then
    let rest = String.sub s lp (String.length s - lp) in
    if rest.[0] = '/' then String.sub rest 1 (String.length rest - 1) else rest
  else s

let load_one ~build_root ~source_root cmt_path =
  let rel = strip_prefix ~prefix:build_root cmt_path in
  match source_dir_of_rel rel with
  | None -> None
  | Some dir_comps -> (
      let infos = Cmt_format.read_cmt cmt_path in
      match (infos.Cmt_format.cmt_annots, infos.Cmt_format.cmt_sourcefile) with
      | Cmt_format.Implementation structure, Some src
        when Filename.check_suffix src ".ml" ->
          let dir = String.concat "/" dir_comps in
          let source =
            if dir = "" then Filename.basename src
            else dir ^ "/" ^ Filename.basename src
          in
          if not (Sys.file_exists (Filename.concat source_root source)) then None
          else
            let unit_prefix =
              Sema_path.split_unit_name infos.Cmt_format.cmt_modname
            in
            let env = Sema_path.fresh_env unit_prefix in
            collect_aliases env structure;
            Some { source; dir; unit_prefix; env; structure }
      | _ -> None)

let load ~build_root ~source_root roots =
  let cmts =
    List.concat_map
      (fun root -> find_cmts [] (Filename.concat build_root root))
      roots
  in
  let units = List.filter_map (load_one ~build_root ~source_root) cmts in
  let units =
    List.sort_uniq (fun a b -> String.compare a.source b.source) units
  in
  units
