type sector_state = Free | Valid | Invalid

exception Write_to_unerased of int
exception Worn_out of int
exception Out_of_range of int
exception Power_loss of int
exception Read_error of int
exception Program_error of int
exception Erase_error of int

type op =
  | Op_read of { sector : int; count : int }
  | Op_program of { sector : int; count : int }
  | Op_erase of { block : int }

type fault_action =
  | Proceed
  | Fail_stop
  | Tear of int
  | Flip_bit of int
  | Read_fault
  | Read_correctable
  | Program_fail
  | Erase_fail

type corrupt_error = Not_materialized | Sector_erased | Bad_offset

let corrupt_error_to_string = function
  | Not_materialized -> "chip does not materialize data (timing-only config)"
  | Sector_erased -> "sector is erased"
  | Bad_offset -> "offset outside the sector"

type t = {
  config : Flash_config.t;
  state : Bytes.t;  (* one byte per sector: 0 = Free, 1 = Valid, 2 = Invalid *)
  data : (int, Bytes.t) Hashtbl.t;  (* block -> contents, only when materializing *)
  erase_counts : int array;
  bad : bool array;  (* grown / host-retired bad blocks *)
  mutable page_reads : int;
  mutable page_writes : int;
  mutable block_erases : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable read_faults : int;
  mutable corrected_reads : int;
  mutable program_failures : int;
  mutable erase_failures : int;
  mutable last_read_corrected : bool;
  mutable elapsed : float;
  mutable fault_hook : (int -> op -> fault_action) option;
  mutable tracer : Obs.Tracer.t option;
  mutable ops : int;
  mutable dead : bool;
}

let create config =
  Flash_config.validate config;
  let num_sectors = Flash_config.sectors_per_block config * config.num_blocks in
  {
    config;
    state = Bytes.make num_sectors '\000';
    data = Hashtbl.create (if config.materialize then 256 else 1);
    erase_counts = Array.make config.num_blocks 0;
    bad = Array.make config.num_blocks false;
    page_reads = 0;
    page_writes = 0;
    block_erases = 0;
    sectors_read = 0;
    sectors_written = 0;
    read_faults = 0;
    corrected_reads = 0;
    program_failures = 0;
    erase_failures = 0;
    last_read_corrected = false;
    elapsed = 0.0;
    fault_hook = None;
    tracer = None;
    ops = 0;
    dead = false;
  }

let op_count t = t.ops
let is_dead t = t.dead

let set_tracer t tracer = t.tracer <- tracer
let tracer t = t.tracer

let set_fault_hook t hook =
  t.fault_hook <- hook;
  match hook with None -> t.dead <- false | Some _ -> ()

(* Every read/program/erase is numbered and offered to the installed fault
   hook. After a fail-stop the chip is dead: all further operations raise
   Power_loss until the hook is cleared. *)
let consult t op =
  if t.dead then raise (Power_loss t.ops);
  let idx = t.ops in
  t.ops <- idx + 1;
  match t.fault_hook with None -> Proceed | Some f -> f idx op

let die t =
  t.dead <- true;
  raise (Power_loss (t.ops - 1))

let config t = t.config
let num_sectors t = Bytes.length t.state

let check_sector t s = if s < 0 || s >= num_sectors t then raise (Out_of_range s)

let block_of_sector t s =
  check_sector t s;
  s / Flash_config.sectors_per_block t.config

let sector_of_block t b =
  if b < 0 || b >= t.config.num_blocks then raise (Out_of_range b);
  b * Flash_config.sectors_per_block t.config

let state_of_byte = function
  | '\000' -> Free
  | '\001' -> Valid
  | _ -> Invalid

let sector_state t s =
  check_sector t s;
  state_of_byte (Bytes.get t.state s)

(* Number of distinct physical pages covered by [count] sectors at [sector]. *)
let pages_touched t ~sector ~count =
  let spp = Flash_config.sectors_per_page t.config in
  let first = sector / spp and last = (sector + count - 1) / spp in
  last - first + 1

let block_data t b =
  match Hashtbl.find_opt t.data b with
  | Some bytes -> bytes
  | None ->
      let bytes = Bytes.make t.config.block_size '\xff' in
      Hashtbl.add t.data b bytes;
      bytes

let read_sectors t ~sector ~count =
  if count <= 0 then invalid_arg "Flash_chip.read_sectors: count must be positive";
  check_sector t sector;
  check_sector t (sector + count - 1);
  t.last_read_corrected <- false;
  (match consult t (Op_read { sector; count }) with
  | Fail_stop -> die t
  | Read_fault ->
      t.read_faults <- t.read_faults + 1;
      raise (Read_error sector)
  | Read_correctable ->
      (* On-chip ECC corrected the data: the read succeeds, but the host
         can observe the correction and scrub the weakening block. *)
      t.corrected_reads <- t.corrected_reads + 1;
      t.last_read_corrected <- true
  | Proceed | Tear _ | Flip_bit _ | Program_fail | Erase_fail -> ());
  let pages = pages_touched t ~sector ~count in
  t.page_reads <- t.page_reads + pages;
  t.sectors_read <- t.sectors_read + count;
  t.elapsed <- t.elapsed +. (float_of_int pages *. t.config.t_read_page);
  (* One option check when tracing is off; the event is constructed only
     inside the [Some] branch. *)
  (match t.tracer with
  | None -> ()
  | Some tr -> Obs.Tracer.emit tr ~time:t.elapsed (Obs.Event.Read_sector { sector; count }));
  let ss = t.config.sector_size in
  let out = Bytes.make (count * ss) '\xff' in
  if t.config.materialize then begin
    let spb = Flash_config.sectors_per_block t.config in
    for i = 0 to count - 1 do
      let s = sector + i in
      if Bytes.get t.state s <> '\000' then begin
        let b = s / spb and off = s mod spb in
        Bytes.blit (block_data t b) (off * ss) out (i * ss) ss
      end
    done
  end;
  out

let bump_wear t b =
  t.erase_counts.(b) <- t.erase_counts.(b) + 1;
  if t.config.fail_on_wear_out && t.erase_counts.(b) > t.config.max_erase_cycles then
    raise (Worn_out b)

let write_sectors t ~sector data =
  let ss = t.config.sector_size in
  let len = Bytes.length data in
  if len <= 0 || len mod ss <> 0 then
    invalid_arg "Flash_chip.write_sectors: length must be a positive multiple of sector size";
  let count = len / ss in
  check_sector t sector;
  check_sector t (sector + count - 1);
  let b0 = sector / Flash_config.sectors_per_block t.config in
  let action = consult t (Op_program { sector; count }) in
  (match action with
  | Fail_stop -> die t
  | Program_fail ->
      (* The program operation reports failure; no sector changes state.
         Real controllers respond by relocating the block. *)
      t.program_failures <- t.program_failures + 1;
      raise (Program_error sector)
  | _ -> ());
  if t.bad.(b0) then begin
    t.program_failures <- t.program_failures + 1;
    raise (Program_error sector)
  end;
  for i = 0 to count - 1 do
    if Bytes.get t.state (sector + i) <> '\000' then raise (Write_to_unerased (sector + i))
  done;
  (* A torn program completes only the first [k] sectors before the power
     fails; the rest stay erased, as on a real interrupted multi-sector
     program. *)
  let programmed =
    match action with Tear k -> max 0 (min k count) | _ -> count
  in
  for i = 0 to programmed - 1 do
    Bytes.set t.state (sector + i) '\001'
  done;
  if t.config.materialize && programmed > 0 then begin
    let spb = Flash_config.sectors_per_block t.config in
    for i = 0 to programmed - 1 do
      let s = sector + i in
      let b = s / spb and off = s mod spb in
      Bytes.blit data (i * ss) (block_data t b) (off * ss) ss
    done
  end;
  if programmed > 0 then begin
    let pages = pages_touched t ~sector ~count:programmed in
    t.page_writes <- t.page_writes + pages;
    t.sectors_written <- t.sectors_written + programmed;
    t.elapsed <- t.elapsed +. (float_of_int pages *. t.config.t_write_page);
    match t.tracer with
    | None -> ()
    | Some tr ->
        Obs.Tracer.emit tr ~time:t.elapsed
          (Obs.Event.Program_sector { sector; count = programmed })
  end;
  match action with
  | Tear _ -> die t
  | Flip_bit off when t.config.materialize ->
      (* Silent corruption: flip one bit of the just-programmed data. Only
         detectable later through the log-sector checksums. *)
      let off = ((off mod len) + len) mod len in
      let s = sector + (off / ss) in
      let spb = Flash_config.sectors_per_block t.config in
      let b = s / spb and boff = ((s mod spb) * ss) + (off mod ss) in
      let stored = block_data t b in
      Bytes.set stored boff (Char.chr (Char.code (Bytes.get stored boff) lxor 0x10))
  | _ -> ()

let invalidate_sectors t ~sector ~count =
  if count <= 0 then invalid_arg "Flash_chip.invalidate_sectors: count must be positive";
  check_sector t sector;
  check_sector t (sector + count - 1);
  for i = 0 to count - 1 do
    if Bytes.get t.state (sector + i) = '\001' then Bytes.set t.state (sector + i) '\002'
  done

let erase_block t b =
  if b < 0 || b >= t.config.num_blocks then raise (Out_of_range b);
  (match consult t (Op_erase { block = b }) with
  | Fail_stop | Tear _ -> die t
  | Erase_fail ->
      t.erase_failures <- t.erase_failures + 1;
      raise (Erase_error b)
  | Proceed | Flip_bit _ | Read_fault | Read_correctable | Program_fail -> ());
  if t.bad.(b) then begin
    t.erase_failures <- t.erase_failures + 1;
    raise (Erase_error b)
  end;
  if t.config.grow_bad_on_wear_out && t.erase_counts.(b) + 1 > t.config.max_erase_cycles
  then begin
    (* The block's endurance is spent: the erase fails and the block
       becomes a grown bad block. Nothing was erased; stored data stays
       readable, matching how worn NAND actually fails. *)
    t.bad.(b) <- true;
    t.erase_failures <- t.erase_failures + 1;
    raise (Erase_error b)
  end;
  let spb = Flash_config.sectors_per_block t.config in
  Bytes.fill t.state (b * spb) spb '\000';
  if t.config.materialize then Hashtbl.remove t.data b;
  bump_wear t b;
  t.block_erases <- t.block_erases + 1;
  t.elapsed <- t.elapsed +. t.config.t_erase_block;
  match t.tracer with
  | None -> ()
  | Some tr -> Obs.Tracer.emit tr ~time:t.elapsed (Obs.Event.Erase_block { block = b })

let corrupt_sector ?(offset = 0) t s =
  check_sector t s;
  if not t.config.materialize then begin
    (* Timing-only chips store no data to corrupt: warn and report it so
       fault campaigns degrade to a no-op instead of blowing up. *)
    Logs.warn (fun m ->
        m "Flash_chip.corrupt_sector: no-op, %s"
          (corrupt_error_to_string Not_materialized));
    Error Not_materialized
  end
  else if offset < 0 || offset >= t.config.sector_size then Error Bad_offset
  else if Bytes.get t.state s = '\000' then Error Sector_erased
  else begin
    let spb = Flash_config.sectors_per_block t.config in
    let b = s / spb and off = s mod spb in
    let data = block_data t b in
    let pos = (off * t.config.sector_size) + offset in
    Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 0x5A));
    Ok ()
  end

let stats t : Flash_stats.t =
  {
    page_reads = t.page_reads;
    page_writes = t.page_writes;
    block_erases = t.block_erases;
    sectors_read = t.sectors_read;
    sectors_written = t.sectors_written;
    elapsed = t.elapsed;
    max_wear = Array.fold_left max 0 t.erase_counts;
    mean_wear =
      float_of_int (Array.fold_left ( + ) 0 t.erase_counts)
      /. float_of_int t.config.num_blocks;
    read_faults = t.read_faults;
    corrected_reads = t.corrected_reads;
    program_failures = t.program_failures;
    erase_failures = t.erase_failures;
    grown_bad_blocks = Array.fold_left (fun n b -> if b then n + 1 else n) 0 t.bad;
  }

let reset_stats t =
  t.page_reads <- 0;
  t.page_writes <- 0;
  t.block_erases <- 0;
  t.sectors_read <- 0;
  t.sectors_written <- 0;
  t.read_faults <- 0;
  t.corrected_reads <- 0;
  t.program_failures <- 0;
  t.erase_failures <- 0;
  t.elapsed <- 0.0

let last_read_corrected t = t.last_read_corrected

let mark_bad t b =
  if b < 0 || b >= t.config.num_blocks then raise (Out_of_range b);
  t.bad.(b) <- true

let is_bad t b =
  if b < 0 || b >= t.config.num_blocks then raise (Out_of_range b);
  t.bad.(b)

let bad_blocks t =
  let acc = ref [] in
  for b = t.config.num_blocks - 1 downto 0 do
    if t.bad.(b) then acc := b :: !acc
  done;
  !acc

let elapsed t = t.elapsed
let advance_time t dt = t.elapsed <- t.elapsed +. dt
let erase_count t b =
  if b < 0 || b >= t.config.num_blocks then raise (Out_of_range b);
  t.erase_counts.(b)

let erase_counts t = Array.copy t.erase_counts

let wear_histogram t =
  let h = Ipl_util.Histogram.create ~initial_size:t.config.num_blocks () in
  Array.iteri (fun b n -> Ipl_util.Histogram.add h b n) t.erase_counts;
  h

let live_sectors t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c = '\001' then incr n) t.state;
  !n

let free_sectors_in_block t b =
  let spb = Flash_config.sectors_per_block t.config in
  let base = sector_of_block t b in
  let n = ref 0 in
  for s = base to base + spb - 1 do
    if Bytes.get t.state s = '\000' then incr n
  done;
  !n
