(** Operation counters and simulated time of a flash chip. *)

type t = {
  page_reads : int;  (** physical-page read operations *)
  page_writes : int;  (** physical-page program operations *)
  block_erases : int;
  sectors_read : int;
  sectors_written : int;
  elapsed : float;  (** simulated seconds spent in flash operations *)
  max_wear : int;  (** highest per-block erase count *)
  mean_wear : float;  (** mean erase count over all blocks *)
}

val zero : t
val diff : t -> t -> t
(** [diff later earlier] is the per-field difference. *)

val pp : Format.formatter -> t -> unit
