(** Operation counters and simulated time of a flash chip. *)

type t = {
  page_reads : int;  (** physical-page read operations *)
  page_writes : int;  (** physical-page program operations *)
  block_erases : int;
  sectors_read : int;
  sectors_written : int;
  elapsed : float;  (** simulated seconds spent in flash operations *)
  max_wear : int;  (** highest per-block erase count *)
  mean_wear : float;  (** mean erase count over all blocks *)
  read_faults : int;  (** uncorrectable read failures (raised [Read_error]) *)
  corrected_reads : int;
      (** reads that succeeded after on-chip ECC correction
          ([Read_correctable] fault action) *)
  program_failures : int;  (** program operations that raised [Program_error] *)
  erase_failures : int;  (** erase operations that raised [Erase_error] *)
  grown_bad_blocks : int;  (** blocks currently marked grown-bad *)
}

(** This module satisfies {!Ipl_util.Stats_intf.S}. *)

val zero : t

val add : t -> t -> t
(** Field-wise sum; [max_wear] takes the max, [mean_wear] the sum (useful
    only for accumulating diffs). *)

val diff : t -> t -> t
(** [diff later earlier] is the per-field difference. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Ipl_util.Json.t
