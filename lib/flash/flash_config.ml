type t = {
  sector_size : int;
  phys_page_size : int;
  block_size : int;
  num_blocks : int;
  t_read_page : float;
  t_write_page : float;
  t_erase_block : float;
  max_erase_cycles : int;
  fail_on_wear_out : bool;
  grow_bad_on_wear_out : bool;
  materialize : bool;
}

let default ?(num_blocks = 1024) ?(materialize = true) ?(fail_on_wear_out = false)
    ?(grow_bad_on_wear_out = false) () =
  {
    sector_size = 512;
    phys_page_size = 2048;
    block_size = 128 * 1024;
    num_blocks;
    t_read_page = 80e-6;
    t_write_page = 200e-6;
    t_erase_block = 1.5e-3;
    max_erase_cycles = 100_000;
    fail_on_wear_out;
    grow_bad_on_wear_out;
    materialize;
  }

let sectors_per_page t = t.phys_page_size / t.sector_size
let sectors_per_block t = t.block_size / t.sector_size
let pages_per_block t = t.block_size / t.phys_page_size
let capacity_bytes t = t.block_size * t.num_blocks

let validate t =
  let check cond msg = if not cond then invalid_arg ("Flash_config: " ^ msg) in
  check (t.sector_size > 0) "sector_size must be positive";
  check (t.phys_page_size mod t.sector_size = 0) "page size not a multiple of sector size";
  check (t.block_size mod t.phys_page_size = 0) "block size not a multiple of page size";
  check (t.num_blocks > 0) "num_blocks must be positive";
  check (t.t_read_page >= 0.0 && t.t_write_page >= 0.0 && t.t_erase_block >= 0.0)
    "timings must be non-negative";
  check (t.max_erase_cycles > 0) "max_erase_cycles must be positive";
  check
    (not (t.fail_on_wear_out && t.grow_bad_on_wear_out))
    "fail_on_wear_out and grow_bad_on_wear_out are mutually exclusive wear models"
