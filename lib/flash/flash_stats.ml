type t = {
  page_reads : int;
  page_writes : int;
  block_erases : int;
  sectors_read : int;
  sectors_written : int;
  elapsed : float;
}

let zero =
  {
    page_reads = 0;
    page_writes = 0;
    block_erases = 0;
    sectors_read = 0;
    sectors_written = 0;
    elapsed = 0.0;
  }

let diff a b =
  {
    page_reads = a.page_reads - b.page_reads;
    page_writes = a.page_writes - b.page_writes;
    block_erases = a.block_erases - b.block_erases;
    sectors_read = a.sectors_read - b.sectors_read;
    sectors_written = a.sectors_written - b.sectors_written;
    elapsed = a.elapsed -. b.elapsed;
  }

let pp ppf t =
  Format.fprintf ppf "reads=%d writes=%d erases=%d (sectors r=%d w=%d) elapsed=%a"
    t.page_reads t.page_writes t.block_erases t.sectors_read t.sectors_written
    Ipl_util.Size.pp_seconds t.elapsed
