type t = {
  page_reads : int;
  page_writes : int;
  block_erases : int;
  sectors_read : int;
  sectors_written : int;
  elapsed : float;
  max_wear : int;
  mean_wear : float;
}

let zero =
  {
    page_reads = 0;
    page_writes = 0;
    block_erases = 0;
    sectors_read = 0;
    sectors_written = 0;
    elapsed = 0.0;
    max_wear = 0;
    mean_wear = 0.0;
  }

let add a b =
  {
    page_reads = a.page_reads + b.page_reads;
    page_writes = a.page_writes + b.page_writes;
    block_erases = a.block_erases + b.block_erases;
    sectors_read = a.sectors_read + b.sectors_read;
    sectors_written = a.sectors_written + b.sectors_written;
    elapsed = a.elapsed +. b.elapsed;
    max_wear = max a.max_wear b.max_wear;
    mean_wear = a.mean_wear +. b.mean_wear;
  }

let diff a b =
  {
    page_reads = a.page_reads - b.page_reads;
    page_writes = a.page_writes - b.page_writes;
    block_erases = a.block_erases - b.block_erases;
    sectors_read = a.sectors_read - b.sectors_read;
    sectors_written = a.sectors_written - b.sectors_written;
    elapsed = a.elapsed -. b.elapsed;
    max_wear = a.max_wear - b.max_wear;
    mean_wear = a.mean_wear -. b.mean_wear;
  }

let pp ppf t =
  Format.fprintf ppf
    "reads=%d writes=%d erases=%d (sectors r=%d w=%d) wear max=%d mean=%.2f elapsed=%a"
    t.page_reads t.page_writes t.block_erases t.sectors_read t.sectors_written t.max_wear
    t.mean_wear Ipl_util.Size.pp_seconds t.elapsed

let to_json t =
  Ipl_util.Json.Obj
    [
      ("page_reads", Ipl_util.Json.Int t.page_reads);
      ("page_writes", Ipl_util.Json.Int t.page_writes);
      ("block_erases", Ipl_util.Json.Int t.block_erases);
      ("sectors_read", Ipl_util.Json.Int t.sectors_read);
      ("sectors_written", Ipl_util.Json.Int t.sectors_written);
      ("elapsed_s", Ipl_util.Json.Float t.elapsed);
      ("max_wear", Ipl_util.Json.Int t.max_wear);
      ("mean_wear", Ipl_util.Json.Float t.mean_wear);
    ]
