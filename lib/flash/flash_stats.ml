type t = {
  page_reads : int;
  page_writes : int;
  block_erases : int;
  sectors_read : int;
  sectors_written : int;
  elapsed : float;
  max_wear : int;
  mean_wear : float;
  read_faults : int;
  corrected_reads : int;
  program_failures : int;
  erase_failures : int;
  grown_bad_blocks : int;
}

let zero =
  {
    page_reads = 0;
    page_writes = 0;
    block_erases = 0;
    sectors_read = 0;
    sectors_written = 0;
    elapsed = 0.0;
    max_wear = 0;
    mean_wear = 0.0;
    read_faults = 0;
    corrected_reads = 0;
    program_failures = 0;
    erase_failures = 0;
    grown_bad_blocks = 0;
  }

let add a b =
  {
    page_reads = a.page_reads + b.page_reads;
    page_writes = a.page_writes + b.page_writes;
    block_erases = a.block_erases + b.block_erases;
    sectors_read = a.sectors_read + b.sectors_read;
    sectors_written = a.sectors_written + b.sectors_written;
    elapsed = a.elapsed +. b.elapsed;
    max_wear = max a.max_wear b.max_wear;
    mean_wear = a.mean_wear +. b.mean_wear;
    read_faults = a.read_faults + b.read_faults;
    corrected_reads = a.corrected_reads + b.corrected_reads;
    program_failures = a.program_failures + b.program_failures;
    erase_failures = a.erase_failures + b.erase_failures;
    grown_bad_blocks = a.grown_bad_blocks + b.grown_bad_blocks;
  }

let diff a b =
  {
    page_reads = a.page_reads - b.page_reads;
    page_writes = a.page_writes - b.page_writes;
    block_erases = a.block_erases - b.block_erases;
    sectors_read = a.sectors_read - b.sectors_read;
    sectors_written = a.sectors_written - b.sectors_written;
    elapsed = a.elapsed -. b.elapsed;
    max_wear = a.max_wear - b.max_wear;
    mean_wear = a.mean_wear -. b.mean_wear;
    read_faults = a.read_faults - b.read_faults;
    corrected_reads = a.corrected_reads - b.corrected_reads;
    program_failures = a.program_failures - b.program_failures;
    erase_failures = a.erase_failures - b.erase_failures;
    grown_bad_blocks = a.grown_bad_blocks - b.grown_bad_blocks;
  }

let pp ppf t =
  Format.fprintf ppf
    "reads=%d writes=%d erases=%d (sectors r=%d w=%d) wear max=%d mean=%.2f elapsed=%a"
    t.page_reads t.page_writes t.block_erases t.sectors_read t.sectors_written t.max_wear
    t.mean_wear Ipl_util.Size.pp_seconds t.elapsed;
  if
    t.read_faults + t.corrected_reads + t.program_failures + t.erase_failures
    + t.grown_bad_blocks
    > 0
  then
    Format.fprintf ppf
      " faults(read=%d corrected=%d program=%d erase=%d grown-bad=%d)" t.read_faults
      t.corrected_reads t.program_failures t.erase_failures t.grown_bad_blocks

let to_json t =
  Ipl_util.Json.Obj
    [
      ("page_reads", Ipl_util.Json.Int t.page_reads);
      ("page_writes", Ipl_util.Json.Int t.page_writes);
      ("block_erases", Ipl_util.Json.Int t.block_erases);
      ("sectors_read", Ipl_util.Json.Int t.sectors_read);
      ("sectors_written", Ipl_util.Json.Int t.sectors_written);
      ("elapsed_s", Ipl_util.Json.Float t.elapsed);
      ("max_wear", Ipl_util.Json.Int t.max_wear);
      ("mean_wear", Ipl_util.Json.Float t.mean_wear);
      ("read_faults", Ipl_util.Json.Int t.read_faults);
      ("corrected_reads", Ipl_util.Json.Int t.corrected_reads);
      ("program_failures", Ipl_util.Json.Int t.program_failures);
      ("erase_failures", Ipl_util.Json.Int t.erase_failures);
      ("grown_bad_blocks", Ipl_util.Json.Int t.grown_bad_blocks);
    ]
