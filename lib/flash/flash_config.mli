(** Geometry and timing parameters of a simulated NAND flash chip.

    Defaults model the Samsung K9WAG08U1A SLC NAND used in the paper
    (Table 1): 2 KB physical pages, 512 B sectors, 128 KB erase units,
    80 us page read, 200 us page program, 1.5 ms block erase. *)

type t = {
  sector_size : int;  (** unit of logical read/write addressing, bytes *)
  phys_page_size : int;  (** NAND program/read unit, bytes *)
  block_size : int;  (** erase unit, bytes *)
  num_blocks : int;
  t_read_page : float;  (** seconds to read one physical page *)
  t_write_page : float;
      (** seconds to program one physical page. Programming a single 512 B
          sector costs the same (paper, footnote 5). *)
  t_erase_block : float;  (** seconds to erase one block *)
  max_erase_cycles : int;  (** endurance of one erase unit *)
  fail_on_wear_out : bool;
      (** legacy wear model: raise [Worn_out] after an erase pushes a
          block past its endurance (the erase itself completes) *)
  grow_bad_on_wear_out : bool;
      (** production wear model: an erase that would exceed the block's
          endurance fails with [Erase_error] and the block becomes a
          grown bad block (see {!Flash_chip.is_bad}); the bad-block
          manager in [lib/resilience] is built on this. Mutually
          exclusive with [fail_on_wear_out]. *)
  materialize : bool;
      (** when false, no data bytes are stored: the chip is a pure
          timing/counter model (used for large simulations) *)
}

val default :
  ?num_blocks:int ->
  ?materialize:bool ->
  ?fail_on_wear_out:bool ->
  ?grow_bad_on_wear_out:bool ->
  unit ->
  t
(** K9WAG08U1A-style chip. [num_blocks] defaults to 1024 (128 MB). *)

val sectors_per_page : t -> int
val sectors_per_block : t -> int
val pages_per_block : t -> int
val capacity_bytes : t -> int

val validate : t -> unit
(** Raises [Invalid_argument] if sizes are inconsistent (non-divisible or
    non-positive). *)
