(** Simulated NAND flash chip.

    The chip enforces the erase-before-write discipline the paper's whole
    design revolves around: a sector may only be programmed when it is in
    the [Free] (erased) state; re-programming a written sector raises
    {!Write_to_unerased}. Time is charged per physical page touched for
    reads and programs and per block for erases, using the chip's
    {!Flash_config.t}. *)

type t

type sector_state =
  | Free  (** erased, programmable *)
  | Valid  (** programmed, holds live data *)
  | Invalid  (** programmed, data superseded; must be erased before reuse *)

exception Write_to_unerased of int
(** Raised with the offending flat sector address. *)

exception Worn_out of int
(** Raised with the block index when [fail_on_wear_out] is set and a block
    exceeds its endurance. *)

exception Out_of_range of int

exception Power_loss of int
(** Fail-stop power failure injected by the fault hook; carries the index
    of the operation at which the power failed. Once raised, every further
    operation on the chip raises it too (the machine is off) until the
    hook is cleared with {!set_fault_hook}[ t None]. *)

exception Read_error of int
(** Transient read failure injected by the fault hook; carries the first
    sector of the failed read. The operation had no effect; a retry is a
    new operation and may succeed. *)

exception Program_error of int
(** Program operation reported failure; carries the first sector of the
    failed program. No target sector changed state. Real controllers
    respond by relocating the data and retiring the block — that policy
    lives in [lib/resilience]. Raised for an injected [Program_fail] and
    for any program aimed at a bad block. *)

exception Erase_error of int
(** Erase operation reported failure; carries the block index. The block
    was not erased: previously stored data remains readable. Raised for an
    injected [Erase_fail], for any erase of a bad block, and — under
    [grow_bad_on_wear_out] — for an erase that would exceed the block's
    endurance (which also marks the block grown-bad). *)

(** {1 Fault injection}

    Every read, program and erase is assigned a monotonically increasing
    operation index and offered to an installable hook before it executes.
    The hook decides the operation's fate; [lib/fault] builds deterministic
    crash-point campaigns on top of this. *)

type op =
  | Op_read of { sector : int; count : int }
  | Op_program of { sector : int; count : int }
  | Op_erase of { block : int }

type fault_action =
  | Proceed  (** execute normally *)
  | Fail_stop  (** power fails before the operation: raise {!Power_loss} *)
  | Tear of int
      (** programs only: complete the first [k] sectors, then power fails.
          Ignored (= [Proceed]) on reads; on erases it behaves like
          [Fail_stop]. *)
  | Flip_bit of int
      (** programs only (materializing chips): complete the program, then
          silently flip one bit at the given byte offset within the written
          data — bit rot caught only by checksums. Ignored elsewhere. *)
  | Read_fault  (** reads only: raise {!Read_error}. Ignored elsewhere. *)
  | Read_correctable
      (** reads only: the read succeeds but on-chip ECC had to correct
          bit errors — observable via {!last_read_corrected} so the host
          can scrub the weakening block. Ignored elsewhere. *)
  | Program_fail
      (** programs only: the operation reports failure and raises
          {!Program_error}; no sector changes state. Ignored elsewhere. *)
  | Erase_fail
      (** erases only: the operation reports failure and raises
          {!Erase_error}; the block is not erased. Ignored elsewhere. *)

(** {1 Tracing}

    Independent of fault injection: an optional {!Obs.Tracer.t} receives a
    {!Obs.Event.Read_sector} / [Program_sector] / [Erase_block] event,
    stamped with the simulated clock, after each successful physical
    operation (torn programs report the sectors actually programmed).
    With no tracer installed the hook sites cost one option check. *)

val set_tracer : t -> Obs.Tracer.t option -> unit
val tracer : t -> Obs.Tracer.t option

val set_fault_hook : t -> (int -> op -> fault_action) option -> unit
(** Install or clear the fault hook (called as [hook op_index op]).
    Clearing the hook also revives a chip killed by a fail-stop, so tests
    can inspect or restart from the surviving state. *)

val op_count : t -> int
(** Total operations issued so far (including failed ones). Deterministic
    workloads yield identical operation numbering across runs, which is
    what makes systematic crash-point enumeration possible. *)

val is_dead : t -> bool
(** True after an injected fail-stop until the hook is cleared. *)

val create : Flash_config.t -> t
val config : t -> Flash_config.t

val num_sectors : t -> int

(** {1 Addressing} *)

val block_of_sector : t -> int -> int
val sector_of_block : t -> int -> int
(** First flat sector address of a block. *)

(** {1 Operations} *)

val read_sectors : t -> sector:int -> count:int -> bytes
(** Read [count] sectors starting at flat address [sector]. Charges one
    page-read per distinct physical page touched. Reading [Free] sectors
    returns 0xFF bytes (erased state), as real NAND does. Reading
    [Invalid] sectors returns the {e stale programmed data}: invalidation
    is a host-side bookkeeping mark, the charge stays trapped in the cells
    until the block is erased. Recovery and the fault-injection layer rely
    on this (e.g. overflow log sectors invalidated by a merge whose
    metadata never became durable are still readable after restart). *)

val write_sectors : t -> sector:int -> bytes -> unit
(** Program [Bytes.length data / sector_size] sectors starting at [sector].
    The length must be a positive multiple of the sector size. All target
    sectors must be [Free]. Charges one page-program per distinct physical
    page touched. *)

val invalidate_sectors : t -> sector:int -> count:int -> unit
(** Mark written sectors as [Invalid] (logical operation used by FTLs and
    the IPL storage manager; free of charge, like updating an in-memory
    validity bitmap). Invalidating a [Free] sector is a no-op. *)

val erase_block : t -> int -> unit
(** Erase a whole block: all its sectors become [Free]. *)

val sector_state : t -> int -> sector_state

(** {1 Accounting} *)

val stats : t -> Flash_stats.t
val reset_stats : t -> unit
val elapsed : t -> float
(** Simulated seconds accumulated so far (same as [(stats t).elapsed]). *)

val advance_time : t -> float -> unit
(** Add externally-modelled latency (e.g. host transfer) to the clock. *)

type corrupt_error =
  | Not_materialized  (** timing-only chip: nothing stored to corrupt *)
  | Sector_erased
  | Bad_offset

val corrupt_error_to_string : corrupt_error -> string

val corrupt_sector : ?offset:int -> t -> int -> (unit, corrupt_error) result
(** Fault injection for tests: flip bits at byte [offset] (default 0) of a
    written sector's stored data. On a non-materializing chip this is a
    warned no-op returning [Error Not_materialized], so fault campaigns
    still run on timing-only configs. *)

(** {1 Bad blocks}

    A block can become bad two ways: the wear model under
    [grow_bad_on_wear_out] (an over-endurance erase fails and marks it),
    or the host retiring it with {!mark_bad} after a reported program
    failure. Programs and erases on a bad block raise {!Program_error} /
    {!Erase_error}; reads still work (stored charge remains). *)

val mark_bad : t -> int -> unit
val is_bad : t -> int -> bool

val bad_blocks : t -> int list
(** Indices of all bad blocks, ascending. *)

val last_read_corrected : t -> bool
(** True iff the most recent {!read_sectors} needed ECC correction
    ([Read_correctable] fault action). Cleared at the start of every
    read. *)

val erase_count : t -> int -> int
(** Number of erase cycles block [i] has been through. *)

val erase_counts : t -> int array

val wear_histogram : t -> Ipl_util.Histogram.t
(** Erase cycles per block, keyed by block index (every block is present,
    including never-erased ones). Feeds the wear section of campaign
    reports and Figure-4-style analyses. *)

val live_sectors : t -> int
(** Number of [Valid] sectors on the whole chip. *)

val free_sectors_in_block : t -> int -> int
