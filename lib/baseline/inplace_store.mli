(** The naive conventional design on raw flash: update-in-place.

    Section 2.2 of the paper: "each update can only be carried out by
    erasing an entire erase unit after reading its content to memory
    followed by writing the updated content back". Every page write incurs
    a full read-erase-rewrite cycle of its erase unit — the alpha = 1
    extreme of the paper's t_Conv model. Useful as the pessimistic anchor
    in comparisons. *)

type t

type stats = { page_writes : int; page_reads : int; erases : int }

val create : Flash_sim.Flash_chip.t -> page_size:int -> t
val num_pages : t -> int
val format : t -> unit
val write_page : t -> int -> unit
val read_page : t -> int -> unit
val device : t -> Ftl.Device.t
val stats : t -> stats
val elapsed : t -> float
