(** Replay the physical page-write stream of a trace against a device —
    how a {e conventional} (in-place updating, page-granular) server uses
    storage. The physiological log events are ignored: a conventional
    server applies them inside its buffer pool and only the page writes
    reach the device. *)

val page_writes : Reftrace.Trace.t -> (int -> unit) -> int
(** Feed every physical page-write to the callback; returns the count. *)

val run : Reftrace.Trace.t -> Ftl.Device.t -> float
(** Replay onto a device (pages beyond the device capacity are wrapped
    modulo its size) and return the device's elapsed time, including a
    final flush. *)
