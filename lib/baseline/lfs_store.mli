(** Log-structured (sequential-logging) page store — the alternative
    flash-friendly design the paper contrasts IPL with (Section 2.2,
    LGeDBMS and ELF style).

    Every page write appends the whole page at the write frontier and
    invalidates the previous copy; a greedy garbage collector reclaims the
    block with the fewest live pages when free space runs low. Writes are
    always sequential (no erase-before-write stalls), but the design
    consumes free blocks quickly and pays a growing garbage-collection tax
    under random updates — the behaviour the paper calls out. *)

type t

type stats = {
  page_writes : int;  (** host page writes *)
  page_reads : int;
  gc_runs : int;
  gc_page_moves : int;  (** live pages copied by the collector *)
  erases : int;
}

val create : ?overprovision:float -> Flash_sim.Flash_chip.t -> page_size:int -> t
(** [overprovision] (default 0.1) is the fraction of blocks withheld from
    the logical capacity as GC headroom. *)

val num_pages : t -> int
(** Logical capacity in pages. *)

val format : t -> unit
(** Mark every logical page live (sequentially pre-written), reset stats. *)

val write_page : t -> int -> unit
val read_page : t -> int -> unit
val device : t -> Ftl.Device.t
val stats : t -> stats
val elapsed : t -> float
