module Chip = Flash_sim.Flash_chip
module Config = Flash_sim.Flash_config

type stats = { page_writes : int; page_reads : int; erases : int }

type t = {
  chip : Chip.t;
  page_size : int;
  pages_per_block : int;
  sectors_per_page : int;
  num_pages : int;
  scratch : Bytes.t;
  mutable page_writes : int;
  mutable page_reads : int;
}

let create chip ~page_size =
  let c = Chip.config chip in
  if c.Config.block_size mod page_size <> 0 then
    invalid_arg "Inplace_store: page size must divide the block size";
  let pages_per_block = c.Config.block_size / page_size in
  {
    chip;
    page_size;
    pages_per_block;
    sectors_per_page = page_size / c.Config.sector_size;
    num_pages = c.Config.num_blocks * pages_per_block;
    scratch = Bytes.make page_size '\xff';
    page_writes = 0;
    page_reads = 0;
  }

let num_pages t = t.num_pages

let sector_of_page t p =
  let b = p / t.pages_per_block and i = p mod t.pages_per_block in
  Chip.sector_of_block t.chip b + (i * t.sectors_per_page)

let format t =
  (* Nothing to lay out: pages map 1:1; just reset accounting. *)
  Chip.reset_stats t.chip;
  t.page_writes <- 0;
  t.page_reads <- 0

(* Read-erase-rewrite of the whole erase unit, every time. *)
let write_page t p =
  if p < 0 || p >= t.num_pages then invalid_arg "Inplace_store: page out of range";
  t.page_writes <- t.page_writes + 1;
  let block = p / t.pages_per_block in
  let base = block * t.pages_per_block in
  for i = 0 to t.pages_per_block - 1 do
    if base + i <> p then begin
      let data =
        Chip.read_sectors t.chip ~sector:(sector_of_page t (base + i)) ~count:t.sectors_per_page
      in
      assert (Bytes.length data = t.page_size)
    end
  done;
  Chip.erase_block t.chip block;
  for i = 0 to t.pages_per_block - 1 do
    Chip.write_sectors t.chip ~sector:(sector_of_page t (base + i)) t.scratch
  done

let read_page t p =
  if p < 0 || p >= t.num_pages then invalid_arg "Inplace_store: page out of range";
  t.page_reads <- t.page_reads + 1;
  let data = Chip.read_sectors t.chip ~sector:(sector_of_page t p) ~count:t.sectors_per_page in
  assert (Bytes.length data = t.page_size)

let stats t =
  {
    page_writes = t.page_writes;
    page_reads = t.page_reads;
    erases = (Chip.stats t.chip).Flash_sim.Flash_stats.block_erases;
  }

let elapsed t = Chip.elapsed t.chip

let device t : Ftl.Device.t =
  {
    Ftl.Device.name = "inplace";
    page_size = t.page_size;
    num_pages = t.num_pages;
    read_page = (fun p -> read_page t p);
    write_page = (fun p -> write_page t p);
    flush = (fun () -> ());
    elapsed = (fun () -> elapsed t);
  }
