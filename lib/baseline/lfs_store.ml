module Chip = Flash_sim.Flash_chip
module Config = Flash_sim.Flash_config

type stats = {
  page_writes : int;
  page_reads : int;
  gc_runs : int;
  gc_page_moves : int;
  erases : int;
}

type t = {
  chip : Chip.t;
  page_size : int;
  pages_per_block : int;
  sectors_per_page : int;
  num_pages : int;
  mapping : int array;  (* logical page -> physical page slot, -1 unmapped *)
  reverse : int array;  (* physical page slot -> logical page, -1 dead/free *)
  live : int array;  (* live pages per block *)
  free : int Queue.t;
  is_free : bool array;
  scratch : Bytes.t;
  mutable frontier_block : int;
  mutable frontier_idx : int;
  mutable in_gc : bool;
  mutable page_writes : int;
  mutable page_reads : int;
  mutable gc_runs : int;
  mutable gc_page_moves : int;
}

let create ?(overprovision = 0.1) chip ~page_size =
  let c = Chip.config chip in
  if c.Config.block_size mod page_size <> 0 then
    invalid_arg "Lfs_store: page size must divide the block size";
  let pages_per_block = c.Config.block_size / page_size in
  let logical_blocks =
    let n = int_of_float (float_of_int c.Config.num_blocks *. (1.0 -. overprovision)) in
    max 1 (min n (c.Config.num_blocks - 2))
  in
  let num_pages = logical_blocks * pages_per_block in
  let free = Queue.create () in
  let is_free = Array.make c.Config.num_blocks false in
  for b = 1 to c.Config.num_blocks - 1 do
    Queue.add b free;
    is_free.(b) <- true
  done;
  {
    chip;
    page_size;
    pages_per_block;
    sectors_per_page = page_size / c.Config.sector_size;
    num_pages;
    mapping = Array.make num_pages (-1);
    reverse = Array.make (c.Config.num_blocks * pages_per_block) (-1);
    live = Array.make c.Config.num_blocks 0;
    free;
    is_free;
    scratch = Bytes.make page_size '\xff';
    frontier_block = 0;
    frontier_idx = 0;
    in_gc = false;
    page_writes = 0;
    page_reads = 0;
    gc_runs = 0;
    gc_page_moves = 0;
  }

let num_pages t = t.num_pages

let phys_sector t slot =
  let b = slot / t.pages_per_block and i = slot mod t.pages_per_block in
  Chip.sector_of_block t.chip b + (i * t.sectors_per_page)

(* The full (non-free, non-frontier) block with the fewest live pages. *)
let gc_victim t =
  let best = ref (-1) and best_live = ref max_int in
  Array.iteri
    (fun b live ->
      if b <> t.frontier_block && (not t.is_free.(b)) && live < !best_live then begin
        best := b;
        best_live := live
      end)
    t.live;
  !best

let take_free t =
  let b = Queue.take t.free in
  t.is_free.(b) <- false;
  b

let release_free t b =
  Queue.add b t.free;
  t.is_free.(b) <- true

let rec advance_frontier t =
  if not t.in_gc then begin
    (* Keep at least one spare block so garbage collection always has room
       for its copies. *)
    let guard = ref 0 in
    while Queue.length t.free < 2 do
      incr guard;
      if !guard > 2 * Array.length t.live then failwith "Lfs_store: out of space (GC thrashing)";
      collect t
    done
  end
  else if Queue.is_empty t.free then failwith "Lfs_store: out of space during GC";
  t.frontier_block <- take_free t;
  t.frontier_idx <- 0

and append t logical =
  if t.frontier_idx >= t.pages_per_block then advance_frontier t;
  let slot = (t.frontier_block * t.pages_per_block) + t.frontier_idx in
  Chip.write_sectors t.chip ~sector:(phys_sector t slot) t.scratch;
  t.frontier_idx <- t.frontier_idx + 1;
  (match t.mapping.(logical) with
  | -1 -> ()
  | old ->
      Chip.invalidate_sectors t.chip ~sector:(phys_sector t old) ~count:t.sectors_per_page;
      t.reverse.(old) <- -1;
      t.live.(old / t.pages_per_block) <- t.live.(old / t.pages_per_block) - 1);
  t.mapping.(logical) <- slot;
  t.reverse.(slot) <- logical;
  t.live.(t.frontier_block) <- t.live.(t.frontier_block) + 1

and collect t =
  let victim = gc_victim t in
  if victim < 0 then failwith "Lfs_store: no garbage-collection victim";
  t.in_gc <- true;
  t.gc_runs <- t.gc_runs + 1;
  for i = 0 to t.pages_per_block - 1 do
    let slot = (victim * t.pages_per_block) + i in
    let logical = t.reverse.(slot) in
    if logical >= 0 then begin
      (* The read is part of the GC copy cost; a short result would mean the
         chip lied about the geometry, so check it instead of discarding. *)
      let data = Chip.read_sectors t.chip ~sector:(phys_sector t slot) ~count:t.sectors_per_page in
      assert (Bytes.length data = t.page_size);
      append t logical;
      t.gc_page_moves <- t.gc_page_moves + 1
    end
  done;
  Chip.erase_block t.chip victim;
  release_free t victim;
  t.in_gc <- false

let write_page t p =
  if p < 0 || p >= t.num_pages then invalid_arg "Lfs_store: page out of range";
  t.page_writes <- t.page_writes + 1;
  append t p

let read_page t p =
  if p < 0 || p >= t.num_pages then invalid_arg "Lfs_store: page out of range";
  t.page_reads <- t.page_reads + 1;
  match t.mapping.(p) with
  | -1 -> ()
  | slot ->
      let data = Chip.read_sectors t.chip ~sector:(phys_sector t slot) ~count:t.sectors_per_page in
      assert (Bytes.length data = t.page_size)

let format t =
  for p = 0 to t.num_pages - 1 do
    append t p
  done;
  Chip.reset_stats t.chip;
  t.page_writes <- 0;
  t.page_reads <- 0;
  t.gc_runs <- 0;
  t.gc_page_moves <- 0

let stats t =
  {
    page_writes = t.page_writes;
    page_reads = t.page_reads;
    gc_runs = t.gc_runs;
    gc_page_moves = t.gc_page_moves;
    erases = (Chip.stats t.chip).Flash_sim.Flash_stats.block_erases;
  }

let elapsed t = Chip.elapsed t.chip

let device t : Ftl.Device.t =
  {
    Ftl.Device.name = "lfs";
    page_size = t.page_size;
    num_pages = t.num_pages;
    read_page = (fun p -> read_page t p);
    write_page = (fun p -> write_page t p);
    flush = (fun () -> ());
    elapsed = (fun () -> elapsed t);
  }
