let page_writes trace f =
  let n = ref 0 in
  Reftrace.Trace.iter
    (function
      | Reftrace.Trace.Page_write { page } ->
          incr n;
          f page
      | Reftrace.Trace.Log _ -> ())
    trace;
  !n

let run trace (device : Ftl.Device.t) =
  ignore
    (page_writes trace (fun page -> device.Ftl.Device.write_page (page mod device.Ftl.Device.num_pages)));
  device.Ftl.Device.flush ();
  device.Ftl.Device.elapsed ()
