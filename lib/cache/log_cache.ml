(* Per-erase-unit record cache: a hash table of entries threaded on an
   intrusive LRU list (same discipline as Bufmgr.Buffer_pool), plus a
   per-entry page index so a single page's records are reachable without
   walking the unit's full list. Record lists are kept newest-first
   internally; the public accessors reverse into application order. *)

type 'r entry = {
  key : int;
  mutable all_rev : 'r list;
  by_page : (int, 'r list) Hashtbl.t;  (* page -> its records, newest first *)
  mutable bytes : int;
  mutable prev : 'r entry option;  (* towards MRU *)
  mutable next : 'r entry option;  (* towards LRU *)
}

type 'r t = {
  budget : int;
  record_bytes : 'r -> int;
  page_of : 'r -> int;
  on_evict : key:int -> bytes:int -> unit;
  table : (int, 'r entry) Hashtbl.t;
  mutable mru : 'r entry option;
  mutable lru : 'r entry option;
  mutable total_bytes : int;
}

let create ~budget_bytes ~record_bytes ~page_of ?(on_evict = fun ~key:_ ~bytes:_ -> ())
    () =
  if budget_bytes < 0 then invalid_arg "Log_cache.create: negative budget";
  {
    budget = budget_bytes;
    record_bytes;
    page_of;
    on_evict;
    table = Hashtbl.create 64;
    mru = None;
    lru = None;
    total_bytes = 0;
  }

let enabled t = t.budget > 0
let mem t key = Hashtbl.mem t.table key

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.mru <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.lru <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.mru;
  e.prev <- None;
  (match t.mru with Some m -> m.prev <- Some e | None -> t.lru <- Some e);
  t.mru <- Some e

let touch t e =
  match t.mru with
  | Some m when m == e -> ()
  | _ ->
      unlink t e;
      push_front t e

let drop t e =
  unlink t e;
  Hashtbl.remove t.table e.key;
  t.total_bytes <- t.total_bytes - e.bytes

let invalidate t key =
  match Hashtbl.find_opt t.table key with Some e -> drop t e | None -> ()

(* Evict LRU entries until the budget holds. The most recent entry is
   evicted last, so an entry bigger than the whole budget is dropped only
   once everything else is gone. *)
let rec enforce_budget t =
  if t.total_bytes > t.budget then
    match t.lru with
    | None -> ()
    | Some victim ->
        let key = victim.key and bytes = victim.bytes in
        drop t victim;
        t.on_evict ~key ~bytes;
        enforce_budget t

let add_record t e r =
  let page = t.page_of r in
  e.all_rev <- r :: e.all_rev;
  Hashtbl.replace e.by_page page
    (r :: Option.value ~default:[] (Hashtbl.find_opt e.by_page page));
  let b = t.record_bytes r in
  e.bytes <- e.bytes + b;
  t.total_bytes <- t.total_bytes + b

let install t key records =
  if enabled t then begin
    invalidate t key;
    let e =
      { key; all_rev = []; by_page = Hashtbl.create 8; bytes = 0; prev = None; next = None }
    in
    List.iter (fun r -> add_record t e r) records;
    Hashtbl.replace t.table key e;
    push_front t e;
    enforce_budget t
  end

let append t key records =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some e ->
      List.iter (fun r -> add_record t e r) records;
      touch t e;
      enforce_budget t

let records t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some e ->
      touch t e;
      Some (List.rev e.all_rev)

let records_of_page t key ~page =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some e ->
      touch t e;
      Some (List.rev (Option.value ~default:[] (Hashtbl.find_opt e.by_page page)))

let clear t =
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None;
  t.total_bytes <- 0

type stats = { entries : int; bytes : int }

let stats t = { entries = Hashtbl.length t.table; bytes = t.total_bytes }
