(** DRAM cache of decoded log records, one entry per erase unit.

    The in-page logging read path re-creates a page by applying the log
    records of the page's erase unit to the stored image; without a cache
    every page read re-fetches and re-deserializes the unit's whole log
    region (in-page sectors plus overflow chain) from flash. This module
    keeps those decoded records in device DRAM instead, exactly as the
    paper's IPL device keeps hot metadata next to the NAND: an entry
    holds a unit's records in application order plus a per-page index, so
    a page read touches only the records of that page and no flash at
    all.

    The cache is generic in the record type so it sits below [lib/core]
    in the layering (it never inspects records beyond the two accessor
    callbacks given at creation).

    Consistency contract (maintained by the caller, [Ipl_storage]):
    an entry, when present, always equals what a fresh flash scan of the
    unit's log region would decode to. Appends mirror successful log
    writes {e after} the flash program succeeds; a merge or relocation
    that rewrites the unit invalidates (and may re-install) its entry.
    The cache is pure DRAM state — a crash simply means a cold cache, so
    crash recovery is unaffected by construction.

    Entries are evicted least-recently-used once the byte budget is
    exceeded. A budget of [0] disables the cache: every lookup misses,
    [install]/[append] are no-ops, and the engine behaves bit-for-bit as
    without the cache. *)

type 'r t

val create :
  budget_bytes:int ->
  record_bytes:('r -> int) ->
  page_of:('r -> int) ->
  ?on_evict:(key:int -> bytes:int -> unit) ->
  unit ->
  'r t
(** [record_bytes] is the accounted DRAM cost of one record (the caller
    typically uses the record's encoded size plus a constant per-record
    overhead); [page_of] the logical page a record belongs to.
    [on_evict] fires once per entry evicted to honour the budget;
    entries dropped by {!invalidate}, {!clear} or an {!install} that
    replaces them are not evictions and do not fire it.
    [budget_bytes < 0] is rejected. *)

val enabled : 'r t -> bool
(** [false] iff the budget is 0. *)

val mem : 'r t -> int -> bool
(** Pure membership probe: no LRU effect, no hit/miss accounting. *)

val records : 'r t -> int -> 'r list option
(** All records of a cached unit in application order (oldest first).
    [None] on a miss. Refreshes the entry's recency. *)

val records_of_page : 'r t -> int -> page:int -> 'r list option
(** The cached unit's records for one page, in application order — the
    per-page index makes this proportional to that page's records, not
    the unit's. [None] if the {e unit} is not cached (an empty list means
    the unit is cached and has no records for the page). Refreshes the
    entry's recency. *)

val install : 'r t -> int -> 'r list -> unit
(** [install t key records] caches the full decoded record list of a
    unit (application order), replacing any previous entry, then evicts
    LRU entries until the budget holds — possibly the new entry itself
    if it alone exceeds the budget. No-op when disabled. *)

val append : 'r t -> int -> 'r list -> unit
(** Write-through: extend a cached unit's entry with records just
    persisted to its log region. No-op if the unit is not cached (the
    next miss re-reads flash and installs the complete list). *)

val invalidate : 'r t -> int -> unit
(** Drop a unit's entry (merge consumed it, or its log region was
    rewritten). No-op if absent. *)

val clear : 'r t -> unit
(** Drop everything (restart, recovery). *)

type stats = { entries : int; bytes : int }

val stats : 'r t -> stats
(** Current occupancy (hit/miss accounting lives with the caller, which
    knows what a miss costs). *)
