(** Multi-channel parallel flash device.

    Composes [channels x ways] independent {!Flash_sim.Flash_chip}
    instances behind one flat sector address space, striped by erase
    block: device block [b] lives on chip [b mod (channels * ways)]. On
    top of the chip-compatible synchronous surface it offers a tag-based
    asynchronous submission/completion interface and a per-chip I/O
    scheduler with op-class priorities (foreground read > log flush >
    merge/relocation > scrub) on the simulated clock.

    {b Execution model.} Operations execute {e eagerly} on their chip at
    submission, in submission order: sector states, stored bytes, wear,
    fault-hook consultation and statistics are identical to the serial
    path regardless of channel count. Only the {e completion time} of an
    asynchronous submission is deferred — each chip keeps a virtual
    timeline, and the host clock advances past a completion only at
    {!await} / {!barrier} (or when a sync operation lands behind it).
    Overlap across chips is deterministic clock arithmetic; there is no
    wall-clock concurrency. Consequently a data "hazard" between an
    in-flight write and a subsequent read cannot exist — the scheduler
    models queueing time only.

    {b Single-chip mode.} With one chip ([of_chip], or [channels = ways =
    1]) every operation is forwarded verbatim and the chip's own clock is
    the device clock, making the device bit-for-bit equivalent — state,
    stats, simulated time, fault-op numbering — to using the chip
    directly. *)

module Chip = Flash_sim.Flash_chip

type op_class =
  | Foreground  (** latency-critical reads on the query path *)
  | Log_flush  (** in-page / overflow log-sector programs *)
  | Merge_io  (** merge rewrites, reclamation erases, relocations *)
  | Scrub  (** preventive background relocation *)

val class_name : op_class -> string
val all_classes : op_class list

type tag
(** Completion handle of an asynchronous submission. *)

type t

val create :
  ?queue_depth:int -> channels:int -> ways:int -> Flash_sim.Flash_config.t -> t
(** Build a device of [channels * ways] chips from a device-level
    geometry; [num_blocks] must divide evenly across the chips.
    [queue_depth] (default 8) bounds outstanding operations per chip: a
    submission against a full queue stalls the host clock to the earliest
    completion. *)

val of_chip : Chip.t -> t
(** Wrap an existing chip as a single-channel device (the bit-for-bit
    compatibility path: fault hooks installed directly on the chip keep
    working, including their operation numbering). *)

val config : t -> Flash_sim.Flash_config.t
(** Device-level geometry: [num_blocks] is the total across all chips. *)

val channels : t -> int
val ways : t -> int
val num_chips : t -> int
val queue_depth : t -> int

val chip : t -> int -> Chip.t
(** The underlying chip of channel [i] (tests and compatibility). *)

(** {1 Addressing} *)

val num_sectors : t -> int
val block_of_sector : t -> int -> int
val sector_of_block : t -> int -> int

val channel_of_block : t -> int -> int
(** Which chip a device block lives on — the bad-block manager uses this
    to keep relocation channel-local, the storage manager to stripe
    allocation. *)

(** {1 Synchronous operations}

    Drop-in equivalents of the chip operations, over device addresses.
    Multi-sector operations must stay within one erase block when the
    device has more than one chip (striping granularity); violations
    raise [Invalid_argument]. [cls] (default [Foreground]) attributes the
    operation to a scheduler class. *)

val read_sectors : ?cls:op_class -> t -> sector:int -> count:int -> bytes
val write_sectors : ?cls:op_class -> t -> sector:int -> bytes -> unit
val erase_block : ?cls:op_class -> t -> int -> unit
val invalidate_sectors : t -> sector:int -> count:int -> unit
val sector_state : t -> int -> Chip.sector_state
val free_sectors_in_block : t -> int -> int
val mark_bad : t -> int -> unit
val is_bad : t -> int -> bool
val bad_blocks : t -> int list
val erase_count : t -> int -> int
val erase_counts : t -> int array
val wear_histogram : t -> Ipl_util.Histogram.t
val live_sectors : t -> int
val last_read_corrected : t -> bool

(** {1 Asynchronous submission}

    The operation executes now (data, faults, wear); the returned tag
    settles when awaited. Exceptions therefore surface at submission,
    exactly where the serial path raised them. *)

val submit_read : t -> cls:op_class -> sector:int -> count:int -> bytes * tag
val submit_write : t -> cls:op_class -> sector:int -> bytes -> tag
val submit_erase : t -> cls:op_class -> int -> tag

val publish_write : t -> cls:op_class -> sector:int -> bytes -> unit
(** Fire-and-forget {!submit_write}: the operation is published to its
    class queue and settled by a later {!barrier}/{!drain} (or, for
    background relocation, implicitly by the cleaning engine), never by an
    individual await. Use this instead of dropping a {!submit_write} tag. *)

val publish_erase : t -> cls:op_class -> int -> unit
(** Fire-and-forget {!submit_erase}; see {!publish_write}. *)

val await : t -> tag -> unit
(** Advance the host clock past the tag's completion. Idempotent; unknown
    (already-settled) tags are a no-op. *)

val barrier : t -> unit
(** Advance the host clock past every outstanding {!Foreground} and
    {!Log_flush} {e write} completion — the durability wait at a
    Meta_log / Trx_log force point. Reads are excluded (they have no
    durability semantics), as is background relocation traffic
    ([Merge_io], [Scrub]): it models the device's cleaning engine, which
    orders its programs per-chip and never stalls a commit. Waited-on
    operations that have not yet started are promoted to the head of
    their chip's queue, like a deadline-aware controller. *)

val drain : t -> unit
(** Advance the host clock past {e every} outstanding completion,
    background classes included — a full quiesce (checkpoint,
    shutdown). *)

val in_flight : t -> int
(** Outstanding (submitted, not yet settled) operations. *)

(** {1 Clock and stats} *)

val elapsed : t -> float
(** Simulated makespan so far: host clock advanced past every scheduled
    completion. Single-chip mode: the chip's own clock. *)

val advance_time : t -> float -> unit

val stats : t -> Flash_sim.Flash_stats.t
(** Aggregated over chips; [elapsed] is the device makespan (not the sum
    of per-chip busy times), [mean_wear] the cross-chip mean. *)

val reset_stats : t -> unit

(** {1 Fault injection}

    A device-level hook sees one global, deterministic operation
    numbering across all chips (submission order). A [Fail_stop] (or a
    torn program) kills the whole device — power is shared — and every
    further operation raises {!Chip.Power_loss} until the hook is cleared
    with [set_fault_hook t None], which also revives the chips. In
    single-chip mode the hook is installed directly on the chip. *)

val set_fault_hook : t -> (int -> Chip.op -> Chip.fault_action) option -> unit
val op_count : t -> int
val is_dead : t -> bool

(** {1 Tracing and per-channel observability} *)

val set_tracer : t -> Obs.Tracer.t option -> unit
(** Install on every chip. Chip-level events are stamped with the chip's
    own busy clock; layers above stamp their events with {!elapsed}. *)

val tracer : t -> Obs.Tracer.t option

type channel_report = {
  chan_index : int;
  busy_s : float;  (** chip busy time (sum of service times) *)
  utilization : float;  (** busy / device makespan *)
  max_queue_depth : int;
  mean_queue_depth : float;  (** queue depth observed at each submission *)
  submitted_by_class : (string * int) list;
  chip_stats : Flash_sim.Flash_stats.t;
}

val channel_report : t -> channel_report list

val class_latency : t -> op_class -> Obs.Metrics.Latency.t
(** Submit-to-completion latency histogram of an op class (service time
    in single-chip mode, where submissions never wait). *)

val to_json : t -> Ipl_util.Json.t
(** [{channels, ways, queue_depth, elapsed_s, per_channel: [...],
    op_class_latency: {...}}] — the device section of BENCH_ipl.json. *)
