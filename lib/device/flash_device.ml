module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module FStats = Flash_sim.Flash_stats

(* A multi-channel flash device: channels x ways independent chips behind
   one flat sector address space, striped by erase block (device block [b]
   lives on chip [b mod n]). Execution is *eager*: a submitted operation
   runs on its chip immediately, in submission order — state transitions,
   stored data, fault-hook consultation and wear are exactly those of the
   serial path, so logical behaviour and crash campaigns are independent
   of the channel count. Only the *completion time* of an asynchronous
   submission is deferred: each chip keeps a virtual timeline of scheduled
   operations, and the host clock advances to a completion only when the
   caller awaits its tag (or a barrier). Overlap across chips is therefore
   pure clock arithmetic on the simulated timebase — deterministic, with
   no threads and no event-queue nondeterminism. *)

type op_class = Foreground | Log_flush | Merge_io | Scrub

let class_index = function Foreground -> 0 | Log_flush -> 1 | Merge_io -> 2 | Scrub -> 3
let num_classes = 4

let class_name = function
  | Foreground -> "foreground"
  | Log_flush -> "log_flush"
  | Merge_io -> "merge"
  | Scrub -> "scrub"

let all_classes = [ Foreground; Log_flush; Merge_io; Scrub ]

type tag = int

let no_tag : tag = -1

(* One scheduled-but-not-settled operation on a chip's virtual timeline.
   [p_start] is mutable because a higher-priority arrival may push a
   queued (not yet started) operation back. *)
type pending = {
  p_tag : tag;
  p_class : op_class;
  p_chip : int;
  mutable p_start : float;
  p_dur : float;
  p_submitted : float;
  p_write : bool;  (* programs/erases; reads never gate a barrier *)
}

let completion p = p.p_start +. p.p_dur

type chan = {
  chip : Chip.t;
  mutable sched : pending list;  (* unsettled ops, ascending start time *)
  mutable max_depth : int;
  mutable depth_sum : int;
  mutable depth_obs : int;
  submitted : int array;  (* per op class *)
}

type t = {
  chans : chan array;
  channels : int;
  ways : int;
  queue_depth : int;
  config : FConfig.t;  (* device-level geometry (num_blocks = total) *)
  spb : int;
  single : bool;
      (* one chip: every operation is forwarded verbatim and the chip's
         own clock is the device clock, making the single-channel device
         bit-for-bit (state, stats, time) equal to the bare-chip path *)
  mutable now : float;  (* host virtual clock, multi-chip mode *)
  mutable next_tag : int;
  tags : (tag, pending) Hashtbl.t;  (* outstanding submissions *)
  lat : Obs.Metrics.Latency.t array;  (* per-class submit-to-completion *)
  mutable dead : int option;  (* op index of a device-wide fail-stop *)
  mutable hook : (int -> Chip.op -> Chip.fault_action) option;
  mutable ops : int;  (* device-global operation numbering *)
  mutable last_read_chan : int;
  waits : float array;  (* host stall time by cause, see [wait_cause] *)
}

(* Why the host virtual clock advanced: awaiting a tag, a durability
   barrier / full drain, a synchronous operation, or queue-depth
   backpressure. *)
let wait_await = 0
let wait_barrier = 1
let wait_sync = 2
let wait_backpressure = 3
let num_wait_causes = 4

let advance_now t cause target =
  if target > t.now then begin
    t.waits.(cause) <- t.waits.(cause) +. (target -. t.now);
    t.now <- target
  end

let mk_chan chip =
  {
    chip;
    sched = [];
    max_depth = 0;
    depth_sum = 0;
    depth_obs = 0;
    submitted = Array.make num_classes 0;
  }

let nchips t = Array.length t.chans

(* In multi-chip mode every chip consults this permanent hook, which keeps
   one device-global operation numbering (deterministic: eager execution
   means submission order is numbering order) and forwards to the
   user-installed device hook, if any. *)
let install_counter t c =
  Chip.set_fault_hook c.chip
    (Some
       (fun _local op ->
         let i = t.ops in
         t.ops <- i + 1;
         match t.hook with None -> Chip.Proceed | Some f -> f i op))

let default_queue_depth = 32

let of_chip chip =
  {
    chans = [| mk_chan chip |];
    channels = 1;
    ways = 1;
    queue_depth = 1;
    config = Chip.config chip;
    spb = FConfig.sectors_per_block (Chip.config chip);
    single = true;
    now = 0.0;
    next_tag = 0;
    tags = Hashtbl.create 64;
    lat = Array.init num_classes (fun _ -> Obs.Metrics.Latency.create ());
    dead = None;
    hook = None;
    ops = 0;
    last_read_chan = 0;
    waits = Array.make num_wait_causes 0.0;
  }

let create ?(queue_depth = default_queue_depth) ~channels ~ways config =
  if channels <= 0 then invalid_arg "Flash_device.create: channels must be positive";
  if ways <= 0 then invalid_arg "Flash_device.create: ways must be positive";
  if queue_depth <= 0 then invalid_arg "Flash_device.create: queue_depth must be positive";
  FConfig.validate config;
  let n = channels * ways in
  if config.FConfig.num_blocks mod n <> 0 then
    invalid_arg "Flash_device.create: num_blocks must divide evenly across channels x ways";
  if n = 1 then of_chip (Chip.create config)
  else begin
    let per_chip = { config with FConfig.num_blocks = config.FConfig.num_blocks / n } in
    let t =
      {
        chans = Array.init n (fun _ -> mk_chan (Chip.create per_chip));
        channels;
        ways;
        queue_depth;
        config;
        spb = FConfig.sectors_per_block config;
        single = false;
        now = 0.0;
        next_tag = 0;
        tags = Hashtbl.create 64;
        lat = Array.init num_classes (fun _ -> Obs.Metrics.Latency.create ());
        dead = None;
        hook = None;
        ops = 0;
        last_read_chan = 0;
        waits = Array.make num_wait_causes 0.0;
      }
    in
    Array.iter (install_counter t) t.chans;
    t
  end

let config t = t.config
let channels t = t.channels
let ways t = t.ways
let num_chips = nchips
let queue_depth t = t.queue_depth
let chip t i = t.chans.(i).chip
let num_sectors t = t.spb * t.config.FConfig.num_blocks

(* ------------------------------------------------------------------ *)
(* Addressing: device block [b] -> chip [b mod n], local block [b / n]. *)

let check_block t b =
  if b < 0 || b >= t.config.FConfig.num_blocks then raise (Chip.Out_of_range b)

let check_sector t s = if s < 0 || s >= num_sectors t then raise (Chip.Out_of_range s)

let block_of_sector t s =
  check_sector t s;
  s / t.spb

let sector_of_block t b =
  check_block t b;
  b * t.spb

let channel_of_block t b =
  check_block t b;
  if t.single then 0 else b mod nchips t

(* Chip index and chip-local flat sector address of a device-address
   range. Multi-sector operations must stay within one erase block — the
   striping granularity — exactly the discipline the erase-unit-based
   storage layers above already obey. *)
let locate t ~sector ~count =
  check_sector t sector;
  if count > 0 then check_sector t (sector + count - 1);
  if t.single then (0, sector)
  else begin
    let b = sector / t.spb in
    if count > 1 && (sector + count - 1) / t.spb <> b then
      invalid_arg "Flash_device: operation crosses an erase-block boundary";
    (b mod nchips t, ((b / nchips t) * t.spb) + (sector mod t.spb))
  end

let locate_block t b =
  check_block t b;
  if t.single then (0, b) else (b mod nchips t, b / nchips t)

(* ------------------------------------------------------------------ *)
(* Virtual-time scheduler (multi-chip mode only)                       *)

let prio = class_index

let settle t p =
  Obs.Metrics.Latency.observe t.lat.(class_index p.p_class) (completion p -. p.p_submitted);
  Hashtbl.remove t.tags p.p_tag

(* Drop (and account) every operation whose completion the host clock has
   passed. *)
let prune t c =
  let fin, live = List.partition (fun p -> completion p <= t.now) c.sched in
  List.iter (settle t) fin;
  c.sched <- live

(* Per-chip queue-depth cap: a submission against a full queue blocks the
   host (clock advances to the earliest completion) — the model of a
   bounded hardware queue. *)
let rec make_room t c =
  prune t c;
  if List.length c.sched >= t.queue_depth then begin
    let earliest =
      List.fold_left (fun acc p -> Float.min acc (completion p)) infinity c.sched
    in
    advance_now t wait_backpressure earliest;
    make_room t c
  end

(* Place a new operation of [cls] on chip [c]'s timeline. It starts after
   the in-progress operation and every queued operation of equal or higher
   priority (FIFO within a class), and preempts queued lower-priority
   operations, which are pushed back. Pure time arithmetic: the data
   effects already happened at submission. *)
let schedule t c ~chip_idx ~cls ~write ~dur =
  let tag = t.next_tag in
  t.next_tag <- tag + 1;
  let started, queued = List.partition (fun p -> p.p_start <= t.now) c.sched in
  let ahead, behind = List.partition (fun p -> prio p.p_class <= prio cls) queued in
  let base =
    List.fold_left (fun acc p -> Float.max acc (completion p)) t.now started
  in
  let base = List.fold_left (fun acc p -> Float.max acc (completion p)) base ahead in
  let p =
    { p_tag = tag; p_class = cls; p_chip = chip_idx; p_start = base; p_dur = dur;
      p_submitted = t.now; p_write = write }
  in
  let rec push_back prev_end = function
    | [] -> ()
    | q :: rest ->
        q.p_start <- Float.max q.p_start prev_end;
        push_back (completion q) rest
  in
  push_back (completion p) behind;
  c.sched <-
    List.sort
      (fun a b -> compare (a.p_start, a.p_tag) (b.p_start, b.p_tag))
      ((p :: started) @ ahead @ behind);
  Hashtbl.replace t.tags tag p;
  p

(* Deadline promotion: the host is blocked on [p]. If [p] has not started
   yet, nothing on its chip is more urgent — move it ahead of every other
   queued (not yet started) operation, pushing them back. A real
   controller reorders its internal queue the same way when a flush the
   host is waiting on sits behind readahead traffic. Pure time
   arithmetic; execution was eager. *)
let expedite t p =
  if p.p_start > t.now then begin
    let c = t.chans.(p.p_chip) in
    let started, queued = List.partition (fun q -> q.p_start <= t.now) c.sched in
    let others = List.filter (fun q -> q.p_tag <> p.p_tag) queued in
    let base =
      List.fold_left (fun acc q -> Float.max acc (completion q)) t.now started
    in
    p.p_start <- base;
    let rec push_back prev_end = function
      | [] -> ()
      | q :: rest ->
          q.p_start <- Float.max q.p_start prev_end;
          push_back (completion q) rest
    in
    push_back (completion p) others;
    c.sched <-
      List.sort
        (fun a b -> compare (a.p_start, a.p_tag) (b.p_start, b.p_tag))
        (started @ (p :: others))
  end

let check_dead t =
  match t.dead with Some i -> raise (Chip.Power_loss i) | None -> ()

let note_submission t c ~cls =
  c.submitted.(class_index cls) <- c.submitted.(class_index cls) + 1;
  if not t.single then begin
    let d = List.length c.sched in
    if d > c.max_depth then c.max_depth <- d;
    c.depth_sum <- c.depth_sum + d;
    c.depth_obs <- c.depth_obs + 1
  end

(* Run one physical operation eagerly on its chip, measuring its service
   time from the chip's own clock (so the device never re-implements the
   chip's timing model), and schedule its completion. Failed operations
   normally charge no time; the exception is a torn program, which charges
   the partial program before the power dies — that time is folded in
   synchronously so the clock stays consistent. *)
let dispatch t ~cls ~write ~chip_idx ~(execute : Chip.t -> 'a) : 'a * pending =
  check_dead t;
  let c = t.chans.(chip_idx) in
  make_room t c;
  note_submission t c ~cls;
  let t0 = Chip.elapsed c.chip in
  match execute c.chip with
  | result ->
      let dur = Chip.elapsed c.chip -. t0 in
      (result, schedule t c ~chip_idx ~cls ~write ~dur)
  | exception e ->
      (match e with
      | Chip.Power_loss _ -> t.dead <- Some (max 0 (t.ops - 1))
      | _ -> ());
      let dur = Chip.elapsed c.chip -. t0 in
      if dur > 0.0 then begin
        let p = schedule t c ~chip_idx ~cls ~write ~dur in
        expedite t p;
        advance_now t wait_sync (completion p);
        prune t c
      end;
      raise e

let run_sync t ~cls ~write ~chip_idx execute =
  if t.single then begin
    let c = t.chans.(0) in
    note_submission t c ~cls;
    let t0 = Chip.elapsed c.chip in
    let r = execute c.chip in
    Obs.Metrics.Latency.observe t.lat.(class_index cls) (Chip.elapsed c.chip -. t0);
    r
  end
  else begin
    let r, p = dispatch t ~cls ~write ~chip_idx ~execute in
    expedite t p;
    advance_now t wait_sync (completion p);
    prune t t.chans.(chip_idx);
    r
  end

let run_async t ~cls ~write ~chip_idx execute =
  if t.single then (run_sync t ~cls ~write ~chip_idx execute, no_tag)
  else begin
    let r, p = dispatch t ~cls ~write ~chip_idx ~execute in
    (r, p.p_tag)
  end

(* ------------------------------------------------------------------ *)
(* Synchronous chip-compatible surface                                 *)

let read_sectors ?(cls = Foreground) t ~sector ~count =
  let chip_idx, ls = locate t ~sector ~count in
  t.last_read_chan <- chip_idx;
  run_sync t ~cls ~write:false ~chip_idx (fun chip -> Chip.read_sectors chip ~sector:ls ~count)

let write_sectors ?(cls = Foreground) t ~sector data =
  let ss = t.config.FConfig.sector_size in
  let count = max 1 (Bytes.length data / ss) in
  let chip_idx, ls = locate t ~sector ~count in
  run_sync t ~cls ~write:true ~chip_idx (fun chip -> Chip.write_sectors chip ~sector:ls data)

let erase_block ?(cls = Foreground) t b =
  let chip_idx, lb = locate_block t b in
  run_sync t ~cls ~write:true ~chip_idx (fun chip -> Chip.erase_block chip lb)

(* Invalidation is host-side bookkeeping (free of charge on the chip), so
   it bypasses the scheduler entirely — but still dies with the device. *)
let invalidate_sectors t ~sector ~count =
  if not t.single then check_dead t;
  let chip_idx, ls = locate t ~sector ~count in
  Chip.invalidate_sectors t.chans.(chip_idx).chip ~sector:ls ~count

let sector_state t s =
  let chip_idx, ls = locate t ~sector:s ~count:1 in
  Chip.sector_state t.chans.(chip_idx).chip ls

let free_sectors_in_block t b =
  let chip_idx, lb = locate_block t b in
  Chip.free_sectors_in_block t.chans.(chip_idx).chip lb

let mark_bad t b =
  let chip_idx, lb = locate_block t b in
  Chip.mark_bad t.chans.(chip_idx).chip lb

let is_bad t b =
  let chip_idx, lb = locate_block t b in
  Chip.is_bad t.chans.(chip_idx).chip lb

let bad_blocks t =
  if t.single then Chip.bad_blocks t.chans.(0).chip
  else
    List.sort compare
      (List.concat
         (Array.to_list
            (Array.mapi
               (fun i c ->
                 List.map (fun lb -> (lb * nchips t) + i) (Chip.bad_blocks c.chip))
               t.chans)))

let erase_count t b =
  let chip_idx, lb = locate_block t b in
  Chip.erase_count t.chans.(chip_idx).chip lb

let erase_counts t =
  if t.single then Chip.erase_counts t.chans.(0).chip
  else
    Array.init t.config.FConfig.num_blocks (fun b ->
        let chip_idx, lb = locate_block t b in
        Chip.erase_count t.chans.(chip_idx).chip lb)

let wear_histogram t =
  if t.single then Chip.wear_histogram t.chans.(0).chip
  else begin
    let h = Ipl_util.Histogram.create () in
    Array.iteri (fun b n -> Ipl_util.Histogram.add h b n) (erase_counts t);
    h
  end

let live_sectors t =
  Array.fold_left (fun acc c -> acc + Chip.live_sectors c.chip) 0 t.chans

let last_read_corrected t = Chip.last_read_corrected t.chans.(t.last_read_chan).chip

(* ------------------------------------------------------------------ *)
(* Asynchronous submission / completion                                *)

let submit_read t ~cls ~sector ~count =
  let chip_idx, ls = locate t ~sector ~count in
  t.last_read_chan <- chip_idx;
  run_async t ~cls ~write:false ~chip_idx (fun chip -> Chip.read_sectors chip ~sector:ls ~count)

let submit_write t ~cls ~sector data =
  let ss = t.config.FConfig.sector_size in
  let count = max 1 (Bytes.length data / ss) in
  let chip_idx, ls = locate t ~sector ~count in
  let (), tag =
    run_async t ~cls ~write:true ~chip_idx (fun chip -> Chip.write_sectors chip ~sector:ls data)
  in
  tag

let submit_erase t ~cls b =
  let chip_idx, lb = locate_block t b in
  let (), tag = run_async t ~cls ~write:true ~chip_idx (fun chip -> Chip.erase_block chip lb) in
  tag

(* Fire-and-forget submissions for callers that settle by class barrier
   (or not at all — scrub relocation), not by individual await. The tag
   never escapes, so the settling protocol is explicit at the call site. *)
let publish_write t ~cls ~sector data = ignore (submit_write t ~cls ~sector data : tag)
let publish_erase t ~cls b = ignore (submit_erase t ~cls b : tag)

let await t tag =
  if not t.single then
    match Hashtbl.find_opt t.tags tag with
    | None -> () (* already completed (or a single-mode no_tag) *)
    | Some p ->
        expedite t p;
        advance_now t wait_await (completion p);
        prune t t.chans.(p.p_chip)

let in_flight t = Hashtbl.length t.tags

(* The durability barrier: the host clock advances past every outstanding
   foreground and log-flush completion. State-wise a no-op (execution is
   eager); time-wise it is the cost of waiting for the durability-relevant
   queues to drain at a force point. Background relocation traffic
   ([Merge_io], [Scrub]) is excluded: it models the FTL's cleaning
   engine, which orders its programs against the mapping journal
   per-chip and never stalls a commit. {!drain} waits for everything. *)
let durability_class = function
  | Foreground | Log_flush -> true
  | Merge_io | Scrub -> false

let barrier t =
  if not t.single then begin
    (* Sorted by tag so promotion order (and thus the resulting timeline)
       is independent of hash-table iteration order. *)
    let ps =
      Hashtbl.fold
        (fun _ p acc ->
          if p.p_write && durability_class p.p_class then p :: acc else acc)
        t.tags []
      |> List.sort (fun a b -> compare a.p_tag b.p_tag)
    in
    List.iter
      (fun p ->
        expedite t p;
        advance_now t wait_barrier (completion p))
      ps;
    Array.iter (fun c -> prune t c) t.chans
  end

let drain t =
  if not t.single then begin
    Hashtbl.iter (fun _ p -> advance_now t wait_barrier (completion p)) t.tags;
    Array.iter (fun c -> prune t c) t.chans
  end

(* ------------------------------------------------------------------ *)
(* Clock and stats                                                     *)

let makespan t =
  Array.fold_left
    (fun acc c -> List.fold_left (fun a p -> Float.max a (completion p)) acc c.sched)
    t.now t.chans

let elapsed t = if t.single then Chip.elapsed t.chans.(0).chip else makespan t

let advance_time t dt =
  if t.single then Chip.advance_time t.chans.(0).chip dt else t.now <- t.now +. dt

let stats t =
  let agg = Array.fold_left (fun acc c -> FStats.add acc (Chip.stats c.chip)) FStats.zero t.chans in
  {
    agg with
    FStats.elapsed = elapsed t;
    FStats.mean_wear = agg.FStats.mean_wear /. float_of_int (nchips t);
  }

let reset_stats t = Array.iter (fun c -> Chip.reset_stats c.chip) t.chans

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

let set_fault_hook t hook =
  if t.single then Chip.set_fault_hook t.chans.(0).chip hook
  else begin
    t.hook <- hook;
    match hook with
    | Some _ -> ()
    | None ->
        (* Clearing revives the device, like clearing a chip hook revives
           the chip: reset per-chip deadness, then re-arm the counters. *)
        t.dead <- None;
        Array.iter
          (fun c ->
            Chip.set_fault_hook c.chip None;
            install_counter t c)
          t.chans
  end

let op_count t = if t.single then Chip.op_count t.chans.(0).chip else t.ops
let is_dead t = if t.single then Chip.is_dead t.chans.(0).chip else t.dead <> None

let set_tracer t tracer = Array.iter (fun c -> Chip.set_tracer c.chip tracer) t.chans
let tracer t = Chip.tracer t.chans.(0).chip

(* ------------------------------------------------------------------ *)
(* Per-channel observability                                           *)

type channel_report = {
  chan_index : int;
  busy_s : float;
  utilization : float;
  max_queue_depth : int;
  mean_queue_depth : float;
  submitted_by_class : (string * int) list;
  chip_stats : FStats.t;
}

let channel_report t =
  let total = elapsed t in
  Array.to_list
    (Array.mapi
       (fun i c ->
         let busy = Chip.elapsed c.chip in
         {
           chan_index = i;
           busy_s = busy;
           utilization = (if total > 0.0 then busy /. total else 0.0);
           max_queue_depth = c.max_depth;
           mean_queue_depth =
             (if c.depth_obs > 0 then
                float_of_int c.depth_sum /. float_of_int c.depth_obs
              else 0.0);
           submitted_by_class =
             List.map (fun cls -> (class_name cls, c.submitted.(class_index cls))) all_classes;
           chip_stats = Chip.stats c.chip;
         })
       t.chans)

let class_latency t cls = t.lat.(class_index cls)

let to_json t =
  let module J = Ipl_util.Json in
  J.Obj
    [
      ("channels", J.Int t.channels);
      ("ways", J.Int t.ways);
      ("queue_depth", J.Int t.queue_depth);
      ("elapsed_s", J.Float (elapsed t));
      ( "per_channel",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("channel", J.Int r.chan_index);
                   ("busy_s", J.Float r.busy_s);
                   ("utilization", J.Float r.utilization);
                   ("max_queue_depth", J.Int r.max_queue_depth);
                   ("mean_queue_depth", J.Float r.mean_queue_depth);
                   ( "submitted",
                     J.Obj (List.map (fun (k, v) -> (k, J.Int v)) r.submitted_by_class) );
                 ])
             (channel_report t)) );
      ( "op_class_latency",
        J.Obj
          (List.map
             (fun cls ->
               (class_name cls, Obs.Metrics.Latency.to_json t.lat.(class_index cls)))
             all_classes) );
      ( "host_wait_s",
        J.Obj
          [
            ("await", J.Float t.waits.(wait_await));
            ("barrier", J.Float t.waits.(wait_barrier));
            ("sync", J.Float t.waits.(wait_sync));
            ("backpressure", J.Float t.waits.(wait_backpressure));
          ] );
    ]
