type op = Insert | Delete | Update

type event = Log of { op : op; page : int; length : int } | Page_write of { page : int }

(* Columnar storage: kinds.(i) is 0/1/2 for log insert/delete/update and
   3 for a physical page write; lengths are 0 for page writes. *)
type t = { name : string; db_pages : int; kinds : Bytes.t; pages : int array; lengths : int array }

let name t = t.name
let rename t name = { t with name }
let db_pages t = t.db_pages
let length t = Array.length t.pages

let event_of_kind kind page length =
  match kind with
  | '\000' -> Log { op = Insert; page; length }
  | '\001' -> Log { op = Delete; page; length }
  | '\002' -> Log { op = Update; page; length }
  | _ -> Page_write { page }

let get t i = event_of_kind (Bytes.get t.kinds i) t.pages.(i) t.lengths.(i)

let iter f t =
  for i = 0 to length t - 1 do
    f (get t i)
  done

type builder = {
  b_name : string;
  b_db_pages : int;
  kinds_buf : Buffer.t;
  mutable pages_arr : int array;
  mutable lengths_arr : int array;
  mutable n : int;
}

let builder ~name ~db_pages =
  {
    b_name = name;
    b_db_pages = db_pages;
    kinds_buf = Buffer.create 4096;
    pages_arr = Array.make 4096 0;
    lengths_arr = Array.make 4096 0;
    n = 0;
  }

let ensure b =
  if b.n >= Array.length b.pages_arr then begin
    let grow a = Array.append a (Array.make (Array.length a) 0) in
    b.pages_arr <- grow b.pages_arr;
    b.lengths_arr <- grow b.lengths_arr
  end

let add_event b kind page length =
  ensure b;
  Buffer.add_char b.kinds_buf kind;
  b.pages_arr.(b.n) <- page;
  b.lengths_arr.(b.n) <- length;
  b.n <- b.n + 1

let add_log b ~op ~page ~length =
  let kind = match op with Insert -> '\000' | Delete -> '\001' | Update -> '\002' in
  add_event b kind page length

let add_page_write b ~page = add_event b '\003' page 0

let build ?db_pages b =
  {
    name = b.b_name;
    db_pages = Option.value ~default:b.b_db_pages db_pages;
    kinds = Buffer.to_bytes b.kinds_buf;
    pages = Array.sub b.pages_arr 0 b.n;
    lengths = Array.sub b.lengths_arr 0 b.n;
  }

type op_stats = { occurrences : int; avg_length : float }

type stats = {
  insert : op_stats;
  delete : op_stats;
  update : op_stats;
  total_logs : int;
  avg_log_length : float;
  page_writes : int;
}

let stats t =
  let counts = Array.make 4 0 and sums = Array.make 4 0 in
  for i = 0 to length t - 1 do
    let k = Char.code (Bytes.get t.kinds i) in
    counts.(k) <- counts.(k) + 1;
    sums.(k) <- sums.(k) + t.lengths.(i)
  done;
  let mk k =
    {
      occurrences = counts.(k);
      avg_length = (if counts.(k) = 0 then 0.0 else float_of_int sums.(k) /. float_of_int counts.(k));
    }
  in
  let total_logs = counts.(0) + counts.(1) + counts.(2) in
  let total_len = sums.(0) + sums.(1) + sums.(2) in
  {
    insert = mk 0;
    delete = mk 1;
    update = mk 2;
    total_logs;
    avg_log_length =
      (if total_logs = 0 then 0.0 else float_of_int total_len /. float_of_int total_logs);
    page_writes = counts.(3);
  }

let pp_stats ppf s =
  let pct n = if s.total_logs = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int s.total_logs in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "Insert %8d (%5.2f%%)  avg %5.1f@," s.insert.occurrences
    (pct s.insert.occurrences) s.insert.avg_length;
  Format.fprintf ppf "Delete %8d (%5.2f%%)  avg %5.1f@," s.delete.occurrences
    (pct s.delete.occurrences) s.delete.avg_length;
  Format.fprintf ppf "Update %8d (%5.2f%%)  avg %5.1f@," s.update.occurrences
    (pct s.update.occurrences) s.update.avg_length;
  Format.fprintf ppf "Total  %8d (100.00%%)  avg %5.1f@," s.total_logs s.avg_log_length;
  Format.fprintf ppf "Physical page writes: %d@]" s.page_writes
