(** Reference-locality analyses of Section 4.2.2 (Figure 4 and the
    sliding-window temporal-locality measurements). *)

type skew = {
  top_counts : int array;  (** per-key counts of the N hottest keys, descending *)
  top_share : float;  (** fraction of all references going to those N keys *)
  distinct : int;
  total : int;
  gini : float;
}

val log_reference_skew : Trace.t -> top:int -> skew
(** Figure 4(a): update log records per data page. *)

val page_write_skew : Trace.t -> top:int -> skew
(** Figure 4(b): physical page writes per data page. *)

val erase_skew : Trace.t -> top:int -> pages_per_eu:int -> skew
(** Figure 4(c): physical page writes folded onto erase units. *)

val sliding_window_distinct : Trace.t -> window:int -> [ `Pages | `Erase_units of int ] -> float
(** Average number of distinct pages (or erase units, given pages/unit) in
    every [window]-length window of the {e physical page write} stream.
    The paper reports 16/16.0 distinct pages (99.9 %) and 14.89/16 erase
    units (93.1 %) for the 1G.20M.100u trace. *)

val pp_skew : Format.formatter -> skew -> unit
