module Histogram = Ipl_util.Histogram
module Stats = Ipl_util.Stats

type skew = {
  top_counts : int array;
  top_share : float;
  distinct : int;
  total : int;
  gini : float;
}

let skew_of_histogram h ~top =
  let counts = Histogram.counts_desc h in
  let n = min top (Array.length counts) in
  let top_counts = Array.sub counts 0 n in
  let total = Histogram.total h in
  let top_total = Array.fold_left ( + ) 0 top_counts in
  {
    top_counts;
    top_share = (if total = 0 then 0.0 else float_of_int top_total /. float_of_int total);
    distinct = Histogram.distinct h;
    total;
    gini =
      (if Array.length counts = 0 then 0.0 else Stats.gini (Array.map float_of_int counts));
  }

let log_reference_skew t ~top =
  let h = Histogram.create () in
  Trace.iter (function Trace.Log { page; _ } -> Histogram.incr h page | Trace.Page_write _ -> ()) t;
  skew_of_histogram h ~top

let page_write_skew t ~top =
  let h = Histogram.create () in
  Trace.iter (function Trace.Page_write { page } -> Histogram.incr h page | Trace.Log _ -> ()) t;
  skew_of_histogram h ~top

let erase_skew t ~top ~pages_per_eu =
  if pages_per_eu <= 0 then invalid_arg "Locality.erase_skew: pages_per_eu must be positive";
  let h = Histogram.create () in
  Trace.iter
    (function
      | Trace.Page_write { page } -> Histogram.incr h (page / pages_per_eu) | Trace.Log _ -> ())
    t;
  skew_of_histogram h ~top

let sliding_window_distinct t ~window target =
  if window <= 0 then invalid_arg "Locality.sliding_window_distinct: window must be positive";
  let writes = ref [] in
  Trace.iter
    (function
      | Trace.Page_write { page } ->
          let key =
            match target with `Pages -> page | `Erase_units ppe -> page / ppe
          in
          writes := key :: !writes
      | Trace.Log _ -> ())
    t;
  let writes = Array.of_list (List.rev !writes) in
  let n = Array.length writes in
  if n < window then 0.0
  else begin
    (* Maintain counts incrementally over the sliding window. *)
    let counts = Hashtbl.create 64 in
    let distinct = ref 0 in
    let add k =
      let c = Option.value ~default:0 (Hashtbl.find_opt counts k) in
      if c = 0 then incr distinct;
      Hashtbl.replace counts k (c + 1)
    in
    let remove k =
      match Hashtbl.find_opt counts k with
      | Some 1 ->
          Hashtbl.remove counts k;
          decr distinct
      | Some c -> Hashtbl.replace counts k (c - 1)
      | None -> assert false
    in
    let sum = ref 0 in
    for i = 0 to n - 1 do
      add writes.(i);
      if i >= window then remove writes.(i - window);
      if i >= window - 1 then sum := !sum + !distinct
    done;
    float_of_int !sum /. float_of_int (n - window + 1)
  end

let pp_skew ppf s =
  Format.fprintf ppf "top-%d keys take %.1f%% of %d refs (%d distinct, gini %.3f)"
    (Array.length s.top_counts) (100.0 *. s.top_share) s.total s.distinct s.gini
