(** Update reference traces (Section 4.2.1 of the paper).

    A trace is the stream a database server emits while running a write
    workload: one event per physiological log record (insert / delete /
    update, with its encoded length and the data page it belongs to), plus
    one event per {e physical page write} — a dirty page leaving the buffer
    pool. The paper's simulation study consumes exactly this: the traces
    contain no read information.

    Events are stored columnarly so multi-million-event traces stay
    compact. *)

type op = Insert | Delete | Update

type event =
  | Log of { op : op; page : int; length : int }
  | Page_write of { page : int }

type t

val name : t -> string
val db_pages : t -> int
(** Number of pages in the traced database. *)

val length : t -> int
(** Total number of events. *)

val rename : t -> string -> t

val get : t -> int -> event
val iter : (event -> unit) -> t -> unit

(** {1 Building} *)

type builder

val builder : name:string -> db_pages:int -> builder
val add_log : builder -> op:op -> page:int -> length:int -> unit
val add_page_write : builder -> page:int -> unit

val build : ?db_pages:int -> builder -> t
(** [db_pages] overrides the page count given at builder creation (for
    generators that only know the final database size at the end). *)

(** {1 Statistics — Table 4 of the paper} *)

type op_stats = { occurrences : int; avg_length : float }

type stats = {
  insert : op_stats;
  delete : op_stats;
  update : op_stats;
  total_logs : int;
  avg_log_length : float;
  page_writes : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
