(** Binary persistence for traces.

    Format: a short header (magic, name, database page count, event count)
    followed by one 7-byte little-endian triple per event
    [kind:u8][page:u32][length:u16]. *)

val save : Trace.t -> string -> unit
val load : string -> Trace.t
(** Raises [Invalid_argument] if the file is not a trace. *)
