let magic = "IPLTRACE"

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let name = Trace.name t in
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 (Int32.of_int (String.length name));
      output_bytes oc b;
      output_string oc name;
      Bytes.set_int32_le b 0 (Int32.of_int (Trace.db_pages t));
      output_bytes oc b;
      Bytes.set_int32_le b 0 (Int32.of_int (Trace.length t));
      output_bytes oc b;
      let rec_buf = Bytes.create 7 in
      Trace.iter
        (fun ev ->
          let kind, page, length =
            match ev with
            | Trace.Log { op = Trace.Insert; page; length } -> (0, page, length)
            | Trace.Log { op = Trace.Delete; page; length } -> (1, page, length)
            | Trace.Log { op = Trace.Update; page; length } -> (2, page, length)
            | Trace.Page_write { page } -> (3, page, 0)
          in
          Bytes.set_uint8 rec_buf 0 kind;
          Bytes.set_int32_le rec_buf 1 (Int32.of_int page);
          Bytes.set_uint16_le rec_buf 5 length;
          output_bytes oc rec_buf)
        t)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then invalid_arg "Trace_io.load: not a trace file";
      let read_u32 () =
        let b = Bytes.create 4 in
        really_input ic b 0 4;
        Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF
      in
      let name_len = read_u32 () in
      let name = really_input_string ic name_len in
      let db_pages = read_u32 () in
      let count = read_u32 () in
      let b = Trace.builder ~name ~db_pages in
      let rec_buf = Bytes.create 7 in
      for _ = 1 to count do
        really_input ic rec_buf 0 7;
        let page = Int32.to_int (Bytes.get_int32_le rec_buf 1) land 0xFFFFFFFF in
        let length = Bytes.get_uint16_le rec_buf 5 in
        match Bytes.get_uint8 rec_buf 0 with
        | 0 -> Trace.add_log b ~op:Trace.Insert ~page ~length
        | 1 -> Trace.add_log b ~op:Trace.Delete ~page ~length
        | 2 -> Trace.add_log b ~op:Trace.Update ~page ~length
        | 3 -> Trace.add_page_write b ~page
        | _ -> invalid_arg "Trace_io.load: corrupt event"
      done;
      Trace.build b)
