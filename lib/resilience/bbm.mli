(** Bad-block manager: the device-resilience layer between the IPL
    storage manager and the flash device.

    The manager presents the same flat-sector interface as
    {!Device.Flash_device} over a {e virtual} block space (a virtual
    block's id is its initial physical block), backed by a remap table
    and a pool of spare erase units:

    - a failed program relocates the whole erase unit onto the least-worn
      spare (the failed program is completed there), retires the broken
      physical block, and persists the remap; on a multi-channel device
      spares on the victim's own channel are preferred so relocation
      traffic stays channel-local;
    - a failed erase retires the block and points the unit at a fresh
      spare (no copy: an erased unit carries no data);
    - a failed read is retried a bounded number of times; a read the chip
      had to ECC-correct triggers a preventive {e scrub} (relocation) of
      the weakening unit, returning the old block to the spare pool;
    - when a mandatory relocation finds no usable spare the device
      {e degrades} to read-only: the state is persisted, and every
      subsequent mutation raises {!Degraded} while reads keep serving
      committed data.

    Durability is delegated via callbacks so this library needs no
    dependency on the metadata log: the owner persists
    {!persist_event}s (the engine encodes them as [Meta_log] events) and
    replays them into {!recover} at restart. The crash contract: a remap
    is logged {e after} the copy completes and forced {e before} the
    in-memory switch, so a crash anywhere leaves either the old intact
    mapping or the new complete one. *)

type persist_event =
  | P_remap of { virt : int; phys : int }
  | P_retire of { block : int }
  | P_degraded

exception Degraded
(** The spare pool is exhausted and a relocation was required: the device
    is read-only from here on (persisted across restarts). *)

exception Uncorrectable of int
(** A read failed all its retries; carries the flat sector address. *)

type t

val create :
  Device.Flash_device.t ->
  spares:int list ->
  ?read_retries:int ->
  ?scrub_on_correctable:bool ->
  persist:(persist_event -> unit) ->
  force:(unit -> unit) ->
  unit ->
  t
(** [spares] are the physical blocks of the initial pool (need not be
    erased: spares are erased lazily on allocation). [read_retries]
    (default 3) bounds retries {e beyond} the first attempt.
    [persist] must buffer an event durably-on-[force]; [force] makes all
    buffered events durable. *)

val recover :
  Device.Flash_device.t ->
  spares:int list ->
  ?read_retries:int ->
  ?scrub_on_correctable:bool ->
  persist:(persist_event -> unit) ->
  force:(unit -> unit) ->
  events:persist_event list ->
  unit ->
  t
(** Rebuild the remap table, retired set, pool and degradation flag by
    replaying [events] (log order) over the same initial [spares] list
    given to {!create}. *)

(** {1 Chip-mirroring operations}

    All addresses are virtual flat sectors / virtual blocks. Each
    operation must stay within one erase unit (the remap granularity);
    crossing a boundary raises [Invalid_argument]. *)

val read_sectors :
  ?cls:Device.Flash_device.op_class -> t -> sector:int -> count:int -> bytes
(** Bounded-retry read; raises {!Uncorrectable} when retries are
    exhausted. A correctable (ECC) read triggers a scrub when enabled
    (the scrub's own I/O runs at [Scrub] priority). [cls] defaults to
    [Foreground]. *)

val write_sectors :
  ?cls:Device.Flash_device.op_class -> t -> sector:int -> bytes -> unit
(** Raises {!Degraded} when the device is read-only or when a required
    relocation finds no spare. *)

val erase_block : ?cls:Device.Flash_device.op_class -> t -> int -> unit
(** Raises {!Degraded} like {!write_sectors}. *)

val submit_write_sectors :
  t -> cls:Device.Flash_device.op_class -> sector:int -> bytes -> unit
(** Asynchronous {!write_sectors}: the program (and any relocation a
    program failure forces) executes now, but its completion time settles
    only at the owner's next {!Device.Flash_device.barrier}. *)

val submit_erase_block : t -> cls:Device.Flash_device.op_class -> int -> unit
(** Asynchronous {!erase_block}. *)

val invalidate_sectors : t -> sector:int -> count:int -> unit
val sector_state : t -> int -> Flash_sim.Flash_chip.sector_state
val free_sectors_in_block : t -> int -> int

val erase_count : t -> int -> int
(** Wear of the physical block currently backing the virtual one. *)

(** {1 Introspection} *)

val degraded : t -> bool
val spares_left : t -> int

val remap_table : t -> (int * int) list
(** Non-identity (virtual, physical) pairs, sorted. *)

val retired_list : t -> int list

val snapshot_events : t -> persist_event list
(** Current state as a replayable event list — the manager's contribution
    to a metadata-log snapshot compaction (without it, compaction would
    silently drop the remap table). *)

val set_tracer : t -> Obs.Tracer.t option -> unit

(** {1 Stats} *)

type stats = {
  read_retries : int;
  uncorrectable_reads : int;
  remaps : int;
  retired_blocks : int;
  scrubs : int;
  degradations : int;
  spares_left : int;  (** gauge, not a counter *)
}

val stats : t -> stats

(** Satisfies {!Ipl_util.Stats_intf.S}. *)
module Stats : sig
  type t = stats

  val zero : t
  val add : t -> t -> t
  val diff : t -> t -> t
  val pp : Format.formatter -> t -> unit
  val to_json : t -> Ipl_util.Json.t
end
