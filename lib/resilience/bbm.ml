module Chip = Flash_sim.Flash_chip
module Dev = Device.Flash_device
module FConfig = Flash_sim.Flash_config

type persist_event =
  | P_remap of { virt : int; phys : int }
  | P_retire of { block : int }
  | P_degraded

exception Degraded
exception Uncorrectable of int

type t = {
  dev : Dev.t;
  spb : int;  (* sectors per erase unit *)
  read_retries : int;
  scrub_on_correctable : bool;
  map : (int, int) Hashtbl.t;  (* virtual block -> physical, non-identity only *)
  pool : (int, unit) Hashtbl.t;  (* spare physical blocks, lazily erased *)
  retired : (int, unit) Hashtbl.t;
  persist : persist_event -> unit;
  force : unit -> unit;
  mutable degraded : bool;
  mutable tracer : Obs.Tracer.t option;
  mutable c_read_retries : int;
  mutable c_uncorrectable : int;
  mutable c_remaps : int;
  mutable c_retired : int;
  mutable c_scrubs : int;
  mutable c_degradations : int;
}

let create dev ~spares ?(read_retries = 3) ?(scrub_on_correctable = true) ~persist
    ~force () =
  if read_retries < 0 then invalid_arg "Bbm.create: read_retries must be non-negative";
  let pool = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace pool b ()) spares;
  {
    dev;
    spb = FConfig.sectors_per_block (Dev.config dev);
    read_retries;
    scrub_on_correctable;
    map = Hashtbl.create 16;
    pool;
    retired = Hashtbl.create 16;
    persist;
    force;
    degraded = false;
    tracer = None;
    c_read_retries = 0;
    c_uncorrectable = 0;
    c_remaps = 0;
    c_retired = 0;
    c_scrubs = 0;
    c_degradations = 0;
  }

let set_tracer t tracer = t.tracer <- tracer

let emit t ev =
  match t.tracer with
  | None -> ()
  | Some tr -> Obs.Tracer.emit tr ~time:(Dev.elapsed t.dev) ev

let phys_block t v = match Hashtbl.find_opt t.map v with Some p -> p | None -> v

(* Translate a flat virtual sector address. Every caller operation must
   stay within one erase unit — the unit is the remapping granularity. *)
let translate t ~sector ~count =
  let v = sector / t.spb in
  if (sector + count - 1) / t.spb <> v then
    invalid_arg "Bbm: operation crosses an erase-unit boundary";
  (phys_block t v * t.spb) + (sector mod t.spb)

let retire_phys t p =
  t.persist (P_retire { block = p });
  Hashtbl.replace t.retired p ();
  Hashtbl.remove t.pool p;
  if not (Dev.is_bad t.dev p) then Dev.mark_bad t.dev p;
  t.c_retired <- t.c_retired + 1;
  emit t (Obs.Event.Retire { block = p })

(* The degradation point: a mandatory relocation found no usable spare.
   Persisted so the device stays read-only across restarts. *)
let degrade t =
  if not t.degraded then begin
    t.persist P_degraded;
    t.force ();
    t.degraded <- true;
    t.c_degradations <- t.c_degradations + 1;
    emit t Obs.Event.Degraded
  end;
  raise Degraded

(* Take the least-worn spare (wear-aware allocation doubles as wear
   leveling: blocks returned to the pool by scrubs rotate back in by wear
   order). When the device has more than one channel, spares on the same
   channel as [near] (the block being replaced) are preferred so a
   relocation's copy traffic stays channel-local; on a single-channel
   device every spare is "near" and the choice is unchanged. Pool blocks
   are erased lazily here, so crash leftovers and scrub returns need no
   eager cleanup; one that will not erase is retired and the next
   candidate tried. *)
let rec alloc_spare ?near ~cls t =
  let wear = Dev.erase_count t.dev in
  let want_chan = Option.map (Dev.channel_of_block t.dev) near in
  let pick pred =
    Hashtbl.fold
      (fun b () acc ->
        if not (pred b) then acc
        else
          match acc with Some b' when wear b' <= wear b -> acc | _ -> Some b)
      t.pool None
  in
  let best =
    match want_chan with
    | Some c -> (
        match pick (fun b -> Dev.channel_of_block t.dev b = c) with
        | Some _ as r -> r
        | None -> pick (fun _ -> true))
    | None -> pick (fun _ -> true)
  in
  match best with
  | None -> None
  | Some b ->
      Hashtbl.remove t.pool b;
      if Dev.is_bad t.dev b then begin
        retire_phys t b;
        alloc_spare ?near ~cls t
      end
      else if Dev.free_sectors_in_block t.dev b < t.spb then (
        match Dev.erase_block ~cls t.dev b with
        | () -> Some b
        | exception Chip.Erase_error _ ->
            retire_phys t b;
            alloc_spare ?near ~cls t)
      else Some b

let read_retry ?(cls = Dev.Foreground) t ~phys_sector ~count ~virt_sector =
  let rec go attempt =
    try Dev.read_sectors ~cls t.dev ~sector:phys_sector ~count
    with Chip.Read_error _ ->
      if attempt > t.read_retries then begin
        t.c_uncorrectable <- t.c_uncorrectable + 1;
        raise (Uncorrectable virt_sector)
      end
      else begin
        t.c_read_retries <- t.c_read_retries + 1;
        emit t (Obs.Event.Read_retry { sector = virt_sector; attempt });
        go (attempt + 1)
      end
  in
  go 1

(* Copy every programmed sector of [from_phys] onto the erased [to_phys],
   preserving Free holes and Invalid marks exactly: Invalid sectors still
   hold stale-but-readable data that recovery depends on, and Free data
   slots must stay programmable. *)
let copy_block t ~cls ~from_phys ~to_phys =
  let src = from_phys * t.spb and dst = to_phys * t.spb in
  let o = ref 0 in
  while !o < t.spb do
    if Dev.sector_state t.dev (src + !o) = Chip.Free then incr o
    else begin
      let start = !o in
      while !o < t.spb && Dev.sector_state t.dev (src + !o) <> Chip.Free do
        incr o
      done;
      let count = !o - start in
      let data =
        read_retry ~cls t ~phys_sector:(src + start) ~count ~virt_sector:(src + start)
      in
      Dev.write_sectors ~cls t.dev ~sector:(dst + start) data;
      for i = start to !o - 1 do
        if Dev.sector_state t.dev (src + i) = Chip.Invalid then
          Dev.invalidate_sectors t.dev ~sector:(dst + i) ~count:1
      done
    end
  done

(* Move virtual unit [virt] off [old_phys] onto a spare, optionally
   completing a failed program ([pending] = offset within the unit plus
   the data) on the new block. Crash ordering: copy first, then persist
   the remap (and retirement) and force, then switch the in-memory map.
   Before the force the old mapping is fully intact and the half-copied
   spare is unreferenced (lazily erased on its next allocation); after it
   the new mapping includes the completed program. Returns [None] when no
   usable spare exists — the caller decides whether that degrades the
   device. *)
let rec relocate t ~cls ~virt ~old_phys ~pending ~retire_old =
  match alloc_spare ~near:old_phys ~cls t with
  | None -> None
  | Some np -> (
      match
        copy_block t ~cls ~from_phys:old_phys ~to_phys:np;
        match pending with
        | None -> ()
        | Some (off, data) -> Dev.write_sectors ~cls t.dev ~sector:((np * t.spb) + off) data
      with
      | () ->
          t.persist (P_remap { virt; phys = np });
          if retire_old then retire_phys t old_phys;
          t.force ();
          if np = virt then Hashtbl.remove t.map virt else Hashtbl.replace t.map virt np;
          t.c_remaps <- t.c_remaps + 1;
          emit t (Obs.Event.Remap { virt; from_phys = old_phys; to_phys = np });
          Some np
      | exception Chip.Program_error _ ->
          (* The spare failed mid-copy: retire it too and try another. *)
          retire_phys t np;
          relocate t ~cls ~virt ~old_phys ~pending ~retire_old)

(* Preventive relocation of a weakening unit after a correctable read.
   Never degrades the device: with no spare to hand the scrub is simply
   skipped. The old block returns to the pool — it still works, it is
   merely suspect — giving natural wear rotation. *)
let scrub t v =
  let old_p = phys_block t v in
  match relocate t ~cls:Dev.Scrub ~virt:v ~old_phys:old_p ~pending:None ~retire_old:false with
  | Some np ->
      Hashtbl.replace t.pool old_p ();
      t.c_scrubs <- t.c_scrubs + 1;
      emit t (Obs.Event.Scrub { virt = v; to_phys = np })
  | None ->
      Logs.debug (fun m -> m "Bbm: no spare available, scrub of unit %d skipped" v)

let check_writable t = if t.degraded then raise Degraded

let read_sectors ?cls t ~sector ~count =
  let ps = translate t ~sector ~count in
  let data = read_retry ?cls t ~phys_sector:ps ~count ~virt_sector:sector in
  if Dev.last_read_corrected t.dev && t.scrub_on_correctable then
    scrub t (sector / t.spb);
  data

(* A failed program always relocates at merge priority: completing the
   interrupted program is on the caller's critical path whatever class
   the original write carried. *)
let handle_program_error t ~sector ~ps data =
  let virt = sector / t.spb in
  match
    relocate t ~cls:Dev.Merge_io ~virt ~old_phys:(ps / t.spb)
      ~pending:(Some (ps mod t.spb, data))
      ~retire_old:true
  with
  | Some _ -> ()
  | None -> degrade t

let write_sectors ?(cls = Dev.Foreground) t ~sector data =
  check_writable t;
  let ss = (Dev.config t.dev).FConfig.sector_size in
  let count = max 1 (Bytes.length data / ss) in
  let ps = translate t ~sector ~count in
  try Dev.write_sectors ~cls t.dev ~sector:ps data
  with Chip.Program_error _ -> handle_program_error t ~sector ~ps data

(* Asynchronous variant: the program executes now (so a Program_error is
   handled here exactly as in the sync path) but its completion time is
   settled by the caller's next barrier/await. *)
let submit_write_sectors t ~cls ~sector data =
  check_writable t;
  let ss = (Dev.config t.dev).FConfig.sector_size in
  let count = max 1 (Bytes.length data / ss) in
  let ps = translate t ~sector ~count in
  try Dev.publish_write t.dev ~cls ~sector:ps data
  with Chip.Program_error _ -> handle_program_error t ~sector ~ps data

(* The block would not erase (worn out or transient failure turned
   permanent): its content is garbage to the caller, so no copy is
   needed — retire it and point the unit at a fresh spare. *)
let handle_erase_error t ~cls v p =
  retire_phys t p;
  match alloc_spare ~near:p ~cls t with
  | Some np ->
      t.persist (P_remap { virt = v; phys = np });
      t.force ();
      if np = v then Hashtbl.remove t.map v else Hashtbl.replace t.map v np;
      t.c_remaps <- t.c_remaps + 1;
      emit t (Obs.Event.Remap { virt = v; from_phys = p; to_phys = np })
  | None -> degrade t

let erase_block ?(cls = Dev.Foreground) t v =
  check_writable t;
  let p = phys_block t v in
  try Dev.erase_block ~cls t.dev p with Chip.Erase_error _ -> handle_erase_error t ~cls v p

let submit_erase_block t ~cls v =
  check_writable t;
  let p = phys_block t v in
  try Dev.publish_erase t.dev ~cls p
  with Chip.Erase_error _ -> handle_erase_error t ~cls v p

let invalidate_sectors t ~sector ~count =
  let ps = translate t ~sector ~count in
  Dev.invalidate_sectors t.dev ~sector:ps ~count

let sector_state t s = Dev.sector_state t.dev (translate t ~sector:s ~count:1)
let free_sectors_in_block t v = Dev.free_sectors_in_block t.dev (phys_block t v)
let erase_count t v = Dev.erase_count t.dev (phys_block t v)
let degraded t = t.degraded
let spares_left t = Hashtbl.length t.pool

let remap_table t =
  List.sort compare (Hashtbl.fold (fun v p acc -> (v, p) :: acc) t.map [])

let retired_list t =
  List.sort compare (Hashtbl.fold (fun b () acc -> b :: acc) t.retired [])

let snapshot_events t =
  let evs = Hashtbl.fold (fun v p acc -> P_remap { virt = v; phys = p } :: acc) t.map [] in
  let evs = Hashtbl.fold (fun b () acc -> P_retire { block = b } :: acc) t.retired evs in
  if t.degraded then evs @ [ P_degraded ] else evs

let recover dev ~spares ?read_retries ?scrub_on_correctable ~persist ~force ~events ()
    =
  let t = create dev ~spares ?read_retries ?scrub_on_correctable ~persist ~force () in
  List.iter
    (function
      | P_remap { virt; phys } ->
          let old_p = phys_block t virt in
          if phys = virt then Hashtbl.remove t.map virt
          else Hashtbl.replace t.map virt phys;
          Hashtbl.remove t.pool phys;
          (* The displaced block rejoins the pool unless a later (or
             earlier) Retire event removes it again. *)
          if old_p <> phys && not (Hashtbl.mem t.retired old_p) then
            Hashtbl.replace t.pool old_p ()
      | P_retire { block } ->
          Hashtbl.replace t.retired block ();
          Hashtbl.remove t.pool block;
          if not (Dev.is_bad dev block) then Dev.mark_bad dev block
      | P_degraded -> t.degraded <- true)
    events;
  t

type stats = {
  read_retries : int;
  uncorrectable_reads : int;
  remaps : int;
  retired_blocks : int;
  scrubs : int;
  degradations : int;
  spares_left : int;
}

let stats t =
  {
    read_retries = t.c_read_retries;
    uncorrectable_reads = t.c_uncorrectable;
    remaps = t.c_remaps;
    retired_blocks = t.c_retired;
    scrubs = t.c_scrubs;
    degradations = t.c_degradations;
    spares_left = Hashtbl.length t.pool;
  }

module Stats = struct
  type t = stats

  let zero =
    {
      read_retries = 0;
      uncorrectable_reads = 0;
      remaps = 0;
      retired_blocks = 0;
      scrubs = 0;
      degradations = 0;
      spares_left = 0;
    }

  let map2 f (a : t) (b : t) : t =
    {
      read_retries = f a.read_retries b.read_retries;
      uncorrectable_reads = f a.uncorrectable_reads b.uncorrectable_reads;
      remaps = f a.remaps b.remaps;
      retired_blocks = f a.retired_blocks b.retired_blocks;
      scrubs = f a.scrubs b.scrubs;
      degradations = f a.degradations b.degradations;
      spares_left = f a.spares_left b.spares_left;
    }

  let add = map2 ( + )
  let diff = map2 ( - )

  let fields (t : t) =
    [
      ("read_retries", t.read_retries);
      ("uncorrectable_reads", t.uncorrectable_reads);
      ("remaps", t.remaps);
      ("retired_blocks", t.retired_blocks);
      ("scrubs", t.scrubs);
      ("degradations", t.degradations);
      ("spares_left", t.spares_left);
    ]

  let pp ppf t =
    Format.pp_print_string ppf "resilience:";
    List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) (fields t)

  let to_json t =
    Ipl_util.Json.Obj (List.map (fun (k, v) -> (k, Ipl_util.Json.Int v)) (fields t))
end
