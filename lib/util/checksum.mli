(** CRC-32 (IEEE 802.3) checksums.

    Flash log sectors and system-log sectors carry a checksum so that
    recovery can detect torn or corrupted sectors instead of replaying
    garbage. *)

val crc32 : ?init:int -> bytes -> pos:int -> len:int -> int
(** Checksum of [len] bytes starting at [pos], as a non-negative int
    (32-bit range). [init] chains computations. *)

val crc32_bytes : bytes -> int
(** Checksum of a whole byte string. *)
