(** Summary statistics over float samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val mean : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], by linear interpolation on the
    sorted copy of [xs]. *)

val gini : float array -> float
(** Gini coefficient of a non-negative sample: 0 = perfectly even,
    approaching 1 = maximally skewed. Used to characterise update-frequency
    skew (Figure 4 of the paper). *)

val pp_summary : Format.formatter -> summary -> unit
