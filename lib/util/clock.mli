(** Monotonic wall-clock time for benchmark reporting.

    The single process-wide clock helper: every wall-clock measurement
    (BENCH_ipl.json, bench harness sections) goes through here so the
    source can never step backwards under NTP adjustment. *)

val now_ns : unit -> int64
(** Nanoseconds on CLOCK_MONOTONIC (arbitrary epoch — differences only). *)

val now_s : unit -> float
(** [now_ns] as seconds. *)
