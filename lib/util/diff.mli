(** Minimal byte-range differences.

    Physiological update log records stay small because only the byte
    range that actually changed is logged; both the IPL engine and the
    trace generators size their update records with this function. *)

val minimal_range : bytes -> bytes -> (int * int) option
(** [minimal_range a b], for equal-length payloads, is [Some (offset,
    length)] of the smallest range covering every differing byte, or
    [None] if the payloads are equal. Raises [Invalid_argument] on length
    mismatch. *)

val ranges : ?gap:int -> bytes -> bytes -> (int * int) list
(** [ranges a b] lists the disjoint differing ranges of two equal-length
    payloads, in ascending order. Runs of up to [gap] (default 16) equal
    bytes between two differing ranges are absorbed into one range — each
    range costs a log-record header, so small gaps are cheaper to carry
    than to split on. Empty list iff the payloads are equal. *)
