(* Handle layout: [offset:53][len:10] — offsets address a virtual byte
   space split into fixed-size chunks. *)

let len_bits = 10
let max_len = (1 lsl len_bits) - 1

type t = {
  chunk_size : int;
  mutable chunks : Bytes.t array;
  mutable num_chunks : int;
  mutable cursor : int;  (* virtual offset of the next free byte *)
}

let create ?(chunk_size = 64 * 1024 * 1024) () =
  if chunk_size <= 0 then invalid_arg "Byte_arena.create: chunk size must be positive";
  { chunk_size; chunks = [||]; num_chunks = 0; cursor = 0 }

let ensure_chunk t i =
  if i >= t.num_chunks then begin
    if i >= Array.length t.chunks then begin
      let grown = Array.make (max 4 (2 * (i + 1))) Bytes.empty in
      Array.blit t.chunks 0 grown 0 t.num_chunks;
      t.chunks <- grown
    end;
    for j = t.num_chunks to i do
      t.chunks.(j) <- Bytes.create t.chunk_size
    done;
    t.num_chunks <- i + 1
  end

let add t data =
  let len = Bytes.length data in
  if len > max_len then invalid_arg "Byte_arena.add: value too long";
  if len >= t.chunk_size then invalid_arg "Byte_arena.add: value exceeds chunk size";
  (* Never straddle a chunk boundary. *)
  let within = t.cursor mod t.chunk_size in
  if within + len > t.chunk_size then t.cursor <- t.cursor + (t.chunk_size - within);
  let offset = t.cursor in
  ensure_chunk t (offset / t.chunk_size);
  Bytes.blit data 0 t.chunks.(offset / t.chunk_size) (offset mod t.chunk_size) len;
  t.cursor <- t.cursor + len;
  (offset lsl len_bits) lor len

let decode handle = (handle lsr len_bits, handle land max_len)

let length _t handle = snd (decode handle)

let get t handle =
  let offset, len = decode handle in
  Bytes.sub t.chunks.(offset / t.chunk_size) (offset mod t.chunk_size) len

let set t handle data =
  let offset, len = decode handle in
  if Bytes.length data = len then begin
    Bytes.blit data 0 t.chunks.(offset / t.chunk_size) (offset mod t.chunk_size) len;
    handle
  end
  else add t data

let stored_bytes t = t.cursor
