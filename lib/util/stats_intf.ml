(** Common shape of a cumulative-counter record.

    Every stats record in the system ([Flash_stats.t],
    [Ipl_storage.stats], [Buffer_pool.stats], and the engine's combined
    record) implements this, so generic tooling — interval measurement via
    [diff], aggregation via [add], reporting via [pp]/[to_json] — works on
    all of them without knowing the field layout. *)

module type S = sig
  type t

  val zero : t

  val add : t -> t -> t
  (** Field-wise sum; means and other derived fields are combined with the
      most sensible interpretation the implementation can offer. *)

  val diff : t -> t -> t
  (** [diff later earlier]: field-wise difference for interval
      measurements. *)

  val pp : Format.formatter -> t -> unit

  val to_json : t -> Json.t
  (** Stable one-level [Obj] whose keys name the record fields. *)
end
