let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(init = 0) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Checksum.crc32: range out of bounds";
  let t = Lazy.force table in
  let c = ref (init lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (Bytes.get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32_bytes b = crc32 b ~pos:0 ~len:(Bytes.length b)
