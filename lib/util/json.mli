(** Minimal JSON tree with a compact printer, an indented pretty-printer and
    a strict parser.

    Zero dependencies on purpose: this sits at the bottom of the stack so
    that every stats record (flash, storage, buffer pool) can render itself
    as JSON without pulling in the observability layer. The printer and
    parser round-trip: [of_string (to_string v) = Ok v] for every value that
    contains no NaN or infinite floats (those print as [null]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val pp : Format.formatter -> t -> unit
(** Indented multi-line rendering (2-space indent). *)

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON document. Numbers without a fraction or
    exponent parse as [Int]; everything else numeric parses as [Float]. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int]. *)

val to_list : t -> t list option
