(** Deterministic pseudo-random number generator (splitmix64).

    All simulations and workload generators in this repository draw their
    randomness from this module so that every experiment is reproducible
    from a seed. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. Streams of
    the parent and child are statistically independent. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val nurand : t -> a:int -> x:int -> y:int -> c:int -> int
(** TPC-C non-uniform random: [(((int(0..a) | int(x..y)) + c) mod (y-x+1)) + x]. *)

val alpha_string : t -> min:int -> max:int -> string
(** Random a-string (letters and digits) of length uniform in [\[min,max\]]. *)

val numeric_string : t -> len:int -> string
(** Random n-string (digits) of exactly [len] characters. *)

val last_name : int -> string
(** TPC-C customer last name for a number in [\[0,999\]]. *)
