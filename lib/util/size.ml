let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let pp_bytes ppf n =
  let f = float_of_int n in
  if n >= gib 1 then Format.fprintf ppf "%.2f GB" (f /. float_of_int (gib 1))
  else if n >= mib 1 then Format.fprintf ppf "%.2f MB" (f /. float_of_int (mib 1))
  else if n >= kib 1 then Format.fprintf ppf "%.1f KB" (f /. float_of_int (kib 1))
  else Format.fprintf ppf "%d B" n

let pp_seconds ppf s =
  if s >= 1.0 then Format.fprintf ppf "%.2f s" s
  else if s >= 1e-3 then Format.fprintf ppf "%.2f ms" (s *. 1e3)
  else Format.fprintf ppf "%.1f us" (s *. 1e6)
