(** Common signature for cumulative stats records; see the [.ml] for the
    contract of each operation. *)

module type S = sig
  type t

  val zero : t
  val add : t -> t -> t
  val diff : t -> t -> t
  val pp : Format.formatter -> t -> unit
  val to_json : t -> Json.t
end
