type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let copy t = { state = t.state }

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next_int64 t)

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_int (next_int64 t) land max_int in
  bound *. (float_of_int r /. float_of_int max_int)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p = float t 1.0 < p

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let nurand t ~a ~x ~y ~c =
  (((int_in t 0 a lor int_in t x y) + c) mod (y - x + 1)) + x

let alpha_chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

let alpha_string t ~min ~max =
  let len = int_in t min max in
  String.init len (fun _ -> alpha_chars.[int t (String.length alpha_chars)])

let numeric_string t ~len = String.init len (fun _ -> Char.chr (Char.code '0' + int t 10))

(* TPC-C clause 4.3.2.3 last-name syllables. *)
let syllables =
  [| "BAR"; "OUGHT"; "ABLE"; "PRI"; "PRES"; "ESE"; "ANTI"; "CALLY"; "ATION"; "EING" |]

let last_name n =
  assert (n >= 0 && n <= 999);
  syllables.(n / 100) ^ syllables.(n / 10 mod 10) ^ syllables.(n mod 10)
