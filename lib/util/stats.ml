type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty sample";
  let n = Array.length xs in
  let total = Array.fold_left ( +. ) 0.0 xs in
  let mean = total /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 xs
    /. float_of_int n
  in
  let min = Array.fold_left Float.min xs.(0) xs in
  let max = Array.fold_left Float.max xs.(0) xs in
  { count = n; mean; stddev = sqrt var; min; max; total }

let mean xs = (summarize xs).mean

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let gini xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.gini: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let total = Array.fold_left ( +. ) 0.0 sorted in
  if total = 0.0 then 0.0
  else begin
    let weighted = ref 0.0 in
    Array.iteri (fun i x -> weighted := !weighted +. (float_of_int (i + 1) *. x)) sorted;
    let nf = float_of_int n in
    ((2.0 *. !weighted) /. (nf *. total)) -. ((nf +. 1.0) /. nf)
  end

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f total=%.3f" s.count
    s.mean s.stddev s.min s.max s.total
