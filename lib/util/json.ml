type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------------------------------------------------------------- printing *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g round-trips every finite float; make sure the result still reads
   back as a float (bare digit strings like "3" would parse as Int). *)
let float_literal f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s
    else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_nan f || Float.abs f = Float.infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_literal f)
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let rec pp_indented ppf ~indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as scalar ->
      Format.pp_print_string ppf (to_string scalar)
  | List [] -> Format.pp_print_string ppf "[]"
  | List items ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Format.pp_print_string ppf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Format.pp_print_string ppf ",\n";
          Format.pp_print_string ppf pad';
          pp_indented ppf ~indent:(indent + 2) item)
        items;
      Format.fprintf ppf "\n%s]" pad
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Format.pp_print_string ppf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Format.pp_print_string ppf ",\n";
          Format.fprintf ppf "%s%s: " pad'
            (let b = Buffer.create (String.length k + 2) in
             escape_string b k;
             Buffer.contents b);
          pp_indented ppf ~indent:(indent + 2) v)
        fields;
      Format.fprintf ppf "\n%s}" pad

let pp ppf t = pp_indented ppf ~indent:0 t

(* ----------------------------------------------------------------- parsing *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let fail c msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" c.pos msg))

let skip_ws c =
  while
    c.pos < String.length c.src
    &&
    match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some got when got = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let parse_literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then (
    c.pos <- c.pos + n;
    value)
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_raw c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | Some '"' -> Buffer.add_char buf '"'; c.pos <- c.pos + 1; loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; c.pos <- c.pos + 1; loop ()
        | Some '/' -> Buffer.add_char buf '/'; c.pos <- c.pos + 1; loop ()
        | Some 'n' -> Buffer.add_char buf '\n'; c.pos <- c.pos + 1; loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; c.pos <- c.pos + 1; loop ()
        | Some 't' -> Buffer.add_char buf '\t'; c.pos <- c.pos + 1; loop ()
        | Some 'b' -> Buffer.add_char buf '\b'; c.pos <- c.pos + 1; loop ()
        | Some 'f' -> Buffer.add_char buf '\012'; c.pos <- c.pos + 1; loop ()
        | Some 'u' ->
            if c.pos + 5 > String.length c.src then fail c "bad \\u escape";
            let hex = String.sub c.src (c.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail c "bad \\u escape"
            in
            (* Only BMP code points below 0x80 are produced by our printer;
               others are passed through as UTF-8 of the code point. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < (0x800 [@lint.allow "no-magic-geometry"]) then (
              (* 0x800: UTF-8 two-byte boundary, nothing to do with chip geometry *)
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
            else (
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))));
            c.pos <- c.pos + 5;
            loop ()
        | _ -> fail c "bad escape")
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.src && is_num_char c.src.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let lit = String.sub c.src start (c.pos - start) in
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') lit then
    match float_of_string_opt lit with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> parse_literal c "null" Null
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some '"' -> String (parse_string_raw c)
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then (
        c.pos <- c.pos + 1;
        List [])
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (items [])
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then (
        c.pos <- c.pos + 1;
        Obj [])
      else
        let rec fields acc =
          skip_ws c;
          let k = parse_string_raw c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %C" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing garbage after JSON value"
      else Ok v
  | exception Parse_error msg -> Error msg

(* --------------------------------------------------------------- accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_list = function List l -> Some l | _ -> None
