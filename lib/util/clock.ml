(* Monotonic wall-clock source for benchmark timing. [Unix.gettimeofday]
   can step backwards under NTP adjustment; CLOCK_MONOTONIC cannot. The
   C stub comes from bechamel's monotonic-clock sublibrary, already a
   benchmark dependency, so no new external package is involved. *)

let now_ns () = Monotonic_clock.now ()

let ns_per_s = 1_000_000_000.0

let now_s () = Int64.to_float (now_ns ()) /. ns_per_s
