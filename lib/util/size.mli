(** Byte-size constants and pretty-printing. *)

val kib : int -> int
(** [kib n] is [n * 1024]. *)

val mib : int -> int
(** [mib n] is [n * 1024 * 1024]. *)

val gib : int -> int

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable size, e.g. [128 KB], [1.5 MB]. *)

val pp_seconds : Format.formatter -> float -> unit
(** Human-readable duration from seconds, e.g. [340.7 s], [1.5 ms]. *)
