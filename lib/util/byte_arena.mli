(** Append-mostly arena for millions of small byte strings.

    Storing each row of a gigabyte-scale table as its own [bytes] value
    makes the GC trace millions of objects; the arena instead packs them
    into a few large chunks and hands out integer handles, keeping the
    major heap small and stable. Same-size replacement is done in place;
    size-changing replacement appends a fresh copy (the old space is
    abandoned — fine for the workloads here, where rows rarely change
    size). *)

type t

val create : ?chunk_size:int -> unit -> t
(** [chunk_size] defaults to 64 MB. *)

val add : t -> bytes -> int
(** Store a copy; returns a handle. The value must be shorter than the
    chunk size and at most {!max_len} bytes. *)

val max_len : int

val get : t -> int -> bytes
(** A fresh copy of the stored value. *)

val length : t -> int -> int
(** Stored length, without copying. *)

val set : t -> int -> bytes -> int
(** Replace the value behind a handle; returns the (possibly new) handle.
    Equal sizes are overwritten in place. *)

val stored_bytes : t -> int
(** Total bytes appended so far (including abandoned space). *)
