(** Integer-keyed frequency counters.

    Used throughout the trace analyses: update counts per page, physical
    writes per page, erases per erase unit (Figure 4 of the paper). *)

type t

val create : ?initial_size:int -> unit -> t

val incr : t -> int -> unit
(** Add one to the count of a key. *)

val add : t -> int -> int -> unit
(** [add t key n] adds [n] to the count of [key]. *)

val count : t -> int -> int
(** Count of a key, 0 if never seen. *)

val distinct : t -> int
(** Number of distinct keys seen. *)

val total : t -> int
(** Sum of all counts. *)

val top : t -> int -> (int * int) array
(** [top t n] is the [n] (or fewer) keys with highest counts, as
    [(key, count)] sorted by descending count (ties by ascending key). *)

val counts_desc : t -> int array
(** All counts, sorted descending. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f t init] folds [f key count] over all keys. *)
