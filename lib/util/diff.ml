let ranges ?(gap = 16) a b =
  let n = Bytes.length a in
  if Bytes.length b <> n then invalid_arg "Diff.ranges: length mismatch";
  let out = ref [] in
  let start = ref (-1) and last = ref (-1) in
  let close () =
    if !start >= 0 then out := (!start, !last - !start + 1) :: !out;
    start := -1
  in
  for i = 0 to n - 1 do
    if Bytes.get a i <> Bytes.get b i then begin
      if !start < 0 then start := i
      else if i - !last > gap + 1 then begin
        close ();
        start := i
      end;
      last := i
    end
  done;
  close ();
  List.rev !out

let minimal_range a b =
  let n = Bytes.length a in
  if Bytes.length b <> n then invalid_arg "Diff.minimal_range: length mismatch";
  let rec first i = if i < n && Bytes.get a i = Bytes.get b i then first (i + 1) else i in
  let lo = first 0 in
  if lo = n then None
  else begin
    let rec last i = if Bytes.get a i = Bytes.get b i then last (i - 1) else i in
    let hi = last (n - 1) in
    Some (lo, hi - lo + 1)
  end
