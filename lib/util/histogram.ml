type t = (int, int ref) Hashtbl.t

let create ?(initial_size = 1024) () = Hashtbl.create initial_size

let add t key n =
  match Hashtbl.find_opt t key with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t key (ref n)

let incr t key = add t key 1

let count t key = match Hashtbl.find_opt t key with Some r -> !r | None -> 0

let distinct t = Hashtbl.length t

let total t = Hashtbl.fold (fun _ r acc -> acc + !r) t 0

let to_array t =
  let a = Array.make (Hashtbl.length t) (0, 0) in
  let i = ref 0 in
  Hashtbl.iter
    (fun k r ->
      a.(!i) <- (k, !r);
      Stdlib.incr i)
    t;
  a

let top t n =
  let a = to_array t in
  Array.sort (fun (k1, c1) (k2, c2) -> if c2 <> c1 then compare c2 c1 else compare k1 k2) a;
  Array.sub a 0 (min n (Array.length a))

let counts_desc t =
  let a = Array.map snd (to_array t) in
  Array.sort (fun a b -> compare b a) a;
  a

let fold f t init = Hashtbl.fold (fun k r acc -> f k !r acc) t init
