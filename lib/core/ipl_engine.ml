module Chip = Flash_sim.Flash_chip
module Dev = Device.Flash_device
module FConfig = Flash_sim.Flash_config
module Page = Storage.Page
module Pool = Bufmgr.Buffer_pool

type frame = { page : Page.t; log : Log_sector.t }

type txn_info = { dirty_pages : (int, unit) Hashtbl.t }

type combined_stats = {
  storage : Ipl_storage.stats;
  pool : Pool.stats;
  flash : Flash_sim.Flash_stats.t;
  resilience : Resilience.Bbm.stats;
}

type error =
  | Page_full
  | Record_too_large
  | Range_too_large
  | No_such_slot
  | Range_out_of_bounds
  | Bad_record_length
  | Device_degraded
  | Read_failed
  | Device_fault
  | Recovery_disabled

(* The strings reproduce the pre-typed-error API exactly, so callers that
   formatted engine errors keep their output. *)
let error_to_string = function
  | Page_full -> "page full"
  | Record_too_large -> "record too large to log"
  | Range_too_large -> "range too large to log"
  | No_such_slot -> "slot not live"
  | Range_out_of_bounds -> "range outside record"
  | Bad_record_length -> "bad record length"
  | Device_degraded -> "device degraded: read-only"
  | Read_failed -> "uncorrectable read error"
  | Device_fault -> "unrecoverable device fault"
  | Recovery_disabled -> "transactional recovery disabled"

(* The abstract handle is the raw id: the engine's own state is keyed by
   integer ids everywhere (log records, the transaction log), so the
   handle adds type safety at the boundary without a second table. *)
type txn = int

let no_txn = 0
let txn_id (tx : txn) = tx

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

(* Map the page layer's string errors onto the typed surface. Only the
   errors its update/delete entry points can produce appear here; anything
   else is a bug in this mapping. *)
let of_page_error = function
  | "page full" -> Page_full
  | "slot not live" -> No_such_slot
  | "range outside record" -> Range_out_of_bounds
  | "bad record length" -> Bad_record_length
  | s -> failwith ("Ipl_engine: unexpected page error: " ^ s)

type t = {
  config : Ipl_config.t;
  dev : Dev.t;
  store : Ipl_storage.t;
  bbm : Resilience.Bbm.t option;
  trx : Trx_log.t option;
  pool : frame Pool.t;
  txns : (int, txn_info) Hashtbl.t;
  mutable next_txid : int;
  mutable pending_commits : int;
  mutable group_commit : int;
  mutable commits_since_ckpt : int;  (* fuzzy-checkpoint cadence counter *)
  mutable tracer : Obs.Tracer.t option;
}

let config t = t.config
let device t = t.dev

(* Compatibility accessor: the first (or only) chip. Single-channel
   engines — every pre-device caller — get exactly the chip they were
   built from. *)
let chip t = Dev.chip t.dev 0
let storage t = t.store

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let flush_frame store trx page frame =
  if not (Log_sector.is_empty frame.log) then begin
    (* Write-ahead rule for transaction-status records: before any of a
       transaction's physiological records reach flash, its begin record
       must be durable, or a crash would leave records whose status lookup
       defaults to "committed". *)
    (match trx with
    | Some log when List.exists (fun txid -> txid <> 0) (Log_sector.txids frame.log) ->
        Trx_log.force log
    | _ -> ());
    Ipl_storage.flush_log store ~page (Log_sector.records frame.log);
    Log_sector.clear frame.log
  end

let build config dev store bbm trx =
  let pool =
    Pool.create ~capacity:config.Ipl_config.buffer_pages
      ~fetch:(fun pid ->
        {
          page = (Ipl_storage.read_page store pid);
          log = Log_sector.create ~capacity:config.Ipl_config.in_memory_log_bytes;
        })
      ~write_back:(fun pid frame -> flush_frame store trx pid frame)
      ()
  in
  {
    config;
    dev;
    store;
    bbm;
    trx;
    pool;
    txns = Hashtbl.create 64;
    next_txid = 1;
    pending_commits = 0;
    group_commit = config.Ipl_config.group_commit;
    commits_since_ckpt = 0;
    tracer = None;
  }

(* Installing a tracer wires every layer to the same ring: the chips and
   storage manager stamp events themselves; the clock-agnostic buffer pool
   gets a closure that stamps with the device's simulated time. *)
let set_tracer t tracer =
  t.tracer <- tracer;
  Dev.set_tracer t.dev tracer;
  Ipl_storage.set_tracer t.store tracer;
  (match t.bbm with
  | Some d -> Resilience.Bbm.set_tracer d tracer
  | None -> ());
  Pool.set_trace t.pool
    (match tracer with
    | None -> None
    | Some tr -> Some (fun ev -> Obs.Tracer.emit tr ~time:(Dev.elapsed t.dev) ev))

let tracer t = t.tracer

let emit_txn_event t ev =
  match t.tracer with
  | None -> ()
  | Some tr -> Obs.Tracer.emit tr ~time:(Dev.elapsed t.dev) ev

(* Resilience layout: the spare pool lives in the last [spare_blocks]
   physical blocks of the chip, carved out of (never handed to) the
   storage manager's data area. The metadata and transaction log regions
   stay on the raw chip — the manager's own state is persisted through
   the metadata log, so routing that region through it would be
   circular. *)
let bbm_parts config dev ~meta =
  let spare_blocks = config.Ipl_config.spare_blocks in
  if spare_blocks = 0 then None
  else begin
    let fc = Dev.config dev in
    let spares =
      List.init spare_blocks (fun i -> fc.FConfig.num_blocks - spare_blocks + i)
    in
    let persist ev =
      Meta_log.log meta
        (match ev with
        | Resilience.Bbm.P_remap { virt; phys } -> Meta_log.Remap { virt; phys }
        | Resilience.Bbm.P_retire { block } -> Meta_log.Retire { block }
        | Resilience.Bbm.P_degraded -> Meta_log.Degraded)
    in
    Some (spares, persist, fun () -> Meta_log.force meta)
  end

let create_device ?(config = Ipl_config.default) ?(meta_blocks = 4) ?(trx_blocks = 4)
    dev =
  let fc = Dev.config dev in
  let reserved = meta_blocks + trx_blocks in
  if fc.FConfig.num_blocks <= reserved + config.Ipl_config.spare_blocks then
    invalid_arg "Ipl_engine: device too small";
  let meta = Meta_log.create dev ~first_block:0 ~num_blocks:meta_blocks in
  let trx =
    if config.Ipl_config.recovery_enabled then
      Some (Trx_log.create dev ~first_block:meta_blocks ~num_blocks:trx_blocks)
    else None
  in
  let txn_status =
    match trx with
    | Some log -> fun txid -> Trx_log.status log txid
    | None -> fun _ -> Trx_log.Committed
  in
  let bbm =
    match bbm_parts config dev ~meta with
    | None -> None
    | Some (spares, persist, force) ->
        Some
          (Resilience.Bbm.create dev ~spares
             ~read_retries:config.Ipl_config.read_retries
             ~scrub_on_correctable:config.Ipl_config.scrub_on_correctable ~persist
             ~force ())
  in
  let store =
    Ipl_storage.create ~config ?bbm dev ~first_block:reserved
      ~num_blocks:(fc.FConfig.num_blocks - reserved - config.Ipl_config.spare_blocks)
      ~txn_status ~meta ()
  in
  build config dev store bbm trx

let create ?config ?meta_blocks ?trx_blocks chip =
  create_device ?config ?meta_blocks ?trx_blocks (Dev.of_chip chip)

let restart_device ?(config = Ipl_config.default) ?(meta_blocks = 4) ?(trx_blocks = 4)
    dev =
  let fc = Dev.config dev in
  let reserved = meta_blocks + trx_blocks in
  let meta, events = Meta_log.recover dev ~first_block:0 ~num_blocks:meta_blocks in
  let trx, aborted =
    if config.Ipl_config.recovery_enabled then
      let log, aborted = Trx_log.recover dev ~first_block:meta_blocks ~num_blocks:trx_blocks in
      (Some log, aborted)
    else (None, [])
  in
  let txn_status =
    match trx with
    | Some log -> fun txid -> Trx_log.status log txid
    | None -> fun _ -> Trx_log.Committed
  in
  let bbm =
    match bbm_parts config dev ~meta with
    | None -> None
    | Some (spares, persist, force) ->
        let bbm_events =
          List.filter_map
            (function
              | Meta_log.Remap { virt; phys } ->
                  Some (Resilience.Bbm.P_remap { virt; phys })
              | Meta_log.Retire { block } -> Some (Resilience.Bbm.P_retire { block })
              | Meta_log.Degraded -> Some Resilience.Bbm.P_degraded
              | _ -> None)
            events
        in
        Some
          (Resilience.Bbm.recover dev ~spares
             ~read_retries:config.Ipl_config.read_retries
             ~scrub_on_correctable:config.Ipl_config.scrub_on_correctable ~persist
             ~force ~events:bbm_events ())
  in
  let store =
    Ipl_storage.recover ~config ?bbm
      ~trx_durable:(match trx with Some log -> Trx_log.durable_sectors log | None -> 0)
      dev ~first_block:reserved
      ~num_blocks:(fc.FConfig.num_blocks - reserved - config.Ipl_config.spare_blocks)
      ~txn_status ~meta ~meta_events:events ()
  in
  let t = build config dev store bbm trx in
  (match trx with
  | Some log -> t.next_txid <- max t.next_txid (Trx_log.max_txid log + 1)
  | None -> ());
  (t, aborted)

let restart ?config ?meta_blocks ?trx_blocks chip =
  restart_device ?config ?meta_blocks ?trx_blocks (Dev.of_chip chip)

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)

let begin_txn t =
  let txid = t.next_txid in
  t.next_txid <- txid + 1;
  Hashtbl.replace t.txns txid { dirty_pages = Hashtbl.create 8 };
  (match t.trx with
  | Some log ->
      Trx_log.log_begin log txid;
      (* Publish the begin record now so its program overlaps the
         transaction's reads: the write-ahead settle at the first dirty
         flush then finds it long since completed instead of paying the
         program (and queueing) time inside the commit. *)
      Trx_log.publish log
  | None -> ());
  txid

let txn_status t txid =
  match t.trx with Some log -> Trx_log.status log txid | None -> Trx_log.Committed

let txn_info t txid =
  match Hashtbl.find_opt t.txns txid with
  | Some info -> info
  | None -> invalid_arg (Printf.sprintf "Ipl_engine: unknown transaction %d" txid)

(* Fuzzy checkpoint cadence: once [checkpoint_every] transactions have
   committed since the last checkpoint, append one to the metadata log
   buffer. No force and no extra barrier — the records ride the next
   durability barrier like any other metadata, and a checkpoint torn by
   a crash is simply ignored at recovery. Called right after a commit
   barrier, so the recorded transaction-log watermark and the per-unit
   log coverage are consistent: everything the checkpoint claims is
   already durable. *)
let maybe_checkpoint t ~committed =
  let every = t.config.Ipl_config.checkpoint_every in
  if every > 0 then begin
    t.commits_since_ckpt <- t.commits_since_ckpt + committed;
    if t.commits_since_ckpt >= every then begin
      t.commits_since_ckpt <- 0;
      let active, trx_watermark =
        match t.trx with
        | Some log -> (Trx_log.active log, Trx_log.durable_sectors log)
        | None -> ([], 0)
      in
      Ipl_storage.emit_checkpoint t.store ~active ~trx_watermark;
      Ipl_storage.publish_meta t.store
    end
  end

(* Make every batched commit durable: flush all dirty frames (their
   in-memory log sectors may mix records of several committed
   transactions), then force metadata and the commit records. *)
let flush_commits t =
  if t.pending_commits > 0 then begin
    Pool.flush_all t.pool;
    Ipl_storage.publish_meta t.store;
    (* Write-ahead settle: the data and metadata programs just published
       run on different channels than the transaction log, and the
       asynchronous scheduler completes them in any order — a commit
       record must not reach flash while one of its batch's log sectors
       is still in flight. *)
    Dev.barrier t.dev;
    (match t.trx with
    | Some log ->
        Trx_log.flush_deferred log;
        Trx_log.publish log
    | None -> ());
    (* The commit-record settle. Two waits per batch instead of the
       serial path's force-per-sector: still one commit-record program
       and two quiesces amortised over the whole batch. *)
    Dev.barrier t.dev;
    let committed = t.pending_commits in
    t.pending_commits <- 0;
    maybe_checkpoint t ~committed
  end

let commit t txid =
  let info = txn_info t txid in
  let group = t.group_commit in
  if group > 0 then begin
    (* Group commit: the transaction is committed for every live reader,
       but its commit record stays out of the log buffer until the batch
       flush — data records must reach flash first (see
       {!Trx_log.defer_commit}). *)
    (match t.trx with Some log -> Trx_log.defer_commit log txid | None -> ());
    Hashtbl.remove t.txns txid;
    t.pending_commits <- t.pending_commits + 1;
    if t.pending_commits >= group then flush_commits t;
    emit_txn_event t (Obs.Event.Commit { tx = txid })
  end
  else begin
    (* Force every in-memory log sector holding one of our records. *)
    Hashtbl.iter
      (fun pid () ->
        match Pool.find t.pool pid with
        | Some frame when List.mem txid (Log_sector.txids frame.log) ->
            flush_frame t.store t.trx pid frame;
            Pool.clean t.pool pid
        | _ -> ())
      info.dirty_pages;
    Ipl_storage.publish_meta t.store;
    (match t.trx with
    | Some log ->
        Trx_log.log_commit ~force:false log txid;
        Trx_log.publish log
    | None -> ());
    (* The commit's one durability wait: every asynchronous program this
       transaction issued — log flushes, the metadata and commit-record
       sectors just published — completes before commit returns. *)
    Dev.barrier t.dev;
    Hashtbl.remove t.txns txid;
    maybe_checkpoint t ~committed:1;
    emit_txn_event t (Obs.Event.Commit { tx = txid })
  end

let abort t txid =
  if t.trx = None then
    failwith "Ipl_engine.abort: transactional recovery is disabled in this configuration";
  let info = txn_info t txid in
  (match t.trx with Some log -> Trx_log.log_abort log txid | None -> ());
  (* Rebuild every touched, still-buffered page: the flash read path now
     filters out this transaction's records; surviving in-memory records
     of other transactions are re-applied on top. The fresh images are
     fetched as one batch so the rebuild reads overlap across
     channels. *)
  let resident =
    Hashtbl.fold
      (fun pid () acc -> if Pool.find t.pool pid <> None then pid :: acc else acc)
      info.dirty_pages []
    |> List.sort compare
  in
  List.iter
    (fun (pid, fresh) ->
      match Pool.find t.pool pid with
      | Some frame ->
          ignore (Log_sector.remove_txn frame.log txid);
          Bytes.blit (Page.to_bytes fresh) 0 (Page.to_bytes frame.page) 0
            (Bytes.length (Page.to_bytes fresh));
          List.iter
            (fun r ->
              match Log_record.apply frame.page r with
              | Ok () -> ()
              | Error msg -> failwith ("Ipl_engine.abort: replay failed: " ^ msg))
            (Log_sector.records frame.log);
          if Log_sector.is_empty frame.log then Pool.clean t.pool pid
      | None -> ())
    (Ipl_storage.read_pages t.store resident);
  Hashtbl.remove t.txns txid;
  emit_txn_event t (Obs.Event.Abort { tx = txid })

(* ------------------------------------------------------------------ *)
(* Page operations                                                     *)

let allocate_page_with t page = Ipl_storage.allocate_page t.store page

let allocate_page t = allocate_page_with t (Page.create t.config.Ipl_config.page_size)

let page_count t = Ipl_storage.num_pages t.store

let note_dirty t ~tx ~page =
  if tx <> 0 then Hashtbl.replace (txn_info t tx).dirty_pages page ()

(* Rebuild a frame's page image from flash plus its surviving buffered
   records. Used when a mutation already applied to the in-memory page
   cannot be logged (the flush of a full log sector failed): dropping the
   unlogged mutation keeps the invariant that the image always equals the
   flash state plus the in-memory log sector. On a dead chip the re-read
   itself fails; that is fine — every subsequent operation fails too and
   restart recovery reads only flash. *)
let restore_frame t ~page frame =
  try
    let fresh = Ipl_storage.read_page t.store page in
    Bytes.blit (Page.to_bytes fresh) 0 (Page.to_bytes frame.page) 0
      (Bytes.length (Page.to_bytes fresh));
    List.iter
      (fun r ->
        match Log_record.apply frame.page r with
        | Ok () -> ()
        | Error msg ->
            Logs.warn (fun m ->
                m "restore_frame: replay of buffered record on page %d failed: %s" page msg))
      (Log_sector.records frame.log)
  with
  | Chip.Power_loss _ | Chip.Read_error _ -> ()
  | exn ->
      Logs.warn (fun m ->
          m "restore_frame: page %d re-read failed: %s" page (Printexc.to_string exn))

let add_record t frame ~page record =
  match Log_sector.add frame.log record with
  | `Added -> ()
  | `Full -> (
      (try flush_frame t.store t.trx page frame
       with e ->
         restore_frame t ~page frame;
         raise e);
      match Log_sector.add frame.log record with
      | `Added -> ()
      | `Full -> assert false (* empty sector accepts any record Log_sector admits *))

(* Fault trap around the result-returning read entry points: every
   device-contract exception — the bad-block manager's (spare pool
   exhausted mid-operation, a read that failed all its retries) and the
   raw chip's (no manager installed) — becomes a typed error instead of
   escaping to the caller. Power_loss is deliberately NOT caught: crash
   simulation must unwind the whole stack. *)
let trap f =
  try f () with
  | Resilience.Bbm.Degraded -> Error Device_degraded
  | Resilience.Bbm.Uncorrectable _ | Chip.Read_error _ -> Error Read_failed
  | Chip.Program_error _ | Chip.Erase_error _ | Chip.Worn_out _ -> Error Device_fault

(* Resilience guard around the result-returning mutation entry points:
   once the device is read-only every mutation is refused up front; any
   fault mid-operation surfaces as the same typed errors as [trap]. The
   try/with is spelled out (not delegated to [trap]) so the analyzer's
   per-function catch sets see it directly. *)
let guard t f =
  let refused =
    match t.bbm with Some d -> Resilience.Bbm.degraded d | None -> false
  in
  if refused then Error Device_degraded
  else
    try f () with
    | Resilience.Bbm.Degraded -> Error Device_degraded
    | Resilience.Bbm.Uncorrectable _ | Chip.Read_error _ -> Error Read_failed
    | Chip.Program_error _ | Chip.Erase_error _ | Chip.Worn_out _ -> Error Device_fault

let mutate t ~tx ~page f =
  guard t (fun () ->
      Pool.with_page t.pool page ~dirty:true (fun frame ->
          match f frame.page with
          | Ok record ->
              add_record t frame ~page record;
              note_dirty t ~tx ~page;
              Ok ()
          | Error _ as e -> e))

(* Largest record payload the logging path accepts: one record must fit an
   empty in-memory log sector. *)
let max_record_payload t =
  t.config.Ipl_config.in_memory_log_bytes - Log_sector.header_size - 13

let insert t ~tx ~page data =
  if Bytes.length data > max_record_payload t then Error Record_too_large
  else
    guard t (fun () ->
        Pool.with_page t.pool page ~dirty:true (fun frame ->
            match Page.insert frame.page data with
            | None -> Error Page_full
            | Some slot ->
                add_record t frame ~page
                  { Log_record.txid = tx; page; op = Log_record.Insert { slot; record = data } };
                note_dirty t ~tx ~page;
                Ok slot))

let delete t ~tx ~page ~slot =
  mutate t ~tx ~page (fun p ->
      match Page.read p slot with
      | None -> Error No_such_slot
      | Some before -> (
          match Page.delete p slot with
          | Error e -> Error (of_page_error e)
          | Ok () ->
              Ok { Log_record.txid = tx; page; op = Log_record.Delete { slot; before } }))

(* Equal-length updates are logged as byte-range deltas: one record per
   differing range (nearby ranges coalesced), each chunked so it fits a
   log sector. *)
let update_range_records t ~tx ~page ~slot ~before ~data =
  let chunk = (max_record_payload t - 15) / 2 in
  List.concat_map
    (fun (off, len) ->
      let rec split off len acc =
        if len <= 0 then List.rev acc
        else
          let n = min len chunk in
          let r =
            {
              Log_record.txid = tx;
              page;
              op =
                Log_record.Update_range
                  {
                    slot;
                    offset = off;
                    before = Bytes.sub before off n;
                    after = Bytes.sub data off n;
                  };
            }
          in
          split (off + n) (len - n) (r :: acc)
      in
      split off len [])
    (Ipl_util.Diff.ranges before data)

let update t ~tx ~page ~slot data =
  guard t @@ fun () ->
  Pool.with_page t.pool page (fun frame ->
      match Page.read frame.page slot with
      | None -> Error No_such_slot
      | Some before ->
          if Bytes.length before = Bytes.length data then begin
            match update_range_records t ~tx ~page ~slot ~before ~data with
            | [] -> Ok () (* no change: nothing to apply or log *)
            | records ->
                (* Log before applying: [add_record] never touches the page,
                   so if the log sector's flush fails mid-way the page image
                   covers exactly the records logged so far and nothing
                   half-applied. *)
                List.iter
                  (fun r ->
                    add_record t frame ~page r;
                    match Log_record.apply frame.page r with
                    | Ok () -> ()
                    | Error msg -> failwith ("Ipl_engine.update: " ^ msg))
                  records;
                Pool.mark_dirty t.pool page;
                note_dirty t ~tx ~page;
                Ok ()
          end
          else if Bytes.length data > max_record_payload t then Error Record_too_large
          else begin
            (* Size-changing replacement. When the combined before/after
               image fits one record, log Update_full; otherwise log it as
               a delete + insert pair (same replay semantics). *)
            match Page.update frame.page slot data with
            | Error e -> Error (of_page_error e)
            | Ok () ->
                let combined = 15 + Bytes.length before + Bytes.length data in
                if combined <= max_record_payload t + 13 then
                  add_record t frame ~page
                    {
                      Log_record.txid = tx;
                      page;
                      op = Log_record.Update_full { slot; before; after = data };
                    }
                else begin
                  add_record t frame ~page
                    { Log_record.txid = tx; page; op = Log_record.Delete { slot; before } };
                  add_record t frame ~page
                    { Log_record.txid = tx; page; op = Log_record.Insert { slot; record = data } }
                end;
                Pool.mark_dirty t.pool page;
                note_dirty t ~tx ~page;
                Ok ()
          end)

let update_range t ~tx ~page ~slot ~offset data =
  mutate t ~tx ~page (fun p ->
      match Page.read p slot with
      | None -> Error No_such_slot
      | Some record ->
          let len = Bytes.length data in
          if offset < 0 || offset + len > Bytes.length record then Error Range_out_of_bounds
          else if (2 * len) + 15 > max_record_payload t + 13 then Error Range_too_large
          else begin
            let before = Bytes.sub record offset len in
            match Page.update_bytes p ~slot ~offset data with
            | Error e -> Error (of_page_error e)
            | Ok () ->
                Ok
                  {
                    Log_record.txid = tx;
                    page;
                    op = Log_record.Update_range { slot; offset; before; after = data };
                  }
          end)

let read t ~page ~slot = Pool.with_page t.pool page (fun frame -> Page.read frame.page slot)

(* Batched read-ahead: fetch the missing pages of the batch through the
   storage manager's parallel read path and install them as clean
   frames. Pages already resident, unknown ids and duplicates are
   skipped — resident members are bumped to most-recently-used first, so
   the batch's own preloads cannot evict them before they are used. The
   engine's read path is unchanged — a later [read] of a prefetched page
   is simply a pool hit. *)
type prefetch_token = Ipl_storage.read_batch

let prefetch_start t pids =
  let seen = Hashtbl.create 16 in
  let wanted =
    List.filter
      (fun pid ->
        (not (Hashtbl.mem seen pid))
        && begin
             Hashtbl.add seen pid ();
             Ipl_storage.page_exists t.store pid
             &&
             if Pool.contains t.pool pid then begin
               Pool.promote t.pool pid;
               false
             end
             else true
           end)
      pids
  in
  Ipl_storage.read_pages_start t.store wanted

let prefetch_finish t token =
  List.iter
    (fun (pid, page) ->
      Pool.preload t.pool pid
        { page; log = Log_sector.create ~capacity:t.config.Ipl_config.in_memory_log_bytes })
    (Ipl_storage.read_pages_finish t.store token)

let prefetch t pids = prefetch_finish t (prefetch_start t pids)

let with_page t page f = Pool.with_page t.pool page (fun frame -> f frame.page)

let page_free_space t page = with_page t page Page.free_space

(* ------------------------------------------------------------------ *)
(* Maintenance                                                         *)

let drain_repairs t ~max_eus = Ipl_storage.repair_step t.store ~max_eus

let checkpoint t =
  t.pending_commits <- 0;
  (* Settle any outstanding lazy-restart repairs first: the fresh fuzzy
     checkpoint emitted below claims exact coverage of every unit's log,
     which an unrepaired unit can honour but the repair-table bookkeeping
     is simplest when a full checkpoint leaves nothing owed. *)
  let (_ : int) = Ipl_storage.repair_step t.store ~max_eus:max_int in
  Pool.flush_all t.pool;
  Ipl_storage.force_meta t.store;
  (match t.trx with
  | Some log ->
      Trx_log.flush_deferred log;
      Trx_log.force log
  | None -> ());
  (* The explicit checkpoint doubles as a fuzzy-checkpoint emission
     point (forced, unlike the cadence-driven ones), so a lazy restart
     after a clean checkpoint has nothing to rescan. *)
  if t.config.Ipl_config.checkpoint_every > 0 then begin
    t.commits_since_ckpt <- 0;
    let active, trx_watermark =
      match t.trx with
      | Some log -> (Trx_log.active log, Trx_log.durable_sectors log)
      | None -> ([], 0)
    in
    Ipl_storage.emit_checkpoint t.store ~active ~trx_watermark;
    Ipl_storage.force_meta t.store
  end;
  (* A checkpoint is a full quiesce: background relocation traffic
     settles too, not just the durability classes. *)
  Dev.drain t.dev;
  emit_txn_event t Obs.Event.Checkpoint

let compact t ~max_merges =
  (* Proactive background merging: take the merge cost off the next
     unlucky writer's critical path. Post-crash repairs drain at the
     same bounded rate — both are idle-time catch-up work. Flush first
     so pending records are included. *)
  let (_ : int) = Ipl_storage.repair_step t.store ~max_eus:max_merges in
  Pool.flush_all t.pool;
  Ipl_storage.merge_fullest t.store ~max_merges

(* ------------------------------------------------------------------ *)
(* Public surface                                                      *)

(* The raising implementations above become the [Unsafe] test shim; the
   exported API shadows them with guard/trap-wrapped result variants.
   Mutations go through [guard] (refused up front on a degraded device);
   read-side entry points go through [trap] only — a read-only device
   still serves committed data. *)
module Unsafe = struct
  let begin_txn = begin_txn
  let commit = commit
  let abort = abort
  let flush_commits = flush_commits
  let txn (tx : int) : txn = tx
  let insert = insert
  let delete = delete
  let update = update
  let update_range = update_range
  let read = read
  let allocate_page = allocate_page
  let allocate_page_with = allocate_page_with
  let prefetch = prefetch
  let with_page = with_page
  let page_free_space = page_free_space
  let checkpoint = checkpoint
  let compact = compact
  let drain_repairs = drain_repairs
end

let begin_txn t = guard t (fun () -> Ok (Unsafe.begin_txn t))
let commit t tx = guard t (fun () -> Ok (Unsafe.commit t tx))

(* [trap], not [guard]: rollback is primarily an in-memory de-application
   and must still run on a degraded (read-only) device — only the abort
   record's flash append may fail, and that failure surfaces as the
   device error after the in-memory state has been unwound. *)
let abort t tx =
  if t.trx = None then Error Recovery_disabled
  else trap (fun () -> Ok (Unsafe.abort t tx))

let flush_commits t = guard t (fun () -> Ok (Unsafe.flush_commits t))
let set_group_commit t n = t.group_commit <- n
let group_commit t = t.group_commit
let pending_commits t = t.pending_commits
let elapsed t = Dev.elapsed t.dev
let allocate_page t = guard t (fun () -> Ok (Unsafe.allocate_page t))
let allocate_page_with t page = guard t (fun () -> Ok (Unsafe.allocate_page_with t page))
let read t ~page ~slot = trap (fun () -> Ok (Unsafe.read t ~page ~slot))
let prefetch t pids = trap (fun () -> Ok (Unsafe.prefetch t pids))
let prefetch_start t pids = trap (fun () -> Ok (prefetch_start t pids))
let prefetch_finish t token = trap (fun () -> Ok (prefetch_finish t token))
let with_page t page f = trap (fun () -> Ok (Unsafe.with_page t page f))
let page_free_space t page = trap (fun () -> Ok (Unsafe.page_free_space t page))
let checkpoint t = guard t (fun () -> Ok (Unsafe.checkpoint t))
let compact t ~max_merges = guard t (fun () -> Ok (Unsafe.compact t ~max_merges))
let repair_pending t = Ipl_storage.repair_pending t.store

(* [trap], not [guard]: repair only reads flash and installs cache
   entries, so it must keep draining on a degraded (read-only) device. *)
let drain_repairs t ~max_eus = trap (fun () -> Ok (Unsafe.drain_repairs t ~max_eus))

let degraded t =
  match t.bbm with Some d -> Resilience.Bbm.degraded d | None -> false

let spares_left t =
  match t.bbm with Some d -> Resilience.Bbm.spares_left d | None -> 0

let bbm t = t.bbm

let stats t =
  {
    storage = Ipl_storage.stats t.store;
    pool = Pool.stats t.pool;
    flash = Dev.stats t.dev;
    resilience =
      (match t.bbm with
      | Some d -> Resilience.Bbm.stats d
      | None -> Resilience.Bbm.Stats.zero);
  }

module Stats = struct
  type t = combined_stats

  let zero =
    {
      storage = Ipl_storage.Stats.zero;
      pool = Pool.Stats.zero;
      flash = Flash_sim.Flash_stats.zero;
      resilience = Resilience.Bbm.Stats.zero;
    }

  let add a b =
    {
      storage = Ipl_storage.Stats.add a.storage b.storage;
      pool = Pool.Stats.add a.pool b.pool;
      flash = Flash_sim.Flash_stats.add a.flash b.flash;
      resilience = Resilience.Bbm.Stats.add a.resilience b.resilience;
    }

  let diff a b =
    {
      storage = Ipl_storage.Stats.diff a.storage b.storage;
      pool = Pool.Stats.diff a.pool b.pool;
      flash = Flash_sim.Flash_stats.diff a.flash b.flash;
      resilience = Resilience.Bbm.Stats.diff a.resilience b.resilience;
    }

  let pp ppf t =
    Format.fprintf ppf "@[<v>flash: %a@,%a@,pool: %a@,%a@]" Flash_sim.Flash_stats.pp
      t.flash Ipl_storage.Stats.pp t.storage Pool.Stats.pp t.pool
      Resilience.Bbm.Stats.pp t.resilience

  let to_json t =
    Ipl_util.Json.Obj
      [
        ("storage", Ipl_storage.Stats.to_json t.storage);
        ("pool", Pool.Stats.to_json t.pool);
        ("flash", Flash_sim.Flash_stats.to_json t.flash);
        ("resilience", Resilience.Bbm.Stats.to_json t.resilience);
      ]
end
