type t = {
  page_size : int;
  log_region_bytes : int;
  in_memory_log_bytes : int;
  recovery_enabled : bool;
  selective_merge_threshold : float;
  wear_aware_allocation : bool;
  buffer_pages : int;
  group_commit : int;
  spare_blocks : int;
  read_retries : int;
  scrub_on_correctable : bool;
  log_cache_bytes : int;
  channels : int;
  ways : int;
  queue_depth : int;
      (* device geometry: how many flash chips (channels x ways) back the
         engine, and how many operations each chip's queue holds before a
         submission stalls the host clock. 1 x 1 is the paper's serial
         chip. *)
  checkpoint_every : int;
  lazy_recovery : bool;
}

let default =
  {
    page_size = 8192;
    log_region_bytes = 8192;
    in_memory_log_bytes = 512;
    recovery_enabled = false;
    selective_merge_threshold = 0.5;
    wear_aware_allocation = true;
    buffer_pages = 2560;
    group_commit = 0;
    spare_blocks = 0;
    read_retries = 3;
    scrub_on_correctable = true;
    log_cache_bytes = 256 * 1024;
    channels = 1;
    ways = 1;
    queue_depth = 64;
    checkpoint_every = 0;
    lazy_recovery = false;
  }

let data_pages_per_eu t ~block_size = (block_size - t.log_region_bytes) / t.page_size
let log_sectors_per_eu t ~sector_size = t.log_region_bytes / sector_size

let validate t ~sector_size ~block_size =
  let check cond msg = if not cond then invalid_arg ("Ipl_config: " ^ msg) in
  check (t.page_size > 0 && t.page_size mod sector_size = 0)
    "page size must be a positive multiple of the flash sector size";
  check (t.log_region_bytes mod sector_size = 0)
    "log region must be a multiple of the flash sector size";
  check (t.in_memory_log_bytes = sector_size)
    "in-memory log sector must match the flash sector size";
  check ((block_size - t.log_region_bytes) mod t.page_size = 0)
    "data region must be a multiple of the page size";
  check (data_pages_per_eu t ~block_size >= 1) "at least one data page per erase unit";
  check (log_sectors_per_eu t ~sector_size >= 1) "at least one log sector per erase unit";
  check (t.selective_merge_threshold >= 0.0 && t.selective_merge_threshold <= 1.0)
    "selective merge threshold must be in [0,1]";
  check (t.buffer_pages > 0) "buffer pool must hold at least one page";
  check (t.group_commit >= 0) "group_commit must be non-negative";
  check (t.spare_blocks >= 0) "spare_blocks must be non-negative";
  check (t.read_retries >= 0) "read_retries must be non-negative";
  check (t.log_cache_bytes >= 0) "log_cache_bytes must be non-negative";
  check (t.channels >= 1) "channels must be at least 1";
  check (t.ways >= 1) "ways must be at least 1";
  check (t.queue_depth >= 1) "queue_depth must be at least 1";
  check (t.checkpoint_every >= 0) "checkpoint_every must be non-negative"
