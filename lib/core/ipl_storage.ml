module Chip = Flash_sim.Flash_chip
module Dev = Device.Flash_device
module FConfig = Flash_sim.Flash_config
module Page = Storage.Page

type eu_info = {
  mutable phys : int;
  pages : int array;  (* data slot -> logical page id, -1 = free slot *)
  mutable used_log : int;
  mutable overflow_rev : int list;  (* flat sector addresses, newest first *)
  txn_counts : (int, int) Hashtbl.t;  (* txid -> live records in this unit's logs *)
  mutable total_records : int;
  mutable next_slot : int;
      (* free-slot scan cursor: slots below it are occupied or unusable
         until the next merge re-erases the unit (slots are never freed
         within a residency, so the cursor only moves forward) *)
}

type overflow_info = { mutable next_idx : int; mutable live : int }

type stats = {
  pages_allocated : int;
  page_reads : int;
  log_sector_writes : int;
  overflow_sector_writes : int;
  log_sector_reads : int;
  merges : int;
  overflow_diversions : int;
  records_applied_at_merge : int;
  records_dropped_aborted : int;
  records_carried_over : int;
  erase_units_reclaimed : int;
  log_cache_hits : int;
  log_cache_misses : int;
  log_cache_evictions : int;
  log_cache_warm_entries : int;
  eus_repaired_lazily : int;
}

(* Free erase units bucketed by wear so allocation is a min-binding
   lookup, not a fold over the whole set with a wear query per member.
   The wear recorded at insertion stays exact while a block is free:
   wear only changes on erase, and a free block is not erased until it
   leaves the pool (reclaim erases {e before} inserting). Without
   wear-aware allocation every block lands in bucket 0 and allocation
   degenerates to lowest-block-number-first. *)
module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

type free_pool = {
  mutable by_wear : IntSet.t IntMap.t;  (* wear at insertion -> blocks *)
  bucket_of : (int, int) Hashtbl.t;  (* member block -> its bucket key *)
}

type t = {
  dev : Dev.t;
  bbm : Resilience.Bbm.t option;
      (* when present, every data-area flash operation is routed through
         the bad-block manager (virtual block addressing) *)
  config : Ipl_config.t;
  first_block : int;
  num_blocks : int;
  txn_status : int -> Trx_log.status;
  meta : Meta_log.t;
  mapping : (int, eu_info * int) Hashtbl.t;  (* logical page -> (unit, slot) *)
  data_eus : (int, eu_info) Hashtbl.t;  (* physical block -> unit *)
  overflow_eus : (int, overflow_info) Hashtbl.t;
  free : free_pool;
  cache : Log_record.t Cache.Log_cache.t;
      (* decoded log records per erase unit, keyed by [eu.phys] (a
         virtual address under a bad-block manager, so relocations do
         not disturb entries) *)
  repairs : Log_record.t Recovery.Repair_table.t;
      (* erase units a lazy restart still owes a replay, keyed by
         [eu.phys]; empty except between a lazy restart and the moment
         every unit has been touched or drained *)
  mutable last_ckpt_footer : (int list * int) option;
      (* (active, trx_watermark) of the newest emitted checkpoint, so a
         metadata-log compaction can re-emit checkpoint coverage instead
         of silently discarding it *)
  mutable in_merge : bool;
      (* a merge is rewriting a unit right now: between the overflow
         release and the durability point its counts and overflow list
         disagree, so a compaction snapshot must not re-emit checkpoint
         coverage (dropping the checkpoint is safe — restart just falls
         back to the eager scan) *)
  mutable pending_reclaims : int list;
      (* dirty unmapped blocks a lazy restart left unerased: reclamation
         erases dominate restart latency, so a lazy restart defers them
         here and they are retired by the background drainer — or, at the
         latest, by an allocation that finds the free pool empty *)
  mutable current_overflow : int option;
  fills : eu_info option array;
      (* unit receiving new page allocations, one per device channel so
         consecutive page allocations stripe across chips; a single-chip
         device has exactly one fill unit, the serial behaviour *)
  mutable next_page : int;
  (* geometry *)
  sectors_per_page : int;
  data_pages : int;
  log_sectors : int;
  log_start : int;  (* sector offset of the log region within a block *)
  sectors_per_block : int;
  (* counters *)
  mutable c_pages_allocated : int;
  mutable c_page_reads : int;
  mutable c_log_sector_writes : int;
  mutable c_overflow_sector_writes : int;
  mutable c_log_sector_reads : int;
  mutable c_merges : int;
  mutable c_overflow_diversions : int;
  mutable c_records_applied : int;
  mutable c_records_dropped : int;
  mutable c_records_carried : int;
  mutable c_reclaimed : int;
  mutable c_cache_hits : int;
  mutable c_cache_misses : int;
  mutable c_cache_evictions : int;
  mutable c_cache_warm_entries : int;
  mutable c_lazy_repairs : int;
  mutable tracer : Obs.Tracer.t option;
}

let config t = t.config

(* DRAM accounting for one cached record: its encoded size plus a flat
   allowance for the list/index cells that carry it. *)
let cached_record_overhead = 48

let mk ?(config = Ipl_config.default) ?bbm dev ~first_block ~num_blocks ~txn_status
    ~meta =
  let fc = Dev.config dev in
  Ipl_config.validate config ~sector_size:fc.FConfig.sector_size
    ~block_size:fc.FConfig.block_size;
  if num_blocks <= 0 || first_block < 0 || first_block + num_blocks > fc.FConfig.num_blocks
  then invalid_arg "Ipl_storage: block range out of device bounds";
  let sectors_per_page = config.Ipl_config.page_size / fc.FConfig.sector_size in
  let data_pages = Ipl_config.data_pages_per_eu config ~block_size:fc.FConfig.block_size in
  (* The eviction hook needs the finished [t] for its counter and tracer;
     tie the knot through a ref. *)
  let self = ref None in
  let cache =
    Cache.Log_cache.create ~budget_bytes:config.Ipl_config.log_cache_bytes
      ~record_bytes:(fun r -> Log_record.encoded_size r + cached_record_overhead)
      ~page_of:(fun r -> r.Log_record.page)
      ~on_evict:(fun ~key ~bytes ->
        match !self with
        | None -> ()
        | Some t -> (
            t.c_cache_evictions <- t.c_cache_evictions + 1;
            match t.tracer with
            | None -> ()
            | Some tr ->
                Obs.Tracer.emit tr ~time:(Dev.elapsed t.dev)
                  (Obs.Event.Cache_evict { eu = key; bytes })))
      ()
  in
  let t =
  {
    dev;
    bbm;
    config;
    first_block;
    num_blocks;
    txn_status;
    meta;
    mapping = Hashtbl.create 4096;
    data_eus = Hashtbl.create 512 [@lint.allow "no-magic-geometry"] (* table capacity *);
    overflow_eus = Hashtbl.create 16;
    free = { by_wear = IntMap.empty; bucket_of = Hashtbl.create 256 };
    cache;
    repairs = Recovery.Repair_table.create ();
    last_ckpt_footer = None;
    in_merge = false;
    pending_reclaims = [];
    current_overflow = None;
    fills = Array.make (Dev.num_chips dev) None;
    next_page = 0;
    sectors_per_page;
    data_pages;
    log_sectors =
      Ipl_config.log_sectors_per_eu config ~sector_size:fc.FConfig.sector_size;
    log_start = data_pages * sectors_per_page;
    sectors_per_block = FConfig.sectors_per_block fc;
    c_pages_allocated = 0;
    c_page_reads = 0;
    c_log_sector_writes = 0;
    c_overflow_sector_writes = 0;
    c_log_sector_reads = 0;
    c_merges = 0;
    c_overflow_diversions = 0;
    c_records_applied = 0;
    c_records_dropped = 0;
    c_records_carried = 0;
    c_reclaimed = 0;
    c_cache_hits = 0;
    c_cache_misses = 0;
    c_cache_evictions = 0;
    c_cache_warm_entries = 0;
    c_lazy_repairs = 0;
    tracer = None;
  }
  in
  self := Some t;
  t

let set_tracer t tracer = t.tracer <- tracer

let fresh_eu_info phys data_pages =
  {
    phys;
    pages = Array.make data_pages (-1);
    used_log = 0;
    overflow_rev = [];
    txn_counts = Hashtbl.create 8;
    total_records = 0;
    next_slot = 0;
  }

(* ------------------------------------------------------------------ *)
(* Device indirection: with a bad-block manager installed, data-area
   operations use virtual block addresses and survive program/erase
   failures; without one they hit the device directly. [cls] attributes
   each operation to a scheduler class; the [submit_] variants are
   asynchronous — the operation executes now, its completion time settles
   at the next barrier (every durability force point is one). *)

let dev_read ?cls t ~sector ~count =
  match t.bbm with
  | Some d -> Resilience.Bbm.read_sectors ?cls d ~sector ~count
  | None -> (
      match cls with
      | Some Dev.Merge_io ->
          (* Background relocation read: execution is eager, so the data
             is available at submission and the merge never blocks the
             host clock on it — the read's service time lands on the
             chip's timeline like any other cleaning-engine operation. *)
          fst (Dev.submit_read t.dev ~cls:Dev.Merge_io ~sector ~count)
      | _ -> Dev.read_sectors ?cls t.dev ~sector ~count)

let dev_submit_write t ~cls ~sector data =
  match t.bbm with
  | Some d -> Resilience.Bbm.submit_write_sectors d ~cls ~sector data
  | None -> Dev.publish_write t.dev ~cls ~sector data

let dev_erase ?cls t b =
  match t.bbm with
  | Some d -> Resilience.Bbm.erase_block ?cls d b
  | None -> Dev.erase_block ?cls t.dev b

let dev_submit_erase t ~cls b =
  match t.bbm with
  | Some d -> Resilience.Bbm.submit_erase_block d ~cls b
  | None -> Dev.publish_erase t.dev ~cls b

let dev_invalidate t ~sector ~count =
  match t.bbm with
  | Some d -> Resilience.Bbm.invalidate_sectors d ~sector ~count
  | None -> Dev.invalidate_sectors t.dev ~sector ~count

let dev_state t s =
  match t.bbm with
  | Some d -> Resilience.Bbm.sector_state d s
  | None -> Dev.sector_state t.dev s

let dev_free_in_block t b =
  match t.bbm with
  | Some d -> Resilience.Bbm.free_sectors_in_block d b
  | None -> Dev.free_sectors_in_block t.dev b

let dev_wear t b =
  match t.bbm with
  | Some d -> Resilience.Bbm.erase_count d b
  | None -> Dev.erase_count t.dev b

let width t = Array.length t.fills
let channel_of t b = Dev.channel_of_block t.dev b

(* ------------------------------------------------------------------ *)
(* Wear-bucketed free pool                                             *)

let free_pool_size t = Hashtbl.length t.free.bucket_of

let free_pool_add t b =
  let p = t.free in
  if not (Hashtbl.mem p.bucket_of b) then begin
    let wear = if t.config.Ipl_config.wear_aware_allocation then dev_wear t b else 0 in
    Hashtbl.replace p.bucket_of b wear;
    p.by_wear <-
      IntMap.update wear
        (fun s -> Some (IntSet.add b (Option.value ~default:IntSet.empty s)))
        p.by_wear
  end

(* Least-worn block, lowest block number among ties. *)
let free_pool_take_min t =
  let p = t.free in
  match IntMap.min_binding_opt p.by_wear with
  | None -> None
  | Some (wear, set) ->
      let b = IntSet.min_elt set in
      let rest = IntSet.remove b set in
      p.by_wear <-
        (if IntSet.is_empty rest then IntMap.remove wear p.by_wear
         else IntMap.add wear rest p.by_wear);
      Hashtbl.remove p.bucket_of b;
      Some b

(* Least-worn block on the given device channel (lowest block number
   among ties), falling back to the global minimum when the channel has
   no free unit. On a single-channel device this {e is}
   [free_pool_take_min], keeping allocation order bit-identical to the
   serial path. *)
let free_pool_take_min_on t ~channel =
  if width t = 1 then free_pool_take_min t
  else begin
    let p = t.free in
    let found =
      Seq.find_map
        (fun (_, set) -> Seq.find (fun b -> channel_of t b = channel) (IntSet.to_seq set))
        (IntMap.to_seq p.by_wear)
    in
    match found with
    | None -> free_pool_take_min t
    | Some b ->
        let wear = Hashtbl.find p.bucket_of b in
        let set = IntMap.find wear p.by_wear in
        let rest = IntSet.remove b set in
        p.by_wear <-
          (if IntSet.is_empty rest then IntMap.remove wear p.by_wear
           else IntMap.add wear rest p.by_wear);
        Hashtbl.remove p.bucket_of b;
        Some b
  end

(* Reclaim a unit onto the free list. The erase is submitted
   asynchronously at merge priority — reclamation is never on the query
   path — and executes eagerly, so a failure still surfaces here. A unit
   whose erase fails stays off the list: leaked until a later recovery
   retries (raw device), or — under a bad-block manager that could not
   remap it — lost with its backing block. A [Degraded] raised here is
   swallowed: reclamation runs after durability points, and the flag it
   sets fails the *next* mutation with a typed error instead. *)
let reclaim_eu t b =
  match dev_submit_erase t ~cls:Dev.Merge_io b with
  | () -> free_pool_add t b
  | exception (Chip.Worn_out _ | Chip.Erase_error _ | Resilience.Bbm.Degraded) -> ()

(* Retire every reclamation erase a lazy restart deferred. Returns
   whether any ran — an allocation that got here with an empty pool must
   not fail while deferred units still exist. *)
let drain_pending_reclaims t =
  match t.pending_reclaims with
  | [] -> false
  | blocks ->
      t.pending_reclaims <- [];
      List.iter (reclaim_eu t) blocks;
      true

(* ------------------------------------------------------------------ *)
(* Free-unit allocation                                                *)

let alloc_eu ?channel t =
  let take () =
    match channel with
    | Some c -> free_pool_take_min_on t ~channel:c
    | None -> free_pool_take_min t
  in
  match take () with
  | Some b -> b
  | None -> (
      if not (drain_pending_reclaims t) then
        failwith "Ipl_storage: out of erase units";
      match take () with
      | Some b -> b
      | None -> failwith "Ipl_storage: out of erase units")

(* ------------------------------------------------------------------ *)
(* Low-level sector helpers                                            *)

let data_sector t eu_phys idx = Dev.sector_of_block t.dev eu_phys + (idx * t.sectors_per_page)
let log_sector_addr t eu_phys i = Dev.sector_of_block t.dev eu_phys + t.log_start + i

let read_raw_page ?cls t eu idx =
  t.c_page_reads <- t.c_page_reads + 1;
  let b = dev_read ?cls t ~sector:(data_sector t eu.phys idx) ~count:t.sectors_per_page in
  Page.of_bytes b

(* Data-page programs are asynchronous: a bulk load streams pages to the
   fill units of every channel and the channels program in parallel; the
   next durability barrier (or any await) settles the completion times. *)
let submit_data_page t ~cls eu_phys idx (page : Page.t) =
  dev_submit_write t ~cls ~sector:(data_sector t eu_phys idx) (Page.to_bytes page)

let sector_size t = (Dev.config t.dev).FConfig.sector_size

(* All log records stored for an erase unit, in application order:
   in-page log sectors by slot, then overflow sectors oldest-first. *)
let read_eu_log_records_uncached ?cls t eu =
  let ss = sector_size t in
  let records = ref [] in
  if eu.used_log > 0 then begin
    let blob = dev_read ?cls t ~sector:(log_sector_addr t eu.phys 0) ~count:eu.used_log in
    t.c_log_sector_reads <- t.c_log_sector_reads + eu.used_log;
    for i = 0 to eu.used_log - 1 do
      let sector = Bytes.sub blob (i * ss) ss in
      records := Log_sector.deserialize sector :: !records
    done
  end;
  List.iter
    (fun addr ->
      let sector = dev_read ?cls t ~sector:addr ~count:1 in
      t.c_log_sector_reads <- t.c_log_sector_reads + 1;
      records := Log_sector.deserialize sector :: !records)
    (List.rev eu.overflow_rev);
  List.concat (List.rev !records)

let eu_log_empty eu = eu.used_log = 0 && eu.overflow_rev = []

let cache_note t eu ~hit =
  if hit then t.c_cache_hits <- t.c_cache_hits + 1
  else t.c_cache_misses <- t.c_cache_misses + 1;
  match t.tracer with
  | None -> ()
  | Some tr ->
      let e = eu.phys in
      Obs.Tracer.emit tr ~time:(Dev.elapsed t.dev)
        (if hit then Obs.Event.Cache_hit { eu = e } else Obs.Event.Cache_miss { eu = e })

(* Cache consumption point: a hit returns the decoded records without
   touching flash (no simulated reads, no [log_sector_reads]); a miss
   scans the log region once and installs the result. Units with an
   empty log region short-circuit without cache traffic. *)
let read_eu_log_records ?cls t eu =
  if eu_log_empty eu then []
  else if not (Cache.Log_cache.enabled t.cache) then read_eu_log_records_uncached ?cls t eu
  else
    match Cache.Log_cache.records t.cache eu.phys with
    | Some records ->
        cache_note t eu ~hit:true;
        records
    | None ->
        let records = read_eu_log_records_uncached ?cls t eu in
        Cache.Log_cache.install t.cache eu.phys records;
        cache_note t eu ~hit:false;
        records

let serialize_records t records =
  let ls = Log_sector.create ~capacity:(sector_size t) in
  List.iter
    (fun r ->
      match Log_sector.add ls r with
      | `Added -> ()
      | `Full -> invalid_arg "Ipl_storage: records exceed one log sector")
    records;
  Log_sector.serialize ls

let note_records eu records =
  List.iter
    (fun r ->
      let txid = r.Log_record.txid in
      Hashtbl.replace eu.txn_counts txid (1 + Option.value ~default:0 (Hashtbl.find_opt eu.txn_counts txid)))
    records;
  eu.total_records <- eu.total_records + List.length records

(* ------------------------------------------------------------------ *)
(* On-demand page repair (lazy restart)                                 *)

(* Settle a lazy restart's debt on one erase unit: the recovery scan
   already decoded the post-checkpoint delta and seeded the unit's record
   counts, so the only work left is warming the log-record cache — read
   the checkpointed prefix sectors, splice the delta behind them in flash
   order (in-region prefix, in-region delta, overflow prefix, overflow
   delta — exactly the order an uncached full scan produces) and install
   the result. With the cache disabled there is nothing to warm: every
   read re-scans the full log region anyway, so the entry is simply
   dropped. Either way the unit's pages count as repaired. *)
let repair_eu t eu (e : Log_record.t Recovery.Repair_table.entry) =
  Recovery.Repair_table.remove t.repairs ~eu:eu.phys;
  if Cache.Log_cache.enabled t.cache then begin
    let ss = sector_size t in
    let pre_in =
      if e.pre_in = 0 then []
      else begin
        let blob = dev_read t ~sector:(log_sector_addr t eu.phys 0) ~count:e.pre_in in
        t.c_log_sector_reads <- t.c_log_sector_reads + e.pre_in;
        List.concat
          (List.init e.pre_in (fun i -> Log_sector.deserialize (Bytes.sub blob (i * ss) ss)))
      end
    in
    let pre_over =
      List.concat_map
        (fun addr ->
          let sector = dev_read t ~sector:addr ~count:1 in
          t.c_log_sector_reads <- t.c_log_sector_reads + 1;
          Log_sector.deserialize sector)
        (List.filteri (fun i _ -> i < e.pre_over) (List.rev eu.overflow_rev))
    in
    Cache.Log_cache.install t.cache eu.phys (pre_in @ e.delta_in @ pre_over @ e.delta_over);
    t.c_cache_warm_entries <- t.c_cache_warm_entries + 1
  end;
  t.c_lazy_repairs <- t.c_lazy_repairs + 1;
  match t.tracer with
  | None -> ()
  | Some tr ->
      List.iter
        (fun page ->
          Obs.Tracer.emit tr ~time:(Dev.elapsed t.dev)
            (Obs.Event.Page_repaired { page; eu = eu.phys }))
        e.pages

(* First-touch hook: any access to an erase unit's log state — a page
   read, a log flush, a merge — repairs the unit first, so the cache can
   never be installed from a scan that misses post-restart appends and
   the repair table shrinks monotonically towards the fully-warm state. *)
let repair_eu_if_pending t eu =
  if Recovery.Repair_table.pending t.repairs > 0 then
    match Recovery.Repair_table.find t.repairs ~eu:eu.phys with
    | None -> ()
    | Some e -> repair_eu t eu e

let repair_pending t = Recovery.Repair_table.pending t.repairs

(* Background drainer: repair up to [max_eus] pending units
   (lowest-numbered first, a deterministic schedule), returning how many
   were repaired. *)
let repair_step t ~max_eus =
  let rec go n =
    if n >= max_eus then n
    else
      match Recovery.Repair_table.choose t.repairs with
      | None -> n
      | Some (phys, e) ->
          (match Hashtbl.find_opt t.data_eus phys with
          | Some eu -> repair_eu t eu e
          | None ->
              (* unreachable: merging a unit repairs it first, so a live
                 entry always has a live unit — but never loop on one *)
              Recovery.Repair_table.remove t.repairs ~eu:phys);
          go (n + 1)
  in
  let repaired = go 0 in
  (* Leftover budget retires deferred reclamation erases, so a full
     drain leaves no background debt at all. *)
  let rec reclaim n =
    if n < max_eus then
      match t.pending_reclaims with
      | [] -> ()
      | b :: rest ->
          t.pending_reclaims <- rest;
          reclaim_eu t b;
          reclaim (n + 1)
  in
  reclaim repaired;
  repaired

(* ------------------------------------------------------------------ *)
(* Page allocation                                                     *)

let find_free_slot t eu =
  let rec go idx =
    if idx >= t.data_pages then begin
      eu.next_slot <- t.data_pages;
      None
    end
    else if
      eu.pages.(idx) = -1
      && dev_state t (data_sector t eu.phys idx) = Chip.Free
    then begin
      eu.next_slot <- idx;
      Some idx
    end
    else go (idx + 1)
  in
  go eu.next_slot

let allocate_page t page =
  if Bytes.length (Page.to_bytes page) <> t.config.Ipl_config.page_size then
    invalid_arg "Ipl_storage.allocate_page: wrong page size";
  (* Consecutive allocations round-robin over the per-channel fill
     units, so a sequential load keeps every chip programming. With one
     channel this is exactly the single-fill-unit serial behaviour. *)
  let ch = t.next_page mod width t in
  let eu, idx =
    let try_fill =
      match t.fills.(ch) with
      | Some eu -> ( match find_free_slot t eu with Some idx -> Some (eu, idx) | None -> None)
      | None -> None
    in
    match try_fill with
    | Some x -> x
    | None ->
        let phys = alloc_eu ?channel:(if width t = 1 then None else Some ch) t in
        let eu = fresh_eu_info phys t.data_pages in
        Hashtbl.replace t.data_eus phys eu;
        t.fills.(ch) <- Some eu;
        (eu, 0)
  in
  let pid = t.next_page in
  t.next_page <- pid + 1;
  submit_data_page t ~cls:Dev.Foreground eu.phys idx page;
  eu.pages.(idx) <- pid;
  Hashtbl.replace t.mapping pid (eu, idx);
  Meta_log.log t.meta (Meta_log.Page_alloc { page = pid; eu = eu.phys; idx });
  t.c_pages_allocated <- t.c_pages_allocated + 1;
  (match t.tracer with
  | None -> ()
  | Some tr ->
      Obs.Tracer.emit tr ~time:(Dev.elapsed t.dev)
        (Obs.Event.Page_alloc { page = pid; eu = eu.phys }));
  pid

let page_exists t pid = Hashtbl.mem t.mapping pid
let num_pages t = Hashtbl.length t.mapping

let lookup t pid =
  match Hashtbl.find_opt t.mapping pid with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "Ipl_storage: unknown page %d" pid)

(* ------------------------------------------------------------------ *)
(* Read path                                                           *)

(* One transaction-status lookup per distinct txid within a single
   operation. Valid only within one storage call: a status can flip
   (Active -> Committed/Aborted) between calls, never during one. *)
let memo_status t =
  let tbl = Hashtbl.create 16 in
  fun txid ->
    match Hashtbl.find_opt tbl txid with
    | Some s -> s
    | None ->
        let s = t.txn_status txid in
        Hashtbl.add tbl txid s;
        s

let live_records_of_page t eu pid =
  repair_eu_if_pending t eu;
  if eu_log_empty eu then []
  else begin
    let status = memo_status t in
    let not_aborted r = status r.Log_record.txid <> Trx_log.Aborted in
    (* The per-page index makes a cache hit proportional to the page's own
       records; only a miss pays for the whole unit. *)
    let mine =
      if not (Cache.Log_cache.enabled t.cache) then None
      else Cache.Log_cache.records_of_page t.cache eu.phys ~page:pid
    in
    match mine with
    | Some records ->
        cache_note t eu ~hit:true;
        List.filter not_aborted records
    | None ->
        List.filter
          (fun r -> r.Log_record.page = pid && not_aborted r)
          (read_eu_log_records t eu)
  end

let apply_records page records =
  List.iter
    (fun r ->
      match Log_record.apply page r with
      | Ok () -> ()
      | Error msg ->
          failwith
            (Format.asprintf "Ipl_storage: log replay failed (%s) on %a" msg Log_record.pp r))
    records

let note_page_read t pid eu =
  match t.tracer with
  | None -> ()
  | Some tr ->
      Obs.Tracer.emit tr ~time:(Dev.elapsed t.dev)
        (Obs.Event.Page_read { page = pid; eu = eu.phys })

let read_page t pid =
  let eu, idx = lookup t pid in
  let page = read_raw_page t eu idx in
  apply_records page (live_records_of_page t eu pid);
  note_page_read t pid eu;
  page

(* Batched read: the raw page reads of the whole batch are submitted
   asynchronously before any is awaited, so reads of pages on different
   channels overlap on the simulated clock. The per-page log replay
   (cache hits, or synchronous log-region reads) happens as each page is
   settled. Under a bad-block manager the batch degrades to sequential
   reads — the retry/scrub logic is inherently synchronous. Counters,
   applied records and returned pages are identical to a [read_page]
   loop either way. *)
type read_batch =
  | Rb_sync of int list  (* bad-block manager: the batch is a plain loop *)
  | Rb_submitted of (int * eu_info * bytes * Log_record.t list * Dev.tag) list

let read_pages_start t pids =
  match t.bbm with
  | Some _ -> Rb_sync pids
  | None ->
      Rb_submitted
        (List.map
           (fun pid ->
             let eu, idx = lookup t pid in
             t.c_page_reads <- t.c_page_reads + 1;
             let data, tag =
               Dev.submit_read t.dev ~cls:Dev.Foreground
                 ~sector:(data_sector t eu.phys idx)
                 ~count:t.sectors_per_page
             in
             (* The live records are captured here too: image and log
                must snapshot the same instant, or a merge between start
                and finish (which folds the records into a new image)
                would leave the old image paired with an emptied log. *)
             (pid, eu, data, live_records_of_page t eu pid, tag))
           pids)

let read_pages_finish t = function
  | Rb_sync pids -> List.map (fun pid -> (pid, read_page t pid)) pids
  | Rb_submitted submitted ->
      List.map
        (fun (pid, eu, data, records, tag) ->
          Dev.await t.dev tag;
          let page = Page.of_bytes data in
          apply_records page records;
          note_page_read t pid eu;
          (pid, page))
        submitted

let read_pages t pids = read_pages_finish t (read_pages_start t pids)

let live_log_records t ~page = let eu, _ = lookup t page in live_records_of_page t eu page

(* ------------------------------------------------------------------ *)
(* Overflow area                                                       *)

let release_overflow t eu =
  if eu.overflow_rev <> [] then begin
    List.iter
      (fun addr ->
        dev_invalidate t ~sector:addr ~count:1;
        let block = Dev.block_of_sector t.dev addr in
        match Hashtbl.find_opt t.overflow_eus block with
        | Some info -> info.live <- info.live - 1
        | None -> ())
      eu.overflow_rev;
    Meta_log.log t.meta (Meta_log.Overflow_release { data_eu = eu.phys });
    eu.overflow_rev <- []
  end

let gc_overflow t =
  let dead =
    Hashtbl.fold
      (fun phys info acc -> if info.live = 0 && info.next_idx > 0 then phys :: acc else acc)
      t.overflow_eus []
  in
  List.iter
    (fun phys ->
      Hashtbl.remove t.overflow_eus phys;
      if t.current_overflow = Some phys then t.current_overflow <- None;
      reclaim_eu t phys;
      Meta_log.log t.meta (Meta_log.Overflow_free { eu = phys });
      t.c_reclaimed <- t.c_reclaimed + 1)
    dead

let overflow_write ?(cls = Dev.Log_flush) t eu sector_bytes =
  let phys =
    match t.current_overflow with
    | Some phys when (Hashtbl.find t.overflow_eus phys).next_idx < t.sectors_per_block ->
        phys
    | _ ->
        let phys = alloc_eu t in
        Hashtbl.replace t.overflow_eus phys { next_idx = 0; live = 0 };
        t.current_overflow <- Some phys;
        Meta_log.log t.meta (Meta_log.Overflow_alloc { eu = phys });
        phys
  in
  let info = Hashtbl.find t.overflow_eus phys in
  let addr = Dev.sector_of_block t.dev phys + info.next_idx in
  dev_submit_write t ~cls ~sector:addr sector_bytes;
  info.next_idx <- info.next_idx + 1;
  info.live <- info.live + 1;
  eu.overflow_rev <- addr :: eu.overflow_rev;
  Meta_log.log t.meta (Meta_log.Overflow_assign { data_eu = eu.phys; sector = addr });
  t.c_overflow_sector_writes <- t.c_overflow_sector_writes + 1

(* ------------------------------------------------------------------ *)
(* Merge (Algorithms 1 and 3)                                          *)

(* Split a unit's records by the status of their transactions. Preserves
   order within each class. *)
let classify t records =
  let status = memo_status t in
  let committed = ref [] and active = ref [] and dropped = ref 0 in
  List.iter
    (fun r ->
      match status r.Log_record.txid with
      | Trx_log.Committed -> committed := r :: !committed
      | Trx_log.Active -> active := r :: !active
      | Trx_log.Aborted -> incr dropped)
    records;
  (List.rev !committed, List.rev !active, !dropped)

(* Pack records into as few log sectors as possible (order preserved).
   Each sector image is paired with the records it holds, so the merge
   can mirror exactly the persisted records into the cache. *)
let pack_sectors t records =
  let sectors = ref [] in
  let cur = ref (Log_sector.create ~capacity:(sector_size t)) in
  let cur_records = ref [] in
  let seal () =
    if not (Log_sector.is_empty !cur) then begin
      sectors := (Log_sector.serialize !cur, List.rev !cur_records) :: !sectors;
      cur := Log_sector.create ~capacity:(sector_size t);
      cur_records := []
    end
  in
  List.iter
    (fun r ->
      match Log_sector.add !cur r with
      | `Added -> cur_records := r :: !cur_records
      | `Full -> (
          seal ();
          match Log_sector.add !cur r with
          | `Added -> cur_records := r :: !cur_records
          | `Full ->
              (* Unreachable today — [Log_sector.add] raises before
                 answering [`Full] on an empty sector — but kept typed so
                 a future Log_sector change surfaces as a clean error
                 instead of a crash mid-merge. *)
              raise (Log_sector.Record_too_large (Log_record.encoded_size r))))
    records;
  seal ();
  List.rev !sectors

(* Undo an in-merge [release_overflow]: re-attach the sectors and their
   live counts. The sectors were already invalidated on the chip, but
   reads of [Invalid] sectors return the stale programmed data (documented
   Flash_chip behaviour), so the records stay reachable. *)
let reattach_overflow t eu saved =
  eu.overflow_rev <- saved;
  List.iter
    (fun addr ->
      let block = Dev.block_of_sector t.dev addr in
      match Hashtbl.find_opt t.overflow_eus block with
      | Some info -> info.live <- info.live + 1
      | None -> ())
    saved

(* ------------------------------------------------------------------ *)
(* Fuzzy checkpoints                                                    *)

(* Limits keeping every checkpoint record inside one log sector's
   payload: per-unit transaction counts are chunked (they accumulate at
   recovery), and a checkpoint whose active-transaction table cannot fit
   a single footer record is skipped outright — the previous checkpoint
   simply stays in force. *)
let ckpt_counts_chunk = 56
let ckpt_max_active = 120

(* The checkpoint as an event list: per-unit coverage of every data unit
   with a non-empty log (sorted by unit for a deterministic flash
   layout), then the footer that promotes it. Also re-emitted verbatim by
   the compaction snapshot, so a compacted metadata log keeps its
   checkpoint. *)
let ckpt_events t ~active ~trx_watermark =
  let eus =
    Hashtbl.fold (fun _ eu acc -> if eu_log_empty eu then acc else eu :: acc) t.data_eus []
    |> List.sort (fun a b -> compare a.phys b.phys)
  in
  let rec chunks = function
    | [] -> []
    | l ->
        let rec take n acc rest =
          if n = 0 then (List.rev acc, rest)
          else match rest with [] -> (List.rev acc, []) | x :: r -> take (n - 1) (x :: acc) r
        in
        let c, rest = take ckpt_counts_chunk [] l in
        c :: chunks rest
  in
  let per_eu eu =
    let counts =
      Hashtbl.fold (fun txid n acc -> (txid, n) :: acc) eu.txn_counts [] |> List.sort compare
    in
    let used_log = eu.used_log and overflow = List.length eu.overflow_rev in
    List.map
      (fun c -> Meta_log.Ckpt_eu { eu = eu.phys; used_log; overflow; counts = c })
      (chunks counts)
  in
  List.concat_map per_eu eus
  @ [ Meta_log.Ckpt { active = List.sort compare active; trx_watermark } ]

let emit_checkpoint t ~active ~trx_watermark =
  if List.length active <= ckpt_max_active then begin
    List.iter (Meta_log.log t.meta) (ckpt_events t ~active ~trx_watermark);
    t.last_ckpt_footer <- Some (active, trx_watermark)
  end

(* A merge is atomic at the durability point — the metadata-log force that
   publishes the Merge event. An exception before that point (an injected
   power loss, a worn-out block, a corrupt log sector) must leave the
   in-memory mapping, overflow assignment and free list exactly as they
   were, so a caller that survives the exception keeps a consistent
   engine; after the point, the in-memory switch-over is completed before
   any further fallible flash work. *)
let merge_rewrite t eu ~pending =
  repair_eu_if_pending t eu;
  (* Merge onto the {e next} channel: the copy's reads (old unit) and
     programs (new unit) then sit on different chips and overlap. With
     one channel the target allocation is the plain least-worn choice. *)
  let new_phys =
    alloc_eu
      ?channel:
        (if width t = 1 then None else Some ((channel_of t eu.phys + 1) mod width t))
      t
  in
  let meta_mark = Meta_log.mark t.meta in
  let saved_overflow = eu.overflow_rev in
  let released = ref false in
  let durable = ref false in
  t.in_merge <- true;
  Fun.protect ~finally:(fun () -> t.in_merge <- false) @@ fun () ->
  try
    let all = read_eu_log_records ~cls:Dev.Merge_io t eu @ pending in
    let committed, carried, dropped = classify t all in
    (* Rewrite every hosted page with its committed records applied. *)
    let applied = ref 0 in
    Array.iteri
      (fun idx pid ->
        if pid >= 0 then begin
          let page = read_raw_page ~cls:Dev.Merge_io t eu idx in
          let mine = List.filter (fun r -> r.Log_record.page = pid) committed in
          apply_records page mine;
          applied := !applied + List.length mine;
          submit_data_page t ~cls:Dev.Merge_io new_phys idx page
        end)
      eu.pages;
    (* Carry the still-active records into the new unit's log region,
       compacted; spill to overflow if they exceed it (possible only with a
       high tau). *)
    let sectors = pack_sectors t carried in
    let in_region, spill =
      let rec split i acc = function
        | [] -> (List.rev acc, [])
        | s :: rest when i < t.log_sectors -> split (i + 1) (s :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      split 0 [] sectors
    in
    List.iteri
      (fun i (s, _) ->
        dev_submit_write t ~cls:Dev.Merge_io ~sector:(log_sector_addr t new_phys i) s)
      in_region;
    release_overflow t eu;
    released := true;
    (* Publish the move: the durability point. *)
    Meta_log.log t.meta (Meta_log.Merge { old_eu = eu.phys; new_eu = new_phys });
    Meta_log.force t.meta;
    durable := true;
    (* Complete the in-memory switch-over (pure RAM, cannot fail), then
       reclaim the old unit. *)
    let old_phys = eu.phys in
    Hashtbl.remove t.data_eus old_phys;
    eu.phys <- new_phys;
    Hashtbl.replace t.data_eus new_phys eu;
    eu.used_log <- List.length in_region;
    eu.next_slot <- 0;
    (* a torn data slot in the old unit is usable again in the fresh one *)
    Hashtbl.reset eu.txn_counts;
    eu.total_records <- 0;
    note_records eu carried;
    (* The old unit's cached records were consumed above; the carried
       in-region records were just rewritten, so seed the new unit's
       entry with them (spilled records are appended as their overflow
       writes succeed below, keeping the entry equal to flash even if a
       spill write fails mid-way). *)
    Cache.Log_cache.invalidate t.cache old_phys;
    (match List.concat_map snd in_region with
    | [] -> ()
    | records -> Cache.Log_cache.install t.cache new_phys records);
    t.c_records_dropped <- t.c_records_dropped + dropped;
    t.c_records_carried <- t.c_records_carried + List.length carried;
    t.c_records_applied <- t.c_records_applied + !applied;
    t.c_merges <- t.c_merges + 1;
    (match t.tracer with
    | None -> ()
    | Some tr ->
        Obs.Tracer.emit tr ~time:(Dev.elapsed t.dev)
          (Obs.Event.Merge
             {
               eu = old_phys;
               new_eu = new_phys;
               applied = !applied;
               carried = List.length carried;
               dropped;
             }));
    (* A failed reclaim merely leaks the old block until the next restart's
       garbage collection erases it. *)
    reclaim_eu t old_phys;
    (* Spilled carried sectors go to a fresh overflow area, oldest first. *)
    List.iter
      (fun (s, records) ->
        overflow_write ~cls:Dev.Merge_io t eu s;
        Cache.Log_cache.append t.cache eu.phys records)
      spill;
    gc_overflow t
  with e when not !durable ->
    if !released then reattach_overflow t eu saved_overflow;
    if not (Meta_log.rollback t.meta meta_mark) then
      (* The region compacted mid-merge; rewrite it from the restored
         in-memory state (best-effort: on a dead chip restart recovery
         rebuilds from the durable crash state anyway). *)
      (try Meta_log.recompact t.meta with
      | Chip.Power_loss _ | Chip.Worn_out _ -> ()
      | exn ->
          Logs.warn (fun m ->
              m "merge rollback: meta-log recompaction failed: %s" (Printexc.to_string exn)));
    (try
       dev_erase t new_phys;
       free_pool_add t new_phys
     with
    | Chip.Power_loss _ | Chip.Worn_out _ | Chip.Erase_error _ | Resilience.Bbm.Degraded
      ->
        ()
    | exn ->
        Logs.warn (fun m ->
            m "merge rollback: could not reclaim unit %d: %s" new_phys (Printexc.to_string exn)));
    raise e

(* A completed merge rewrote the unit, and at recovery the Merge event
   voids the unit's checkpoint coverage — the log prefix it vouched for
   is gone. Until the next periodic checkpoint that unit would fall back
   to a full log scan, so re-emit the coverage immediately from the
   fresh post-merge state, under the standing footer (the same
   footer-reuse the compaction snapshot performs; the footer itself is
   not advanced). The merged unit's coverage is trivially small — its
   log was just compacted — and every other unit's claim is re-asserted
   unchanged. Skipped when fuzzy checkpoints are off or none was taken
   yet. *)
let merge t eu ~pending =
  merge_rewrite t eu ~pending;
  match t.last_ckpt_footer with
  | Some (active, trx_watermark) when t.config.Ipl_config.checkpoint_every > 0 ->
      List.iter (Meta_log.log t.meta) (ckpt_events t ~active ~trx_watermark)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Log flushing                                                        *)

let active_fraction t eu ~pending =
  let status = memo_status t in
  let active_of records =
    List.fold_left
      (fun acc r -> if status r.Log_record.txid = Trx_log.Active then acc + 1 else acc)
      0 records
  in
  let active_stored =
    Hashtbl.fold
      (fun txid n acc -> if status txid = Trx_log.Active then acc + n else acc)
      eu.txn_counts 0
  in
  let total = eu.total_records + List.length pending in
  if total = 0 then 0.0
  else float_of_int (active_stored + active_of pending) /. float_of_int total

let flush_log t ~page records =
  if records = [] then invalid_arg "Ipl_storage.flush_log: no records";
  List.iter
    (fun r ->
      if r.Log_record.page <> page then
        invalid_arg "Ipl_storage.flush_log: record for a different page")
    records;
  let eu, _ = lookup t page in
  (* An unrepaired unit must be settled before the write-through append
     below: the cache entry a later repair installs has to include this
     flush's records too. *)
  repair_eu_if_pending t eu;
  if eu.used_log < t.log_sectors then begin
    let sector = serialize_records t records in
    dev_submit_write t ~cls:Dev.Log_flush ~sector:(log_sector_addr t eu.phys eu.used_log) sector;
    eu.used_log <- eu.used_log + 1;
    note_records eu records;
    (* Write-through only after the program succeeded: the cache must
       never hold records flash does not. *)
    Cache.Log_cache.append t.cache eu.phys records;
    t.c_log_sector_writes <- t.c_log_sector_writes + 1;
    match t.tracer with
    | None -> ()
    | Some tr ->
        Obs.Tracer.emit tr ~time:(Dev.elapsed t.dev)
          (Obs.Event.Log_flush { page; eu = eu.phys; records = List.length records })
  end
  else if
    t.config.Ipl_config.recovery_enabled
    && active_fraction t eu ~pending:records > t.config.Ipl_config.selective_merge_threshold
  then begin
    let sector = serialize_records t records in
    overflow_write t eu sector;
    note_records eu records;
    Cache.Log_cache.append t.cache eu.phys records;
    t.c_overflow_diversions <- t.c_overflow_diversions + 1;
    match t.tracer with
    | None -> ()
    | Some tr ->
        Obs.Tracer.emit tr ~time:(Dev.elapsed t.dev)
          (Obs.Event.Overflow_diversion
             { page; eu = eu.phys; records = List.length records })
  end
  else merge t eu ~pending:records

let merge_eu_of_page t pid =
  let eu, _ = lookup t pid in
  merge t eu ~pending:[]

let merge_fullest t ~max_merges =
  if max_merges <= 0 then 0
  else begin
    let candidates =
      Hashtbl.fold
        (fun _ eu acc ->
          let load = eu.used_log + List.length eu.overflow_rev in
          if load > 0 then (load, eu) :: acc else acc)
        t.data_eus []
    in
    let sorted = List.sort (fun (a, _) (b, _) -> compare b a) candidates in
    let rec go n = function
      | (_, eu) :: rest when n < max_merges ->
          merge t eu ~pending:[];
          go (n + 1) rest
      | _ -> n
    in
    go 0 sorted
  end

let force_meta t = Meta_log.force t.meta
let publish_meta t = Meta_log.publish t.meta

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let eu_of_page t pid = (fst (lookup t pid)).phys

let used_log_sectors t ~eu =
  match Hashtbl.find_opt t.data_eus eu with
  | Some info -> info.used_log
  | None -> invalid_arg "Ipl_storage.used_log_sectors: not a data erase unit"

let overflow_sectors t ~eu =
  match Hashtbl.find_opt t.data_eus eu with
  | Some info -> List.length info.overflow_rev
  | None -> invalid_arg "Ipl_storage.overflow_sectors: not a data erase unit"

let free_eus t = free_pool_size t

let stats t =
  {
    pages_allocated = t.c_pages_allocated;
    page_reads = t.c_page_reads;
    log_sector_writes = t.c_log_sector_writes;
    overflow_sector_writes = t.c_overflow_sector_writes;
    log_sector_reads = t.c_log_sector_reads;
    merges = t.c_merges;
    overflow_diversions = t.c_overflow_diversions;
    records_applied_at_merge = t.c_records_applied;
    records_dropped_aborted = t.c_records_dropped;
    records_carried_over = t.c_records_carried;
    erase_units_reclaimed = t.c_reclaimed;
    log_cache_hits = t.c_cache_hits;
    log_cache_misses = t.c_cache_misses;
    log_cache_evictions = t.c_cache_evictions;
    log_cache_warm_entries = t.c_cache_warm_entries;
    eus_repaired_lazily = t.c_lazy_repairs;
  }

module Stats = struct
  type t = stats

  let zero =
    {
      pages_allocated = 0;
      page_reads = 0;
      log_sector_writes = 0;
      overflow_sector_writes = 0;
      log_sector_reads = 0;
      merges = 0;
      overflow_diversions = 0;
      records_applied_at_merge = 0;
      records_dropped_aborted = 0;
      records_carried_over = 0;
      erase_units_reclaimed = 0;
      log_cache_hits = 0;
      log_cache_misses = 0;
      log_cache_evictions = 0;
      log_cache_warm_entries = 0;
      eus_repaired_lazily = 0;
    }

  let map2 f (a : t) (b : t) : t =
    {
      pages_allocated = f a.pages_allocated b.pages_allocated;
      page_reads = f a.page_reads b.page_reads;
      log_sector_writes = f a.log_sector_writes b.log_sector_writes;
      overflow_sector_writes = f a.overflow_sector_writes b.overflow_sector_writes;
      log_sector_reads = f a.log_sector_reads b.log_sector_reads;
      merges = f a.merges b.merges;
      overflow_diversions = f a.overflow_diversions b.overflow_diversions;
      records_applied_at_merge = f a.records_applied_at_merge b.records_applied_at_merge;
      records_dropped_aborted = f a.records_dropped_aborted b.records_dropped_aborted;
      records_carried_over = f a.records_carried_over b.records_carried_over;
      erase_units_reclaimed = f a.erase_units_reclaimed b.erase_units_reclaimed;
      log_cache_hits = f a.log_cache_hits b.log_cache_hits;
      log_cache_misses = f a.log_cache_misses b.log_cache_misses;
      log_cache_evictions = f a.log_cache_evictions b.log_cache_evictions;
      log_cache_warm_entries = f a.log_cache_warm_entries b.log_cache_warm_entries;
      eus_repaired_lazily = f a.eus_repaired_lazily b.eus_repaired_lazily;
    }

  let add = map2 ( + )
  let diff = map2 ( - )

  let fields (t : t) =
    [
      ("pages_allocated", t.pages_allocated);
      ("page_reads", t.page_reads);
      ("log_sector_writes", t.log_sector_writes);
      ("overflow_sector_writes", t.overflow_sector_writes);
      ("log_sector_reads", t.log_sector_reads);
      ("merges", t.merges);
      ("overflow_diversions", t.overflow_diversions);
      ("records_applied_at_merge", t.records_applied_at_merge);
      ("records_dropped_aborted", t.records_dropped_aborted);
      ("records_carried_over", t.records_carried_over);
      ("erase_units_reclaimed", t.erase_units_reclaimed);
      ("log_cache_hits", t.log_cache_hits);
      ("log_cache_misses", t.log_cache_misses);
      ("log_cache_evictions", t.log_cache_evictions);
      ("log_cache_warm_entries", t.log_cache_warm_entries);
      ("eus_repaired_lazily", t.eus_repaired_lazily);
    ]

  let pp ppf t =
    Format.pp_print_string ppf "storage:";
    List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) (fields t)

  let to_json t =
    Ipl_util.Json.Obj (List.map (fun (k, v) -> (k, Ipl_util.Json.Int v)) (fields t))
end

(* ------------------------------------------------------------------ *)
(* Construction and crash recovery                                     *)

let snapshot_fun t () =
  let events = ref [] in
  Hashtbl.iter
    (fun phys _ -> events := Meta_log.Overflow_alloc { eu = phys } :: !events)
    t.overflow_eus;
  Hashtbl.iter
    (fun phys eu ->
      Array.iteri
        (fun idx pid ->
          if pid >= 0 then
            events := Meta_log.Page_alloc { page = pid; eu = phys; idx } :: !events)
        eu.pages;
      List.iter
        (fun addr ->
          events := Meta_log.Overflow_assign { data_eu = phys; sector = addr } :: !events)
        (List.rev eu.overflow_rev))
    t.data_eus;
  (* Overflow_alloc events were prepended last-first; order among allocs
     does not matter, but assigns must follow allocs. *)
  let allocs, rest =
    List.partition (function Meta_log.Overflow_alloc _ -> true | _ -> false) !events
  in
  (* The bad-block manager's state must survive compaction too: without
     these events a compacted log would silently forget the remap table. *)
  let resilience =
    match t.bbm with
    | None -> []
    | Some d ->
        List.map
          (function
            | Resilience.Bbm.P_remap { virt; phys } -> Meta_log.Remap { virt; phys }
            | Resilience.Bbm.P_retire { block } -> Meta_log.Retire { block }
            | Resilience.Bbm.P_degraded -> Meta_log.Degraded)
          (Resilience.Bbm.snapshot_events d)
  in
  (* The newest checkpoint must survive compaction — re-emit it from the
     current (equivalent or fresher) coverage, under the footer it was
     taken with. *)
  let ckpt =
    match t.last_ckpt_footer with
    | Some (active, trx_watermark)
      when t.config.Ipl_config.checkpoint_every > 0 && not t.in_merge ->
        ckpt_events t ~active ~trx_watermark
    | _ -> []
  in
  resilience @ allocs @ List.rev rest @ ckpt

let create ?config ?bbm dev ~first_block ~num_blocks ~txn_status ~meta () =
  let t = mk ?config ?bbm dev ~first_block ~num_blocks ~txn_status ~meta in
  for b = first_block to first_block + num_blocks - 1 do
    free_pool_add t b
  done;
  Meta_log.set_snapshot meta (snapshot_fun t);
  t

let recover ?config ?bbm ?(trx_durable = 0) dev ~first_block ~num_blocks ~txn_status
    ~meta ~meta_events () =
  let t = mk ?config ?bbm dev ~first_block ~num_blocks ~txn_status ~meta in
  (* Replay mapping events. *)
  let get_eu phys =
    match Hashtbl.find_opt t.data_eus phys with
    | Some eu -> eu
    | None ->
        let eu = fresh_eu_info phys t.data_pages in
        Hashtbl.replace t.data_eus phys eu;
        eu
  in
  (* Checkpoint coverage accumulates alongside the replay: [Ckpt_eu]
     records gather per-unit until a [Ckpt] footer promotes the batch
     (a torn checkpoint — coverage without its footer — is discarded).
     A footer whose transaction-log watermark exceeds what that log
     actually recovered is unusable: the statuses its counts refer to
     were not durable. Any later merge or overflow release of a unit
     voids its coverage — the prefix it vouches for is gone. *)
  let cov_effective : (int, int * int * (int * int) list) Hashtbl.t = Hashtbl.create 32 in
  let cov_pending : (int, int * int * (int * int) list) Hashtbl.t = Hashtbl.create 32 in
  let cov_footer = ref None in
  let cov_void phys =
    Hashtbl.remove cov_effective phys;
    Hashtbl.remove cov_pending phys
  in
  List.iter
    (function
      | Meta_log.Page_alloc { page; eu = phys; idx } ->
          let eu = get_eu phys in
          eu.pages.(idx) <- page;
          Hashtbl.replace t.mapping page (eu, idx);
          if page >= t.next_page then t.next_page <- page + 1
      | Meta_log.Merge { old_eu; new_eu } -> (
          cov_void old_eu;
          match Hashtbl.find_opt t.data_eus old_eu with
          | Some eu ->
              Hashtbl.remove t.data_eus old_eu;
              eu.phys <- new_eu;
              Hashtbl.replace t.data_eus new_eu eu
          | None -> failwith "Ipl_storage.recover: merge of unknown erase unit")
      | Meta_log.Overflow_alloc { eu } ->
          Hashtbl.replace t.overflow_eus eu { next_idx = 0; live = 0 }
      | Meta_log.Overflow_assign { data_eu; sector } -> (
          match Hashtbl.find_opt t.data_eus data_eu with
          | Some eu ->
              eu.overflow_rev <- sector :: eu.overflow_rev;
              let block = Dev.block_of_sector dev sector in
              (match Hashtbl.find_opt t.overflow_eus block with
              | Some info -> info.live <- info.live + 1
              | None -> ())
          | None -> failwith "Ipl_storage.recover: overflow assign to unknown unit")
      | Meta_log.Overflow_release { data_eu } -> (
          cov_void data_eu;
          match Hashtbl.find_opt t.data_eus data_eu with
          | Some eu ->
              List.iter
                (fun addr ->
                  let block = Dev.block_of_sector dev addr in
                  match Hashtbl.find_opt t.overflow_eus block with
                  | Some info -> info.live <- info.live - 1
                  | None -> ())
                eu.overflow_rev;
              eu.overflow_rev <- []
          | None -> ())
      | Meta_log.Overflow_free { eu } -> Hashtbl.remove t.overflow_eus eu
      | Meta_log.Ckpt_eu { eu; used_log; overflow; counts } -> (
          match Hashtbl.find_opt cov_pending eu with
          | Some (u, o, acc) -> Hashtbl.replace cov_pending eu (u, o, acc @ counts)
          | None -> Hashtbl.replace cov_pending eu (used_log, overflow, counts))
      | Meta_log.Ckpt { active; trx_watermark } ->
          if trx_watermark <= trx_durable then begin
            Hashtbl.iter (fun eu c -> Hashtbl.replace cov_effective eu c) cov_pending;
            cov_footer := Some (active, trx_watermark)
          end;
          Hashtbl.reset cov_pending
      (* Resilience events address the bad-block manager, which the owner
         replays into it before constructing the storage manager; all
         storage-level addresses are virtual and unaffected. *)
      | Meta_log.Remap _ | Meta_log.Retire _ | Meta_log.Degraded -> ())
    meta_events;
  t.last_ckpt_footer <- !cov_footer;
  let lazy_on = t.config.Ipl_config.lazy_recovery && !cov_footer <> None in
  (* Rebuild log-sector usage and record counts. Free-state scans cost no
     simulated time; the flash reads do. Eagerly (or for units the
     checkpoint does not vouch for) the whole log region is read back;
     under lazy recovery a covered unit's counts are seeded from the
     checkpoint, only the post-checkpoint delta is read and decoded, and
     an entry in the repair table records what first touch still owes. *)
  Hashtbl.iter
    (fun _ eu ->
      let rec used i =
        if i >= t.log_sectors then i
        else if dev_state t (log_sector_addr t eu.phys i) <> Chip.Free then used (i + 1)
        else i
      in
      eu.used_log <- used 0;
      let cov = if lazy_on then Hashtbl.find_opt cov_effective eu.phys else None in
      match cov with
      | Some (ck_used, ck_over, ck_counts)
        when ck_used <= eu.used_log && ck_over <= List.length eu.overflow_rev ->
          Hashtbl.reset eu.txn_counts;
          eu.total_records <- 0;
          List.iter
            (fun (txid, n) ->
              Hashtbl.replace eu.txn_counts txid
                (n + Option.value ~default:0 (Hashtbl.find_opt eu.txn_counts txid)))
            ck_counts;
          eu.total_records <- List.fold_left (fun a (_, n) -> a + n) 0 ck_counts;
          let ss = sector_size t in
          let delta_in =
            if eu.used_log > ck_used then begin
              let count = eu.used_log - ck_used in
              let blob = dev_read t ~sector:(log_sector_addr t eu.phys ck_used) ~count in
              t.c_log_sector_reads <- t.c_log_sector_reads + count;
              List.concat
                (List.init count (fun i ->
                     Log_sector.deserialize (Bytes.sub blob (i * ss) ss)))
            end
            else []
          in
          let delta_over =
            (* [overflow_rev] is newest-first: the first
               [length - ck_over] entries postdate the checkpoint; read
               them oldest-first. *)
            let beyond = List.length eu.overflow_rev - ck_over in
            List.concat_map
              (fun addr ->
                let sector = dev_read t ~sector:addr ~count:1 in
                t.c_log_sector_reads <- t.c_log_sector_reads + 1;
                Log_sector.deserialize sector)
              (List.rev (List.filteri (fun i _ -> i < beyond) eu.overflow_rev))
          in
          let delta = delta_in @ delta_over in
          note_records eu delta;
          if ck_used > 0 || ck_over > 0 || delta <> [] then begin
            let pages =
              List.sort_uniq compare (List.map (fun r -> r.Log_record.page) delta)
            in
            Recovery.Repair_table.add t.repairs ~eu:eu.phys
              {
                Recovery.Repair_table.pre_in = ck_used;
                pre_over = ck_over;
                delta_in;
                delta_over;
                pages;
              }
          end
      | _ ->
          let records = read_eu_log_records t eu in
          Hashtbl.reset eu.txn_counts;
          eu.total_records <- 0;
          note_records eu records)
    t.data_eus;
  Hashtbl.iter
    (fun phys info ->
      let base = Dev.sector_of_block dev phys in
      let rec next i =
        if i >= t.sectors_per_block then i
        else if dev_state t (base + i) <> Chip.Free then next (i + 1)
        else i
      in
      info.next_idx <- next 0;
      if info.next_idx < t.sectors_per_block && t.current_overflow = None then
        t.current_overflow <- Some phys)
    t.overflow_eus;
  (* Free list + garbage collection of unreferenced half-written units
     (a crash mid-merge leaves one). *)
  for b = first_block to first_block + num_blocks - 1 do
    if (not (Hashtbl.mem t.data_eus b)) && not (Hashtbl.mem t.overflow_eus b) then
      if dev_free_in_block t b >= t.sectors_per_block then free_pool_add t b
      else if lazy_on then t.pending_reclaims <- b :: t.pending_reclaims
      else reclaim_eu t b
  done;
  (* Resume filling: one unit with a usable free slot per channel, if
     any (on a single-channel device, the first found — the serial
     behaviour). *)
  (try
     Hashtbl.iter
       (fun _ eu ->
         let ch = channel_of t eu.phys in
         if t.fills.(ch) = None && find_free_slot t eu <> None then begin
           t.fills.(ch) <- Some eu;
           if Array.for_all Option.is_some t.fills then raise Exit
         end)
       t.data_eus
   with Exit -> ());
  Meta_log.set_snapshot meta (snapshot_fun t);
  t
