(** Physiological log records.

    A record names a page and a slot (the physical half) and describes a
    logical change to that slot. Records carry enough before-image to be
    de-applied, which the Section 5 recovery design needs for rolling back
    an aborting transaction's in-memory changes. *)

type op =
  | Insert of { slot : int; record : bytes }
  | Delete of { slot : int; before : bytes }
  | Update_range of { slot : int; offset : int; before : bytes; after : bytes }
      (** in-place overwrite of a byte range of the record payload;
          [before] and [after] have equal length *)
  | Update_full of { slot : int; before : bytes; after : bytes }
      (** full-record replacement (sizes may differ) *)

type t = { txid : int; page : int; op : op }
(** [txid] 0 means "not transactional" (always treated as committed). *)

val encoded_size : t -> int

val encode : Buffer.t -> t -> unit
val decode : bytes -> pos:int -> t * int
(** [decode b ~pos] returns the record and the position just past it.
    Raises [Invalid_argument] on malformed input. *)

val apply : Storage.Page.t -> t -> (unit, string) result
(** Replay the change against (an older version of) the page. *)

val unapply : Storage.Page.t -> t -> (unit, string) result
(** Reverse the change (the page must reflect the record's after-state). *)

val op_name : t -> string
(** ["insert"], ["delete"] or ["update"]. *)

val pp : Format.formatter -> t -> unit
