type t = {
  capacity : int;
  mutable rev_records : Log_record.t list;
  mutable count : int;
  mutable used : int;  (* bytes, including header *)
}

exception Record_too_large of int

let header_size = 8

let create ~capacity =
  if capacity <= header_size then invalid_arg "Log_sector.create: capacity too small";
  { capacity; rev_records = []; count = 0; used = header_size }

let add t r =
  let sz = Log_record.encoded_size r in
  if sz > t.capacity - header_size then raise (Record_too_large sz);
  if t.used + sz > t.capacity then `Full
  else begin
    t.rev_records <- r :: t.rev_records;
    t.count <- t.count + 1;
    t.used <- t.used + sz;
    `Added
  end

let records t = List.rev t.rev_records
let count t = t.count
let bytes_used t = t.used
let is_empty t = t.count = 0

let clear t =
  t.rev_records <- [];
  t.count <- 0;
  t.used <- header_size

let remove_txn t txid =
  let mine, others = List.partition (fun r -> r.Log_record.txid = txid) t.rev_records in
  t.rev_records <- others;
  t.count <- List.length others;
  t.used <-
    header_size + List.fold_left (fun acc r -> acc + Log_record.encoded_size r) 0 others;
  List.rev mine

let txids t =
  List.sort_uniq compare (List.map (fun r -> r.Log_record.txid) t.rev_records)

exception Corrupt

let serialize t =
  let buf = Buffer.create t.capacity in
  Buffer.add_uint16_le buf t.count;
  Buffer.add_uint16_le buf t.used;
  Buffer.add_int32_le buf 0l (* checksum placeholder *);
  List.iter (Log_record.encode buf) (records t);
  let b = Buffer.to_bytes buf in
  let out = Bytes.make t.capacity '\xff' in
  Bytes.blit b 0 out 0 (Bytes.length b);
  let crc = Ipl_util.Checksum.crc32 out ~pos:header_size ~len:(t.used - header_size) in
  Bytes.set_int32_le out 4 (Int32.of_int crc);
  out

let deserialize b =
  if Bytes.length b < header_size then invalid_arg "Log_sector.deserialize: too small";
  let count = Bytes.get_uint16_le b 0 in
  let used = Bytes.get_uint16_le b 2 in
  if used > Bytes.length b || used < header_size then
    invalid_arg "Log_sector.deserialize: bad used field";
  let stored = Int32.to_int (Bytes.get_int32_le b 4) land 0xFFFFFFFF in
  let actual = Ipl_util.Checksum.crc32 b ~pos:header_size ~len:(used - header_size) in
  if stored <> actual then raise Corrupt;
  let rec go pos n acc =
    if n = 0 then List.rev acc
    else
      let r, pos = Log_record.decode b ~pos in
      go pos (n - 1) (r :: acc)
  in
  go header_size count []
