(** The IPL database engine: buffer manager + storage manager (Figure 2).

    Every page mutation updates the in-memory copy {e and} appends a
    physiological log record to the page's in-memory log sector. Log
    sectors are flushed to flash when they fill, when their page is
    evicted, and — with recovery enabled — when one of their transactions
    commits. Dirty page images themselves are never written back: the
    stored image plus its log records {e is} the page.

    Transactions: {!begin_txn}/{!commit}/{!abort} implement the Section 5
    design over an abstract {!txn} handle. The engine serializes record
    applications (it is single-threaded); several transactions may be
    open at once as long as no two {e active} transactions modify the
    same record — the snapshot-isolation layer ([lib/txn]) enforces
    exactly that and is the intended multi-client front door. With
    [recovery_enabled = false] the engine is the basic Section 3 design:
    all work is implicitly committed and {!abort} is unavailable.

    The whole surface returns [(_, error) result]: device exceptions —
    the bad-block manager's ({!Resilience.Bbm.Degraded} /
    [Uncorrectable]) and the raw chip's (no manager installed) — become
    typed errors instead of escaping. [Flash_chip.Power_loss] still
    propagates: crash simulation must unwind the whole stack. Read-side
    entry points never refuse on a degraded device — read-only means
    reads still serve all committed data. The pre-redesign raising API
    survives only as the {!Unsafe} shim, for tests. *)

type t

type combined_stats = {
  storage : Ipl_storage.stats;
  pool : Bufmgr.Buffer_pool.stats;
  flash : Flash_sim.Flash_stats.t;
  resilience : Resilience.Bbm.stats;
}

type error =
  | Page_full  (** the target page has no room for the record *)
  | Record_too_large  (** payload exceeds {!max_record_payload} *)
  | Range_too_large  (** byte range exceeds one log record *)
  | No_such_slot  (** slot is not live on the page *)
  | Range_out_of_bounds  (** byte range falls outside the record *)
  | Bad_record_length  (** zero-length or oversized record payload *)
  | Device_degraded
      (** the spare pool is exhausted: the device is permanently read-only
          (reads still serve all committed data) *)
  | Read_failed  (** a flash read failed all its bounded retries *)
  | Device_fault
      (** an unrecoverable program/erase/wear fault escaped the device
          layers (no bad-block manager installed, or a fault outside its
          remit) *)
  | Recovery_disabled
      (** the operation needs the Section 5 transaction machinery but the
          engine was built with [recovery_enabled = false] *)

val error_to_string : error -> string
(** The exact strings of the pre-typed-error API ("page full",
    "slot not live", …), for callers that surface engine errors as text. *)

val pp_error : Format.formatter -> error -> unit

val create_device :
  ?config:Ipl_config.t ->
  ?meta_blocks:int ->
  ?trx_blocks:int ->
  Device.Flash_device.t ->
  t
(** Lay out a fresh database on the device: metadata-log region,
    transaction-log region (used when recovery is enabled), then the IPL
    data area. With [config.spare_blocks > 0] the last [spare_blocks]
    blocks of the device become a bad-block manager's spare pool and all
    data-area flash traffic is routed through it (see [lib/resilience]);
    mutations on a device whose pool has run out return
    [Error Device_degraded]. On a multi-channel device, page allocation
    stripes over the channels, merges copy across channels, and log
    flushes / merge writes are issued asynchronously; every commit /
    checkpoint / metadata force is a completion barrier. *)

val create :
  ?config:Ipl_config.t ->
  ?meta_blocks:int ->
  ?trx_blocks:int ->
  Flash_sim.Flash_chip.t ->
  t
(** {!create_device} over a single chip
    ({!Device.Flash_device.of_chip}) — bit-for-bit the pre-device serial
    engine. *)

val restart_device :
  ?config:Ipl_config.t ->
  ?meta_blocks:int ->
  ?trx_blocks:int ->
  Device.Flash_device.t ->
  t * int list
(** Re-open after a crash (same parameters as {!create_device}). Implicit
    REDO/UNDO per Section 5.4: transactions with no outcome record are
    aborted (their ids are returned); everything else is reconstructed
    on demand by the normal read path.

    With [config.lazy_recovery] set and a usable fuzzy checkpoint on the
    metadata log, the restart scan reads only each erase unit's
    post-checkpoint log delta and returns as soon as the mapping and
    record counts are rebuilt; the covered log prefixes are re-read on
    first touch or via {!drain_repairs} (see {!Ipl_storage.recover}).
    Logical content is identical to an eager restart from the first
    transaction onward — only the flash-read schedule differs. *)

val restart :
  ?config:Ipl_config.t ->
  ?meta_blocks:int ->
  ?trx_blocks:int ->
  Flash_sim.Flash_chip.t ->
  t * int list
(** {!restart_device} over a single chip. *)

val config : t -> Ipl_config.t

val device : t -> Device.Flash_device.t

val chip : t -> Flash_sim.Flash_chip.t
(** The device's first (or only) chip — the pre-device compatibility
    accessor used by single-channel tests and fault campaigns. *)

val storage : t -> Ipl_storage.t

val elapsed : t -> float
(** Simulated time on the engine's device clock (seconds) — the makespan
    clock the upper layers report throughput against. *)

(** {1 Transactions}

    Transactions are identified by an abstract {!txn} handle; the raw
    integer id behind it (the id stored in log records and the
    transaction log) is exposed read-only through {!txn_id}. *)

type txn
(** An open transaction. Handles are engine-specific and single-use:
    after {!commit} or {!abort} the handle is dead. *)

val no_txn : txn
(** The non-transaction (id 0): mutations carrying it are implicitly
    committed, exactly the pre-redesign [~tx:0] convention. *)

val txn_id : txn -> int

val begin_txn : t -> (txn, error) result

val commit : t -> txn -> (unit, error) result
(** With [group_commit = 0]: forces the in-memory log sectors of every
    page the transaction touched, then the commit record — the
    no-force-of-data / force-log-at-commit policy of Section 5.2.
    With [group_commit = n]: the commit is recorded but becomes durable
    only when [n] commits have accumulated (or at {!flush_commits} /
    {!checkpoint}). *)

val abort : t -> txn -> (unit, error) result
(** Rolls back in-memory changes and leaves flash records to be dropped
    by selective merges. [Error Recovery_disabled] when the engine has no
    transaction log. Never refused on a degraded device: the in-memory
    rollback always runs, even when appending the abort record fails. *)

val flush_commits : t -> (unit, error) result
(** Make all batched (group) commits durable now: flush the dirty
    in-memory log sectors, publish the metadata and transaction logs,
    and settle everything with one device barrier. *)

val set_group_commit : t -> int -> unit
(** Override the commit-batching window at run time (the group-commit
    coalescer in [lib/txn] owns the flush policy and parks this at a
    value its own barriers never reach). *)

val group_commit : t -> int

val pending_commits : t -> int
(** Commits recorded but not yet made durable by a batch flush. *)

val txn_status : t -> int -> Trx_log.status

(** {1 Pages and records} *)

val allocate_page : t -> (int, error) result

val allocate_page_with : t -> Storage.Page.t -> (int, error) result
(** Bulk-load path: place a pre-filled page image (not logged). *)

val page_count : t -> int

val insert : t -> tx:txn -> page:int -> bytes -> (int, error) result
val delete : t -> tx:txn -> page:int -> slot:int -> (unit, error) result

val update : t -> tx:txn -> page:int -> slot:int -> bytes -> (unit, error) result
(** Replace a record's payload. Equal-length replacements are logged as
    byte-range deltas — one record per differing range, chunked to fit log
    sectors; identical payloads log nothing. Size-changing replacements
    log a full before/after image, or a delete/insert pair when that image
    would not fit one log sector. *)

val update_range :
  t -> tx:txn -> page:int -> slot:int -> offset:int -> bytes -> (unit, error) result
(** Overwrite a byte range of the record in place (smallest log records). *)

val max_record_payload : t -> int
(** Largest record (or insert payload) the logging path accepts; larger
    inserts return [Error Record_too_large]. *)

val read : t -> page:int -> slot:int -> (bytes option, error) result
(** Current committed-plus-active image of the record ([None] = slot not
    live). Never refuses on a degraded device. *)

val prefetch : t -> int list -> (unit, error) result
(** Batched read-ahead: fetch the batch's missing pages through the
    storage manager's parallel read path ({!Ipl_storage.read_pages} —
    pages on different channels are read in parallel on the simulated
    clock) and install them as clean buffer-pool frames. Resident pages,
    unknown ids and duplicates are skipped; a later {!read} of a
    prefetched page is a pool hit. *)

type prefetch_token

val prefetch_start : t -> int list -> (prefetch_token, error) result
(** First half of {!prefetch}: submit the batch's missing-page reads
    without waiting for their simulated completion. Issue before a
    {!commit} and the commit's durability barrier absorbs the read
    latency — {!prefetch_finish} then settles for free. Only sound for
    pages the pending transaction has not touched (a non-resident page
    has no unflushed records, so the captured image is current). *)

val prefetch_finish : t -> prefetch_token -> (unit, error) result
(** Second half of {!prefetch}: await the batch and install the pages as
    clean frames. *)

val with_page : t -> int -> (Storage.Page.t -> 'a) -> ('a, error) result
(** Read-only access to the current version of a page through the buffer
    pool. The callback must not retain or mutate the page. *)

val page_free_space : t -> int -> (int, error) result

(** {1 Maintenance} *)

val checkpoint : t -> (unit, error) result
(** Flush all in-memory log sectors and force the metadata (and
    transaction) logs; a full device quiesce. Drains all pending lazy
    repairs first, and — when [config.checkpoint_every > 0] — forces a
    fresh fuzzy checkpoint, so a lazy restart after a clean checkpoint
    has nothing to rescan. *)

val compact : t -> max_merges:int -> (int, error) result
(** Background merging: merge up to [max_merges] of the erase units whose
    log regions are fullest, returning how many were merged. Doing this
    at idle moments moves merge latency off the update path. Also drains
    up to [max_merges] pending lazy repairs — the same idle-time
    catch-up budget. *)

val repair_pending : t -> int
(** Erase units still awaiting on-demand repair after a lazy restart
    (0 after an eager restart, and once repair has drained). *)

val drain_repairs : t -> max_eus:int -> (int, error) result
(** Background repair drainer: repair up to [max_eus] pending units now
    (re-read their covered log prefixes, re-warm the record cache),
    returning the number repaired. Never refused on a degraded device —
    repair is read-only. First-touch repair happens implicitly; this
    merely moves it off the foreground read path. *)

val stats : t -> combined_stats

module Stats : Ipl_util.Stats_intf.S with type t = combined_stats
(** Interval measurement, aggregation and JSON export over the combined
    record, composed field-wise from the layer [Stats] modules. *)

(** {1 Resilience} *)

val degraded : t -> bool
(** [true] once the spare pool is exhausted: the device is read-only.
    Always [false] when [spare_blocks = 0]. *)

val spares_left : t -> int
val bbm : t -> Resilience.Bbm.t option

(** {1 Observability} *)

val set_tracer : t -> Obs.Tracer.t option -> unit
(** Install (or clear) one {!Obs.Tracer.t} across the whole stack: the
    flash chip (physical ops), the storage manager (log flushes, merges,
    diversions, page events), the buffer pool (evictions, write-backs —
    timestamped here with the chip's simulated clock) and the engine
    itself ({!Obs.Event.Commit}, [Abort], [Checkpoint]). *)

val tracer : t -> Obs.Tracer.t option

(** {1 Unsafe compatibility shim}

    The pre-redesign surface: integer transaction ids and raising entry
    points (device faults escape as their exceptions, [abort] without
    recovery raises [Failure]). Kept {e only} for tests, which predate
    the typed surface and drive fault injection through exceptions on
    purpose. Production callers use the result API above. *)

module Unsafe : sig
  val begin_txn : t -> int
  val commit : t -> int -> unit
  val abort : t -> int -> unit
  val flush_commits : t -> unit
  val txn : int -> txn
  (** Wrap a raw transaction id (as returned by {!begin_txn} or
      [restart]'s aborted list) for use with the record operations. *)

  val insert : t -> tx:int -> page:int -> bytes -> (int, error) result
  val delete : t -> tx:int -> page:int -> slot:int -> (unit, error) result
  val update : t -> tx:int -> page:int -> slot:int -> bytes -> (unit, error) result

  val update_range :
    t -> tx:int -> page:int -> slot:int -> offset:int -> bytes -> (unit, error) result

  val read : t -> page:int -> slot:int -> bytes option
  val allocate_page : t -> int
  val allocate_page_with : t -> Storage.Page.t -> int
  val prefetch : t -> int list -> unit
  val with_page : t -> int -> (Storage.Page.t -> 'a) -> 'a
  val page_free_space : t -> int -> int
  val checkpoint : t -> unit
  val compact : t -> max_merges:int -> int
  val drain_repairs : t -> max_eus:int -> int
end
