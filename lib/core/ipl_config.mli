(** Configuration of the in-page logging storage manager.

    The geometry follows Section 3.2 of the paper: every erase unit is
    split into a data-page region and a log region. With the defaults
    (128 KB erase units, 8 KB pages, 8 KB log region of sixteen 512-byte
    log sectors) an erase unit holds 15 data pages, exactly the paper's
    running example. *)

type t = {
  page_size : int;  (** database page size, bytes (8 KB in the paper) *)
  log_region_bytes : int;
      (** bytes of every erase unit reserved for log sectors; the paper
          sweeps this from 8 KB to 64 KB (Figures 5 and 6) *)
  in_memory_log_bytes : int;
      (** capacity of the per-page in-memory log sector; equals the flash
          log sector size (512 B) *)
  recovery_enabled : bool;
      (** enable the Section 5 extensions: system-wide transaction log,
          commit-time log forcing, selective merges *)
  selective_merge_threshold : float;
      (** tau: when the fraction of log records that would have to be
          carried over to the new erase unit (because their transactions
          are still active) exceeds this, the merge is abandoned and the
          incoming log sector goes to an overflow erase unit instead *)
  wear_aware_allocation : bool;
      (** allocate free erase units lowest-erase-count-first *)
  buffer_pages : int;  (** capacity of the buffer pool, in pages *)
  group_commit : int;
      (** 0 (default): every commit forces its log sectors and commit
          record immediately. n > 0: commits are batched — durability
          arrives when n commits have accumulated (or on
          {!Ipl_engine.flush_commits}/checkpoint), letting records of
          several transactions share flash log sectors *)
  spare_blocks : int;
      (** 0 (default): resilience off, the engine talks to the raw chip.
          n > 0: the last n blocks of the chip become the bad-block
          manager's spare pool and every data-area operation goes through
          it (see [lib/resilience]) *)
  read_retries : int;
      (** bounded retries of a failed physical read, beyond the first
          attempt (resilience only) *)
  scrub_on_correctable : bool;
      (** preventively relocate an erase unit whose read needed ECC
          correction (resilience only) *)
  log_cache_bytes : int;
      (** DRAM budget for the per-erase-unit log-record cache that lets
          page reads and merges skip re-reading the flash log region
          (see [lib/cache]). LRU over erase units. 0 disables the cache,
          reproducing the uncached engine bit-for-bit *)
  channels : int;
      (** independent flash channels backing the engine (device geometry
          passed to {!Device.Flash_device.create}); 1 is the paper's
          serial chip *)
  ways : int;  (** chips per channel; total chips = channels x ways *)
  queue_depth : int;
      (** per-chip bound on outstanding asynchronous operations; a
          submission against a full queue stalls the simulated host
          clock to the earliest completion *)
  checkpoint_every : int;
      (** 0 (default): no fuzzy checkpoints. n > 0: every n committed
          transactions the engine appends a checkpoint — per-erase-unit
          log coverage records plus a footer with the active-transaction
          table and the durable transaction-log watermark — to the
          metadata log, without quiescing. A checkpoint bounds the
          restart scan: recovery replays meta events as always but only
          reads flash log sectors written {e after} the checkpoint *)
  lazy_recovery : bool;
      (** false (default): restart eagerly re-reads every erase unit's
          log region, exactly the pre-checkpoint behaviour. true:
          restart builds a per-erase-unit repair plan from the last
          checkpoint instead and returns immediately; pages are repaired
          on first touch (or by {!Ipl_engine.drain_repairs}), warming
          the log-record cache from the sectors the scan decodes *)
}

val default : t
(** 8 KB pages, 8 KB log region, 512 B log sectors, recovery off,
    tau = 0.5, wear-aware allocation, 2560 buffer pages (20 MB), no group
    commit, 256 KB log-record cache. *)

val validate : t -> sector_size:int -> block_size:int -> unit
(** Check the configuration against a chip geometry: the log region and
    page size must tile the erase unit, the in-memory log sector must
    match the flash sector size, and at least one data page and one log
    sector must fit. *)

val data_pages_per_eu : t -> block_size:int -> int
val log_sectors_per_eu : t -> sector_size:int -> int
